// Package localut is a Go implementation of LoCaLUT (HPCA 2026):
// lookup-table-based low-bit quantized DNN inference for DRAM
// processing-in-memory, built on a cycle-approximate UPMEM-class simulator.
//
// The library exposes the paper's full pipeline:
//
//   - quantization of float tensors into the WxAy low-bit formats;
//   - construction of operation-packed, canonical and reordering LUTs with
//     their capacity laws (the capacity-computation tradeoff of §III);
//   - the §IV-D cost model that picks the packing degree p, the LUT
//     residence (buffer vs DRAM bank with slice streaming) and the slice
//     batch k;
//   - GEMM execution across a simulated 2048-bank PIM system under six
//     designs (NaivePIM, LTC, OP, OP+LC, OP+LC+RC, LoCaLUT), each verified
//     bit-exact against an integer reference on every run;
//   - end-to-end transformer inference (BERT-base, OPT-125M, ViT-Base)
//     with the host/PIM split of Fig. 8;
//   - request-level serving simulation (System.Serve): a deterministic
//     discrete-event traffic engine with seeded arrivals, batching
//     schedulers and SLO metrics, priced through the cycles-only backend.
//
// Quick start:
//
//	sys := localut.NewSystem()
//	res, err := sys.GEMM(localut.W1A3, 768, 768, 128, localut.DesignLoCaLUT)
//	fmt.Printf("%.3f ms, verified=%v\n", res.TotalSeconds*1e3, res.Verified)
package localut

import (
	"fmt"

	"github.com/ais-snu/localut/internal/costmodel"
	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/energy"
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/workload"
)

// Format is a weight/activation quantization pairing ("WxAy").
type Format struct {
	inner quant.Format
}

// The four formats of the paper's evaluation.
var (
	W1A3 = Format{quant.W1A3}
	W1A4 = Format{quant.W1A4}
	W2A2 = Format{quant.W2A2}
	W4A4 = Format{quant.W4A4}
)

// Formats lists the evaluation formats in paper order.
var Formats = []Format{W1A3, W1A4, W2A2, W4A4}

// NewFormat builds a WxAy format with the paper's codec conventions
// (1-bit weights are ±1; wider weights are symmetric-clipped two's
// complement; activations are two's complement).
func NewFormat(weightBits, actBits int) (Format, error) {
	f, err := quant.NewFormat(weightBits, actBits)
	if err != nil {
		return Format{}, err
	}
	return Format{f}, nil
}

// ParseFormat parses "W1A3"-style names.
func ParseFormat(s string) (Format, error) {
	f, err := quant.ParseFormat(s)
	if err != nil {
		return Format{}, err
	}
	return Format{f}, nil
}

// Name returns "WxAy".
func (f Format) Name() string { return f.inner.Name() }

// WeightBits and ActBits report the bit widths.
func (f Format) WeightBits() int { return f.inner.Weight.Bits }
func (f Format) ActBits() int    { return f.inner.Act.Bits }

// Design selects one of the paper's kernel design points.
type Design int

const (
	// DesignNaive is conventional PIM with arithmetic units.
	DesignNaive Design = iota
	// DesignLTC is the LUT Tensor Core bit-serial adaptation.
	DesignLTC
	// DesignOP is the buffer-resident operation-packed LUT.
	DesignOP
	// DesignOPLC adds LUT canonicalization (software reordering).
	DesignOPLC
	// DesignOPLCRC adds the reordering LUT.
	DesignOPLCRC
	// DesignLoCaLUT is the full system with LUT slice streaming.
	DesignLoCaLUT
)

// Designs lists all design points in paper order.
var Designs = []Design{DesignNaive, DesignLTC, DesignOP, DesignOPLC, DesignOPLCRC, DesignLoCaLUT}

func (d Design) variant() kernels.Variant { return kernels.Variant(d) }

// String returns the paper's name for the design.
func (d Design) String() string { return d.variant().String() }

// Capacity describes the LUT footprints of a (format, p) configuration —
// the Fig. 6 quantities.
type Capacity struct {
	P                   int
	OperationPackedByte int64
	CanonicalBytes      int64
	ReorderBytes        int64
	CombinedBytes       int64
	// ReductionRate is operation-packed / (canonical + reordering).
	ReductionRate float64
	// SliceBytes is one streamed canonical+reordering column pair.
	SliceBytes int64
}

// LUTCapacity evaluates the capacity laws for a format and packing degree.
func LUTCapacity(f Format, p int) (Capacity, error) {
	spec, err := lut.NewSpec(f.inner, p)
	if err != nil {
		return Capacity{}, err
	}
	return Capacity{
		P:                   p,
		OperationPackedByte: spec.OpPackedBytes(),
		CanonicalBytes:      spec.CanonicalBytes(),
		ReorderBytes:        spec.ReorderBytes(),
		CombinedBytes:       spec.CombinedBytes(),
		ReductionRate:       spec.ReductionRate(),
		SliceBytes:          spec.SliceBytes(),
	}, nil
}

// Plan is the cost model's configuration choice for a GEMM shape (§IV-D).
type Plan struct {
	P                int
	Streaming        bool
	SliceK           int
	PredictedSeconds float64
	PLocal, PDRAM    int
}

// System is a simulated LoCaLUT PIM server.
type System struct {
	engine *gemm.Engine
	energy energy.Model
	seed   int64
}

// Option configures a System.
type Option func(*System)

// WithSeed fixes the synthetic workload seed.
func WithSeed(seed int64) Option { return func(s *System) { s.seed = seed } }

// WithRanks overrides the PIM DIMM rank count (default 32 -> 2048 banks).
func WithRanks(ranks int) Option {
	return func(s *System) { s.engine.Cfg.Ranks = ranks }
}

// WithParallelism sets the host-side worker-pool size used for sharded
// bank simulation and batched GEMMs (0 = one worker per CPU core, 1 =
// serial). Simulation results are bit-identical at any setting: shard→bank
// assignment is deterministic and all aggregation happens in bank order.
func WithParallelism(n int) Option {
	return func(s *System) { s.engine.Exec.Parallelism = n }
}

// WithFullBankSimulation simulates every bank tile of each GEMM (sharded
// across the worker pool, each tile verified bit-exact) instead of
// extrapolating timing from the representative corner tile. Higher fidelity
// — edge tiles contribute their true cost and full outputs come from the
// simulated banks — at the price of simulating the whole problem.
func WithFullBankSimulation() Option {
	return func(s *System) { s.engine.Exec.FullGrid = true }
}

// WithCyclesOnly switches the system to the analytic cycles-only execution
// backend: kernels charge the exact same cycle/event sequence as functional
// simulation — timing, meters, breakdowns and energy are bit-identical —
// but move no bytes, build no LUT images and compute no GEMM outputs.
// Identical-shape bank tiles share one memoized cost record, so sweeps and
// serving workloads that only consume timing run orders of magnitude
// faster. Results report Verified=false (there is no output to check) and
// Output stays nil unless WithFullOutput computes the host reference.
func WithCyclesOnly() Option {
	return func(s *System) { s.engine.Exec.Mode = kernels.CyclesOnly }
}

// WithLUTBudget sets the fraction of each bank and buffer devoted to LUTs
// (default ~0.55, §V-A "approximately half"). §VII-B discusses shrinking
// this when capacity is shared with large models or co-located jobs: a
// smaller budget lowers the feasible packing degree and trades speed for
// memory — ChoosePlan and every GEMM respect it.
func WithLUTBudget(frac float64) Option {
	return func(s *System) { s.engine.Cfg.LUTBudgetFrac = frac }
}

// NewSystem builds the paper's testbed: 32 UPMEM ranks (2048 DPUs, 64 MB
// bank + 64 KB WRAM + 350 MHz core each).
func NewSystem(opts ...Option) *System {
	s := &System{engine: gemm.NewEngine(), energy: energy.Default(), seed: 1}
	for _, o := range opts {
		o(s)
	}
	return s
}

// ChoosePlan runs the §IV-D cost model for a GEMM shape.
func (s *System) ChoosePlan(f Format, m, k, n int) (Plan, error) {
	c, err := costmodel.Choose(s.engine.Model, f.inner, m, k, n, &s.engine.Cfg)
	if err != nil {
		return Plan{}, err
	}
	return Plan{P: c.P, Streaming: c.Streaming, SliceK: c.K,
		PredictedSeconds: c.PredictedSeconds, PLocal: c.PLocal, PDRAM: c.PDRAM}, nil
}

// GEMMResult reports one executed GEMM.
type GEMMResult struct {
	Design        Design
	P, SliceK     int
	Streaming     bool
	TotalSeconds  float64
	KernelSeconds float64
	HostSeconds   float64
	Transfer      float64
	EnergyJ       float64
	// Verified reports that the simulated kernel's tile output matched
	// the integer reference bit-exactly (checked on every run).
	Verified bool
	// KernelCycles is the simulated PIM wall-clock cycle count; it is
	// exactly reproducible across host parallelism levels.
	KernelCycles int64
	// BanksSimulated counts the bank tiles executed (the full grid under
	// WithFullBankSimulation, 1 in representative mode).
	BanksSimulated int
	// Output is the full integer product when requested.
	Output []int32
}

// GEMMOption tweaks one GEMM run.
type GEMMOption func(*gemm.Options)

// WithPackingDegree forces p instead of the cost-model choice.
func WithPackingDegree(p int) GEMMOption { return func(o *gemm.Options) { o.ForceP = p } }

// WithSliceK forces the slice batch.
func WithSliceK(k int) GEMMOption { return func(o *gemm.Options) { o.ForceK = k } }

// WithStreaming forces DRAM-resident LUTs with slice streaming (only
// meaningful together with WithPackingDegree).
func WithStreaming() GEMMOption { return func(o *gemm.Options) { o.ForceStreaming = true } }

// WithFullOutput computes the complete integer product (O(MKN) host work).
func WithFullOutput() GEMMOption { return func(o *gemm.Options) { o.ComputeFull = true } }

// WithPaperTiling uses the paper's context-parallel tiling (split N only).
func WithPaperTiling() GEMMOption { return func(o *gemm.Options) { o.NSplitOnly = true } }

// GEMM generates a seeded synthetic M x K x N problem in the format and
// executes it under the design.
func (s *System) GEMM(f Format, m, k, n int, d Design, opts ...GEMMOption) (*GEMMResult, error) {
	pair := workload.NewGEMMPair(m, k, n, f.inner, s.seed)
	return s.run(pair, d, opts...)
}

// GEMMQuantized executes a GEMM on caller-provided quantized tensors.
// Weights are M x K codes row-major; activations K x N.
func (s *System) GEMMQuantized(w, a *Tensor, d Design, opts ...GEMMOption) (*GEMMResult, error) {
	if w.t.Cols != a.t.Rows {
		return nil, fmt.Errorf("localut: W is %dx%d but A is %dx%d",
			w.t.Rows, w.t.Cols, a.t.Rows, a.t.Cols)
	}
	f := quant.Format{Weight: w.t.Codec, Act: a.t.Codec}
	pair := &workload.GEMMPair{M: w.t.Rows, K: w.t.Cols, N: a.t.Cols,
		Fmt: f, W: w.t, A: a.t}
	return s.run(pair, d, opts...)
}

func (s *System) run(pair *workload.GEMMPair, d Design, opts ...GEMMOption) (*GEMMResult, error) {
	rep, err := s.engine.Run(pair, gemmOptions(d, opts))
	if err != nil {
		return nil, err
	}
	return s.result(d, rep), nil
}

// gemmOptions folds the functional options into the engine's option struct.
func gemmOptions(d Design, opts []GEMMOption) gemm.Options {
	var o gemm.Options
	for _, fn := range opts {
		fn(&o)
	}
	o.Variant = d.variant()
	return o
}

// result converts an engine report, pricing its energy.
func (s *System) result(d Design, rep *gemm.Report) *GEMMResult {
	e := s.energy.Price(&rep.Meter, rep.HostOps, rep.Total)
	return &GEMMResult{
		Design: d, P: rep.P, SliceK: rep.K, Streaming: rep.Streaming,
		TotalSeconds: rep.Total, KernelSeconds: rep.KernelSeconds,
		HostSeconds: rep.HostSeconds, Transfer: rep.Transfer,
		EnergyJ: e.TotalJ, Verified: rep.Verified,
		KernelCycles: rep.KernelCycles, BanksSimulated: rep.BanksSimulated,
		Output: rep.Output,
	}
}

// GEMMShape is one member of a batched GEMM call.
type GEMMShape struct {
	M, K, N int
}

// GEMMBatch generates a seeded synthetic problem per shape and executes the
// batch under the design. Batching is how a serving workload should drive
// the simulator: cost-model decisions are memoized across members (layers
// of one model repeat a handful of shapes), LUT construction is shared
// through the process-wide table cache, and members are dispatched
// concurrently over the worker pool configured with WithParallelism.
// Member i's workload uses seed+i, so its result is identical to a GEMM
// call on a System constructed with WithSeed(seed+i).
func (s *System) GEMMBatch(f Format, shapes []GEMMShape, d Design, opts ...GEMMOption) ([]*GEMMResult, error) {
	if len(shapes) == 0 {
		return nil, fmt.Errorf("localut: empty GEMM batch")
	}
	pairs := make([]*workload.GEMMPair, len(shapes))
	for i, sh := range shapes {
		pairs[i] = workload.NewGEMMPair(sh.M, sh.K, sh.N, f.inner, s.seed+int64(i))
	}
	reps, err := s.engine.RunBatch(pairs, gemmOptions(d, opts))
	if err != nil {
		return nil, err
	}
	out := make([]*GEMMResult, len(reps))
	for i, rep := range reps {
		out[i] = s.result(d, rep)
	}
	return out, nil
}

// Tensor is a quantized 2-D tensor.
type Tensor struct {
	t *quant.Tensor
}

// Side selects which codec of a format quantizes a tensor.
type Side int

const (
	// Weights quantizes with the weight codec.
	Weights Side = iota
	// Activations quantizes with the activation codec.
	Activations
)

// Quantize converts row-major float data to low-bit codes under the
// format's codec for the given side, with calibrated scaling (mean-|v| for
// binary weights, MSE-optimal Gaussian clipping for wider codecs — the
// conventions of the quantization methods the paper evaluates with).
func Quantize(data []float64, rows, cols int, f Format, side Side) (*Tensor, error) {
	codec := f.inner.Weight
	if side == Activations {
		codec = f.inner.Act
	}
	t, err := quant.QuantizeCalibrated(data, rows, cols, codec)
	if err != nil {
		return nil, err
	}
	return &Tensor{t}, nil
}

// Shape returns (rows, cols).
func (t *Tensor) Shape() (rows, cols int) { return t.t.Rows, t.t.Cols }

// Scale returns the dequantization scale.
func (t *Tensor) Scale() float64 { return t.t.Scale }

// Dequantize expands back to floats.
func (t *Tensor) Dequantize() []float64 { return t.t.Dequantize() }

// Model identifies a built-in transformer workload.
type Model int

const (
	// BERTBase is the 12-layer encoder (110M parameters, seq 128).
	BERTBase Model = iota
	// OPT125M is the 12-layer decoder (prefill + autoregressive decode).
	OPT125M
	// ViTBase is the vision transformer (197 tokens).
	ViTBase
)

func (m Model) config() dnn.ModelConfig {
	switch m {
	case BERTBase:
		return dnn.BERTBase()
	case OPT125M:
		return dnn.OPT125M()
	case ViTBase:
		return dnn.ViTBase()
	}
	panic(fmt.Sprintf("localut: unknown model %d", int(m)))
}

// String names the model.
func (m Model) String() string { return m.config().Name }

// PhaseTimes itemizes one inference phase (the Fig. 16(a) categories).
type PhaseTimes struct {
	GEMMPIM   float64
	Transfer  float64
	Quantize  float64
	SortPack  float64
	HostOther float64
	Total     float64
}

// InferenceResult reports an end-to-end model execution.
type InferenceResult struct {
	Model   string
	Format  string
	Design  Design
	Prefill PhaseTimes
	// Decode is non-zero only for decoder models with OutTokens > 0.
	Decode       PhaseTimes
	TotalSeconds float64
	EnergyJ      float64
}

// InferOptions configures an end-to-end run.
type InferOptions struct {
	// Batch is the number of sequences (default 8).
	Batch int
	// OutTokens is the decode length for decoder models (default 0).
	OutTokens int
}

// Infer runs a transformer end to end on the simulated system: all
// projection/FFN GEMMs on PIM under the design, attention/normalization on
// the host (Fig. 8).
func (s *System) Infer(m Model, f Format, d Design, opt InferOptions) (*InferenceResult, error) {
	if opt.Batch == 0 {
		opt.Batch = 8
	}
	r := dnn.NewRunner(m.config(), f.inner, d.variant())
	r.Engine = s.engine
	r.Seed = s.seed
	rep, err := r.Infer(opt.Batch, opt.OutTokens)
	if err != nil {
		return nil, err
	}
	e := s.energy.Price(&rep.Meter, rep.HostOps, rep.Total)
	out := &InferenceResult{
		Model: rep.Model, Format: rep.Format, Design: d,
		Prefill:      phaseTimes(rep.Prefill),
		TotalSeconds: rep.Total,
		EnergyJ:      e.TotalJ,
	}
	if rep.Decode != nil {
		out.Decode = phaseTimes(rep.Decode)
	}
	return out, nil
}

func phaseTimes(p *dnn.PhaseReport) PhaseTimes {
	return PhaseTimes{
		GEMMPIM: p.GEMMPIM, Transfer: p.Transfer, Quantize: p.Quantize,
		SortPack: p.SortPack, HostOther: p.HostOther, Total: p.Total,
	}
}
