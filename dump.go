package localut

import (
	"fmt"
	"strings"

	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/perm"
)

// DumpCanonicalColumns materializes the canonical LUT for (f, p) and
// renders the first n columns as human-readable lines: the sorted
// activation vector each column encodes and its entries per packed weight
// row. Intended for inspection tools, not hot paths.
func DumpCanonicalColumns(f Format, p, n int) ([]string, error) {
	spec, err := lut.NewSpec(f.inner, p)
	if err != nil {
		return nil, err
	}
	canon, err := lut.CachedCanonical(spec)
	if err != nil {
		return nil, err
	}
	cols := spec.CanonCols()
	if int64(n) > cols {
		n = int(cols)
	}
	rows := int(spec.Rows())
	out := make([]string, 0, n)
	for c := 0; c < n; c++ {
		acts := perm.MultisetUnrank(int64(c), f.inner.Act.Levels(), p)
		vals := make([]string, len(acts))
		for i, a := range acts {
			vals[i] = fmt.Sprintf("%d", f.inner.Act.Decode(uint32(a)))
		}
		entries := make([]string, 0, rows)
		for r := 0; r < rows; r++ {
			entries = append(entries, fmt.Sprintf("%d", canon.Lookup(uint32(r), int64(c))))
		}
		out = append(out, fmt.Sprintf("col %4d acts=[%s]: %s",
			c, strings.Join(vals, " "), strings.Join(entries, " ")))
	}
	return out, nil
}
