// Benchmark harness: one testing.B benchmark per evaluation figure of the
// paper. Each benchmark regenerates its figure through the experiments
// drivers (reduced "quick" scale so `go test -bench=.` stays tractable) and
// reports the figure's headline metric via b.ReportMetric, so a bench run
// doubles as a paper-vs-measured check. Full-scale figures:
// `go run ./cmd/localut-bench`.
package localut

import (
	"sync"
	"testing"

	"github.com/ais-snu/localut/internal/experiments"
)

var (
	benchMu    sync.Mutex
	benchSuite *experiments.Suite
)

func suite() *experiments.Suite {
	benchMu.Lock()
	defer benchMu.Unlock()
	if benchSuite == nil {
		benchSuite = experiments.NewQuick()
	}
	return benchSuite
}

// benchFig runs one figure driver per iteration and reports named metrics.
func benchFig(b *testing.B, fn func() (*experiments.Result, error), metrics ...string) {
	b.Helper()
	var last *experiments.Result
	for i := 0; i < b.N; i++ {
		r, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, m := range metrics {
		if v, ok := last.Values[m]; ok {
			b.ReportMetric(v, m)
		}
	}
}

func BenchmarkFig03_LUTPlacement(b *testing.B) {
	benchFig(b, suite().Fig03, "dram_over_buffer_at_plocal")
}

func BenchmarkFig06_Capacity(b *testing.B) {
	benchFig(b, suite().Fig06, "reduction_p2", "reduction_p8")
}

func BenchmarkFig09_GEMM(b *testing.B) {
	benchFig(b, suite().Fig09, "geomean_over_naive", "geomean_over_ltc", "max_over_naive")
}

func BenchmarkFig10_Models(b *testing.B) {
	benchFig(b, suite().Fig10, "geomean_over_naive", "geomean_over_ltc", "geomean_over_op")
}

func BenchmarkFig11_Sensitivity(b *testing.B) {
	benchFig(b, suite().Fig11, "geomean")
}

func BenchmarkFig12_PackingDegree(b *testing.B) {
	benchFig(b, suite().Fig12, "best_p_M768", "best_speedup_M768")
}

func BenchmarkFig13_KSlices(b *testing.B) {
	benchFig(b, suite().Fig13, "k8_speedup_BERT_W1A3")
}

func BenchmarkFig14_Energy(b *testing.B) {
	benchFig(b, suite().Fig14, "w1ax_vs_naive", "w1ax_vs_ltc")
}

func BenchmarkFig15_PQAccuracy(b *testing.B) {
	benchFig(b, suite().Fig15, "pq_points_dominated", "pq_points_total")
}

func BenchmarkFig16_Breakdown(b *testing.B) {
	benchFig(b, suite().Fig16, "kernel_idxcalc_share", "kernel_reorder_share", "pimdl_centroid_share")
}

func BenchmarkFig17_CPUGPU(b *testing.B) {
	benchFig(b, suite().Fig17, "cpu_over_localut_W1A3", "gpu_over_localut_W4A4")
}

func BenchmarkFig18_CostModel(b *testing.B) {
	benchFig(b, suite().Fig18, "mean_rel_error")
}

func BenchmarkFig19_Scenarios(b *testing.B) {
	benchFig(b, suite().Fig19, "prefill_speedup", "decode_speedup")
}

func BenchmarkFig20_BankPIM(b *testing.B) {
	benchFig(b, suite().Fig20, "geomean", "w4a4_speedup")
}

func BenchmarkFig21_Float(b *testing.B) {
	benchFig(b, suite().Fig21, "vit_acc_p5")
}

// BenchmarkGEMMKernelLoCaLUT measures raw simulator throughput of the full
// LoCaLUT kernel on a representative bank tile (not a figure; a harness
// health metric).
func BenchmarkGEMMKernelLoCaLUT(b *testing.B) {
	sys := NewSystem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := sys.GEMM(W1A3, 512, 256, 4, DesignLoCaLUT, WithPaperTiling())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Verified {
			b.Fatal("verification failed")
		}
	}
}

// BenchmarkGEMMKernelNaive is the matching baseline health metric.
func BenchmarkGEMMKernelNaive(b *testing.B) {
	sys := NewSystem()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.GEMM(W1A3, 512, 256, 4, DesignNaive, WithPaperTiling()); err != nil {
			b.Fatal(err)
		}
	}
}
