package localut

import (
	"testing"
)

// TestSystemParallelismDeterminism exercises the public knobs end to end:
// full-bank simulation at different parallelism levels must agree on every
// simulated quantity.
func TestSystemParallelismDeterminism(t *testing.T) {
	run := func(parallelism int) *GEMMResult {
		sys := NewSystem(WithParallelism(parallelism), WithFullBankSimulation())
		res, err := sys.GEMM(W1A3, 96, 64, 24, DesignLoCaLUT)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	serial, parallel := run(1), run(8)
	if !serial.Verified || !parallel.Verified {
		t.Fatalf("verified=%v/%v, want true", serial.Verified, parallel.Verified)
	}
	if serial.KernelCycles != parallel.KernelCycles {
		t.Fatalf("cycles diverge: %d vs %d", serial.KernelCycles, parallel.KernelCycles)
	}
	if serial.TotalSeconds != parallel.TotalSeconds || serial.EnergyJ != parallel.EnergyJ {
		t.Fatalf("report diverges: %+v vs %+v", serial, parallel)
	}
	if serial.BanksSimulated < 2 {
		t.Fatalf("full-bank simulation ran %d banks, want the whole grid", serial.BanksSimulated)
	}
}

// TestGEMMBatchMatchesSequential checks that the batched API equals
// one-at-a-time calls with the documented seed convention.
func TestGEMMBatchMatchesSequential(t *testing.T) {
	shapes := []GEMMShape{{64, 48, 16}, {32, 48, 24}, {64, 48, 16}}
	sys := NewSystem(WithParallelism(4))
	batch, err := sys.GEMMBatch(W2A2, shapes, DesignLoCaLUT)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(shapes) {
		t.Fatalf("got %d results, want %d", len(batch), len(shapes))
	}
	for i, sh := range shapes {
		ref := NewSystem(WithSeed(1 + int64(i)))
		want, err := ref.GEMM(W2A2, sh.M, sh.K, sh.N, DesignLoCaLUT)
		if err != nil {
			t.Fatal(err)
		}
		got := batch[i]
		if got.KernelCycles != want.KernelCycles || got.TotalSeconds != want.TotalSeconds ||
			got.P != want.P || !got.Verified {
			t.Fatalf("batch member %d diverges from sequential run:\n%+v\n%+v", i, got, want)
		}
	}
}
