package localut

import (
	"fmt"
	"strings"

	"github.com/ais-snu/localut/internal/serve"
)

// SchedulerPolicy selects how the serving simulator forms batches.
type SchedulerPolicy int

const (
	// ScheduleFCFS serves strictly in arrival order.
	ScheduleFCFS SchedulerPolicy = iota
	// SchedulePacked packs same-shape requests into uniform batches
	// (continuous-batching style): less padding waste, fewer distinct
	// GEMM shapes, at the price of bounded overtaking.
	SchedulePacked
)

// String names the policy ("fcfs", "packed").
func (p SchedulerPolicy) String() string { return serve.Policy(p).String() }

// ParseSchedulerPolicy parses "fcfs" or "packed".
func ParseSchedulerPolicy(s string) (SchedulerPolicy, error) {
	p, err := serve.ParsePolicy(strings.ToLower(s))
	return SchedulerPolicy(p), err
}

// ParseDesign parses a design point by its paper name ("NaivePIM", "LTC",
// "OP", "OP+LC", "OP+LC+RC", "LoCaLUT"), case-insensitively.
func ParseDesign(s string) (Design, error) {
	for _, d := range Designs {
		if strings.EqualFold(s, d.String()) {
			return d, nil
		}
	}
	return 0, fmt.Errorf("localut: unknown design %q", s)
}

// ParseModel parses a built-in model name ("bert-base", "opt-125m",
// "vit-base"), case-insensitively.
func ParseModel(s string) (Model, error) {
	for _, m := range []Model{BERTBase, OPT125M, ViTBase} {
		if strings.EqualFold(s, m.String()) {
			return m, nil
		}
	}
	return 0, fmt.Errorf("localut: unknown model %q (want bert-base, opt-125m or vit-base)", s)
}

// ServeConfig describes one request-level serving simulation on the
// system: a traffic pattern offered to a multi-rank LoCaLUT appliance
// whose forward passes are priced through the cycles-only backend.
// Exactly one arrival source is active: ArrivalTimes if non-empty, else a
// closed loop when Clients > 0, else open-loop Poisson at RatePerSec.
type ServeConfig struct {
	Model  Model
	Format Format
	Design Design

	// Replicas splits the appliance's ranks into independent serving
	// groups, each running one batch at a time (default 4; must not
	// exceed the rank count).
	Replicas int

	// RatePerSec is the open-loop Poisson arrival rate (requests/second).
	RatePerSec float64
	// Clients switches to a closed loop with this many clients; each
	// issues its next request an exponential think time (mean
	// ThinkSeconds, default 0.1) after its previous one completes.
	Clients      int
	ThinkSeconds float64
	// ArrivalTimes replays an explicit trace of arrival timestamps.
	ArrivalTimes []float64

	// DurationSeconds is the arrival window; admitted requests drain
	// afterwards (default 60).
	DurationSeconds float64
	// Seed overrides the system seed for this run (0 = system seed).
	Seed int64

	// MaxBatch bounds requests per batch (default 8).
	MaxBatch int
	// Scheduler picks the batch former (the zero value is ScheduleFCFS;
	// the localut-serve CLI defaults to packed).
	Scheduler SchedulerPolicy

	// MinTokens/MaxTokens/MeanTokens bound the sampled request lengths
	// (defaults 16 / 256 / the model's sequence length).
	MinTokens, MaxTokens int
	MeanTokens           float64
	// TokenQuantum is the shape-padding bucket (default 64): request and
	// batch token counts round up to it, so a million-request run prices
	// only a handful of distinct forward-pass shapes.
	TokenQuantum int

	// OutTokens fixes the output length of every request (decoder models
	// only; 0 = prefill-only serving). Decode runs at token granularity:
	// each step is priced at the live batch's true context and requests
	// leave the batch when their output completes.
	OutTokens int
	// OutTokensMean switches to sampled output lengths (bounded
	// shifted-exponential over [1, OutTokensMax] with this mean).
	OutTokensMean float64
	// OutTokensMax caps sampled output lengths (default 4*OutTokensMean).
	OutTokensMax int

	// Obs attaches the observability layer: request/batch trace export
	// and interval time-series metrics. The zero value records nothing.
	Obs ObsConfig
}

// LatencyStats summarizes a latency population in seconds.
type LatencyStats struct {
	P50  float64 `json:"p50_s"`
	P95  float64 `json:"p95_s"`
	P99  float64 `json:"p99_s"`
	Mean float64 `json:"mean_s"`
	Max  float64 `json:"max_s"`
}

// ServeReport is the outcome of one serving simulation. Reports are
// bit-reproducible: the same system seed, config and parallelism-agnostic
// engine yield an identical report on every run.
type ServeReport struct {
	Model     string `json:"model"`
	Format    string `json:"format"`
	Design    string `json:"design"`
	Scheduler string `json:"scheduler"`
	Replicas  int    `json:"replicas"`

	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	Batches   int `json:"batches"`
	// DecodeSteps counts token-level decode forward passes.
	DecodeSteps int `json:"decode_steps"`

	MeanBatchSize    float64 `json:"mean_batch_size"`
	DurationSeconds  float64 `json:"duration_s"`
	MakespanSeconds  float64 `json:"makespan_s"`
	OfferedPerSec    float64 `json:"offered_per_s"`
	ThroughputPerSec float64 `json:"throughput_per_s"`

	Queue   LatencyStats `json:"queue"`
	Service LatencyStats `json:"service"`
	Latency LatencyStats `json:"latency"`
	// TTFT is time-to-first-token (admission to prefill completion);
	// TPOT is time-per-output-token after the first. Both are zero for
	// prefill-only runs.
	TTFT LatencyStats `json:"ttft"`
	TPOT LatencyStats `json:"tpot"`

	RankUtilization    float64   `json:"rank_utilization"`
	ReplicaUtilization []float64 `json:"replica_utilization"`
	PIMUtilization     float64   `json:"pim_utilization"`

	TokensIn     int64 `json:"tokens_in"`
	TokensPadded int64 `json:"tokens_padded"`
	TokensOut    int64 `json:"tokens_out"`
	// TokensPerSec is total token throughput (prompt + generated) over
	// the makespan.
	TokensPerSec float64 `json:"tokens_per_s"`

	// KVPeakBytes is the largest KV-cache footprint any replica held
	// during decode; KVCapacityBytes is one replica's DRAM capacity net
	// of the LUT budget; KVPeakUtilization is their ratio.
	KVPeakBytes       int64   `json:"kv_peak_bytes"`
	KVCapacityBytes   int64   `json:"kv_capacity_bytes"`
	KVPeakUtilization float64 `json:"kv_peak_utilization"`
	// KVMeanBytes is the time-weighted mean KV footprint per replica over
	// the makespan; KVMeanUtilization is its share of capacity.
	KVMeanBytes       float64 `json:"kv_mean_bytes"`
	KVMeanUtilization float64 `json:"kv_mean_utilization"`

	EnergyJ           float64 `json:"energy_j"`
	EnergyPerRequestJ float64 `json:"energy_per_request_j"`

	DistinctForwardSims int `json:"distinct_forward_sims"`

	// LatencyHistogram buckets every completed request's total latency
	// into equal-width bins over [0, LatencyHistogramHiS).
	LatencyHistogram   []int64 `json:"latency_histogram,omitempty"`
	LatencyHistogramHi float64 `json:"latency_histogram_hi_s,omitempty"`
}

// Serve runs a request-level serving simulation: seeded arrivals, sampled
// sequence lengths, an admission queue with the configured scheduler, and
// per-batch forward passes priced through the dnn/gemm planners in
// cycles-only mode on the replica's rank share. The discrete-event loop is
// deterministic — same seed and config produce a bit-identical report at
// any WithParallelism level — and memoization collapses a million requests
// into a handful of distinct simulations.
func (s *System) Serve(cfg ServeConfig) (*ServeReport, error) {
	seed := cfg.Seed
	if seed == 0 {
		seed = s.seed
	}
	rec, met := cfg.Obs.build()
	rep, err := serve.Run(serve.Config{
		Model:   cfg.Model.config(),
		Fmt:     cfg.Format.inner,
		Variant: cfg.Design.variant(),

		Engine: s.engine,
		Energy: s.energy,

		Replicas: cfg.Replicas,

		RatePerSec:   cfg.RatePerSec,
		Clients:      cfg.Clients,
		ThinkSeconds: cfg.ThinkSeconds,
		ArrivalTimes: cfg.ArrivalTimes,

		DurationSeconds: cfg.DurationSeconds,
		Seed:            seed,

		MaxBatch:  cfg.MaxBatch,
		Scheduler: serve.Policy(cfg.Scheduler),

		MinTokens:    cfg.MinTokens,
		MaxTokens:    cfg.MaxTokens,
		MeanTokens:   cfg.MeanTokens,
		TokenQuantum: cfg.TokenQuantum,

		OutTokens:     cfg.OutTokens,
		OutTokensMean: cfg.OutTokensMean,
		OutTokensMax:  cfg.OutTokensMax,

		Recorder: rec,
		Metrics:  met,
	})
	if err != nil {
		return nil, err
	}
	if err := cfg.Obs.export(rec, met); err != nil {
		return nil, err
	}
	return serveReport(rep), nil
}

// serveReport converts the internal report to the public shape.
func serveReport(r *serve.Report) *ServeReport {
	stats := func(s serve.Stats) LatencyStats {
		return LatencyStats{P50: s.P50, P95: s.P95, P99: s.P99, Mean: s.Mean, Max: s.Max}
	}
	out := &ServeReport{
		Model:     r.Model,
		Format:    r.Format,
		Design:    r.Design,
		Scheduler: r.Scheduler,
		Replicas:  r.Replicas,

		Requests:    r.Requests,
		Completed:   r.Completed,
		Batches:     r.Batches,
		DecodeSteps: r.DecodeSteps,

		MeanBatchSize:    r.MeanBatchSize,
		DurationSeconds:  r.DurationSeconds,
		MakespanSeconds:  r.MakespanSeconds,
		OfferedPerSec:    r.OfferedPerSec,
		ThroughputPerSec: r.ThroughputPerSec,

		Queue:   stats(r.Queue),
		Service: stats(r.Service),
		Latency: stats(r.Latency),
		TTFT:    stats(r.TTFT),
		TPOT:    stats(r.TPOT),

		RankUtilization:    r.RankUtilization,
		ReplicaUtilization: r.ReplicaUtilization,
		PIMUtilization:     r.PIMUtilization,

		TokensIn:     r.TokensIn,
		TokensPadded: r.TokensPadded,
		TokensOut:    r.TokensOut,
		TokensPerSec: r.TokensPerSec,

		KVPeakBytes:       r.KVPeakBytes,
		KVCapacityBytes:   r.KVCapacityBytes,
		KVPeakUtilization: r.KVPeakUtilization,
		KVMeanBytes:       r.KVMeanBytes,
		KVMeanUtilization: r.KVMeanUtilization,

		EnergyJ:           r.EnergyJ,
		EnergyPerRequestJ: r.EnergyPerRequestJ,

		DistinctForwardSims: r.DistinctForwardSims,
	}
	if r.LatencyHist != nil {
		out.LatencyHistogram = r.LatencyHist.Counts
		out.LatencyHistogramHi = r.LatencyHist.Hi
	}
	return out
}
