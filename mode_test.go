package localut

import "testing"

// TestWithCyclesOnlyMatchesFunctional pins the public-API guarantee: a
// system in cycles-only mode reports the same timing, cycle counts and
// energy as a functional one for every design, with only verification and
// outputs absent.
func TestWithCyclesOnlyMatchesFunctional(t *testing.T) {
	const m, k, n = 96, 128, 24
	for _, full := range []bool{false, true} {
		opts := []Option{WithSeed(3)}
		if full {
			opts = append(opts, WithFullBankSimulation())
		}
		fs := NewSystem(opts...)
		cs := NewSystem(append(opts, WithCyclesOnly())...)

		for _, d := range Designs {
			fr, err := fs.GEMM(W1A3, m, k, n, d)
			if err != nil {
				t.Fatalf("%v functional: %v", d, err)
			}
			cr, err := cs.GEMM(W1A3, m, k, n, d)
			if err != nil {
				t.Fatalf("%v cycles-only: %v", d, err)
			}
			if !fr.Verified {
				t.Errorf("%v: functional result not verified", d)
			}
			if cr.Verified {
				t.Errorf("%v: cycles-only result claims verification", d)
			}
			if fr.KernelCycles != cr.KernelCycles {
				t.Errorf("%v full=%v: cycles %d != %d", d, full, fr.KernelCycles, cr.KernelCycles)
			}
			if fr.TotalSeconds != cr.TotalSeconds || fr.KernelSeconds != cr.KernelSeconds ||
				fr.HostSeconds != cr.HostSeconds || fr.Transfer != cr.Transfer {
				t.Errorf("%v full=%v: timing diverges: %+v vs %+v", d, full, fr, cr)
			}
			if fr.EnergyJ != cr.EnergyJ {
				t.Errorf("%v full=%v: energy %g J != %g J", d, full, fr.EnergyJ, cr.EnergyJ)
			}
			if fr.P != cr.P || fr.SliceK != cr.SliceK || fr.Streaming != cr.Streaming ||
				fr.BanksSimulated != cr.BanksSimulated {
				t.Errorf("%v full=%v: plan diverges: %+v vs %+v", d, full, fr, cr)
			}
		}
	}
}

// TestCyclesOnlyInference checks end-to-end transformer inference under the
// cycles-only backend against the functional run.
func TestCyclesOnlyInference(t *testing.T) {
	fs := NewSystem()
	cs := NewSystem(WithCyclesOnly())
	opt := InferOptions{Batch: 1}
	fr, err := fs.Infer(BERTBase, W1A3, DesignLoCaLUT, opt)
	if err != nil {
		t.Fatal(err)
	}
	cr, err := cs.Infer(BERTBase, W1A3, DesignLoCaLUT, opt)
	if err != nil {
		t.Fatal(err)
	}
	if fr.TotalSeconds != cr.TotalSeconds {
		t.Errorf("inference seconds diverge: %g vs %g", fr.TotalSeconds, cr.TotalSeconds)
	}
	if fr.EnergyJ != cr.EnergyJ {
		t.Errorf("inference energy diverges: %g vs %g", fr.EnergyJ, cr.EnergyJ)
	}
	if fr.Prefill != cr.Prefill {
		t.Errorf("prefill phases diverge: %+v vs %+v", fr.Prefill, cr.Prefill)
	}
}
