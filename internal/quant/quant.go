// Package quant implements the low-bit quantization substrate of LoCaLUT:
// integer codecs for 1-4 bit weight/activation codes, the symmetric uniform
// quantizer used to produce them from float tensors, and the bit-packing
// helpers that assemble p codes into a single LUT index.
//
// LoCaLUT treats numbers as symbols (§VII-A of the paper): the LUT machinery
// only sees opaque codes, while a Codec defines what integer value each code
// denotes. LUT entries are built from decoded values, so correctness of the
// whole pipeline reduces to "same codec everywhere", which the tests enforce.
package quant

import (
	"fmt"
	"math"
)

// Mode selects how a Codec maps bit patterns to integer values.
type Mode int

const (
	// Unsigned maps code c to value c (0 .. 2^bits-1).
	Unsigned Mode = iota
	// Twos maps codes by two's complement (-2^(bits-1) .. 2^(bits-1)-1).
	Twos
	// Symmetric maps code c to the odd level 2c - (2^bits - 1), giving the
	// sign-symmetric levels binary networks use: 1 bit -> {-1,+1},
	// 2 bits -> {-3,-1,+1,+3}.
	Symmetric
	// TwosSym is two's complement with the most negative level excluded —
	// the symmetric range [-(2^(b-1)-1), 2^(b-1)-1] that symmetric weight
	// quantizers (OmniQuant, KDLSQ-BERT) use. The otherwise-unused minimum
	// bit pattern decodes to 0 so that LUT rows built for it stay within
	// the same entry range; Encode never produces it.
	TwosSym
)

func (m Mode) String() string {
	switch m {
	case Unsigned:
		return "unsigned"
	case Twos:
		return "twos"
	case Symmetric:
		return "symmetric"
	case TwosSym:
		return "twossym"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Codec describes an integer code space of Bits bits with a decode Mode.
// The zero value is an invalid codec; use NewCodec.
type Codec struct {
	Bits int
	Mode Mode
}

// NewCodec validates and returns a codec. Bits must be in [1, 16].
func NewCodec(bits int, mode Mode) (Codec, error) {
	if bits < 1 || bits > 16 {
		return Codec{}, fmt.Errorf("quant: codec bits %d outside [1,16]", bits)
	}
	switch mode {
	case Unsigned, Twos, Symmetric, TwosSym:
	default:
		return Codec{}, fmt.Errorf("quant: unknown mode %d", int(mode))
	}
	if mode == TwosSym && bits < 2 {
		return Codec{}, fmt.Errorf("quant: TwosSym needs at least 2 bits")
	}
	return Codec{Bits: bits, Mode: mode}, nil
}

// MustCodec is NewCodec panicking on error, for static configuration.
func MustCodec(bits int, mode Mode) Codec {
	c, err := NewCodec(bits, mode)
	if err != nil {
		panic(err)
	}
	return c
}

// Levels returns the number of distinct codes, 2^Bits.
func (c Codec) Levels() int { return 1 << c.Bits }

// Mask returns the bit mask covering one code.
func (c Codec) Mask() uint32 { return uint32(1<<c.Bits) - 1 }

// Decode maps a code (low Bits bits of x) to its integer value.
func (c Codec) Decode(x uint32) int32 {
	v := x & c.Mask()
	switch c.Mode {
	case Unsigned:
		return int32(v)
	case Twos:
		half := uint32(1) << (c.Bits - 1)
		if v >= half {
			return int32(v) - int32(c.Levels())
		}
		return int32(v)
	case Symmetric:
		return 2*int32(v) - int32(c.Levels()-1)
	case TwosSym:
		half := uint32(1) << (c.Bits - 1)
		if v == half { // excluded minimum pattern
			return 0
		}
		if v > half {
			return int32(v) - int32(c.Levels())
		}
		return int32(v)
	}
	panic("quant: invalid codec mode")
}

// Encode maps an integer value to the nearest representable code. Values
// outside the representable range are clamped.
func (c Codec) Encode(v int32) uint32 {
	switch c.Mode {
	case Unsigned:
		return uint32(clampI32(v, 0, int32(c.Levels()-1)))
	case Twos:
		lo := -int32(c.Levels() / 2)
		hi := int32(c.Levels()/2 - 1)
		v = clampI32(v, lo, hi)
		return uint32(v) & c.Mask()
	case TwosSym:
		hi := int32(c.Levels()/2 - 1)
		v = clampI32(v, -hi, hi)
		return uint32(v) & c.Mask()
	case Symmetric:
		// v = 2c - (L-1)  =>  c = (v + L - 1) / 2, rounded to nearest level.
		l := int32(c.Levels())
		code := (v + l - 1 + 1) / 2 // +1 implements round-half-up of (v+L-1)/2
		if (v+l-1)%2 == 0 {
			code = (v + l - 1) / 2
		}
		return uint32(clampI32(code, 0, l-1))
	}
	panic("quant: invalid codec mode")
}

// MinVal and MaxVal bound Decode's output range.
func (c Codec) MinVal() int32 {
	switch c.Mode {
	case Unsigned:
		return 0
	case Twos:
		return -int32(c.Levels() / 2)
	case TwosSym:
		return -int32(c.Levels()/2 - 1)
	case Symmetric:
		return -int32(c.Levels() - 1)
	}
	panic("quant: invalid codec mode")
}

func (c Codec) MaxVal() int32 {
	switch c.Mode {
	case Unsigned:
		return int32(c.Levels() - 1)
	case Twos, TwosSym:
		return int32(c.Levels()/2 - 1)
	case Symmetric:
		return int32(c.Levels() - 1)
	}
	panic("quant: invalid codec mode")
}

// MaxAbs returns max(|MinVal|, |MaxVal|), the worst-case magnitude of a
// decoded value — used to size LUT entry widths.
func (c Codec) MaxAbs() int32 {
	a, b := c.MinVal(), c.MaxVal()
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

func (c Codec) String() string {
	return fmt.Sprintf("%db/%s", c.Bits, c.Mode)
}

func clampI32(v, lo, hi int32) int32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// Format is a weight/activation bit-width pairing ("WxAy" in the paper),
// carrying the codec for each side.
type Format struct {
	Weight Codec
	Act    Codec
}

// NewFormat builds the paper's default codec choice for a WxAy pairing:
// 1-bit weights decode to {-1,+1} (Symmetric, as in BinaryBERT), wider
// weights use the symmetric-clipped range of symmetric weight quantizers
// (TwosSym), and activations use two's complement (Fig. 2's "2's compl."
// convention).
func NewFormat(bw, ba int) (Format, error) {
	wMode := TwosSym
	if bw == 1 {
		wMode = Symmetric
	}
	wc, err := NewCodec(bw, wMode)
	if err != nil {
		return Format{}, fmt.Errorf("quant: weight codec: %w", err)
	}
	ac, err := NewCodec(ba, Twos)
	if err != nil {
		return Format{}, fmt.Errorf("quant: activation codec: %w", err)
	}
	return Format{Weight: wc, Act: ac}, nil
}

// MustFormat is NewFormat panicking on error.
func MustFormat(bw, ba int) Format {
	f, err := NewFormat(bw, ba)
	if err != nil {
		panic(err)
	}
	return f
}

// The four quantization settings evaluated in the paper (§VI-A).
var (
	W1A3 = MustFormat(1, 3)
	W1A4 = MustFormat(1, 4)
	W2A2 = MustFormat(2, 2)
	W4A4 = MustFormat(4, 4)
)

// Formats lists the paper's evaluation settings in presentation order.
var Formats = []Format{W1A3, W1A4, W2A2, W4A4}

// Name renders the format as the paper writes it, e.g. "W1A3".
func (f Format) Name() string {
	return fmt.Sprintf("W%dA%d", f.Weight.Bits, f.Act.Bits)
}

// ParseFormat parses "WxAy" names.
func ParseFormat(s string) (Format, error) {
	var bw, ba int
	if _, err := fmt.Sscanf(s, "W%dA%d", &bw, &ba); err != nil {
		return Format{}, fmt.Errorf("quant: cannot parse format %q: %w", s, err)
	}
	return NewFormat(bw, ba)
}

// MaxDot returns the largest absolute value of a p-term dot product of
// decoded weight and activation values, used to pick LUT entry width.
func (f Format) MaxDot(p int) int64 {
	return int64(p) * int64(f.Weight.MaxAbs()) * int64(f.Act.MaxAbs())
}

// Tensor is a quantized 2-D tensor: row-major codes plus the scale that maps
// decoded integers back to real values (real = scale * Decode(code)).
type Tensor struct {
	Rows, Cols int
	Codes      []uint8 // one code per element, low bits used
	Codec      Codec
	Scale      float64
}

// At returns the code at (r, c).
func (t *Tensor) At(r, c int) uint32 { return uint32(t.Codes[r*t.Cols+c]) }

// ValueAt returns the decoded integer at (r, c).
func (t *Tensor) ValueAt(r, c int) int32 { return t.Codec.Decode(t.At(r, c)) }

// RealAt returns the dequantized real value at (r, c).
func (t *Tensor) RealAt(r, c int) float64 {
	return t.Scale * float64(t.ValueAt(r, c))
}

// Quantize performs symmetric absmax quantization of a row-major float
// matrix into the given codec. The scale is chosen so the largest-magnitude
// input maps to the codec's largest-magnitude level; an all-zero input gets
// scale 1 to keep dequantization well-defined. For 1-2 bit codecs on
// heavy-tailed data prefer QuantizeCalibrated — absmax scaling collapses
// most of the mass onto one or two levels there.
func Quantize(data []float64, rows, cols int, codec Codec) (*Tensor, error) {
	if err := checkQuantArgs(data, rows, cols, codec); err != nil {
		return nil, err
	}
	absmax := 0.0
	for _, v := range data {
		if a := math.Abs(v); a > absmax {
			absmax = a
		}
	}
	scale := 1.0
	if absmax > 0 {
		scale = absmax / float64(codec.MaxAbs())
	}
	return quantizeWithScale(data, rows, cols, codec, scale), nil
}

// gaussClip maps a bit width to the MSE-optimal clipping threshold (in
// standard deviations) for Gaussian data — the scaling convention of the
// low-bit quantization literature the paper evaluates with.
var gaussClip = map[int]float64{2: 1.71, 3: 2.15, 4: 2.55, 5: 2.94, 6: 3.29, 7: 3.61, 8: 3.92}

// QuantizeCalibrated quantizes with distribution-aware scaling: 1-bit
// symmetric codecs use the mean-|v| scale of binary networks (BinaryBERT);
// wider codecs clip at the MSE-optimal Gaussian threshold instead of the
// absolute maximum.
func QuantizeCalibrated(data []float64, rows, cols int, codec Codec) (*Tensor, error) {
	if err := checkQuantArgs(data, rows, cols, codec); err != nil {
		return nil, err
	}
	var sumAbs, sumSq, absmax float64
	for _, v := range data {
		a := math.Abs(v)
		sumAbs += a
		sumSq += v * v
		if a > absmax {
			absmax = a
		}
	}
	n := float64(len(data))
	scale := 1.0
	switch {
	case absmax == 0:
		// keep scale 1 for the all-zero tensor
	case codec.Mode == Symmetric && codec.Bits == 1:
		scale = sumAbs / n
	default:
		std := math.Sqrt(sumSq / n)
		alpha, ok := gaussClip[codec.Bits]
		if ok && codec.Mode == TwosSym {
			// TwosSym drops one level (2^b - 1 levels); shrink the clip by
			// the magnitude ratio so e.g. ternary (2-bit) lands near the
			// MSE-optimal threshold instead of zeroing most of the mass.
			alpha *= float64(codec.MaxAbs()) / float64(codec.Levels()/2)
		}
		clip := absmax
		if ok && alpha*std < absmax {
			clip = alpha * std
		}
		scale = clip / float64(codec.MaxAbs())
	}
	if scale == 0 {
		scale = 1
	}
	return quantizeWithScale(data, rows, cols, codec, scale), nil
}

func checkQuantArgs(data []float64, rows, cols int, codec Codec) error {
	if rows <= 0 || cols <= 0 {
		return fmt.Errorf("quant: invalid shape %dx%d", rows, cols)
	}
	if len(data) != rows*cols {
		return fmt.Errorf("quant: data length %d != %d*%d", len(data), rows, cols)
	}
	if codec.Bits > 8 {
		return fmt.Errorf("quant: Tensor stores codes in uint8; codec %v too wide", codec)
	}
	return nil
}

func quantizeWithScale(data []float64, rows, cols int, codec Codec, scale float64) *Tensor {
	t := &Tensor{Rows: rows, Cols: cols, Codec: codec, Scale: scale,
		Codes: make([]uint8, rows*cols)}
	for i, v := range data {
		var code uint32
		if codec.Mode == Symmetric {
			// Symmetric codecs only represent the odd levels 2c-(L-1);
			// pick the nearest level index directly so that e.g. a small
			// negative weight still binarizes to -1, not +1.
			l := float64(codec.Levels())
			c := int32(math.Round((v/scale + l - 1) / 2))
			code = uint32(clampI32(c, 0, int32(l)-1))
		} else {
			code = codec.Encode(int32(math.Round(v / scale)))
		}
		t.Codes[i] = uint8(code)
	}
	return t
}

// Dequantize expands the tensor back to row-major floats.
func (t *Tensor) Dequantize() []float64 {
	out := make([]float64, t.Rows*t.Cols)
	for i, c := range t.Codes {
		out[i] = t.Scale * float64(t.Codec.Decode(uint32(c)))
	}
	return out
}

// PackVector packs codes[0..p) (each fitting in codec.Bits) into a single
// index, element 0 in the least significant bits. It is the row/column index
// construction for operation-packed LUTs (§III-A).
func PackVector(codes []uint32, bits int) uint32 {
	if bits*len(codes) > 32 {
		panic(fmt.Sprintf("quant: PackVector: %d codes x %d bits exceeds 32", len(codes), bits))
	}
	var x uint32
	for i, c := range codes {
		x |= (c & ((1 << bits) - 1)) << (uint(i) * uint(bits))
	}
	return x
}

// UnpackVector splits a packed index back into p codes.
func UnpackVector(x uint32, bits, p int) []uint32 {
	out := make([]uint32, p)
	mask := uint32(1<<bits) - 1
	for i := 0; i < p; i++ {
		out[i] = (x >> (uint(i) * uint(bits))) & mask
	}
	return out
}

// UnpackInto is UnpackVector without allocation.
func UnpackInto(dst []uint32, x uint32, bits int) {
	mask := uint32(1<<bits) - 1
	for i := range dst {
		dst[i] = (x >> (uint(i) * uint(bits))) & mask
	}
}
