package quant

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestCodecDecodeUnsigned(t *testing.T) {
	c := MustCodec(3, Unsigned)
	for code := uint32(0); code < 8; code++ {
		if got := c.Decode(code); got != int32(code) {
			t.Errorf("Decode(%d) = %d", code, got)
		}
	}
	if c.MinVal() != 0 || c.MaxVal() != 7 || c.MaxAbs() != 7 {
		t.Errorf("range = [%d,%d] maxabs %d", c.MinVal(), c.MaxVal(), c.MaxAbs())
	}
}

func TestCodecDecodeTwos(t *testing.T) {
	c := MustCodec(3, Twos)
	want := []int32{0, 1, 2, 3, -4, -3, -2, -1}
	for code, w := range want {
		if got := c.Decode(uint32(code)); got != w {
			t.Errorf("Decode(%d) = %d, want %d", code, got, w)
		}
	}
	if c.MinVal() != -4 || c.MaxVal() != 3 || c.MaxAbs() != 4 {
		t.Errorf("range = [%d,%d] maxabs %d", c.MinVal(), c.MaxVal(), c.MaxAbs())
	}
}

func TestCodecDecodeSymmetric(t *testing.T) {
	c1 := MustCodec(1, Symmetric)
	if c1.Decode(0) != -1 || c1.Decode(1) != 1 {
		t.Errorf("1-bit symmetric: %d %d", c1.Decode(0), c1.Decode(1))
	}
	c2 := MustCodec(2, Symmetric)
	want := []int32{-3, -1, 1, 3}
	for code, w := range want {
		if got := c2.Decode(uint32(code)); got != w {
			t.Errorf("Decode(%d) = %d, want %d", code, got, w)
		}
	}
	if c2.MaxAbs() != 3 {
		t.Errorf("MaxAbs = %d", c2.MaxAbs())
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	codecs := []Codec{
		MustCodec(1, Symmetric), MustCodec(2, Symmetric),
		MustCodec(2, Twos), MustCodec(3, Twos), MustCodec(4, Twos),
		MustCodec(3, Unsigned), MustCodec(8, Twos),
		MustCodec(2, TwosSym), MustCodec(4, TwosSym),
	}
	for _, c := range codecs {
		for code := uint32(0); code < uint32(c.Levels()); code++ {
			if c.Mode == TwosSym && code == uint32(c.Levels()/2) {
				// The excluded minimum pattern decodes to 0 and is never
				// produced by Encode.
				if c.Decode(code) != 0 {
					t.Errorf("%v: excluded pattern decodes to %d, want 0", c, c.Decode(code))
				}
				continue
			}
			v := c.Decode(code)
			back := c.Encode(v)
			if back != code {
				t.Errorf("%v: Encode(Decode(%d)=%d) = %d", c, code, v, back)
			}
		}
	}
}

func TestTwosSymRange(t *testing.T) {
	c := MustCodec(4, TwosSym)
	if c.MinVal() != -7 || c.MaxVal() != 7 || c.MaxAbs() != 7 {
		t.Errorf("TwosSym 4-bit range [%d,%d]", c.MinVal(), c.MaxVal())
	}
	if got := c.Decode(c.Encode(-100)); got != -7 {
		t.Errorf("clamp low = %d", got)
	}
	if _, err := NewCodec(1, TwosSym); err == nil {
		t.Error("accepted 1-bit TwosSym")
	}
}

func TestEncodeClamps(t *testing.T) {
	c := MustCodec(3, Twos)
	if got := c.Decode(c.Encode(100)); got != 3 {
		t.Errorf("clamp high: %d", got)
	}
	if got := c.Decode(c.Encode(-100)); got != -4 {
		t.Errorf("clamp low: %d", got)
	}
	s := MustCodec(2, Symmetric)
	if got := s.Decode(s.Encode(9)); got != 3 {
		t.Errorf("symmetric clamp high: %d", got)
	}
	if got := s.Decode(s.Encode(-9)); got != -3 {
		t.Errorf("symmetric clamp low: %d", got)
	}
}

func TestNewCodecValidation(t *testing.T) {
	if _, err := NewCodec(0, Twos); err == nil {
		t.Error("accepted 0 bits")
	}
	if _, err := NewCodec(17, Twos); err == nil {
		t.Error("accepted 17 bits")
	}
	if _, err := NewCodec(4, Mode(99)); err == nil {
		t.Error("accepted bogus mode")
	}
}

func TestFormats(t *testing.T) {
	if W1A3.Name() != "W1A3" || W4A4.Name() != "W4A4" {
		t.Errorf("names: %s %s", W1A3.Name(), W4A4.Name())
	}
	// Paper defaults: 1-bit weights are +-1.
	if W1A3.Weight.Decode(0) != -1 || W1A3.Weight.Decode(1) != 1 {
		t.Error("W1 weights should decode to {-1,+1}")
	}
	// 3-bit activations are two's complement (Fig. 2).
	if W1A3.Act.Decode(0b011) != 3 || W1A3.Act.Decode(0b111) != -1 {
		t.Error("A3 should be two's complement")
	}
	if len(Formats) != 4 {
		t.Errorf("Formats has %d entries", len(Formats))
	}
}

func TestParseFormat(t *testing.T) {
	f, err := ParseFormat("W2A2")
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "W2A2" {
		t.Errorf("round trip: %s", f.Name())
	}
	if _, err := ParseFormat("garbage"); err == nil {
		t.Error("accepted garbage")
	}
	if _, err := ParseFormat("W0A9"); err == nil {
		t.Error("accepted W0A9")
	}
}

func TestMaxDot(t *testing.T) {
	// W1A3: |w| <= 1, |a| <= 4, p=5 -> 20.
	if got := W1A3.MaxDot(5); got != 20 {
		t.Errorf("W1A3 MaxDot(5) = %d", got)
	}
	// W4A4 with symmetric-clipped weights: |w| <= 7, |a| <= 8, p=3 -> 168.
	if got := W4A4.MaxDot(3); got != 168 {
		t.Errorf("W4A4 MaxDot(3) = %d", got)
	}
}

func TestQuantizeBasic(t *testing.T) {
	data := []float64{-1.0, -0.5, 0, 0.5, 1.0, 0.25}
	tt, err := Quantize(data, 2, 3, MustCodec(3, Twos))
	if err != nil {
		t.Fatal(err)
	}
	// absmax=1, maxabs level=4 -> scale=0.25; values map to -4,-2,0,2,4->3(clamped),1
	wantVals := []int32{-4, -2, 0, 2, 3, 1}
	for i, w := range wantVals {
		got := tt.Codec.Decode(uint32(tt.Codes[i]))
		if got != w {
			t.Errorf("code[%d] decodes to %d, want %d", i, got, w)
		}
	}
	if tt.RealAt(0, 0) != -1.0 {
		t.Errorf("RealAt(0,0) = %g", tt.RealAt(0, 0))
	}
}

func TestQuantizeBinaryWeights(t *testing.T) {
	data := []float64{-0.3, 0.7, 0.0, -0.9}
	tt, err := Quantize(data, 2, 2, MustCodec(1, Symmetric))
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		v := tt.Codec.Decode(uint32(tt.Codes[i]))
		if v != -1 && v != 1 {
			t.Errorf("binary weight decoded to %d", v)
		}
	}
	// Signs must be preserved for clearly-signed inputs.
	if tt.ValueAt(0, 0) != -1 || tt.ValueAt(0, 1) != 1 || tt.ValueAt(1, 1) != -1 {
		t.Errorf("signs: %d %d %d", tt.ValueAt(0, 0), tt.ValueAt(0, 1), tt.ValueAt(1, 1))
	}
}

func TestQuantizeErrorBound(t *testing.T) {
	// Quantization error must be bounded by scale (1 step for Twos,
	// 2 steps for Symmetric since only odd levels exist).
	rng := rand.New(rand.NewSource(3))
	for _, codec := range []Codec{MustCodec(4, Twos), MustCodec(2, Symmetric), MustCodec(3, Twos)} {
		data := make([]float64, 128)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		tt, err := Quantize(data, 8, 16, codec)
		if err != nil {
			t.Fatal(err)
		}
		deq := tt.Dequantize()
		bound := tt.Scale * 1.01
		if codec.Mode == Symmetric {
			bound = 2 * tt.Scale * 1.01
		}
		for i := range data {
			// Clamped values can exceed the step bound; skip saturated ones.
			if math.Abs(data[i]) >= tt.Scale*float64(codec.MaxAbs()) {
				continue
			}
			if err := math.Abs(deq[i] - data[i]); err > bound {
				t.Fatalf("%v: elem %d error %g > bound %g (v=%g scale=%g)",
					codec, i, err, bound, data[i], tt.Scale)
			}
		}
	}
}

func TestQuantizeValidation(t *testing.T) {
	if _, err := Quantize([]float64{1}, 0, 1, MustCodec(2, Twos)); err == nil {
		t.Error("accepted zero rows")
	}
	if _, err := Quantize([]float64{1, 2}, 1, 1, MustCodec(2, Twos)); err == nil {
		t.Error("accepted mismatched length")
	}
	if _, err := Quantize([]float64{1}, 1, 1, MustCodec(16, Twos)); err == nil {
		t.Error("accepted 16-bit codec into uint8 storage")
	}
}

func TestQuantizeAllZeros(t *testing.T) {
	tt, err := Quantize(make([]float64, 4), 2, 2, MustCodec(3, Twos))
	if err != nil {
		t.Fatal(err)
	}
	if tt.Scale != 1.0 {
		t.Errorf("zero tensor scale = %g", tt.Scale)
	}
	for _, c := range tt.Codes {
		if tt.Codec.Decode(uint32(c)) != 0 {
			t.Errorf("zero tensor produced nonzero code %d", c)
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	f := func(raw []uint8, bitsRaw uint8) bool {
		bits := 1 + int(bitsRaw%4)
		p := len(raw)
		if p == 0 || p*bits > 32 {
			return true
		}
		codes := make([]uint32, p)
		for i, b := range raw {
			codes[i] = uint32(b) & ((1 << bits) - 1)
		}
		x := PackVector(codes, bits)
		back := UnpackVector(x, bits, p)
		return reflect.DeepEqual(codes, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestPackVectorLayout(t *testing.T) {
	// Element 0 occupies the least significant bits.
	x := PackVector([]uint32{0b011, 0b000, 0b010}, 3)
	if x != 0b010_000_011 {
		t.Errorf("packed = %09b", x)
	}
}

func TestPackVectorPanicsOnOverflow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("PackVector did not panic")
		}
	}()
	PackVector(make([]uint32, 9), 4) // 36 bits
}

func TestUnpackInto(t *testing.T) {
	dst := make([]uint32, 3)
	UnpackInto(dst, 0b010_000_011, 3)
	if !reflect.DeepEqual(dst, []uint32{3, 0, 2}) {
		t.Errorf("UnpackInto = %v", dst)
	}
}

func TestModeString(t *testing.T) {
	if Unsigned.String() != "unsigned" || Twos.String() != "twos" || Symmetric.String() != "symmetric" {
		t.Error("mode strings")
	}
	if Mode(42).String() != "Mode(42)" {
		t.Error("unknown mode string")
	}
}

func TestTensorAccessors(t *testing.T) {
	tt := &Tensor{Rows: 2, Cols: 2, Codec: MustCodec(2, Twos), Scale: 0.5,
		Codes: []uint8{0, 1, 2, 3}}
	if tt.At(1, 0) != 2 {
		t.Errorf("At(1,0) = %d", tt.At(1, 0))
	}
	if tt.ValueAt(1, 0) != -2 {
		t.Errorf("ValueAt(1,0) = %d", tt.ValueAt(1, 0))
	}
	if tt.RealAt(1, 0) != -1.0 {
		t.Errorf("RealAt(1,0) = %g", tt.RealAt(1, 0))
	}
}

func BenchmarkQuantize(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	data := make([]float64, 768*128)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Quantize(data, 768, 128, W1A3.Act); err != nil {
			b.Fatal(err)
		}
	}
}

func TestQuantizeCalibratedBinary(t *testing.T) {
	// 1-bit symmetric: scale must be mean(|v|), the BinaryBERT convention.
	rng := rand.New(rand.NewSource(4))
	data := make([]float64, 4096)
	var meanAbs float64
	for i := range data {
		data[i] = rng.NormFloat64()
		meanAbs += math.Abs(data[i])
	}
	meanAbs /= float64(len(data))
	tt, err := QuantizeCalibrated(data, 64, 64, MustCodec(1, Symmetric))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tt.Scale-meanAbs)/meanAbs > 1e-12 {
		t.Errorf("binary scale %g, want mean|v| %g", tt.Scale, meanAbs)
	}
	// Calibrated binary must beat absmax binary on MSE.
	abs, err := Quantize(data, 64, 64, MustCodec(1, Symmetric))
	if err != nil {
		t.Fatal(err)
	}
	if mse(tt, data) >= mse(abs, data) {
		t.Error("calibrated binary did not beat absmax binary")
	}
}

func TestQuantizeCalibratedClipping(t *testing.T) {
	// 2-bit TwosSym on Gaussian data: absmax scaling zeroes most weights;
	// calibrated clipping must not.
	rng := rand.New(rand.NewSource(8))
	data := make([]float64, 4096)
	for i := range data {
		data[i] = rng.NormFloat64()
	}
	codec := MustCodec(2, TwosSym)
	cal, err := QuantizeCalibrated(data, 64, 64, codec)
	if err != nil {
		t.Fatal(err)
	}
	abs, err := Quantize(data, 64, 64, codec)
	if err != nil {
		t.Fatal(err)
	}
	zeros := func(tt *Tensor) int {
		n := 0
		for i := range tt.Codes {
			if tt.Codec.Decode(uint32(tt.Codes[i])) == 0 {
				n++
			}
		}
		return n
	}
	if z := zeros(abs); z < len(data)/2 {
		t.Errorf("absmax 2-bit should zero most weights (got %d/%d)", z, len(data))
	}
	if z := zeros(cal); z > len(data)/2 {
		t.Errorf("calibrated 2-bit zeroed %d/%d weights", z, len(data))
	}
	if mse(cal, data) >= mse(abs, data) {
		t.Error("calibrated clipping did not reduce MSE")
	}
}

func TestQuantizeCalibratedZeroTensor(t *testing.T) {
	tt, err := QuantizeCalibrated(make([]float64, 16), 4, 4, MustCodec(4, Twos))
	if err != nil {
		t.Fatal(err)
	}
	if tt.Scale != 1 {
		t.Errorf("zero tensor scale %g", tt.Scale)
	}
}

func TestQuantizeCalibratedValidation(t *testing.T) {
	if _, err := QuantizeCalibrated([]float64{1}, 0, 1, MustCodec(2, Twos)); err == nil {
		t.Error("accepted zero rows")
	}
}

func mse(tt *Tensor, data []float64) float64 {
	deq := tt.Dequantize()
	var s float64
	for i := range data {
		d := deq[i] - data[i]
		s += d * d
	}
	return s / float64(len(data))
}
