// Package workload generates the seeded synthetic matrices the evaluation
// runs on. The paper's artifact likewise uses generated data ("Generated
// datasets were used... the values of the generated elements remain within
// the representable range defined by the activation and weight bitwidths",
// Appendix C-4): execution time of every kernel is shape-determined, so
// Gaussian-distributed codes exercise the identical code paths as model
// tensors while staying reproducible from a seed.
package workload

import (
	"math"
	"math/rand"

	"github.com/ais-snu/localut/internal/quant"
)

// Gaussian returns rows x cols standard-normal floats from the seed.
func Gaussian(rows, cols int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, rows*cols)
	for i := range out {
		out[i] = rng.NormFloat64()
	}
	return out
}

// QuantizedGaussian quantizes a Gaussian matrix under the codec with
// calibrated (distribution-aware) scaling. DNN weights and activations are
// near-Gaussian post-normalization, so this is the distribution the PQ
// error analysis and LUT column statistics see.
func QuantizedGaussian(rows, cols int, codec quant.Codec, seed int64) *quant.Tensor {
	t, err := quant.QuantizeCalibrated(Gaussian(rows, cols, seed), rows, cols, codec)
	if err != nil {
		// Shapes are caller-controlled constants; a failure here is a bug.
		panic(err)
	}
	return t
}

// UniformCodes returns rows x cols codes drawn uniformly from the codec's
// encodable space (the excluded TwosSym pattern is never drawn), matching
// the artifact's "values within the representable range".
func UniformCodes(rows, cols int, codec quant.Codec, seed int64) []uint8 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]uint8, rows*cols)
	excluded := -1
	if codec.Mode == quant.TwosSym {
		excluded = codec.Levels() / 2
	}
	for i := range out {
		for {
			c := rng.Intn(codec.Levels())
			if c != excluded {
				out[i] = uint8(c)
				break
			}
		}
	}
	return out
}

// GEMMPair bundles the quantized operands of one synthetic GEMM.
type GEMMPair struct {
	M, K, N int
	Fmt     quant.Format
	W       *quant.Tensor // M x K
	A       *quant.Tensor // K x N
}

// NewGEMMPair generates a seeded W (M x K) and A (K x N) pair under the
// format's codecs.
func NewGEMMPair(m, k, n int, f quant.Format, seed int64) *GEMMPair {
	return &GEMMPair{
		M: m, K: k, N: n, Fmt: f,
		W: QuantizedGaussian(m, k, f.Weight, seed),
		A: QuantizedGaussian(k, n, f.Act, seed+1),
	}
}

// FrobeniusError returns ||got-want||_F / ||want||_F over float matrices,
// the relative-error metric the accuracy proxy consumes.
func FrobeniusError(got, want []float64) float64 {
	var num, den float64
	for i := range want {
		d := got[i] - want[i]
		num += d * d
		den += want[i] * want[i]
	}
	if den == 0 {
		if num == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Sqrt(num / den)
}
