package workload

import "fmt"

// MultiArrival merges independent per-class Poisson processes into one
// deterministic arrival stream — the cluster simulator's traffic source,
// where each SLO class is its own open-loop population with its own rate.
// Every class draws from its own seeded generator, so adding or removing
// a class never perturbs the other classes' streams; the merge picks the
// earliest pending arrival, breaking exact ties by the lowest class index
// so the merged order is a pure function of (rates, seed).
type MultiArrival struct {
	samplers []*ArrivalSampler
	next     []float64 // absolute time of each class's pending arrival
}

// classSeedStride separates per-class generator seeds. Any fixed odd
// stride works; a large prime keeps the derived seeds visibly unrelated.
const classSeedStride = 7919

// NewMultiArrival builds a merged arrival source over one Poisson process
// per class, class i arriving at rates[i] requests/second from seed
// seed + i*classSeedStride.
func NewMultiArrival(rates []float64, seed int64) (*MultiArrival, error) {
	if len(rates) == 0 {
		return nil, fmt.Errorf("workload: no arrival classes")
	}
	m := &MultiArrival{
		samplers: make([]*ArrivalSampler, len(rates)),
		next:     make([]float64, len(rates)),
	}
	for i, r := range rates {
		s, err := NewArrivalSampler(r, seed+int64(i)*classSeedStride)
		if err != nil {
			return nil, fmt.Errorf("workload: class %d: %w", i, err)
		}
		m.samplers[i] = s
		m.next[i] = s.Next()
	}
	return m, nil
}

// Next pops the earliest pending arrival across all classes and returns
// its absolute time and class index. Times are non-decreasing.
func (m *MultiArrival) Next() (t float64, class int) {
	class = 0
	t = m.next[0]
	for i := 1; i < len(m.next); i++ {
		if m.next[i] < t {
			t, class = m.next[i], i
		}
	}
	m.next[class] = t + m.samplers[class].Next()
	return t, class
}
