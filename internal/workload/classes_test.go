package workload

import (
	"math"
	"testing"
)

func TestMultiArrivalValidation(t *testing.T) {
	if _, err := NewMultiArrival(nil, 1); err == nil {
		t.Error("empty class list accepted")
	}
	if _, err := NewMultiArrival([]float64{10, 0}, 1); err == nil {
		t.Error("zero-rate class accepted")
	}
	if _, err := NewMultiArrival([]float64{10, -5}, 1); err == nil {
		t.Error("negative-rate class accepted")
	}
}

// TestMultiArrivalOrderedAndDeterministic pins the merge contract: the
// stream is non-decreasing in time and a pure function of (rates, seed).
func TestMultiArrivalOrderedAndDeterministic(t *testing.T) {
	rates := []float64{100, 30, 5}
	a, err := NewMultiArrival(rates, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewMultiArrival(rates, 7)
	if err != nil {
		t.Fatal(err)
	}
	last := 0.0
	for i := 0; i < 10000; i++ {
		ta, ca := a.Next()
		tb, cb := b.Next()
		if ta != tb || ca != cb {
			t.Fatalf("draw %d diverged: (%g, %d) vs (%g, %d)", i, ta, ca, tb, cb)
		}
		if ta < last {
			t.Fatalf("draw %d went backwards: %g after %g", i, ta, last)
		}
		last = ta
	}
}

// TestMultiArrivalPerClassRates checks each class realizes its own rate:
// the merge must not starve or double-count any population.
func TestMultiArrivalPerClassRates(t *testing.T) {
	rates := []float64{200, 50}
	m, err := NewMultiArrival(rates, 1)
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 100.0
	counts := make([]int, len(rates))
	for {
		at, class := m.Next()
		if at > horizon {
			break
		}
		counts[class]++
	}
	for i, r := range rates {
		want := r * horizon
		got := float64(counts[i])
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("class %d realized %g arrivals over %gs, want ~%g",
				i, got, horizon, want)
		}
	}
}

// TestMultiArrivalClassStreamsIndependent pins seed isolation: class 0's
// stream is identical whether or not other classes exist alongside it.
func TestMultiArrivalClassStreamsIndependent(t *testing.T) {
	solo, err := NewMultiArrival([]float64{50}, 3)
	if err != nil {
		t.Fatal(err)
	}
	duo, err := NewMultiArrival([]float64{50, 500}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var soloTimes, duoTimes []float64
	for len(soloTimes) < 200 {
		at, _ := solo.Next()
		soloTimes = append(soloTimes, at)
	}
	for len(duoTimes) < 200 {
		at, class := duo.Next()
		if class == 0 {
			duoTimes = append(duoTimes, at)
		}
	}
	for i := range soloTimes {
		if soloTimes[i] != duoTimes[i] {
			t.Fatalf("class 0 arrival %d moved when class 1 was added: %g vs %g",
				i, soloTimes[i], duoTimes[i])
		}
	}
}
