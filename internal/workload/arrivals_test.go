package workload

import (
	"math"
	"testing"

	"github.com/ais-snu/localut/internal/quant"
)

// TestArrivalReproducible mirrors TestGaussianReproducible for the arrival
// process: the serving simulator's determinism rests on it.
func TestArrivalReproducible(t *testing.T) {
	a, err := NewArrivalSampler(100, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewArrivalSampler(100, 7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different arrival gaps")
		}
	}
	c, _ := NewArrivalSampler(100, 8)
	same := true
	a2, _ := NewArrivalSampler(100, 7)
	for i := 0; i < 100; i++ {
		if a2.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical arrival streams")
	}
}

func TestArrivalMeanRate(t *testing.T) {
	s, err := NewArrivalSampler(250, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += s.Next()
	}
	mean := sum / n
	if math.Abs(mean-1.0/250) > 0.05/250 {
		t.Errorf("mean inter-arrival %g, want ~%g", mean, 1.0/250)
	}
}

func TestArrivalRejectsBadRate(t *testing.T) {
	if _, err := NewArrivalSampler(0, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewArrivalSampler(-5, 1); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestLengthReproducible(t *testing.T) {
	a, err := NewLengthSampler(16, 256, 128, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewLengthSampler(16, 256, 128, 7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed produced different lengths")
		}
	}
	c, _ := NewLengthSampler(16, 256, 128, 8)
	same := true
	a2, _ := NewLengthSampler(16, 256, 128, 7)
	for i := 0; i < 100; i++ {
		if a2.Next() != c.Next() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical length streams")
	}
}

func TestLengthBounded(t *testing.T) {
	s, err := NewLengthSampler(16, 256, 128, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000; i++ {
		n := s.Next()
		if n < 16 || n > 256 {
			t.Fatalf("sampled length %d outside [16, 256]", n)
		}
	}
}

// TestLengthRealizedMean pins the rounding fix: over 10k samples with a
// small mean-min scale and a far-away max (so clipping is negligible),
// the realized mean must sit within 2.5% of the requested mean. The old
// floor truncation biased every sample down ~half a token, landing the
// realized mean around 5.55 here — more than 7% low.
func TestLengthRealizedMean(t *testing.T) {
	const min, max, mean, n = 4, 1024, 6.0, 10000
	s, err := NewLengthSampler(min, max, mean, 11)
	if err != nil {
		t.Fatal(err)
	}
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(s.Next())
	}
	realized := sum / n
	if math.Abs(realized-mean) > 0.025*mean {
		t.Errorf("realized mean %g drifted from requested %g (bound 2.5%%)", realized, mean)
	}
}

func TestLengthDegenerate(t *testing.T) {
	s, err := NewLengthSampler(64, 64, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if n := s.Next(); n != 64 {
			t.Fatalf("degenerate sampler returned %d, want 64", n)
		}
	}
}

func TestLengthRejectsBadBounds(t *testing.T) {
	cases := []struct {
		min, max int
		mean     float64
	}{
		{0, 10, 5}, {10, 5, 7}, {16, 256, 8}, {16, 256, 300},
	}
	for _, c := range cases {
		if _, err := NewLengthSampler(c.min, c.max, c.mean, 1); err == nil {
			t.Errorf("NewLengthSampler(%d, %d, %g) accepted", c.min, c.max, c.mean)
		}
	}
}

func TestShapePairCarriesNoData(t *testing.T) {
	p := NewShapePair(64, 32, 16, quant.W1A3)
	if p.W != nil || p.A != nil {
		t.Error("shape pair materialized operands")
	}
	if p.M != 64 || p.K != 32 || p.N != 16 {
		t.Errorf("shape pair dims %dx%dx%d", p.M, p.K, p.N)
	}
}
