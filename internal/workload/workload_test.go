package workload

import (
	"math"
	"testing"

	"github.com/ais-snu/localut/internal/quant"
)

func TestGaussianReproducible(t *testing.T) {
	a := Gaussian(10, 10, 7)
	b := Gaussian(10, 10, 7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different data")
		}
	}
	c := Gaussian(10, 10, 8)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical data")
	}
}

func TestGaussianMoments(t *testing.T) {
	data := Gaussian(200, 200, 3)
	var sum, sq float64
	for _, v := range data {
		sum += v
		sq += v * v
	}
	n := float64(len(data))
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.02 || math.Abs(variance-1) > 0.05 {
		t.Errorf("mean=%g var=%g, want ~N(0,1)", mean, variance)
	}
}

func TestUniformCodesAvoidExcludedPattern(t *testing.T) {
	codec := quant.MustCodec(4, quant.TwosSym)
	codes := UniformCodes(64, 64, codec, 5)
	excluded := uint8(codec.Levels() / 2)
	for _, c := range codes {
		if c == excluded {
			t.Fatal("generated the excluded TwosSym pattern")
		}
		if int(c) >= codec.Levels() {
			t.Fatalf("code %d out of range", c)
		}
	}
}

func TestNewGEMMPairShapes(t *testing.T) {
	p := NewGEMMPair(8, 16, 4, quant.W2A2, 9)
	if p.W.Rows != 8 || p.W.Cols != 16 || p.A.Rows != 16 || p.A.Cols != 4 {
		t.Errorf("shapes: W %dx%d A %dx%d", p.W.Rows, p.W.Cols, p.A.Rows, p.A.Cols)
	}
	if p.W.Scale <= 0 || p.A.Scale <= 0 {
		t.Error("scales must be positive")
	}
}

func TestFrobeniusError(t *testing.T) {
	want := []float64{3, 4}
	if e := FrobeniusError([]float64{3, 4}, want); e != 0 {
		t.Errorf("identical: %g", e)
	}
	if e := FrobeniusError([]float64{0, 0}, want); math.Abs(e-1) > 1e-12 {
		t.Errorf("zero estimate: %g, want 1", e)
	}
	if e := FrobeniusError([]float64{1, 1}, []float64{0, 0}); !math.IsInf(e, 1) {
		t.Errorf("zero reference: %g, want +inf", e)
	}
	if e := FrobeniusError([]float64{0, 0}, []float64{0, 0}); e != 0 {
		t.Errorf("both zero: %g", e)
	}
}
