package workload

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/ais-snu/localut/internal/quant"
)

// ArrivalSampler draws exponential inter-arrival gaps — the open-loop
// Poisson process serving evaluations offer at a fixed request rate. Like
// Gaussian, it is fully determined by its seed: the same (rate, seed) pair
// reproduces the same arrival stream bit for bit on every run and platform
// (math/rand's generator is pure Go).
type ArrivalSampler struct {
	rng  *rand.Rand
	rate float64
}

// NewArrivalSampler builds a Poisson arrival source with the given mean
// rate (requests per second).
func NewArrivalSampler(ratePerSec float64, seed int64) (*ArrivalSampler, error) {
	if ratePerSec <= 0 {
		return nil, fmt.Errorf("workload: arrival rate %g must be positive", ratePerSec)
	}
	return &ArrivalSampler{rng: rand.New(rand.NewSource(seed)), rate: ratePerSec}, nil
}

// Next returns the gap in seconds until the next arrival.
func (a *ArrivalSampler) Next() float64 {
	return a.rng.ExpFloat64() / a.rate
}

// LengthSampler draws per-request sequence lengths from a bounded
// shifted-exponential distribution: lengths start at Min, decay with mean
// Mean, and clip at Max — the short-head/long-tail shape of real serving
// prompts, without unbounded outliers that would blow up batch shapes.
// Deterministic from its seed, like every sampler in this package.
type LengthSampler struct {
	rng      *rand.Rand
	min, max int
	mean     float64
}

// NewLengthSampler builds a sampler for lengths in [min, max] with the
// given target mean.
func NewLengthSampler(min, max int, mean float64, seed int64) (*LengthSampler, error) {
	switch {
	case min <= 0:
		return nil, fmt.Errorf("workload: min length %d must be positive", min)
	case max < min:
		return nil, fmt.Errorf("workload: length bounds [%d, %d] inverted", min, max)
	case mean < float64(min) || mean > float64(max):
		return nil, fmt.Errorf("workload: mean length %g outside [%d, %d]", mean, min, max)
	}
	return &LengthSampler{rng: rand.New(rand.NewSource(seed)), min: min, max: max, mean: mean}, nil
}

// Next returns one sampled sequence length. The exponential draw rounds
// to the nearest integer: floor-truncating it biases every sample down by
// half a token on average, which drags the realized mean measurably below
// the requested one when the mean-min scale is small.
func (l *LengthSampler) Next() int {
	if l.min == l.max {
		return l.min
	}
	n := l.min + int(math.Round(l.rng.ExpFloat64()*(l.mean-float64(l.min))))
	if n > l.max {
		n = l.max
	}
	return n
}

// NewShapePair describes an M x K x N GEMM in the format without
// materializing operands: W and A stay nil. Shape pairs are valid only for
// cycles-only execution, where no data flows through the kernels — the
// engine rejects them in functional mode. They let a serving simulator
// price millions of forward passes without generating a single synthetic
// tensor.
func NewShapePair(m, k, n int, f quant.Format) *GEMMPair {
	return &GEMMPair{M: m, K: k, N: n, Fmt: f}
}
