package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
)

// TestFigureModeEquivalence regenerates figures under both execution modes
// and requires identical rendered tables and values — including the drivers
// that bypass the engine and run kernels on their own DPUs (fig03, fig18).
func TestFigureModeEquivalence(t *testing.T) {
	for _, id := range []string{"fig03", "fig09", "fig18"} {
		fs := NewQuick()
		fr, err := fs.RunFigure(id)
		if err != nil {
			t.Fatalf("%s functional: %v", id, err)
		}
		cs := NewQuick()
		cs.Mode = kernels.CyclesOnly
		cr, err := cs.RunFigure(id)
		if err != nil {
			t.Fatalf("%s cycles-only: %v", id, err)
		}

		var fb, cb strings.Builder
		fr.Render(&fb)
		cr.Render(&cb)
		if fb.String() != cb.String() {
			t.Errorf("%s: rendered tables diverge across modes\nfunctional:\n%s\ncycles-only:\n%s",
				id, fb.String(), cb.String())
		}
		if !reflect.DeepEqual(fr.Values, cr.Values) {
			t.Errorf("%s: values diverge across modes\n functional  %v\n cycles-only %v", id, fr.Values, cr.Values)
		}
	}
}

// TestSweepModeEquivalence pins GEMMSweep across modes: identical rows up
// to the Verified flag.
func TestSweepModeEquivalence(t *testing.T) {
	fn, err := GEMMSweep(96, 64, 24, quant.W1A3, 2, kernels.Functional)
	if err != nil {
		t.Fatal(err)
	}
	cy, err := GEMMSweep(96, 64, 24, quant.W1A3, 2, kernels.CyclesOnly)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fn {
		if !fn[i].Verified {
			t.Errorf("%s: functional sweep row not verified", fn[i].Design)
		}
		if cy[i].Verified {
			t.Errorf("%s: cycles-only sweep row claims verification", cy[i].Design)
		}
		if !fn[i].SameCost(cy[i]) {
			t.Errorf("sweep rows diverge across modes\n functional  %+v\n cycles-only %+v", fn[i], cy[i])
		}
	}
}
