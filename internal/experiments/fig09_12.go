package experiments

import (
	"fmt"

	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/trace"
)

// fig09Shapes are the two representative GEMM shapes of §VI-B.
func (s *Suite) fig09Shapes() [][3]int {
	if s.Quick {
		return [][3]int{{192, 192, 16}, {768, 192, 16}}
	}
	return [][3]int{{768, 768, 128}, {3072, 768, 128}}
}

// Fig09 regenerates Fig. 9: GEMM speedups of every design point over Naive
// PIM across the four quantization settings and two matrix shapes.
func (s *Suite) Fig09() (*Result, error) {
	tab := trace.NewTable("GEMM speedup over Naive PIM",
		"shape", "format", "NaivePIM", "LTC", "OP", "OP+LC", "OP+LC+RC", "LoCaLUT")
	res := newResult("fig09", "GEMM performance comparison (Fig. 9)", tab)

	var overNaive, overLTC []float64
	maxNaive, maxLTC := 0.0, 0.0
	for _, sh := range s.fig09Shapes() {
		for _, f := range quant.Formats {
			totals := map[kernels.Variant]float64{}
			for _, v := range kernels.Variants {
				rep, err := s.runGEMM(sh[0], sh[1], sh[2], f, v, gemm.Options{})
				if err != nil {
					return nil, err
				}
				totals[v] = rep.Total
			}
			sp := func(v kernels.Variant) float64 { return totals[kernels.Naive] / totals[v] }
			tab.Add(fmt.Sprintf("(%d,%d,%d)", sh[0], sh[1], sh[2]), f.Name(),
				1.0, sp(kernels.LTC), sp(kernels.OP), sp(kernels.OPLC),
				sp(kernels.OPLCRC), sp(kernels.LoCaLUT))
			overNaive = append(overNaive, sp(kernels.LoCaLUT))
			ltcRatio := totals[kernels.LTC] / totals[kernels.LoCaLUT]
			overLTC = append(overLTC, ltcRatio)
			if sp(kernels.LoCaLUT) > maxNaive {
				maxNaive = sp(kernels.LoCaLUT)
			}
			if ltcRatio > maxLTC {
				maxLTC = ltcRatio
			}
		}
	}
	gmN := trace.Geomean(overNaive)
	gmL := trace.Geomean(overLTC)
	res.Values["geomean_over_naive"] = gmN
	res.Values["geomean_over_ltc"] = gmL
	res.Values["max_over_naive"] = maxNaive
	res.Values["max_over_ltc"] = maxLTC
	res.notef("LoCaLUT geomean %.2fx over Naive (paper: 2.87x), %.2fx over LTC (paper: 1.77x)", gmN, gmL)
	res.notef("max %.2fx over Naive (paper: 4.73x), %.2fx over LTC (paper: 1.93x)", maxNaive, maxLTC)
	return res, nil
}

// fig10Configs are the model/format pairs of §VI-C.
type modelFormat struct {
	model string
	fmt   quant.Format
}

func fig10Configs() []modelFormat {
	return []modelFormat{
		{"BERT", quant.W1A3}, {"BERT", quant.W1A4}, {"BERT", quant.W2A2}, {"BERT", quant.W4A4},
		{"ViT", quant.W2A2}, {"ViT", quant.W4A4},
		{"OPT", quant.W4A4},
	}
}

// Fig10 regenerates Fig. 10: end-to-end model speedups over Naive PIM for
// {Naive, LTC, OP, LoCaLUT}.
func (s *Suite) Fig10() (*Result, error) {
	tab := trace.NewTable("End-to-end speedup over Naive PIM",
		"model", "format", "NaivePIM", "LTC", "OP", "LoCaLUT")
	res := newResult("fig10", "representative DNN workloads (Fig. 10)", tab)

	variants := []kernels.Variant{kernels.Naive, kernels.LTC, kernels.OP, kernels.LoCaLUT}
	var overNaive, overLTC, overOP []float64
	for _, mf := range fig10Configs() {
		totals := map[kernels.Variant]float64{}
		for _, v := range variants {
			rep, err := s.runModel(mf.model, mf.fmt, v)
			if err != nil {
				return nil, err
			}
			totals[v] = rep.Total
		}
		sp := func(v kernels.Variant) float64 { return totals[kernels.Naive] / totals[v] }
		tab.Add(mf.model, mf.fmt.Name(), 1.0, sp(kernels.LTC), sp(kernels.OP), sp(kernels.LoCaLUT))
		overNaive = append(overNaive, sp(kernels.LoCaLUT))
		overLTC = append(overLTC, totals[kernels.LTC]/totals[kernels.LoCaLUT])
		overOP = append(overOP, totals[kernels.OP]/totals[kernels.LoCaLUT])
		res.Values[fmt.Sprintf("speedup_%s_%s", mf.model, mf.fmt.Name())] = sp(kernels.LoCaLUT)
		res.Values[fmt.Sprintf("over_op_%s_%s", mf.model, mf.fmt.Name())] =
			totals[kernels.OP] / totals[kernels.LoCaLUT]
	}
	gmN, gmL, gmOP := trace.Geomean(overNaive), trace.Geomean(overLTC), trace.Geomean(overOP)
	res.Values["geomean_over_naive"] = gmN
	res.Values["geomean_over_ltc"] = gmL
	res.Values["geomean_over_op"] = gmOP
	res.notef("end-to-end geomean %.2fx over Naive (paper: 1.77x), %.2fx over LTC (paper: 1.82x)", gmN, gmL)
	res.notef("optimizations add %.0f%% over OP (paper: 22%%)", (gmOP-1)*100)
	return res, nil
}

// Fig11 regenerates Fig. 11: LoCaLUT speedup over Naive PIM while sweeping
// the weight matrix dimensions (N = 128), for W1A3 and W2A2.
func (s *Suite) Fig11() (*Result, error) {
	dims := []int{128, 256, 512, 768, 1024}
	n := 128
	if s.Quick {
		dims = []int{128, 256}
		n = 16
	}
	tab := trace.NewTable("LoCaLUT speedup over Naive PIM (N=128)",
		"format", "M", "K", "speedup")
	res := newResult("fig11", "matrix size sensitivity (Fig. 11)", tab)

	var all []float64
	for _, f := range []quant.Format{quant.W1A3, quant.W2A2} {
		var sub []float64
		for _, m := range dims {
			for _, k := range dims {
				naive, err := s.runGEMM(m, k, n, f, kernels.Naive, gemm.Options{})
				if err != nil {
					return nil, err
				}
				loca, err := s.runGEMM(m, k, n, f, kernels.LoCaLUT, gemm.Options{})
				if err != nil {
					return nil, err
				}
				sp := naive.Total / loca.Total
				tab.Add(f.Name(), m, k, sp)
				sub = append(sub, sp)
				all = append(all, sp)
			}
		}
		res.Values["geomean_"+f.Name()] = trace.Geomean(sub)
	}
	gm := trace.Geomean(all)
	res.Values["geomean"] = gm
	lo, hi := trace.MinMax(all)
	res.notef("geomean speedup %.2fx across all matrix sizes (paper: 2.86x); range %.2fx-%.2fx, consistently > 1", gm, lo, hi)
	return res, nil
}

// Fig12 regenerates Fig. 12: packing-degree sensitivity under W2A2 with
// K=768, N=128 and M in {192, 768, 3072}: speedup over Naive PIM plus the
// LUT capacity at each p.
func (s *Suite) Fig12() (*Result, error) {
	f := quant.W2A2
	k := s.scale(768, 192)
	n := s.scale(128, 16)
	ms := []int{192, 768, 3072}
	if s.Quick {
		ms = []int{192, 768}
	}
	tab := trace.NewTable("Packing degree sensitivity (W2A2, K=768, N=128)",
		"M", "p", "capacity (B)", "streaming", "speedup over Naive")
	res := newResult("fig12", "p sensitivity (Fig. 12)", tab)

	pLocal := s.Engine.Cfg.WRAMLUTBudget()
	_ = pLocal
	for _, m := range ms {
		naive, err := s.runGEMM(m, k, n, f, kernels.Naive, gemm.Options{})
		if err != nil {
			return nil, err
		}
		var best float64
		bestP := 0
		for p := 1; p <= 6; p++ {
			spec := lut.MustSpec(f, p)
			streaming := spec.CombinedBytes() > s.Engine.Cfg.WRAMLUTBudget()
			rep, err := s.runGEMM(m, k, n, f, kernels.LoCaLUT,
				gemm.Options{ForceP: p, ForceStreaming: streaming})
			if err != nil {
				return nil, err
			}
			sp := naive.Total / rep.Total
			tab.Add(m, p, fmt.Sprintf("%d", spec.CombinedBytes()), streaming, sp)
			if sp > best {
				best, bestP = sp, p
			}
		}
		res.Values[fmt.Sprintf("best_p_M%d", m)] = float64(bestP)
		res.Values[fmt.Sprintf("best_speedup_M%d", m)] = best
	}
	res.notef("speedup grows with p and larger M benefits from higher p (paper: performance improves with M at p=6)")
	return res, nil
}
