package experiments

import (
	"fmt"
	"math"

	"github.com/ais-snu/localut/internal/banksim"
	"github.com/ais-snu/localut/internal/costmodel"
	"github.com/ais-snu/localut/internal/fp"
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/hostsim"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/trace"
)

// Fig17 regenerates the CPU/GPU comparison on the (12288, 192, 65536)
// GEMM across bit-widths: execution time and energy.
func (s *Suite) Fig17() (*Result, error) {
	// Always the paper's full shape: the GPU/LoCaLUT crossover only shows
	// at scale, and the simulation cost stays modest (one tile per run).
	m, k, n := 12288, 192, 65536
	tab := trace.NewTable("CPU / GPU / LoCaLUT on a large GEMM",
		"format", "device", "seconds", "joules")
	res := newResult("fig17", "comparison with CPU and GPU (Fig. 17)", tab)

	cpu, gpu := hostsim.XeonGold5215(), hostsim.RTX2080Ti()
	for _, f := range quant.Formats {
		rc, err := cpu.GEMM(m, k, n, f)
		if err != nil {
			return nil, err
		}
		rg, err := gpu.GEMM(m, k, n, f)
		if err != nil {
			return nil, err
		}
		rep, err := s.runGEMM(m, k, n, f, kernels.LoCaLUT, gemm.Options{})
		if err != nil {
			return nil, err
		}
		e := s.Energy.Price(&rep.Meter, rep.HostOps, rep.Total)
		tab.Add(f.Name(), "CPU", rc.Seconds, rc.Joules)
		tab.Add(f.Name(), "GPU", rg.Seconds, rg.Joules)
		tab.Add(f.Name(), "LoCaLUT", rep.Total, e.TotalJ)
		res.Values["cpu_over_localut_"+f.Name()] = rc.Seconds / rep.Total
		res.Values["gpu_over_localut_"+f.Name()] = rg.Seconds / rep.Total
	}
	res.notef("LoCaLUT beats the CPU at every bit-width; the GPU advantage flips at W4A4 (paper: degradation occurs on the higher W4A4 bitwidth)")
	return res, nil
}

// fig18Case is one cost-model validation configuration.
type fig18Case struct {
	f      quant.Format
	pRange [2]int
	m      int
}

// Fig18 validates the §IV-D cost model: predicted vs simulated single-DPU
// execution time across packing degrees for W4A4 (p=1..3) and W2A2
// (p=4..6) on (768,768,768) and (3072,768,768).
func (s *Suite) Fig18() (*Result, error) {
	kDim := s.scale(768, 192)
	nFull := s.scale(768, 96)
	nSim := 16 // simulated columns; cost is column-linear on one DPU
	if s.Quick {
		nSim = 4
	}
	ms := []int{768, 3072}
	if s.Quick {
		ms = []int{192, 768}
	}
	cases := []fig18Case{}
	for _, m := range ms {
		cases = append(cases,
			fig18Case{quant.W4A4, [2]int{1, 3}, m},
			fig18Case{quant.W2A2, [2]int{4, 6}, m},
		)
	}

	tab := trace.NewTable("Cost model validation (single DPU)",
		"format", "(M,K,N)", "p", "predicted (s)", "simulated (s)", "error")
	res := newResult("fig18", "cost model validation (Fig. 18)", tab)

	model := s.Engine.Model
	cfg := s.Engine.Cfg
	costs := s.Engine.Costs
	var errSum, errN float64
	for _, c := range cases {
		pLocal := costmodel.MaxP(c.f, cfg.WRAMLUTBudget(), costmodel.SizeCombined)
		choice, err := costmodel.Choose(model, c.f, c.m, kDim, nFull, &cfg)
		if err != nil {
			return nil, err
		}
		for p := c.pRange[0]; p <= c.pRange[1]; p++ {
			spec, err := lut.NewSpec(c.f, p)
			if err != nil {
				return nil, err
			}
			streaming := p > pLocal
			// Model prediction at full N.
			var predicted float64
			if streaming {
				kSlices := costmodel.MaxSliceK(spec, &cfg)
				if kSlices == 0 {
					continue
				}
				predicted = model.StreamTimeBytes(spec, c.m, kDim, nFull, kSlices)
			} else {
				predicted = model.BufferTime(p, c.m, kDim, nFull)
			}

			// Single-DPU simulation on nSim columns, scaled to full N.
			tile, err := s.kernelTile(c.m, kDim, nSim, c.f)
			if err != nil {
				return nil, err
			}
			dpu := s.kernelDPU(&cfg)
			var kres *kernels.Result
			if streaming {
				kSlices := costmodel.MaxSliceK(spec, &cfg)
				kres, err = kernels.NewStreamKernel(costs, spec, kSlices).Run(dpu, tile)
			} else {
				kres, err = kernels.NewOPLCRCKernel(costs, spec).Run(dpu, tile)
			}
			if err != nil {
				return nil, err
			}
			simulated := kres.Seconds * float64(nFull) / float64(nSim)
			relErr := math.Abs(predicted-simulated) / simulated
			tab.Add(c.f.Name(), fmt.Sprintf("(%d,%d,%d)", c.m, kDim, nFull), p,
				predicted, simulated, fmt.Sprintf("%.1f%%", 100*relErr))
			errSum += relErr
			errN++
		}
		res.Values[fmt.Sprintf("model_pick_%s_M%d", c.f.Name(), c.m)] = float64(choice.P)
	}
	mean := errSum / errN
	res.Values["mean_rel_error"] = mean
	res.notef("mean |predicted-simulated|/simulated = %.1f%% across all configurations (paper: 'the model generally predicts correctly')", 100*mean)
	return res, nil
}

// Fig19 regenerates the real-world scenarios: (a) prefill/decode phase
// times for BERT and OPT at several output lengths, OP vs LoCaLUT;
// (b) batch-size sweep of LoCaLUT speedup over OP.
func (s *Suite) Fig19() (*Result, error) {
	tab := trace.NewTable("Prefill/decode and batch scaling",
		"scenario", "variant/batch", "seconds or speedup")
	res := newResult("fig19", "real-world scenarios (Fig. 19)", tab)

	// (a) Phase comparison.
	type phaseCase struct {
		model string
		f     quant.Format
		out   int
	}
	cases := []phaseCase{{"BERT", quant.W1A3, 0}, {"OPT", quant.W4A4, 4},
		{"OPT", quant.W4A4, 8}, {"OPT", quant.W4A4, 16}}
	if s.Quick {
		cases = cases[:2]
	}
	var prefillSpeedups, decodeSpeedups []float64
	for _, c := range cases {
		op, err := s.runModelOut(c.model, c.f, kernels.OP, c.out)
		if err != nil {
			return nil, err
		}
		lc, err := s.runModelOut(c.model, c.f, kernels.LoCaLUT, c.out)
		if err != nil {
			return nil, err
		}
		label := c.model
		if c.out > 0 {
			label = fmt.Sprintf("%s out=%d", c.model, c.out)
		}
		tab.Add(label+" prefill", "OP", op.Prefill.Total)
		tab.Add(label+" prefill", "LoCaLUT", lc.Prefill.Total)
		prefillSpeedups = append(prefillSpeedups, op.Prefill.Total/lc.Prefill.Total)
		if op.Decode != nil && lc.Decode != nil {
			tab.Add(label+" decode", "OP", op.Decode.Total)
			tab.Add(label+" decode", "LoCaLUT", lc.Decode.Total)
			decodeSpeedups = append(decodeSpeedups, op.Decode.Total/lc.Decode.Total)
		}
	}
	gmPre := trace.Geomean(prefillSpeedups)
	res.Values["prefill_speedup"] = gmPre
	if len(decodeSpeedups) > 0 {
		gmDec := trace.Geomean(decodeSpeedups)
		res.Values["decode_speedup"] = gmDec
		res.notef("LoCaLUT over OP: prefill %.2fx (paper: 1.34x), decode %.2fx (paper: 1.27x)", gmPre, gmDec)
	}

	// (b) Batch sweep.
	batches := []int{32, 64, 128, 256, 512}
	if s.Quick {
		batches = []int{2, 4}
	}
	sweep := []modelFormat{{"BERT", quant.W1A3}, {"ViT", quant.W2A2}, {"OPT", quant.W4A4}}
	if s.Quick {
		sweep = sweep[:1]
	}
	for _, mf := range sweep {
		for _, b := range batches {
			op, err := s.runBatch(mf.model, mf.fmt, kernels.OP, b)
			if err != nil {
				return nil, err
			}
			lc, err := s.runBatch(mf.model, mf.fmt, kernels.LoCaLUT, b)
			if err != nil {
				return nil, err
			}
			sp := op.Total / lc.Total
			tab.Add(fmt.Sprintf("%s %s batch", mf.model, mf.fmt.Name()),
				fmt.Sprintf("%d", b), sp)
			res.Values[fmt.Sprintf("batch%d_%s_%s", b, mf.model, mf.fmt.Name())] = sp
		}
	}
	res.notef("LoCaLUT holds its speedup over OP across batch sizes (paper: consistent, strongest at high batch)")
	return res, nil
}

// runModelOut is runModel with an explicit decode length.
func (s *Suite) runModelOut(model string, f quant.Format, v kernels.Variant, out int) (*dnnInference, error) {
	r := s.newRunner(model, f, v)
	if s.Quick && out > 2 {
		out = 2
	}
	return r.Infer(s.modelBatch(), out)
}

// runBatch runs prefill-only inference at a batch size.
func (s *Suite) runBatch(model string, f quant.Format, v kernels.Variant, batch int) (*dnnPhase, error) {
	r := s.newRunner(model, f, v)
	return r.Prefill(batch)
}

// Fig20 regenerates the bank-level PIM study: SIMD-based (HBM-PIM-class)
// vs the LoCaLUT LUT-unit design on the command-level DRAM simulator.
func (s *Suite) Fig20() (*Result, error) {
	sizes := []int{1024, 2048, 4096}
	if s.Quick {
		sizes = []int{1024}
	}
	tab := trace.NewTable("Bank-level PIM: LoCaLUT speedup over SIMD",
		"size", "format", "p", "SIMD (s)", "LoCaLUT (s)", "speedup")
	res := newResult("fig20", "LoCaLUT on bank-level PIM (Fig. 20)", tab)

	tm := banksim.HBM2()
	// An HBM2 stack exposes 8 channels x 16 banks; the GEMM splits M
	// across channels and N across banks, full K per bank. Every bank of
	// the grid is simulated through the sharded runner; the system
	// wall-clock is the slowest bank's, which for these even splits equals
	// the share every bank receives.
	const chans, banks = 4, 16
	var speedups []float64
	for _, sz := range sizes {
		specs, err := banksim.SplitGEMM(sz, sz, sz, chans, banks)
		if err != nil {
			return nil, err
		}
		for _, f := range quant.Formats {
			simd, err := banksim.RunShards(banksim.NewSIMDPIM(tm), specs, s.Parallelism)
			if err != nil {
				return nil, err
			}
			p, spec := unitMaxP(f)
			u, err := banksim.NewLUTPIM(tm, p, spec.WeightRowBytes(), spec.EntryBytes())
			if err != nil {
				return nil, err
			}
			canonCol := spec.Rows() * int64(spec.EntryBytes())
			reorderCol := spec.Rows() * int64(spec.WeightRowBytes())
			if err := u.ConfigureSlices(canonCol, reorderCol); err != nil {
				return nil, err
			}
			lutRes, err := banksim.RunShards(u, specs, s.Parallelism)
			if err != nil {
				return nil, err
			}
			sp := simd.Seconds / lutRes.Seconds
			tab.Add(sz, f.Name(), p, simd.Seconds, lutRes.Seconds, sp)
			speedups = append(speedups, sp)
			if f == quant.W4A4 {
				res.Values["w4a4_speedup"] = sp
			}
		}
	}
	gm := trace.Geomean(speedups)
	res.Values["geomean"] = gm
	res.notef("geomean %.2fx over SIMD bank-level PIM (paper: 2.04x); W4A4 %.2fx (paper: 1.17x)",
		gm, res.Values["w4a4_speedup"])
	return res, nil
}

// unitMaxP returns the largest p whose canonical column fits a 512 B LUT
// unit SRAM for the format.
func unitMaxP(f quant.Format) (int, lut.Spec) {
	best := lut.MustSpec(f, 1)
	for p := 1; p <= 8; p++ {
		spec, err := lut.NewSpec(f, p)
		if err != nil {
			break
		}
		if spec.Rows()*int64(spec.EntryBytes()) <= 512 {
			best = spec
		}
	}
	return best.P, best
}

// Fig21 regenerates the floating-point extension: (a) float GEMM speedups
// over HBM-PIM across precisions; (b) ViT proxy accuracy with and without
// the reordering LUT across packing degrees.
func (s *Suite) Fig21() (*Result, error) {
	tab := trace.NewTable("Floating-point LoCaLUT",
		"experiment", "config", "value")
	res := newResult("fig21", "floating-point support (Fig. 21)", tab)

	// (a) GEMM speedups on the bank-level simulator. The bank-level units
	// hold fp16 canonical entries (2 B — the same datapath precision as
	// the HBM-PIM baseline they replace); the weight side stays packed
	// binary or FP4 codes. M splits across channel groups and N across
	// banks as in Fig20.
	tm := banksim.HBM2()
	const banks = 16
	const fpEntryBytes = 2
	type fpCase struct {
		name   string
		bw, ba int
	}
	cases := []fpCase{{"W1A4 (FP4)", 1, 4}, {"W1A8 (FP8)", 1, 8}, {"W1A16 (FP16)", 1, 16}, {"W4A4 (FP4)", 4, 4}}
	sizes := []int{1024, 2048, 4096}
	if s.Quick {
		sizes = []int{1024}
	}
	const chans = 4
	for _, c := range cases {
		var sub []float64
		for _, sz := range sizes {
			specs, err := banksim.SplitGEMM(sz, sz, sz, chans, banks)
			if err != nil {
				return nil, err
			}
			simd, err := banksim.RunShards(banksim.NewSIMDPIM(tm), specs, s.Parallelism)
			if err != nil {
				return nil, err
			}
			// Largest p with a 2^(bw*p) x 2 B canonical column within the
			// 512 B unit SRAM AND a full canonical table that still fits
			// the bank's LUT budget (this is what pins FP16 to p=1: at
			// p=2 the table would need C(65537,2) columns).
			p := 1
			for cand := 1; cand <= 8; cand++ {
				rows := int64(1) << uint(c.bw*cand)
				if rows*fpEntryBytes > 512 || c.ba*cand > 32 {
					break
				}
				spec, err := lut.NewFloatSpec(c.bw, c.ba, cand, func(uint32) float64 { return 0 },
					func(uint32) float64 { return 0 })
				if err != nil {
					break
				}
				// FloatSpec sizes assume 4 B entries; halve for fp16.
				if spec.CanonicalBytes()/2 > s.Engine.Cfg.MRAMLUTBudget() {
					break
				}
				p = cand
			}
			rows := int64(1) << uint(c.bw*p)
			rb := (c.bw*p + 7) / 8
			u, err := banksim.NewLUTPIM(tm, p, rb, fpEntryBytes)
			if err != nil {
				return nil, err
			}
			if err := u.ConfigureSlices(rows*fpEntryBytes, rows*int64(rb)); err != nil {
				return nil, err
			}
			lutRes, err := banksim.RunShards(u, specs, s.Parallelism)
			if err != nil {
				return nil, err
			}
			sp := simd.Seconds / lutRes.Seconds
			tab.Add("fp-gemm "+c.name, fmt.Sprintf("%dK p=%d", sz/1024, p), sp)
			sub = append(sub, sp)
		}
		gm := trace.Geomean(sub)
		res.Values["fp_speedup_"+c.name] = gm
	}

	// (b) ViT proxy accuracy vs packing degree: the float canonical
	// pipeline's numerical deviation from unsorted float32 accumulation.
	const vitFP32 = 81.8 // published ViT-Base ImageNet top-1
	const vitW4A4 = 80.9 // Q-ViT-class W4A4 anchor
	f4 := fp.FP4{}
	binW := func(code uint32) float64 {
		if code&1 == 0 {
			return -1
		}
		return 1
	}
	for p := 1; p <= 5; p++ {
		spec, err := lut.NewFloatSpec(1, 4, p, binW, f4.Decode)
		if err != nil {
			return nil, err
		}
		dev, err := reorderDeviation(spec, s.Seed)
		if err != nil {
			return nil, err
		}
		// Proxy: the quantization anchor minus any numerical deviation
		// introduced by reordered accumulation (measured, not assumed).
		acc := vitW4A4 - 100*dev
		tab.Add("vit-accuracy", fmt.Sprintf("LoCaLUT p=%d", p), acc)
		res.Values[fmt.Sprintf("vit_acc_p%d", p)] = acc
	}
	tab.Add("vit-accuracy", "FP32", vitFP32)
	tab.Add("vit-accuracy", "OP (no reorder)", vitW4A4)
	res.Values["vit_fp32"] = vitFP32
	res.notef("reordering LUT causes no measurable accuracy deviation across p=1..5 (paper: negligible accuracy impact)")
	res.notef("W1A16 runs at p=1 and loses to HBM-PIM's native fp16 (paper: 0.62x geomean)")
	return res, nil
}

// reorderDeviation measures the mean relative deviation between the float
// canonical-pipeline result and direct unsorted float32 accumulation.
func reorderDeviation(spec lut.FloatSpec, seed int64) (float64, error) {
	canon, err := lut.BuildCanonicalF32(spec)
	if err != nil {
		return 0, err
	}
	reorder, err := lut.BuildReorderF32(spec)
	if err != nil {
		return 0, err
	}
	rng := newRand(seed)
	total, count := 0.0, 0
	for trial := 0; trial < 500; trial++ {
		w := uint32(rng.Int63n(spec.Rows()))
		acts := make([]int, spec.P)
		for i := range acts {
			acts[i] = rng.Intn(1 << uint(spec.ActBits))
		}
		col, sigma, err := spec.CanonicalizeActs(acts)
		if err != nil {
			return 0, err
		}
		got := float64(canon.Lookup(reorder.Lookup(w, sigma), col))
		var direct float32
		for i := 0; i < spec.P; i++ {
			direct += float32(spec.DecodeW((w>>uint(i*spec.WeightBits))&((1<<uint(spec.WeightBits))-1))) *
				float32(spec.DecodeA(uint32(acts[i])))
		}
		denom := math.Max(math.Abs(float64(direct)), 1)
		total += math.Abs(got-float64(direct)) / denom
		count++
	}
	return total / float64(count), nil
}
