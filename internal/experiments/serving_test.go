package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/serve"
)

func servingBase() serve.Config {
	return serve.Config{
		Model:           dnn.BERTBase(),
		Fmt:             quant.W1A3,
		DurationSeconds: 2,
		Seed:            1,
	}
}

func TestServingCurveShapeAndSaturation(t *testing.T) {
	rates := []float64{20, 2000}
	points, err := ServingCurve(servingBase(), []kernels.Variant{kernels.LoCaLUT}, rates)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	light, heavy := points[0], points[1]
	if light.Design != "LoCaLUT" || heavy.RatePerSec != 2000 {
		t.Errorf("point identity wrong: %+v", points)
	}
	// The saturation signature: pushing the offered rate 100x must not
	// scale throughput 100x, and p99 latency must blow up.
	if heavy.ThroughputPerSec > light.ThroughputPerSec*50 {
		t.Errorf("no saturation: throughput %g -> %g", light.ThroughputPerSec, heavy.ThroughputPerSec)
	}
	if heavy.LatencyP99 <= light.LatencyP99 {
		t.Errorf("p99 did not degrade under overload: %g -> %g", light.LatencyP99, heavy.LatencyP99)
	}
	if heavy.Utilization <= light.Utilization {
		t.Errorf("utilization did not rise under overload: %g -> %g", light.Utilization, heavy.Utilization)
	}
}

func TestServingCurvePerDesign(t *testing.T) {
	designs := []kernels.Variant{kernels.OPLCRC, kernels.LoCaLUT}
	points, err := ServingCurve(servingBase(), designs, []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want one per design", len(points))
	}
	if points[0].Design == points[1].Design {
		t.Error("designs collapsed in the curve")
	}
}

// TestServingCurveDecodeColumns pins that a decode-enabled curve carries
// the token-level metrics (TTFT/TPOT p99, token throughput).
func TestServingCurveDecodeColumns(t *testing.T) {
	base := servingBase()
	base.Model = dnn.OPT125M()
	base.OutTokensMean = 8
	base.OutTokensMax = 32
	points, err := ServingCurve(base, []kernels.Variant{kernels.LoCaLUT}, []float64{20})
	if err != nil {
		t.Fatal(err)
	}
	p := points[0]
	if p.TTFTP99 <= 0 || p.TPOTP99 <= 0 {
		t.Errorf("decode curve missing TTFT/TPOT: %+v", p)
	}
	if p.TokensPerSec <= 0 {
		t.Errorf("decode curve missing token throughput: %+v", p)
	}
	if p.TTFTP99 >= p.LatencyP99 {
		t.Errorf("TTFT p99 %g not below total-latency p99 %g", p.TTFTP99, p.LatencyP99)
	}
}

func TestServingCurveDeterministic(t *testing.T) {
	run := func() []ServingPoint {
		p, err := ServingCurve(servingBase(), []kernels.Variant{kernels.LoCaLUT}, []float64{50, 100})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Errorf("curve not reproducible:\n%+v\n%+v", a, b)
	}
}

func TestServingTable(t *testing.T) {
	points, err := ServingCurve(servingBase(), []kernels.Variant{kernels.LoCaLUT}, []float64{50})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ServingTable("saturation", points).Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "LoCaLUT") || !strings.Contains(out, "p99") {
		t.Errorf("table missing expected content:\n%s", out)
	}
}
