package experiments

import (
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/workload"
)

// SweepRow is one design point of a full-grid GEMM sweep.
type SweepRow struct {
	Design       string
	P, SliceK    int
	Streaming    bool
	Banks        int // bank tiles simulated
	KernelCycles int64
	SimSeconds   float64 // simulated end-to-end seconds
	Verified     bool
}

// GEMMSweep runs every kernel design of one seeded M x K x N GEMM through
// the full-grid sharded execution engine at the given host parallelism
// (0 = NumCPU, 1 = serial). Every bank tile of every design is simulated
// and verified bit-exact; the rows are identical at any parallelism — only
// the host wall-clock changes — which is exactly what localut-bench's
// -compare mode checks.
func GEMMSweep(m, k, n int, f quant.Format, parallelism int) ([]SweepRow, error) {
	e := gemm.NewEngine()
	e.Exec = gemm.ExecOptions{Parallelism: parallelism, FullGrid: true}
	pair := workload.NewGEMMPair(m, k, n, f, 1)

	rows := make([]SweepRow, 0, len(kernels.Variants))
	for _, v := range kernels.Variants {
		rep, err := e.Run(pair, gemm.Options{Variant: v})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SweepRow{
			Design: v.String(), P: rep.P, SliceK: rep.K, Streaming: rep.Streaming,
			Banks: rep.BanksSimulated, KernelCycles: rep.KernelCycles,
			SimSeconds: rep.Total, Verified: rep.Verified,
		})
	}
	return rows, nil
}
