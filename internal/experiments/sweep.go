package experiments

import (
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/workload"
)

// SweepRow is one design point of a full-grid GEMM sweep.
type SweepRow struct {
	Design       string
	P, SliceK    int
	Streaming    bool
	Banks        int // bank tiles accounted
	KernelCycles int64
	SimSeconds   float64 // simulated end-to-end seconds
	Verified     bool
}

// SameCost reports whether two rows agree on everything the cost model
// produces — design point, bank count, cycles, simulated seconds. Verified
// is excluded: it records whether the functional data program ran, which is
// exactly what differs between execution modes with identical costs.
func (r SweepRow) SameCost(o SweepRow) bool {
	r.Verified = false
	o.Verified = false
	return r == o
}

// GEMMSweep runs every kernel design of one seeded M x K x N GEMM through
// the full-grid sharded execution engine at the given host parallelism
// (0 = NumCPU, 1 = serial) and execution mode. In Functional mode every
// bank tile of every design is simulated and verified bit-exact; in
// CyclesOnly mode the same grid is costed analytically (identical cycles,
// no outputs, Verified=false). The rows are identical at any parallelism —
// only the host wall-clock changes — which is exactly what localut-bench's
// -compare mode checks, across modes as well.
func GEMMSweep(m, k, n int, f quant.Format, parallelism int, mode kernels.Mode) ([]SweepRow, error) {
	return GEMMSweepExec(m, k, n, f,
		gemm.ExecOptions{Parallelism: parallelism, FullGrid: true, Mode: mode})
}

// GEMMSweepExec is GEMMSweep with full control of the execution options —
// localut-bench's -compare uses it to pit the pooled engine against the
// NoArena reference path on identical inputs.
func GEMMSweepExec(m, k, n int, f quant.Format, exec gemm.ExecOptions) ([]SweepRow, error) {
	exec.FullGrid = true
	e := gemm.NewEngine()
	e.Exec = exec
	pair := workload.NewGEMMPair(m, k, n, f, 1)

	rows := make([]SweepRow, 0, len(kernels.Variants))
	for _, v := range kernels.Variants {
		rep, err := e.Run(pair, gemm.Options{Variant: v})
		if err != nil {
			return nil, err
		}
		rows = append(rows, SweepRow{
			Design: v.String(), P: rep.P, SliceK: rep.K, Streaming: rep.Streaming,
			Banks: rep.BanksSimulated, KernelCycles: rep.KernelCycles,
			SimSeconds: rep.Total, Verified: rep.Verified,
		})
	}
	return rows, nil
}
