package experiments

import (
	"fmt"

	"github.com/ais-snu/localut/internal/costmodel"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/trace"
)

// Fig03 regenerates Fig. 3(c): DRAM-bank-sized vs buffer-sized
// operation-packed LUTs on a 512x512x512 W1A3 GEMM over packing degrees
// 1..6, on a single DPU as in the paper's small-scale experiment.
func (s *Suite) Fig03() (*Result, error) {
	f := quant.W1A3
	m := s.scale(512, 64)
	k := s.scale(512, 64)
	nFull := s.scale(512, 64)
	nSim := s.scale(4, 2) // columns simulated; cost is column-linear

	cfg := s.Engine.Cfg
	costs := s.Engine.Costs
	tab := trace.NewTable("LUT placement (W1A3, 512x512x512 GEMM, single DPU)",
		"p", "DRAM-sized LUT (s)", "buffer-sized LUT (s)")
	res := newResult("fig03", "capacity-computation candidates (Fig. 3c)", tab)

	scale := float64(nFull) / float64(nSim)
	pBufMax := costmodel.MaxP(f, cfg.WRAMLUTBudget(), costmodel.SizeOpPacked)
	var dramAtPBuf, bufAtPBuf float64
	for p := 1; p <= 6; p++ {
		tile, err := s.kernelTile(m, k, nSim, f)
		if err != nil {
			return nil, err
		}
		dpu := s.kernelDPU(&cfg)
		dram, err := kernels.NewOPDRAMKernel(costs, lut.MustSpec(f, p)).Run(dpu, tile)
		if err != nil {
			return nil, err
		}
		dramSec := dram.Seconds * scale

		bufCell := "n/a (exceeds WRAM)"
		if p <= pBufMax {
			dpu2 := s.kernelDPU(&cfg)
			buf, err := kernels.NewOPKernel(costs, lut.MustSpec(f, p)).Run(dpu2, tile)
			if err != nil {
				return nil, err
			}
			bufSec := buf.Seconds * scale
			bufCell = fmt.Sprintf("%.4f", bufSec)
			if p == pBufMax {
				dramAtPBuf, bufAtPBuf = dramSec, bufSec
			}
		}
		tab.Add(p, dramSec, bufCell)
	}
	if bufAtPBuf > 0 {
		ratio := dramAtPBuf / bufAtPBuf
		res.Values["dram_over_buffer_at_plocal"] = ratio
		res.notef("at p_local=%d the buffer-sized LUT is %.2fx faster than the DRAM-sized LUT (paper: buffer wins at every p)", pBufMax, ratio)
	}
	return res, nil
}

// Fig06 regenerates Fig. 6: capacity requirements of the operation-packed,
// canonical and reordering LUTs for W1A3 across packing degrees, with the
// total reduction rate (the figure's red line).
func (s *Suite) Fig06() (*Result, error) {
	f := quant.W1A3
	tab := trace.NewTable("LUT capacity, W1A3 (bytes)",
		"p", "operation-packed", "canonical", "reordering", "canonical+reordering", "reduction rate")
	res := newResult("fig06", "LUT capacity vs packing degree (Fig. 6)", tab)

	for p := 2; p <= 8; p++ {
		spec := lut.MustSpec(f, p)
		tab.Add(p,
			fmt.Sprintf("%d", spec.OpPackedBytes()),
			fmt.Sprintf("%d", spec.CanonicalBytes()),
			fmt.Sprintf("%d", spec.ReorderBytes()),
			fmt.Sprintf("%d", spec.CombinedBytes()),
			spec.ReductionRate())
	}
	r2 := lut.MustSpec(f, 2).ReductionRate()
	r8 := lut.MustSpec(f, 8).ReductionRate()
	res.Values["reduction_p2"] = r2
	res.Values["reduction_p8"] = r8
	res.notef("total reduction spans %.2fx (p=2) to %.0fx (p=8); paper: 1.68x to 358x", r2, r8)
	return res, nil
}
