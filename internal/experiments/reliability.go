package experiments

import (
	"github.com/ais-snu/localut/internal/cluster"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/trace"
)

// ReliabilityPoint is one (design, MTTF) sample of a reliability sweep:
// how much goodput a fleet keeps as its appliances fail more often, and
// what the recovery tax (retries, re-prefilled tokens, outage time)
// costs. MTTFSeconds == 0 is the fault-free baseline.
type ReliabilityPoint struct {
	Design           string
	MTTFSeconds      float64
	ThroughputPerSec float64
	GoodputPerSec    float64
	// GoodputRatio is goodput relative to the design's fault-free
	// baseline (1 when MTTFSeconds == 0).
	GoodputRatio       float64
	DeadlineMissRate   float64
	Crashes            int
	Retries            int
	ReprefillTokens    int64
	Shed               int
	UnavailableSeconds float64
	RecoverP99         float64
	LatencyP99         float64
}

// ReliabilityCurve sweeps mean time to failure for each design and
// returns one point per (design, MTTF), in input order. An MTTF of 0
// disables fault injection — the fault-free baseline each design's
// GoodputRatio is normalized against (designs without a 0 entry get
// ratio 0). The base config's Variant, Faults.MTTFSeconds and
// Faults.Enabled are overridden per point; deadlines, retry policy and
// everything else are shared. Each run is individually deterministic,
// so the curve is bit-reproducible.
func ReliabilityCurve(base cluster.Config, designs []kernels.Variant, mttfs []float64) ([]ReliabilityPoint, error) {
	points := make([]ReliabilityPoint, 0, len(designs)*len(mttfs))
	for _, d := range designs {
		baseline := 0.0
		for _, mttf := range mttfs {
			cfg := base
			cfg.Base.Variant = d
			cfg.Faults.Enabled = mttf > 0
			cfg.Faults.MTTFSeconds = mttf
			rep, err := cluster.Run(cfg)
			if err != nil {
				return nil, err
			}
			if mttf == 0 {
				baseline = rep.GoodputPerSec
			}
			p := ReliabilityPoint{
				Design:             d.String(),
				MTTFSeconds:        mttf,
				ThroughputPerSec:   rep.ThroughputPerSec,
				GoodputPerSec:      rep.GoodputPerSec,
				Crashes:            rep.Crashes,
				Retries:            rep.Retries,
				ReprefillTokens:    rep.ReprefillTokens,
				Shed:               rep.Shed,
				UnavailableSeconds: rep.UnavailableSeconds,
				RecoverP99:         rep.TimeToRecover.P99,
				LatencyP99:         rep.Latency.P99,
			}
			if rep.Admitted > 0 {
				p.DeadlineMissRate = float64(rep.Admitted-rep.Good) / float64(rep.Admitted)
			}
			if baseline > 0 {
				p.GoodputRatio = rep.GoodputPerSec / baseline
			}
			points = append(points, p)
		}
	}
	return points, nil
}

// ReliabilityTable renders a reliability sweep as a trace table.
func ReliabilityTable(title string, points []ReliabilityPoint) *trace.Table {
	t := trace.NewTable(title,
		"design", "mttf (s)", "throughput/s", "goodput/s", "goodput ratio",
		"miss rate", "crashes", "retries", "reprefill", "shed",
		"unavail (s)", "recover p99 (s)", "p99 (s)")
	for _, p := range points {
		t.Add(p.Design, p.MTTFSeconds, p.ThroughputPerSec, p.GoodputPerSec,
			p.GoodputRatio, p.DeadlineMissRate, p.Crashes, p.Retries,
			p.ReprefillTokens, p.Shed, p.UnavailableSeconds, p.RecoverP99,
			p.LatencyP99)
	}
	return t
}
