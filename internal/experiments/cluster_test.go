package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/ais-snu/localut/internal/cluster"
	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/serve"
)

func clusterBase() cluster.Config {
	return cluster.Config{
		Base: serve.Config{
			Model: dnn.BERTBase(),
			Fmt:   quant.W1A3,
		},
		DurationSeconds: 2,
		Seed:            1,
	}
}

// TestClusterCurveFleetScaling pins the sweep's purpose: at an offered
// load that saturates one appliance, adding appliances must cut p99
// latency.
func TestClusterCurveFleetScaling(t *testing.T) {
	points, err := ClusterCurve(clusterBase(), []int{1, 4}, []float64{600})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	one, four := points[0], points[1]
	if one.Instances != 1 || four.Instances != 4 || one.RatePerSec != 600 {
		t.Fatalf("point identity wrong: %+v", points)
	}
	if four.LatencyP99 >= one.LatencyP99 {
		t.Errorf("4 instances did not beat 1 at p99: %g vs %g", four.LatencyP99, one.LatencyP99)
	}
	if four.ThroughputPerSec <= one.ThroughputPerSec {
		t.Errorf("4 instances did not raise drain throughput: %g vs %g",
			four.ThroughputPerSec, one.ThroughputPerSec)
	}
}

func TestClusterCurveDeterministic(t *testing.T) {
	a, err := ClusterCurve(clusterBase(), []int{2}, []float64{100, 400})
	if err != nil {
		t.Fatal(err)
	}
	b, err := ClusterCurve(clusterBase(), []int{2}, []float64{100, 400})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config diverged")
	}
}

func TestClusterTable(t *testing.T) {
	points, err := ClusterCurve(clusterBase(), []int{2}, []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := ClusterTable("fleet scaling", points).Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, col := range []string{"fleet", "throughput/s", "ttft p99 (s)", "peak"} {
		if !strings.Contains(out, col) {
			t.Errorf("table missing column %q:\n%s", col, out)
		}
	}
}
