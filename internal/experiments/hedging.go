package experiments

import (
	"github.com/ais-snu/localut/internal/cluster"
	"github.com/ais-snu/localut/internal/trace"
)

// HedgePoint is one hedge-delay sample of a tail-latency sweep under
// gray-failure straggler injection: how much first-token tail latency a
// fleet buys back by duplicating slow requests, and what that insurance
// costs in wasted (refunded) busy time. DelaySeconds == 0 is the
// no-hedge baseline every ratio is normalized against.
type HedgePoint struct {
	DelaySeconds float64
	TTFTp99      float64
	// TTFTRatio is TTFT p99 relative to the no-hedge baseline (1 when
	// DelaySeconds == 0; sweeps without a 0 entry get ratio 0).
	TTFTRatio        float64
	LatencyP99       float64
	GoodputPerSec    float64
	StragglerWindows int
	HedgesIssued     int
	HedgeWins        int
	WasteSeconds     float64
	// WasteFraction is wasted hedge busy time over total fleet
	// busy-seconds — the share of capacity spent on cancelled losers.
	WasteFraction float64
}

// HedgeCurve sweeps the hedge trigger delay over a fixed straggler
// scenario and returns one point per delay, in input order. A delay of
// 0 disables hedging — the baseline each point's TTFTRatio is
// normalized against. The base config's Hedge block is overridden per
// point; stragglers, faults and everything else are shared, and the
// straggler RNG stream is decoupled from hedging, so every point sees
// the identical slowdown schedule. Each run is individually
// deterministic, so the curve is bit-reproducible.
func HedgeCurve(base cluster.Config, delays []float64) ([]HedgePoint, error) {
	points := make([]HedgePoint, 0, len(delays))
	baseline := 0.0
	for _, d := range delays {
		cfg := base
		cfg.Hedge.Enabled = d > 0
		cfg.Hedge.DelaySeconds = d
		rep, err := cluster.Run(cfg)
		if err != nil {
			return nil, err
		}
		if d == 0 {
			baseline = rep.TTFT.P99
		}
		p := HedgePoint{
			DelaySeconds:     d,
			TTFTp99:          rep.TTFT.P99,
			LatencyP99:       rep.Latency.P99,
			GoodputPerSec:    rep.GoodputPerSec,
			StragglerWindows: rep.StragglerWindows,
			HedgesIssued:     rep.HedgesIssued,
			HedgeWins:        rep.HedgeWins,
			WasteSeconds:     rep.HedgeWastedSeconds,
		}
		if baseline > 0 {
			p.TTFTRatio = rep.TTFT.P99 / baseline
		}
		if rep.BusySeconds > 0 {
			p.WasteFraction = rep.HedgeWastedSeconds / rep.BusySeconds
		}
		points = append(points, p)
	}
	return points, nil
}

// HedgeTable renders a hedge-delay sweep as a trace table.
func HedgeTable(title string, points []HedgePoint) *trace.Table {
	t := trace.NewTable(title,
		"hedge delay (s)", "ttft p99 (s)", "ttft ratio", "p99 (s)",
		"goodput/s", "straggler windows", "hedges", "wins",
		"waste (s)", "waste frac")
	for _, p := range points {
		t.Add(p.DelaySeconds, p.TTFTp99, p.TTFTRatio, p.LatencyP99,
			p.GoodputPerSec, p.StragglerWindows, p.HedgesIssued,
			p.HedgeWins, p.WasteSeconds, p.WasteFraction)
	}
	return t
}
