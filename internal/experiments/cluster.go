package experiments

import (
	"github.com/ais-snu/localut/internal/cluster"
	"github.com/ais-snu/localut/internal/trace"
)

// ClusterPoint is one (fleet size, arrival rate) sample of a cluster
// scaling sweep: how the fleet's latency–throughput curve shifts as
// appliances are added.
type ClusterPoint struct {
	Instances        int
	RatePerSec       float64
	OfferedPerSec    float64
	ThroughputPerSec float64
	TokensPerSec     float64
	Rejected         int
	LatencyP50       float64
	LatencyP99       float64
	TTFTP99          float64
	EnergyPerReqJ    float64
	PeakInstances    int
	Requests         int
}

// ClusterCurve sweeps the open-loop arrival rate for each fleet size and
// returns one point per (instances, rate), in input order. The base
// config's Instances and RatePerSec (single-class shorthand) are
// overridden per point; everything else — router, admission, autoscaler,
// designs — is shared. Each run is individually deterministic, so the
// curve is bit-reproducible.
func ClusterCurve(base cluster.Config, fleets []int, rates []float64) ([]ClusterPoint, error) {
	points := make([]ClusterPoint, 0, len(fleets)*len(rates))
	for _, n := range fleets {
		for _, r := range rates {
			cfg := base
			cfg.Instances = n
			cfg.RatePerSec = r
			cfg.Classes = nil
			rep, err := cluster.Run(cfg)
			if err != nil {
				return nil, err
			}
			points = append(points, ClusterPoint{
				Instances:        n,
				RatePerSec:       r,
				OfferedPerSec:    rep.OfferedPerSec,
				ThroughputPerSec: rep.ThroughputPerSec,
				TokensPerSec:     rep.TokensPerSec,
				Rejected:         rep.Rejected,
				LatencyP50:       rep.Latency.P50,
				LatencyP99:       rep.Latency.P99,
				TTFTP99:          rep.TTFT.P99,
				EnergyPerReqJ:    rep.EnergyPerRequestJ,
				PeakInstances:    rep.InstancesPeak,
				Requests:         rep.Admitted,
			})
		}
	}
	return points, nil
}

// ClusterTable renders a cluster sweep as a trace table.
func ClusterTable(title string, points []ClusterPoint) *trace.Table {
	t := trace.NewTable(title,
		"fleet", "rate/s", "offered/s", "throughput/s", "tokens/s",
		"rejected", "p50 (s)", "p99 (s)", "ttft p99 (s)",
		"energy/req (J)", "peak", "requests")
	for _, p := range points {
		t.Add(p.Instances, p.RatePerSec, p.OfferedPerSec, p.ThroughputPerSec,
			p.TokensPerSec, p.Rejected, p.LatencyP50, p.LatencyP99,
			p.TTFTP99, p.EnergyPerReqJ, p.PeakInstances, p.Requests)
	}
	return t
}
