package experiments

import (
	"github.com/ais-snu/localut/internal/costmodel"
	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pq"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/trace"
	"github.com/ais-snu/localut/internal/workload"
)

// modelConfig resolves a model name, shrunk in Quick mode.
func (s *Suite) modelConfig(name string) dnn.ModelConfig {
	var m dnn.ModelConfig
	switch name {
	case "BERT":
		m = dnn.BERTBase()
	case "ViT":
		m = dnn.ViTBase()
	case "OPT":
		m = dnn.OPT125M()
	default:
		panic("experiments: unknown model " + name)
	}
	if s.Quick {
		// Keep the real projection widths — the fixed WRAM LUT staging
		// cost makes tiny hidden dimensions unrepresentative — and shrink
		// only depth and sequence length.
		m.Layers = 1
		m.SeqLen = 32
	}
	return m
}

// modelBatch is the default inference batch.
func (s *Suite) modelBatch() int {
	if s.Quick {
		return 2
	}
	return 8
}

// runModel executes one end-to-end inference configuration.
func (s *Suite) runModel(model string, f quant.Format, v kernels.Variant) (*dnn.InferenceReport, error) {
	r := dnn.NewRunner(s.modelConfig(model), f, v)
	r.Engine = s.Engine
	r.Seed = s.Seed
	out := 0
	if model == "OPT" {
		out = 8
		if s.Quick {
			out = 2
		}
	}
	return r.Infer(s.modelBatch(), out)
}

// Fig13 regenerates the k-sensitivity study: for each k in {1,2,4,8} the
// highest feasible p is selected (k slice pairs must fit the WRAM LUT
// budget) and the representative FFN GEMM is timed, normalized to k=1.
func (s *Suite) Fig13() (*Result, error) {
	tab := trace.NewTable("Slice-batch (k) sensitivity, speedup over k=1",
		"model", "format", "k", "p", "speedup")
	res := newResult("fig13", "k sensitivity (Fig. 13)", tab)

	m := s.scale(3072, 384)
	k := s.scale(768, 192)
	n := s.scale(128, 16)
	cfg := &s.Engine.Cfg
	for _, mf := range fig10Configs() {
		var base float64
		for _, kk := range []int{1, 2, 4, 8} {
			// Highest p whose k slice pairs fit WRAM and whose tables fit
			// the bank ("for each chosen k, we select the highest p
			// possible in the remaining memory space").
			p := 0
			for cand := 1; cand <= costmodel.MaxP(mf.fmt, cfg.MRAMLUTBudget(), costmodel.SizeCombined); cand++ {
				spec := lut.MustSpec(mf.fmt, cand)
				if int64(kk)*spec.SliceBytes() <= cfg.WRAMLUTBudget() {
					p = cand
				}
			}
			if p == 0 {
				tab.Add(mf.model, mf.fmt.Name(), kk, "-", "n/a")
				continue
			}
			rep, err := s.runGEMM(m, k, n, mf.fmt, kernels.LoCaLUT,
				gemm.Options{ForceP: p, ForceK: kk, ForceStreaming: true})
			if err != nil {
				return nil, err
			}
			if kk == 1 {
				base = rep.Total
			}
			sp := base / rep.Total
			tab.Add(mf.model, mf.fmt.Name(), kk, p, sp)
			if kk == 8 {
				res.Values["k8_speedup_"+mf.model+"_"+mf.fmt.Name()] = sp
			}
		}
	}
	res.notef("W1Ax configurations gain monotonically with k; W2A2/W4A4 lose p at larger k and can slow down (paper: k=2->4 degrades W2A2/W4A4)")
	return res, nil
}

// Fig14 regenerates the energy comparison across models, formats and the
// four headline designs.
func (s *Suite) Fig14() (*Result, error) {
	tab := trace.NewTable("Energy per inference batch (J)",
		"model", "format", "NaivePIM", "LTC", "OP-LUT", "LoCaLUT")
	res := newResult("fig14", "energy comparison (Fig. 14)", tab)

	variants := []kernels.Variant{kernels.Naive, kernels.LTC, kernels.OP, kernels.LoCaLUT}
	var w1Naive, w1LTC []float64
	for _, mf := range fig10Configs() {
		joules := map[kernels.Variant]float64{}
		for _, v := range variants {
			rep, err := s.runModel(mf.model, mf.fmt, v)
			if err != nil {
				return nil, err
			}
			e := s.Energy.Price(&rep.Meter, rep.HostOps, rep.Total)
			joules[v] = e.TotalJ
		}
		tab.Add(mf.model, mf.fmt.Name(),
			joules[kernels.Naive], joules[kernels.LTC], joules[kernels.OP], joules[kernels.LoCaLUT])
		if mf.fmt.Weight.Bits == 1 {
			w1Naive = append(w1Naive, joules[kernels.Naive]/joules[kernels.LoCaLUT])
			w1LTC = append(w1LTC, joules[kernels.LTC]/joules[kernels.LoCaLUT])
		}
		if mf.model == "BERT" && mf.fmt == quant.W4A4 {
			res.Values["w4a4_vs_naive"] = joules[kernels.Naive] / joules[kernels.LoCaLUT]
		}
	}
	if len(w1Naive) > 0 {
		gn, gl := trace.Geomean(w1Naive), trace.Geomean(w1LTC)
		res.Values["w1ax_vs_naive"] = gn
		res.Values["w1ax_vs_ltc"] = gl
		res.notef("W1Ax energy reduction %.2fx vs Naive (paper: 3.37x), %.2fx vs LTC (paper: 1.88x)", gn, gl)
	}
	return res, nil
}

// glueTask holds the accuracy anchors of the proxy model: the fp32
// BERT-base score and the published low-bit anchor used to calibrate the
// error-to-accuracy slope (BinaryBERT W1A4 [3] / KDLSQ [34] families).
type glueTask struct {
	name      string
	fp32      float64
	anchorFmt quant.Format
	anchorAcc float64
}

func glueTasks() []glueTask {
	return []glueTask{
		{"SST-2", 93.2, quant.W1A4, 92.3},
		{"QNLI", 91.4, quant.W1A4, 90.9},
		{"QQP", 91.0, quant.W1A4, 90.5},
		{"STS-B", 89.0, quant.W1A4, 87.9},
	}
}

// methodError measures the relative GEMM error of a method against the
// float reference on a synthetic BERT-layer product.
func (s *Suite) methodErrors() (map[string]float64, error) {
	mDim := s.scale(256, 64)
	kDim := s.scale(256, 64)
	nDim := s.scale(64, 16)
	nCal := s.scale(512, 256)

	wReal := workload.Gaussian(mDim, kDim, s.Seed+100)
	aReal := workload.Gaussian(kDim, nDim, s.Seed+101)
	exact := pq.ExactGEMM(wReal, aReal, mDim, kDim, nDim)

	errs := map[string]float64{}
	// LoCaLUT: bit-exact w.r.t. the quantized GEMM, so its only error is
	// the quantization of W and A themselves.
	for _, f := range quant.Formats {
		wq, err := quant.QuantizeCalibrated(wReal, mDim, kDim, f.Weight)
		if err != nil {
			return nil, err
		}
		aq, err := quant.QuantizeCalibrated(aReal, kDim, nDim, f.Act)
		if err != nil {
			return nil, err
		}
		got := make([]float64, mDim*nDim)
		for mi := 0; mi < mDim; mi++ {
			for ki := 0; ki < kDim; ki++ {
				wv := float64(wq.ValueAt(mi, ki)) * wq.Scale
				if wv == 0 {
					continue
				}
				for ni := 0; ni < nDim; ni++ {
					got[mi*nDim+ni] += wv * float64(aq.ValueAt(ki, ni)) * aq.Scale
				}
			}
		}
		errs["LoCaLUT "+f.Name()] = workload.FrobeniusError(got, exact)
	}
	// PQ methods: codebook approximation error.
	calib := workload.Gaussian(kDim, nCal, s.Seed+102)
	for _, cfg := range []pq.Config{pq.PIMDL(), pq.LUTDLAL1(), pq.LUTDLAL2()} {
		if s.Quick {
			cfg.C = 16
			cfg.Iters = 4
		}
		q, err := pq.Train(cfg, calib, kDim, nCal, s.Seed)
		if err != nil {
			return nil, err
		}
		codes, _, err := q.Encode(aReal, nDim)
		if err != nil {
			return nil, err
		}
		tables, err := q.BuildTables(wReal, mDim)
		if err != nil {
			return nil, err
		}
		approx := q.ApproxGEMM(tables, codes, mDim, nDim)
		errs[cfg.Name] = workload.FrobeniusError(approx, exact)
	}
	return errs, nil
}

// pqEndToEndSeconds estimates a PQ method's end-to-end BERT time with the
// shared machine model: PQ lookups on PIM + host centroid selection + the
// same host-side attention/normalization as Fig. 8.
func (s *Suite) pqEndToEndSeconds(cfg pq.Config) float64 {
	model := s.modelConfig("BERT")
	tokens := s.modelBatch() * model.SeqLen
	cm := pq.DefaultCostModel(&s.Engine.Cfg)
	total := 0.0
	for _, sh := range model.LayerGEMMs() {
		ops := pq.EncodeOps(cfg, sh.K, tokens)
		c := cm.Estimate(cfg, sh.M, sh.K, tokens, ops)
		total += c.Total * float64(model.Layers)
	}
	host := dnn.DefaultHost()
	attn := float64(model.Layers) * (modelAttnFlops(model, tokens) + modelElemFlops(model, tokens))
	total += attn / host.FlopsPerSec
	return total
}

func modelAttnFlops(m dnn.ModelConfig, tokens int) float64 {
	dHead := m.Hidden / m.Heads
	qk := 2.0 * float64(tokens) * float64(m.SeqLen) * float64(dHead) * float64(m.Heads)
	return 2*qk + 5.0*float64(tokens)*float64(m.SeqLen)*float64(m.Heads)
}

func modelElemFlops(m dnn.ModelConfig, tokens int) float64 {
	return 16.0*float64(tokens)*float64(m.Hidden) + 8.0*float64(tokens)*float64(m.FFN) +
		4.0*float64(tokens)*float64(m.Hidden)
}

// Fig15 regenerates the speedup-vs-accuracy comparison with the PQ-based
// methods on the four GLUE tasks, using the documented accuracy proxy
// (accuracy = fp32 - alpha * relative GEMM error, alpha calibrated per task
// on the published W1A4 anchor).
func (s *Suite) Fig15() (*Result, error) {
	tab := trace.NewTable("Speedup (over Naive PIM) and proxy accuracy",
		"task", "method", "speedup", "rel. GEMM error", "accuracy")
	res := newResult("fig15", "comparison with product quantization (Fig. 15)", tab)

	errs, err := s.methodErrors()
	if err != nil {
		return nil, err
	}

	// Speedups: LoCaLUT per format and PQ methods, all over Naive PIM.
	naive, err := s.runModel("BERT", quant.W4A4, kernels.Naive)
	if err != nil {
		return nil, err
	}
	speedups := map[string]float64{}
	for _, f := range quant.Formats {
		rep, err := s.runModel("BERT", f, kernels.LoCaLUT)
		if err != nil {
			return nil, err
		}
		speedups["LoCaLUT "+f.Name()] = naive.Total / rep.Total
	}
	for _, cfg := range []pq.Config{pq.PIMDL(), pq.LUTDLAL1(), pq.LUTDLAL2()} {
		speedups[cfg.Name] = naive.Total / s.pqEndToEndSeconds(cfg)
	}

	// Fixed method order (map iteration would shuffle the table rows
	// between otherwise-identical runs). PQ names come from the configs
	// themselves so a rename cannot leave stale literals behind.
	pqNames := make([]string, 0, 3)
	for _, cfg := range []pq.Config{pq.PIMDL(), pq.LUTDLAL1(), pq.LUTDLAL2()} {
		pqNames = append(pqNames, cfg.Name)
	}
	methods := make([]string, 0, len(errs))
	for _, f := range quant.Formats {
		methods = append(methods, "LoCaLUT "+f.Name())
	}
	methods = append(methods, pqNames...)

	dominated := 0
	comparisons := 0
	for _, task := range glueTasks() {
		anchorErr := errs["LoCaLUT "+task.anchorFmt.Name()]
		alpha := (task.fp32 - task.anchorAcc) / anchorErr
		for _, name := range methods {
			e := errs[name]
			acc := task.fp32 - alpha*e
			tab.Add(task.name, name, speedups[name], e, acc)
		}
		// Count PQ points dominated by some LoCaLUT point (faster AND at
		// least as accurate) — the paper's "clear advantage" claim.
		for _, cfg := range pqNames {
			comparisons++
			pqAcc := task.fp32 - alpha*errs[cfg]
			for _, f := range quant.Formats {
				name := "LoCaLUT " + f.Name()
				locAcc := task.fp32 - alpha*errs[name]
				if speedups[name] > speedups[cfg] && locAcc >= pqAcc {
					dominated++
					break
				}
			}
		}
	}
	res.Values["pq_points_dominated"] = float64(dominated)
	res.Values["pq_points_total"] = float64(comparisons)
	res.notef("%d/%d PQ design points are dominated by a LoCaLUT point (paper: clear advantage in speed and accuracy)", dominated, comparisons)
	return res, nil
}

// Fig16 regenerates the execution breakdowns: (a) end-to-end BERT for
// LoCaLUT (W1A3, W2A2) vs PIM-DL; (b) the LoCaLUT GEMM kernel phases.
func (s *Suite) Fig16() (*Result, error) {
	tab := trace.NewTable("Execution time breakdown (%)",
		"config", "phase", "share")
	res := newResult("fig16", "kernel and end-to-end breakdowns (Fig. 16)", tab)

	// (a) end-to-end BERT.
	for _, f := range []quant.Format{quant.W1A3, quant.W2A2} {
		rep, err := s.runModel("BERT", f, kernels.LoCaLUT)
		if err != nil {
			return nil, err
		}
		p := rep.Prefill
		total := p.Total
		add := func(phase string, v float64) {
			tab.Add("LoCaLUT ("+f.Name()+")", phase, 100*v/total)
		}
		add("GEMM on PIM", p.GEMMPIM)
		add("Matrix transfer", p.Transfer)
		add("Quantization", p.Quantize)
		add("Packing & sorting", p.SortPack)
		add("Others (host fp32)", p.HostOther)
	}
	// PIM-DL end-to-end shares.
	model := s.modelConfig("BERT")
	tokens := s.modelBatch() * model.SeqLen
	cm := pq.DefaultCostModel(&s.Engine.Cfg)
	cfg := pq.PIMDL()
	var sel, pimT, xfer float64
	for _, sh := range model.LayerGEMMs() {
		c := cm.Estimate(cfg, sh.M, sh.K, tokens, pq.EncodeOps(cfg, sh.K, tokens))
		sel += c.HostSelectSeconds * float64(model.Layers)
		pimT += c.PIMSeconds * float64(model.Layers)
		xfer += c.TransferSeconds * float64(model.Layers)
	}
	others := (modelAttnFlops(model, tokens) + modelElemFlops(model, tokens)) *
		float64(model.Layers) / dnn.DefaultHost().FlopsPerSec
	pqTotal := sel + pimT + xfer + others
	tab.Add("PIM-DL", "GEMM on PIM", 100*pimT/pqTotal)
	tab.Add("PIM-DL", "Centroid selection", 100*sel/pqTotal)
	tab.Add("PIM-DL", "Matrix transfer", 100*xfer/pqTotal)
	tab.Add("PIM-DL", "Others (host fp32)", 100*others/pqTotal)
	res.Values["pimdl_centroid_share"] = 100 * sel / pqTotal

	// (b) LoCaLUT GEMM kernel phases on a representative shape.
	rep, err := s.runGEMM(s.scale(3072, 384), s.scale(768, 192), s.scale(128, 16),
		quant.W1A3, kernels.LoCaLUT, gemm.Options{})
	if err != nil {
		return nil, err
	}
	b := rep.Breakdown
	kt := float64(b.Total())
	kadd := func(phase string, v int64) {
		tab.Add("LoCaLUT kernel (W1A3)", phase, 100*float64(v)/kt)
	}
	kadd("Canonical LUT access", b.CanonAccess)
	kadd("Reordering LUT access", b.ReorderAccess)
	kadd("Reordering LUT index calc.", b.IdxCalc)
	kadd("Act./weight transfer", b.Transfer)
	kadd("LUT (slice) load", b.LUTLoad)
	kadd("Accumulate", b.Accumulate)
	kadd("Others", b.Other)
	res.Values["kernel_idxcalc_share"] = 100 * float64(b.IdxCalc) / kt
	res.Values["kernel_reorder_share"] = 100 * float64(b.ReorderAccess) / kt
	res.notef("reordering LUT index calculation dominates the kernel at %.0f%%; reordering LUT access is %.1f%% (paper: 6.9%%)",
		100*float64(b.IdxCalc)/kt, 100*float64(b.ReorderAccess)/kt)
	res.notef("PIM-DL spends %.0f%% of end-to-end time on host centroid selection (paper: dominant host overhead)", 100*sel/pqTotal)
	return res, nil
}
