package experiments

import (
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/serve"
	"github.com/ais-snu/localut/internal/trace"
)

// ServingPoint is one (design, arrival rate) sample of a saturation sweep:
// the latency–throughput curve the serving layer exists to draw.
type ServingPoint struct {
	Design           string
	RatePerSec       float64
	OfferedPerSec    float64
	ThroughputPerSec float64
	TokensPerSec     float64
	LatencyP50       float64
	LatencyP95       float64
	LatencyP99       float64
	// TTFTP99/TPOTP99 are zero for prefill-only configurations.
	TTFTP99       float64
	TPOTP99       float64
	Utilization   float64
	MeanBatchSize float64
	Requests      int
}

// ServingCurve sweeps the open-loop arrival rate for each design and
// returns one point per (design, rate), in input order. The base config's
// RatePerSec and Variant are overridden per point; everything else
// (duration, seed, scheduler, length distribution) is shared, so points
// differ only in offered load and design. Runs are sequential and each is
// individually deterministic, so the curve is bit-reproducible.
func ServingCurve(base serve.Config, designs []kernels.Variant, rates []float64) ([]ServingPoint, error) {
	points := make([]ServingPoint, 0, len(designs)*len(rates))
	for _, d := range designs {
		for _, r := range rates {
			cfg := base
			cfg.Variant = d
			cfg.RatePerSec = r
			cfg.Clients = 0
			cfg.ArrivalTimes = nil
			rep, err := serve.Run(cfg)
			if err != nil {
				return nil, err
			}
			points = append(points, ServingPoint{
				Design:           rep.Design,
				RatePerSec:       r,
				OfferedPerSec:    rep.OfferedPerSec,
				ThroughputPerSec: rep.ThroughputPerSec,
				TokensPerSec:     rep.TokensPerSec,
				LatencyP50:       rep.Latency.P50,
				LatencyP95:       rep.Latency.P95,
				LatencyP99:       rep.Latency.P99,
				TTFTP99:          rep.TTFT.P99,
				TPOTP99:          rep.TPOT.P99,
				Utilization:      rep.RankUtilization,
				MeanBatchSize:    rep.MeanBatchSize,
				Requests:         rep.Requests,
			})
		}
	}
	return points, nil
}

// ServingTable renders a curve as a trace table (markdown or CSV ready).
func ServingTable(title string, points []ServingPoint) *trace.Table {
	t := trace.NewTable(title,
		"design", "rate/s", "offered/s", "throughput/s", "tokens/s",
		"p50 (s)", "p95 (s)", "p99 (s)", "ttft p99 (s)", "tpot p99 (s)",
		"util", "batch", "requests")
	for _, p := range points {
		t.Add(p.Design, p.RatePerSec, p.OfferedPerSec, p.ThroughputPerSec,
			p.TokensPerSec, p.LatencyP50, p.LatencyP95, p.LatencyP99,
			p.TTFTP99, p.TPOTP99, p.Utilization, p.MeanBatchSize, p.Requests)
	}
	return t
}
