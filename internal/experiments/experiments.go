// Package experiments contains one driver per figure of the paper's
// evaluation (§III and §VI). Each driver regenerates the corresponding
// table/series — workload generation, parameter sweep, baselines and
// LoCaLUT — and reports headline aggregates next to the paper's published
// values so EXPERIMENTS.md can record paper-vs-measured for every figure.
package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/energy"
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/trace"
	"github.com/ais-snu/localut/internal/workload"
)

// Aliases keep the figure drivers readable.
type dnnInference = dnn.InferenceReport
type dnnPhase = dnn.PhaseReport

// newRunner builds a dnn runner sharing the suite's engine.
func (s *Suite) newRunner(model string, f quant.Format, v kernels.Variant) *dnn.Runner {
	r := dnn.NewRunner(s.modelConfig(model), f, v)
	r.Engine = s.Engine
	r.Seed = s.Seed
	return r
}

// newRand returns a seeded source for measurement sampling.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Suite bundles the shared machine configuration of all experiments.
type Suite struct {
	Engine *gemm.Engine
	Energy energy.Model
	Seed   int64
	// Quick shrinks workloads for unit tests and smoke runs; the sweep
	// structure (who is compared against whom) is unchanged.
	Quick bool
}

// New returns the full-scale suite on the paper's testbed configuration.
func New() *Suite {
	return &Suite{Engine: gemm.NewEngine(), Energy: energy.Default(), Seed: 1}
}

// NewQuick returns a reduced-size suite for tests.
func NewQuick() *Suite {
	s := New()
	s.Quick = true
	return s
}

// Result is one regenerated figure.
type Result struct {
	// ID names the experiment ("fig09"), Caption describes it.
	ID, Caption string
	// Table holds the regenerated rows/series.
	Table *trace.Table
	// Notes carry headline aggregates with the paper's value alongside.
	Notes []string
	// Values exposes key metrics for tests and EXPERIMENTS.md.
	Values map[string]float64
}

func newResult(id, caption string, t *trace.Table) *Result {
	return &Result{ID: id, Caption: caption, Table: t, Values: map[string]float64{}}
}

// notef appends a formatted headline note.
func (r *Result) notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the result as markdown.
func (r *Result) Render(sb *strings.Builder) {
	fmt.Fprintf(sb, "\n## %s — %s\n", strings.ToUpper(r.ID), r.Caption)
	r.Table.Render(sb)
	for _, n := range r.Notes {
		fmt.Fprintf(sb, "- %s\n", n)
	}
}

// scale divides a dimension in Quick mode, keeping a sane floor.
func (s *Suite) scale(v, quick int) int {
	if s.Quick {
		return quick
	}
	return v
}

// runGEMM executes one GEMM under the paper's context-parallel tiling.
func (s *Suite) runGEMM(m, k, n int, f quant.Format, v kernels.Variant, opt gemm.Options) (*gemm.Report, error) {
	pair := workload.NewGEMMPair(m, k, n, f, s.Seed)
	opt.Variant = v
	opt.NSplitOnly = true
	return s.Engine.Run(pair, opt)
}

// All runs every figure driver in paper order.
func (s *Suite) All() ([]*Result, error) {
	drivers := []struct {
		name string
		fn   func() (*Result, error)
	}{
		{"fig03", s.Fig03}, {"fig06", s.Fig06}, {"fig09", s.Fig09},
		{"fig10", s.Fig10}, {"fig11", s.Fig11}, {"fig12", s.Fig12},
		{"fig13", s.Fig13}, {"fig14", s.Fig14}, {"fig15", s.Fig15},
		{"fig16", s.Fig16}, {"fig17", s.Fig17}, {"fig18", s.Fig18},
		{"fig19", s.Fig19}, {"fig20", s.Fig20}, {"fig21", s.Fig21},
	}
	out := make([]*Result, 0, len(drivers))
	for _, d := range drivers {
		r, err := d.fn()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", d.name, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// ReportMarkdown renders a full run as one markdown document.
func ReportMarkdown(results []*Result) string {
	var sb strings.Builder
	sb.WriteString("# LoCaLUT reproduction — regenerated evaluation figures\n")
	for _, r := range results {
		r.Render(&sb)
	}
	return sb.String()
}
