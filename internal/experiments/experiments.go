package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/ais-snu/localut/internal/banksim"
	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/energy"
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/trace"
	"github.com/ais-snu/localut/internal/workload"
)

// Aliases keep the figure drivers readable.
type dnnInference = dnn.InferenceReport
type dnnPhase = dnn.PhaseReport

// newRunner builds a dnn runner sharing the suite's engine.
func (s *Suite) newRunner(model string, f quant.Format, v kernels.Variant) *dnn.Runner {
	r := dnn.NewRunner(s.modelConfig(model), f, v)
	r.Engine = s.Engine
	r.Seed = s.Seed
	return r
}

// newRand returns a seeded source for measurement sampling.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// Suite bundles the shared machine configuration of all experiments.
type Suite struct {
	Engine *gemm.Engine
	Energy energy.Model
	Seed   int64
	// Quick shrinks workloads for unit tests and smoke runs; the sweep
	// structure (who is compared against whom) is unchanged.
	Quick bool
	// Parallelism is the worker-pool size for running figure drivers and
	// bank grids concurrently (0 = NumCPU, 1 = serial). Every driver is
	// deterministic — seeded workloads, shard-ordered aggregation — so the
	// regenerated numbers are identical at any setting.
	Parallelism int
	// Mode selects the engine's execution backend for every GEMM the
	// figures run. CyclesOnly regenerates identical numbers (the figures
	// consume only cycle/energy models, like the paper's) without the
	// byte-level functional simulation or its per-run verification. Like
	// Parallelism, it is a plain field: RunFigure and All apply it to the
	// engine when they run.
	Mode kernels.Mode
}

// syncMode pushes the suite-level mode into the engine before a run.
func (s *Suite) syncMode() { s.Engine.Exec.Mode = s.Mode }

// kernelTile builds the tile a direct (engine-bypassing) kernel run needs
// under the suite's mode: seeded data in Functional mode, shape only in
// CyclesOnly. Pair it with kernelDPU.
func (s *Suite) kernelTile(m, k, n int, f quant.Format) (*kernels.Tile, error) {
	if s.Mode == kernels.CyclesOnly {
		return kernels.NewShapeTile(m, k, n, f)
	}
	pair := workload.NewGEMMPair(m, k, n, f, s.Seed)
	return kernels.NewTile(m, k, n, f, pair.W.Codes, pair.A.Codes)
}

// kernelDPU builds the DPU for a direct kernel run under the suite's mode.
func (s *Suite) kernelDPU(cfg *pim.Config) *pim.DPU {
	return kernels.DPUForMode(cfg, s.Mode)
}

// New returns the full-scale suite on the paper's testbed configuration.
func New() *Suite {
	return &Suite{Engine: gemm.NewEngine(), Energy: energy.Default(), Seed: 1}
}

// NewQuick returns a reduced-size suite for tests.
func NewQuick() *Suite {
	s := New()
	s.Quick = true
	return s
}

// Result is one regenerated figure.
type Result struct {
	// ID names the experiment ("fig09"), Caption describes it.
	ID, Caption string
	// Table holds the regenerated rows/series.
	Table *trace.Table
	// Notes carry headline aggregates with the paper's value alongside.
	Notes []string
	// Values exposes key metrics for tests and EXPERIMENTS.md.
	Values map[string]float64
}

func newResult(id, caption string, t *trace.Table) *Result {
	return &Result{ID: id, Caption: caption, Table: t, Values: map[string]float64{}}
}

// notef appends a formatted headline note.
func (r *Result) notef(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Render writes the result as markdown.
func (r *Result) Render(sb *strings.Builder) {
	fmt.Fprintf(sb, "\n## %s — %s\n", strings.ToUpper(r.ID), r.Caption)
	r.Table.Render(sb)
	for _, n := range r.Notes {
		fmt.Fprintf(sb, "- %s\n", n)
	}
}

// scale divides a dimension in Quick mode, keeping a sane floor.
func (s *Suite) scale(v, quick int) int {
	if s.Quick {
		return quick
	}
	return v
}

// runGEMM executes one GEMM under the paper's context-parallel tiling.
func (s *Suite) runGEMM(m, k, n int, f quant.Format, v kernels.Variant, opt gemm.Options) (*gemm.Report, error) {
	pair := workload.NewGEMMPair(m, k, n, f, s.Seed)
	opt.Variant = v
	opt.NSplitOnly = true
	return s.Engine.Run(pair, opt)
}

// clone returns a suite whose engine can be used concurrently with the
// original's (shared decision cache, private configuration).
func (s *Suite) clone() *Suite {
	c := *s
	c.Engine = s.Engine.Clone()
	return &c
}

// figDrivers lists every figure driver in paper order.
var figDrivers = []struct {
	name string
	fn   func(*Suite) (*Result, error)
}{
	{"fig03", (*Suite).Fig03}, {"fig06", (*Suite).Fig06}, {"fig09", (*Suite).Fig09},
	{"fig10", (*Suite).Fig10}, {"fig11", (*Suite).Fig11}, {"fig12", (*Suite).Fig12},
	{"fig13", (*Suite).Fig13}, {"fig14", (*Suite).Fig14}, {"fig15", (*Suite).Fig15},
	{"fig16", (*Suite).Fig16}, {"fig17", (*Suite).Fig17}, {"fig18", (*Suite).Fig18},
	{"fig19", (*Suite).Fig19}, {"fig20", (*Suite).Fig20}, {"fig21", (*Suite).Fig21},
}

// RunFigure regenerates a single figure by id ("fig09"); figDrivers is the
// sole driver registry, shared with All.
func (s *Suite) RunFigure(id string) (*Result, error) {
	s.syncMode()
	for _, d := range figDrivers {
		if d.name == id {
			return d.fn(s)
		}
	}
	return nil, fmt.Errorf("unknown figure %q (fig03..fig21)", id)
}

// All regenerates every figure, dispatching the independent drivers over
// the suite's worker pool. Each driver runs on a cloned suite so no
// configuration state is shared; results come back in paper order whatever
// the scheduling.
func (s *Suite) All() ([]*Result, error) {
	s.syncMode()
	out := make([]*Result, len(figDrivers))
	err := banksim.ForEachShard(len(figDrivers), s.Parallelism, func(i int) error {
		r, err := figDrivers[i].fn(s.clone())
		if err != nil {
			return fmt.Errorf("experiments: %s: %w", figDrivers[i].name, err)
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ReportMarkdown renders a full run as one markdown document.
func ReportMarkdown(results []*Result) string {
	var sb strings.Builder
	sb.WriteString("# LoCaLUT reproduction — regenerated evaluation figures\n")
	for _, r := range results {
		r.Render(&sb)
	}
	return sb.String()
}
