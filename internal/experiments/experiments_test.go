package experiments

import (
	"strings"
	"testing"
)

// TestAllQuick runs every figure driver at reduced scale and checks the
// structural claims each figure must reproduce.
func TestAllQuick(t *testing.T) {
	s := NewQuick()
	results, err := s.All()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 15 {
		t.Fatalf("got %d results, want 15", len(results))
	}
	byID := map[string]*Result{}
	for _, r := range results {
		if r.Table == nil || len(r.Table.Rows) == 0 {
			t.Errorf("%s: empty table", r.ID)
		}
		byID[r.ID] = r
	}

	// Fig. 3: the buffer-sized LUT must beat the DRAM-sized LUT.
	if v := byID["fig03"].Values["dram_over_buffer_at_plocal"]; v <= 1 {
		t.Errorf("fig03: DRAM/buffer ratio %.2f, want > 1", v)
	}
	// Fig. 6: capacity reduction brackets.
	if v := byID["fig06"].Values["reduction_p8"]; v < 300 || v > 420 {
		t.Errorf("fig06: p=8 reduction %.0f, want ~358", v)
	}
	// Fig. 9: LoCaLUT wins on geomean against both baselines.
	f9 := byID["fig09"].Values
	if f9["geomean_over_naive"] < 1.5 {
		t.Errorf("fig09: geomean over naive %.2f, want > 1.5", f9["geomean_over_naive"])
	}
	if f9["geomean_over_ltc"] < 1.0 {
		t.Errorf("fig09: geomean over LTC %.2f, want > 1", f9["geomean_over_ltc"])
	}
	// Fig. 10: end-to-end wins. The quick 1-layer/32-token scale compresses
	// the LoCaLUT-vs-OP gap (fixed WRAM staging dominates), so the geomean
	// bound is relaxed here; the W1A3 win must hold at any scale. Full-scale
	// values are recorded in EXPERIMENTS.md.
	f10 := byID["fig10"].Values
	if f10["geomean_over_naive"] < 1.0 {
		t.Errorf("fig10: end-to-end geomean %.2f, want > 1", f10["geomean_over_naive"])
	}
	if f10["geomean_over_op"] < 0.85 {
		t.Errorf("fig10: over OP %.2f, want > 0.85 at quick scale", f10["geomean_over_op"])
	}
	if f10["over_op_BERT_W1A3"] < 1.0 {
		t.Errorf("fig10: BERT W1A3 over OP %.2f, want > 1", f10["over_op_BERT_W1A3"])
	}
	// Fig. 11: robust across matrix sizes.
	if v := byID["fig11"].Values["geomean"]; v < 1.0 {
		t.Errorf("fig11: geomean %.2f, want > 1", v)
	}
	// Fig. 14: energy advantage at W1Ax.
	if v := byID["fig14"].Values["w1ax_vs_naive"]; v < 1.2 {
		t.Errorf("fig14: W1Ax energy ratio %.2f, want > 1.2", v)
	}
	// Fig. 15: LoCaLUT dominates the PQ points.
	f15 := byID["fig15"].Values
	if f15["pq_points_dominated"] < f15["pq_points_total"] {
		t.Errorf("fig15: only %v/%v PQ points dominated", f15["pq_points_dominated"], f15["pq_points_total"])
	}
	// Fig. 16: index calculation dominates the kernel; reorder access small.
	f16 := byID["fig16"].Values
	if f16["kernel_idxcalc_share"] < 30 {
		t.Errorf("fig16: idx calc share %.1f%%, want dominant", f16["kernel_idxcalc_share"])
	}
	if f16["kernel_reorder_share"] > 15 {
		t.Errorf("fig16: reorder access share %.1f%%, want small (~7%%)", f16["kernel_reorder_share"])
	}
	if f16["pimdl_centroid_share"] < 20 {
		t.Errorf("fig16: PIM-DL centroid share %.1f%%, want a large host overhead", f16["pimdl_centroid_share"])
	}
	// Fig. 17: LoCaLUT beats CPU everywhere and the GPU at low bit-widths;
	// the GPU wins at W4A4 (the paper's crossover).
	f17 := byID["fig17"].Values
	if f17["cpu_over_localut_W1A3"] < 1 {
		t.Errorf("fig17: CPU/LoCaLUT at W1A3 %.2f, want > 1", f17["cpu_over_localut_W1A3"])
	}
	if f17["gpu_over_localut_W1A3"] < 1 {
		t.Errorf("fig17: GPU/LoCaLUT at W1A3 %.2f, want > 1 (LoCaLUT wins low bits)", f17["gpu_over_localut_W1A3"])
	}
	if f17["gpu_over_localut_W4A4"] > 1 {
		t.Errorf("fig17: GPU/LoCaLUT at W4A4 %.2f, want < 1 (GPU wins)", f17["gpu_over_localut_W4A4"])
	}
	// Fig. 18: the cost model tracks simulation.
	if v := byID["fig18"].Values["mean_rel_error"]; v > 0.35 {
		t.Errorf("fig18: mean model error %.1f%%, want < 35%%", 100*v)
	}
	// Fig. 19: LoCaLUT beats OP in both phases.
	f19 := byID["fig19"].Values
	if f19["prefill_speedup"] < 1.0 {
		t.Errorf("fig19: prefill speedup %.2f, want > 1", f19["prefill_speedup"])
	}
	// Fig. 20: bank-level PIM gains, modest at W4A4.
	f20 := byID["fig20"].Values
	if f20["geomean"] < 1.0 {
		t.Errorf("fig20: geomean %.2f, want > 1", f20["geomean"])
	}
	if f20["w4a4_speedup"] > f20["geomean"] {
		t.Errorf("fig20: W4A4 (%.2f) should be the weakest config (geomean %.2f)",
			f20["w4a4_speedup"], f20["geomean"])
	}
	// Fig. 21: accuracy is flat across p; W1A16 loses to native fp16.
	f21 := byID["fig21"].Values
	for p := 1; p <= 5; p++ {
		key := "vit_acc_p" + string(rune('0'+p))
		if acc := f21[key]; acc < 80.5 {
			t.Errorf("fig21: %s = %.2f, want ~80.9 (no degradation)", key, acc)
		}
	}
	if f21["fp_speedup_W1A16 (FP16)"] > 1.0 {
		t.Errorf("fig21: W1A16 speedup %.2f, want < 1 (native fp16 wins)", f21["fp_speedup_W1A16 (FP16)"])
	}
	if f21["fp_speedup_W1A4 (FP4)"] < 1.0 {
		t.Errorf("fig21: W1A4 fp speedup %.2f, want > 1", f21["fp_speedup_W1A4 (FP4)"])
	}
}

func TestReportMarkdown(t *testing.T) {
	s := NewQuick()
	r, err := s.Fig06()
	if err != nil {
		t.Fatal(err)
	}
	doc := ReportMarkdown([]*Result{r})
	for _, want := range []string{"# LoCaLUT reproduction", "FIG06", "reduction"} {
		if !strings.Contains(doc, want) {
			t.Errorf("markdown missing %q", want)
		}
	}
}
