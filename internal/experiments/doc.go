// Package experiments contains one driver per figure of the paper's
// evaluation (§III and §VI). Each driver regenerates the corresponding
// table/series — workload generation, parameter sweep, baselines and
// LoCaLUT — and reports headline aggregates next to the paper's published
// values so EXPERIMENTS.md can record paper-vs-measured for every figure.
//
// Every driver is deterministic (seeded workloads, shard-ordered
// aggregation), so Suite.All dispatches the independent drivers across a
// worker pool sized by Suite.Parallelism: each runs on a cloned suite whose
// engine shares the process-wide decision and LUT caches. The bank-level
// studies (Fig. 20/21) run their channel x bank grids through banksim's
// sharded multi-bank runner, and GEMMSweep drives the gemm engine's
// full-grid mode for localut-bench's -sweep/-compare commands.
package experiments
