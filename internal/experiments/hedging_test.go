package experiments

import (
	"reflect"
	"strings"
	"testing"

	"github.com/ais-snu/localut/internal/cluster"
	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/serve"
)

// hedgeBase is the canonical gray-failure scenario: an 8-member fleet
// where members intermittently run 4x slow without crashing.
func hedgeBase() cluster.Config {
	return cluster.Config{
		Base: serve.Config{
			Model:     dnn.OPT125M(),
			Fmt:       quant.W1A3,
			Variant:   kernels.LoCaLUT,
			Replicas:  2,
			OutTokens: 4,
		},
		Instances:       8,
		RatePerSec:      30,
		DurationSeconds: 60,
		Seed:            1,
		Audit:           true,
		DeadlineSeconds: 8,
		Stragglers: cluster.StragglerConfig{
			Enabled:             true,
			MTBFSeconds:         80,
			MeanDurationSeconds: 5,
			Slowdown:            4,
		},
	}
}

// TestHedgeCurveTailTradeoff pins the sweep's purpose: against the
// delay-0 baseline, a well-chosen hedge delay must cut TTFT p99 while
// wasting under 10% of fleet busy time, and the shared straggler
// schedule must be identical at every point.
func TestHedgeCurveTailTradeoff(t *testing.T) {
	points, err := HedgeCurve(hedgeBase(), []float64{0, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("got %d points, want 2", len(points))
	}
	base, hedged := points[0], points[1]
	if base.DelaySeconds != 0 || hedged.DelaySeconds != 0.2 {
		t.Fatalf("point identity wrong: %+v", points)
	}
	if base.TTFTRatio != 1 {
		t.Errorf("baseline ratio = %g, want 1", base.TTFTRatio)
	}
	if base.StragglerWindows == 0 || hedged.StragglerWindows != base.StragglerWindows {
		t.Errorf("straggler schedule not shared: %d vs %d windows",
			base.StragglerWindows, hedged.StragglerWindows)
	}
	if base.HedgesIssued != 0 || hedged.HedgesIssued == 0 || hedged.HedgeWins == 0 {
		t.Errorf("hedge counters wrong: base %d issued, hedged %d issued / %d wins",
			base.HedgesIssued, hedged.HedgesIssued, hedged.HedgeWins)
	}
	if hedged.TTFTp99 >= base.TTFTp99 {
		t.Errorf("hedging did not improve TTFT p99: %g vs %g", hedged.TTFTp99, base.TTFTp99)
	}
	if hedged.WasteFraction <= 0 || hedged.WasteFraction >= 0.10 {
		t.Errorf("waste fraction %g outside (0, 0.10)", hedged.WasteFraction)
	}
}

func TestHedgeCurveDeterministic(t *testing.T) {
	a, err := HedgeCurve(hedgeBase(), []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := HedgeCurve(hedgeBase(), []float64{0, 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same config diverged")
	}
}

func TestHedgeTable(t *testing.T) {
	points, err := HedgeCurve(hedgeBase(), []float64{0})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := HedgeTable("hedging", points).Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, col := range []string{"hedge delay (s)", "ttft p99 (s)", "waste frac"} {
		if !strings.Contains(out, col) {
			t.Errorf("table missing column %q:\n%s", col, out)
		}
	}
}
