package cluster

import "math/rand"

// chaosStream identifies one family of seeded chaos RNG streams. Every
// chaos subsystem (fault injection, gray-failure stragglers, correlated
// domain outages) draws from its own family so enabling or reseeding
// one layer can never shift another layer's schedule — the property the
// hedged-vs-unhedged and faulted-vs-clean twin-run comparisons depend
// on.
type chaosStream int

const (
	faultStream     chaosStream = iota // per-member fail-stop/degraded faults
	stragglerStream                    // per-member slowdown windows
	domainStream                       // per-domain correlated outages
	numChaosStreams
)

// seedStream is one registered (offset, stride) seed-derivation pair:
// the k-th instance of the stream is seeded with
// Seed + offset + k*stride.
type seedStream struct {
	offset int64
	stride int64
}

// chaosStreams is the single registry of chaos seed streams. The
// rngstream analyzer (cmd/determlint) statically verifies that every
// offset and every stride here is unique and that no rand source in
// this package is constructed outside the registry accessor below;
// TestChaosStreamSeedsDisjoint pins the derived seeds apart at runtime
// for fleets up to 4096 members. Strides are large distinct primes so
// the k-indexed arithmetic progressions stay disjoint at any realistic
// fleet size.
var chaosStreams = [numChaosStreams]seedStream{
	faultStream:     {offset: 57, stride: 104729},
	stragglerStream: {offset: 211, stride: 32452843},
	domainStream:    {offset: 131, stride: 15485863},
}

// chaosRand derives the k-th generator of stream id from the run seed.
// This is the only place the package may construct a rand source: new
// chaos layers add a registry entry, not ad-hoc seed arithmetic.
func chaosRand(seed int64, id chaosStream, k int) *rand.Rand {
	s := chaosStreams[id]
	return rand.New(rand.NewSource(seed + s.offset + int64(k)*s.stride))
}
