package cluster

import (
	"fmt"
	"testing"
)

// TestChaosStreamRegistryUnique pins the registry invariant the
// rngstream analyzer checks at build time: every stream has a unique
// offset and a unique stride, and both are positive. A collision in
// either column would let two chaos layers share derived seeds.
func TestChaosStreamRegistryUnique(t *testing.T) {
	offsets := map[int64]chaosStream{}
	strides := map[int64]chaosStream{}
	for id, s := range chaosStreams {
		if s.offset <= 0 || s.stride <= 0 {
			t.Errorf("stream %d: offset %d and stride %d must be positive", id, s.offset, s.stride)
		}
		if prev, dup := offsets[s.offset]; dup {
			t.Errorf("streams %d and %d share offset %d", prev, id, s.offset)
		}
		if prev, dup := strides[s.stride]; dup {
			t.Errorf("streams %d and %d share stride %d", prev, id, s.stride)
		}
		offsets[s.offset] = chaosStream(id)
		strides[s.stride] = chaosStream(id)
	}
}

// TestChaosStreamSeedsDisjoint checks the operative property behind the
// registry: for any fleet/domain index up to 4096, no two streams
// derive the same seed, so no two chaos subsystems can ever consume an
// identical random sequence.
func TestChaosStreamSeedsDisjoint(t *testing.T) {
	const maxIndex = 4096
	seen := map[int64]string{}
	for id, s := range chaosStreams {
		for k := int64(0); k < maxIndex; k++ {
			seed := s.offset + k*s.stride
			if prev, dup := seen[seed]; dup {
				t.Fatalf("stream %d index %d derives seed %d already produced by %s", id, k, seed, prev)
			}
			seen[seed] = fmt.Sprintf("stream %d index %d", id, k)
		}
	}
}
