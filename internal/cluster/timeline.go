package cluster

// Timeline event kinds. One ordered stream carries autoscaler actions,
// fault injections/repairs and KV-pressure sheds, replacing the separate
// scaling and fault timelines: a crash and the scale-up it triggers read
// in order, from one schema, through one rendering path.
const (
	// KindScale marks autoscaler activity: "tick", "up-start",
	// "up-active", "drain-start", "down".
	KindScale = "scale"
	// KindFault marks fault injection and recovery: "crash", "repair",
	// "degrade", "replica-repair".
	KindFault = "fault"
	// KindKV marks KV-pressure sheds under the KVShed policy ("kv-shed").
	KindKV = "kv"
	// KindDomain marks correlated failure-domain activity: "outage" (every
	// member of the domain crashes at once) and "repair" (the domain-wide
	// repair window closes).
	KindDomain = "domain-outage"
	// KindStraggler marks gray-failure windows: "start" opens a slowdown
	// window on a member, "end" closes it.
	KindStraggler = "straggler"
	// KindHedge marks request hedging: "issue" duplicates a slow request
	// onto a second member, "win" records the duplicate finishing first.
	KindHedge = "hedge"
)

// TimelineEvent is one entry of the unified fleet timeline. Events are
// appended in event-loop order, so the slice is time-ordered and
// deterministic.
type TimelineEvent struct {
	T      float64
	Kind   string // KindScale, KindFault, KindKV, KindDomain, KindStraggler, KindHedge
	Action string
	// Instance is the affected member (-1 for fleet-level entries such as
	// autoscaler ticks); Replica is the affected replica for degraded-mode
	// faults (-1 otherwise).
	Instance int
	Replica  int
	// Active is the routable-instance count after the event.
	Active int
	// P99 and Samples describe the autoscaler window behind a tick.
	P99     float64 `json:",omitempty"`
	Samples int     `json:",omitempty"`
	// RecoverSeconds is the crash-to-repair outage a "repair" entry ends.
	RecoverSeconds float64 `json:",omitempty"`
	// Domain is the failure domain behind a KindDomain entry; meaningful
	// only when Kind is KindDomain (0 elsewhere).
	Domain int `json:",omitempty"`
}
