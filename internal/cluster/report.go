package cluster

import (
	"github.com/ais-snu/localut/internal/serve"
)

// InstanceReport summarizes one fleet member's lifecycle and service.
type InstanceReport struct {
	ID       int
	Design   string
	Replicas int

	// Lifecycle timestamps in simulated seconds. DownAt is 0 for
	// instances still active at the end of the run; ActiveAt is 0 for the
	// initial fleet.
	UpAt, ActiveAt, DrainAt, DownAt float64

	// Domain is the member's failure domain under correlated fault
	// injection (-1 when failure domains are off).
	Domain int

	Requests  int // admitted (routed) requests
	Completed int
	Shed      int // dropped by the instance (deadline expiry, KV budget)
	// Canceled counts hedge losers cancelled on this instance; Displaced
	// counts requests handed back to the cluster by a crash or replica
	// loss. Both close the instance's conservation ledger:
	// Requests == Completed + Shed + Canceled + Displaced after the drain.
	Canceled  int
	Displaced int

	// Fault history: full crashes, degraded-mode replica losses, and total
	// crash-to-repair outage time.
	Crashes            int
	Degraded           int
	UnavailableSeconds float64

	// StragglerWindows counts gray-failure slowdown windows opened on this
	// member.
	StragglerWindows int

	Batches       int
	DecodeSteps   int
	MeanBatchSize float64
	// BusySeconds sums per-replica service time, with hedge-cancel refunds
	// applied — the denominator for hedge-waste fractions.
	BusySeconds float64
	// Utilization is replica-seconds busy over replica-seconds routable
	// (active until retirement or end of run).
	Utilization float64
	// PIMShare is the fraction of busy time spent in PIM kernels.
	PIMShare float64

	TokensIn, TokensPadded, TokensOut int64
	EnergyJ                           float64
	KVPeakBytes, KVCapacityBytes      int64
	// KVMeanBytes is the time-weighted mean KV footprint per replica over
	// the member's routable life; KVMeanUtilization is its share of
	// capacity. The peak alone hides sustained pressure.
	KVMeanBytes       float64
	KVMeanUtilization float64
}

// ClassReport summarizes one SLO class's population.
type ClassReport struct {
	Name       string
	RatePerSec float64

	Offered, Admitted, Rejected, Completed int

	// Reliability accounting. Good counts completions that met their
	// deadline (all completions when the class has none); DeadlineMisses
	// counts late completions; Shed counts admitted requests dropped
	// (expired, KV pressure, full queues, retry budget); Retries counts
	// re-admissions of fault-displaced work. DeadlineMissRate is the
	// fraction of admitted requests that did not complete in time — late,
	// shed or lost.
	Good             int
	GoodputPerSec    float64
	DeadlineMisses   int
	Shed             int
	Retries          int
	DeadlineSeconds  float64
	DeadlineMissRate float64

	Latency serve.Stats
	TTFT    serve.Stats
	TPOT    serve.Stats

	// SLO targets echoed from the config (0 = not tracked) and whether
	// the class met every tracked one.
	TTFTp99SLO    float64
	LatencyP99SLO float64
	TPOTp99SLO    float64
	SLOMet        bool
}

// Report is the cluster-run summary. Built from samples appended in
// event order, it is a pure function of the configuration and seed.
type Report struct {
	Router    string
	Admission string

	InstancesInitial int
	InstancesPeak    int
	InstancesFinal   int // active at end of run

	Offered, Admitted, Rejected, Completed int

	DurationSeconds float64
	MakespanSeconds float64

	OfferedPerSec    float64
	ThroughputPerSec float64 // completed / makespan
	TokensPerSec     float64 // output (or padded prefill) tokens / makespan

	// Reliability rows. Goodput separates useful work from raw throughput:
	// Good counts completions that met their deadline, GoodputPerSec is
	// Good over the makespan. Shed decomposes into deadline expiry, KV
	// budget, full queues and exhausted retry budgets; after the drain
	// Admitted == Completed + Shed. ReprefillTokens are prompt tokens
	// re-prefilled by retried work whose KV state a fault destroyed.
	Good            int
	GoodputPerSec   float64
	DeadlineMisses  int // late completions
	Retries         int
	ReprefillTokens int64
	Shed            int
	ShedExpired     int
	ShedKV          int
	ShedQueueFull   int
	ShedRetries     int

	// Fault plan outcome: crash and degraded-mode counts, summed outage
	// time across instances, the distribution of crash-to-repair times,
	// and the modeled LUT re-materialization surcharge each full recovery
	// paid (zero when fault injection is off).
	Crashes            int
	DegradedEvents     int
	UnavailableSeconds float64
	TimeToRecover      serve.Stats
	LUTRematSeconds    float64

	// Correlated-failure outcome: DomainOutages counts domain-wide blast
	// events; DomainOverlapExtensions counts member repairs that a second
	// outage extended while the member was already down (the overlap is
	// merged into one window, never double-counted in UnavailableSeconds).
	DomainOutages           int
	DomainOverlapExtensions int

	// Gray-failure outcome: slowdown windows opened across the fleet.
	StragglerWindows int

	// Hedging outcome. Every issued hedge resolves as exactly one cancel
	// (the loser was still on an instance) or drop (it was parked or
	// displaced); wins count the pairs the duplicate copy won.
	// HedgeWastedSeconds is the busy time spent on cancelled losers before
	// their refund — compare against BusySeconds for the waste fraction.
	HedgesIssued       int
	HedgeWins          int
	HedgeCancels       int
	HedgeDrops         int
	HedgeWastedSeconds float64

	// BusySeconds sums per-replica service time across the fleet, refunds
	// applied.
	BusySeconds float64

	Queue   serve.Stats
	Service serve.Stats
	Latency serve.Stats
	TTFT    serve.Stats
	TPOT    serve.Stats

	TokensIn, TokensPadded, TokensOut int64
	EnergyJ                           float64
	EnergyPerRequestJ                 float64

	// KVPeakBytes/KVCapacityBytes are the fleet-wide maxima over members.
	KVPeakBytes, KVCapacityBytes int64

	// DistinctForwardSims counts the unique forward-pass shapes priced
	// across the fleet's shared oracles — the memoization that makes
	// million-request fleets cheap.
	DistinctForwardSims int

	Instances []InstanceReport
	Classes   []ClassReport

	// Fleet KV pressure, time-weighted across member lifetimes: mean bytes
	// pinned per replica and its share of per-replica capacity.
	KVMeanBytes       float64
	KVMeanUtilization float64

	// Timeline is the unified event stream: autoscaler actions, fault
	// injections/repairs and KV-pressure sheds in event order (empty when
	// neither subsystem is enabled).
	Timeline []TimelineEvent `json:",omitempty"`
}

func (cs *csim) report() *Report {
	rep := &Report{
		Router:           cs.cfg.Router.String(),
		Admission:        cs.cfg.Admission.String(),
		InstancesInitial: cs.cfg.Instances,
		InstancesPeak:    cs.peak,
		Offered:          cs.offered,
		Admitted:         cs.admitted,
		Rejected:         cs.rejected,
		Completed:        cs.completed,
		DurationSeconds:  cs.cfg.DurationSeconds,
		MakespanSeconds:  cs.makespan,
		Queue:            serve.HistStats(cs.qLat),
		Service:          serve.HistStats(cs.sLat),
		Latency:          serve.HistStats(cs.tLat),
		TTFT:             serve.HistStats(cs.ttft),
		TPOT:             serve.HistStats(cs.tpot),
		Timeline:         cs.timeline,

		Good:               cs.good,
		DeadlineMisses:     cs.late,
		Retries:            cs.retries,
		ReprefillTokens:    cs.reprefillTokens,
		Shed:               cs.shed,
		ShedExpired:        cs.shedExpired,
		ShedKV:             cs.shedKV,
		ShedQueueFull:      cs.shedQueueFull,
		ShedRetries:        cs.shedRetries,
		Crashes:            cs.crashes,
		DegradedEvents:     cs.degradedEvents,
		UnavailableSeconds: cs.unavailableSeconds,
		TimeToRecover:      serve.StatsOf(cs.recoverTimes),
		LUTRematSeconds:    cs.rematFull,

		DomainOutages:           cs.domainOutages,
		DomainOverlapExtensions: cs.domainOverlaps,
		StragglerWindows:        cs.stragglerWindows,
		HedgesIssued:            cs.hedges,
		HedgeWins:               cs.hedgeWins,
		HedgeCancels:            cs.hedgeCancels,
		HedgeDrops:              cs.hedgeDrops,
		HedgeWastedSeconds:      cs.hedgeWaste,
	}
	rep.OfferedPerSec = float64(cs.offered) / cs.cfg.DurationSeconds
	if cs.makespan > 0 {
		rep.ThroughputPerSec = float64(cs.completed) / cs.makespan
		rep.GoodputPerSec = float64(cs.good) / cs.makespan
	}

	var kvByteSecSum, kvReplicaSecSum float64
	for _, m := range cs.members {
		st := m.inst.Stats()
		ir := InstanceReport{
			ID:                 m.inst.ID,
			Domain:             m.domain,
			UnavailableSeconds: m.unavail,
			Design:             m.inst.Cfg.Variant.String(),
			Replicas:           m.inst.Cfg.Replicas,
			UpAt:               m.upAt,
			ActiveAt:           m.activeAt,
			DrainAt:            m.drainAt,
			DownAt:             m.downAt,
			Requests:           st.Admitted,
			Completed:          st.Finished,
			Shed:               st.Shed,
			Canceled:           st.Canceled,
			Displaced:          st.Displaced,
			Crashes:            st.Crashes,
			Degraded:           st.Degraded,
			StragglerWindows:   m.stragglerWindows,
			Batches:            st.Batches,
			DecodeSteps:        st.DecodeSteps,
			TokensIn:           st.TokensIn,
			TokensPadded:       st.TokensPadded,
			TokensOut:          st.TokensOut,
			EnergyJ:            st.EnergyJ,
			KVPeakBytes:        st.KVPeakBytes,
			KVCapacityBytes:    st.KVCapacityBytes,
		}
		if st.Batches > 0 {
			ir.MeanBatchSize = float64(st.BatchRequests) / float64(st.Batches)
		}
		end := ir.DownAt
		if m.state != stateDown {
			end = cs.makespan
		}
		var busyTotal float64
		for _, b := range st.BusySeconds {
			busyTotal += b
		}
		ir.BusySeconds = busyTotal
		rep.BusySeconds += busyTotal
		if span := end - ir.ActiveAt; span > 0 && ir.Replicas > 0 {
			ir.Utilization = busyTotal / (span * float64(ir.Replicas))
		}
		if busyTotal > 0 {
			ir.PIMShare = st.PIMBusySeconds / busyTotal
		}
		kvByteSec := m.inst.KVByteSeconds(end)
		if span := end - ir.UpAt; span > 0 && ir.Replicas > 0 {
			ir.KVMeanBytes = kvByteSec / (span * float64(ir.Replicas))
			if st.KVCapacityBytes > 0 {
				ir.KVMeanUtilization = ir.KVMeanBytes / float64(st.KVCapacityBytes)
			}
			kvByteSecSum += kvByteSec
			kvReplicaSecSum += span * float64(ir.Replicas)
		}
		rep.TokensIn += st.TokensIn
		rep.TokensPadded += st.TokensPadded
		rep.TokensOut += st.TokensOut
		rep.EnergyJ += st.EnergyJ
		if st.KVPeakBytes > rep.KVPeakBytes {
			rep.KVPeakBytes = st.KVPeakBytes
		}
		if st.KVCapacityBytes > rep.KVCapacityBytes {
			rep.KVCapacityBytes = st.KVCapacityBytes
		}
		if m.state == stateActive {
			rep.InstancesFinal++
		}
		rep.Instances = append(rep.Instances, ir)
	}
	if kvReplicaSecSum > 0 {
		rep.KVMeanBytes = kvByteSecSum / kvReplicaSecSum
		if rep.KVCapacityBytes > 0 {
			rep.KVMeanUtilization = rep.KVMeanBytes / float64(rep.KVCapacityBytes)
		}
	}
	if cs.completed > 0 {
		rep.EnergyPerRequestJ = rep.EnergyJ / float64(cs.completed)
	}
	if cs.makespan > 0 {
		toks := rep.TokensOut
		if toks == 0 {
			toks = rep.TokensPadded
		}
		rep.TokensPerSec = float64(toks) / cs.makespan
	}
	for _, o := range cs.oracles {
		rep.DistinctForwardSims += o.DistinctSims()
	}

	for i := range cs.classes {
		c := &cs.classes[i]
		cr := ClassReport{
			Name:            c.cfg.Name,
			RatePerSec:      c.cfg.RatePerSec,
			Offered:         c.offered,
			Admitted:        c.admitted,
			Rejected:        c.rejected,
			Completed:       c.completed,
			Good:            c.good,
			DeadlineMisses:  c.late,
			Shed:            c.shed,
			Retries:         c.retries,
			DeadlineSeconds: c.deadline,
			Latency:         serve.HistStats(c.tLat),
			TTFT:            serve.HistStats(c.ttft),
			TPOT:            serve.HistStats(c.tpot),
			TTFTp99SLO:      c.cfg.TTFTp99SLO,
			LatencyP99SLO:   c.cfg.LatencyP99SLO,
			TPOTp99SLO:      c.cfg.TPOTp99SLO,
		}
		if cs.makespan > 0 {
			cr.GoodputPerSec = float64(c.good) / cs.makespan
		}
		if c.admitted > 0 {
			cr.DeadlineMissRate = float64(c.admitted-c.good) / float64(c.admitted)
		}
		cr.SLOMet = (cr.TTFTp99SLO == 0 || cr.TTFT.P99 <= cr.TTFTp99SLO) &&
			(cr.LatencyP99SLO == 0 || cr.Latency.P99 <= cr.LatencyP99SLO) &&
			(cr.TPOTp99SLO == 0 || cr.TPOT.P99 <= cr.TPOTp99SLO)
		rep.Classes = append(rep.Classes, cr)
	}
	return rep
}
