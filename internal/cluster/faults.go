package cluster

import (
	"fmt"

	"github.com/ais-snu/localut/internal/obs"
	"github.com/ais-snu/localut/internal/serve"
)

// FaultConfig is the deterministic fault plan: every active instance
// draws exponential fail-stop times (mean MTTFSeconds) from its own
// seeded stream, so the crash schedule is a pure function of the cluster
// seed and adding instances never perturbs the others' faults. A fault is
// either a full crash — the appliance leaves the router, its queue
// reroutes, its in-flight prefill batches and live decode state are lost
// (KV is gone, retries pay full re-prefill) — or, with probability
// DegradedFraction, a degraded-mode fault: one replica (rank group)
// drops out and the instance keeps serving on the survivors at reduced
// capacity. Recovery waits an exponential repair time (mean MTTRSeconds)
// plus the modeled LUT re-materialization latency: a LoCaLUT appliance
// cannot serve until its lookup tables are rewritten into DRAM, so the
// capacity-vs-computation tradeoff shows up in availability too. Faults
// are injected during the arrival window only.
type FaultConfig struct {
	Enabled bool

	// MTTFSeconds is the per-instance mean time to failure (required).
	MTTFSeconds float64
	// MTTRSeconds is the mean repair delay before re-materialization
	// starts (default 5).
	MTTRSeconds float64
	// DegradedFraction is the probability a fault degrades one replica
	// instead of crashing the instance (default 0; escalates to a crash
	// when only one replica is healthy).
	DegradedFraction float64
	// LUTRematGBps is the DRAM write bandwidth assumed for re-materializing
	// the LUT budget on recovery (default 16).
	LUTRematGBps float64
}

// withDefaults fills and validates the fault plan.
func (f FaultConfig) withDefaults() (FaultConfig, error) {
	if !f.Enabled {
		return f, nil
	}
	if f.MTTRSeconds == 0 {
		f.MTTRSeconds = 5
	}
	if f.LUTRematGBps == 0 {
		f.LUTRematGBps = 16
	}
	switch {
	case f.MTTFSeconds <= 0:
		return f, fmt.Errorf("cluster: fault injection needs a positive MTTFSeconds")
	case f.MTTRSeconds <= 0:
		return f, fmt.Errorf("cluster: MTTRSeconds %g must be positive", f.MTTRSeconds)
	case f.DegradedFraction < 0 || f.DegradedFraction > 1:
		return f, fmt.Errorf("cluster: DegradedFraction %g outside [0, 1]", f.DegradedFraction)
	case f.LUTRematGBps <= 0:
		return f, fmt.Errorf("cluster: LUTRematGBps %g must be positive", f.LUTRematGBps)
	}
	return f, nil
}

// RetryConfig governs re-service of work displaced by faults. Queued
// requests on a crashed instance reroute immediately (their service never
// started); lost work — in-flight prefill or live decode — consumed an
// attempt and retries after capped exponential backoff.
type RetryConfig struct {
	// MaxAttempts bounds total service attempts per request (default 3).
	MaxAttempts int
	// BackoffSeconds is the first retry delay (default 0.05); attempt k
	// waits BackoffSeconds * 2^(k-1), capped at BackoffCapSeconds.
	BackoffSeconds float64
	// BackoffCapSeconds caps the exponential backoff (default 1).
	BackoffCapSeconds float64
}

// withDefaults fills and validates the retry policy.
func (r RetryConfig) withDefaults() (RetryConfig, error) {
	if r.MaxAttempts == 0 {
		r.MaxAttempts = 3
	}
	if r.BackoffSeconds == 0 {
		r.BackoffSeconds = 0.05
	}
	if r.BackoffCapSeconds == 0 {
		r.BackoffCapSeconds = 1
	}
	switch {
	case r.MaxAttempts < 1:
		return r, fmt.Errorf("cluster: retry MaxAttempts %d must be at least 1", r.MaxAttempts)
	case r.BackoffSeconds <= 0 || r.BackoffCapSeconds <= 0:
		return r, fmt.Errorf("cluster: retry backoff must be positive")
	case r.BackoffCapSeconds < r.BackoffSeconds:
		return r, fmt.Errorf("cluster: retry backoff cap %g below initial backoff %g",
			r.BackoffCapSeconds, r.BackoffSeconds)
	}
	return r, nil
}

// backoff is the capped exponential delay before service attempt
// attempt+1 (attempt counts completed admissions so far).
func (r RetryConfig) backoff(attempt int) float64 {
	d := r.BackoffSeconds
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= r.BackoffCapSeconds {
			return r.BackoffCapSeconds
		}
	}
	if d > r.BackoffCapSeconds {
		d = r.BackoffCapSeconds
	}
	return d
}

// faultEvent appends a fault-injection entry ("crash", "repair",
// "degrade", "replica-repair") to the unified timeline and mirrors it
// into the trace as an instant on the instance's track.
func (cs *csim) faultEvent(now float64, action string, inst, rep, active int, recover float64) {
	cs.timeline = append(cs.timeline, TimelineEvent{
		T: now, Kind: KindFault, Action: action, Instance: inst, Replica: rep,
		Active: active, RecoverSeconds: recover,
	})
	tid := 0
	if rep >= 0 {
		tid = rep + 1
	}
	cs.cfg.Recorder.Instant(inst+1, tid, action, now, obs.Num("active", float64(active)))
}

// shedCause classifies cluster-level request drops.
type shedCause int

const (
	shedExpired   shedCause = iota // deadline passed (queued, or before a retry could land)
	shedKVBudget                   // KV-pressure policy dropped it
	shedQueueFull                  // every routable member's bounded queue was full
	shedRetries                    // retry budget exhausted
)

func (c shedCause) String() string {
	switch c {
	case shedExpired:
		return "expired"
	case shedKVBudget:
		return "kv"
	case shedQueueFull:
		return "queue-full"
	default:
		return "retries"
	}
}

// shedRequest accounts a dropped request. After the drain, every admitted
// request is exactly one of: completed or shed — hedge duplicates are
// copies of an already-admitted request, so losing one while its twin
// lives is hedge bookkeeping, not a shed.
func (cs *csim) shedRequest(r *serve.Request, now float64, cause shedCause) {
	if r.Twin != nil {
		cs.dropHedgeCopy(r, now)
		return
	}
	r.Dropped = true
	cs.shed++
	cs.classes[r.Class].shed++
	switch cause {
	case shedExpired:
		cs.shedExpired++
	case shedKVBudget:
		cs.shedKV++
	case shedQueueFull:
		cs.shedQueueFull++
	case shedRetries:
		cs.shedRetries++
	}
	if rec := cs.cfg.Recorder; rec.Sampled(r.ID) {
		rec.Instant(0, 0, "shed", now,
			obs.Num("id", float64(r.ID)), obs.Str("cause", cause.String()))
		rec.EndAsync(0, "req", r.ID, "request", now)
	}
	if now > cs.makespan {
		cs.makespan = now
	}
}

// onInstanceShed adapts an Instance's shed callback to cluster accounting;
// inst is the shedding member's ID (pinned by the per-member closure).
// KV-pressure sheds are fleet-health signals, so they also land on the
// unified timeline.
func (cs *csim) onInstanceShed(inst int, r *serve.Request, now float64, reason serve.ShedReason) {
	if reason == serve.ShedDeadline {
		cs.shedRequest(r, now, shedExpired)
		return
	}
	active, _, _ := cs.fleetCounts()
	cs.timeline = append(cs.timeline, TimelineEvent{
		T: now, Kind: KindKV, Action: "kv-shed", Instance: inst, Replica: -1, Active: active,
	})
	cs.shedRequest(r, now, shedKVBudget)
}

// scheduleFault draws member m's next fault from its own stream and
// schedules it, stamped with the member's life epoch so the event dies if
// the member leaves service first. Faults land inside the arrival window
// only; later draws are discarded (they would only stretch the drain
// tail).
func (cs *csim) scheduleFault(m *member, now float64) {
	if !cs.cfg.Faults.Enabled {
		return
	}
	at := now + m.faultRNG.ExpFloat64()*cs.cfg.Faults.MTTFSeconds
	degrade := m.faultRNG.Float64() < cs.cfg.Faults.DegradedFraction
	if at > cs.cfg.DurationSeconds {
		return
	}
	cs.pushEvent(&event{at: at, inst: m.inst.ID, kind: evInstanceFault, epoch: m.lifeEpoch, degrade: degrade})
}

// onFault lands a scheduled fault: a degraded-mode replica loss when the
// draw said so and a spare replica exists, else a full crash. Lost work
// requeues; recovery is scheduled with the LUT re-materialization surcharge.
func (cs *csim) onFault(ev *event, now float64) {
	m := cs.members[ev.inst]
	if ev.epoch != m.lifeEpoch || m.state != stateActive {
		return // the member left service before the fault landed
	}
	f := &cs.cfg.Faults
	if ev.degrade && m.inst.UpReplicas() > 1 {
		lost, rep := m.inst.FailReplica(now)
		cs.degradedEvents++
		active, _, _ := cs.fleetCounts()
		cs.faultEvent(now, "degrade", ev.inst, rep, active, 0)
		cs.pushEvent(&event{at: now + m.faultRNG.ExpFloat64()*f.MTTRSeconds + cs.rematReplica,
			inst: ev.inst, kind: evReplicaRepair})
		for _, r := range lost {
			cs.requeue(r, now, true)
		}
		cs.scheduleFault(m, now) // the instance is still up; next fault
		return
	}
	cs.crashMember(m, now, now+m.faultRNG.ExpFloat64()*f.MTTRSeconds+cs.rematFull)
}

// crashMember fail-stops an active member at now: its queue reroutes, its
// lost work requeues with retry accounting, and the epoch-stamped repair
// is scheduled at repairAt. Shared between independent faults and domain
// outages.
func (cs *csim) crashMember(m *member, now, repairAt float64) {
	queued, started := m.inst.Crash(now)
	m.state = stateCrashed
	m.lifeEpoch++
	m.crashAt = now
	m.repairAt = repairAt
	m.straggling = false // the replacement hardware starts healthy
	cs.crashes++
	active, _, _ := cs.fleetCounts()
	cs.faultEvent(now, "crash", m.inst.ID, -1, active, 0)
	cs.pushEvent(&event{at: repairAt, inst: m.inst.ID, kind: evInstanceRepair, epoch: m.lifeEpoch})
	for _, r := range queued {
		cs.requeue(r, now, false)
	}
	for _, r := range started {
		cs.requeue(r, now, true)
	}
}

// onRepair returns a crashed instance to service: LUT re-materialization
// is already priced into the event time, so from here the member is
// routable and picks up queued retries as they fire. The epoch stamp
// drops repairs a later domain outage superseded — the member stays down
// until the extended window's own repair lands, and the merged outage is
// counted once.
func (cs *csim) onRepair(ev *event, now float64) error {
	m := cs.members[ev.inst]
	if ev.epoch != m.lifeEpoch || m.state != stateCrashed {
		return nil
	}
	m.state = stateActive
	m.lifeEpoch++
	rec := now - m.crashAt
	m.unavail += rec
	cs.unavailableSeconds += rec
	cs.recoverTimes = append(cs.recoverTimes, rec)
	active, _, _ := cs.fleetCounts()
	if active > cs.peak {
		cs.peak = active
	}
	cs.faultEvent(now, "repair", ev.inst, -1, active, rec)
	cs.scheduleFault(m, now)
	cs.scheduleStraggler(m, now)
	return cs.dispatch(m, now)
}

// onReplicaRepair restores a degraded member's lowest failed replica. A
// full crash in the meantime replaced the hardware wholesale, so the
// repair may find nothing to do.
func (cs *csim) onReplicaRepair(ev *event, now float64) error {
	m := cs.members[ev.inst]
	if m.state == stateCrashed || m.state == stateDown {
		return nil
	}
	rep := m.inst.RepairReplica()
	if rep < 0 {
		return nil
	}
	active, _, _ := cs.fleetCounts()
	cs.faultEvent(now, "replica-repair", ev.inst, rep, active, 0)
	return cs.dispatch(m, now)
}

// requeue re-disposes a request displaced by a fault. Queued work on a
// crashed member reroutes immediately (its service never started); lost
// work — in-flight prefill, live decode — consumed a service attempt,
// backs off and will pay full re-prefill on its next admission. While
// parked the request has no serving member, so a hedge resolution in the
// gap marks it dropped instead of cancelling it.
func (cs *csim) requeue(r *serve.Request, now float64, lost bool) {
	if lost && r.Attempts >= cs.cfg.Retry.MaxAttempts {
		cs.shedRequest(r, now, shedRetries)
		return
	}
	if !lost && r.Expired(now) {
		cs.shedRequest(r, now, shedExpired)
		return
	}
	at := now
	if lost {
		at += cs.cfg.Retry.backoff(r.Attempts)
		if r.Deadline > 0 && at > r.Deadline {
			cs.shedRequest(r, now, shedExpired)
			return
		}
	}
	r.Member = -1
	cs.pushEvent(&event{at: at, inst: -1, kind: evRetry, req: r, lost: lost})
}

// route admits r to the fleet: router pick first, then — under bounded
// queues — the first member with room in ID order, else the request is
// shed (or, when a fault emptied the fleet, parked for retry once repairs
// land). Retried lost work is accounted here: its prompt KV is gone, so
// the new instance re-prefills from scratch.
func (cs *csim) route(r *serve.Request, now float64, lost bool) error {
	if r.Dropped {
		return nil // a parked copy whose hedge twin already won
	}
	avail := cs.routable(cs.scratch)
	cs.scratch = avail
	if len(avail) == 0 {
		if !cs.cfg.faultsPossible() {
			// MinInstances >= 1 and drain-only-below-SLO make this
			// unreachable; guard against a silently dropped request.
			return fmt.Errorf("cluster: no routable instance at t=%g", now)
		}
		if r.Expired(now) {
			cs.shedRequest(r, now, shedExpired)
			return nil
		}
		// The whole fleet is down; poll again after a backoff (repairs are
		// always scheduled, so this terminates).
		cs.pushEvent(&event{at: now + cs.cfg.Retry.backoff(r.Attempts), inst: -1, kind: evRetry, req: r, lost: lost})
		return nil
	}
	m := cs.rt.pick(avail, r)
	if !m.inst.Admit(r) {
		m = nil
		for _, cand := range avail {
			if cand.inst.Admit(r) {
				m = cand
				break
			}
		}
		if m == nil {
			cs.shedRequest(r, now, shedQueueFull)
			return nil
		}
	}
	r.Attempts++
	r.Member = m.inst.ID
	if lost {
		cs.retries++
		cs.classes[r.Class].retries++
		cs.reprefillTokens += int64(r.Tokens)
		r.Generated = 0
	}
	return cs.dispatch(m, now)
}
