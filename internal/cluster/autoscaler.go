package cluster

import (
	"fmt"

	"github.com/ais-snu/localut/internal/trace"
)

// AutoscalerConfig parameterizes the reactive autoscaler. It evaluates
// every IntervalSeconds of simulated time against the response-start p99
// of the window since the previous tick (TTFT for decode requests, total
// latency for prefill-only requests): above SLOSeconds it launches one
// instance (routable after WarmupSeconds); below ScaleDownFactor *
// SLOSeconds — or on an idle fleet — it drains the highest-ID active
// instance, which stops receiving traffic, finishes its outstanding work
// and retires DrainSeconds after it empties.
type AutoscalerConfig struct {
	Enabled bool

	// MinInstances/MaxInstances bound the active+warming fleet size
	// (defaults 1 and 4*initial).
	MinInstances, MaxInstances int

	// IntervalSeconds is the control period (default 5).
	IntervalSeconds float64
	// SLOSeconds is the response-start p99 target (required).
	SLOSeconds float64
	// ScaleDownFactor scales the SLO into the drain threshold (default
	// 0.5: drain when p99 < half the SLO).
	ScaleDownFactor float64
	// WarmupSeconds delays a launched instance's first routed request
	// (default 2) — model load and LUT materialization time.
	WarmupSeconds float64
	// DrainSeconds delays retirement after a draining instance empties
	// (default 1) — connection teardown time.
	DrainSeconds float64
}

// withDefaults fills the zero fields against the initial fleet size.
func (a AutoscalerConfig) withDefaults(initial int) (AutoscalerConfig, error) {
	if !a.Enabled {
		return a, nil
	}
	if a.MinInstances == 0 {
		a.MinInstances = 1
	}
	if a.MaxInstances == 0 {
		a.MaxInstances = 4 * initial
	}
	if a.IntervalSeconds == 0 {
		a.IntervalSeconds = 5
	}
	if a.ScaleDownFactor == 0 {
		a.ScaleDownFactor = 0.5
	}
	if a.WarmupSeconds == 0 {
		a.WarmupSeconds = 2
	}
	if a.DrainSeconds == 0 {
		a.DrainSeconds = 1
	}
	switch {
	case a.SLOSeconds <= 0:
		return a, fmt.Errorf("cluster: autoscaler needs a positive SLOSeconds target")
	case a.MinInstances < 1:
		return a, fmt.Errorf("cluster: autoscaler MinInstances %d must be at least 1", a.MinInstances)
	case a.MaxInstances < a.MinInstances:
		return a, fmt.Errorf("cluster: autoscaler bounds inverted (min %d, max %d)", a.MinInstances, a.MaxInstances)
	case initial < a.MinInstances || initial > a.MaxInstances:
		return a, fmt.Errorf("cluster: initial fleet %d outside autoscaler bounds [%d, %d]",
			initial, a.MinInstances, a.MaxInstances)
	case a.IntervalSeconds <= 0 || a.WarmupSeconds < 0 || a.DrainSeconds < 0:
		return a, fmt.Errorf("cluster: negative autoscaler timing")
	case a.ScaleDownFactor <= 0 || a.ScaleDownFactor >= 1:
		return a, fmt.Errorf("cluster: ScaleDownFactor %g outside (0, 1)", a.ScaleDownFactor)
	}
	return a, nil
}

// scaleTick runs one autoscaler evaluation at simulated time now. Ticks
// and fleet transitions ("up-start", "up-active", "drain-start", "down")
// land on the unified timeline with Kind KindScale.
func (cs *csim) scaleTick(now float64) {
	as := &cs.cfg.Autoscaler
	n := len(cs.window)
	p99 := 0.0
	if n > 0 {
		p99 = trace.Quantiles(cs.window, 0.99)[0]
	}
	cs.window = cs.window[:0]
	active, warming, draining := cs.fleetCounts()
	cs.timeline = append(cs.timeline, TimelineEvent{
		T: now, Kind: KindScale, Action: "tick", Instance: -1, Replica: -1,
		Active: active, P99: p99, Samples: n,
	})
	switch {
	case n > 0 && p99 > as.SLOSeconds && active+warming < as.MaxInstances:
		cs.launch(now)
	case active > as.MinInstances && warming == 0 && draining == 0 &&
		(n == 0 && cs.outstandingTotal() == 0 || n > 0 && p99 < as.ScaleDownFactor*as.SLOSeconds):
		cs.drainOne(now)
	}
}

// launch creates one warming instance; it becomes routable after the
// warm-up delay.
func (cs *csim) launch(now float64) {
	id := len(cs.members)
	m, err := cs.newMember(id, stateWarming, now)
	if err != nil {
		// Instance construction is validated at Run start; a failure here
		// would be a config mutated mid-run, which cannot happen.
		panic(err)
	}
	cs.members = append(cs.members, m)
	active, _, _ := cs.fleetCounts()
	cs.scaleEvent(now, "up-start", id, active)
	cs.pushEvent(&event{at: now + cs.cfg.Autoscaler.WarmupSeconds, inst: id, kind: evInstanceUp})
}

// drainOne stops routing to the highest-ID active instance; it retires
// once its outstanding work completes.
func (cs *csim) drainOne(now float64) {
	var victim *member
	for _, m := range cs.members {
		if m.state == stateActive {
			victim = m // members are in ID order: the last active wins
		}
	}
	if victim == nil {
		return
	}
	victim.state = stateDraining
	victim.drainAt = now
	// Draining members don't crash (simplification): their pending fault
	// events die with the epoch bump.
	victim.bumpEpoch()
	active, _, _ := cs.fleetCounts()
	cs.scaleEvent(now, "drain-start", victim.inst.ID, active)
	cs.maybeRetire(victim, now)
}

// maybeRetire schedules a draining instance's retirement once it holds no
// outstanding work.
func (cs *csim) maybeRetire(m *member, now float64) {
	if m.state != stateDraining || m.retireScheduled || m.inst.Outstanding() > 0 {
		return
	}
	m.retireScheduled = true
	cs.pushEvent(&event{at: now + cs.cfg.Autoscaler.DrainSeconds, inst: m.inst.ID, kind: evInstanceDown})
}
