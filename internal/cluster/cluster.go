package cluster

import (
	"container/heap"
	"fmt"
	"math/rand"

	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/obs"
	"github.com/ais-snu/localut/internal/serve"
	"github.com/ais-snu/localut/internal/trace"
	"github.com/ais-snu/localut/internal/workload"
)

// ClassConfig is one SLO class: an independent open-loop request
// population with its own arrival rate, length distributions, admission
// budget and latency objectives. Zero length/decode fields inherit the
// Base config's values.
type ClassConfig struct {
	Name       string
	RatePerSec float64

	// AdmitRatePerSec/AdmitBurst parameterize the class's token bucket
	// when the cluster admission policy is TokenBucket (defaults: the
	// class rate, and one second of it, at least 1).
	AdmitRatePerSec float64
	AdmitBurst      float64

	// Prompt-length distribution overrides (0 = Base values).
	MinTokens, MaxTokens int
	MeanTokens           float64

	// Decode-length overrides (0 = Base values). OutTokens is ignored
	// when OutTokensMean is set, as in serve.Config.
	OutTokens     int
	OutTokensMean float64
	OutTokensMax  int

	// SLO targets for per-class reporting (0 = not tracked): p99
	// time-to-first-token, p99 total latency, p99 time-per-output-token.
	TTFTp99SLO    float64
	LatencyP99SLO float64
	TPOTp99SLO    float64

	// DeadlineSeconds is the class's completion deadline, measured from
	// arrival; work that cannot finish in time is shed with accounting and
	// the report separates goodput (deadline-met completions) from raw
	// throughput (0 = inherit Config.DeadlineSeconds).
	DeadlineSeconds float64

	// HedgeDelaySeconds overrides Config.Hedge.DelaySeconds for this class
	// when hedging is enabled (0 = inherit the fleet default).
	HedgeDelaySeconds float64
}

// validate rejects nonsensical class fields early — before inheritance
// against the base template resolves the zero values.
func (c ClassConfig) validate(idx int) error {
	name := c.Name
	if name == "" {
		name = fmt.Sprintf("class%d", idx)
	}
	switch {
	case c.RatePerSec <= 0:
		return fmt.Errorf("cluster: class %q rate %g must be positive", name, c.RatePerSec)
	case c.MinTokens < 0 || c.MaxTokens < 0 || c.MeanTokens < 0:
		return fmt.Errorf("cluster: class %q has a negative length distribution", name)
	case c.MinTokens > 0 && c.MaxTokens > 0 && c.MinTokens > c.MaxTokens:
		return fmt.Errorf("cluster: class %q length bounds inverted (min %d > max %d)",
			name, c.MinTokens, c.MaxTokens)
	case c.OutTokens < 0 || c.OutTokensMean < 0 || c.OutTokensMax < 0:
		return fmt.Errorf("cluster: class %q has negative decode settings", name)
	case c.AdmitRatePerSec < 0 || c.AdmitBurst < 0:
		return fmt.Errorf("cluster: class %q has a negative admission budget", name)
	case c.TTFTp99SLO < 0 || c.LatencyP99SLO < 0 || c.TPOTp99SLO < 0:
		return fmt.Errorf("cluster: class %q has a negative SLO", name)
	case c.DeadlineSeconds < 0:
		return fmt.Errorf("cluster: class %q has a negative deadline", name)
	case c.HedgeDelaySeconds < 0:
		return fmt.Errorf("cluster: class %q has a negative hedge delay", name)
	}
	return nil
}

// Config describes one cluster simulation: a fleet of appliances built
// from a per-instance template, fronted by a router, admission control
// and (optionally) an autoscaler, serving per-class traffic populations.
type Config struct {
	// Base is the per-instance template (model, design, engine, replicas,
	// batching, default length distributions). Its arrival-source fields
	// are ignored: traffic is cluster-level.
	Base serve.Config

	// Instances is the initial fleet size (default 2).
	Instances int
	// Designs optionally makes the fleet heterogeneous: instance i runs
	// design Designs[i % len(Designs)] instead of Base.Variant. The cycle
	// also covers autoscaler-launched instances.
	Designs []kernels.Variant

	Router    RouterPolicy
	Admission AdmissionPolicy

	// Classes lists the traffic populations. Empty Classes with a
	// positive RatePerSec is shorthand for one "default" class.
	Classes    []ClassConfig
	RatePerSec float64

	// DurationSeconds is the arrival window (default 60); admitted
	// requests drain afterwards.
	DurationSeconds float64
	// Seed drives every sampler (default: Base.Seed, then 1).
	Seed int64

	Autoscaler AutoscalerConfig

	// Faults injects deterministic instance failures (crashes and
	// degraded-mode replica losses) with modeled recovery.
	Faults FaultConfig
	// Domains injects correlated outages: every member of a failure
	// domain crashes at once under a shared repair window.
	Domains DomainConfig
	// Stragglers injects gray failures: seeded slowdown windows on
	// members that stay routable.
	Stragglers StragglerConfig
	// Hedge duplicates slow requests onto a second member after a delay;
	// first token wins, the loser is cancelled with a pro-rata refund.
	Hedge HedgeConfig
	// Retry governs re-service of work lost to faults.
	Retry RetryConfig
	// Audit runs the conservation auditor after the drain and turns any
	// violated invariant into a Run error. Tests keep it on; the CLIs
	// expose it behind -audit.
	Audit bool
	// DeadlineSeconds is the default completion deadline for classes that
	// don't set their own (0 = no deadline).
	DeadlineSeconds float64

	// Recorder receives request-lifecycle spans and fleet instants
	// (crash/repair/scale/KV events); Metrics samples fleet gauges on a
	// fixed simulated-time interval. Both are nil by default; a nil hook
	// costs one nil check. The caller owns export after Run.
	Recorder *obs.Recorder
	Metrics  *obs.Metrics
}

// withDefaults fills and validates the cluster-level fields; Base is
// normalized separately via serve.Config.NormalizeInstance.
func (c Config) withDefaults() (Config, error) {
	if c.Instances == 0 {
		c.Instances = 2
	}
	if c.DurationSeconds == 0 {
		c.DurationSeconds = 60
	}
	if c.Seed == 0 {
		c.Seed = c.Base.Seed
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Classes) == 0 {
		if c.RatePerSec <= 0 {
			return c, fmt.Errorf("cluster: no traffic (set RatePerSec or Classes)")
		}
		c.Classes = []ClassConfig{{Name: "default", RatePerSec: c.RatePerSec}}
	}
	if c.Instances < 1 {
		return c, fmt.Errorf("cluster: fleet size %d must be at least 1", c.Instances)
	}
	if c.DurationSeconds <= 0 {
		return c, fmt.Errorf("cluster: duration %g must be positive", c.DurationSeconds)
	}
	if c.DeadlineSeconds < 0 {
		return c, fmt.Errorf("cluster: deadline %g must not be negative", c.DeadlineSeconds)
	}
	for i, cc := range c.Classes {
		if err := cc.validate(i); err != nil {
			return c, err
		}
	}
	var err error
	if c.Autoscaler, err = c.Autoscaler.withDefaults(c.Instances); err != nil {
		return c, err
	}
	if c.Faults, err = c.Faults.withDefaults(); err != nil {
		return c, err
	}
	if c.Domains, err = c.Domains.withDefaults(); err != nil {
		return c, err
	}
	if c.Stragglers, err = c.Stragglers.withDefaults(); err != nil {
		return c, err
	}
	if c.Hedge, err = c.Hedge.withDefaults(); err != nil {
		return c, err
	}
	if c.Retry, err = c.Retry.withDefaults(); err != nil {
		return c, err
	}
	return c, nil
}

// faultsPossible reports whether any injection subsystem can empty the
// fleet, in which case unroutable requests park for retry instead of
// being a config error.
func (c *Config) faultsPossible() bool {
	return c.Faults.Enabled || c.Domains.Enabled
}

// member is one fleet slot: an instance plus its lifecycle state.
type member struct {
	inst  *serve.Instance
	state memberState

	upAt     float64 // creation time
	activeAt float64 // first routable time
	drainAt  float64 // drain-start time (draining/down only)
	downAt   float64 // retirement time (down only)

	retireScheduled bool

	// Fault state. lifeEpoch bumps on every lifecycle transition so
	// scheduled fault events recognize a member that left service first;
	// faultRNG is the member's own seeded failure stream (nil when fault
	// injection is off); crashAt/unavail track outage windows; repairAt is
	// the pending repair time while crashed, so an overlapping domain
	// outage can tell whether it extends the window.
	lifeEpoch int
	faultRNG  *rand.Rand
	crashAt   float64
	repairAt  float64
	unavail   float64

	// Correlated/gray-failure state: the member's failure domain (-1 when
	// domains are off), its seeded straggler stream (nil when straggler
	// injection is off), and whether a slowdown window is open.
	domain           int
	stragRNG         *rand.Rand
	straggling       bool
	stragglerWindows int
}

type memberState int

const (
	stateWarming memberState = iota
	stateActive
	stateDraining
	stateDown
	// stateCrashed: fail-stopped by fault injection, repair pending. Like
	// stateDown the member is unroutable, but it returns to stateActive
	// when the repair event lands.
	stateCrashed
)

// bumpEpoch invalidates the member's scheduled fault events; call on
// every lifecycle transition.
func (m *member) bumpEpoch() { m.lifeEpoch++ }

// Fleet-level event kinds; serve.CompletionPrefill (1) and
// serve.CompletionStep (2) share the namespace.
const (
	evArrival        = 0
	evScaleTick      = 3
	evInstanceUp     = 4
	evInstanceDown   = 5
	evInstanceFault  = 6
	evInstanceRepair = 7
	evReplicaRepair  = 8
	evRetry          = 9
	evDomainOutage   = 10
	evDomainRepair   = 11
	evStragglerStart = 12
	evStragglerEnd   = 13
	evHedge          = 14
)

// event is one heap entry. The heap merges every instance's completions
// with the fleet-level traffic and lifecycle events; ordering is
// (time, instanceID, seq) with instance -1 for fleet-level events, so
// same-timestamp events process fleet-first then in instance-ID order,
// and seq — the global insertion counter — breaks the remaining ties in
// creation order. The order is a pure function of config and seed.
type event struct {
	at   float64
	inst int // -1 for fleet-level events
	seq  int64
	kind int

	class   int // evArrival
	replica int // completions
	batch   []*serve.Request

	// epoch stamps completions (replica fault epoch at launch) and fault,
	// repair and straggler events (member life epoch at scheduling); a
	// mismatch at pop time means the state the event refers to was lost
	// and the event is dropped. degrade marks a fault draw as
	// degraded-mode; req/lost carry an evRetry's displaced request (req
	// also carries an evHedge's candidate); domain tags domain events.
	epoch   int
	degrade bool
	req     *serve.Request
	lost    bool
	domain  int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].inst != h[j].inst {
		return h[i].inst < h[j].inst
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// classState is one class's samplers, admission bucket and aggregation.
type classState struct {
	cfg     ClassConfig
	lengths *workload.LengthSampler
	outLens *workload.LengthSampler // nil = fixed OutTokens
	bucket  *bucket                 // nil under AdmitAll

	deadline   float64 // resolved completion deadline (0 = none)
	hedgeDelay float64 // resolved hedge delay (0 = hedging off)

	offered, admitted, rejected, completed int
	good, late, retries, shed              int

	tLat, ttft, tpot *trace.LogHistogram
}

// csim is the mutable state of one cluster run.
type csim struct {
	cfg     Config
	base    serve.Config // normalized instance template
	members []*member
	oracles map[kernels.Variant]*serve.Oracle
	rt      router

	events eventHeap
	seq    int64

	arrivals *workload.MultiArrival
	classes  []classState
	nextID   int

	// Cluster-wide latency populations, streamed into bounded-memory
	// histograms in event order. The autoscaler window stays a raw vector:
	// it resets every tick, so it is small by construction and its p99
	// must be exact for scaling decisions.
	qLat, sLat, tLat *trace.LogHistogram
	ttft, tpot       *trace.LogHistogram
	window           []float64 // autoscaler samples since the last tick
	makespan         float64

	offered, admitted, rejected, completed int

	// timeline is the unified fleet event stream: scale, fault and KV
	// events in event-loop order.
	timeline []TimelineEvent
	peak     int // peak routable-instance count

	scratch []*member // routable-member scratch, reused per event

	// Reliability accounting (fault injection, deadlines, KV budgets).
	rematFull, rematReplica float64 // LUT re-materialization seconds
	good, late              int     // deadline-met / late completions
	retries                 int
	reprefillTokens         int64
	shed                    int
	shedExpired, shedKV     int
	shedQueueFull           int
	shedRetries             int
	crashes, degradedEvents int
	unavailableSeconds      float64
	recoverTimes            []float64

	// Correlated/gray-failure and hedging accounting.
	domains          []domainState
	domainOutages    int
	domainOverlaps   int // repairs extended by an overlapping outage
	stragglerWindows int
	hedges           int
	hedgeWins        int // hedged pairs the duplicate copy won
	hedgeCancels     int // losers cancelled on their instance
	hedgeDrops       int // copies retired without an instance-side cancel
	hedgeWaste       float64
}

func (cs *csim) pushEvent(e *event) {
	e.seq = cs.seq
	cs.seq++
	heap.Push(&cs.events, e)
}

// designFor cycles the heterogeneous-design list over instance IDs.
func (cs *csim) designFor(id int) kernels.Variant {
	if len(cs.cfg.Designs) == 0 {
		return cs.base.Variant
	}
	return cs.cfg.Designs[id%len(cs.cfg.Designs)]
}

// newMember builds instance id in the given lifecycle state, sharing the
// pricing oracle with every same-design member of the fleet.
func (cs *csim) newMember(id int, st memberState, now float64) (*member, error) {
	icfg := cs.base
	icfg.Variant = cs.designFor(id)
	o := cs.oracles[icfg.Variant]
	inst, err := serve.NewInstance(icfg, id, o)
	if err != nil {
		return nil, err
	}
	if o == nil {
		cs.oracles[icfg.Variant] = inst.Oracle()
	}
	inst.OnFirstToken = cs.onFirstToken
	inst.OnFinish = cs.onFinish
	// The closure pins the member's ID so instance-level sheds carry their
	// origin into the unified timeline and the trace.
	inst.OnShed = func(r *serve.Request, now float64, reason serve.ShedReason) {
		cs.onInstanceShed(id, r, now, reason)
	}
	inst.SetRecorder(cs.cfg.Recorder)
	m := &member{inst: inst, state: st, upAt: now, domain: cs.domainOf(id)}
	if st == stateActive {
		m.activeAt = now
	}
	if cs.cfg.Faults.Enabled {
		m.faultRNG = chaosRand(cs.cfg.Seed, faultStream, id)
	}
	if cs.cfg.Stragglers.Enabled {
		m.stragRNG = chaosRand(cs.cfg.Seed, stragglerStream, id)
	}
	return m, nil
}

// onFirstToken aggregates a decode request's TTFT cluster-wide, per class
// and into the autoscaler window. The first token of either copy of a
// hedged pair settles the race (the loser is cancelled before it can
// produce one), so TTFT is recorded exactly once per logical request.
func (cs *csim) onFirstToken(r *serve.Request, now float64) {
	if r.Twin != nil {
		cs.resolveHedge(r, now)
	}
	t := now - r.Arrive
	cs.ttft.Add(t)
	cs.classes[r.Class].ttft.Add(t)
	cs.window = append(cs.window, t)
}

// onFinish aggregates a completed request's latencies; prefill-only
// requests feed the autoscaler window here (their completion is their
// response start, which also settles a hedge race).
func (cs *csim) onFinish(r *serve.Request, now float64) {
	if r.Twin != nil {
		cs.resolveHedge(r, now)
	}
	cs.completed++
	c := &cs.classes[r.Class]
	c.completed++
	if r.Deadline == 0 || r.Finish <= r.Deadline {
		cs.good++
		c.good++
	} else {
		cs.late++
		c.late++
	}
	lat := r.Finish - r.Arrive
	cs.qLat.Add(r.Start - r.Arrive)
	cs.sLat.Add(r.Finish - r.Start)
	cs.tLat.Add(lat)
	c.tLat.Add(lat)
	if r.OutLen > 1 {
		tp := (r.Finish - r.FirstTok) / float64(r.OutLen-1)
		cs.tpot.Add(tp)
		c.tpot.Add(tp)
	}
	if r.OutLen == 0 {
		cs.window = append(cs.window, lat)
	}
	if rec := cs.cfg.Recorder; rec.Sampled(r.ID) {
		rec.EndAsync(0, "req", r.ID, "request", now)
	}
	if now > cs.makespan {
		cs.makespan = now
	}
}

// fleetCounts tallies the lifecycle states.
func (cs *csim) fleetCounts() (active, warming, draining int) {
	for _, m := range cs.members {
		switch m.state {
		case stateActive:
			active++
		case stateWarming:
			warming++
		case stateDraining:
			draining++
		}
	}
	return active, warming, draining
}

// outstandingTotal sums admitted-but-unfinished requests fleet-wide.
func (cs *csim) outstandingTotal() int {
	total := 0
	for _, m := range cs.members {
		total += m.inst.Outstanding()
	}
	return total
}

// routable lists the active members in ID order. scratch is reused across
// arrivals; at fleet scale this is the per-request hot path.
func (cs *csim) routable(scratch []*member) []*member {
	scratch = scratch[:0]
	for _, m := range cs.members {
		if m.state == stateActive {
			scratch = append(scratch, m)
		}
	}
	return scratch
}

// newRequest samples one request of the given class arriving at t.
func (cs *csim) newRequest(t float64, class int) *serve.Request {
	c := &cs.classes[class]
	tok := c.lengths.Next()
	out := c.cfg.OutTokens
	if c.outLens != nil {
		out = c.outLens.Next()
	}
	r := &serve.Request{
		ID:     cs.nextID,
		Client: -1,
		Class:  class,
		Tokens: tok,
		Padded: roundUp(tok, cs.base.TokenQuantum),
		OutLen: out,
		Member: -1,
		Arrive: t,
	}
	if c.deadline > 0 {
		r.Deadline = t + c.deadline
	}
	cs.nextID++
	return r
}

func roundUp(v, quantum int) int {
	return (v + quantum - 1) / quantum * quantum
}

// dispatch starts idle replicas on member m and schedules the completions.
func (cs *csim) dispatch(m *member, now float64) error {
	comps, err := m.inst.Dispatch(now)
	if err != nil {
		return err
	}
	for i := range comps {
		c := &comps[i]
		cs.pushEvent(&event{at: c.At, inst: m.inst.ID, kind: c.Kind, replica: c.Replica, epoch: c.Epoch, batch: c.Batch})
	}
	return nil
}

// normalizeClass resolves a class's inherited fields against the base
// template and validates the decode settings.
func normalizeClass(c ClassConfig, base *serve.Config, idx int) (ClassConfig, error) {
	if c.Name == "" {
		c.Name = fmt.Sprintf("class%d", idx)
	}
	if c.RatePerSec <= 0 {
		return c, fmt.Errorf("cluster: class %q rate %g must be positive", c.Name, c.RatePerSec)
	}
	if c.MinTokens == 0 {
		c.MinTokens = base.MinTokens
	}
	if c.MaxTokens == 0 {
		c.MaxTokens = base.MaxTokens
	}
	if c.MeanTokens == 0 {
		c.MeanTokens = base.MeanTokens
	}
	if c.MeanTokens < float64(c.MinTokens) {
		c.MeanTokens = float64(c.MinTokens)
	}
	if c.MeanTokens > float64(c.MaxTokens) {
		c.MeanTokens = float64(c.MaxTokens)
	}
	if c.OutTokens == 0 && c.OutTokensMean == 0 {
		c.OutTokens = base.OutTokens
		c.OutTokensMean = base.OutTokensMean
		c.OutTokensMax = base.OutTokensMax
	}
	if c.OutTokensMean > 0 {
		if c.OutTokensMean < 1 {
			return c, fmt.Errorf("cluster: class %q output-length mean %g must be at least 1 token", c.Name, c.OutTokensMean)
		}
		if c.OutTokensMax == 0 {
			c.OutTokensMax = int(4 * c.OutTokensMean)
		}
		if c.OutTokensMean > float64(c.OutTokensMax) {
			c.OutTokensMean = float64(c.OutTokensMax)
		}
	}
	switch {
	case c.OutTokens < 0 || c.OutTokensMean < 0 || c.OutTokensMax < 0:
		return c, fmt.Errorf("cluster: class %q has negative decode settings", c.Name)
	case (c.OutTokens > 0 || c.OutTokensMean > 0) && !base.Model.Decoder:
		return c, fmt.Errorf("cluster: class %q decodes on non-decoder model %s", c.Name, base.Model.Name)
	case c.AdmitRatePerSec < 0 || c.AdmitBurst < 0:
		return c, fmt.Errorf("cluster: class %q has a negative admission budget", c.Name)
	case c.TTFTp99SLO < 0 || c.LatencyP99SLO < 0 || c.TPOTp99SLO < 0:
		return c, fmt.Errorf("cluster: class %q has a negative SLO", c.Name)
	}
	if c.AdmitRatePerSec == 0 {
		c.AdmitRatePerSec = c.RatePerSec
	}
	if c.AdmitBurst == 0 {
		if c.AdmitBurst = c.AdmitRatePerSec; c.AdmitBurst < 1 {
			c.AdmitBurst = 1
		}
	}
	return c, nil
}

// Run executes the cluster simulation to completion: arrivals stop at the
// duration cutoff, every admitted request drains, and — with the
// autoscaler enabled — ticks continue while work remains so the fleet
// drains back toward its minimum.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	base, err := cfg.Base.NormalizeInstance()
	if err != nil {
		return nil, err
	}
	base.Seed = cfg.Seed
	cs := &csim{
		cfg: cfg, base: base, oracles: make(map[kernels.Variant]*serve.Oracle),
		qLat: trace.NewLogHistogram(), sLat: trace.NewLogHistogram(),
		tLat: trace.NewLogHistogram(),
		ttft: trace.NewLogHistogram(), tpot: trace.NewLogHistogram(),
	}
	if cs.rt, err = newRouter(cfg.Router); err != nil {
		return nil, err
	}
	cfg.Recorder.Process(0, "fleet")
	if cfg.Admission != AdmitAll && cfg.Admission != TokenBucket {
		return nil, fmt.Errorf("cluster: unknown admission policy %d", int(cfg.Admission))
	}

	// Classes: samplers are seeded per class so populations are
	// independent streams (adding a class never perturbs the others).
	rates := make([]float64, len(cfg.Classes))
	cs.classes = make([]classState, len(cfg.Classes))
	for i, cc := range cfg.Classes {
		cc, err := normalizeClass(cc, &base, i)
		if err != nil {
			return nil, err
		}
		st := classState{
			cfg: cc, deadline: cc.DeadlineSeconds,
			tLat: trace.NewLogHistogram(),
			ttft: trace.NewLogHistogram(),
			tpot: trace.NewLogHistogram(),
		}
		if st.deadline == 0 {
			st.deadline = cfg.DeadlineSeconds
		}
		if cfg.Hedge.Enabled {
			if st.hedgeDelay = cc.HedgeDelaySeconds; st.hedgeDelay == 0 {
				st.hedgeDelay = cfg.Hedge.DelaySeconds
			}
		}
		seed := cfg.Seed + int64(i)*1009
		if st.lengths, err = workload.NewLengthSampler(cc.MinTokens, cc.MaxTokens, cc.MeanTokens, seed+1); err != nil {
			return nil, fmt.Errorf("cluster: class %q: %w", cc.Name, err)
		}
		if cc.OutTokensMean > 0 {
			if st.outLens, err = workload.NewLengthSampler(1, cc.OutTokensMax, cc.OutTokensMean, seed+3); err != nil {
				return nil, fmt.Errorf("cluster: class %q: %w", cc.Name, err)
			}
		}
		if cfg.Admission == TokenBucket {
			st.bucket = newBucket(cc.AdmitRatePerSec, cc.AdmitBurst)
		}
		cs.classes[i] = st
		rates[i] = cc.RatePerSec
	}
	if cs.arrivals, err = workload.NewMultiArrival(rates, cfg.Seed); err != nil {
		return nil, err
	}

	// LUT re-materialization surcharge on recovery: the whole appliance's
	// LUT budget rewritten at the modeled bandwidth (one replica's share
	// for degraded-mode repairs). This is the capacity-computation
	// tradeoff's availability face: bigger tables recover slower. Domain
	// outages pay it too, at the fault plan's bandwidth (or its default
	// when only domains are enabled).
	if cfg.Faults.Enabled || cfg.Domains.Enabled {
		gbps := cfg.Faults.LUTRematGBps
		if gbps == 0 {
			gbps = 16
		}
		pcfg := &base.Engine.Cfg
		lutBytes := int64(pcfg.Ranks*pcfg.BanksPerRank) * pcfg.MRAMLUTBudget()
		cs.rematFull = float64(lutBytes) / (gbps * 1e9)
		cs.rematReplica = cs.rematFull / float64(base.Replicas)
	}

	// The initial fleet is active at t=0.
	for i := 0; i < cfg.Instances; i++ {
		m, err := cs.newMember(i, stateActive, 0)
		if err != nil {
			return nil, err
		}
		cs.members = append(cs.members, m)
	}
	cs.peak = cfg.Instances
	for _, m := range cs.members {
		cs.scheduleFault(m, 0)
		cs.scheduleStraggler(m, 0)
	}
	cs.initDomains()

	// Seed the merged arrival stream and the autoscaler clock.
	if t, class := cs.arrivals.Next(); t <= cfg.DurationSeconds {
		cs.pushEvent(&event{at: t, inst: -1, kind: evArrival, class: class})
	}
	if cfg.Autoscaler.Enabled {
		cs.pushEvent(&event{at: cfg.Autoscaler.IntervalSeconds, inst: -1, kind: evScaleTick})
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Bind(cs.metricsCols(), cs.sampleMetrics)
	}

	// The shared-clock event loop.
	for cs.events.Len() > 0 {
		ev := heap.Pop(&cs.events).(*event)
		now := ev.at
		// Metrics sample before the event applies: the pre-event state is
		// exactly the fleet's state at every boundary since the last event.
		cfg.Metrics.Advance(now)
		switch ev.kind {
		case evArrival:
			cs.offered++
			c := &cs.classes[ev.class]
			c.offered++
			if c.bucket != nil && !c.bucket.admit(now) {
				cs.rejected++
				c.rejected++
				if rec := cfg.Recorder; rec.Sampled(cs.offered) {
					rec.Instant(0, 0, "reject", now, obs.Str("class", c.cfg.Name))
				}
			} else {
				r := cs.newRequest(now, ev.class)
				cs.admitted++
				c.admitted++
				if rec := cfg.Recorder; rec.Sampled(r.ID) {
					rec.BeginAsync(0, "req", r.ID, "request", now,
						obs.Str("class", c.cfg.Name),
						obs.Num("tokens", float64(r.Tokens)), obs.Num("out", float64(r.OutLen)))
				}
				if err := cs.route(r, now, false); err != nil {
					return nil, err
				}
				if d := c.hedgeDelay; d > 0 {
					cs.pushEvent(&event{at: now + d, inst: -1, kind: evHedge, req: r})
				}
			}
			if t, class := cs.arrivals.Next(); t <= cfg.DurationSeconds {
				cs.pushEvent(&event{at: t, inst: -1, kind: evArrival, class: class})
			}
		case evRetry:
			if err := cs.route(ev.req, now, ev.lost); err != nil {
				return nil, err
			}
		case serve.CompletionPrefill, serve.CompletionStep:
			m := cs.members[ev.inst]
			if ev.epoch != m.inst.ReplicaEpoch(ev.replica) {
				break // the pass was vaporized by a crash or replica loss
			}
			if ev.kind == serve.CompletionPrefill {
				m.inst.PrefillDone(ev.replica, ev.batch, now)
			} else {
				m.inst.StepDone(ev.replica, now)
			}
			if err := cs.dispatch(m, now); err != nil {
				return nil, err
			}
			cs.maybeRetire(m, now)
		case evInstanceFault:
			cs.onFault(ev, now)
		case evInstanceRepair:
			if err := cs.onRepair(ev, now); err != nil {
				return nil, err
			}
		case evReplicaRepair:
			if err := cs.onReplicaRepair(ev, now); err != nil {
				return nil, err
			}
		case evDomainOutage:
			cs.onDomainOutage(ev, now)
		case evDomainRepair:
			cs.onDomainRepair(ev, now)
		case evStragglerStart:
			cs.onStragglerStart(ev, now)
		case evStragglerEnd:
			cs.onStragglerEnd(ev, now)
		case evHedge:
			if err := cs.onHedgeTimer(ev, now); err != nil {
				return nil, err
			}
		case evScaleTick:
			cs.scaleTick(now)
			// Ticks outlive the arrival window while work or excess fleet
			// remains, so the cluster always drains back to its minimum.
			active, warming, draining := cs.fleetCounts()
			if next := now + cfg.Autoscaler.IntervalSeconds; next <= cfg.DurationSeconds ||
				cs.outstandingTotal() > 0 || active+warming+draining > cfg.Autoscaler.MinInstances {
				cs.pushEvent(&event{at: next, inst: -1, kind: evScaleTick})
			}
		case evInstanceUp:
			m := cs.members[ev.inst]
			m.state = stateActive
			m.activeAt = now
			m.bumpEpoch()
			cs.scheduleFault(m, now)
			cs.scheduleStraggler(m, now)
			active, _, _ := cs.fleetCounts()
			if active > cs.peak {
				cs.peak = active
			}
			cs.scaleEvent(now, "up-active", ev.inst, active)
		case evInstanceDown:
			m := cs.members[ev.inst]
			m.state = stateDown
			m.downAt = now
			m.bumpEpoch()
			active, _, _ := cs.fleetCounts()
			cs.scaleEvent(now, "down", ev.inst, active)
		}
	}
	cfg.Metrics.Finish(cs.makespan)
	rep := cs.report()
	if cfg.Audit {
		if err := cs.auditRun(); err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// scaleEvent appends an autoscaler lifecycle entry to the unified
// timeline and mirrors it into the trace as a fleet-track instant.
func (cs *csim) scaleEvent(now float64, action string, inst, active int) {
	cs.timeline = append(cs.timeline, TimelineEvent{
		T: now, Kind: KindScale, Action: action, Instance: inst, Replica: -1, Active: active,
	})
	cs.cfg.Recorder.Instant(0, 0, action, now,
		obs.Num("instance", float64(inst)), obs.Num("active", float64(active)))
}

// metricsCols names the fleet metrics columns: fleet size and summed
// queue/batch/KV gauges, then per-class cumulative admit/shed/good
// counters (rates are first differences over the sampling interval).
func (cs *csim) metricsCols() []string {
	cols := []string{"fleet_active", "fleet_total", "queue_depth", "live", "busy_replicas", "kv_bytes"}
	for i := range cs.classes {
		name := cs.classes[i].cfg.Name
		cols = append(cols, "admitted_"+name, "shed_"+name, "good_"+name)
	}
	return cols
}

// sampleMetrics reads the gauges metricsCols names from current state.
func (cs *csim) sampleMetrics(now float64) []float64 {
	active, warming, draining := cs.fleetCounts()
	queue, live, busy := 0, 0, 0
	var kv int64
	for _, m := range cs.members {
		if m.state == stateDown || m.state == stateCrashed {
			continue
		}
		queue += m.inst.QueueLen()
		live += m.inst.LiveCount()
		busy += m.inst.BusyReplicas()
		kv += m.inst.KVPinnedBytes()
	}
	vals := []float64{
		float64(active), float64(active + warming + draining),
		float64(queue), float64(live), float64(busy), float64(kv),
	}
	for i := range cs.classes {
		c := &cs.classes[i]
		vals = append(vals, float64(c.admitted), float64(c.shed), float64(c.good))
	}
	return vals
}
