package cluster

import (
	"encoding/json"
	"testing"

	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/serve"
)

// testConfig is a small, fast cluster run: two LoCaLUT appliances behind a
// round-robin router with open admission.
func testConfig() Config {
	return Config{
		Base: serve.Config{
			Model:   dnn.BERTBase(),
			Fmt:     quant.W1A3,
			Variant: kernels.LoCaLUT,
		},
		Instances:       2,
		RatePerSec:      100,
		DurationSeconds: 5,
		Seed:            1,
		Audit:           true,
	}
}

func TestClusterBasics(t *testing.T) {
	rep, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Offered == 0 {
		t.Fatal("no requests arrived")
	}
	if rep.Rejected != 0 {
		t.Errorf("admit-all rejected %d requests", rep.Rejected)
	}
	if rep.Completed != rep.Admitted {
		t.Errorf("completed %d of %d admitted requests (the fleet must drain)", rep.Completed, rep.Admitted)
	}
	if len(rep.Instances) != 2 {
		t.Fatalf("got %d instance reports, want 2", len(rep.Instances))
	}
	for _, ir := range rep.Instances {
		if ir.Requests == 0 {
			t.Errorf("instance %d received no traffic under round-robin", ir.ID)
		}
		if ir.Completed != ir.Requests {
			t.Errorf("instance %d completed %d of %d", ir.ID, ir.Completed, ir.Requests)
		}
		if ir.Utilization <= 0 || ir.Utilization > 1 {
			t.Errorf("instance %d utilization %g outside (0, 1]", ir.ID, ir.Utilization)
		}
		if ir.Design != "LoCaLUT" {
			t.Errorf("instance %d design %q", ir.ID, ir.Design)
		}
	}
	if len(rep.Classes) != 1 || rep.Classes[0].Name != "default" {
		t.Fatalf("class reports %+v", rep.Classes)
	}
	if got := rep.Classes[0].Completed; got != rep.Completed {
		t.Errorf("class completed %d, cluster %d", got, rep.Completed)
	}
	if rep.Latency.P99 < rep.Latency.P50 || rep.Latency.Max < rep.Latency.P99 {
		t.Errorf("suspicious latency stats %+v", rep.Latency)
	}
	if rep.EnergyJ <= 0 || rep.EnergyPerRequestJ <= 0 {
		t.Errorf("energy not priced: %g total, %g per request", rep.EnergyJ, rep.EnergyPerRequestJ)
	}
	if rep.DistinctForwardSims == 0 {
		t.Error("oracle priced nothing")
	}
	if rep.InstancesPeak != 2 || rep.InstancesFinal != 2 {
		t.Errorf("static fleet reported peak=%d final=%d", rep.InstancesPeak, rep.InstancesFinal)
	}
}

// TestClusterSharedOracle pins the fleet-scale memoization: identical
// appliances share one pricing oracle, so the distinct-simulation count
// does not grow with the fleet size.
func TestClusterSharedOracle(t *testing.T) {
	small := testConfig()
	big := testConfig()
	big.Instances = 8
	repS, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	repB, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	// Same traffic spread over more instances can only shrink the set of
	// distinct batch shapes, never multiply it by the fleet size.
	if repB.DistinctForwardSims > 2*repS.DistinctForwardSims {
		t.Errorf("distinct sims grew with fleet size: %d @2 vs %d @8",
			repS.DistinctForwardSims, repB.DistinctForwardSims)
	}
}

// clusterJSON runs a config and returns the marshaled report.
func clusterJSON(t *testing.T, cfg Config) []byte {
	t.Helper()
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// scaledConfig is the autoscaler scenario: a deliberately under-provisioned
// single instance facing decode traffic, with headroom to grow.
func scaledConfig() Config {
	cfg := testConfig()
	cfg.Base.Model = dnn.OPT125M()
	cfg.Base.OutTokens = 4
	cfg.Instances = 1
	// One instance sustains ~29 req/s on this workload: 50/s overloads it
	// until the autoscaler grows the fleet, after which per-instance load
	// sits comfortably inside the SLO.
	cfg.RatePerSec = 50
	cfg.DurationSeconds = 15
	cfg.Autoscaler = AutoscalerConfig{
		Enabled:         true,
		MaxInstances:    4,
		IntervalSeconds: 1,
		SLOSeconds:      1.0,
		// Conservative drain threshold: hold the scaled fleet while
		// arrivals continue instead of oscillating back down.
		ScaleDownFactor: 0.1,
		WarmupSeconds:   0.5,
		DrainSeconds:    0.5,
	}
	return cfg
}

// TestClusterDeterministic pins the headline invariant: same seed + config
// => byte-identical ClusterReport JSON, run to run and at every engine
// parallelism level — including mid-run scale-up/scale-down, heterogeneous
// designs and token-bucket admission.
func TestClusterDeterministic(t *testing.T) {
	scenarios := map[string]func() Config{
		"static": testConfig,
		"scaled": scaledConfig,
		"mixed": func() Config {
			cfg := testConfig()
			cfg.Designs = []kernels.Variant{kernels.LoCaLUT, kernels.OPLC}
			cfg.Router = LeastOutstanding
			cfg.Admission = TokenBucket
			cfg.Classes = []ClassConfig{
				{Name: "interactive", RatePerSec: 60, AdmitRatePerSec: 40},
				{Name: "batch", RatePerSec: 30},
			}
			return cfg
		},
	}
	for name, mk := range scenarios {
		t.Run(name, func(t *testing.T) {
			base := clusterJSON(t, mk())
			if again := clusterJSON(t, mk()); string(again) != string(base) {
				t.Fatal("same seed diverged run to run")
			}
			for _, par := range []int{1, 4, 8} {
				cfg := mk()
				cfg.Base.Engine = gemm.NewEngine()
				cfg.Base.Engine.Exec.Parallelism = par
				if got := clusterJSON(t, cfg); string(got) != string(base) {
					t.Fatalf("parallelism %d changed the report", par)
				}
			}
		})
	}
}

// TestClusterAutoscaler pins the acceptance scenario: the fleet grows under
// load, then drains back to its minimum once arrivals stop, and the late
// ticks observe a p99 back under the SLO.
func TestClusterAutoscaler(t *testing.T) {
	rep, err := Run(scaledConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.InstancesPeak <= 1 {
		t.Fatalf("autoscaler never scaled up (peak %d)", rep.InstancesPeak)
	}
	if rep.InstancesFinal != 1 {
		t.Errorf("fleet did not drain back to minimum: %d active at end", rep.InstancesFinal)
	}
	if rep.Completed != rep.Admitted {
		t.Errorf("completed %d of %d admitted (draining instances must finish their work)",
			rep.Completed, rep.Admitted)
	}
	var ups, downs, lastTickP99 float64
	var sawTick bool
	for _, ev := range rep.Timeline {
		if ev.Kind != KindScale {
			continue
		}
		switch ev.Action {
		case "up-active":
			ups++
		case "down":
			downs++
		case "tick":
			sawTick = true
			if ev.Samples > 0 {
				lastTickP99 = ev.P99
			}
		}
	}
	if !sawTick || ups == 0 || downs == 0 {
		t.Fatalf("timeline missing phases (ticks=%v ups=%g downs=%g): %+v", sawTick, ups, downs, rep.Timeline)
	}
	if ups != downs {
		t.Errorf("%g scale-ups but %g retirements (every extra instance must drain)", ups, downs)
	}
	slo := scaledConfig().Autoscaler.SLOSeconds
	if lastTickP99 > slo {
		t.Errorf("final observed p99 %gs still above the %gs SLO after scaling", lastTickP99, slo)
	}
	// Retired instances must have a consistent lifecycle.
	for _, ir := range rep.Instances {
		if ir.DownAt > 0 && !(ir.UpAt <= ir.ActiveAt && ir.ActiveAt <= ir.DrainAt && ir.DrainAt < ir.DownAt) {
			t.Errorf("instance %d lifecycle out of order: %+v", ir.ID, ir)
		}
	}
}

// TestClusterTokenBucket pins per-class admission: a class offered far
// above its sustained budget sees rejections close to the excess, while a
// within-budget class sees none.
func TestClusterTokenBucket(t *testing.T) {
	cfg := testConfig()
	cfg.Admission = TokenBucket
	cfg.DurationSeconds = 10
	cfg.Classes = []ClassConfig{
		{Name: "hot", RatePerSec: 100, AdmitRatePerSec: 40, AdmitBurst: 1},
		{Name: "cool", RatePerSec: 20},
	}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	hot, cool := rep.Classes[0], rep.Classes[1]
	if cool.Rejected != 0 {
		t.Errorf("within-budget class rejected %d requests", cool.Rejected)
	}
	if hot.Rejected == 0 {
		t.Fatal("over-budget class saw no rejections")
	}
	// ~100/s offered against a 40/s budget: roughly 60% rejected.
	frac := float64(hot.Rejected) / float64(hot.Offered)
	if frac < 0.4 || frac > 0.75 {
		t.Errorf("hot-class rejection fraction %g implausible for 100/s offered vs 40/s budget", frac)
	}
	if rep.Rejected != hot.Rejected+cool.Rejected {
		t.Errorf("cluster rejected %d != class sum %d", rep.Rejected, hot.Rejected+cool.Rejected)
	}
	if rep.Completed != rep.Admitted {
		t.Errorf("completed %d of %d admitted", rep.Completed, rep.Admitted)
	}
}

// TestClusterRouters exercises each routing policy's characteristic
// behavior on the same traffic.
func TestClusterRouters(t *testing.T) {
	t.Run("round-robin-balance", func(t *testing.T) {
		cfg := testConfig()
		cfg.Instances = 4
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		want := rep.Admitted / 4
		for _, ir := range rep.Instances {
			if ir.Requests < want-1 || ir.Requests > want+1 {
				t.Errorf("instance %d got %d requests, want ~%d", ir.ID, ir.Requests, want)
			}
		}
	})
	t.Run("shape-affinity-partitions", func(t *testing.T) {
		// All requests share one padded shape, so shape-affinity routing
		// must send every request to a single instance.
		cfg := testConfig()
		cfg.Router = ShapeAffinity
		cfg.Instances = 3
		cfg.RatePerSec = 30
		cfg.Classes = []ClassConfig{{Name: "uniform", RatePerSec: 30,
			MinTokens: 60, MaxTokens: 64, MeanTokens: 62}}
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		nonEmpty := 0
		for _, ir := range rep.Instances {
			if ir.Requests > 0 {
				nonEmpty++
			}
		}
		if nonEmpty != 1 {
			t.Errorf("uniform-shape traffic spread over %d instances, want 1", nonEmpty)
		}
	})
	t.Run("least-outstanding-runs", func(t *testing.T) {
		cfg := testConfig()
		cfg.Router = LeastOutstanding
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Completed != rep.Admitted {
			t.Errorf("completed %d of %d", rep.Completed, rep.Admitted)
		}
	})
	t.Run("weighted-kv-runs", func(t *testing.T) {
		cfg := testConfig()
		cfg.Base.Model = dnn.OPT125M()
		cfg.Base.OutTokens = 4
		cfg.Router = WeightedFreeKV
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Completed != rep.Admitted {
			t.Errorf("completed %d of %d", rep.Completed, rep.Admitted)
		}
		if rep.KVPeakBytes == 0 {
			t.Error("decode traffic left no KV footprint")
		}
	})
}

// TestClusterHeterogeneous pins the design cycling: with two designs over
// three instances, IDs 0 and 2 share a design and an oracle while ID 1
// differs.
func TestClusterHeterogeneous(t *testing.T) {
	cfg := testConfig()
	cfg.Instances = 3
	cfg.Designs = []kernels.Variant{kernels.LoCaLUT, kernels.Naive}
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"LoCaLUT", "NaivePIM", "LoCaLUT"}
	for i, ir := range rep.Instances {
		if ir.Design != want[i] {
			t.Errorf("instance %d design %q, want %q", i, ir.Design, want[i])
		}
	}
	if rep.Completed != rep.Admitted {
		t.Errorf("completed %d of %d", rep.Completed, rep.Admitted)
	}
}

// TestClusterValidation covers the config error paths.
func TestClusterValidation(t *testing.T) {
	cases := map[string]func(*Config){
		"no traffic":     func(c *Config) { c.RatePerSec = 0 },
		"negative rate":  func(c *Config) { c.Classes = []ClassConfig{{RatePerSec: -1}} },
		"negative fleet": func(c *Config) { c.Instances = -2 },
		"bad duration":   func(c *Config) { c.DurationSeconds = -1 },
		"scaler no slo":  func(c *Config) { c.Autoscaler = AutoscalerConfig{Enabled: true} },
		"scaler bounds":  func(c *Config) { c.Autoscaler = AutoscalerConfig{Enabled: true, SLOSeconds: 1, MinInstances: 3} },
		"decode non-dec": func(c *Config) { c.Classes = []ClassConfig{{RatePerSec: 1, OutTokens: 4}} },
		"negative slo":   func(c *Config) { c.Classes = []ClassConfig{{RatePerSec: 1, TTFTp99SLO: -1}} },
		"negative admit": func(c *Config) { c.Classes = []ClassConfig{{RatePerSec: 1, AdmitRatePerSec: -2}} },
		"bad out mean": func(c *Config) {
			c.Base.Model = dnn.OPT125M()
			c.Classes = []ClassConfig{{RatePerSec: 1, OutTokensMean: 0.5}}
		},
		"unknown router":   func(c *Config) { c.Router = RouterPolicy(99) },
		"unknown admitter": func(c *Config) { c.Admission = AdmissionPolicy(99) },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Errorf("%s: no error", name)
			}
		})
	}
}

// TestParseNames covers the policy name round-trips and error paths.
func TestParseNames(t *testing.T) {
	for i := 0; i < len(routerNames); i++ {
		p, err := ParseRouterPolicy(routerNames[i])
		if err != nil || p != RouterPolicy(i) {
			t.Errorf("router %q: %v, %v", routerNames[i], p, err)
		}
	}
	for i := 0; i < len(admissionNames); i++ {
		p, err := ParseAdmissionPolicy(admissionNames[i])
		if err != nil || p != AdmissionPolicy(i) {
			t.Errorf("admission %q: %v, %v", admissionNames[i], p, err)
		}
	}
	if _, err := ParseRouterPolicy("nope"); err == nil {
		t.Error("unknown router name accepted")
	}
	if _, err := ParseAdmissionPolicy(""); err == nil {
		t.Error("empty admission name accepted")
	}
	if got := RouterPolicy(42).String(); got != "RouterPolicy(42)" {
		t.Errorf("out-of-range router String() = %q", got)
	}
	if got := AdmissionPolicy(42).String(); got != "AdmissionPolicy(42)" {
		t.Errorf("out-of-range admission String() = %q", got)
	}
}

// TestBucket pins token-bucket refill behavior directly.
func TestBucket(t *testing.T) {
	b := newBucket(2, 3) // 2 tokens/s, depth 3, starts full
	for i := 0; i < 3; i++ {
		if !b.admit(0) {
			t.Fatalf("burst admission %d failed", i)
		}
	}
	if b.admit(0) {
		t.Fatal("admitted past the burst depth")
	}
	if b.admit(0.4) {
		t.Fatal("admitted before a full token refilled")
	}
	if !b.admit(1.0) {
		// 0.6s more elapsed: 1.2 tokens in (capped at what accumulated),
		// enough for one admission.
		t.Fatal("refill did not restore admission")
	}
}
