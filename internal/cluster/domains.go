package cluster

import (
	"fmt"
	"math/rand"

	"github.com/ais-snu/localut/internal/obs"
)

// DomainConfig is the correlated-failure plan: instances are grouped into
// Count failure domains (racks, power feeds) by ID modulo Count, and each
// domain draws exponential outage times (mean MTBFSeconds) from its own
// seeded stream. An outage fail-stops every active member of the domain
// at the same instant — the event heap's (time, instanceID, seq) order
// makes the cascade deterministic — and all of them share one domain-wide
// repair window (exponential mean MTTRSeconds plus the full LUT
// re-materialization surcharge). A member already down from an earlier
// fault has its repair extended to the outage's window, never shortened,
// so overlapping outages merge into one crash-to-repair span and
// UnavailableSeconds is counted exactly once. Outages land inside the
// arrival window only, like independent faults.
type DomainConfig struct {
	Enabled bool

	// Count is the number of failure domains; instance i belongs to
	// domain i % Count (default 2).
	Count int
	// MTBFSeconds is the per-domain mean time between outages (required).
	MTBFSeconds float64
	// MTTRSeconds is the mean domain repair delay before LUT
	// re-materialization starts (default 10).
	MTTRSeconds float64
}

// withDefaults fills and validates the domain plan.
func (d DomainConfig) withDefaults() (DomainConfig, error) {
	if !d.Enabled {
		return d, nil
	}
	if d.Count == 0 {
		d.Count = 2
	}
	if d.MTTRSeconds == 0 {
		d.MTTRSeconds = 10
	}
	switch {
	case d.Count < 1:
		return d, fmt.Errorf("cluster: domain Count %d must be at least 1", d.Count)
	case d.MTBFSeconds <= 0:
		return d, fmt.Errorf("cluster: failure domains need a positive MTBFSeconds")
	case d.MTTRSeconds <= 0:
		return d, fmt.Errorf("cluster: domain MTTRSeconds %g must be positive", d.MTTRSeconds)
	}
	return d, nil
}

// domainState is one failure domain's outage stream and counters. The
// per-domain outage streams live in the chaosStreams registry
// (streams.go), decoupled from the per-member fault and straggler
// streams so enabling one subsystem never perturbs another.
type domainState struct {
	rng     *rand.Rand
	outages int
}

// initDomains builds the per-domain streams and seeds the first outage of
// each domain.
func (cs *csim) initDomains() {
	if !cs.cfg.Domains.Enabled {
		return
	}
	cs.domains = make([]domainState, cs.cfg.Domains.Count)
	for d := range cs.domains {
		cs.domains[d].rng = chaosRand(cs.cfg.Seed, domainStream, d)
		cs.scheduleDomainOutage(d, 0)
	}
}

// domainOf maps an instance ID to its failure domain (-1 when domains are
// off).
func (cs *csim) domainOf(id int) int {
	if !cs.cfg.Domains.Enabled {
		return -1
	}
	return id % cs.cfg.Domains.Count
}

// scheduleDomainOutage draws domain d's next outage; draws beyond the
// arrival window are discarded.
func (cs *csim) scheduleDomainOutage(d int, now float64) {
	at := now + cs.domains[d].rng.ExpFloat64()*cs.cfg.Domains.MTBFSeconds
	if at > cs.cfg.DurationSeconds {
		return
	}
	cs.pushEvent(&event{at: at, inst: -1, kind: evDomainOutage, domain: d})
}

// onDomainOutage fail-stops every active member of the domain under one
// shared repair window. Members already crashed (an independent fault, or
// a previous outage still repairing) have their repair extended to the new
// window when it ends later — the overlap merges into a single
// crash-to-repair span so outage time is never double-counted.
func (cs *csim) onDomainOutage(ev *event, now float64) {
	d := ev.domain
	ds := &cs.domains[d]
	ds.outages++
	cs.domainOutages++
	repairAt := now + ds.rng.ExpFloat64()*cs.cfg.Domains.MTTRSeconds + cs.rematFull
	active, _, _ := cs.fleetCounts()
	cs.timeline = append(cs.timeline, TimelineEvent{
		T: now, Kind: KindDomain, Action: "outage", Instance: -1, Replica: -1,
		Active: active, Domain: d,
	})
	cs.cfg.Recorder.Instant(0, 0, "domain-outage", now,
		obs.Num("domain", float64(d)), obs.Num("active", float64(active)))
	for _, m := range cs.members {
		if m.domain != d {
			continue
		}
		switch m.state {
		case stateActive:
			cs.crashMember(m, now, repairAt)
		case stateCrashed:
			if repairAt > m.repairAt {
				// The outage swallows an in-flight repair (possibly mid
				// LUT re-materialization): invalidate the earlier repair
				// event and extend the same outage window.
				m.lifeEpoch++
				m.repairAt = repairAt
				cs.domainOverlaps++
				cs.pushEvent(&event{at: repairAt, inst: m.inst.ID,
					kind: evInstanceRepair, epoch: m.lifeEpoch})
			}
		}
	}
	cs.pushEvent(&event{at: repairAt, inst: -1, kind: evDomainRepair, domain: d})
	cs.scheduleDomainOutage(d, now)
}

// onDomainRepair marks the end of a domain-wide repair window on the
// timeline. Members return to service through their own epoch-stamped
// repair events; if a later outage extended the window, this marker is
// stale and is skipped.
func (cs *csim) onDomainRepair(ev *event, now float64) {
	for _, m := range cs.members {
		if m.domain == ev.domain && m.state == stateCrashed && m.repairAt > now {
			return // extended by a later outage; its own marker follows
		}
	}
	active, _, _ := cs.fleetCounts()
	cs.timeline = append(cs.timeline, TimelineEvent{
		T: now, Kind: KindDomain, Action: "repair", Instance: -1, Replica: -1,
		Active: active, Domain: ev.domain,
	})
	cs.cfg.Recorder.Instant(0, 0, "domain-repair", now,
		obs.Num("domain", float64(ev.domain)), obs.Num("active", float64(active)))
}
