package cluster

import (
	"fmt"

	"github.com/ais-snu/localut/internal/obs"
	"github.com/ais-snu/localut/internal/serve"
)

// HedgeConfig is the tail-tolerance plan: a request still short of its
// first token DelaySeconds after arrival is duplicated onto a second
// member (fewest outstanding requests, excluding the one already serving
// it). The first copy to produce a token wins; the loser is cancelled
// with the unelapsed share of its pass refunded, and the share already
// spent on it is reported as hedge waste. Classes can override the delay
// via ClassConfig.HedgeDelaySeconds. Hedging a request at most once
// bounds the duplicate load at 2x.
type HedgeConfig struct {
	Enabled bool

	// DelaySeconds is the default wait before a request without a first
	// token is duplicated (required; classes may override).
	DelaySeconds float64
}

// withDefaults fills and validates the hedging plan.
func (h HedgeConfig) withDefaults() (HedgeConfig, error) {
	if !h.Enabled {
		return h, nil
	}
	if h.DelaySeconds <= 0 {
		return h, fmt.Errorf("cluster: hedging needs a positive DelaySeconds")
	}
	return h, nil
}

// onHedgeTimer fires DelaySeconds after a request's arrival: if the
// request is still waiting for its first token, a duplicate is issued to
// a second member. Requests already served, shed, displaced into a
// parked retry, or hedged (a twin exists) are left alone.
func (cs *csim) onHedgeTimer(ev *event, now float64) error {
	r := ev.req
	if r.Finish > 0 || r.FirstTok > 0 || r.Dropped || r.Twin != nil || r.Member < 0 {
		return nil
	}
	avail := cs.routable(cs.scratch)
	cs.scratch = avail
	// Fewest-outstanding pick among the other members, ties to the lowest
	// ID. The primary router is not consulted: a stateful router
	// (round-robin) must not see hedge traffic, or enabling hedging would
	// perturb primary routing.
	var best *member
	for _, m := range avail {
		if m.inst.ID == r.Member {
			continue
		}
		if best == nil || m.inst.Outstanding() < best.inst.Outstanding() ||
			(m.inst.Outstanding() == best.inst.Outstanding() && m.inst.ID < best.inst.ID) {
			best = m
		}
	}
	if best == nil {
		return nil // no second member to hedge onto
	}
	h := &serve.Request{
		ID:     r.ID,
		Client: -1,
		Class:  r.Class,
		Tokens: r.Tokens, Padded: r.Padded,
		OutLen:   r.OutLen,
		Deadline: r.Deadline,
		Arrive:   r.Arrive,
		Hedge:    true,
		Member:   best.inst.ID,
		Twin:     r,
	}
	if !best.inst.Admit(h) {
		return nil // bounded queue full; the original keeps waiting
	}
	h.Attempts++
	r.Twin = h
	cs.hedges++
	active, _, _ := cs.fleetCounts()
	cs.timeline = append(cs.timeline, TimelineEvent{
		T: now, Kind: KindHedge, Action: "issue", Instance: best.inst.ID, Replica: -1,
		Active: active,
	})
	if rec := cs.cfg.Recorder; rec.Sampled(r.ID) {
		rec.Instant(0, 0, "hedge", now,
			obs.Num("id", float64(r.ID)), obs.Num("to", float64(best.inst.ID)))
	}
	return cs.dispatch(best, now)
}

// resolveHedge settles a hedged pair at the winner's first token (for
// prefill-only requests, completion). The loser is provably still short
// of its own first token, so it is either queued or inside an in-flight
// prefill pass: cancel it where it stands, refund the unelapsed share of
// its pass, and book the spent share as hedge waste. A loser parked in a
// retry event (its member crashed) has no instance to cancel it on; it
// is marked dropped and the retry discards it.
func (cs *csim) resolveHedge(w *serve.Request, now float64) {
	l := w.Twin
	w.Twin = nil
	l.Twin = nil
	l.Dropped = true
	if w.Hedge {
		cs.hedgeWins++
		active, _, _ := cs.fleetCounts()
		cs.timeline = append(cs.timeline, TimelineEvent{
			T: now, Kind: KindHedge, Action: "win", Instance: w.Member, Replica: -1,
			Active: active,
		})
	}
	if l.Member >= 0 {
		if found, waste := cs.members[l.Member].inst.Cancel(l, now); found {
			cs.hedgeCancels++
			cs.hedgeWaste += waste
			return
		}
	}
	cs.hedgeDrops++
}

// dropHedgeCopy retires one copy of a hedged pair without shedding the
// logical request: the twin is still in flight and remains accountable
// for completion. Called when a fault displaces a copy past its retry
// budget or a bounded queue rejects its re-route.
func (cs *csim) dropHedgeCopy(r *serve.Request, now float64) {
	r.Twin.Twin = nil
	r.Twin = nil
	r.Dropped = true
	cs.hedgeDrops++
}
