package cluster

import (
	"fmt"
	"strings"

	"github.com/ais-snu/localut/internal/audit"
)

// auditRun rebuilds the run's conservation ledger from first-hand
// evidence — per-instance stats and the timeline's repair entries — and
// cross-checks it against the fleet counters. A violation means the
// simulator leaked a request, double-counted an outage, or refunded more
// than it charged: a bug, not a scenario outcome, so Run turns it into
// an error.
func (cs *csim) auditRun() error {
	f := &audit.Fleet{
		Offered:   cs.offered,
		Admitted:  cs.admitted,
		Rejected:  cs.rejected,
		Completed: cs.completed,
		Good:      cs.good,
		Late:      cs.late,

		Shed:          cs.shed,
		ShedExpired:   cs.shedExpired,
		ShedKV:        cs.shedKV,
		ShedQueueFull: cs.shedQueueFull,
		ShedRetries:   cs.shedRetries,

		HedgesIssued:       cs.hedges,
		HedgeWins:          cs.hedgeWins,
		HedgeCancels:       cs.hedgeCancels,
		HedgeDrops:         cs.hedgeDrops,
		HedgeWastedSeconds: cs.hedgeWaste,

		UnavailableSeconds: cs.unavailableSeconds,
	}
	// The run's true end: completions bound the makespan, but repairs and
	// straggler windows can land later during the drain, and capacity
	// accounting must cover them.
	simEnd := cs.makespan
	for _, t := range cs.timeline {
		if t.T > simEnd {
			simEnd = t.T
		}
		if t.Kind == KindFault && t.Action == "repair" {
			f.RepairWindowSeconds += t.RecoverSeconds
		}
	}
	for _, m := range cs.members {
		st := m.inst.Stats()
		end := m.downAt
		if m.state != stateDown {
			end = simEnd
		}
		var busy float64
		for _, b := range st.BusySeconds {
			busy += b
		}
		f.Instances = append(f.Instances, audit.Instance{
			ID:                 m.inst.ID,
			Replicas:           m.inst.Cfg.Replicas,
			ActiveAt:           m.activeAt,
			End:                end,
			UnavailableSeconds: m.unavail,
			BusySeconds:        busy,
			PIMBusySeconds:     st.PIMBusySeconds,
			EnergyJ:            st.EnergyJ,
			KVPinnedEndBytes:   m.inst.KVPinnedBytes(),
			Admitted:           st.Admitted,
			Finished:           st.Finished,
			Shed:               st.Shed,
			Canceled:           st.Canceled,
			Displaced:          st.Displaced,
			Outstanding:        m.inst.Outstanding(),
		})
	}
	vs := audit.CheckFleet(f)
	if len(vs) == 0 {
		return nil
	}
	var b strings.Builder
	fmt.Fprintf(&b, "cluster: conservation audit found %d violation(s)", len(vs))
	for _, v := range vs {
		b.WriteString("\n  ")
		b.WriteString(v.String())
	}
	return fmt.Errorf("%s", b.String())
}
