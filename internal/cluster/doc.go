// Package cluster lifts the request-level serving simulator from one
// appliance to a routed fleet: N serve.Instance appliances (possibly
// heterogeneous designs) behind a pluggable request router, per-class
// admission control and a reactive autoscaler, all driven by one shared
// discrete-event clock.
//
// The event loop merges per-instance completions and fleet-level events
// (arrivals, autoscaler ticks, instance lifecycle) on a single heap
// ordered by (time, instanceID, seq): fleet-level events carry instance
// -1 so they sort ahead of same-timestamp instance events, and seq is the
// global insertion counter that breaks the remaining ties. The order is a
// pure function of the configuration and seed, so a ClusterReport is
// byte-identical across runs and across engine parallelism levels — the
// same determinism bar the single-appliance simulator holds, now
// including mid-run scale-up and scale-down.
//
// Traffic is one open-loop Poisson population per SLO class
// (workload.MultiArrival), each with its own rates, length distributions
// and latency objectives. Admission control (token bucket per class) runs
// before routing; the router picks among active, non-draining instances;
// the autoscaler watches a windowed response-start p99 (TTFT for decode
// requests, total latency for prefill-only) against its SLO and adds
// instances (with a warm-up delay) or drains them (stop routing, finish
// outstanding work, retire after a drain delay).
package cluster
