package cluster

import (
	"encoding/json"
	"testing"

	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/serve"
)

// chaosConfig is the kitchen-sink robustness scenario: independent
// faults, correlated domain outages, gray-failure stragglers and request
// hedging all enabled at once, with the conservation auditor armed. Decode
// traffic makes TTFT meaningful for hedge resolution.
func chaosConfig(seed int64) Config {
	return Config{
		Base: serve.Config{
			Model:     dnn.OPT125M(),
			Fmt:       quant.W1A3,
			Variant:   kernels.LoCaLUT,
			Replicas:  2,
			OutTokens: 4,
		},
		Instances:       8,
		RatePerSec:      30,
		DurationSeconds: 30,
		Seed:            seed,
		Audit:           true,
		DeadlineSeconds: 8,
		Faults: FaultConfig{
			Enabled:     true,
			MTTFSeconds: 120,
			MTTRSeconds: 2,
		},
		Domains: DomainConfig{
			Enabled:     true,
			Count:       4,
			MTBFSeconds: 60,
			MTTRSeconds: 2,
		},
		Stragglers: StragglerConfig{
			Enabled:             true,
			MTBFSeconds:         60,
			MeanDurationSeconds: 5,
			Slowdown:            4,
		},
		Hedge: HedgeConfig{
			Enabled:      true,
			DelaySeconds: 0.5,
		},
	}
}

// chaosScenarios are the sweep's three failure mixes: everything at once,
// correlated outages alone, and gray failures with hedging but no
// crashes. The CI chaos job runs the same mixes over 16+ seeds through
// localut-cluster -chaos.
func chaosScenarios() map[string]func(seed int64) Config {
	return map[string]func(seed int64) Config{
		"full": chaosConfig,
		"domains-only": func(seed int64) Config {
			cfg := chaosConfig(seed)
			cfg.Faults.Enabled = false
			cfg.Stragglers.Enabled = false
			cfg.Hedge.Enabled = false
			return cfg
		},
		"gray-hedged": func(seed int64) Config {
			cfg := chaosConfig(seed)
			cfg.Faults.Enabled = false
			cfg.Domains.Enabled = false
			return cfg
		},
	}
}

// TestChaosSeedSweep drives every failure mix across a seed sweep with
// the conservation auditor on: any leaked request, double-counted outage
// or over-refund fails Run itself. On top of the auditor, the report's
// user-facing counters must re-tell the same story.
func TestChaosSeedSweep(t *testing.T) {
	for name, mk := range chaosScenarios() {
		t.Run(name, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				rep, err := Run(mk(seed))
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if rep.Admitted != rep.Completed+rep.Shed {
					t.Errorf("seed %d: admitted %d != completed %d + shed %d",
						seed, rep.Admitted, rep.Completed, rep.Shed)
				}
				if rep.HedgesIssued != rep.HedgeCancels+rep.HedgeDrops {
					t.Errorf("seed %d: hedges %d != cancels %d + drops %d",
						seed, rep.HedgesIssued, rep.HedgeCancels, rep.HedgeDrops)
				}
				if rep.HedgeWastedSeconds < 0 {
					t.Errorf("seed %d: negative hedge waste %g", seed, rep.HedgeWastedSeconds)
				}
			}
		})
	}
}

// TestChaosDeterministic pins byte-identical chaos reports: the full mix
// re-run under the same seed must marshal to the same JSON. The CI job
// additionally diffs across engine parallelism levels.
func TestChaosDeterministic(t *testing.T) {
	base := clusterJSON(t, chaosConfig(3))
	if again := clusterJSON(t, chaosConfig(3)); string(again) != string(base) {
		t.Fatal("same chaos seed diverged run to run")
	}
}

// TestDomainOverlapRegression is the double-counting regression: domain
// outages frequent enough to land while earlier repairs (including their
// LUT re-materialization) are still in flight must merge into one outage
// window — UnavailableSeconds must equal the timeline's repair evidence
// exactly, and no epoch-stale completion may resurrect.
func TestDomainOverlapRegression(t *testing.T) {
	cfg := chaosConfig(1)
	cfg.Hedge.Enabled = false
	cfg.Stragglers.Enabled = false
	cfg.Faults.MTTFSeconds = 40
	cfg.Faults.MTTRSeconds = 6
	cfg.Domains.MTBFSeconds = 12
	cfg.Domains.MTTRSeconds = 6
	rep, err := Run(cfg) // Audit on: double-counting fails Run outright
	if err != nil {
		t.Fatal(err)
	}
	if rep.DomainOutages == 0 {
		t.Fatal("scenario produced no domain outages")
	}
	if rep.DomainOverlapExtensions == 0 {
		t.Fatal("scenario produced no overlapping outage; the regression path never ran")
	}
	var evidence float64
	for _, ev := range rep.Timeline {
		if ev.Kind == KindFault && ev.Action == "repair" {
			evidence += ev.RecoverSeconds
		}
	}
	if rep.UnavailableSeconds != evidence {
		t.Errorf("unavailable %g != timeline repair evidence %g (outage double-counted or lost)",
			rep.UnavailableSeconds, evidence)
	}
	if rep.Admitted != rep.Completed+rep.Shed {
		t.Errorf("admitted %d != completed %d + shed %d (stale completion resurrected?)",
			rep.Admitted, rep.Completed, rep.Shed)
	}
	for _, ir := range rep.Instances {
		if ir.Requests != ir.Completed+ir.Shed+ir.Canceled+ir.Displaced {
			t.Errorf("instance %d ledger leak: %d != %d+%d+%d+%d",
				ir.ID, ir.Requests, ir.Completed, ir.Shed, ir.Canceled, ir.Displaced)
		}
	}
}

// TestChaosStreamsDecoupled pins the twin-comparability property: the
// fault, domain and straggler schedules are drawn from their own seeded
// streams, so toggling hedging must not move a single crash, outage or
// slowdown window.
func TestChaosStreamsDecoupled(t *testing.T) {
	on, err := Run(chaosConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	offCfg := chaosConfig(2)
	offCfg.Hedge.Enabled = false
	off, err := Run(offCfg)
	if err != nil {
		t.Fatal(err)
	}
	if on.HedgesIssued == 0 {
		t.Error("hedging enabled but no hedges issued; the comparison is vacuous")
	}
	if on.Crashes != off.Crashes || on.DomainOutages != off.DomainOutages ||
		on.StragglerWindows != off.StragglerWindows {
		t.Errorf("hedging perturbed the injection schedule: crashes %d/%d outages %d/%d windows %d/%d",
			on.Crashes, off.Crashes, on.DomainOutages, off.DomainOutages,
			on.StragglerWindows, off.StragglerWindows)
	}
}

// TestChaosMetamorphic checks the sweep's metamorphic relation: injecting
// failures can only destroy useful work, so under the same seed the chaos
// run's goodput must not exceed its failure-free twin's (which itself must
// report a perfectly clean fault ledger).
func TestChaosMetamorphic(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		clean := chaosConfig(seed)
		clean.Faults.Enabled = false
		clean.Domains.Enabled = false
		clean.Stragglers.Enabled = false
		clean.Hedge.Enabled = false
		cleanRep, err := Run(clean)
		if err != nil {
			t.Fatal(err)
		}
		if cleanRep.UnavailableSeconds != 0 || cleanRep.Crashes != 0 || cleanRep.StragglerWindows != 0 {
			t.Fatalf("seed %d: failure-free twin reports failures", seed)
		}
		chaosRep, err := Run(chaosConfig(seed))
		if err != nil {
			t.Fatal(err)
		}
		if chaosRep.Good > cleanRep.Good {
			t.Errorf("seed %d: chaos goodput %d exceeds failure-free %d",
				seed, chaosRep.Good, cleanRep.Good)
		}
	}
}

// hedgeDemoConfig is the acceptance scenario for hedging: an 8-member
// fleet under gray-failure injection (4x slowdown windows, roughly one
// member straggling at a time), no crashes, hedging resolved at first
// token. delay 0 disables hedging — the no-hedge twin sees the identical
// straggler schedule.
func hedgeDemoConfig(delay float64) Config {
	cfg := chaosConfig(1)
	cfg.DurationSeconds = 60
	cfg.Faults.Enabled = false
	cfg.Domains.Enabled = false
	cfg.Stragglers = StragglerConfig{
		Enabled:             true,
		MTBFSeconds:         80,
		MeanDurationSeconds: 5,
		Slowdown:            4,
	}
	cfg.Hedge = HedgeConfig{Enabled: delay > 0, DelaySeconds: delay}
	return cfg
}

// TestHedgingImprovesTailUnderStragglers is the headline robustness
// claim: with one-in-eight members intermittently 4x slow, hedging must
// buy back TTFT p99 versus the no-hedge twin while wasting less than 10%
// of fleet busy time on cancelled duplicates.
func TestHedgingImprovesTailUnderStragglers(t *testing.T) {
	base, err := Run(hedgeDemoConfig(0))
	if err != nil {
		t.Fatal(err)
	}
	if base.StragglerWindows == 0 {
		t.Fatal("no straggler windows; the scenario is vacuous")
	}
	hedged, err := Run(hedgeDemoConfig(0.2))
	if err != nil {
		t.Fatal(err)
	}
	if hedged.StragglerWindows != base.StragglerWindows {
		t.Fatalf("hedging moved the straggler schedule: %d vs %d windows",
			hedged.StragglerWindows, base.StragglerWindows)
	}
	if hedged.HedgesIssued == 0 || hedged.HedgeWins == 0 {
		t.Fatalf("hedging never engaged (issued %d, wins %d)", hedged.HedgesIssued, hedged.HedgeWins)
	}
	t.Logf("TTFT p99: no-hedge %.4fs hedged %.4fs; hedges=%d wins=%d waste=%.3fs busy=%.1fs",
		base.TTFT.P99, hedged.TTFT.P99, hedged.HedgesIssued, hedged.HedgeWins,
		hedged.HedgeWastedSeconds, hedged.BusySeconds)
	if hedged.TTFT.P99 >= base.TTFT.P99 {
		t.Errorf("hedging did not improve TTFT p99: %.4fs vs %.4fs", hedged.TTFT.P99, base.TTFT.P99)
	}
	if frac := hedged.HedgeWastedSeconds / hedged.BusySeconds; frac >= 0.10 {
		t.Errorf("hedge waste %.1f%% of busy time exceeds the 10%% budget", 100*frac)
	}
}

// TestChaosConfigValidation rejects nonsensical chaos plans with clear
// errors before any simulation state is built.
func TestChaosConfigValidation(t *testing.T) {
	cases := map[string]func(*Config){
		"domain count negative":  func(c *Config) { c.Domains = DomainConfig{Enabled: true, Count: -1, MTBFSeconds: 10} },
		"domain mtbf missing":    func(c *Config) { c.Domains = DomainConfig{Enabled: true} },
		"domain mttr negative":   func(c *Config) { c.Domains = DomainConfig{Enabled: true, MTBFSeconds: 10, MTTRSeconds: -1} },
		"straggler mtbf missing": func(c *Config) { c.Stragglers = StragglerConfig{Enabled: true} },
		"straggler duration bad": func(c *Config) {
			c.Stragglers = StragglerConfig{Enabled: true, MTBFSeconds: 10, MeanDurationSeconds: -2}
		},
		"straggler slowdown weak": func(c *Config) { c.Stragglers = StragglerConfig{Enabled: true, MTBFSeconds: 10, Slowdown: 0.5} },
		"hedge delay missing":     func(c *Config) { c.Hedge = HedgeConfig{Enabled: true} },
		"hedge delay negative":    func(c *Config) { c.Hedge = HedgeConfig{Enabled: true, DelaySeconds: -0.1} },
		"class hedge delay negative": func(c *Config) {
			c.Classes = []ClassConfig{{RatePerSec: 1, HedgeDelaySeconds: -1}}
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Fatal("invalid chaos config accepted")
			}
		})
	}
}

// TestChaosReportJSONRoundTrip guards the report schema the golden files
// and BENCH_chaos.json emitter depend on: chaos counters must survive a
// marshal/unmarshal round trip.
func TestChaosReportJSONRoundTrip(t *testing.T) {
	rep, err := Run(chaosConfig(4))
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.DomainOutages != rep.DomainOutages || back.HedgesIssued != rep.HedgesIssued ||
		back.StragglerWindows != rep.StragglerWindows || back.HedgeWastedSeconds != rep.HedgeWastedSeconds {
		t.Errorf("chaos counters did not round-trip: %+v vs %+v", back, rep)
	}
}

// TestChaosSaturatedAudited pins the same-batch hedge race: at a load
// high enough that crash-displaced primaries get rerouted onto the
// member already serving their hedge copy, both copies of a pair can
// land in one prefill batch. The winner's first-token callback settles
// the race mid-batch, and Cancel must still find the loser in the
// completing batch and mark it canceled — a miss double-completes the
// request, which the always-on auditor reports as a request-conservation
// violation (admitted != completed + shed).
func TestChaosSaturatedAudited(t *testing.T) {
	cfg := chaosConfig(1)
	cfg.RatePerSec = 200
	cfg.DurationSeconds = 60
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HedgesIssued == 0 || rep.Crashes == 0 || rep.Shed == 0 {
		t.Fatalf("scenario too tame to exercise the race: %d hedges, %d crashes, %d shed",
			rep.HedgesIssued, rep.Crashes, rep.Shed)
	}
	if rep.Admitted != rep.Completed+rep.Shed {
		t.Errorf("request conservation broken: admitted %d != completed %d + shed %d",
			rep.Admitted, rep.Completed, rep.Shed)
	}
}
