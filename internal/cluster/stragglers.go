package cluster

import (
	"fmt"

	"github.com/ais-snu/localut/internal/obs"
)

// StragglerConfig is the gray-failure plan: each member draws exponential
// straggler-onset times (mean MTBFSeconds) from its own seeded stream.
// During a window (exponential mean MeanDurationSeconds) every pass the
// member launches is priced at Slowdown times its healthy cost — the
// member keeps serving and stays routable, it is just slow, which is the
// tail-at-scale hazard hedging exists for. A crash closes any open window
// (repair replaces the hardware); windows open inside the arrival window
// only but may run into the drain.
type StragglerConfig struct {
	Enabled bool

	// MTBFSeconds is the per-member mean time between straggler windows
	// (required).
	MTBFSeconds float64
	// MeanDurationSeconds is the mean window length (default 5).
	MeanDurationSeconds float64
	// Slowdown multiplies the priced cost of every pass launched inside a
	// window; must exceed 1 (default 4).
	Slowdown float64
}

// withDefaults fills and validates the straggler plan.
func (s StragglerConfig) withDefaults() (StragglerConfig, error) {
	if !s.Enabled {
		return s, nil
	}
	if s.MeanDurationSeconds == 0 {
		s.MeanDurationSeconds = 5
	}
	if s.Slowdown == 0 {
		s.Slowdown = 4
	}
	switch {
	case s.MTBFSeconds <= 0:
		return s, fmt.Errorf("cluster: straggler injection needs a positive MTBFSeconds")
	case s.MeanDurationSeconds <= 0:
		return s, fmt.Errorf("cluster: straggler MeanDurationSeconds %g must be positive", s.MeanDurationSeconds)
	case s.Slowdown <= 1:
		return s, fmt.Errorf("cluster: straggler Slowdown %g must exceed 1", s.Slowdown)
	}
	return s, nil
}

// scheduleStraggler draws member m's next straggler onset, stamped with
// the member's life epoch so the event dies if the member crashes or
// leaves service first. Draws beyond the arrival window are discarded.
func (cs *csim) scheduleStraggler(m *member, now float64) {
	if !cs.cfg.Stragglers.Enabled {
		return
	}
	at := now + m.stragRNG.ExpFloat64()*cs.cfg.Stragglers.MTBFSeconds
	if at > cs.cfg.DurationSeconds {
		return
	}
	cs.pushEvent(&event{at: at, inst: m.inst.ID, kind: evStragglerStart, epoch: m.lifeEpoch})
}

// onStragglerStart opens a slowdown window on the member: subsequent
// passes cost Slowdown times their healthy pricing until the window
// closes. The member stays routable throughout — that is the point.
func (cs *csim) onStragglerStart(ev *event, now float64) {
	m := cs.members[ev.inst]
	if ev.epoch != m.lifeEpoch || m.state != stateActive || m.straggling {
		return
	}
	f := &cs.cfg.Stragglers
	m.inst.SetSlowdown(f.Slowdown)
	m.straggling = true
	m.stragglerWindows++
	cs.stragglerWindows++
	active, _, _ := cs.fleetCounts()
	cs.timeline = append(cs.timeline, TimelineEvent{
		T: now, Kind: KindStraggler, Action: "start", Instance: ev.inst, Replica: -1,
		Active: active,
	})
	cs.cfg.Recorder.Instant(ev.inst+1, 0, "straggler", now,
		obs.Num("slowdown", f.Slowdown))
	cs.pushEvent(&event{at: now + m.stragRNG.ExpFloat64()*f.MeanDurationSeconds,
		inst: ev.inst, kind: evStragglerEnd, epoch: m.lifeEpoch})
}

// onStragglerEnd closes the member's slowdown window and draws the next
// onset. A crash in the meantime bumped the life epoch (repair replaced
// the hardware, already healthy), so the stale close is dropped.
func (cs *csim) onStragglerEnd(ev *event, now float64) {
	m := cs.members[ev.inst]
	if ev.epoch != m.lifeEpoch || !m.straggling {
		return
	}
	m.inst.SetSlowdown(1)
	m.straggling = false
	active, _, _ := cs.fleetCounts()
	cs.timeline = append(cs.timeline, TimelineEvent{
		T: now, Kind: KindStraggler, Action: "end", Instance: ev.inst, Replica: -1,
		Active: active,
	})
	cs.cfg.Recorder.Instant(ev.inst+1, 0, "straggler-end", now)
	cs.scheduleStraggler(m, now)
}
