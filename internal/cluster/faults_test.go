package cluster

import (
	"math"
	"testing"

	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/serve"
)

// faultConfig is the fault-injection acceptance scenario: an 8-instance
// fleet with enough headroom that rerouting absorbs two crashes, 5s
// deadlines, and an MTTF dialed so the seeded streams land two crashes
// inside the 60s window.
func faultConfig() Config {
	return Config{
		Base: serve.Config{
			Model:    dnn.BERTBase(),
			Fmt:      quant.W1A3,
			Variant:  kernels.LoCaLUT,
			Replicas: 2,
		},
		Instances:       8,
		RatePerSec:      30,
		DurationSeconds: 60,
		Seed:            1,
		Audit:           true,
		DeadlineSeconds: 5,
		Faults: FaultConfig{
			Enabled:     true,
			MTTFSeconds: 60,
			MTTRSeconds: 2,
		},
	}
}

// TestClusterFaultDemo pins the headline robustness scenario: the fleet
// takes multiple mid-run crashes, pays a visible recovery tax (retries,
// re-prefilled tokens, outage time), and still delivers goodput within
// 5% of the fault-free run.
func TestClusterFaultDemo(t *testing.T) {
	rep, err := Run(faultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes < 2 {
		t.Fatalf("want at least 2 crashes in the window, got %d", rep.Crashes)
	}
	if rep.Retries == 0 || rep.ReprefillTokens == 0 {
		t.Errorf("crashes destroyed no in-flight work (retries=%d reprefill=%d); the scenario must exercise the retry path",
			rep.Retries, rep.ReprefillTokens)
	}
	if rep.UnavailableSeconds <= 0 {
		t.Error("crashes produced no unavailability window")
	}
	if rep.LUTRematSeconds <= 0 {
		t.Error("recovery did not price LUT re-materialization")
	}
	if rep.InstancesFinal != 8 {
		t.Errorf("fleet did not fully recover: %d of 8 active at end", rep.InstancesFinal)
	}
	if rep.Admitted != rep.Completed+rep.Shed {
		t.Errorf("accounting leak: admitted %d != completed %d + shed %d",
			rep.Admitted, rep.Completed, rep.Shed)
	}
	if rep.Good == 0 || rep.Good > rep.Completed {
		t.Errorf("good %d outside (0, completed %d]", rep.Good, rep.Completed)
	}

	// The unavailability total must be exactly the sum of the outages the
	// repair events closed.
	var crashEvents, repairEvents int
	var recSum float64
	for _, ev := range rep.Timeline {
		if ev.Kind != KindFault {
			continue
		}
		switch ev.Action {
		case "crash":
			crashEvents++
		case "repair":
			repairEvents++
			recSum += ev.RecoverSeconds
		}
	}
	if crashEvents != rep.Crashes || repairEvents != rep.Crashes {
		t.Errorf("timeline has %d crashes / %d repairs, counters say %d",
			crashEvents, repairEvents, rep.Crashes)
	}
	if math.Abs(recSum-rep.UnavailableSeconds) > 1e-9 {
		t.Errorf("unavailability %g != timeline recover sum %g", rep.UnavailableSeconds, recSum)
	}

	// Goodput within 5% of the fault-free twin: the fleet has headroom, so
	// rerouting and retries absorb the crashes.
	clean := faultConfig()
	clean.Faults = FaultConfig{}
	cleanRep, err := Run(clean)
	if err != nil {
		t.Fatal(err)
	}
	cleanFaults := 0
	for _, ev := range cleanRep.Timeline {
		if ev.Kind == KindFault {
			cleanFaults++
		}
	}
	if cleanRep.Crashes != 0 || cleanFaults != 0 {
		t.Fatalf("fault-free twin reported faults: %+v", cleanRep.Timeline)
	}
	if rep.GoodputPerSec < 0.95*cleanRep.GoodputPerSec {
		t.Errorf("goodput %g dropped more than 5%% below fault-free %g",
			rep.GoodputPerSec, cleanRep.GoodputPerSec)
	}
}

// TestClusterFaultDeterministic extends the determinism invariant to the
// fault layer: byte-identical reports run to run and at every engine
// parallelism level, with mid-run crashes, degraded-mode replica losses
// and retries in play.
func TestClusterFaultDeterministic(t *testing.T) {
	scenarios := map[string]func() Config{
		"crashes": faultConfig,
		"degraded": func() Config {
			cfg := faultConfig()
			cfg.Faults.DegradedFraction = 0.5
			return cfg
		},
		"kv-shed-bounded": func() Config {
			cfg := faultConfig()
			cfg.Base.MaxQueue = 64
			cfg.Base.KVPolicy = serve.KVShed
			return cfg
		},
	}
	for name, mk := range scenarios {
		t.Run(name, func(t *testing.T) {
			base := clusterJSON(t, mk())
			if again := clusterJSON(t, mk()); string(again) != string(base) {
				t.Fatal("same seed diverged run to run")
			}
			for _, par := range []int{1, 4, 8} {
				cfg := mk()
				cfg.Base.Engine = gemm.NewEngine()
				cfg.Base.Engine.Exec.Parallelism = par
				if got := clusterJSON(t, cfg); string(got) != string(base) {
					t.Fatalf("parallelism %d changed the report", par)
				}
			}
		})
	}
}

// TestClusterRouterChurnDeterministic pins router determinism under
// membership churn: every routing policy must produce byte-identical
// reports at every parallelism level while instances crash out of the
// routable set and return mid-run.
func TestClusterRouterChurnDeterministic(t *testing.T) {
	for _, rt := range []RouterPolicy{RoundRobin, LeastOutstanding, WeightedFreeKV, ShapeAffinity} {
		t.Run(rt.String(), func(t *testing.T) {
			mk := func() Config {
				cfg := faultConfig()
				cfg.Router = rt
				cfg.Faults.MTTFSeconds = 40 // more churn
				return cfg
			}
			rep, err := Run(mk())
			if err != nil {
				t.Fatal(err)
			}
			if rep.Crashes == 0 {
				t.Fatalf("scenario produced no churn under %s", rt)
			}
			base := clusterJSON(t, mk())
			for _, par := range []int{1, 4, 8} {
				cfg := mk()
				cfg.Base.Engine = gemm.NewEngine()
				cfg.Base.Engine.Exec.Parallelism = par
				if got := clusterJSON(t, cfg); string(got) != string(base) {
					t.Fatalf("parallelism %d changed the report under %s churn", par, rt)
				}
			}
		})
	}
}

// TestClusterDegradedMode pins the replica-loss path: with every fault
// drawn as a degrade, the fleet loses replicas (not instances), keeps
// serving, and repairs them.
func TestClusterDegradedMode(t *testing.T) {
	cfg := faultConfig()
	cfg.Faults.DegradedFraction = 1
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DegradedEvents == 0 {
		t.Fatal("no degraded-mode faults landed")
	}
	var degrades, repairs int
	for _, ev := range rep.Timeline {
		if ev.Kind != KindFault {
			continue
		}
		switch ev.Action {
		case "degrade":
			degrades++
			if ev.Replica < 0 {
				t.Errorf("degrade event without a replica index: %+v", ev)
			}
		case "replica-repair":
			repairs++
		}
	}
	if degrades != rep.DegradedEvents {
		t.Errorf("timeline degrades %d != counter %d", degrades, rep.DegradedEvents)
	}
	if repairs == 0 {
		t.Error("no replica repairs landed")
	}
	if rep.Admitted != rep.Completed+rep.Shed {
		t.Errorf("accounting leak: admitted %d != completed %d + shed %d",
			rep.Admitted, rep.Completed, rep.Shed)
	}
	// Degraded instances keep serving: per-instance degraded counters sum
	// to the cluster total.
	sum := 0
	for _, ir := range rep.Instances {
		sum += ir.Degraded
	}
	if sum != rep.DegradedEvents {
		t.Errorf("instance degraded sum %d != cluster %d", sum, rep.DegradedEvents)
	}
}

// TestClusterBoundedQueueSheds pins graceful degradation under pressure:
// an overloaded bounded-queue fleet sheds instead of queueing without
// limit, and the accounting stays closed.
func TestClusterBoundedQueueSheds(t *testing.T) {
	cfg := faultConfig()
	cfg.Faults = FaultConfig{}
	cfg.RatePerSec = 400 // ~10x the fleet's service capacity
	cfg.DurationSeconds = 10
	cfg.Base.MaxQueue = 4
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ShedQueueFull == 0 {
		t.Fatal("overloaded bounded queues shed nothing")
	}
	if rep.Admitted != rep.Completed+rep.Shed {
		t.Errorf("accounting leak: admitted %d != completed %d + shed %d",
			rep.Admitted, rep.Completed, rep.Shed)
	}
	if rep.GoodputPerSec > rep.ThroughputPerSec {
		t.Errorf("goodput %g above throughput %g", rep.GoodputPerSec, rep.ThroughputPerSec)
	}
}

// TestClassConfigValidation covers the per-class validation table.
func TestClassConfigValidation(t *testing.T) {
	cases := map[string]ClassConfig{
		"zero rate":         {},
		"negative rate":     {RatePerSec: -5},
		"negative lengths":  {RatePerSec: 1, MinTokens: -1},
		"inverted lengths":  {RatePerSec: 1, MinTokens: 100, MaxTokens: 50},
		"negative decode":   {RatePerSec: 1, OutTokens: -1},
		"negative admit":    {RatePerSec: 1, AdmitBurst: -1},
		"negative slo":      {RatePerSec: 1, LatencyP99SLO: -0.5},
		"negative deadline": {RatePerSec: 1, DeadlineSeconds: -1},
	}
	for name, cc := range cases {
		t.Run(name, func(t *testing.T) {
			if err := cc.validate(0); err == nil {
				t.Errorf("%s: no error", name)
			}
		})
	}
	ok := ClassConfig{Name: "fine", RatePerSec: 10, MinTokens: 16, MaxTokens: 64,
		DeadlineSeconds: 2, LatencyP99SLO: 1}
	if err := ok.validate(0); err != nil {
		t.Errorf("valid class rejected: %v", err)
	}
}

// TestFaultValidation covers the fault, retry and deadline config error
// paths through Run.
func TestFaultValidation(t *testing.T) {
	cases := map[string]func(*Config){
		"faults no mttf":    func(c *Config) { c.Faults = FaultConfig{Enabled: true} },
		"negative mttr":     func(c *Config) { c.Faults = FaultConfig{Enabled: true, MTTFSeconds: 10, MTTRSeconds: -1} },
		"degraded frac":     func(c *Config) { c.Faults = FaultConfig{Enabled: true, MTTFSeconds: 10, DegradedFraction: 2} },
		"remat bw":          func(c *Config) { c.Faults = FaultConfig{Enabled: true, MTTFSeconds: 10, LUTRematGBps: -1} },
		"retry attempts":    func(c *Config) { c.Retry.MaxAttempts = -1 },
		"retry backoff":     func(c *Config) { c.Retry.BackoffSeconds = -0.1 },
		"retry cap":         func(c *Config) { c.Retry = RetryConfig{BackoffSeconds: 2, BackoffCapSeconds: 1} },
		"negative deadline": func(c *Config) { c.DeadlineSeconds = -1 },
		"class deadline":    func(c *Config) { c.Classes = []ClassConfig{{RatePerSec: 1, DeadlineSeconds: -1}} },
		"negative queue":    func(c *Config) { c.Base.MaxQueue = -1 },
		"bad kv policy":     func(c *Config) { c.Base.KVPolicy = serve.KVPolicy(9) },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Errorf("%s: no error", name)
			}
		})
	}
}

// TestRetryBackoff pins the capped exponential schedule.
func TestRetryBackoff(t *testing.T) {
	r := RetryConfig{MaxAttempts: 5, BackoffSeconds: 0.1, BackoffCapSeconds: 0.5}
	want := []float64{0.1, 0.1, 0.2, 0.4, 0.5, 0.5}
	for attempt, w := range want {
		if got := r.backoff(attempt); math.Abs(got-w) > 1e-12 {
			t.Errorf("backoff(%d) = %g, want %g", attempt, got, w)
		}
	}
}
