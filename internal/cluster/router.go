package cluster

import (
	"fmt"

	"github.com/ais-snu/localut/internal/serve"
)

// RouterPolicy selects how arriving requests are spread over the fleet.
type RouterPolicy int

const (
	// RoundRobin cycles through the routable instances in ID order.
	RoundRobin RouterPolicy = iota
	// LeastOutstanding sends each request to the instance with the fewest
	// admitted-but-unfinished requests (ties to the lowest ID).
	LeastOutstanding
	// WeightedFreeKV sends each request to the instance with the most KV
	// capacity left after its current queued+live demand — the
	// capacity-axis-aware router for decode-heavy fleets (ties to the
	// least outstanding, then lowest ID).
	WeightedFreeKV
	// ShapeAffinity hashes the request's padded-length bucket over the
	// routable instances, so same-shape requests land on the same
	// appliance and the packed scheduler forms uniform batches with fewer
	// distinct forward-pass shapes fleet-wide.
	ShapeAffinity
)

var routerNames = [...]string{"round-robin", "least-outstanding", "weighted-kv", "shape-affinity"}

func (p RouterPolicy) String() string {
	if p >= 0 && int(p) < len(routerNames) {
		return routerNames[p]
	}
	return fmt.Sprintf("RouterPolicy(%d)", int(p))
}

// ParseRouterPolicy parses a router name.
func ParseRouterPolicy(s string) (RouterPolicy, error) {
	for i, n := range routerNames {
		if s == n {
			return RouterPolicy(i), nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown router %q (want round-robin, least-outstanding, weighted-kv or shape-affinity)", s)
}

// router picks the target instance for one admitted request. The routable
// slice is non-empty and ordered by instance ID; implementations must be
// deterministic pure functions of that slice, the request and their own
// internal counters.
type router interface {
	pick(routable []*member, r *serve.Request) *member
}

func newRouter(p RouterPolicy) (router, error) {
	switch p {
	case RoundRobin:
		return &rrRouter{}, nil
	case LeastOutstanding:
		return leastOutstandingRouter{}, nil
	case WeightedFreeKV:
		return freeKVRouter{}, nil
	case ShapeAffinity:
		return shapeAffinityRouter{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown router policy %d", int(p))
}

type rrRouter struct {
	n int
}

func (r *rrRouter) pick(routable []*member, _ *serve.Request) *member {
	m := routable[r.n%len(routable)]
	r.n++
	return m
}

type leastOutstandingRouter struct{}

func (leastOutstandingRouter) pick(routable []*member, _ *serve.Request) *member {
	best := routable[0]
	for _, m := range routable[1:] {
		if m.inst.Outstanding() < best.inst.Outstanding() {
			best = m
		}
	}
	return best
}

type freeKVRouter struct{}

func (freeKVRouter) pick(routable []*member, _ *serve.Request) *member {
	best := routable[0]
	for _, m := range routable[1:] {
		switch free, bestFree := m.inst.KVFreeBytes(), best.inst.KVFreeBytes(); {
		case free > bestFree:
			best = m
		case free == bestFree && m.inst.Outstanding() < best.inst.Outstanding():
			best = m
		}
	}
	return best
}

type shapeAffinityRouter struct{}

func (shapeAffinityRouter) pick(routable []*member, r *serve.Request) *member {
	quantum := routable[0].inst.Cfg.TokenQuantum
	bucket := r.Padded / quantum
	return routable[bucket%len(routable)]
}
