package cluster

import (
	"fmt"
	"math"
)

// AdmissionPolicy selects the cluster's admission controller.
type AdmissionPolicy int

const (
	// AdmitAll admits every arrival (the zero value).
	AdmitAll AdmissionPolicy = iota
	// TokenBucket rate-limits each SLO class with its own token bucket:
	// a class arriving faster than its sustained AdmitRatePerSec (beyond
	// its AdmitBurst depth) sees rejections instead of unbounded queueing.
	TokenBucket
)

var admissionNames = [...]string{"admit-all", "token-bucket"}

func (p AdmissionPolicy) String() string {
	if p >= 0 && int(p) < len(admissionNames) {
		return admissionNames[p]
	}
	return fmt.Sprintf("AdmissionPolicy(%d)", int(p))
}

// ParseAdmissionPolicy parses an admission-policy name.
func ParseAdmissionPolicy(s string) (AdmissionPolicy, error) {
	for i, n := range admissionNames {
		if s == n {
			return AdmissionPolicy(i), nil
		}
	}
	return 0, fmt.Errorf("cluster: unknown admission policy %q (want admit-all or token-bucket)", s)
}

// bucket is one class's token bucket. It refills continuously at rate
// tokens/second up to burst, starting full; each admission spends one
// token. Refill is a pure function of elapsed simulated time, so
// admission decisions are deterministic.
type bucket struct {
	rate, burst float64
	level, last float64
}

func newBucket(rate, burst float64) *bucket {
	return &bucket{rate: rate, burst: burst, level: burst}
}

func (b *bucket) admit(now float64) bool {
	b.level = math.Min(b.burst, b.level+(now-b.last)*b.rate)
	b.last = now
	if b.level >= 1 {
		b.level--
		return true
	}
	return false
}
