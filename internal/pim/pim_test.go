package pim

import (
	"math"
	"strings"
	"testing"
)

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumDPUs() != 2048 {
		t.Errorf("NumDPUs = %d, want 2048 (32 ranks x 64 banks)", cfg.NumDPUs())
	}
	// "Approximately half" of each capacity goes to LUTs (§V-A).
	if b := cfg.MRAMLUTBudget(); b < 32<<20 || b > 38<<20 {
		t.Errorf("MRAM LUT budget = %d, want ~half of 64 MiB", b)
	}
	if b := cfg.WRAMLUTBudget(); b < 32<<10 || b > 38<<10 {
		t.Errorf("WRAM LUT budget = %d, want ~half of 64 KiB", b)
	}
}

func TestConfigValidation(t *testing.T) {
	mods := []func(*Config){
		func(c *Config) { c.Ranks = 0 },
		func(c *Config) { c.MRAMBytes = 0 },
		func(c *Config) { c.ClockHz = -1 },
		func(c *Config) { c.DMABytesPerCycle = 0 },
		func(c *Config) { c.LUTBudgetFrac = 0 },
		func(c *Config) { c.LUTBudgetFrac = 1.5 },
		func(c *Config) { c.HostToPIMBW = 0 },
	}
	for i, mod := range mods {
		cfg := DefaultConfig()
		mod(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mod %d: invalid config accepted", i)
		}
	}
}

func TestLDCalibration(t *testing.T) {
	// §VI-I: streaming LUT slices costs L_D = 1.36e-9 s per byte
	// (~735 MB/s, the measured UPMEM MRAM->WRAM DMA bandwidth). The
	// amortized per-byte time over a large transfer must land within 10%.
	cfg := DefaultConfig()
	d := NewDPU(&cfg)
	seg, err := d.MRAM.Alloc("lut", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	const bytes = 16384
	buf := make([]byte, bytes)
	if err := d.DMARead(seg, 0, buf); err != nil {
		t.Fatal(err)
	}
	perByte := d.Seconds() / bytes
	if perByte < 1.36e-9*0.9 || perByte > 1.36e-9*1.1 {
		t.Errorf("amortized per-byte DMA time = %.3g s, want ~1.36e-9", perByte)
	}
}

func TestLLocalCalibration(t *testing.T) {
	// §VI-I: one reordering lookup + canonical lookup + accumulation is 12
	// instructions, L_local = 3.27e-8 s (~11.45 cycles at 350 MHz). Charging
	// 12 EvInstr must land within 10% of L_local.
	cfg := DefaultConfig()
	d := NewDPU(&cfg)
	d.Exec(EvInstr, 12)
	got := d.Seconds()
	if got < 3.27e-8*0.9 || got > 3.27e-8*1.1 {
		t.Errorf("12-instruction time = %.3g s, want ~3.27e-8", got)
	}
}

func TestMRAMAllocator(t *testing.T) {
	m := NewMRAM(1000)
	a, err := m.Alloc("a", 600)
	if err != nil {
		t.Fatal(err)
	}
	if a.Off != 0 || len(a.Data) != 600 {
		t.Errorf("segment a: off=%d len=%d", a.Off, len(a.Data))
	}
	if _, err := m.Alloc("a", 10); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := m.Alloc("b", 500); err == nil {
		t.Error("over-capacity alloc accepted")
	} else if !strings.Contains(err.Error(), "free") {
		t.Errorf("unhelpful error: %v", err)
	}
	b, err := m.Alloc("b", 400)
	if err != nil {
		t.Fatal(err)
	}
	if b.Off != 600 {
		t.Errorf("segment b off = %d", b.Off)
	}
	if m.Used() != 1000 {
		t.Errorf("used = %d", m.Used())
	}
	if err := m.Free("a"); err != nil {
		t.Fatal(err)
	}
	if m.Used() != 400 {
		t.Errorf("used after free = %d", m.Used())
	}
	if err := m.Free("zzz"); err == nil {
		t.Error("freeing unknown segment accepted")
	}
	if _, ok := m.Segment("b"); !ok {
		t.Error("segment b lookup failed")
	}
	if _, err := m.Alloc("zero", 0); err == nil {
		t.Error("zero-size alloc accepted")
	}
}

func TestWRAMAllocator(t *testing.T) {
	w := NewWRAM(100)
	if _, err := w.Alloc("x", 80); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Alloc("y", 30); err == nil {
		t.Error("over-capacity WRAM alloc accepted")
	}
	if _, err := w.Alloc("y", 20); err != nil {
		t.Fatal("valid alloc failed")
	}
	if w.Used() != 100 || w.Capacity() != 100 {
		t.Errorf("used=%d cap=%d", w.Used(), w.Capacity())
	}
	if err := w.Free("x"); err != nil {
		t.Fatal(err)
	}
	if w.Used() != 20 {
		t.Errorf("used after free = %d", w.Used())
	}
	w.FreeAll()
	if w.Used() != 0 {
		t.Error("FreeAll left bytes allocated")
	}
}

func TestDMAMovesBytesAndCharges(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDPU(&cfg)
	seg, err := d.MRAM.Alloc("data", 256)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seg.Data {
		seg.Data[i] = byte(i)
	}
	dst := make([]byte, 64)
	if err := d.DMARead(seg, 16, dst); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != byte(i+16) {
			t.Fatalf("dst[%d] = %d", i, dst[i])
		}
	}
	if d.Meter.Count(EvDMARead) != 64 {
		t.Errorf("DMA read bytes = %d", d.Meter.Count(EvDMARead))
	}
	wantCycles := cfg.DMASetupCycles + int64(math.Ceil(64/cfg.DMABytesPerCycle))
	if d.Meter.Cycles != wantCycles {
		t.Errorf("cycles = %d, want %d", d.Meter.Cycles, wantCycles)
	}

	// Write back modified data.
	dst[0] = 0xAA
	if err := d.DMAWrite(seg, 16, dst); err != nil {
		t.Fatal(err)
	}
	if seg.Data[16] != 0xAA {
		t.Error("DMAWrite did not store")
	}
	if d.Meter.Count(EvDMAWrite) != 64 {
		t.Errorf("DMA write bytes = %d", d.Meter.Count(EvDMAWrite))
	}
}

func TestDMABoundsChecked(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDPU(&cfg)
	seg, _ := d.MRAM.Alloc("data", 64)
	if err := d.DMARead(seg, 60, make([]byte, 8)); err == nil {
		t.Error("out-of-range DMARead accepted")
	}
	if err := d.DMAWrite(seg, -1, make([]byte, 4)); err == nil {
		t.Error("negative-offset DMAWrite accepted")
	}
}

func TestExecCharges(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDPU(&cfg)
	d.Exec(EvInstr, 10)
	d.Exec(EvMul8, 5)
	d.Exec(EvMul32, 2)
	want := 10*cfg.CyclesPerInstr + 5*cfg.CyclesPerMul8 + 2*cfg.CyclesPerMul32
	if d.Meter.Cycles != want {
		t.Errorf("cycles = %d, want %d", d.Meter.Cycles, want)
	}
	d.Exec(EvInstr, 0)
	d.Exec(EvInstr, -5)
	if d.Meter.Cycles != want {
		t.Error("non-positive charge changed the meter")
	}
}

func TestExecRejectsNonInstr(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDPU(&cfg)
	defer func() {
		if recover() == nil {
			t.Error("Exec(EvDMARead) did not panic")
		}
	}()
	d.Exec(EvDMARead, 1)
}

func TestMeterMerge(t *testing.T) {
	var a, b Meter
	a.Cycles = 100
	a.Counts[EvInstr] = 10
	b.Cycles = 250
	b.Counts[EvInstr] = 20
	b.Counts[EvDMARead] = 64
	a.Merge(&b)
	// Wall-clock of parallel banks is the max; event counts add.
	if a.Cycles != 250 {
		t.Errorf("merged cycles = %d, want max 250", a.Cycles)
	}
	if a.Counts[EvInstr] != 30 || a.Counts[EvDMARead] != 64 {
		t.Errorf("merged counts = %v", a.Counts)
	}
}

func TestSystemCharges(t *testing.T) {
	sys, err := NewSystem(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sys.ChargeHostToPIM(8_000_000_000) // 8 GB at 8 GB/s = 1 s
	if math.Abs(sys.TransferSeconds-1.0) > 1e-9 {
		t.Errorf("transfer = %g s", sys.TransferSeconds)
	}
	sys.ChargeBroadcast(12_000_000_000) // 12 GB at 12 GB/s = +1 s
	if math.Abs(sys.TransferSeconds-2.0) > 1e-9 {
		t.Errorf("after broadcast = %g s", sys.TransferSeconds)
	}
	sys.ChargePIMToHost(5_000_000_000) // +1 s
	if math.Abs(sys.TransferSeconds-3.0) > 1e-9 {
		t.Errorf("after gather = %g s", sys.TransferSeconds)
	}
	sys.HostSeconds = 0.5
	sys.KernelSeconds = 1.5
	if math.Abs(sys.TotalSeconds()-5.0) > 1e-9 {
		t.Errorf("total = %g s", sys.TotalSeconds())
	}
	if sys.Meter.Count(EvHostToPIM) != 20_000_000_000 {
		t.Errorf("host->pim bytes = %d", sys.Meter.Count(EvHostToPIM))
	}
}

func TestNewSystemRejectsBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Ranks = -1
	if _, err := NewSystem(cfg); err == nil {
		t.Error("bad config accepted")
	}
}

func TestDPUReset(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDPU(&cfg)
	d.MRAM.Alloc("x", 100)
	d.WRAM.Alloc("y", 100)
	d.Exec(EvInstr, 5)
	d.Reset()
	if d.Meter.Cycles != 0 || d.MRAM.Used() != 0 || d.WRAM.Used() != 0 {
		t.Error("Reset left state behind")
	}
}

func TestEventClassString(t *testing.T) {
	if EvInstr.String() != "instr" || EvDMARead.String() != "dma_read_bytes" {
		t.Error("event names")
	}
	if !strings.Contains(EventClass(99).String(), "99") {
		t.Error("unknown event name")
	}
}

// TestResetRecyclesSegments pins the pooling contract of DPU.Reset: a
// same-named re-allocation after Reset reuses the retired backing array,
// returns it zeroed (exactly like a fresh make), and a re-allocation at a
// larger size falls back to a fresh array.
func TestResetRecyclesSegments(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDPU(&cfg)

	seg, err := d.MRAM.Alloc("W", 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seg.Data {
		seg.Data[i] = 0xAB
	}
	first := &seg.Data[0]
	buf, err := d.WRAM.Alloc("scratch", 32)
	if err != nil {
		t.Fatal(err)
	}
	buf.Data[0] = 0xCD

	d.Reset()

	seg2, err := d.MRAM.Alloc("W", 64)
	if err != nil {
		t.Fatal(err)
	}
	if &seg2.Data[0] != first {
		t.Error("MRAM re-alloc did not reuse the retired backing array")
	}
	for i, b := range seg2.Data {
		if b != 0 {
			t.Fatalf("recycled segment not zeroed at byte %d: %#x", i, b)
		}
	}
	buf2, err := d.WRAM.Alloc("scratch", 32)
	if err != nil {
		t.Fatal(err)
	}
	if buf2.Data[0] != 0 {
		t.Error("recycled WRAM buffer not zeroed")
	}

	d.Reset()
	seg3, err := d.MRAM.Alloc("W", 128) // grows past the retired capacity
	if err != nil {
		t.Fatal(err)
	}
	if len(seg3.Data) != 128 {
		t.Fatalf("grown segment has %d bytes, want 128", len(seg3.Data))
	}
}

// TestResetNeverRecyclesMappedBytes guards the shared-LUT safety property:
// bytes mapped read-only over host memory must not enter the recycle pool,
// or a later owned allocation could scribble over a process-wide table.
func TestResetNeverRecyclesMappedBytes(t *testing.T) {
	cfg := DefaultConfig()
	d := NewDPU(&cfg)
	shared := []byte{1, 2, 3, 4}
	if _, err := d.MRAM.Map("LUT", shared); err != nil {
		t.Fatal(err)
	}
	d.Reset()
	seg, err := d.MRAM.Alloc("LUT", 4)
	if err != nil {
		t.Fatal(err)
	}
	if &seg.Data[0] == &shared[0] {
		t.Fatal("owned allocation aliases previously mapped shared bytes")
	}
	seg.Data[0] = 99
	if shared[0] != 1 {
		t.Fatal("write through recycled segment corrupted the shared table")
	}
}

// TestAccountingDPUResetReuse checks cost-only memories recycle their
// segment records without ever growing Data.
func TestAccountingDPUResetReuse(t *testing.T) {
	cfg := DefaultConfig()
	d := NewAccountingDPU(&cfg)
	for i := 0; i < 3; i++ {
		if _, err := d.MRAM.Reserve("T", 100); err != nil {
			t.Fatal(err)
		}
		seg, err := d.MRAM.Alloc("W", 50)
		if err != nil {
			t.Fatal(err)
		}
		if seg.Data != nil {
			t.Fatal("accounting segment grew data")
		}
		d.Reset()
	}
}
