// Package pim models an UPMEM-class DRAM-PIM system at the
// functional-plus-cycle-accounting level LoCaLUT's evaluation needs.
//
// Each DPU owns a 64 MB MRAM bank (the "DRAM bank" of the paper), a 64 KB
// WRAM scratchpad (the "local buffer"), a DMA engine between them, and an
// in-order core clocked at 350 MHz. Kernels move real bytes through these
// objects — a DMA both copies data and charges cycles, a lookup both reads
// the byte and charges the instruction budget — so functional correctness
// and timing come from the same execution.
//
// Timing calibration follows §VI-I of the paper: the authors profile
// L_D = 1.36e-9 s to stream one canonical+reordering LUT entry pair from
// the bank into WRAM (a 3-4 byte pair under dynamic entry sizing, giving an
// effective pipelined DMA rate of ~7 B/cycle), and L_local = 3.27e-8 s
// (~11.5 cycles) for one reordering lookup + one canonical lookup +
// accumulation, quoted as "12 instructions". Those constants are the
// defaults here; everything else (instruction class costs, transfer
// bandwidths) is documented alongside its source.
package pim

import (
	"fmt"
)

// EventClass enumerates the charged event kinds. The Meter tracks one
// counter per class so the energy model can price them independently.
type EventClass int

const (
	// EvInstr is a generic single-issue DPU instruction (ALU op, WRAM
	// load/store, branch). UPMEM DPUs are single-issue in-order; most
	// instructions retire in one cycle from the pipeline's view.
	EvInstr EventClass = iota
	// EvMul8 is a native 8x8-bit multiply (UPMEM exposes an 8-bit
	// multiplier; wider products are composed in software).
	EvMul8
	// EvMul32 is a software 32-bit multiply composed from mul steps.
	EvMul32
	// EvDMARead counts bytes DMA-transferred MRAM -> WRAM.
	EvDMARead
	// EvDMAWrite counts bytes DMA-transferred WRAM -> MRAM.
	EvDMAWrite
	// EvWRAMAccess counts explicit WRAM data accesses charged by kernels
	// (already cycle-priced inside EvInstr charges; kept separately for the
	// energy model).
	EvWRAMAccess
	// EvHostToPIM counts bytes moved host -> PIM over the memory channel.
	EvHostToPIM
	// EvPIMToHost counts bytes moved PIM -> host.
	EvPIMToHost
	numEventClasses
)

var eventNames = [...]string{
	"instr", "mul8", "mul32", "dma_read_bytes", "dma_write_bytes",
	"wram_access", "host_to_pim_bytes", "pim_to_host_bytes",
}

func (e EventClass) String() string {
	if e >= 0 && int(e) < len(eventNames) {
		return eventNames[e]
	}
	return fmt.Sprintf("EventClass(%d)", int(e))
}

// Config holds the machine parameters. The zero value is invalid; use
// DefaultConfig.
type Config struct {
	// Topology (matches the paper's 32-rank UPMEM testbed: 64 banks/rank,
	// 2048 DPUs total, §V-A).
	Ranks        int
	BanksPerRank int

	// Per-bank capacities.
	MRAMBytes int64 // 64 MiB DRAM bank
	WRAMBytes int   // 64 KiB SRAM local buffer

	// DPU core.
	ClockHz float64 // 350 MHz

	// DMA engine: a transfer of n bytes costs
	// DMASetupCycles + n / DMABytesPerCycle cycles.
	// DMABytesPerCycle = 2.1 reproduces the paper's pipelined
	// L_D = 1.36e-9 s per streamed byte (~735 MB/s, matching measured
	// UPMEM MRAM->WRAM DMA bandwidth); DMASetupCycles models the fixed
	// MRAM access latency that makes per-lookup bank accesses (the
	// Fig. 3(a) DRAM-sized LUT design) unattractive.
	DMABytesPerCycle float64
	DMASetupCycles   int64

	// Instruction class costs in cycles.
	CyclesPerInstr int64
	CyclesPerMul8  int64
	CyclesPerMul32 int64

	// Host link, aggregate across all ranks. With transfers parallelized
	// over 32 ranks (PrIM-style batched xfer), UPMEM reaches several GB/s
	// in each direction; broadcast of identical payloads is faster still.
	HostToPIMBW     float64 // bytes/s, distinct data
	PIMToHostBW     float64 // bytes/s
	HostBroadcastBW float64 // bytes/s, same data to all banks

	// Fraction of MRAM/WRAM the runtime devotes to LUTs. §V-A devotes
	// "approximately half the capacity"; 0.55 is the soft-half that makes
	// the paper's own residence choices work out (the W4A4 p=2 canonical
	// table is 34.8 KB, just over a hard 32 KB half of WRAM, yet Fig. 18
	// reports it buffer-resident).
	LUTBudgetFrac float64
}

// DefaultConfig returns the paper's UPMEM testbed configuration.
func DefaultConfig() Config {
	return Config{
		Ranks:            32,
		BanksPerRank:     64,
		MRAMBytes:        64 << 20,
		WRAMBytes:        64 << 10,
		ClockHz:          350e6,
		DMABytesPerCycle: 2.1,
		DMASetupCycles:   32,
		CyclesPerInstr:   1,
		CyclesPerMul8:    2,
		CyclesPerMul32:   10,
		HostToPIMBW:      8.0e9,
		PIMToHostBW:      5.0e9,
		HostBroadcastBW:  12.0e9,
		LUTBudgetFrac:    0.55,
	}
}

// Validate checks the configuration for obvious nonsense.
func (c *Config) Validate() error {
	switch {
	case c.Ranks <= 0 || c.BanksPerRank <= 0:
		return fmt.Errorf("pim: topology %dx%d invalid", c.Ranks, c.BanksPerRank)
	case c.MRAMBytes <= 0 || c.WRAMBytes <= 0:
		return fmt.Errorf("pim: capacities invalid")
	case c.ClockHz <= 0:
		return fmt.Errorf("pim: clock %g invalid", c.ClockHz)
	case c.DMABytesPerCycle <= 0:
		return fmt.Errorf("pim: DMA rate %g invalid", c.DMABytesPerCycle)
	case c.LUTBudgetFrac <= 0 || c.LUTBudgetFrac > 1:
		return fmt.Errorf("pim: LUT budget fraction %g outside (0,1]", c.LUTBudgetFrac)
	case c.HostToPIMBW <= 0 || c.PIMToHostBW <= 0 || c.HostBroadcastBW <= 0:
		return fmt.Errorf("pim: host bandwidths must be positive")
	}
	return nil
}

// NumDPUs returns the total processing element count.
func (c *Config) NumDPUs() int { return c.Ranks * c.BanksPerRank }

// MRAMLUTBudget returns the per-bank byte budget for LUT storage.
func (c *Config) MRAMLUTBudget() int64 {
	return int64(float64(c.MRAMBytes) * c.LUTBudgetFrac)
}

// WRAMLUTBudget returns the per-buffer byte budget for LUT storage.
func (c *Config) WRAMLUTBudget() int64 {
	return int64(float64(c.WRAMBytes) * c.LUTBudgetFrac)
}

// Seconds converts a cycle count to wall time under this config.
func (c *Config) Seconds(cycles int64) float64 {
	return float64(cycles) / c.ClockHz
}

// Meter accumulates cycles and event counts for one DPU (or one aggregated
// timeline). The zero value is ready to use.
type Meter struct {
	Cycles int64
	Counts [numEventClasses]int64
}

// Add charges n events of the class and the corresponding cycles under cfg.
func (m *Meter) add(class EventClass, n int64) {
	m.Counts[class] += n
}

// Count returns the accumulated count for a class.
func (m *Meter) Count(class EventClass) int64 { return m.Counts[class] }

// Merge adds other's counters into m (used to aggregate DPU meters into a
// system meter for energy accounting).
func (m *Meter) Merge(other *Meter) {
	if other.Cycles > m.Cycles {
		// Parallel banks: wall-clock is the max, not the sum.
		m.Cycles = other.Cycles
	}
	for i := range m.Counts {
		m.Counts[i] += other.Counts[i]
	}
}

// Reset zeroes the meter.
func (m *Meter) Reset() { *m = Meter{} }

// Segment is a named MRAM allocation. Size is always the allocated byte
// count; Data backs it with host memory only on functional banks (on an
// accounting bank Data stays nil and only the capacity bookkeeping and DMA
// charges exist).
type Segment struct {
	Name string
	Off  int64
	Size int64
	Data []byte
	// ro marks a segment mapped over shared host memory (see MRAM.Map);
	// DMAWrite refuses to touch it.
	ro bool
}

// MRAM is the per-bank DRAM array, modelled as a bump allocator of named
// segments. Only touched segments allocate host memory, so simulating a
// few representative banks of a 128 GB system stays cheap. A cost-only
// MRAM (NewAccountingDPU) allocates no host memory at all: segments keep
// their sizes and offsets for capacity and bounds checking, but carry no
// bytes.
//
// Reset retires every live segment into a name-keyed recycle pool instead
// of dropping it: a kernel rerun on the same DPU allocates the same segment
// names, so steady-state execution reuses the retired backing arrays
// (zeroed, exactly as a fresh make would return them) and allocates
// nothing. Mapped (read-only) segments never donate their shared bytes to
// the pool.
type MRAM struct {
	capacity int64
	used     int64
	costOnly bool
	segs     map[string]*Segment
	retired  map[string]*Segment
}

// NewMRAM returns an empty bank of the given capacity.
func NewMRAM(capacity int64) *MRAM {
	return newMRAM(capacity, false)
}

// newMRAM returns a bank, segment-less when costOnly.
func newMRAM(capacity int64, costOnly bool) *MRAM {
	return &MRAM{
		capacity: capacity,
		costOnly: costOnly,
		segs:     make(map[string]*Segment),
		retired:  make(map[string]*Segment),
	}
}

// take pops a retired segment for reuse under name, or returns a fresh one.
// The returned segment carries whatever Data array it retired with (never a
// shared read-only mapping — Reset strips those).
func (m *MRAM) take(name string) *Segment {
	if seg, ok := m.retired[name]; ok {
		delete(m.retired, name)
		return seg
	}
	return &Segment{}
}

// Reset retires every segment and empties the bank. Owned backing arrays
// stay with their retired segments for reuse by the next same-named Alloc;
// shared read-only mappings are detached so recycled storage can never
// alias a cached table.
func (m *MRAM) Reset() {
	for name, seg := range m.segs {
		if seg.ro {
			seg.Data = nil
			seg.ro = false
		}
		m.retired[name] = seg
		delete(m.segs, name)
	}
	m.used = 0
}

// Alloc reserves size bytes under name. It fails when the bank is full —
// the capacity-overflow failure mode §VII-B discusses.
func (m *MRAM) Alloc(name string, size int64) (*Segment, error) {
	if size <= 0 {
		return nil, fmt.Errorf("pim: MRAM alloc %q: size %d invalid", name, size)
	}
	if _, dup := m.segs[name]; dup {
		return nil, fmt.Errorf("pim: MRAM alloc %q: duplicate segment", name)
	}
	if m.used+size > m.capacity {
		return nil, fmt.Errorf("pim: MRAM alloc %q: %d bytes requested, %d of %d free",
			name, size, m.capacity-m.used, m.capacity)
	}
	seg := m.take(name)
	*seg = Segment{Name: name, Off: m.used, Size: size, Data: seg.Data}
	if !m.costOnly {
		if int64(cap(seg.Data)) >= size {
			seg.Data = seg.Data[:size]
			clear(seg.Data)
		} else {
			seg.Data = make([]byte, size)
		}
	} else {
		seg.Data = nil
	}
	m.used += size
	m.segs[name] = seg
	return seg, nil
}

// Reserve records a segment of the given size without ever backing it with
// host memory, whatever the bank mode. It exists for tables whose contents
// the caller never materializes (a cycles-only kernel charging the DMA cost
// of a LUT it will not read): capacity accounting works exactly as for
// Alloc, but the bytes do not exist — only the ChargeDMA* entry points
// accept such a segment (DMARead rejects it, DMAWrite rejects it as
// read-only).
func (m *MRAM) Reserve(name string, size int64) (*Segment, error) {
	if size <= 0 {
		return nil, fmt.Errorf("pim: MRAM reserve %q: size %d invalid", name, size)
	}
	if _, dup := m.segs[name]; dup {
		return nil, fmt.Errorf("pim: MRAM reserve %q: duplicate segment", name)
	}
	if m.used+size > m.capacity {
		return nil, fmt.Errorf("pim: MRAM reserve %q: %d bytes requested, %d of %d free",
			name, size, m.capacity-m.used, m.capacity)
	}
	seg := m.take(name)
	*seg = Segment{Name: name, Off: m.used, Size: size, ro: true}
	m.used += size
	m.segs[name] = seg
	return seg, nil
}

// Map reserves len(data) bytes under name like Alloc but aliases the
// caller's slice instead of copying it. It exists for immutable shared
// tables (the process-wide LUT cache): when thousands of banks hold the
// same multi-megabyte LUT, mapping keeps the sharded simulation's host
// memory and setup time independent of the bank count. Mapped segments are
// read-only; DMAWrite rejects them.
func (m *MRAM) Map(name string, data []byte) (*Segment, error) {
	size := int64(len(data))
	if size <= 0 {
		return nil, fmt.Errorf("pim: MRAM map %q: size %d invalid", name, size)
	}
	if _, dup := m.segs[name]; dup {
		return nil, fmt.Errorf("pim: MRAM map %q: duplicate segment", name)
	}
	if m.used+size > m.capacity {
		return nil, fmt.Errorf("pim: MRAM map %q: %d bytes requested, %d of %d free",
			name, size, m.capacity-m.used, m.capacity)
	}
	seg := m.take(name)
	*seg = Segment{Name: name, Off: m.used, Size: size, Data: data, ro: true}
	m.used += size
	m.segs[name] = seg
	return seg, nil
}

// Free releases a segment into the recycle pool.
func (m *MRAM) Free(name string) error {
	seg, ok := m.segs[name]
	if !ok {
		return fmt.Errorf("pim: MRAM free %q: no such segment", name)
	}
	delete(m.segs, name)
	m.used -= seg.Size
	if seg.ro {
		seg.Data = nil
		seg.ro = false
	}
	m.retired[name] = seg
	return nil
}

// Used returns the allocated byte count.
func (m *MRAM) Used() int64 { return m.used }

// Capacity returns the bank size.
func (m *MRAM) Capacity() int64 { return m.capacity }

// Segment returns a previously allocated segment.
func (m *MRAM) Segment(name string) (*Segment, bool) {
	s, ok := m.segs[name]
	return s, ok
}

// WRAM is the per-DPU scratchpad with the same named bump allocation. A
// cost-only WRAM tracks sizes without allocating bytes, like a cost-only
// MRAM. Like MRAM, released buffers are retired into a name-keyed recycle
// pool so repeated kernel runs on one DPU stop allocating.
type WRAM struct {
	capacity int
	used     int
	costOnly bool
	bufs     map[string]*Buffer
	retired  map[string]*Buffer
}

// Buffer is a named WRAM allocation. Size is always the allocated byte
// count; Data is nil on accounting DPUs.
type Buffer struct {
	Name string
	Size int
	Data []byte
}

// NewWRAM returns an empty scratchpad.
func NewWRAM(capacity int) *WRAM {
	return newWRAM(capacity, false)
}

// newWRAM returns a scratchpad, byte-less when costOnly.
func newWRAM(capacity int, costOnly bool) *WRAM {
	return &WRAM{
		capacity: capacity,
		costOnly: costOnly,
		bufs:     make(map[string]*Buffer),
		retired:  make(map[string]*Buffer),
	}
}

// Alloc reserves size bytes under name, failing when WRAM is exhausted —
// this is the constraint that caps p_local and k (§VI-D "k sensitivity").
func (w *WRAM) Alloc(name string, size int) (*Buffer, error) {
	if size <= 0 {
		return nil, fmt.Errorf("pim: WRAM alloc %q: size %d invalid", name, size)
	}
	if _, dup := w.bufs[name]; dup {
		return nil, fmt.Errorf("pim: WRAM alloc %q: duplicate buffer", name)
	}
	if w.used+size > w.capacity {
		return nil, fmt.Errorf("pim: WRAM alloc %q: %d bytes requested, %d of %d free",
			name, size, w.capacity-w.used, w.capacity)
	}
	buf, ok := w.retired[name]
	if ok {
		delete(w.retired, name)
	} else {
		buf = &Buffer{}
	}
	*buf = Buffer{Name: name, Size: size, Data: buf.Data}
	if !w.costOnly {
		if cap(buf.Data) >= size {
			buf.Data = buf.Data[:size]
			clear(buf.Data)
		} else {
			buf.Data = make([]byte, size)
		}
	} else {
		buf.Data = nil
	}
	w.used += size
	w.bufs[name] = buf
	return buf, nil
}

// Free releases a buffer into the recycle pool.
func (w *WRAM) Free(name string) error {
	buf, ok := w.bufs[name]
	if !ok {
		return fmt.Errorf("pim: WRAM free %q: no such buffer", name)
	}
	delete(w.bufs, name)
	w.retired[name] = buf
	w.used -= buf.Size
	return nil
}

// FreeAll releases every buffer (kernel teardown), retiring the backing
// arrays for reuse by the next same-named Alloc.
func (w *WRAM) FreeAll() {
	for name, buf := range w.bufs {
		w.retired[name] = buf
		delete(w.bufs, name)
	}
	w.used = 0
}

// Used returns allocated bytes.
func (w *WRAM) Used() int { return w.used }

// Capacity returns the scratchpad size.
func (w *WRAM) Capacity() int { return w.capacity }

// DPU bundles one bank's MRAM, WRAM and core, with a meter.
type DPU struct {
	Cfg   *Config
	MRAM  *MRAM
	WRAM  *WRAM
	Meter Meter
	// costOnly marks an accounting DPU (NewAccountingDPU): allocations are
	// segment-less and transfers are pure charges. Kernels consult it to
	// run their cost program instead of the data program.
	costOnly bool
}

// NewDPU builds a functional DPU under the config.
func NewDPU(cfg *Config) *DPU {
	return newDPU(cfg, false)
}

// NewAccountingDPU builds a cycles-only DPU: the same capacities, the same
// meter, the same charge arithmetic, but no backing bytes anywhere. It
// exists for cost-program execution, where timing and event counts — which
// are data-independent functions of the workload shape — are wanted without
// the byte-level functional simulation.
func NewAccountingDPU(cfg *Config) *DPU {
	return newDPU(cfg, true)
}

func newDPU(cfg *Config, costOnly bool) *DPU {
	return &DPU{
		Cfg:      cfg,
		MRAM:     newMRAM(cfg.MRAMBytes, costOnly),
		WRAM:     newWRAM(cfg.WRAMBytes, costOnly),
		costOnly: costOnly,
	}
}

// CostOnly reports whether this is an accounting (cycles-only) DPU.
func (d *DPU) CostOnly() bool { return d.costOnly }

// Exec charges n instructions of the class.
func (d *DPU) Exec(class EventClass, n int64) {
	if n <= 0 {
		return
	}
	d.Meter.add(class, n)
	switch class {
	case EvInstr, EvWRAMAccess:
		d.Meter.Cycles += n * d.Cfg.CyclesPerInstr
	case EvMul8:
		d.Meter.Cycles += n * d.Cfg.CyclesPerMul8
	case EvMul32:
		d.Meter.Cycles += n * d.Cfg.CyclesPerMul32
	default:
		panic(fmt.Sprintf("pim: Exec called with non-instruction class %v", class))
	}
}

// Note records n events of a class without charging cycles — used for
// counts whose cycle cost is already folded into instruction charges (e.g.
// WRAM data accesses) but which the energy model prices separately.
func (d *DPU) Note(class EventClass, n int64) {
	if n > 0 {
		d.Meter.add(class, n)
	}
}

// dmaCycles prices one DMA transfer of n bytes.
func (d *DPU) dmaCycles(n int64) int64 {
	return d.Cfg.DMASetupCycles + int64(float64(n)/d.Cfg.DMABytesPerCycle+0.999999)
}

// DMARead copies seg[off:off+len(dst)] into dst (an MRAM -> WRAM transfer)
// and charges the DMA engine.
func (d *DPU) DMARead(seg *Segment, off int64, dst []byte) error {
	if off < 0 || off+int64(len(dst)) > seg.Size {
		return fmt.Errorf("pim: DMARead %q: range [%d,%d) outside segment of %d bytes",
			seg.Name, off, off+int64(len(dst)), seg.Size)
	}
	if seg.Data == nil && len(dst) > 0 {
		return fmt.Errorf("pim: DMARead %q: segment is a size-only reservation (use ChargeDMARead)", seg.Name)
	}
	copy(dst, seg.Data[off:])
	n := int64(len(dst))
	d.Meter.add(EvDMARead, n)
	d.Meter.Cycles += d.dmaCycles(n)
	return nil
}

// DMAWrite copies src into seg[off:] (a WRAM -> MRAM transfer).
func (d *DPU) DMAWrite(seg *Segment, off int64, src []byte) error {
	if seg.ro {
		return fmt.Errorf("pim: DMAWrite %q: segment is a read-only mapping", seg.Name)
	}
	if off < 0 || off+int64(len(src)) > seg.Size {
		return fmt.Errorf("pim: DMAWrite %q: range [%d,%d) outside segment of %d bytes",
			seg.Name, off, off+int64(len(src)), seg.Size)
	}
	if seg.Data == nil && len(src) > 0 {
		return fmt.Errorf("pim: DMAWrite %q: segment is a size-only reservation (use ChargeDMAWrite)", seg.Name)
	}
	copy(seg.Data[off:], src)
	n := int64(len(src))
	d.Meter.add(EvDMAWrite, n)
	d.Meter.Cycles += d.dmaCycles(n)
	return nil
}

// ChargeDMARead charges one MRAM -> WRAM transfer of n bytes from the
// segment without moving data: exactly the cycles and event counts of a
// DMARead of the same size, with only the bounds check and the meter. It is
// the cost-program counterpart of DMARead.
func (d *DPU) ChargeDMARead(seg *Segment, off, n int64) error {
	if off < 0 || off+n > seg.Size {
		return fmt.Errorf("pim: DMARead %q: range [%d,%d) outside segment of %d bytes",
			seg.Name, off, off+n, seg.Size)
	}
	d.Meter.add(EvDMARead, n)
	d.Meter.Cycles += d.dmaCycles(n)
	return nil
}

// ChargeDMAReads charges count back-to-back transfers of n bytes each from
// the segment. It folds a loop of equal-sized DMAReads into one meter update:
// each transfer costs dmaCycles(n), so the aggregate is exact. It is meant
// for trains whose offsets are data-dependent (LUT entry and slice
// addresses): only the transfer size is checked against the segment,
// because without data an out-of-bounds offset that a functional run would
// report cannot be detected. Shape-derived trains should use
// ChargeDMAReadSeq, which keeps the bounds check.
func (d *DPU) ChargeDMAReads(seg *Segment, count, n int64) error {
	if count <= 0 {
		return nil
	}
	if n < 0 || n > seg.Size {
		return fmt.Errorf("pim: DMARead %q: %d-byte transfer outside segment of %d bytes",
			seg.Name, n, seg.Size)
	}
	d.Meter.add(EvDMARead, count*n)
	d.Meter.Cycles += count * d.dmaCycles(n)
	return nil
}

// ChargeDMAReadSeq charges count transfers of n bytes each at offsets off,
// off+stride, off+2*stride, ... — the cost-program counterpart of a strided
// DMARead loop with shape-derived addresses. Checking the first and last
// transfer bounds covers every intermediate one (offsets are monotone in
// the stride), so a layout bug a functional run would report fails here
// identically.
func (d *DPU) ChargeDMAReadSeq(seg *Segment, off, stride, count, n int64) error {
	if count <= 0 {
		return nil
	}
	last := off + (count-1)*stride
	lo, hi := off, last
	if stride < 0 {
		lo, hi = last, off
	}
	if lo < 0 || hi+n > seg.Size {
		return fmt.Errorf("pim: DMARead %q: strided train [%d..%d)+%d outside segment of %d bytes",
			seg.Name, lo, hi, n, seg.Size)
	}
	d.Meter.add(EvDMARead, count*n)
	d.Meter.Cycles += count * d.dmaCycles(n)
	return nil
}

// ChargeDMAWrite charges one WRAM -> MRAM transfer of n bytes without moving
// data — the cost-program counterpart of DMAWrite, including its read-only
// refusal.
func (d *DPU) ChargeDMAWrite(seg *Segment, off, n int64) error {
	if seg.ro {
		return fmt.Errorf("pim: DMAWrite %q: segment is a read-only mapping", seg.Name)
	}
	if off < 0 || off+n > seg.Size {
		return fmt.Errorf("pim: DMAWrite %q: range [%d,%d) outside segment of %d bytes",
			seg.Name, off, off+n, seg.Size)
	}
	d.Meter.add(EvDMAWrite, n)
	d.Meter.Cycles += d.dmaCycles(n)
	return nil
}

// Seconds returns this DPU's elapsed simulated time.
func (d *DPU) Seconds() float64 { return d.Cfg.Seconds(d.Meter.Cycles) }

// Reset clears meter, WRAM and MRAM allocations for kernel reuse,
// preserving the DPU's mode. The memories are recycled, not reallocated:
// retired segment and buffer backing arrays are reused (zeroed) by the next
// same-named allocation, so a DPU that reruns kernels of one shape settles
// into an allocation-free steady state.
func (d *DPU) Reset() {
	d.Meter.Reset()
	d.WRAM.FreeAll()
	d.MRAM.Reset()
}

// System models the whole PIM server: a host connected to NumDPUs banks.
// Because GEMM tiling gives every bank an identical-shaped tile, the system
// simulates one representative DPU per distinct tile shape and scales
// host-link costs by the real byte totals.
type System struct {
	Cfg Config
	// HostSeconds accumulates host-side compute time (quantize/sort/pack).
	HostSeconds float64
	// TransferSeconds accumulates host<->PIM link time.
	TransferSeconds float64
	// KernelSeconds accumulates PIM kernel wall time (max over banks).
	KernelSeconds float64
	// Meter aggregates event counts across all banks for energy accounting.
	Meter Meter
}

// NewSystem validates cfg and returns a fresh system.
func NewSystem(cfg Config) (*System, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &System{Cfg: cfg}, nil
}

// ChargeHostToPIM accounts a scatter of n total bytes to distinct banks.
func (s *System) ChargeHostToPIM(n int64) {
	s.TransferSeconds += float64(n) / s.Cfg.HostToPIMBW
	s.Meter.add(EvHostToPIM, n)
}

// ChargeBroadcast accounts a broadcast of n bytes to every bank (n is the
// payload size, not multiplied by bank count — the channel streams it once
// per rank in parallel).
func (s *System) ChargeBroadcast(n int64) {
	s.TransferSeconds += float64(n) / s.Cfg.HostBroadcastBW
	s.Meter.add(EvHostToPIM, n)
}

// ChargePIMToHost accounts a gather of n total bytes.
func (s *System) ChargePIMToHost(n int64) {
	s.TransferSeconds += float64(n) / s.Cfg.PIMToHostBW
	s.Meter.add(EvPIMToHost, n)
}

// TotalSeconds returns the end-to-end time of everything charged so far.
func (s *System) TotalSeconds() float64 {
	return s.HostSeconds + s.TransferSeconds + s.KernelSeconds
}
