package gemm

import (
	"fmt"
	"reflect"

	"github.com/ais-snu/localut/internal/costmodel"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/workload"
)

// Engine bundles the machine configuration and cost tables. An engine is
// safe for concurrent use as long as its configuration fields are not
// mutated while runs are in flight (use Clone to vary them).
type Engine struct {
	Cfg   pim.Config
	Costs kernels.Costs
	Model costmodel.Model
	// HostOpsPerSec is the host's effective scalar throughput for the
	// quantize/sort/pack pipeline (multicore Xeon-class).
	HostOpsPerSec float64
	// Exec selects the host-side execution strategy (worker-pool size,
	// representative-tile vs full-grid bank simulation).
	Exec ExecOptions
	// Decisions memoizes cost-model choices across runs, batch members and
	// bank shards. Nil falls back to uncached selection.
	Decisions *costmodel.Cache
	// CostRecords memoizes cycles-only bank cost records across runs, batch
	// members and bank shards (the key embeds the machine config and cost
	// table, so sharing it across Clone'd engines is safe). Nil falls back
	// to unmemoized cost runs.
	CostRecords *CostMemo
	// arenas recycles per-worker execution contexts (DPU, kernel workspace,
	// tile storage) across runs, batch members and bank shards. Shared by
	// Clone'd engines; arenas rebind to each engine's Cfg on acquisition.
	arenas *arenaPool
	// refs memoizes the full reference product used to verify functional
	// full-grid runs, shared across the designs run on one pair.
	refs *refCache
}

// NewEngine returns an engine with the paper's testbed defaults.
func NewEngine() *Engine {
	return &Engine{
		Cfg:           pim.DefaultConfig(),
		Costs:         kernels.DefaultCosts(),
		Model:         costmodel.Default(),
		HostOpsPerSec: 2e10,
		Decisions:     costmodel.NewCache(),
		CostRecords:   NewCostMemo(),
		arenas:        newArenaPool(),
		refs:          &refCache{},
	}
}

// choose routes a §IV-D decision through the memoized cache when present.
func (e *Engine) choose(f quant.Format, m, k, n int) (costmodel.Choice, error) {
	if e.Decisions != nil {
		return e.Decisions.Choose(e.Model, f, m, k, n, &e.Cfg)
	}
	return costmodel.Choose(e.Model, f, m, k, n, &e.Cfg)
}

// chooseForVariant is the cached packing-degree pick for the fixed designs.
func (e *Engine) chooseForVariant(f quant.Format, kind costmodel.SizeKind) (int, error) {
	if e.Decisions != nil {
		return e.Decisions.ChooseForVariant(f, kind, &e.Cfg)
	}
	return costmodel.ChooseForVariant(f, kind, &e.Cfg)
}

// Options selects the design point and reporting detail for one GEMM.
type Options struct {
	// Variant picks the kernel design.
	Variant kernels.Variant
	// ForceP overrides the packing degree (0 = cost-model choice).
	ForceP int
	// ForceK overrides the slice batch (0 = cost-model choice).
	ForceK int
	// ForceStreaming forces LUT residence for the LoCaLUT variant when
	// ForceP is set: true = slice streaming even if the buffer would fit.
	ForceStreaming bool
	// ComputeFull additionally computes the full integer output on the
	// host reference (O(MKN) work — only for small shapes).
	ComputeFull bool
	// NSplitOnly uses the paper's simple context-parallel tiling — split
	// the output columns across banks, full M per bank — instead of the
	// utilization-optimizing planner. The figure experiments use this to
	// match the paper's per-bank workload.
	NSplitOnly bool
}

// HostBreakdown itemizes host-side seconds (Fig. 16(a) categories).
type HostBreakdown struct {
	Quantize float64 // activation quantization
	SortPack float64 // canonicalize: sort, pack, rank (LUT variants)
	Dequant  float64 // output dequantization ("Others" in Fig. 16(a))
}

// Total sums the host phases.
func (h HostBreakdown) Total() float64 { return h.Quantize + h.SortPack + h.Dequant }

// Report describes one orchestrated GEMM execution.
type Report struct {
	Variant       kernels.Variant
	P             int
	K             int
	Streaming     bool
	GridM, GridN  int
	TileM, TileN  int
	Rounds        int // sequential passes when tiles exceed bank count
	KernelSeconds float64
	// KernelCycles is the simulated wall-clock cycle count behind
	// KernelSeconds (sum over rounds of the slowest bank per round). It is
	// exactly reproducible across host parallelism levels.
	KernelCycles int64
	// BanksSimulated counts the bank tiles actually executed: the full grid
	// under ExecOptions.FullGrid, 1 in representative mode.
	BanksSimulated int
	HostSeconds    float64
	Transfer       float64
	InitSeconds    float64 // LUT build/broadcast + weight staging (amortized)
	Total          float64 // host + transfer + kernel (steady state)
	Host           HostBreakdown
	HostOps        int64
	Breakdown      kernels.Breakdown
	Meter          pim.Meter // events aggregated over all executed tiles
	Verified       bool
	Output         []int32 // full output when Options.ComputeFull
}

// tileMMax bounds the per-bank weight-row count by the WRAM space left for
// the output column accumulator after the LUT budget and staging buffers.
func (e *Engine) tileMMax() int {
	slack := 8192 // metadata, weight chunks, staging
	avail := e.Cfg.WRAMBytes - int(e.Cfg.WRAMLUTBudget()) - slack
	if avail < 4 {
		return 1
	}
	return avail / 4
}

// planGrid picks the bank grid for a variant: N is split first (context
// parallelism, one or more columns per bank); M-splitting trades bank
// utilization against per-tile fixed costs (WRAM LUT loads, slice reuse),
// so candidate grids are scored with a per-variant cycle estimate and the
// cheapest wall-clock wins.
func (e *Engine) planGrid(v kernels.Variant, f quant.Format, m, k, n int) (gridM, gridN, rounds int) {
	dpus := e.Cfg.NumDPUs()
	gridN = n
	if gridN > dpus {
		gridN = dpus
	}
	tileN := (n + gridN - 1) / gridN
	maxTileM := e.tileMMax()
	minGridM := (m + maxTileM - 1) / maxTileM

	bestCost := 0.0
	gridM = 0
	for cand := minGridM; cand <= m; cand = nextGridM(cand) {
		tileM := (m + cand - 1) / cand
		r := (cand*gridN + dpus - 1) / dpus
		cost := e.estimateTileCycles(v, f, tileM, k, tileN) * float64(r)
		if gridM == 0 || cost < bestCost {
			gridM, bestCost, rounds = cand, cost, r
		}
		if cand*gridN >= dpus {
			break // more splitting only adds rounds
		}
	}
	if gridM == 0 {
		gridM, rounds = minGridM, 1
	}
	return gridM, gridN, rounds
}

// nextGridM enumerates candidate M-splits: doubling from the minimum.
func nextGridM(cur int) int {
	if cur < 1 {
		return 1
	}
	return cur * 2
}

// estimateTileCycles is a fast analytic per-tile kernel cycle estimate used
// only for grid planning; the real timing comes from simulation.
func (e *Engine) estimateTileCycles(v kernels.Variant, f quant.Format, tileM, k, tileN int) float64 {
	mnk := float64(tileM) * float64(k) * float64(tileN)
	dmaRate := e.Cfg.DMABytesPerCycle
	switch v {
	case kernels.Naive:
		return mnk * float64(e.Costs.NaiveMACInstr+e.Cfg.CyclesPerMul8)
	case kernels.LTC:
		g4 := float64((k + 3) / 4)
		bw := float64(f.Weight.Bits)
		build := float64(tileN) * g4 * 16 * float64(e.Costs.LTCTableBuildInstr)
		look := float64(tileM) * float64(tileN) * g4 * bw * float64(e.Costs.LTCGroupInstr)
		wdma := float64(tileM) * float64(tileN) * (bw*g4/2/dmaRate + float64(e.Cfg.DMASetupCycles))
		return build + look + wdma
	case kernels.OP, kernels.OPLC, kernels.OPLCRC:
		kind := costmodel.SizeOpPacked
		perGroup := float64(e.Costs.OPGroupInstr)
		switch v {
		case kernels.OPLC:
			kind = costmodel.SizeCanonical
		case kernels.OPLCRC:
			kind = costmodel.SizeCombined
			perGroup = float64(e.Costs.RCIdxCalcInstr + e.Costs.RCReorderAccInstr +
				e.Costs.RCCanonAccInstr + e.Costs.RCAccumInstr)
		}
		p := costmodel.MaxP(f, e.Cfg.WRAMLUTBudget(), kind)
		if p < 1 {
			p = 1
		}
		spec, err := lut.NewSpec(f, p)
		if err != nil {
			return mnk
		}
		if v == kernels.OPLC {
			perGroup = float64(e.Costs.LCSWPerElement)*float64(p) + float64(e.Costs.LCSWGroupInstr)
		}
		lutLoad := float64(specSizeFor(spec, kind)) / dmaRate
		groups := float64((k + p - 1) / p)
		return lutLoad + float64(tileM)*float64(tileN)*groups*perGroup
	case kernels.LoCaLUT:
		choice, err := e.choose(f, tileM, k, tileN)
		if err != nil {
			return mnk
		}
		return choice.PredictedSeconds * e.Cfg.ClockHz
	}
	return mnk
}

func specSizeFor(s lut.Spec, kind costmodel.SizeKind) int64 {
	switch kind {
	case costmodel.SizeOpPacked:
		return s.OpPackedBytes()
	case costmodel.SizeCanonical:
		return s.CanonicalBytes()
	default:
		return s.CombinedBytes()
	}
}

// plan resolves the kernel and its parameters for the tile shape.
func (e *Engine) plan(f quant.Format, tileM, k, tileN int, opt Options) (kernels.Kernel, int, int, bool, error) {
	switch opt.Variant {
	case kernels.Naive:
		return kernels.NewNaiveKernel(e.Costs), 0, 0, false, nil
	case kernels.LTC:
		return kernels.NewLTCKernel(e.Costs), 0, 0, false, nil
	case kernels.OP:
		p := opt.ForceP
		if p == 0 {
			var err error
			if p, err = e.chooseForVariant(f, costmodel.SizeOpPacked); err != nil {
				return nil, 0, 0, false, err
			}
		}
		return kernels.NewOPKernel(e.Costs, lut.MustSpec(f, p)), p, 0, false, nil
	case kernels.OPLC:
		p := opt.ForceP
		if p == 0 {
			var err error
			if p, err = e.chooseForVariant(f, costmodel.SizeCanonical); err != nil {
				return nil, 0, 0, false, err
			}
		}
		return kernels.NewOPLCKernel(e.Costs, lut.MustSpec(f, p)), p, 0, false, nil
	case kernels.OPLCRC:
		p := opt.ForceP
		if p == 0 {
			var err error
			if p, err = e.chooseForVariant(f, costmodel.SizeCombined); err != nil {
				return nil, 0, 0, false, err
			}
		}
		return kernels.NewOPLCRCKernel(e.Costs, lut.MustSpec(f, p)), p, 0, false, nil
	case kernels.LoCaLUT:
		// The full design consults the cost model per shape (§V-A) and
		// falls back to the buffer-resident kernel when streaming loses.
		var choice costmodel.Choice
		if opt.ForceP != 0 {
			choice = costmodel.Choice{P: opt.ForceP, Streaming: opt.ForceStreaming, K: opt.ForceK}
			if choice.K == 0 {
				choice.K = costmodel.MaxSliceK(lut.MustSpec(f, opt.ForceP), &e.Cfg)
				if choice.K == 0 {
					choice.K = 1
				}
			}
		} else {
			var err error
			choice, err = e.choose(f, tileM, k, tileN)
			if err != nil {
				return nil, 0, 0, false, err
			}
			if opt.ForceK != 0 {
				choice.K = opt.ForceK
			}
		}
		if choice.Streaming {
			return kernels.NewStreamKernel(e.Costs, lut.MustSpec(f, choice.P), choice.K),
				choice.P, choice.K, true, nil
		}
		return kernels.NewOPLCRCKernel(e.Costs, lut.MustSpec(f, choice.P)), choice.P, 1, false, nil
	}
	return nil, 0, 0, false, fmt.Errorf("gemm: unknown variant %v", opt.Variant)
}

// Run executes one GEMM on the simulated system.
func (e *Engine) Run(pair *workload.GEMMPair, opt Options) (*Report, error) {
	if err := e.Cfg.Validate(); err != nil {
		return nil, err
	}
	if pair.W == nil || pair.A == nil {
		// Shape-only pairs (workload.NewShapePair) carry no operand data;
		// only the cycles-only cost programs can run without it.
		if e.Exec.Mode != kernels.CyclesOnly {
			return nil, fmt.Errorf("gemm: shape-only pair requires cycles-only execution mode")
		}
		if opt.ComputeFull {
			return nil, fmt.Errorf("gemm: cannot compute the full output of a shape-only pair")
		}
	}
	var gridM, gridN, rounds int
	if opt.NSplitOnly {
		gridN = pair.N
		if gridN > e.Cfg.NumDPUs() {
			gridN = e.Cfg.NumDPUs()
		}
		gridM = (pair.M + e.tileMMax() - 1) / e.tileMMax()
		rounds = (gridM*gridN + e.Cfg.NumDPUs() - 1) / e.Cfg.NumDPUs()
	} else {
		gridM, gridN, rounds = e.planGrid(opt.Variant, pair.Fmt, pair.M, pair.K, pair.N)
	}
	tileM := (pair.M + gridM - 1) / gridM
	tileN := (pair.N + gridN - 1) / gridN

	kn, p, sliceK, streaming, err := e.plan(pair.Fmt, tileM, pair.K, tileN, opt)
	if err != nil {
		return nil, err
	}

	rep := &Report{
		Variant: opt.Variant, P: p, K: sliceK, Streaming: streaming,
		GridM: gridM, GridN: gridN, TileM: tileM, TileN: tileN, Rounds: rounds,
	}

	if e.Exec.FullGrid {
		// Sharded per-bank simulation of the whole grid.
		if err := e.simulateGrid(pair, kn, rep, opt.ComputeFull); err != nil {
			return nil, err
		}
	} else if e.Exec.Mode == kernels.CyclesOnly {
		// Representative tile, cost program only: the same charges the
		// functional representative run makes, memoized by shape.
		rec, err := e.runCost(kn, rep, pair.Fmt, tileM, pair.K, tileN)
		if err != nil {
			return nil, err
		}
		rep.KernelSeconds = e.Cfg.Seconds(rec.cycles) * float64(rounds)
		rep.KernelCycles = rec.cycles * int64(rounds)
		rep.Breakdown = rec.breakdown
		rep.Verified = false
		rep.BanksSimulated = 1

		tiles := gridM * gridN
		rep.Meter = rec.meter
		for i := range rep.Meter.Counts {
			rep.Meter.Counts[i] *= int64(tiles)
		}
	} else if e.Exec.NoArena {
		// Representative tile, reference path: fresh DPU and tile.
		tile, err := e.buildTile(pair, tileM, tileN)
		if err != nil {
			return nil, err
		}
		dpu := pim.NewDPU(&e.Cfg)
		res, err := kn.Run(dpu, tile)
		if err != nil {
			return nil, err
		}

		// Continuous functionality check (Appendix F).
		if !reflect.DeepEqual(tile.O, kernels.RefGEMM(tile)) {
			return nil, fmt.Errorf("gemm: %s kernel output failed verification on the representative tile", kn.Name())
		}
		e.finishRepresentative(rep, res.Cycles, &dpu.Meter, &res.Breakdown, rounds, gridM*gridN)
	} else {
		// Representative tile: bank (0,0)'s share stands in for the grid,
		// executed through a pooled arena so repeated runs (a serving
		// trace replaying one layer shape) stop allocating.
		pool := e.pool()
		ar := pool.get(&e.Cfg)
		defer pool.put(ar)
		tile := ar.tileFor(pair, bankTask{m0: 0, n0: 0, tileM: tileM, tileN: tileN})
		res, err := kn.RunRequest(ar.request(tile))
		if err != nil {
			return nil, err
		}

		// Continuous functionality check (Appendix F).
		if !kernels.VerifyTile(ar.ws, tile) {
			return nil, fmt.Errorf("gemm: %s kernel output failed verification on the representative tile", kn.Name())
		}
		e.finishRepresentative(rep, res.Cycles, &ar.dpu.Meter, &res.Breakdown, rounds, gridM*gridN)
	}

	e.chargeHost(rep, pair, p, opt.Variant)
	e.chargeTransfers(rep, pair, p, opt.Variant, gridM, gridN)
	e.chargeInit(rep, pair, p, opt.Variant, streaming, gridN)

	rep.Total = rep.HostSeconds + rep.Transfer + rep.KernelSeconds

	if opt.ComputeFull && rep.Output == nil {
		full, err := fullTile(pair)
		if err != nil {
			return nil, err
		}
		rep.Output = kernels.RefGEMM(full)
	}
	return rep, nil
}

// finishRepresentative fills the report fields shared by both
// representative-tile functional paths: extrapolated timing, breakdown,
// and device events scaled to the full grid for the energy model.
func (e *Engine) finishRepresentative(rep *Report, cycles int64, meter *pim.Meter,
	b *kernels.Breakdown, rounds, tiles int) {
	rep.KernelSeconds = e.Cfg.Seconds(cycles) * float64(rounds)
	rep.KernelCycles = cycles * int64(rounds)
	rep.Breakdown = *b
	rep.Verified = true
	rep.BanksSimulated = 1
	rep.Meter = *meter
	for i := range rep.Meter.Counts {
		rep.Meter.Counts[i] *= int64(tiles)
	}
}

// buildTile extracts bank (0,0)'s tile from the pair.
func (e *Engine) buildTile(pair *workload.GEMMPair, tileM, tileN int) (*kernels.Tile, error) {
	w := make([]uint8, tileM*pair.K)
	for m := 0; m < tileM; m++ {
		copy(w[m*pair.K:(m+1)*pair.K], pair.W.Codes[m*pair.K:(m+1)*pair.K])
	}
	a := make([]uint8, pair.K*tileN)
	for k := 0; k < pair.K; k++ {
		copy(a[k*tileN:(k+1)*tileN], pair.A.Codes[k*pair.N:k*pair.N+tileN])
	}
	return kernels.NewTile(tileM, pair.K, tileN, pair.Fmt, w, a)
}

func fullTile(pair *workload.GEMMPair) (*kernels.Tile, error) {
	return kernels.NewTile(pair.M, pair.K, pair.N, pair.Fmt, pair.W.Codes, pair.A.Codes)
}

// hostOp charges n scalar host operations and returns their seconds.
func (e *Engine) hostSeconds(n int64) float64 { return float64(n) / e.HostOpsPerSec }

// chargeHost accounts the online host pipeline: activation quantization,
// canonicalization (sort + pack + rank) for LUT variants, and output
// dequantization. Weight-side preparation is offline (chargeInit).
func (e *Engine) chargeHost(rep *Report, pair *workload.GEMMPair, p int, v kernels.Variant) {
	actElems := int64(pair.K) * int64(pair.N)
	outElems := int64(pair.M) * int64(pair.N)

	quantOps := actElems * 2 // scale-divide + round per activation
	var sortOps int64
	switch v {
	case kernels.Naive:
		// int8 decode only.
		sortOps = actElems
	case kernels.LTC:
		// int8 decode + per-column sum.
		sortOps = actElems * 2
	case kernels.OP:
		// pack p codes per group.
		sortOps = actElems * 2
	default:
		// Canonicalization: sort p elements (~p log p compares+swaps),
		// pack, multiset-rank and Lehmer-rank per group: ~6 ops/element.
		sortOps = actElems * 6
	}
	dequantOps := outElems * 2

	rep.Host = HostBreakdown{
		Quantize: e.hostSeconds(quantOps),
		SortPack: e.hostSeconds(sortOps),
		Dequant:  e.hostSeconds(dequantOps),
	}
	rep.HostOps = quantOps + sortOps + dequantOps
	rep.HostSeconds = rep.Host.Total()
}

// actBytesPerColumn returns the per-column activation payload each bank
// receives under the variant's staging format.
func actBytesPerColumn(f quant.Format, K, p int, v kernels.Variant) int64 {
	switch v {
	case kernels.Naive:
		return int64(K)
	case kernels.LTC:
		return int64(K) + 4
	default:
		g := int64((K + p - 1) / p)
		return g * int64(kernels.MetaRecordBytes(v, lut.MustSpec(f, p)))
	}
}

// chargeTransfers accounts the steady-state host<->PIM traffic: activation
// metadata scattered to the N-stripes, its replication to the gridM
// M-stripes (identical payloads, shipped with UPMEM's rank-symmetric
// broadcast), and the output gather.
func (e *Engine) chargeTransfers(rep *Report, pair *workload.GEMMPair, p int, v kernels.Variant, gridM, gridN int) {
	unique := actBytesPerColumn(pair.Fmt, pair.K, p, v) * int64(pair.N)
	outBytes := int64(pair.M) * int64(pair.N) * 4
	rep.Transfer = float64(unique)/e.Cfg.HostToPIMBW + float64(outBytes)/e.Cfg.PIMToHostBW
	if gridM > 1 {
		rep.Transfer += float64(unique) / e.Cfg.HostBroadcastBW
	}
	rep.Meter.Counts[pim.EvHostToPIM] += unique * int64(min2(gridM, 2))
	rep.Meter.Counts[pim.EvPIMToHost] += outBytes
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// chargeInit accounts one-time per-layer setup: LUT construction on the
// host, LUT broadcast to all banks, and weight staging (weights are
// replicated across the gridN column stripes).
func (e *Engine) chargeInit(rep *Report, pair *workload.GEMMPair, p int, v kernels.Variant, streaming bool, gridN int) {
	var lutBytes int64
	switch v {
	case kernels.OP:
		lutBytes = lut.MustSpec(pair.Fmt, p).OpPackedBytes()
	case kernels.OPLC:
		lutBytes = lut.MustSpec(pair.Fmt, p).CanonicalBytes()
	case kernels.OPLCRC, kernels.LoCaLUT:
		lutBytes = lut.MustSpec(pair.Fmt, p).CombinedBytes()
	}
	wBytes := int64(pair.M) * int64((pair.K+max(p, 1)-1)/max(p, 1))
	if v == kernels.Naive || v == kernels.LTC {
		wBytes = int64(pair.M) * int64(pair.K)
	}
	// Weight tiles are identical across the gridN column stripes, so their
	// replication also rides the broadcast path.
	wXfer := float64(wBytes) / e.Cfg.HostToPIMBW
	if gridN > 1 {
		wXfer += float64(wBytes) / e.Cfg.HostBroadcastBW
	}
	rep.InitSeconds = e.hostSeconds(lutBytes*2) + // host-side table fill
		float64(lutBytes)/e.Cfg.HostBroadcastBW + wXfer
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Speedup is a convenience: baseline.Total / candidate.Total.
func Speedup(baseline, candidate *Report) float64 {
	return baseline.Total / candidate.Total
}
