package gemm

import (
	"sync"
	"testing"

	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
)

// Contention micro-benchmarks for the cost-record memo. The "before" shape
// — one mutex guarding one map, exactly what CostMemo was prior to
// lock-striping — is reimplemented here as the baseline so the two designs
// stay comparable in one run:
//
//	go test -bench CostMemoContention -cpu 1,4,8 ./internal/gemm/
//
// Workers replay a small working set of hot keys (a serving trace replaying
// a few layer shapes), which is the worst case for a global lock: every
// lookup is a hit, so the critical section is all there is.

// singleLockMemo is the pre-sharding CostMemo, kept as the benchmark
// baseline.
type singleLockMemo struct {
	mu   sync.Mutex
	recs map[costKey]costRecord
}

func (c *singleLockMemo) lookup(key costKey) (costRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.recs[key]
	return rec, ok
}

func (c *singleLockMemo) store(key costKey, rec costRecord) {
	c.mu.Lock()
	c.recs[key] = rec
	c.mu.Unlock()
}

// benchKeys builds a working set of distinct memo keys.
func benchKeys(n int) []costKey {
	keys := make([]costKey, n)
	for i := range keys {
		keys[i] = costKey{
			variant: kernels.LoCaLUT, fmt: quant.W1A3,
			p: 5, sliceK: 2, streaming: true,
			m: 64 + i, k: 256, n: 1 + i%7,
		}
	}
	return keys
}

func BenchmarkCostMemoContentionSingleLock(b *testing.B) {
	memo := &singleLockMemo{recs: make(map[costKey]costRecord)}
	keys := benchKeys(16)
	for _, k := range keys {
		memo.store(k, costRecord{cycles: int64(k.m)})
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if rec, ok := memo.lookup(keys[i%len(keys)]); !ok || rec.cycles == 0 {
				b.Fail()
			}
			i++
		}
	})
}

func BenchmarkCostMemoContentionSharded(b *testing.B) {
	memo := NewCostMemo()
	keys := benchKeys(16)
	for _, k := range keys {
		memo.store(k, costRecord{cycles: int64(k.m)})
	}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if rec, ok := memo.lookup(keys[i%len(keys)]); !ok || rec.cycles == 0 {
				b.Fail()
			}
			i++
		}
	})
}
