package gemm

import (
	"testing"

	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/workload"
)

// TestEstimatorTracksSimulation: the grid planner's analytic per-tile
// estimate must stay within a factor of ~2 of the simulated kernel cycles,
// or grid choices would be garbage.
func TestEstimatorTracksSimulation(t *testing.T) {
	e := NewEngine()
	for _, v := range kernels.Variants {
		for _, f := range []quant.Format{quant.W1A3, quant.W4A4} {
			pair := workload.NewGEMMPair(256, 256, 4, f, 3)
			rep, err := e.Run(pair, Options{Variant: v, NSplitOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			est := e.estimateTileCycles(v, f, rep.TileM, 256, rep.TileN)
			sim := rep.KernelSeconds * e.Cfg.ClockHz
			ratio := est / sim
			if ratio < 0.3 || ratio > 3.0 {
				t.Errorf("%v %s: estimate/sim ratio %.2f (est %.0f sim %.0f)",
					v, f.Name(), ratio, est, sim)
			}
		}
	}
}

// TestTransferBroadcastModel: replicating A-metadata across M-stripes must
// cost one scatter plus one broadcast, not gridM scatters.
func TestTransferBroadcastModel(t *testing.T) {
	e := NewEngine()
	pair := workload.NewGEMMPair(2048, 256, 8, quant.W1A3, 3)
	rep, err := e.Run(pair, Options{Variant: kernels.Naive})
	if err != nil {
		t.Fatal(err)
	}
	if rep.GridM < 2 {
		t.Skip("planner did not split M")
	}
	unique := float64(256 * 8) // naive ships K x N bytes
	maxXfer := unique/e.Cfg.HostToPIMBW + unique/e.Cfg.HostBroadcastBW +
		float64(2048*8*4)/e.Cfg.PIMToHostBW
	if rep.Transfer > maxXfer*1.01 {
		t.Errorf("transfer %.3g exceeds broadcast-model bound %.3g (gridM=%d)",
			rep.Transfer, maxXfer, rep.GridM)
	}
}

// TestInitChargedOncePerLayer: InitSeconds must cover LUT build + broadcast
// and grow with the LUT size.
func TestInitChargedOncePerLayer(t *testing.T) {
	e := NewEngine()
	pair := workload.NewGEMMPair(128, 128, 8, quant.W1A3, 3)
	small, err := e.Run(pair, Options{Variant: kernels.OP}) // p=3, 8 KB LUT
	if err != nil {
		t.Fatal(err)
	}
	big, err := e.Run(pair, Options{Variant: kernels.LoCaLUT, ForceP: 8, ForceStreaming: true})
	if err != nil {
		t.Fatal(err)
	}
	if big.InitSeconds <= small.InitSeconds {
		t.Errorf("12 MB LUT init (%.3g) should exceed 8 KB LUT init (%.3g)",
			big.InitSeconds, small.InitSeconds)
	}
}

// TestEngineRejectsInvalidConfig: configuration errors must surface.
func TestEngineRejectsInvalidConfig(t *testing.T) {
	e := NewEngine()
	e.Cfg.Ranks = 0
	pair := workload.NewGEMMPair(16, 16, 2, quant.W1A3, 1)
	if _, err := e.Run(pair, Options{Variant: kernels.Naive}); err == nil {
		t.Error("accepted Ranks=0")
	}
}

// TestMetaRecordWidths pins the transfer-relevant record sizes.
func TestMetaRecordWidths(t *testing.T) {
	cases := []struct {
		v    kernels.Variant
		f    quant.Format
		p    int
		want int64
	}{
		{kernels.LoCaLUT, quant.W1A3, 8, 8}, // 4 B canonical offset + 4 B reorder offset
		{kernels.OPLCRC, quant.W2A2, 4, 4},  // 2 B + 2 B
		{kernels.OP, quant.W1A3, 3, 2},      // 512-entry row -> 2 B
	}
	for _, c := range cases {
		got := actBytesPerColumn(c.f, c.p, c.p, c.v) // K = p -> one group
		if got != c.want {
			t.Errorf("%v %s p=%d: record = %d B, want %d", c.v, c.f.Name(), c.p, got, c.want)
		}
	}
}
