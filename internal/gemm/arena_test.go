package gemm

import (
	"reflect"
	"sync"
	"testing"

	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/workload"
)

// reportsEqual compares everything a Report derives from simulation.
func reportsEqual(a, b *Report) bool {
	return a.KernelCycles == b.KernelCycles && a.Total == b.Total &&
		a.Meter == b.Meter && a.Breakdown == b.Breakdown &&
		a.P == b.P && a.K == b.K && a.Verified == b.Verified &&
		reflect.DeepEqual(a.Output, b.Output)
}

// TestPooledMatchesNoArena is the pooled engine's equivalence guarantee:
// per-worker arenas (recycled DPUs, workspaces, tile storage, memoized
// reference verification) produce bit-identical reports to the NoArena
// reference path, for every design, in full-grid and representative modes,
// serial and parallel.
func TestPooledMatchesNoArena(t *testing.T) {
	const m, k, n = 96, 64, 24
	for _, fullGrid := range []bool{true, false} {
		for _, par := range []int{1, 8} {
			for _, v := range kernels.Variants {
				run := func(noArena bool) *Report {
					e := NewEngine()
					e.Exec = ExecOptions{Parallelism: par, FullGrid: fullGrid, NoArena: noArena}
					rep, err := e.Run(workload.NewGEMMPair(m, k, n, quant.W1A3, 1),
						Options{Variant: v, ComputeFull: fullGrid})
					if err != nil {
						t.Fatalf("%v fullGrid=%v par=%d noArena=%v: %v", v, fullGrid, par, noArena, err)
					}
					return rep
				}
				pooled, unpooled := run(false), run(true)
				if !reportsEqual(pooled, unpooled) {
					t.Fatalf("%v fullGrid=%v par=%d: pooled and NoArena reports diverge:\npooled   %+v\nunpooled %+v",
						v, fullGrid, par, pooled, unpooled)
				}
			}
		}
	}
}

// TestPooledRepeatedRunsIdentical drives many runs through one engine so
// every arena, segment pool and workspace is recycled repeatedly, and pins
// each report against the first — a stale byte anywhere would diverge the
// verified outputs or meters.
func TestPooledRepeatedRunsIdentical(t *testing.T) {
	e := NewEngine()
	e.Exec = ExecOptions{Parallelism: 2, FullGrid: true}
	pair := workload.NewGEMMPair(48, 32, 12, quant.W2A2, 5)
	var first *Report
	for i := 0; i < 5; i++ {
		for _, v := range kernels.Variants {
			rep, err := e.Run(pair, Options{Variant: v, ComputeFull: true})
			if err != nil {
				t.Fatal(err)
			}
			if v == kernels.Variants[0] {
				if first == nil {
					first = rep
				} else if !reportsEqual(first, rep) {
					t.Fatalf("iteration %d: report drifted across recycled runs", i)
				}
			}
		}
	}
}

// TestConcurrentEnginesShareArenas is the workspace-aliasing regression
// test: overlapping full-grid jobs on one engine and on clones (all sharing
// one arena pool) must not leak buffers across tiles or jobs. Every job
// verifies every tile against the integer reference internally, and the
// assembled products are checked against per-pair references computed
// outside the engine. Run under -race in CI.
func TestConcurrentEnginesShareArenas(t *testing.T) {
	base := NewEngine()
	base.Exec = ExecOptions{Parallelism: 4, FullGrid: true}

	type job struct {
		pair *workload.GEMMPair
		v    kernels.Variant
	}
	var jobs []job
	for i := 0; i < 6; i++ {
		pair := workload.NewGEMMPair(40+8*i, 48, 8+3*i, quant.W1A3, int64(i))
		jobs = append(jobs, job{pair, kernels.Variants[i%len(kernels.Variants)]})
	}

	var wg sync.WaitGroup
	outs := make([][]int32, len(jobs))
	errs := make([]error, len(jobs))
	for i, j := range jobs {
		wg.Add(1)
		go func(i int, j job) {
			defer wg.Done()
			e := base
			if i%2 == 1 {
				e = base.Clone() // clones share the arena pool
			}
			rep, err := e.Run(j.pair, Options{Variant: j.v, ComputeFull: true})
			if err != nil {
				errs[i] = err
				return
			}
			outs[i] = rep.Output
		}(i, j)
	}
	wg.Wait()

	for i, j := range jobs {
		if errs[i] != nil {
			t.Fatalf("job %d (%v): %v", i, j.v, errs[i])
		}
		full, err := fullTile(j.pair)
		if err != nil {
			t.Fatal(err)
		}
		if want := kernels.RefGEMM(full); !reflect.DeepEqual(outs[i], want) {
			t.Fatalf("job %d (%v): concurrent pooled output diverges from the reference", i, j.v)
		}
	}
}

// TestEngineSteadyStateAllocations pins the engine-level allocation budget
// of the functional full-grid hot path: after warmup, a serial run must
// average no more than a few allocations per bank tile (the per-run Report
// and task bookkeeping amortize across tiles; the per-tile path itself
// contributes ~1, the kernel Result).
func TestEngineSteadyStateAllocations(t *testing.T) {
	e := NewEngine()
	e.Exec = ExecOptions{Parallelism: 1, FullGrid: true}
	pair := workload.NewGEMMPair(128, 64, 32, quant.W1A3, 1)

	var tiles int
	for i := 0; i < 2; i++ { // warm: LUT cache, arenas, memos
		for _, v := range kernels.Variants {
			rep, err := e.Run(pair, Options{Variant: v})
			if err != nil {
				t.Fatal(err)
			}
			if i == 0 {
				tiles += rep.BanksSimulated
			}
		}
	}
	allocs := testing.AllocsPerRun(5, func() {
		for _, v := range kernels.Variants {
			if _, err := e.Run(pair, Options{Variant: v}); err != nil {
				t.Fatal(err)
			}
		}
	})
	perTile := allocs / float64(tiles)
	if perTile > 4 {
		t.Errorf("functional full-grid steady state allocates %.2f objects per bank tile (%.0f over %d tiles), want <= 4",
			perTile, allocs, tiles)
	}
}

// TestRefCacheInvalidatesOnNewPair guards the reference memo: switching
// pairs must recompute the product, not verify against the old one.
func TestRefCacheInvalidatesOnNewPair(t *testing.T) {
	e := NewEngine()
	e.Exec = ExecOptions{FullGrid: true}
	for seed := int64(1); seed <= 3; seed++ {
		pair := workload.NewGEMMPair(33, 40, 17, quant.W2A2, seed)
		rep, err := e.Run(pair, Options{Variant: kernels.LoCaLUT, ComputeFull: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		full, err := fullTile(pair)
		if err != nil {
			t.Fatal(err)
		}
		if want := kernels.RefGEMM(full); !reflect.DeepEqual(rep.Output, want) {
			t.Fatalf("seed %d: output does not match this pair's reference", seed)
		}
	}
}
