package gemm

import (
	"fmt"
	"reflect"
	"runtime"

	"github.com/ais-snu/localut/internal/banksim"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/workload"
)

// ExecOptions selects the host-side execution strategy of the bank
// simulation. The simulated machine is unaffected: the same tiles run
// through the same kernels and produce the same cycle counts whatever the
// host parallelism, because shard->bank assignment is deterministic and all
// aggregation happens in bank-index order with exact integer arithmetic.
type ExecOptions struct {
	// Parallelism is the worker-pool size used for bank shards and batch
	// members. 0 uses runtime.NumCPU(); 1 executes serially on the calling
	// goroutine.
	Parallelism int
	// FullGrid simulates every bank tile of the planned grid (sharded over
	// the worker pool, each tile verified bit-exact) instead of
	// extrapolating timing from the representative (0,0) tile. It is the
	// high-fidelity mode: edge tiles contribute their true (smaller) cost
	// and the full integer product is available for free, at the price of
	// simulating the whole problem.
	FullGrid bool
	// Mode selects functional execution (default) or the cycles-only cost
	// program. CyclesOnly charges the exact same Exec/Note/DMA sequence as
	// Functional — cycles, meters, breakdowns and energy are bit-identical —
	// but moves no bytes, builds no LUT images and computes no outputs, so
	// runs cannot be verified against the integer reference
	// (Report.Verified is false) and identical-shape bank tiles share one
	// memoized cost record (Engine.CostRecords).
	Mode kernels.Mode
	// NoArena disables the per-worker execution arenas and allocates a
	// fresh DPU, tile and verification scratch for every bank tile, as the
	// pre-pooling engine did. Reports are bit-identical either way; the
	// flag exists as the reference path for equivalence tests and for
	// before/after benchmarking of the pooled engine.
	NoArena bool
}

// workers resolves the pool size (ForEachShard applies the same default;
// RunBatch needs the concrete count to split it across members).
func (o ExecOptions) workers() int {
	if o.Parallelism <= 0 {
		return runtime.NumCPU()
	}
	return o.Parallelism
}

// Clone returns an engine sharing this engine's decision cache but owning
// its configuration, so a caller can vary Cfg or Exec without affecting
// concurrent users. The cache is keyed by budget and stays valid across
// configuration changes.
func (e *Engine) Clone() *Engine {
	c := *e
	return &c
}

// bankTask is one bank's share of the planned grid: tile (row, col) covering
// output rows [m0, m0+tileM) and columns [n0, n0+tileN).
type bankTask struct {
	index        int // row-major grid position (fixes the round assignment)
	m0, n0       int
	tileM, tileN int
}

// bankOutcome is one simulated bank tile, kept until deterministic merging.
type bankOutcome struct {
	cycles    int64
	meter     pim.Meter
	breakdown kernels.Breakdown
	out       []int32 // tile output (for full-product assembly)
}

// gridTasks enumerates the non-empty bank tiles of a gridM x gridN plan in
// row-major order. Ceil-division grids can contain empty trailing positions
// (e.g. M=4 over gridM=3 at tileM=2); those banks simply receive no work.
func gridTasks(m, n, gridM, gridN, tileM, tileN int) []bankTask {
	tasks := make([]bankTask, 0, gridM*gridN)
	for i := 0; i < gridM; i++ {
		m0 := i * tileM
		tm := tileM
		if m0+tm > m {
			tm = m - m0
		}
		if tm <= 0 {
			continue
		}
		for j := 0; j < gridN; j++ {
			n0 := j * tileN
			tn := tileN
			if n0+tn > n {
				tn = n - n0
			}
			if tn <= 0 {
				continue
			}
			tasks = append(tasks, bankTask{index: i*gridN + j, m0: m0, n0: n0, tileM: tm, tileN: tn})
		}
	}
	return tasks
}

// buildTileAt extracts the bank tile at (m0, n0) from the pair.
func buildTileAt(pair *workload.GEMMPair, t bankTask) (*kernels.Tile, error) {
	w := make([]uint8, t.tileM*pair.K)
	for m := 0; m < t.tileM; m++ {
		src := (t.m0 + m) * pair.K
		copy(w[m*pair.K:(m+1)*pair.K], pair.W.Codes[src:src+pair.K])
	}
	a := make([]uint8, pair.K*t.tileN)
	for k := 0; k < pair.K; k++ {
		src := k*pair.N + t.n0
		copy(a[k*t.tileN:(k+1)*t.tileN], pair.A.Codes[src:src+t.tileN])
	}
	return kernels.NewTile(t.tileM, pair.K, t.tileN, pair.Fmt, w, a)
}

// simulateGrid runs every bank tile of the grid through the kernel, sharded
// over the worker pool, and merges the outcomes deterministically:
//
//   - wall-clock kernel cycles are the sum over rounds of the slowest bank
//     in each round (banks within a round run concurrently on the PIM side);
//   - event counts are summed in bank-index order (integer addition, so the
//     result is identical whatever the host-side interleaving);
//   - in Functional mode, every tile is verified bit-exact against the
//     integer reference.
//
// In CyclesOnly mode only the distinct tile shapes of the grid run (a
// ceil-division grid has at most four: interior, right edge, bottom edge,
// corner), each through the kernel's cost program on an accounting DPU; all
// same-shape banks then share the one record. The merge is unchanged, so
// cycles, meters and breakdowns are bit-identical to Functional mode.
//
// The kernel instance is shared: kernels are stateless (all mutable state
// lives in the per-task DPU and tile).
func (e *Engine) simulateGrid(pair *workload.GEMMPair, kn kernels.Kernel, rep *Report, wantOutput bool) error {
	tasks := gridTasks(pair.M, pair.N, rep.GridM, rep.GridN, rep.TileM, rep.TileN)
	outcomes := make([]bankOutcome, len(tasks))

	if e.Exec.Mode == kernels.CyclesOnly {
		if err := e.costGrid(pair, kn, rep, tasks, outcomes); err != nil {
			return err
		}
	} else if e.Exec.NoArena {
		// Reference path: fresh DPU, tile and verification scratch per bank
		// tile (the pre-pooling engine). Kept for equivalence tests and
		// before/after benchmarks.
		err := banksim.ForEachShard(len(tasks), e.Exec.Parallelism, func(i int) error {
			t := tasks[i]
			tile, err := buildTileAt(pair, t)
			if err != nil {
				return err
			}
			dpu := pim.NewDPU(&e.Cfg)
			res, err := kn.Run(dpu, tile)
			if err != nil {
				return err
			}
			if !reflect.DeepEqual(tile.O, kernels.RefGEMM(tile)) {
				return fmt.Errorf("gemm: %s kernel output failed verification on bank tile (%d,%d)",
					kn.Name(), t.m0/max(rep.TileM, 1), t.n0/max(rep.TileN, 1))
			}
			outcomes[i] = bankOutcome{cycles: res.Cycles, meter: dpu.Meter, breakdown: res.Breakdown}
			if wantOutput {
				outcomes[i].out = tile.O
			}
			return nil
		})
		if err != nil {
			return err
		}
	} else {
		// Pooled path: each shard worker owns one execution arena for its
		// whole strided task set — the DPU's memories, the kernel
		// workspace and the tile storage recycle across every bank tile,
		// so the per-tile steady state allocates nothing. Verification
		// compares each tile against its window of the memoized full
		// reference product (one O(MKN) computation per pair, shared by
		// every design run on it, bit-identical to a per-tile RefGEMM —
		// tiles partition the output). Outputs are copied out of the arena
		// only when the caller asked for the assembled product.
		refs := e.refs
		if refs == nil {
			refs = &refCache{}
		}
		ref, err := refs.product(pair)
		if err != nil {
			return err
		}
		pool := e.pool()
		err = banksim.ForEachShardArena(len(tasks), e.Exec.Parallelism,
			func() *execArena { return pool.get(&e.Cfg) },
			pool.put,
			func(ar *execArena, i int) error {
				t := tasks[i]
				tile := ar.tileFor(pair, t)
				res, err := kn.RunRequest(ar.request(tile))
				if err != nil {
					return err
				}
				if !verifyAgainst(ref, pair.N, t, tile.O) {
					return fmt.Errorf("gemm: %s kernel output failed verification on bank tile (%d,%d)",
						kn.Name(), t.m0/max(rep.TileM, 1), t.n0/max(rep.TileN, 1))
				}
				outcomes[i] = bankOutcome{cycles: res.Cycles, meter: ar.dpu.Meter, breakdown: res.Breakdown}
				if wantOutput {
					outcomes[i].out = append([]int32(nil), tile.O...)
				}
				return nil
			})
		if err != nil {
			return err
		}
	}

	// Deterministic merge in bank-index order.
	dpus := e.Cfg.NumDPUs()
	var kernelCycles, roundMax int64
	round := 0
	for i, t := range tasks {
		if r := t.index / dpus; r != round {
			kernelCycles += roundMax
			roundMax, round = 0, r
		}
		if outcomes[i].cycles > roundMax {
			roundMax = outcomes[i].cycles
		}
		rep.Meter.Merge(&outcomes[i].meter)
		addBreakdown(&rep.Breakdown, &outcomes[i].breakdown)
	}
	kernelCycles += roundMax

	rep.KernelCycles = kernelCycles
	rep.KernelSeconds = e.Cfg.Seconds(kernelCycles)
	rep.BanksSimulated = len(tasks)
	rep.Verified = e.Exec.Mode == kernels.Functional

	if wantOutput && e.Exec.Mode == kernels.Functional {
		out := make([]int32, pair.M*pair.N)
		for i, t := range tasks {
			for m := 0; m < t.tileM; m++ {
				copy(out[(t.m0+m)*pair.N+t.n0:(t.m0+m)*pair.N+t.n0+t.tileN],
					outcomes[i].out[m*t.tileN:(m+1)*t.tileN])
			}
		}
		rep.Output = out
	}
	return nil
}

// costGrid fills outcomes with cycles-only records, running each distinct
// tile shape once (sharded) and fanning the records out to all same-shape
// banks.
func (e *Engine) costGrid(pair *workload.GEMMPair, kn kernels.Kernel, rep *Report,
	tasks []bankTask, outcomes []bankOutcome) error {

	type shape struct{ m, n int }
	owner := make(map[shape]int, 4)
	distinct := make([]int, 0, 4)
	ownerOf := make([]int, len(tasks))
	for i, t := range tasks {
		s := shape{t.tileM, t.tileN}
		if j, ok := owner[s]; ok {
			ownerOf[i] = j
			continue
		}
		owner[s] = i
		ownerOf[i] = i
		distinct = append(distinct, i)
	}

	err := banksim.ForEachShard(len(distinct), e.Exec.Parallelism, func(di int) error {
		i := distinct[di]
		t := tasks[i]
		rec, err := e.runCost(kn, rep, pair.Fmt, t.tileM, pair.K, t.tileN)
		if err != nil {
			return err
		}
		outcomes[i] = bankOutcome{cycles: rec.cycles, meter: rec.meter, breakdown: rec.breakdown}
		return nil
	})
	if err != nil {
		return err
	}
	for i := range tasks {
		outcomes[i] = outcomes[ownerOf[i]]
	}
	return nil
}

// addBreakdown accumulates b into dst phase by phase.
func addBreakdown(dst, b *kernels.Breakdown) {
	dst.CanonAccess += b.CanonAccess
	dst.ReorderAccess += b.ReorderAccess
	dst.IdxCalc += b.IdxCalc
	dst.Transfer += b.Transfer
	dst.LUTLoad += b.LUTLoad
	dst.Accumulate += b.Accumulate
	dst.Other += b.Other
}

// RunBatch executes a batch of independent GEMMs, amortizing what one-off
// runs cannot: cost-model decisions are memoized in the engine's shared
// decision cache, LUT tables come from the process-wide cache, and batch
// members are dispatched concurrently across the worker pool. The pool
// budget is split between the member level and each member's bank shards
// (a one-member full-grid batch still uses every worker), and since reports
// are parallelism-independent by construction they are identical to
// len(pairs) sequential Run calls.
func (e *Engine) RunBatch(pairs []*workload.GEMMPair, opt Options) ([]*Report, error) {
	if len(pairs) == 0 {
		return nil, fmt.Errorf("gemm: empty batch")
	}
	reports := make([]*Report, len(pairs))
	workers := e.Exec.workers()
	memberWorkers := workers / len(pairs)
	if memberWorkers < 1 {
		memberWorkers = 1
	}
	err := banksim.ForEachShard(len(pairs), workers, func(i int) error {
		sub := e.Clone()
		sub.Exec.Parallelism = memberWorkers
		rep, err := sub.Run(pairs[i], opt)
		if err != nil {
			return fmt.Errorf("gemm: batch member %d: %w", i, err)
		}
		reports[i] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	return reports, nil
}
