package gemm

import (
	"testing"

	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/workload"
)

func TestPlanGrid(t *testing.T) {
	e := NewEngine()
	// Naive has no per-tile fixed costs: it should split M for utilization.
	gm, gn, r := e.planGrid(kernels.Naive, quant.W1A3, 768, 768, 128)
	if gn != 128 || gm != 16 || r != 1 {
		t.Errorf("naive planGrid(768,128) = (%d,%d,%d), want (16,128,1)", gm, gn, r)
	}
	// LoCaLUT must keep tiles tall enough to amortize slice loads: its
	// tileM should be at least as tall as naive's.
	gmL, gnL, _ := e.planGrid(kernels.LoCaLUT, quant.W1A3, 768, 768, 128)
	if gnL != 128 {
		t.Errorf("LoCaLUT gridN = %d, want 128", gnL)
	}
	if gmL > gm {
		t.Errorf("LoCaLUT splits M more than naive (%d > %d)", gmL, gm)
	}
	// Huge N: full M per bank, one column slab each.
	gm, gn, r = e.planGrid(kernels.LoCaLUT, quant.W1A3, 3072, 768, 16384)
	if gn != 2048 || gm != 1 || r != 1 {
		t.Errorf("planGrid(3072,16384) = (%d,%d,%d), want (1,2048,1)", gm, gn, r)
	}
	// Fig. 17 shape: M exceeds the WRAM accumulator bound, forcing a split.
	gm, gn, r = e.planGrid(kernels.LoCaLUT, quant.W1A3, 12288, 192, 65536)
	if gn != 2048 || gm < 2 || r < 2 {
		t.Errorf("planGrid(12288,65536) = (%d,%d,%d), want gridN=2048 and multiple rounds", gm, gn, r)
	}
}

func TestRunAllVariantsVerify(t *testing.T) {
	e := NewEngine()
	pair := workload.NewGEMMPair(96, 64, 16, quant.W1A3, 42)
	for _, v := range kernels.Variants {
		rep, err := e.Run(pair, Options{Variant: v})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		if !rep.Verified {
			t.Fatalf("%v: not verified", v)
		}
		if rep.Total <= 0 || rep.KernelSeconds <= 0 {
			t.Errorf("%v: nonpositive times %+v", v, rep)
		}
		if rep.HostSeconds <= 0 || rep.Transfer <= 0 {
			t.Errorf("%v: missing host/transfer charges", v)
		}
	}
}

func TestPaperShapeSpeedupOrdering(t *testing.T) {
	// Under the paper's context-parallel tiling and a Fig. 9-class shape,
	// the design points must order as the paper reports for W1A3.
	e := NewEngine()
	pair := workload.NewGEMMPair(256, 256, 4, quant.W1A3, 42)
	totals := map[kernels.Variant]float64{}
	for _, v := range kernels.Variants {
		rep, err := e.Run(pair, Options{Variant: v, NSplitOnly: true})
		if err != nil {
			t.Fatalf("%v: %v", v, err)
		}
		totals[v] = rep.Total
	}
	if !(totals[kernels.LoCaLUT] < totals[kernels.OPLCRC]) {
		t.Errorf("LoCaLUT (%g) should beat OP+LC+RC (%g)", totals[kernels.LoCaLUT], totals[kernels.OPLCRC])
	}
	if !(totals[kernels.OPLCRC] < totals[kernels.Naive]) {
		t.Errorf("OP+LC+RC (%g) should beat Naive (%g)", totals[kernels.OPLCRC], totals[kernels.Naive])
	}
	if !(totals[kernels.OPLC] > totals[kernels.OPLCRC]) {
		t.Errorf("OP+LC (%g) should trail OP+LC+RC (%g)", totals[kernels.OPLC], totals[kernels.OPLCRC])
	}
	if s := totals[kernels.Naive] / totals[kernels.LoCaLUT]; s < 2 {
		t.Errorf("LoCaLUT speedup over Naive = %.2f, want >= 2 for W1A3", s)
	}
}

func TestRunComputeFullMatchesTileEdge(t *testing.T) {
	e := NewEngine()
	pair := workload.NewGEMMPair(32, 48, 8, quant.W2A2, 5)
	rep, err := e.Run(pair, Options{Variant: kernels.LoCaLUT, ComputeFull: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Output) != 32*8 {
		t.Fatalf("full output length %d", len(rep.Output))
	}
	// Cross-check one value against a direct dot product.
	var want int32
	for k := 0; k < 48; k++ {
		want += pair.Fmt.Weight.Decode(uint32(pair.W.Codes[0*48+k])) *
			pair.Fmt.Act.Decode(uint32(pair.A.Codes[k*8+0]))
	}
	if rep.Output[0] != want {
		t.Errorf("Output[0] = %d, want %d", rep.Output[0], want)
	}
}

func TestForcePAndK(t *testing.T) {
	e := NewEngine()
	pair := workload.NewGEMMPair(64, 64, 8, quant.W1A3, 9)
	rep, err := e.Run(pair, Options{Variant: kernels.LoCaLUT, ForceP: 6, ForceK: 2, ForceStreaming: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.P != 6 || rep.K != 2 || !rep.Streaming {
		t.Errorf("forced plan not honored: p=%d k=%d streaming=%v", rep.P, rep.K, rep.Streaming)
	}
}

func TestLoCaLUTFallsBackToBuffer(t *testing.T) {
	// W4A4 with small tile M: the cost model must pick the buffer-resident
	// kernel (Fig. 18(a) behaviour).
	e := NewEngine()
	pair := workload.NewGEMMPair(48, 96, 4, quant.W4A4, 3)
	rep, err := e.Run(pair, Options{Variant: kernels.LoCaLUT})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Streaming {
		t.Errorf("small-M W4A4 chose streaming (p=%d)", rep.P)
	}
	if rep.P != 2 {
		t.Errorf("p = %d, want p_local = 2", rep.P)
	}
}

func TestMeterAggregation(t *testing.T) {
	e := NewEngine()
	pair := workload.NewGEMMPair(64, 64, 16, quant.W1A3, 21)
	rep, err := e.Run(pair, Options{Variant: kernels.Naive})
	if err != nil {
		t.Fatal(err)
	}
	gm, gn, _ := e.planGrid(kernels.Naive, quant.W1A3, 64, 64, 16)
	if gm*gn < 2 {
		t.Skip("grid too small to observe aggregation")
	}
	// Aggregated instruction count must be the tile count times a
	// single-tile run (all tiles are shape-identical).
	if rep.Meter.Counts[0] == 0 {
		t.Error("no aggregated instructions")
	}
}

func TestHostBreakdownShares(t *testing.T) {
	e := NewEngine()
	pair := workload.NewGEMMPair(256, 256, 32, quant.W1A3, 8)
	rep, err := e.Run(pair, Options{Variant: kernels.LoCaLUT})
	if err != nil {
		t.Fatal(err)
	}
	h := rep.Host
	if h.SortPack <= h.Quantize {
		t.Errorf("canonicalization (%.3g) should cost more than quantization (%.3g)", h.SortPack, h.Quantize)
	}
	if rep.InitSeconds <= 0 {
		t.Error("init seconds not charged")
	}
}

func TestSpeedupHelper(t *testing.T) {
	a := &Report{Total: 2.0}
	b := &Report{Total: 1.0}
	if Speedup(a, b) != 2.0 {
		t.Error("Speedup")
	}
}
