package gemm

import (
	"reflect"
	"testing"

	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/workload"
)

// runGrid executes one full-grid run at the given parallelism.
func runGrid(t *testing.T, parallelism int, f quant.Format, m, k, n int, v kernels.Variant, opt Options) *Report {
	t.Helper()
	e := NewEngine()
	e.Exec = ExecOptions{Parallelism: parallelism, FullGrid: true}
	opt.Variant = v
	rep, err := e.Run(workload.NewGEMMPair(m, k, n, f, 1), opt)
	if err != nil {
		t.Fatalf("%v parallelism=%d: %v", v, parallelism, err)
	}
	return rep
}

// TestParallelMatchesSerial is the engine's core determinism guarantee: the
// sharded worker-pool execution produces bit-identical reports to the serial
// loop for every design point — same simulated cycle counts, same event
// meters, same verified outputs.
func TestParallelMatchesSerial(t *testing.T) {
	const m, k, n = 96, 64, 24
	for _, v := range kernels.Variants {
		serial := runGrid(t, 1, quant.W1A3, m, k, n, v, Options{ComputeFull: true})
		parallel := runGrid(t, 8, quant.W1A3, m, k, n, v, Options{ComputeFull: true})

		if !serial.Verified || !parallel.Verified {
			t.Fatalf("%v: verified=%v/%v, want true/true", v, serial.Verified, parallel.Verified)
		}
		if serial.KernelCycles != parallel.KernelCycles {
			t.Fatalf("%v: kernel cycles diverge: serial %d, parallel %d",
				v, serial.KernelCycles, parallel.KernelCycles)
		}
		if serial.Meter != parallel.Meter {
			t.Fatalf("%v: meters diverge:\nserial   %+v\nparallel %+v", v, serial.Meter, parallel.Meter)
		}
		if serial.Total != parallel.Total {
			t.Fatalf("%v: totals diverge: %g vs %g", v, serial.Total, parallel.Total)
		}
		if !reflect.DeepEqual(serial.Output, parallel.Output) {
			t.Fatalf("%v: outputs diverge", v)
		}
		if serial.BanksSimulated != parallel.BanksSimulated || serial.BanksSimulated < 2 {
			t.Fatalf("%v: banks simulated %d/%d, want equal and >= 2",
				v, serial.BanksSimulated, parallel.BanksSimulated)
		}
	}
}

// TestFullGridOutputMatchesReference checks the assembled full product
// against the integer reference GEMM.
func TestFullGridOutputMatchesReference(t *testing.T) {
	pair := workload.NewGEMMPair(33, 40, 17, quant.W2A2, 7)
	e := NewEngine()
	e.Exec = ExecOptions{FullGrid: true}
	rep, err := e.Run(pair, Options{Variant: kernels.LoCaLUT, ComputeFull: true})
	if err != nil {
		t.Fatal(err)
	}
	full, err := fullTile(pair)
	if err != nil {
		t.Fatal(err)
	}
	if want := kernels.RefGEMM(full); !reflect.DeepEqual(rep.Output, want) {
		t.Fatal("assembled full-grid output differs from the integer reference")
	}
}

// TestParallelMatchesSerialMultiRound forces more bank tiles than DPUs so
// the round-by-round max aggregation is exercised.
func TestParallelMatchesSerialMultiRound(t *testing.T) {
	run := func(parallelism int) *Report {
		e := NewEngine()
		e.Cfg.Ranks, e.Cfg.BanksPerRank = 1, 4
		e.Exec = ExecOptions{Parallelism: parallelism, FullGrid: true}
		rep, err := e.Run(workload.NewGEMMPair(6000, 16, 8, quant.W1A4, 3),
			Options{Variant: kernels.Naive, NSplitOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	serial, parallel := run(1), run(6)
	if serial.Rounds < 2 {
		t.Fatalf("want a multi-round grid, got rounds=%d (grid %dx%d over %d banks)",
			serial.Rounds, serial.GridM, serial.GridN, 4)
	}
	if serial.KernelCycles != parallel.KernelCycles || serial.Meter != parallel.Meter {
		t.Fatalf("multi-round runs diverge: cycles %d vs %d", serial.KernelCycles, parallel.KernelCycles)
	}
}

// TestRunBatchMatchesSequential checks that the batched API returns the same
// reports as one-at-a-time execution and actually hits the decision cache.
func TestRunBatchMatchesSequential(t *testing.T) {
	shapes := [][3]int{{64, 48, 16}, {64, 48, 16}, {32, 48, 24}, {64, 48, 16}}
	pairs := make([]*workload.GEMMPair, len(shapes))
	for i, s := range shapes {
		pairs[i] = workload.NewGEMMPair(s[0], s[1], s[2], quant.W1A3, int64(i))
	}
	opt := Options{Variant: kernels.LoCaLUT}

	e := NewEngine()
	batch, err := e.RunBatch(pairs, opt)
	if err != nil {
		t.Fatal(err)
	}
	hits, misses := e.Decisions.Stats()
	if hits == 0 {
		t.Fatalf("decision cache unused across the batch (hits=%d misses=%d)", hits, misses)
	}

	ref := NewEngine()
	for i, pair := range pairs {
		want, err := ref.Run(pair, opt)
		if err != nil {
			t.Fatal(err)
		}
		got := batch[i]
		if got.KernelCycles != want.KernelCycles || got.Total != want.Total ||
			got.P != want.P || got.Meter != want.Meter {
			t.Fatalf("batch member %d diverges from sequential run", i)
		}
	}
}

// TestRepresentativeModeUnchanged pins the default path: no full grid, one
// simulated bank, and KernelCycles consistent with the representative
// extrapolation.
func TestRepresentativeModeUnchanged(t *testing.T) {
	e := NewEngine()
	rep, err := e.Run(workload.NewGEMMPair(96, 64, 24, quant.W1A3, 1),
		Options{Variant: kernels.LoCaLUT})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BanksSimulated != 1 {
		t.Fatalf("default mode simulated %d banks, want 1", rep.BanksSimulated)
	}
	if rep.KernelCycles <= 0 {
		t.Fatalf("KernelCycles not populated: %d", rep.KernelCycles)
	}
}
