// Package gemm orchestrates full GEMMs across the simulated PIM system: it
// picks the kernel configuration with the §IV-D cost model, tiles the
// matrices over the 2048 banks (data/context parallelism, §V-B), charges
// host-side quantize/sort/pack work and host<->PIM transfers, runs bank
// tiles on simulated DPUs, and verifies tile outputs against the integer
// reference — every timing run doubles as the "functionality check" of the
// paper's artifact.
//
// # Execution modes
//
// The Engine simulates the bank grid in one of two modes, selected by
// ExecOptions.FullGrid:
//
//   - Representative (default): bank (0,0)'s tile stands in for the grid;
//     device event counts are scaled by the tile count and kernel wall-clock
//     by the round count. One tile of simulation per GEMM, whatever the
//     problem size — the right mode for figure sweeps and model inference
//     where thousands of GEMMs run back to back.
//
//   - Full grid: every bank tile is built, simulated and verified
//     bit-exact. Edge tiles contribute their true (smaller) cost, the full
//     integer product is assembled from the simulated banks, and the
//     reported wall-clock is the sum over rounds of the slowest bank per
//     round — the high-fidelity mode.
//
// Orthogonally, ExecOptions.Mode selects the execution backend:
// kernels.Functional simulates data movement and lookups byte for byte and
// verifies every tile, while kernels.CyclesOnly runs each kernel's cost
// program on an accounting DPU — bit-identical cycles, meters, breakdowns
// and energy, no byte work, no outputs, no verification. Cost records are
// pure functions of the tile shape, so identical-shape banks share one
// memoized record (CostMemo, alongside the costmodel.Cache decision memo)
// and a full-grid sweep executes at most the grid's distinct edge shapes.
//
// # Sharded host parallelism
//
// Bank tiles are mutually independent (the defining property of bank-level
// PIM), so full-grid simulation is sharded across a worker pool of
// ExecOptions.Parallelism goroutines. Determinism is preserved by
// construction, not by locking discipline:
//
//   - shard s owns the strided bank set {s, s+W, s+2W, ...} — a fixed,
//     scheduling-independent assignment;
//   - each bank simulates on its own DPU and writes its outcome to a
//     bank-indexed slot;
//   - aggregation (event-count sums, per-round cycle maxima, output
//     assembly) happens after the pool drains, in bank order, in exact
//     integer arithmetic.
//
// Reports are therefore bit-identical at any parallelism level; only host
// wall-clock changes. RunBatch extends the same pool across independent
// GEMMs, with §IV-D decisions memoized in the engine's shared
// costmodel.Cache.
package gemm
