package gemm

import (
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/stripemap"
)

// Cycles-only kernel runs are pure functions of (machine config, cost table,
// design point, tile shape): no data flows through them, so two banks with
// identical-shaped tiles produce bit-identical cycles, meters and
// breakdowns. CostMemo memoizes those records the way costmodel.Cache
// memoizes §IV-D decisions — a full-grid sweep over thousands of banks pays
// for at most a handful of distinct edge shapes, and a serving workload
// replaying the same layer shapes pays once per shape for the whole run.
//
// The key embeds the pim.Config and kernels.Costs values outright (both are
// flat comparable structs), so a memo shared across Clone'd engines with
// different configurations stays correct.

// costKey identifies one cycles-only kernel execution.
type costKey struct {
	cfg       pim.Config
	costs     kernels.Costs
	variant   kernels.Variant
	fmt       quant.Format
	p         int
	sliceK    int
	streaming bool
	m, k, n   int
}

// costRecord is the reusable outcome of one cycles-only bank execution.
type costRecord struct {
	cycles    int64
	meter     pim.Meter
	breakdown kernels.Breakdown
}

// CostMemo memoizes cycles-only bank cost records in a lock-striped map
// (internal/stripemap): every worker of a high -j serving or sweep run
// consults the memo on its hot path, and striping by key hash keeps them
// off one mutex cacheline. Striping is invisible to results — each record
// is a pure function of its key. The zero value is not ready; use
// NewCostMemo. All methods are safe for concurrent use.
type CostMemo struct {
	recs *stripemap.Map[costKey, costRecord]
}

// NewCostMemo returns an empty memo.
func NewCostMemo() *CostMemo {
	return &CostMemo{recs: stripemap.New[costKey, costRecord](hashCostKey)}
}

// hashCostKey mixes the key's shape and design fields — the ones that
// differ between concurrent lookups.
func hashCostKey(key costKey) uint64 {
	return uint64(key.m)*0x9E3779B185EBCA87 ^
		uint64(key.k)*0xC2B2AE3D27D4EB4F ^
		uint64(key.n)*0x165667B19E3779F9 ^
		uint64(key.variant)<<17 ^ uint64(key.p)<<9 ^ uint64(key.sliceK)<<3
}

// lookup returns the memoized record for the key.
func (c *CostMemo) lookup(key costKey) (costRecord, bool) {
	return c.recs.Lookup(key)
}

// store records the outcome for the key.
func (c *CostMemo) store(key costKey, rec costRecord) {
	c.recs.Store(key, rec)
}

// Stats reports hit/miss counts (diagnostics and tests).
func (c *CostMemo) Stats() (hits, misses int64) {
	return c.recs.Stats()
}

// costKeyFor assembles the memo key for one bank tile of the current run.
func (e *Engine) costKeyFor(rep *Report, f quant.Format, m, k, n int) costKey {
	return costKey{
		cfg: e.Cfg, costs: e.Costs,
		variant: rep.Variant, fmt: f,
		p: rep.P, sliceK: rep.K, streaming: rep.Streaming,
		m: m, k: k, n: n,
	}
}

// runCost executes the kernel's cost program for an m x k x n tile on an
// accounting DPU, routing through the memo when the engine has one.
func (e *Engine) runCost(kn kernels.Kernel, rep *Report, f quant.Format, m, k, n int) (costRecord, error) {
	var key costKey
	if e.CostRecords != nil {
		key = e.costKeyFor(rep, f, m, k, n)
		if rec, ok := e.CostRecords.lookup(key); ok {
			return rec, nil
		}
	}
	tile, err := kernels.NewShapeTile(m, k, n, f)
	if err != nil {
		return costRecord{}, err
	}
	dpu := pim.NewAccountingDPU(&e.Cfg)
	res, err := kn.Run(dpu, tile)
	if err != nil {
		return costRecord{}, err
	}
	rec := costRecord{cycles: res.Cycles, meter: dpu.Meter, breakdown: res.Breakdown}
	if e.CostRecords != nil {
		e.CostRecords.store(key, rec)
	}
	return rec, nil
}
