package gemm

import (
	"sync"

	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
)

// Cycles-only kernel runs are pure functions of (machine config, cost table,
// design point, tile shape): no data flows through them, so two banks with
// identical-shaped tiles produce bit-identical cycles, meters and
// breakdowns. CostMemo memoizes those records the way costmodel.Cache
// memoizes §IV-D decisions — a full-grid sweep over thousands of banks pays
// for at most a handful of distinct edge shapes, and a serving workload
// replaying the same layer shapes pays once per shape for the whole run.
//
// The key embeds the pim.Config and kernels.Costs values outright (both are
// flat comparable structs), so a memo shared across Clone'd engines with
// different configurations stays correct.

// costKey identifies one cycles-only kernel execution.
type costKey struct {
	cfg       pim.Config
	costs     kernels.Costs
	variant   kernels.Variant
	fmt       quant.Format
	p         int
	sliceK    int
	streaming bool
	m, k, n   int
}

// costRecord is the reusable outcome of one cycles-only bank execution.
type costRecord struct {
	cycles    int64
	meter     pim.Meter
	breakdown kernels.Breakdown
}

// CostMemo memoizes cycles-only bank cost records. The zero value is not
// ready; use NewCostMemo. All methods are safe for concurrent use.
type CostMemo struct {
	mu     sync.Mutex
	recs   map[costKey]costRecord
	hits   int64
	misses int64
}

// NewCostMemo returns an empty memo.
func NewCostMemo() *CostMemo {
	return &CostMemo{recs: make(map[costKey]costRecord)}
}

// lookup returns the memoized record for the key.
func (c *CostMemo) lookup(key costKey) (costRecord, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec, ok := c.recs[key]
	if ok {
		c.hits++
	} else {
		c.misses++
	}
	return rec, ok
}

// store records the outcome for the key.
func (c *CostMemo) store(key costKey, rec costRecord) {
	c.mu.Lock()
	c.recs[key] = rec
	c.mu.Unlock()
}

// Stats reports hit/miss counts (diagnostics and tests).
func (c *CostMemo) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// costKeyFor assembles the memo key for one bank tile of the current run.
func (e *Engine) costKeyFor(rep *Report, f quant.Format, m, k, n int) costKey {
	return costKey{
		cfg: e.Cfg, costs: e.Costs,
		variant: rep.Variant, fmt: f,
		p: rep.P, sliceK: rep.K, streaming: rep.Streaming,
		m: m, k: k, n: n,
	}
}

// runCost executes the kernel's cost program for an m x k x n tile on an
// accounting DPU, routing through the memo when the engine has one.
func (e *Engine) runCost(kn kernels.Kernel, rep *Report, f quant.Format, m, k, n int) (costRecord, error) {
	var key costKey
	if e.CostRecords != nil {
		key = e.costKeyFor(rep, f, m, k, n)
		if rec, ok := e.CostRecords.lookup(key); ok {
			return rec, nil
		}
	}
	tile, err := kernels.NewShapeTile(m, k, n, f)
	if err != nil {
		return costRecord{}, err
	}
	dpu := pim.NewAccountingDPU(&e.Cfg)
	res, err := kn.Run(dpu, tile)
	if err != nil {
		return costRecord{}, err
	}
	rec := costRecord{cycles: res.Cycles, meter: dpu.Meter, breakdown: res.Breakdown}
	if e.CostRecords != nil {
		e.CostRecords.store(key, rec)
	}
	return rec, nil
}
