package gemm

import (
	"reflect"
	"testing"

	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/workload"
)

// stripFunctionalOnly clears the report fields that exist only when the
// data program ran: verification and outputs. Everything else — timing,
// meters, breakdowns, plan — must be bit-identical across modes.
func stripFunctionalOnly(r *Report) Report {
	c := *r
	c.Verified = false
	c.Output = nil
	return c
}

// TestModeEquivalence pins the tentpole acceptance criterion at engine
// level: for every design, across the quick-suite shapes, at several
// parallelism levels, in both representative and full-grid execution,
// CyclesOnly reports are bit-identical to Functional ones up to the
// functional-only fields.
func TestModeEquivalence(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{64, 96, 16},
		{128, 128, 24}, // uneven N split over the bank grid
	}
	for _, f := range []quant.Format{quant.W1A3, quant.W2A2} {
		for _, fullGrid := range []bool{false, true} {
			for _, par := range []int{1, 4} {
				for _, v := range kernels.Variants {
					for _, sh := range shapes {
						pair := workload.NewGEMMPair(sh.m, sh.k, sh.n, f, 1)

						fe := NewEngine()
						fe.Exec = ExecOptions{Parallelism: par, FullGrid: fullGrid, Mode: kernels.Functional}
						frep, err := fe.Run(pair, Options{Variant: v})
						if err != nil {
							t.Fatalf("%v %s functional: %v", v, f.Name(), err)
						}

						ce := NewEngine()
						ce.Exec = ExecOptions{Parallelism: par, FullGrid: fullGrid, Mode: kernels.CyclesOnly}
						crep, err := ce.Run(pair, Options{Variant: v})
						if err != nil {
							t.Fatalf("%v %s cycles-only: %v", v, f.Name(), err)
						}

						if !frep.Verified {
							t.Errorf("%v %s: functional run not verified", v, f.Name())
						}
						if crep.Verified {
							t.Errorf("%v %s: cycles-only run claims verification", v, f.Name())
						}
						fr, cr := stripFunctionalOnly(frep), stripFunctionalOnly(crep)
						if !reflect.DeepEqual(fr, cr) {
							t.Errorf("%v %s %dx%dx%d fullGrid=%v j=%d: reports diverge\n functional  %+v\n cycles-only %+v",
								v, f.Name(), sh.m, sh.k, sh.n, fullGrid, par, fr, cr)
						}
					}
				}
			}
		}
	}
}

// TestCostMemoSharing checks that identical-shape bank tiles share one cost
// record: a full-grid cycles-only run over many banks must execute at most
// a handful of distinct shapes, and a repeat run must be all hits.
func TestCostMemoSharing(t *testing.T) {
	e := NewEngine()
	e.Exec = ExecOptions{Parallelism: 2, FullGrid: true, Mode: kernels.CyclesOnly}
	pair := workload.NewGEMMPair(96, 64, 48, quant.W1A3, 1)

	rep, err := e.Run(pair, Options{Variant: kernels.LoCaLUT})
	if err != nil {
		t.Fatal(err)
	}
	if rep.BanksSimulated < 8 {
		t.Fatalf("expected a multi-bank grid, got %d banks", rep.BanksSimulated)
	}
	_, misses := e.CostRecords.Stats()
	if misses > 4 {
		t.Errorf("first run executed %d distinct shapes; a ceil-division grid has at most 4", misses)
	}

	if _, err := e.Run(pair, Options{Variant: kernels.LoCaLUT}); err != nil {
		t.Fatal(err)
	}
	hits, misses2 := e.CostRecords.Stats()
	if misses2 != misses {
		t.Errorf("repeat run re-executed shapes: misses %d -> %d", misses, misses2)
	}
	if hits == 0 {
		t.Errorf("repeat run recorded no memo hits")
	}
}

// TestBatchModeEquivalence checks RunBatch: batched cycles-only members are
// identical to batched functional members (and therefore to sequential
// runs, which parallel_test pins for functional mode).
func TestBatchModeEquivalence(t *testing.T) {
	shapes := []struct{ m, k, n int }{{64, 96, 16}, {48, 64, 8}, {64, 96, 16}}
	pairs := make([]*workload.GEMMPair, len(shapes))
	for i, sh := range shapes {
		pairs[i] = workload.NewGEMMPair(sh.m, sh.k, sh.n, quant.W1A3, int64(i)+1)
	}

	fe := NewEngine()
	fe.Exec = ExecOptions{Parallelism: 4, FullGrid: true, Mode: kernels.Functional}
	freps, err := fe.RunBatch(pairs, Options{Variant: kernels.LoCaLUT})
	if err != nil {
		t.Fatal(err)
	}

	ce := NewEngine()
	ce.Exec = ExecOptions{Parallelism: 4, FullGrid: true, Mode: kernels.CyclesOnly}
	creps, err := ce.RunBatch(pairs, Options{Variant: kernels.LoCaLUT})
	if err != nil {
		t.Fatal(err)
	}

	for i := range freps {
		fr, cr := stripFunctionalOnly(freps[i]), stripFunctionalOnly(creps[i])
		if !reflect.DeepEqual(fr, cr) {
			t.Errorf("batch member %d diverges across modes\n functional  %+v\n cycles-only %+v", i, fr, cr)
		}
	}
}

// TestCyclesOnlyComputeFullFallsBackToHost checks that callers asking for
// the full product in cycles-only mode still get it, from the host
// reference rather than the (absent) simulated banks.
func TestCyclesOnlyComputeFullFallsBackToHost(t *testing.T) {
	pair := workload.NewGEMMPair(16, 24, 8, quant.W1A3, 1)

	fe := NewEngine()
	fe.Exec = ExecOptions{FullGrid: true}
	frep, err := fe.Run(pair, Options{Variant: kernels.OP, ComputeFull: true})
	if err != nil {
		t.Fatal(err)
	}

	ce := NewEngine()
	ce.Exec = ExecOptions{FullGrid: true, Mode: kernels.CyclesOnly}
	crep, err := ce.Run(pair, Options{Variant: kernels.OP, ComputeFull: true})
	if err != nil {
		t.Fatal(err)
	}
	if crep.Output == nil {
		t.Fatal("cycles-only ComputeFull returned no output")
	}
	if len(crep.Output) != len(frep.Output) {
		t.Fatalf("output length %d != %d", len(crep.Output), len(frep.Output))
	}
	for i := range crep.Output {
		if crep.Output[i] != frep.Output[i] {
			t.Fatalf("output[%d] = %d, functional %d", i, crep.Output[i], frep.Output[i])
		}
	}
}
