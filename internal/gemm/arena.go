package gemm

import (
	"sync"

	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/workload"
)

// execArena is one worker's persistent execution context for functional
// bank simulation: the DPU (whose MRAM/WRAM recycle their segments across
// kernel runs), the kernel Workspace (accumulators, staging and
// verification scratch), and the reusable tile with its grow-only operand
// storage. A shard worker acquires one arena, pushes every bank tile it
// owns through it, and returns it to the engine pool — so a full-grid run
// over thousands of tiles allocates a handful of arenas once and nothing
// per tile in steady state.
//
// Determinism survives recycling because nothing in an arena carries
// information between tiles: the DPU is Reset by every kernel run, recycled
// memory is re-zeroed on allocation, the tile operands are fully
// overwritten by tileFor, and the workspace holds only scratch that kernels
// fully write before reading.
type execArena struct {
	cfg  pim.Config // config value the DPU was built against
	dpu  *pim.DPU
	ws   *kernels.Workspace
	tile kernels.Tile
	w    []uint8
	a    []uint8
	o    []int32
	req  kernels.Request
}

// bind points the arena at the engine's machine configuration, rebuilding
// the DPU only when the configuration value actually changed (arenas are
// shared across Clone'd engines, which may differ in Cfg).
func (ar *execArena) bind(cfg *pim.Config) {
	if ar.dpu == nil || ar.cfg != *cfg {
		ar.cfg = *cfg
		ar.dpu = pim.NewDPU(cfg)
		return
	}
	// Same machine by value: rebind the pointer so charges use the caller's
	// live Config (identical numbers either way).
	ar.dpu.Cfg = cfg
}

// tileFor assembles the bank tile at task t from the pair into the arena's
// reusable storage, mirroring buildTileAt (including NewTile's zeroed
// output) without allocating once the slices have grown to the shape.
func (ar *execArena) tileFor(pair *workload.GEMMPair, t bankTask) *kernels.Tile {
	if cap(ar.w) < t.tileM*pair.K {
		ar.w = make([]uint8, t.tileM*pair.K)
	}
	w := ar.w[:t.tileM*pair.K]
	for m := 0; m < t.tileM; m++ {
		src := (t.m0 + m) * pair.K
		copy(w[m*pair.K:(m+1)*pair.K], pair.W.Codes[src:src+pair.K])
	}
	if cap(ar.a) < pair.K*t.tileN {
		ar.a = make([]uint8, pair.K*t.tileN)
	}
	a := ar.a[:pair.K*t.tileN]
	for k := 0; k < pair.K; k++ {
		src := k*pair.N + t.n0
		copy(a[k*t.tileN:(k+1)*t.tileN], pair.A.Codes[src:src+t.tileN])
	}
	if cap(ar.o) < t.tileM*t.tileN {
		ar.o = make([]int32, t.tileM*t.tileN)
	}
	o := ar.o[:t.tileM*t.tileN]
	clear(o)
	ar.tile = kernels.Tile{M: t.tileM, K: pair.K, N: t.tileN, Fmt: pair.Fmt, W: w, A: a, O: o}
	return &ar.tile
}

// request returns the arena's kernel Request pointed at the tile.
func (ar *execArena) request(tile *kernels.Tile) *kernels.Request {
	ar.req = kernels.Request{DPU: ar.dpu, Tile: tile, WS: ar.ws}
	return &ar.req
}

// refCache memoizes full integer reference products per pair. The
// reference is variant-independent and bank tiles partition the output
// exactly, so one O(MKN) reference computation verifies every bank tile of
// every design run on the same pair — instead of one O(tile) ref GEMM
// (with its own operand decode) per tile per design. Keyed by pair
// identity (workload pairs are immutable after construction) and bounded:
// past refCacheMax pairs the cache clears, so long mixed-pair batch
// streams cannot pin products — or their pairs — forever.
type refCache struct {
	mu  sync.Mutex
	out map[*workload.GEMMPair][]int32
}

// refCacheMax bounds retained reference products (and the pairs their keys
// pin). A RunBatch's worth of concurrent members fits comfortably.
const refCacheMax = 32

// product returns the full M x N reference product of the pair. The
// compute runs outside the lock so concurrent batch members working on
// different pairs never serialize on each other's O(MKN) reference; two
// members racing on the same fresh pair may compute it twice, which is
// benign (identical values, one retained). The returned slice is shared
// and must be treated as read-only.
func (c *refCache) product(pair *workload.GEMMPair) ([]int32, error) {
	c.mu.Lock()
	if out, ok := c.out[pair]; ok {
		c.mu.Unlock()
		return out, nil
	}
	c.mu.Unlock()

	full, err := fullTile(pair)
	if err != nil {
		return nil, err
	}
	out := kernels.RefGEMM(full)

	c.mu.Lock()
	if c.out == nil {
		c.out = make(map[*workload.GEMMPair][]int32)
	} else if len(c.out) >= refCacheMax {
		clear(c.out)
	}
	c.out[pair] = out
	c.mu.Unlock()
	return out, nil
}

// verifyAgainst checks one bank tile's output against its window of the
// full reference product.
func verifyAgainst(ref []int32, pairN int, t bankTask, out []int32) bool {
	for m := 0; m < t.tileM; m++ {
		row := ref[(t.m0+m)*pairN+t.n0 : (t.m0+m)*pairN+t.n0+t.tileN]
		got := out[m*t.tileN : (m+1)*t.tileN]
		for n, v := range row {
			if got[n] != v {
				return false
			}
		}
	}
	return true
}

// arenaPool is an unbounded free list of execution arenas shared by an
// engine and all its clones. Unlike sync.Pool it never drops members under
// GC pressure, so steady-state execution stays allocation-free; the pool
// size is bounded by the maximum worker count ever in flight at once.
type arenaPool struct {
	mu   sync.Mutex
	free []*execArena
}

func newArenaPool() *arenaPool { return &arenaPool{} }

// get pops an arena (or builds one) bound to the engine's configuration.
func (p *arenaPool) get(cfg *pim.Config) *execArena {
	var ar *execArena
	p.mu.Lock()
	if n := len(p.free); n > 0 {
		ar = p.free[n-1]
		p.free = p.free[:n-1]
	}
	p.mu.Unlock()
	if ar == nil {
		ar = &execArena{ws: kernels.NewWorkspace()}
	}
	ar.bind(cfg)
	return ar
}

// put returns an arena to the free list.
func (p *arenaPool) put(ar *execArena) {
	if ar == nil {
		return
	}
	p.mu.Lock()
	p.free = append(p.free, ar)
	p.mu.Unlock()
}

// pool returns the engine's arena pool, falling back to a fresh one for
// zero-value engines constructed without NewEngine (pooling still works
// within each run; only cross-run reuse is lost).
func (e *Engine) pool() *arenaPool {
	if e.arenas == nil {
		return newArenaPool()
	}
	return e.arenas
}
