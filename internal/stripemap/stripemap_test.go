package stripemap

import (
	"sync"
	"testing"
)

// identity hash: spreads sequential int keys over shards via the
// avalanche step in shardFor.
func intHash(k int) uint64 { return uint64(k) }

func TestLookupStore(t *testing.T) {
	m := New[int, string](intHash)
	if _, ok := m.Lookup(1); ok {
		t.Fatal("empty map reported a hit")
	}
	m.Store(1, "one")
	m.Store(2, "two")
	if v, ok := m.Lookup(1); !ok || v != "one" {
		t.Fatalf("Lookup(1) = %q, %v", v, ok)
	}
	if v, ok := m.Lookup(2); !ok || v != "two" {
		t.Fatalf("Lookup(2) = %q, %v", v, ok)
	}
	// Overwrite is last-store-wins.
	m.Store(1, "uno")
	if v, _ := m.Lookup(1); v != "uno" {
		t.Fatalf("after overwrite Lookup(1) = %q", v)
	}
}

func TestStatsCounters(t *testing.T) {
	m := New[int, int](intHash)
	for i := 0; i < 10; i++ {
		m.Lookup(i) // 10 misses
	}
	for i := 0; i < 10; i++ {
		m.Store(i, i*i)
	}
	for i := 0; i < 10; i++ {
		m.Lookup(i) // 10 hits
	}
	hits, misses := m.Stats()
	if hits != 10 || misses != 10 {
		t.Fatalf("Stats() = %d hits, %d misses; want 10, 10", hits, misses)
	}
}

func TestKeysSpreadAcrossShards(t *testing.T) {
	m := New[int, int](intHash)
	const n = 10_000
	for i := 0; i < n; i++ {
		m.Store(i, i)
	}
	occupied := 0
	for i := range m.shards {
		if len(m.shards[i].m) > 0 {
			occupied++
		}
	}
	if occupied < numShards/2 {
		t.Errorf("%d keys landed in only %d of %d shards", n, occupied, numShards)
	}
	total := 0
	for i := range m.shards {
		total += len(m.shards[i].m)
	}
	if total != n {
		t.Errorf("stored %d keys, shards hold %d", n, total)
	}
}

// TestConcurrentAccess hammers the map from many goroutines; run under
// -race this pins the striping's synchronization.
func TestConcurrentAccess(t *testing.T) {
	m := New[int, int](intHash)
	const (
		workers = 16
		keys    = 512
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < keys; i++ {
				k := (w*keys + i) % keys // overlapping key sets across workers
				if v, ok := m.Lookup(k); ok && v != k*k {
					t.Errorf("Lookup(%d) = %d, want %d", k, v, k*k)
					return
				}
				m.Store(k, k*k)
				if v, ok := m.Lookup(k); !ok || v != k*k {
					t.Errorf("read-after-write Lookup(%d) = %d, %v", k, v, ok)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	hits, misses := m.Stats()
	if hits+misses != 2*workers*keys {
		t.Errorf("counter total %d, want %d", hits+misses, 2*workers*keys)
	}
	for i := 0; i < keys; i++ {
		if v, ok := m.Lookup(i); !ok || v != i*i {
			t.Fatalf("final Lookup(%d) = %d, %v", i, v, ok)
		}
	}
}
