// Package stripemap provides the lock-striped hash map behind the
// simulator's concurrent memo caches (gemm.CostMemo, costmodel.Cache).
// High -j runs consult those memos on every worker's hot path; striping by
// key hash keeps workers off a single mutex cacheline, and the hit/miss
// counters live inside the shards — updated under the lock already held —
// so diagnostics add no shared atomic cacheline either.
package stripemap

import "sync"

// numShards is the striping factor: enough to spread any plausible host
// core count, at a few hundred bytes of fixed overhead per map.
const numShards = 64

type shard[K comparable, V any] struct {
	mu     sync.Mutex
	m      map[K]V
	hits   int64
	misses int64
}

// Map is a lock-striped map for concurrent memoization. Values must be
// pure functions of their keys: whichever caller stores a key first, every
// later reader gets equivalent data, so striping can never perturb
// results. The zero value is not ready; use New.
type Map[K comparable, V any] struct {
	hash   func(K) uint64
	shards [numShards]shard[K, V]
}

// New returns an empty map striped by the given key hash. The hash only
// picks stripes — it needs to spread the keys that occur together in one
// run, not be collision-free.
func New[K comparable, V any](hash func(K) uint64) *Map[K, V] {
	sm := &Map[K, V]{hash: hash}
	for i := range sm.shards {
		sm.shards[i].m = make(map[K]V)
	}
	return sm
}

func (sm *Map[K, V]) shardFor(k K) *shard[K, V] {
	h := sm.hash(k)
	h ^= h >> 29
	return &sm.shards[h%numShards]
}

// Lookup returns the memoized value for the key, counting a hit or miss.
func (sm *Map[K, V]) Lookup(k K) (V, bool) {
	s := sm.shardFor(k)
	s.mu.Lock()
	v, ok := s.m[k]
	if ok {
		s.hits++
	} else {
		s.misses++
	}
	s.mu.Unlock()
	return v, ok
}

// Store records the value for the key.
func (sm *Map[K, V]) Store(k K, v V) {
	s := sm.shardFor(k)
	s.mu.Lock()
	s.m[k] = v
	s.mu.Unlock()
}

// Stats sums the per-shard hit/miss counters.
func (sm *Map[K, V]) Stats() (hits, misses int64) {
	for i := range sm.shards {
		s := &sm.shards[i]
		s.mu.Lock()
		hits += s.hits
		misses += s.misses
		s.mu.Unlock()
	}
	return hits, misses
}
