package hostsim

import (
	"testing"

	"github.com/ais-snu/localut/internal/quant"
)

func TestGEMMBasics(t *testing.T) {
	cpu := XeonGold5215()
	rep, err := cpu.GEMM(12288, 192, 65536, quant.W1A3)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seconds <= 0 || rep.Joules <= 0 {
		t.Errorf("report %+v", rep)
	}
	// 154.6 GMACs at 16 GMAC/s ~ 9.7 s: the Fig. 17 CPU magnitude.
	if rep.Seconds < 5 || rep.Seconds > 15 {
		t.Errorf("CPU W1A3 Fig.17 shape time = %g s, want ~10 s", rep.Seconds)
	}
}

func TestGPUFasterThanCPU(t *testing.T) {
	cpu, gpu := XeonGold5215(), RTX2080Ti()
	for _, f := range quant.Formats {
		rc, err := cpu.GEMM(12288, 192, 65536, f)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := gpu.GEMM(12288, 192, 65536, f)
		if err != nil {
			t.Fatal(err)
		}
		if rg.Seconds >= rc.Seconds {
			t.Errorf("%s: GPU (%g) not faster than CPU (%g)", f.Name(), rg.Seconds, rc.Seconds)
		}
	}
}

func TestGPUW4A4MuchFasterThanW1(t *testing.T) {
	// The dp4a path makes W4A4 far more efficient than 1-bit formats on
	// the GPU — the source of the Fig. 17 crossover.
	gpu := RTX2080Ti()
	r1, _ := gpu.GEMM(4096, 4096, 4096, quant.W1A3)
	r4, _ := gpu.GEMM(4096, 4096, 4096, quant.W4A4)
	if r4.Seconds*2 > r1.Seconds {
		t.Errorf("W4A4 %g should be >2x faster than W1A3 %g on GPU", r4.Seconds, r1.Seconds)
	}
}

func TestMemoryBound(t *testing.T) {
	// A skinny GEMM (tiny K) must hit the memory roofline.
	gpu := RTX2080Ti()
	rep, err := gpu.GEMM(10000, 1, 10000, quant.W4A4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ComputeBound {
		t.Error("K=1 GEMM reported compute-bound")
	}
}

func TestValidation(t *testing.T) {
	cpu := XeonGold5215()
	if _, err := cpu.GEMM(0, 1, 1, quant.W1A3); err == nil {
		t.Error("accepted M=0")
	}
	d := Device{Name: "x", MACsPerSec: map[int]float64{}, MemBW: 1}
	if _, err := d.GEMM(1, 1, 1, quant.W1A3); err == nil {
		t.Error("accepted missing bit-width entry")
	}
}
