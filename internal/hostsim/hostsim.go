// Package hostsim models the conventional CPU and GPU baselines of §VI-H
// (Fig. 17) as rooflines: low-bit GEMM time is the maximum of the compute
// bound (effective MAC throughput at the given bit-width, including
// pack/unpack overheads) and the memory bound (operand traffic over
// device bandwidth), plus a power model for the energy comparison.
//
// Neither device supports sub-8-bit arithmetic natively: the CPU unpacks
// codes into int8 lanes (AVX-512 VNNI class) and the GPU uses dp4a-style
// int8/int4 paths with CUDA-core bit manipulation below that, which is why
// effective throughput falls as the format gets narrower — the opposite of
// LoCaLUT's trend, producing the crossover Fig. 17 shows at W4A4.
package hostsim

import (
	"fmt"

	"github.com/ais-snu/localut/internal/quant"
)

// Device is an analytic GEMM execution model.
type Device struct {
	Name string
	// MACsPerSec maps the weight bit-width to effective MAC throughput.
	MACsPerSec map[int]float64
	// MemBW is the device memory bandwidth in bytes/s.
	MemBW float64
	// ActiveW and IdleW price energy.
	ActiveW, IdleW float64
}

// XeonGold5215 models the testbed CPU: 10 cores with AVX-512. Low-bit
// codes must be unpacked to int8 lanes, so effective throughput degrades
// below 8 bits and the unpack cost grows as widths shrink.
func XeonGold5215() Device {
	return Device{
		Name: "CPU (Xeon Gold 5215)",
		MACsPerSec: map[int]float64{
			1: 16e9, 2: 20e9, 4: 28e9, 8: 60e9,
		},
		MemBW:   90e9,
		ActiveW: 125, IdleW: 40,
	}
}

// RTX2080Ti models the testbed GPU: the dp4a int8/int4 path makes W4A4
// efficient, while 1-3-bit formats (which have no tensor-core or dp4a
// support) fall back to CUDA-core mask/shift extraction at roughly two
// orders of magnitude below peak — the regime where Fig. 17 shows LoCaLUT
// overtaking the GPU.
func RTX2080Ti() Device {
	return Device{
		Name: "GPU (RTX 2080 Ti)",
		MACsPerSec: map[int]float64{
			1: 130e9, 2: 110e9, 4: 1.0e12, 8: 2.2e12,
		},
		MemBW:   616e9,
		ActiveW: 250, IdleW: 55,
	}
}

// Report is one modelled GEMM execution.
type Report struct {
	Device  string
	Seconds float64
	Joules  float64
	// ComputeBound reports whether the compute roofline was binding.
	ComputeBound bool
}

// GEMM evaluates the roofline for an M x K x N product in the format.
func (d Device) GEMM(m, k, n int, f quant.Format) (*Report, error) {
	if m <= 0 || k <= 0 || n <= 0 {
		return nil, fmt.Errorf("hostsim: invalid GEMM %dx%dx%d", m, k, n)
	}
	rate, ok := d.MACsPerSec[f.Weight.Bits]
	if !ok {
		return nil, fmt.Errorf("hostsim: %s has no throughput entry for %d-bit weights", d.Name, f.Weight.Bits)
	}
	macs := float64(m) * float64(k) * float64(n)
	compute := macs / rate

	wBytes := float64(m) * float64(k) * float64(f.Weight.Bits) / 8
	aBytes := float64(k) * float64(n) * float64(f.Act.Bits) / 8
	oBytes := float64(m) * float64(n) * 4
	memory := (wBytes + aBytes + oBytes) / d.MemBW

	sec := compute
	bound := true
	if memory > sec {
		sec = memory
		bound = false
	}
	return &Report{
		Device:       d.Name,
		Seconds:      sec,
		Joules:       sec * d.ActiveW,
		ComputeBound: bound,
	}, nil
}
