package serve

// Request is one inference request moving through a simulator. The serve
// package's single-appliance loop and the cluster package's fleet loop
// both construct Requests at their traffic layer (sampling lengths from
// their own seeded distributions) and hand them to an Instance for
// service; the Instance mutates the service-side fields (Start, FirstTok,
// Finish, Generated) as the request advances.
type Request struct {
	ID     int
	Client int // closed-loop client index, -1 for open-loop/trace arrivals
	Class  int // SLO class index (cluster populations; 0 in single-appliance runs)

	Tokens int // sampled prompt length
	Padded int // prompt tokens rounded up to the token quantum

	OutLen    int // sampled output tokens (0 = prefill-only serving)
	Generated int // decode tokens produced so far (beyond the prefill token)

	Arrive, Start, FirstTok, Finish float64 // simulated seconds
}

// Completion kinds: what an Instance schedules when a replica starts a
// forward pass. evArrival (0) is reserved for the traffic layers' own
// arrival events so kinds can share one event-kind namespace.
const (
	// CompletionPrefill is a batched prefill pass finishing.
	CompletionPrefill = 1
	// CompletionStep is one token-level decode step finishing.
	CompletionStep = 2
)

// Completion is a forward pass an Instance has started: the caller owns
// the clock, so it schedules the completion on its own event heap and
// calls PrefillDone or StepDone when simulated time reaches At.
type Completion struct {
	At      float64
	Kind    int // CompletionPrefill or CompletionStep
	Replica int
	Batch   []*Request // CompletionPrefill only
}

// Instance is one appliance's serving state machine: the admission queue,
// batch-forming scheduler, per-replica prefill/decode service and the
// pricing oracle — everything below the traffic layer. It owns no clock
// and no event heap: callers (the single-appliance loop here, the fleet
// loop in internal/cluster) deliver arrivals via Admit, start idle
// replicas via Dispatch, and deliver completions back in event order.
// Instances are not safe for concurrent use; a simulation's event loop is
// serial by construction.
type Instance struct {
	ID  int
	Cfg Config // normalized per-instance configuration

	// OnFirstToken fires at prefill completion of every decode-enabled
	// request (its TTFT moment). OnFinish fires when a request fully
	// completes, after its Finish timestamp is set. Both run inline in
	// event order, so callbacks may aggregate float samples and stay
	// deterministic. Nil callbacks are skipped.
	OnFirstToken func(r *Request, now float64)
	OnFinish     func(r *Request, now float64)

	oracle *Oracle
	sched  scheduler
	q      queue

	replicaBusy []bool
	live        [][]*Request // per-replica decode batch
	busy        []float64    // accumulated service seconds per replica
	pimBusy     float64      // accumulated PIM-kernel seconds across replicas

	kvPerToken   int64 // KV bytes one cached token occupies
	kvPeak       int64 // largest per-replica KV footprint seen
	kvCapacity   int64 // replica DRAM capacity net of the LUT budget
	queuedTokens int64 // prompt tokens waiting in the queue
	liveTokens   int64 // context tokens held by live decode requests

	outstanding int // admitted but not yet finished
	admitted    int
	finished    int
	batches     int
	batchReqs   int
	steps       int

	tokensIn, tokensPadded, tokensOut int64
	energyJ                           float64
}

// NewInstance builds an instance from a per-instance config (arrival
// fields are ignored; NormalizeInstance fills the service defaults). A
// non-nil oracle is shared — fleets of identical appliances reuse one
// memo so each distinct forward-pass shape is planned once per fleet, not
// once per instance. Sharing is only safe from a single event loop.
func NewInstance(cfg Config, id int, o *Oracle) (*Instance, error) {
	cfg, err := cfg.NormalizeInstance()
	if err != nil {
		return nil, err
	}
	sched, err := newScheduler(cfg.Scheduler, cfg.PackWindow)
	if err != nil {
		return nil, err
	}
	if o == nil {
		o = NewOracle(&cfg)
	}
	inst := &Instance{
		ID:          id,
		Cfg:         cfg,
		oracle:      o,
		sched:       sched,
		replicaBusy: make([]bool, cfg.Replicas),
		busy:        make([]float64, cfg.Replicas),
		live:        make([][]*Request, cfg.Replicas),
		kvPerToken:  2 * int64(cfg.Model.Layers) * int64(cfg.Model.Hidden) * kvBytesPerElem,
	}
	// One replica's DRAM capacity net of the LUT budget: the part of the
	// paper's capacity axis KV state competes for.
	pcfg := &cfg.Engine.Cfg
	rankShare := pcfg.Ranks / cfg.Replicas
	if rankShare < 1 {
		rankShare = 1
	}
	inst.kvCapacity = int64(rankShare*pcfg.BanksPerRank) * (pcfg.MRAMBytes - pcfg.MRAMLUTBudget())
	return inst, nil
}

// Admit enqueues an arrived request.
func (inst *Instance) Admit(r *Request) {
	inst.admitted++
	inst.outstanding++
	inst.queuedTokens += int64(r.Tokens)
	inst.q.push(r)
}

// Dispatch starts work on every idle replica: a prefill pass when
// requests wait and the replica's decode batch has room (prefill priority
// keeps TTFT low and is how newly queued requests join the decode batch
// at step boundaries), else one decode step over the live batch. It
// returns the completions the caller must schedule, in replica order.
func (inst *Instance) Dispatch(now float64) ([]Completion, error) {
	var out []Completion
	for rep := range inst.replicaBusy {
		if inst.replicaBusy[rep] {
			continue
		}
		c, started, err := inst.startWork(rep, now)
		if err != nil {
			return nil, err
		}
		if started {
			out = append(out, c)
		}
	}
	return out, nil
}

// startWork launches the idle replica's next forward pass, if any.
func (inst *Instance) startWork(rep int, now float64) (Completion, bool, error) {
	if room := inst.Cfg.MaxBatch - len(inst.live[rep]); room > 0 && inst.q.len() > 0 {
		batch := inst.sched.pick(&inst.q, room)
		// Members are already quantum-padded, so their sum is the batch's
		// padded shape; ctx is the longest member (attention span).
		padTokens, maxPad := 0, 0
		for _, r := range batch {
			r.Start = now
			padTokens += r.Padded
			inst.tokensIn += int64(r.Tokens)
			inst.queuedTokens -= int64(r.Tokens)
			if r.Padded > maxPad {
				maxPad = r.Padded
			}
		}
		cost, err := inst.oracle.batch(padTokens, maxPad)
		if err != nil {
			return Completion{}, false, err
		}
		inst.tokensPadded += int64(padTokens)
		inst.energyJ += cost.energyJ
		inst.busy[rep] += cost.seconds
		inst.pimBusy += cost.pimSec
		inst.batches++
		inst.batchReqs += len(batch)
		inst.replicaBusy[rep] = true
		return Completion{At: now + cost.seconds, Kind: CompletionPrefill, Replica: rep, Batch: batch}, true, nil
	}
	if live := inst.live[rep]; len(live) > 0 {
		// One decode step: each live request's next token attends its
		// prompt plus everything generated so far. Attention cost is
		// linear in the context, so pricing the batch at its mean context
		// is exact; the mean is then bucketed to the token quantum so the
		// oracle's step memo stays bounded.
		// ctxSum prices attention over the padded (shape-bucketed) prompt;
		// kvTokens gauges physical KV state, so it counts the real prompt
		// lengths — padding is a pricing artifact, not cached memory.
		ctxSum, kvTokens := 0, 0
		for _, r := range live {
			ctxSum += r.Padded + r.Generated + 1
			kvTokens += r.Tokens + r.Generated + 1
		}
		n := len(live)
		ctx := roundUp((ctxSum+n-1)/n, inst.Cfg.TokenQuantum)
		cost, err := inst.oracle.decodeStep(n, ctx)
		if err != nil {
			return Completion{}, false, err
		}
		inst.energyJ += cost.energyJ
		inst.busy[rep] += cost.seconds
		inst.pimBusy += cost.pimSec
		inst.steps++
		inst.replicaBusy[rep] = true
		// KV gauge: during the step the replica holds every live context
		// plus the newly written token per sequence.
		if kv := int64(kvTokens+n) * inst.kvPerToken; kv > inst.kvPeak {
			inst.kvPeak = kv
		}
		return Completion{At: now + cost.seconds, Kind: CompletionStep, Replica: rep}, true, nil
	}
	return Completion{}, false, nil
}

// PrefillDone delivers a CompletionPrefill back to the instance: batch
// members emit their first token (OnFirstToken), join the replica's live
// decode batch when more tokens remain, or finish.
func (inst *Instance) PrefillDone(replica int, batch []*Request, now float64) {
	inst.replicaBusy[replica] = false
	for _, r := range batch {
		r.FirstTok = now
		if r.OutLen > 0 && inst.OnFirstToken != nil {
			inst.OnFirstToken(r, now)
		}
		if r.OutLen > 1 {
			// The prefill pass emitted the first output token; the
			// remaining OutLen-1 decode at token granularity.
			inst.live[replica] = append(inst.live[replica], r)
			inst.liveTokens += int64(r.Tokens + 1)
		} else {
			inst.retire(r, now)
		}
	}
}

// StepDone delivers a CompletionStep: every live request on the replica
// gained one token; finished requests retire, survivors stay live.
func (inst *Instance) StepDone(replica int, now float64) {
	inst.replicaBusy[replica] = false
	live := inst.live[replica]
	surv := live[:0]
	for _, r := range live {
		r.Generated++
		if r.Generated >= r.OutLen-1 {
			inst.liveTokens -= int64(r.Tokens + r.Generated)
			inst.retire(r, now)
		} else {
			inst.liveTokens++
			surv = append(surv, r)
		}
	}
	for i := len(surv); i < len(live); i++ {
		live[i] = nil
	}
	inst.live[replica] = surv
}

// retire completes a request: timestamps, token accounting, callback.
func (inst *Instance) retire(r *Request, now float64) {
	r.Finish = now
	inst.finished++
	inst.outstanding--
	inst.tokensOut += int64(r.OutLen)
	if inst.OnFinish != nil {
		inst.OnFinish(r, now)
	}
}

// Outstanding reports admitted-but-unfinished requests — the
// least-outstanding-requests routing signal, and zero exactly when the
// instance is fully drained (no queue, no live batch, no pass in flight).
func (inst *Instance) Outstanding() int { return inst.outstanding }

// QueueLen reports requests waiting for a prefill slot.
func (inst *Instance) QueueLen() int { return inst.q.len() }

// KVDemandBytes estimates the KV footprint the instance's current load
// pins: live decode contexts plus queued prompts (which will pin KV once
// admitted). Maintained incrementally, so routing stays O(1) per request.
func (inst *Instance) KVDemandBytes() int64 {
	return (inst.queuedTokens + inst.liveTokens) * inst.kvPerToken
}

// KVFreeBytes is the replica KV capacity left after current demand — the
// weighted-by-free-KV routing signal. It can go negative under
// oversubscription; routers compare, not allocate, so that is fine.
func (inst *Instance) KVFreeBytes() int64 { return inst.kvCapacity - inst.KVDemandBytes() }

// Oracle returns the instance's pricing oracle (shared across a fleet of
// identical appliances).
func (inst *Instance) Oracle() *Oracle { return inst.oracle }

// InstanceStats is a snapshot of an instance's service counters, taken
// for per-instance cluster reporting.
type InstanceStats struct {
	Admitted, Finished int
	Batches            int
	BatchRequests      int
	DecodeSteps        int

	TokensIn, TokensPadded, TokensOut int64
	EnergyJ                           float64

	BusySeconds    []float64 // per replica
	PIMBusySeconds float64

	KVPeakBytes, KVCapacityBytes int64
}

// Stats snapshots the instance's counters.
func (inst *Instance) Stats() InstanceStats {
	busy := make([]float64, len(inst.busy))
	copy(busy, inst.busy)
	return InstanceStats{
		Admitted:        inst.admitted,
		Finished:        inst.finished,
		Batches:         inst.batches,
		BatchRequests:   inst.batchReqs,
		DecodeSteps:     inst.steps,
		TokensIn:        inst.tokensIn,
		TokensPadded:    inst.tokensPadded,
		TokensOut:       inst.tokensOut,
		EnergyJ:         inst.energyJ,
		BusySeconds:     busy,
		PIMBusySeconds:  inst.pimBusy,
		KVPeakBytes:     inst.kvPeak,
		KVCapacityBytes: inst.kvCapacity,
	}
}
