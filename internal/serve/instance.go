package serve

import (
	"fmt"

	"github.com/ais-snu/localut/internal/obs"
)

// Request is one inference request moving through a simulator. The serve
// package's single-appliance loop and the cluster package's fleet loop
// both construct Requests at their traffic layer (sampling lengths from
// their own seeded distributions) and hand them to an Instance for
// service; the Instance mutates the service-side fields (Start, FirstTok,
// Finish, Generated) as the request advances.
type Request struct {
	ID     int
	Client int // closed-loop client index, -1 for open-loop/trace arrivals
	Class  int // SLO class index (cluster populations; 0 in single-appliance runs)

	Tokens int // sampled prompt length
	Padded int // prompt tokens rounded up to the token quantum

	OutLen    int // sampled output tokens (0 = prefill-only serving)
	Generated int // decode tokens produced so far (beyond the prefill token)

	Deadline float64 // absolute completion deadline in simulated seconds; 0 = none
	Attempts int     // service attempts so far (admissions to an instance)

	// Hedging fields, owned by the traffic layer. Twin links the two
	// copies of a hedged request (each points at the other); Hedge marks
	// the duplicate copy; Member is the instance currently serving this
	// copy (-1 while unrouted); Dropped marks a copy the traffic layer has
	// retired (its twin won, or a fault displaced it past usefulness) so
	// parked retry events can recognize it as dead.
	Twin    *Request
	Hedge   bool
	Member  int
	Dropped bool

	// canceled marks a copy the owning Instance has been told to abandon
	// mid-service; PrefillDone/StepDone/Crash skip canceled members.
	canceled bool

	Arrive, Start, FirstTok, Finish float64 // simulated seconds
}

// Expired reports whether the request's deadline (if any) has passed.
func (r *Request) Expired(now float64) bool {
	return r.Deadline > 0 && now > r.Deadline
}

// Completion kinds: what an Instance schedules when a replica starts a
// forward pass. evArrival (0) is reserved for the traffic layers' own
// arrival events so kinds can share one event-kind namespace.
const (
	// CompletionPrefill is a batched prefill pass finishing.
	CompletionPrefill = 1
	// CompletionStep is one token-level decode step finishing.
	CompletionStep = 2
)

// Completion is a forward pass an Instance has started: the caller owns
// the clock, so it schedules the completion on its own event heap and
// calls PrefillDone or StepDone when simulated time reaches At. Epoch
// snapshots the replica's fault epoch at launch; a caller injecting
// faults must drop completions whose epoch no longer matches
// ReplicaEpoch (the pass was vaporized by a crash or replica failure).
type Completion struct {
	At      float64
	Kind    int // CompletionPrefill or CompletionStep
	Replica int
	Epoch   int
	Batch   []*Request // CompletionPrefill only
}

// KVPolicy selects how an Instance treats its per-replica KV capacity.
type KVPolicy int

const (
	// KVGauge is the legacy passive mode: capacity is reported (peak,
	// utilization) but never enforced; replicas oversubscribe silently.
	KVGauge KVPolicy = iota
	// KVStall enforces the budget by stalling prefill admission: a batch
	// prefix that fits launches, the rest waits at the head of the queue
	// until decode retirements free KV.
	KVStall
	// KVShed enforces the budget by shedding: requests that don't fit the
	// replica's remaining KV at batch-forming time are dropped.
	KVShed
)

var kvPolicyNames = [...]string{"gauge", "stall", "shed"}

func (p KVPolicy) String() string {
	if p >= 0 && int(p) < len(kvPolicyNames) {
		return kvPolicyNames[p]
	}
	return "KVPolicy(?)"
}

// ParseKVPolicy parses "gauge", "stall" or "shed".
func ParseKVPolicy(s string) (KVPolicy, error) {
	for i, n := range kvPolicyNames {
		if s == n {
			return KVPolicy(i), nil
		}
	}
	return 0, fmt.Errorf("serve: unknown KV policy %q (want gauge, stall or shed)", s)
}

// ShedReason says why an Instance dropped a request it had admitted.
type ShedReason int

const (
	// ShedDeadline: the request's deadline expired while it queued.
	ShedDeadline ShedReason = iota
	// ShedKV: the KV budget policy dropped it (KVShed overflow, or a
	// prompt that cannot fit an empty replica under any policy).
	ShedKV
)

// Instance is one appliance's serving state machine: the admission queue,
// batch-forming scheduler, per-replica prefill/decode service and the
// pricing oracle — everything below the traffic layer. It owns no clock
// and no event heap: callers (the single-appliance loop here, the fleet
// loop in internal/cluster) deliver arrivals via Admit, start idle
// replicas via Dispatch, and deliver completions back in event order.
// Instances are not safe for concurrent use; a simulation's event loop is
// serial by construction.
type Instance struct {
	ID  int
	Cfg Config // normalized per-instance configuration

	// OnFirstToken fires at prefill completion of every decode-enabled
	// request (its TTFT moment). OnFinish fires when a request fully
	// completes, after its Finish timestamp is set. OnShed fires when the
	// instance drops an admitted request (deadline expiry, KV pressure).
	// All run inline in event order, so callbacks may aggregate float
	// samples and stay deterministic. Nil callbacks are skipped.
	OnFirstToken func(r *Request, now float64)
	OnFinish     func(r *Request, now float64)
	OnShed       func(r *Request, now float64, reason ShedReason)

	// rec receives batch spans (prefill/decode passes) and KV-stall
	// instants. Nil — the default — makes every hook a single nil check.
	rec *obs.Recorder

	oracle *Oracle
	sched  scheduler
	q      queue

	replicaBusy []bool
	live        [][]*Request // per-replica decode batch
	inflight    [][]*Request // per-replica prefill batch whose pass is running
	busy        []float64    // accumulated service seconds per replica
	pimBusy     float64      // accumulated PIM-kernel seconds across replicas

	// Fault bookkeeping. repEpoch bumps whenever a replica loses state
	// (instance crash, replica failure) so stale completions can be
	// recognized; repDown marks replicas lost to a degraded-mode fault;
	// passEnd/passSec/passPIM/passEnergy describe the running pass so an
	// abort can refund its unelapsed cost. passShare is the fraction of
	// the running pass still chargeable — cancellations refund their
	// member's share immediately and shrink it, so a later abort of the
	// same pass cannot refund that share twice.
	repEpoch   []int
	repDown    []bool
	passEnd    []float64
	passSec    []float64
	passPIM    []float64
	passEnergy []float64
	passShare  []float64

	// slowdown is the gray-failure speed factor: every priced pass takes
	// slowdown times its oracle cost in wall-clock seconds (and PIM-busy
	// seconds) while a straggler window is open. 1 = healthy. Energy is
	// unscaled: a slow member does the same work, just later.
	slowdown float64

	kvPerToken   int64   // KV bytes one cached token occupies
	kvPeak       int64   // largest per-replica KV footprint seen
	kvCapacity   int64   // replica DRAM capacity net of the LUT budget
	repKVTokens  []int64 // KV tokens currently pinned per replica (live contexts + in-flight prefill prompts)
	queuedTokens int64   // prompt tokens waiting in the queue
	liveTokens   int64   // context tokens held by live decode requests

	// Time integral of the KV gauge, for the time-weighted mean the peak
	// alone hides: kvByteSec accumulates bytes*seconds across replicas,
	// with kvLast the last accumulation instant per replica. Maintained by
	// touchKV before every repKVTokens mutation.
	kvByteSec float64
	kvLast    []float64

	outstanding int // admitted but not yet finished
	admitted    int
	finished    int
	shed        int
	canceled    int // hedge losers cancelled mid-service
	displaced   int // non-canceled requests handed back by Crash/FailReplica
	crashes     int
	degradedCnt int
	batches     int
	batchReqs   int
	steps       int

	tokensIn, tokensPadded, tokensOut int64
	energyJ                           float64
}

// NewInstance builds an instance from a per-instance config (arrival
// fields are ignored; NormalizeInstance fills the service defaults). A
// non-nil oracle is shared — fleets of identical appliances reuse one
// memo so each distinct forward-pass shape is planned once per fleet, not
// once per instance. Sharing is only safe from a single event loop.
func NewInstance(cfg Config, id int, o *Oracle) (*Instance, error) {
	cfg, err := cfg.NormalizeInstance()
	if err != nil {
		return nil, err
	}
	sched, err := newScheduler(cfg.Scheduler, cfg.PackWindow)
	if err != nil {
		return nil, err
	}
	if o == nil {
		o = NewOracle(&cfg)
	}
	inst := &Instance{
		ID:          id,
		Cfg:         cfg,
		oracle:      o,
		sched:       sched,
		replicaBusy: make([]bool, cfg.Replicas),
		busy:        make([]float64, cfg.Replicas),
		live:        make([][]*Request, cfg.Replicas),
		inflight:    make([][]*Request, cfg.Replicas),
		repEpoch:    make([]int, cfg.Replicas),
		repDown:     make([]bool, cfg.Replicas),
		passEnd:     make([]float64, cfg.Replicas),
		passSec:     make([]float64, cfg.Replicas),
		passPIM:     make([]float64, cfg.Replicas),
		passEnergy:  make([]float64, cfg.Replicas),
		passShare:   make([]float64, cfg.Replicas),
		slowdown:    1,
		repKVTokens: make([]int64, cfg.Replicas),
		kvLast:      make([]float64, cfg.Replicas),
		kvPerToken:  2 * int64(cfg.Model.Layers) * int64(cfg.Model.Hidden) * kvBytesPerElem,
	}
	// One replica's DRAM capacity net of the LUT budget: the part of the
	// paper's capacity axis KV state competes for.
	pcfg := &cfg.Engine.Cfg
	rankShare := pcfg.Ranks / cfg.Replicas
	if rankShare < 1 {
		rankShare = 1
	}
	inst.kvCapacity = int64(rankShare*pcfg.BanksPerRank) * (pcfg.MRAMBytes - pcfg.MRAMLUTBudget())
	return inst, nil
}

// SetRecorder attaches a trace recorder and registers the instance's
// tracks: pid ID+1, tid 0 for instance-level events and tid r+1 per
// replica. Safe to call with nil (tracing off) and after lifecycle churn
// (re-registration dedups).
func (inst *Instance) SetRecorder(rec *obs.Recorder) {
	inst.rec = rec
	pid := inst.ID + 1
	rec.Process(pid, fmt.Sprintf("instance %d (%s)", inst.ID, inst.Cfg.Variant))
	for r := 0; r < inst.Cfg.Replicas; r++ {
		rec.Thread(pid, r+1, fmt.Sprintf("replica %d", r))
	}
}

// touchKV integrates the replica's KV footprint up to now. It must run
// before every repKVTokens mutation so kvByteSec is the exact time
// integral of the gauge. The pre-first-prefill stretch integrates zero
// bytes, so the zero-initialized kvLast is correct even for instances
// launched mid-run.
func (inst *Instance) touchKV(rep int, now float64) {
	if dt := now - inst.kvLast[rep]; dt > 0 {
		inst.kvByteSec += float64(inst.repKVTokens[rep]*inst.kvPerToken) * dt
	}
	inst.kvLast[rep] = now
}

// KVByteSeconds flushes every replica's gauge to end and returns the
// accumulated bytes*seconds integral across replicas. Divide by
// span*replicas for the time-weighted mean KV footprint per replica.
func (inst *Instance) KVByteSeconds(end float64) float64 {
	for rep := range inst.repKVTokens {
		inst.touchKV(rep, end)
	}
	return inst.kvByteSec
}

// Admit enqueues an arrived request. It reports false — and leaves all
// counters untouched — when the admission queue is at its MaxQueue bound,
// so the caller can reroute or shed.
func (inst *Instance) Admit(r *Request) bool {
	if inst.Cfg.MaxQueue > 0 && inst.q.len() >= inst.Cfg.MaxQueue {
		return false
	}
	inst.admitted++
	inst.outstanding++
	inst.queuedTokens += int64(r.Tokens)
	inst.q.push(r)
	return true
}

// Dispatch starts work on every idle, healthy replica: a prefill pass
// when requests wait and the replica's decode batch has room (prefill
// priority keeps TTFT low and is how newly queued requests join the
// decode batch at step boundaries), else one decode step over the live
// batch. It returns the completions the caller must schedule, in replica
// order.
func (inst *Instance) Dispatch(now float64) ([]Completion, error) {
	var out []Completion
	for rep := range inst.replicaBusy {
		if inst.replicaBusy[rep] || inst.repDown[rep] {
			continue
		}
		c, started, err := inst.startWork(rep, now)
		if err != nil {
			return nil, err
		}
		if started {
			out = append(out, c)
		}
	}
	return out, nil
}

// startWork launches the idle replica's next forward pass, if any.
func (inst *Instance) startWork(rep int, now float64) (Completion, bool, error) {
	for {
		room := inst.Cfg.MaxBatch - len(inst.live[rep])
		if room <= 0 || inst.q.len() == 0 {
			break
		}
		batch := inst.sched.pick(&inst.q, room)
		batch = inst.dropExpired(batch, now)
		if len(batch) == 0 {
			continue // expired head shed; re-pick
		}
		if inst.Cfg.KVPolicy != KVGauge {
			var stalled bool
			batch, stalled = inst.fitKV(rep, batch, now)
			if stalled {
				break // overflow waits at the head; decode will free KV
			}
			if len(batch) == 0 {
				continue
			}
		}
		// Members are already quantum-padded, so their sum is the batch's
		// padded shape; ctx is the longest member (attention span).
		padTokens, maxPad, kvTok := 0, 0, 0
		for _, r := range batch {
			r.Start = now
			padTokens += r.Padded
			kvTok += r.Tokens
			inst.tokensIn += int64(r.Tokens)
			inst.queuedTokens -= int64(r.Tokens)
			if r.Padded > maxPad {
				maxPad = r.Padded
			}
		}
		cost, err := inst.oracle.batch(padTokens, maxPad)
		if err != nil {
			return Completion{}, false, err
		}
		cost = inst.slowCost(cost)
		inst.tokensPadded += int64(padTokens)
		inst.batches++
		inst.batchReqs += len(batch)
		inst.inflight[rep] = batch
		// The pass materializes every member's prompt KV on this replica;
		// the gauge must see prefill writes, not just decode contexts.
		inst.touchKV(rep, now)
		inst.repKVTokens[rep] += int64(kvTok)
		if kv := inst.repKVTokens[rep] * inst.kvPerToken; kv > inst.kvPeak {
			inst.kvPeak = kv
		}
		inst.notePass(rep, now, cost)
		inst.rec.Span(inst.ID+1, rep+1, "prefill", now, cost.seconds,
			obs.Num("reqs", float64(len(batch))), obs.Num("tokens", float64(padTokens)))
		return Completion{At: now + cost.seconds, Kind: CompletionPrefill, Replica: rep, Epoch: inst.repEpoch[rep], Batch: batch}, true, nil
	}
	if live := inst.live[rep]; len(live) > 0 {
		// One decode step: each live request's next token attends its
		// prompt plus everything generated so far. Attention cost is
		// linear in the context, so pricing the batch at its mean context
		// is exact; the mean is then bucketed to the token quantum so the
		// oracle's step memo stays bounded.
		// ctxSum prices attention over the padded (shape-bucketed) prompt;
		// the KV gauge counts real prompt lengths (via repKVTokens) —
		// padding is a pricing artifact, not cached memory.
		ctxSum := 0
		for _, r := range live {
			ctxSum += r.Padded + r.Generated + 1
		}
		n := len(live)
		ctx := roundUp((ctxSum+n-1)/n, inst.Cfg.TokenQuantum)
		cost, err := inst.oracle.decodeStep(n, ctx)
		if err != nil {
			return Completion{}, false, err
		}
		cost = inst.slowCost(cost)
		inst.steps++
		// KV gauge: during the step the replica holds every live context
		// plus the newly written token per sequence.
		if kv := (inst.repKVTokens[rep] + int64(n)) * inst.kvPerToken; kv > inst.kvPeak {
			inst.kvPeak = kv
		}
		inst.notePass(rep, now, cost)
		inst.rec.Span(inst.ID+1, rep+1, "decode", now, cost.seconds,
			obs.Num("n", float64(n)), obs.Num("ctx", float64(ctx)))
		return Completion{At: now + cost.seconds, Kind: CompletionStep, Replica: rep, Epoch: inst.repEpoch[rep]}, true, nil
	}
	return Completion{}, false, nil
}

// dropExpired sheds batch members whose deadline passed while queued.
func (inst *Instance) dropExpired(batch []*Request, now float64) []*Request {
	keep := batch[:0]
	for _, r := range batch {
		if r.Expired(now) {
			inst.shedQueued(r, now, ShedDeadline)
		} else {
			keep = append(keep, r)
		}
	}
	return keep
}

// fitKV trims a picked prefill batch to the replica's remaining KV
// budget. The fitting prefix launches; the rest stalls (returns to the
// head of the queue) or sheds per policy. A prompt that cannot fit even
// an empty replica is unservable and is shed under either policy. The
// second result is true when nothing fits and the caller must wait for
// decode retirements to free KV.
func (inst *Instance) fitKV(rep int, batch []*Request, now float64) ([]*Request, bool) {
	budget := inst.kvCapacity/inst.kvPerToken - inst.repKVTokens[rep]
	n := 0
	var used int64
	for _, r := range batch {
		if used+int64(r.Tokens) > budget {
			break
		}
		used += int64(r.Tokens)
		n++
	}
	if n == len(batch) {
		return batch, false
	}
	rest := batch[n:]
	if n == 0 && inst.repKVTokens[rep] == 0 {
		// Empty replica and the head still doesn't fit: no amount of
		// stalling will ever serve it.
		inst.shedQueued(rest[0], now, ShedKV)
		inst.q.pushFront(rest[1:])
		return nil, false
	}
	if inst.Cfg.KVPolicy == KVShed {
		for _, r := range rest {
			inst.shedQueued(r, now, ShedKV)
		}
		return batch[:n], false
	}
	inst.q.pushFront(rest)
	if n == 0 {
		inst.rec.Instant(inst.ID+1, rep+1, "kv-stall", now,
			obs.Num("waiting", float64(len(rest))))
		return nil, true
	}
	return batch[:n], false
}

// shedQueued drops a request that was picked from the queue but never
// launched (its tokens are still counted as queued).
func (inst *Instance) shedQueued(r *Request, now float64, reason ShedReason) {
	inst.queuedTokens -= int64(r.Tokens)
	inst.outstanding--
	inst.shed++
	if inst.OnShed != nil {
		inst.OnShed(r, now, reason)
	}
}

// notePass charges a launched pass and records it for abort refunds.
func (inst *Instance) notePass(rep int, now float64, cost batchCost) {
	inst.busy[rep] += cost.seconds
	inst.pimBusy += cost.pimSec
	inst.energyJ += cost.energyJ
	inst.passEnd[rep] = now + cost.seconds
	inst.passSec[rep] = cost.seconds
	inst.passPIM[rep] = cost.pimSec
	inst.passEnergy[rep] = cost.energyJ
	inst.passShare[rep] = 1
	inst.replicaBusy[rep] = true
}

// slowCost applies the gray-failure speed factor to a priced pass. The
// oracle memo is untouched: slowdown is a per-instance wall-clock effect,
// not a different forward pass.
func (inst *Instance) slowCost(cost batchCost) batchCost {
	if inst.slowdown != 1 {
		cost.seconds *= inst.slowdown
		cost.pimSec *= inst.slowdown
	}
	return cost
}

// SetSlowdown opens (factor > 1) or closes (factor 1) a straggler window:
// subsequent passes are priced at factor times their healthy cost.
// Passes already in flight keep their launch-time pricing — a window
// boundary mid-pass would otherwise break completion-event determinism.
func (inst *Instance) SetSlowdown(factor float64) {
	if factor <= 0 {
		factor = 1
	}
	inst.slowdown = factor
}

// Slowdown reports the current gray-failure speed factor (1 = healthy).
func (inst *Instance) Slowdown() float64 { return inst.slowdown }

// abortPass refunds the unelapsed fraction of a replica's running pass —
// a crashed appliance stops consuming time, PIM cycles and energy at the
// fault instant. The elapsed fraction stays charged: it was really spent.
// Only the still-chargeable share is refunded; shares already refunded to
// cancelled batch members are excluded.
func (inst *Instance) abortPass(rep int, now float64) {
	if !inst.replicaBusy[rep] || inst.passSec[rep] <= 0 || inst.passEnd[rep] <= now {
		return
	}
	left := inst.passEnd[rep] - now
	frac := left / inst.passSec[rep]
	share := inst.passShare[rep]
	inst.busy[rep] -= left * share
	inst.pimBusy -= inst.passPIM[rep] * frac * share
	inst.energyJ -= inst.passEnergy[rep] * frac * share
}

// Cancel abandons one admitted-but-unfinished request: a hedge loser
// whose twin already produced a token elsewhere. A queued copy leaves the
// queue free of charge; a copy inside an in-flight prefill batch has its
// padded-token share of the pass's unelapsed cost refunded (the elapsed
// share is the hedge's wasted work) and its prompt KV unpinned; a live
// decode copy likewise refunds its 1/n share of any running step. It
// reports whether the request was found, plus the service seconds already
// spent on it that could not be refunded.
func (inst *Instance) Cancel(r *Request, now float64) (found bool, wastedSec float64) {
	if r.Finish > 0 {
		return false, 0
	}
	if inst.q.remove(r) {
		inst.queuedTokens -= int64(r.Tokens)
		inst.outstanding--
		inst.canceled++
		return true, 0
	}
	for rep, b := range inst.inflight {
		for _, x := range b {
			if x != r {
				continue
			}
			padSum := 0
			for _, m := range b {
				padSum += m.Padded
			}
			share := float64(r.Padded) / float64(padSum)
			wastedSec = inst.refundShare(rep, now, share)
			r.canceled = true // PrefillDone skips it; Crash/FailReplica drop it
			inst.touchKV(rep, now)
			inst.repKVTokens[rep] -= int64(r.Tokens)
			inst.outstanding--
			inst.canceled++
			return true, wastedSec
		}
	}
	for rep, l := range inst.live {
		for i, x := range l {
			if x != r {
				continue
			}
			if inst.replicaBusy[rep] {
				wastedSec = inst.refundShare(rep, now, 1/float64(len(l)))
			}
			copy(l[i:], l[i+1:])
			l[len(l)-1] = nil
			inst.live[rep] = l[:len(l)-1]
			held := int64(r.Tokens + r.Generated + 1)
			inst.touchKV(rep, now)
			inst.liveTokens -= held
			inst.repKVTokens[rep] -= held
			inst.outstanding--
			inst.canceled++
			return true, wastedSec
		}
	}
	return false, 0
}

// refundShare refunds one member's share of the replica's running pass
// from now to its end, shrinking the pass's chargeable share so a later
// abort cannot refund it again. It returns the member's share of the
// already-elapsed pass time — spent work no refund can recover.
func (inst *Instance) refundShare(rep int, now float64, share float64) (spentSec float64) {
	if !inst.replicaBusy[rep] || inst.passSec[rep] <= 0 {
		return 0
	}
	left := inst.passEnd[rep] - now
	if left < 0 {
		left = 0
	}
	frac := left / inst.passSec[rep]
	inst.busy[rep] -= left * share
	inst.pimBusy -= inst.passPIM[rep] * frac * share
	inst.energyJ -= inst.passEnergy[rep] * frac * share
	inst.passShare[rep] -= share
	return (inst.passSec[rep] - left) * share
}

// dropCanceled filters cancelled copies out of a displaced-request list:
// their outstanding/KV accounting was already settled at Cancel time, and
// handing them back to the traffic layer would resurrect dead work.
func dropCanceled(rs []*Request) []*Request {
	keep := rs[:0]
	for _, r := range rs {
		if !r.canceled {
			keep = append(keep, r)
		}
	}
	for i := len(keep); i < len(rs); i++ {
		rs[i] = nil
	}
	return keep
}

// Crash fail-stops the whole instance: the queue drains (callers reroute
// those untouched), every in-flight prefill batch and live decode batch
// is lost (callers retry those — their KV state is gone, so a retry pays
// full re-prefill), running passes are aborted with a cost refund, and
// every replica's epoch bumps so already-scheduled completions are
// recognizably stale. Replica-level degraded faults are healed as a side
// effect: recovery replaces the appliance's memory wholesale. A crash
// also closes any open straggler window — the repaired appliance is new
// hardware.
func (inst *Instance) Crash(now float64) (queued, started []*Request) {
	inst.crashes++
	for inst.q.len() > 0 {
		queued = append(queued, inst.q.popHead())
	}
	inst.queuedTokens = 0
	for rep := range inst.replicaBusy {
		inst.abortPass(rep, now)
		if b := inst.inflight[rep]; len(b) > 0 {
			started = append(started, b...)
			inst.inflight[rep] = nil
		}
		started = append(started, inst.live[rep]...)
		inst.live[rep] = nil
		inst.replicaBusy[rep] = false
		inst.repDown[rep] = false
		inst.touchKV(rep, now)
		inst.repKVTokens[rep] = 0
		inst.repEpoch[rep]++
	}
	inst.liveTokens = 0
	inst.slowdown = 1
	started = dropCanceled(started)
	inst.outstanding -= len(queued) + len(started)
	inst.displaced += len(queued) + len(started)
	return queued, started
}

// FailReplica injects a degraded-mode fault: the highest-index healthy
// replica (a rank group, in the paper's terms) drops out of service, its
// in-flight and live requests are lost, and the instance keeps serving on
// the survivors. It refuses (-1) when only one replica is healthy — the
// caller should escalate to a full Crash instead. Queued work is
// untouched: the queue is instance-level and the survivors absorb it.
func (inst *Instance) FailReplica(now float64) (lost []*Request, rep int) {
	rep = -1
	for i := len(inst.repDown) - 1; i >= 0; i-- {
		if !inst.repDown[i] {
			rep = i
			break
		}
	}
	if rep < 0 || inst.UpReplicas() <= 1 {
		return nil, -1
	}
	inst.degradedCnt++
	inst.abortPass(rep, now)
	if b := inst.inflight[rep]; len(b) > 0 {
		lost = append(lost, b...)
		inst.inflight[rep] = nil
	}
	for _, r := range inst.live[rep] {
		inst.liveTokens -= int64(r.Tokens + r.Generated + 1)
	}
	lost = append(lost, inst.live[rep]...)
	inst.live[rep] = nil
	inst.replicaBusy[rep] = false
	inst.repDown[rep] = true
	inst.touchKV(rep, now)
	inst.repKVTokens[rep] = 0
	inst.repEpoch[rep]++
	lost = dropCanceled(lost)
	inst.outstanding -= len(lost)
	inst.displaced += len(lost)
	return lost, rep
}

// RepairReplica returns the lowest-index failed replica to service and
// reports it (-1 when none is down — e.g. a full crash already replaced
// the hardware). The caller should Dispatch afterwards so the replica
// picks up waiting work.
func (inst *Instance) RepairReplica() int {
	for i, down := range inst.repDown {
		if down {
			inst.repDown[i] = false
			return i
		}
	}
	return -1
}

// UpReplicas counts replicas currently in service.
func (inst *Instance) UpReplicas() int {
	n := 0
	for _, down := range inst.repDown {
		if !down {
			n++
		}
	}
	return n
}

// ReplicaEpoch reports a replica's fault epoch; completions stamped with
// an older epoch refer to state that no longer exists.
func (inst *Instance) ReplicaEpoch(rep int) int { return inst.repEpoch[rep] }

// PrefillDone delivers a CompletionPrefill back to the instance: batch
// members emit their first token (OnFirstToken), join the replica's live
// decode batch when more tokens remain, or finish.
func (inst *Instance) PrefillDone(replica int, batch []*Request, now float64) {
	inst.replicaBusy[replica] = false
	inst.touchKV(replica, now)
	// The batch stays registered as in-flight until the loop ends: an
	// OnFirstToken callback can settle a hedge race whose loser sits later
	// in this same batch, and Cancel must still find it here to mark it
	// canceled before its own turn comes.
	for _, r := range batch {
		if r.canceled {
			// Hedge loser cancelled mid-pass: its accounting (KV unpin,
			// outstanding, refund) was settled at Cancel time.
			continue
		}
		r.FirstTok = now
		if r.OutLen > 0 && inst.OnFirstToken != nil {
			inst.OnFirstToken(r, now)
		}
		if r.OutLen > 1 {
			// The prefill pass emitted the first output token; the
			// remaining OutLen-1 decode at token granularity.
			inst.live[replica] = append(inst.live[replica], r)
			inst.liveTokens += int64(r.Tokens + 1)
			inst.repKVTokens[replica]++ // prompt stays pinned; +1 for the emitted token
		} else {
			inst.repKVTokens[replica] -= int64(r.Tokens) // prompt KV released
			inst.retire(r, now)
		}
	}
	inst.inflight[replica] = nil
}

// StepDone delivers a CompletionStep: every live request on the replica
// gained one token; finished requests retire, survivors stay live.
func (inst *Instance) StepDone(replica int, now float64) {
	inst.replicaBusy[replica] = false
	inst.touchKV(replica, now)
	live := inst.live[replica]
	surv := live[:0]
	for _, r := range live {
		r.Generated++
		if r.Generated >= r.OutLen-1 {
			inst.liveTokens -= int64(r.Tokens + r.Generated)
			inst.repKVTokens[replica] -= int64(r.Tokens + r.Generated)
			inst.retire(r, now)
		} else {
			inst.liveTokens++
			inst.repKVTokens[replica]++
			surv = append(surv, r)
		}
	}
	for i := len(surv); i < len(live); i++ {
		live[i] = nil
	}
	inst.live[replica] = surv
}

// retire completes a request: timestamps, token accounting, callback.
func (inst *Instance) retire(r *Request, now float64) {
	r.Finish = now
	inst.finished++
	inst.outstanding--
	inst.tokensOut += int64(r.OutLen)
	if inst.OnFinish != nil {
		inst.OnFinish(r, now)
	}
}

// Outstanding reports admitted-but-unfinished requests — the
// least-outstanding-requests routing signal, and zero exactly when the
// instance is fully drained (no queue, no live batch, no pass in flight).
func (inst *Instance) Outstanding() int { return inst.outstanding }

// QueueLen reports requests waiting for a prefill slot.
func (inst *Instance) QueueLen() int { return inst.q.len() }

// KVDemandBytes estimates the KV footprint the instance's current load
// pins: live decode contexts plus queued prompts (which will pin KV once
// admitted). Maintained incrementally, so routing stays O(1) per request.
func (inst *Instance) KVDemandBytes() int64 {
	return (inst.queuedTokens + inst.liveTokens) * inst.kvPerToken
}

// KVFreeBytes is the replica KV capacity left after current demand — the
// weighted-by-free-KV routing signal. It can go negative under
// oversubscription; routers compare, not allocate, so that is fine.
func (inst *Instance) KVFreeBytes() int64 { return inst.kvCapacity - inst.KVDemandBytes() }

// Oracle returns the instance's pricing oracle (shared across a fleet of
// identical appliances).
func (inst *Instance) Oracle() *Oracle { return inst.oracle }

// LiveCount reports requests currently in a decode batch, across replicas
// — the live-batch-occupancy metrics gauge.
func (inst *Instance) LiveCount() int {
	n := 0
	for _, l := range inst.live {
		n += len(l)
	}
	return n
}

// BusyReplicas counts replicas with a pass in flight.
func (inst *Instance) BusyReplicas() int {
	n := 0
	for _, b := range inst.replicaBusy {
		if b {
			n++
		}
	}
	return n
}

// KVPinnedBytes reports the KV bytes currently pinned across replicas —
// the instantaneous value of the gauge Peak/Mean summarize.
func (inst *Instance) KVPinnedBytes() int64 {
	var tok int64
	for _, t := range inst.repKVTokens {
		tok += t
	}
	return tok * inst.kvPerToken
}

// Admitted, Finished and ShedCount expose the cumulative service counters
// metrics sampling reads between events.
func (inst *Instance) Admitted() int  { return inst.admitted }
func (inst *Instance) Finished() int  { return inst.finished }
func (inst *Instance) ShedCount() int { return inst.shed }

// InstanceStats is a snapshot of an instance's service counters, taken
// for per-instance cluster reporting.
type InstanceStats struct {
	Admitted, Finished int
	Shed               int
	Canceled           int
	Displaced          int
	Crashes            int
	Degraded           int
	Batches            int
	BatchRequests      int
	DecodeSteps        int

	TokensIn, TokensPadded, TokensOut int64
	EnergyJ                           float64

	BusySeconds    []float64 // per replica
	PIMBusySeconds float64

	KVPeakBytes, KVCapacityBytes int64
}

// Stats snapshots the instance's counters.
func (inst *Instance) Stats() InstanceStats {
	busy := make([]float64, len(inst.busy))
	copy(busy, inst.busy)
	return InstanceStats{
		Admitted:        inst.admitted,
		Finished:        inst.finished,
		Shed:            inst.shed,
		Canceled:        inst.canceled,
		Displaced:       inst.displaced,
		Crashes:         inst.crashes,
		Degraded:        inst.degradedCnt,
		Batches:         inst.batches,
		BatchRequests:   inst.batchReqs,
		DecodeSteps:     inst.steps,
		TokensIn:        inst.tokensIn,
		TokensPadded:    inst.tokensPadded,
		TokensOut:       inst.tokensOut,
		EnergyJ:         inst.energyJ,
		BusySeconds:     busy,
		PIMBusySeconds:  inst.pimBusy,
		KVPeakBytes:     inst.kvPeak,
		KVCapacityBytes: inst.kvCapacity,
	}
}
