package serve

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/energy"
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/obs"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/trace"
	"github.com/ais-snu/localut/internal/workload"
)

// kvBytesPerElem is the assumed KV-cache element width (fp16): each cached
// token holds a key and a value vector per layer.
const kvBytesPerElem = 2

// Config describes one serving simulation. Zero fields take the defaults
// documented on each; exactly one arrival source is active: ArrivalTimes
// if set, else a closed loop when Clients > 0, else open-loop Poisson at
// RatePerSec.
type Config struct {
	Model   dnn.ModelConfig
	Fmt     quant.Format
	Variant kernels.Variant

	// Engine is the appliance's base engine (nil = testbed defaults). It is
	// cloned and forced into cycles-only representative mode; the clone's
	// rank count is divided across Replicas.
	Engine *gemm.Engine
	// Energy prices each batch's meter (zero value = energy.Default()).
	Energy energy.Model

	// Replicas is the number of independent serving groups the appliance's
	// ranks are split into (integer division: remainder ranks stay idle);
	// each replica serves one batch at a time (default 4, must not exceed
	// the rank count).
	Replicas int

	// RatePerSec is the open-loop Poisson arrival rate.
	RatePerSec float64
	// Clients switches to a closed loop: this many clients, each issuing
	// its next request ThinkSeconds (mean, exponential) after its previous
	// one completes.
	Clients      int
	ThinkSeconds float64 // closed-loop mean think time (default 0.1)
	// ArrivalTimes replays an explicit trace of arrival timestamps
	// (seconds, need not be sorted).
	ArrivalTimes []float64

	// DurationSeconds is the arrival window; requests already admitted are
	// drained afterwards (default 60).
	DurationSeconds float64
	// Seed drives every sampler (default 1).
	Seed int64

	// MaxBatch bounds requests per batch — for prefill passes and for the
	// live decode batch of a replica alike (default 8).
	MaxBatch int
	// Scheduler picks FCFS (the zero value) or Packed.
	Scheduler Policy
	// PackWindow bounds how deep the packing scheduler scans the queue
	// (default 8*MaxBatch).
	PackWindow int
	// MaxQueue bounds the admission queue; Admit refuses (and the traffic
	// layer reroutes or sheds) beyond it (default 0: unbounded).
	MaxQueue int
	// KVPolicy selects how the per-replica KV budget is treated: KVGauge
	// (the zero value) reports only, KVStall stalls prefill admission at
	// the budget, KVShed drops what does not fit.
	KVPolicy KVPolicy

	// MinTokens/MaxTokens/MeanTokens parameterize the request length
	// distribution (defaults 16 / 256 / the model's SeqLen, clamped).
	MinTokens, MaxTokens int
	MeanTokens           float64
	// TokenQuantum is the shape-padding bucket: request lengths, batch
	// token totals and decode-step contexts round up to it, bounding the
	// distinct forward-pass shapes the oracle must simulate (default 64).
	TokenQuantum int

	// OutTokens fixes the output length of every request on decoder models
	// (default 0: prefill-only serving). Ignored when OutTokensMean is set.
	OutTokens int
	// OutTokensMean switches to sampled output lengths: each request draws
	// its output length from a bounded shifted-exponential distribution
	// over [1, OutTokensMax] with this mean (decoder models only).
	OutTokensMean float64
	// OutTokensMax caps sampled output lengths (default 4*OutTokensMean).
	OutTokensMax int

	// Recorder receives request-lifecycle and batch-pass trace events;
	// Metrics samples gauges on a fixed simulated-time interval. Both are
	// observability hooks, nil by default — a nil hook costs one nil check
	// per call site. The caller owns export (WriteJSON/WriteCSV) after Run.
	Recorder *obs.Recorder
	Metrics  *obs.Metrics
}

// NormalizeInstance fills and validates the per-instance (service-side)
// fields: model, engine, replicas, batching, length distribution, decode.
// Arrival-source fields are left untouched — the cluster simulator drives
// instances from its own traffic layer and calls this directly.
func (c Config) NormalizeInstance() (Config, error) {
	if c.Model.Layers == 0 {
		return c, fmt.Errorf("serve: config has no model")
	}
	if c.Engine == nil {
		c.Engine = gemm.NewEngine()
	}
	if c.Energy == (energy.Model{}) {
		c.Energy = energy.Default()
	}
	if c.Replicas == 0 {
		c.Replicas = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.PackWindow == 0 {
		c.PackWindow = 8 * c.MaxBatch
	}
	if c.MinTokens == 0 {
		c.MinTokens = 16
	}
	if c.MaxTokens == 0 {
		c.MaxTokens = 256
	}
	if c.MeanTokens == 0 {
		c.MeanTokens = float64(c.Model.SeqLen)
	}
	if c.MeanTokens < float64(c.MinTokens) {
		c.MeanTokens = float64(c.MinTokens)
	}
	if c.MeanTokens > float64(c.MaxTokens) {
		c.MeanTokens = float64(c.MaxTokens)
	}
	if c.TokenQuantum == 0 {
		c.TokenQuantum = 64
	}
	if c.OutTokensMean > 0 {
		if c.OutTokensMean < 1 {
			// A sub-token mean would otherwise clamp to a zero max and
			// silently disable decode the caller asked for.
			return c, fmt.Errorf("serve: output-length mean %g must be at least 1 token (or 0 to disable)",
				c.OutTokensMean)
		}
		if c.OutTokensMax == 0 {
			c.OutTokensMax = int(4 * c.OutTokensMean)
		}
		if c.OutTokensMean > float64(c.OutTokensMax) {
			c.OutTokensMean = float64(c.OutTokensMax)
		}
	}

	switch {
	case c.Replicas < 0 || c.MaxBatch < 0 || c.TokenQuantum < 0 || c.PackWindow < 0:
		return c, fmt.Errorf("serve: negative replica/batch/quantum/window configuration")
	case c.MaxQueue < 0:
		return c, fmt.Errorf("serve: negative queue bound %d", c.MaxQueue)
	case c.KVPolicy < KVGauge || c.KVPolicy > KVShed:
		return c, fmt.Errorf("serve: unknown KV policy %d", int(c.KVPolicy))
	case c.Replicas > c.Engine.Cfg.Ranks:
		return c, fmt.Errorf("serve: %d replicas exceed the appliance's %d ranks",
			c.Replicas, c.Engine.Cfg.Ranks)
	case c.OutTokens < 0:
		return c, fmt.Errorf("serve: %d decode tokens", c.OutTokens)
	case c.OutTokensMean < 0 || c.OutTokensMax < 0:
		return c, fmt.Errorf("serve: negative output-length distribution (mean %g, max %d)",
			c.OutTokensMean, c.OutTokensMax)
	case (c.OutTokens > 0 || c.OutTokensMean > 0) && !c.Model.Decoder:
		return c, fmt.Errorf("serve: %s is not a decoder model (OutTokens must be 0)", c.Model.Name)
	}
	return c, nil
}

// withDefaults fills unset fields and validates the result, including the
// arrival source the single-appliance loop needs.
func (c Config) withDefaults() (Config, error) {
	c, err := c.NormalizeInstance()
	if err != nil {
		return c, err
	}
	if c.DurationSeconds == 0 {
		if len(c.ArrivalTimes) > 0 {
			for _, t := range c.ArrivalTimes {
				if t > c.DurationSeconds {
					c.DurationSeconds = t
				}
			}
		} else {
			c.DurationSeconds = 60
		}
	}
	if c.ThinkSeconds == 0 {
		c.ThinkSeconds = 0.1
	}
	switch {
	case c.DurationSeconds <= 0:
		return c, fmt.Errorf("serve: duration %g must be positive", c.DurationSeconds)
	case len(c.ArrivalTimes) == 0 && c.Clients == 0 && c.RatePerSec <= 0:
		return c, fmt.Errorf("serve: no arrival source (set RatePerSec, Clients or ArrivalTimes)")
	case c.Clients < 0:
		return c, fmt.Errorf("serve: %d clients", c.Clients)
	}
	return c, nil
}

// Stats summarizes one latency population in seconds.
type Stats struct {
	P50, P95, P99 float64
	Mean, Max     float64
}

// StatsOf computes the summary; samples arrive in completion order, so the
// mean's float accumulation order is fixed and the result reproducible.
func StatsOf(vals []float64) Stats {
	if len(vals) == 0 {
		return Stats{}
	}
	qs := trace.Quantiles(vals, 0.5, 0.95, 0.99)
	s := Stats{P50: qs[0], P95: qs[1], P99: qs[2]}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(vals))
	return s
}

// HistStats summarizes a streaming log-bucket histogram: quantiles come
// from the buckets (within one bucket width of the sorted estimate), Mean
// and Max are exact. This is the bounded-memory replacement for keeping
// every latency sample and sorting at report time.
func HistStats(h *trace.LogHistogram) Stats {
	if h == nil || h.N == 0 {
		return Stats{}
	}
	return Stats{
		P50:  h.Quantile(0.5),
		P95:  h.Quantile(0.95),
		P99:  h.Quantile(0.99),
		Mean: h.Mean(),
		Max:  h.Max(),
	}
}

// Report is the outcome of one serving simulation. Same config + seed =>
// bit-identical Report.
type Report struct {
	Model     string
	Format    string
	Design    string
	Scheduler string
	Replicas  int

	Requests  int // admitted during the arrival window
	Completed int // all admitted requests are drained
	// Shed counts admitted requests the appliance dropped (bounded-queue
	// refusals, deadline expiry, KV-budget sheds); zero in the default
	// unbounded/gauge configuration.
	Shed    int
	Batches int // prefill passes
	// DecodeSteps counts token-level decode forward passes across replicas.
	DecodeSteps int

	MeanBatchSize    float64
	DurationSeconds  float64 // arrival window
	MakespanSeconds  float64 // last completion time
	OfferedPerSec    float64 // Requests / DurationSeconds
	ThroughputPerSec float64 // Completed / MakespanSeconds
	// TokensPerSec is the total token throughput over the makespan,
	// prompt and generated tokens both counted.
	TokensPerSec float64

	Queue   Stats // admission to batch start
	Service Stats // batch start to completion
	Latency Stats // admission to completion
	// TTFT is time-to-first-token: admission to prefill completion
	// (decode-enabled runs only; empty otherwise).
	TTFT Stats
	// TPOT is time-per-output-token: each request's post-first-token
	// generation time divided by its remaining tokens (requests with at
	// least two output tokens).
	TPOT Stats

	// RankUtilization is the mean busy fraction of the replicas over the
	// makespan; ReplicaUtilization itemizes it.
	RankUtilization    float64
	ReplicaUtilization []float64
	// PIMUtilization is the PIM-kernel share of that busy time — the rest
	// is host quant/pack work and transfers.
	PIMUtilization float64

	TokensIn     int64 // sampled prompt tokens
	TokensPadded int64 // prompt tokens actually priced after shape padding
	TokensOut    int64 // generated tokens (decode-enabled runs)

	EnergyJ           float64
	EnergyPerRequestJ float64

	// KVPeakBytes is the largest KV-cache footprint any replica held
	// during a decode step (fp16 K+V per layer per cached token);
	// KVCapacityBytes is one replica's DRAM-bank capacity left after the
	// LUT budget — the paper's capacity axis, contended here by LUTs and
	// KV state. KVPeakUtilization is their ratio.
	KVPeakBytes       int64
	KVCapacityBytes   int64
	KVPeakUtilization float64
	// KVMeanBytes is the time-weighted mean KV footprint per replica over
	// the makespan (the peak alone hides sustained pressure);
	// KVMeanUtilization is its share of capacity.
	KVMeanBytes       float64
	KVMeanUtilization float64

	// DistinctForwardSims counts the planner executions behind the whole
	// run — the memoization that makes million-request simulation cheap.
	DistinctForwardSims int

	// LatencyHist buckets the total latency of every completed request
	// over [0, Latency.Max] (nil when nothing completed).
	LatencyHist *trace.Histogram
}

// evArrival is the traffic layer's event kind; completion kinds come from
// the Instance (CompletionPrefill, CompletionStep).
const evArrival = 0

// event is one heap entry; seq breaks time ties in insertion order so the
// loop is deterministic even under simultaneous events.
type event struct {
	at   float64
	seq  int64
	kind int

	req     *Request   // evArrival
	replica int        // CompletionPrefill, CompletionStep
	batch   []*Request // CompletionPrefill
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// sim is the traffic layer of one single-appliance run: arrivals, length
// sampling and latency aggregation around one Instance.
type sim struct {
	cfg  Config
	inst *Instance

	events eventHeap
	seq    int64

	arrivals *workload.ArrivalSampler // open loop
	lengths  *workload.LengthSampler
	outLens  *workload.LengthSampler  // nil = fixed OutTokens per request
	think    *workload.ArrivalSampler // closed loop

	nextID   int
	requests int
	shed     int

	// Latency populations aggregate into bounded-memory streaming
	// histograms as requests complete — exact count/mean/max, quantiles
	// from the buckets.
	qLat, sLat, tLat *trace.LogHistogram
	ttft, tpot       *trace.LogHistogram
	completed        int
	makespan         float64
}

func (s *sim) pushEvent(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// newRequest admits a request arriving at t for the given closed-loop
// client (-1 for open-loop/trace), sampling its prompt and output lengths.
func (s *sim) newRequest(t float64, client int) *Request {
	tok := s.lengths.Next()
	pad := roundUp(tok, s.cfg.TokenQuantum)
	out := s.cfg.OutTokens
	if s.outLens != nil {
		out = s.outLens.Next()
	}
	r := &Request{ID: s.nextID, Client: client, Tokens: tok, Padded: pad, OutLen: out, Arrive: t}
	s.nextID++
	return r
}

func roundUp(v, quantum int) int {
	return (v + quantum - 1) / quantum * quantum
}

// dispatch starts work on the instance's idle replicas and schedules the
// resulting completions.
func (s *sim) dispatch(now float64) error {
	comps, err := s.inst.Dispatch(now)
	if err != nil {
		return err
	}
	for i := range comps {
		c := &comps[i]
		s.pushEvent(&event{at: c.At, kind: c.Kind, replica: c.Replica, batch: c.Batch})
	}
	return nil
}

// Run executes the simulation to completion: arrivals stop at the duration
// cutoff and the queue drains.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &sim{
		cfg:  cfg,
		qLat: trace.NewLogHistogram(), sLat: trace.NewLogHistogram(),
		tLat: trace.NewLogHistogram(),
		ttft: trace.NewLogHistogram(), tpot: trace.NewLogHistogram(),
	}
	if s.inst, err = NewInstance(cfg, 0, nil); err != nil {
		return nil, err
	}
	rec := cfg.Recorder
	s.inst.SetRecorder(rec)
	rec.Process(0, "traffic")
	s.inst.OnFirstToken = func(r *Request, now float64) {
		s.ttft.Add(now - r.Arrive)
	}
	s.inst.OnFinish = func(r *Request, now float64) {
		s.qLat.Add(r.Start - r.Arrive)
		s.sLat.Add(r.Finish - r.Start)
		s.tLat.Add(r.Finish - r.Arrive)
		s.completed++
		if r.OutLen > 1 {
			s.tpot.Add((r.Finish - r.FirstTok) / float64(r.OutLen-1))
		}
		if rec.Sampled(r.ID) {
			rec.EndAsync(0, "req", r.ID, "request", now)
		}
		if now > s.makespan {
			s.makespan = now
		}
		if s.think != nil && r.Client >= 0 {
			if t := now + s.think.Next(); t <= s.cfg.DurationSeconds {
				s.pushEvent(&event{at: t, kind: evArrival, req: &Request{Client: r.Client}})
			}
		}
	}
	s.inst.OnShed = func(r *Request, now float64, reason ShedReason) {
		if rec.Sampled(r.ID) {
			rec.Instant(0, 0, "shed", now, obs.Num("id", float64(r.ID)), obs.Num("reason", float64(reason)))
			rec.EndAsync(0, "req", r.ID, "request", now)
		}
	}
	if cfg.Metrics != nil {
		cfg.Metrics.Bind(
			serveMetricsCols(cfg.Replicas),
			func(now float64) []float64 { return s.sampleMetrics() },
		)
	}
	if s.lengths, err = workload.NewLengthSampler(cfg.MinTokens, cfg.MaxTokens, cfg.MeanTokens, cfg.Seed+1); err != nil {
		return nil, err
	}
	if cfg.OutTokensMean > 0 {
		if s.outLens, err = workload.NewLengthSampler(1, cfg.OutTokensMax, cfg.OutTokensMean, cfg.Seed+3); err != nil {
			return nil, err
		}
	}

	// Seed the arrival process.
	switch {
	case len(cfg.ArrivalTimes) > 0:
		for _, t := range cfg.ArrivalTimes {
			if t < 0 {
				return nil, fmt.Errorf("serve: negative arrival time %g in trace", t)
			}
			if t > cfg.DurationSeconds {
				// The arrival window applies to every source; with an unset
				// duration withDefaults derived it from the trace maximum,
				// so nothing is dropped in that case.
				continue
			}
			s.pushEvent(&event{at: t, kind: evArrival})
		}
	case cfg.Clients > 0:
		if s.think, err = workload.NewArrivalSampler(1/cfg.ThinkSeconds, cfg.Seed+2); err != nil {
			return nil, err
		}
		for c := 0; c < cfg.Clients; c++ {
			if t := s.think.Next(); t <= cfg.DurationSeconds {
				s.pushEvent(&event{at: t, kind: evArrival, req: &Request{Client: c}})
			}
		}
	default:
		if s.arrivals, err = workload.NewArrivalSampler(cfg.RatePerSec, cfg.Seed); err != nil {
			return nil, err
		}
		if t := s.arrivals.Next(); t <= cfg.DurationSeconds {
			s.pushEvent(&event{at: t, kind: evArrival})
		}
	}

	// The event loop.
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		now := ev.at
		// Metrics sample before the event applies: the pre-event state is
		// exactly the simulator's state at every boundary since the last
		// event.
		cfg.Metrics.Advance(now)
		switch ev.kind {
		case evArrival:
			client := -1
			if ev.req != nil {
				client = ev.req.Client
			}
			r := s.newRequest(now, client)
			s.requests++
			admitted := s.inst.Admit(r)
			if rec.Sampled(r.ID) {
				rec.BeginAsync(0, "req", r.ID, "request", now,
					obs.Num("tokens", float64(r.Tokens)), obs.Num("out", float64(r.OutLen)))
				if !admitted {
					rec.Instant(0, 0, "reject", now, obs.Num("id", float64(r.ID)))
					rec.EndAsync(0, "req", r.ID, "request", now)
				}
			}
			if !admitted {
				s.shed++ // single appliance: nowhere to reroute
			}
			if s.arrivals != nil {
				if t := now + s.arrivals.Next(); t <= cfg.DurationSeconds {
					s.pushEvent(&event{at: t, kind: evArrival})
				}
			}
		case CompletionPrefill:
			s.inst.PrefillDone(ev.replica, ev.batch, now)
		case CompletionStep:
			s.inst.StepDone(ev.replica, now)
		}
		if err := s.dispatch(now); err != nil {
			return nil, err
		}
	}
	cfg.Metrics.Finish(s.makespan)
	return s.report(), nil
}

// serveMetricsCols names the single-appliance metrics columns: queue and
// batch gauges, per-replica KV bytes, busy fraction and the cumulative
// service counters.
func serveMetricsCols(replicas int) []string {
	cols := []string{"queue_depth", "live", "busy_frac", "admitted", "completed", "shed"}
	for r := 0; r < replicas; r++ {
		cols = append(cols, fmt.Sprintf("kv_bytes_r%d", r))
	}
	return cols
}

// sampleMetrics reads the gauges serveMetricsCols names.
func (s *sim) sampleMetrics() []float64 {
	inst := s.inst
	busy := 0.0
	if s.cfg.Replicas > 0 {
		busy = float64(inst.BusyReplicas()) / float64(s.cfg.Replicas)
	}
	vals := []float64{
		float64(inst.QueueLen()),
		float64(inst.LiveCount()),
		busy,
		float64(inst.Admitted()),
		float64(inst.Finished()),
		float64(s.shed + inst.ShedCount()),
	}
	for r := 0; r < s.cfg.Replicas; r++ {
		vals = append(vals, float64(inst.repKVTokens[r]*inst.kvPerToken))
	}
	return vals
}

// report assembles the final metrics.
func (s *sim) report() *Report {
	cfg := &s.cfg
	inst := s.inst
	r := &Report{
		Model:     cfg.Model.Name,
		Format:    cfg.Fmt.Name(),
		Design:    cfg.Variant.String(),
		Scheduler: cfg.Scheduler.String(),
		Replicas:  cfg.Replicas,

		Requests:        s.requests,
		Completed:       s.completed,
		Shed:            s.shed + inst.shed,
		Batches:         inst.batches,
		DecodeSteps:     inst.steps,
		DurationSeconds: cfg.DurationSeconds,
		MakespanSeconds: s.makespan,

		Queue:   HistStats(s.qLat),
		Service: HistStats(s.sLat),
		Latency: HistStats(s.tLat),
		TTFT:    HistStats(s.ttft),
		TPOT:    HistStats(s.tpot),

		TokensIn:     inst.tokensIn,
		TokensPadded: inst.tokensPadded,
		TokensOut:    inst.tokensOut,
		EnergyJ:      inst.energyJ,

		KVPeakBytes:     inst.kvPeak,
		KVCapacityBytes: inst.kvCapacity,

		DistinctForwardSims: inst.oracle.DistinctSims(),
	}
	if r.KVCapacityBytes > 0 {
		r.KVPeakUtilization = float64(r.KVPeakBytes) / float64(r.KVCapacityBytes)
	}
	r.OfferedPerSec = float64(r.Requests) / cfg.DurationSeconds
	if inst.batches > 0 {
		r.MeanBatchSize = float64(inst.batchReqs) / float64(inst.batches)
	}
	if s.makespan > 0 {
		r.ThroughputPerSec = float64(r.Completed) / s.makespan
		r.TokensPerSec = float64(inst.tokensIn+inst.tokensOut) / s.makespan
		r.ReplicaUtilization = make([]float64, cfg.Replicas)
		var totalBusy float64
		for i, b := range inst.busy {
			r.ReplicaUtilization[i] = b / s.makespan
			totalBusy += b
		}
		r.RankUtilization = totalBusy / (float64(cfg.Replicas) * s.makespan)
		if totalBusy > 0 {
			r.PIMUtilization = inst.pimBusy / totalBusy
		}
		r.KVMeanBytes = inst.KVByteSeconds(s.makespan) / (s.makespan * float64(cfg.Replicas))
		if r.KVCapacityBytes > 0 {
			r.KVMeanUtilization = r.KVMeanBytes / float64(r.KVCapacityBytes)
		}
	}
	if r.Completed > 0 {
		r.EnergyPerRequestJ = inst.energyJ / float64(r.Completed)
		// Nextafter keeps the maximum inside the half-open top bucket.
		hi := math.Nextafter(r.Latency.Max, math.Inf(1))
		if hist, err := s.tLat.ToFixed(0, hi, 20); err == nil {
			r.LatencyHist = hist
		}
	}
	return r
}
