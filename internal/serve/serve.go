package serve

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/energy"
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/trace"
	"github.com/ais-snu/localut/internal/workload"
)

// kvBytesPerElem is the assumed KV-cache element width (fp16): each cached
// token holds a key and a value vector per layer.
const kvBytesPerElem = 2

// Config describes one serving simulation. Zero fields take the defaults
// documented on each; exactly one arrival source is active: ArrivalTimes
// if set, else a closed loop when Clients > 0, else open-loop Poisson at
// RatePerSec.
type Config struct {
	Model   dnn.ModelConfig
	Fmt     quant.Format
	Variant kernels.Variant

	// Engine is the appliance's base engine (nil = testbed defaults). It is
	// cloned and forced into cycles-only representative mode; the clone's
	// rank count is divided across Replicas.
	Engine *gemm.Engine
	// Energy prices each batch's meter (zero value = energy.Default()).
	Energy energy.Model

	// Replicas is the number of independent serving groups the appliance's
	// ranks are split into (integer division: remainder ranks stay idle);
	// each replica serves one batch at a time (default 4, must not exceed
	// the rank count).
	Replicas int

	// RatePerSec is the open-loop Poisson arrival rate.
	RatePerSec float64
	// Clients switches to a closed loop: this many clients, each issuing
	// its next request ThinkSeconds (mean, exponential) after its previous
	// one completes.
	Clients      int
	ThinkSeconds float64 // closed-loop mean think time (default 0.1)
	// ArrivalTimes replays an explicit trace of arrival timestamps
	// (seconds, need not be sorted).
	ArrivalTimes []float64

	// DurationSeconds is the arrival window; requests already admitted are
	// drained afterwards (default 60).
	DurationSeconds float64
	// Seed drives every sampler (default 1).
	Seed int64

	// MaxBatch bounds requests per batch — for prefill passes and for the
	// live decode batch of a replica alike (default 8).
	MaxBatch int
	// Scheduler picks FCFS (the zero value) or Packed.
	Scheduler Policy
	// PackWindow bounds how deep the packing scheduler scans the queue
	// (default 8*MaxBatch).
	PackWindow int

	// MinTokens/MaxTokens/MeanTokens parameterize the request length
	// distribution (defaults 16 / 256 / the model's SeqLen, clamped).
	MinTokens, MaxTokens int
	MeanTokens           float64
	// TokenQuantum is the shape-padding bucket: request lengths, batch
	// token totals and decode-step contexts round up to it, bounding the
	// distinct forward-pass shapes the oracle must simulate (default 64).
	TokenQuantum int

	// OutTokens fixes the output length of every request on decoder models
	// (default 0: prefill-only serving). Ignored when OutTokensMean is set.
	OutTokens int
	// OutTokensMean switches to sampled output lengths: each request draws
	// its output length from a bounded shifted-exponential distribution
	// over [1, OutTokensMax] with this mean (decoder models only).
	OutTokensMean float64
	// OutTokensMax caps sampled output lengths (default 4*OutTokensMean).
	OutTokensMax int
}

// withDefaults fills unset fields and validates the result.
func (c Config) withDefaults() (Config, error) {
	if c.Model.Layers == 0 {
		return c, fmt.Errorf("serve: config has no model")
	}
	if c.Engine == nil {
		c.Engine = gemm.NewEngine()
	}
	if c.Energy == (energy.Model{}) {
		c.Energy = energy.Default()
	}
	if c.Replicas == 0 {
		c.Replicas = 4
	}
	if c.DurationSeconds == 0 {
		if len(c.ArrivalTimes) > 0 {
			for _, t := range c.ArrivalTimes {
				if t > c.DurationSeconds {
					c.DurationSeconds = t
				}
			}
		} else {
			c.DurationSeconds = 60
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.PackWindow == 0 {
		c.PackWindow = 8 * c.MaxBatch
	}
	if c.MinTokens == 0 {
		c.MinTokens = 16
	}
	if c.MaxTokens == 0 {
		c.MaxTokens = 256
	}
	if c.MeanTokens == 0 {
		c.MeanTokens = float64(c.Model.SeqLen)
	}
	if c.MeanTokens < float64(c.MinTokens) {
		c.MeanTokens = float64(c.MinTokens)
	}
	if c.MeanTokens > float64(c.MaxTokens) {
		c.MeanTokens = float64(c.MaxTokens)
	}
	if c.TokenQuantum == 0 {
		c.TokenQuantum = 64
	}
	if c.ThinkSeconds == 0 {
		c.ThinkSeconds = 0.1
	}
	if c.OutTokensMean > 0 {
		if c.OutTokensMean < 1 {
			// A sub-token mean would otherwise clamp to a zero max and
			// silently disable decode the caller asked for.
			return c, fmt.Errorf("serve: output-length mean %g must be at least 1 token (or 0 to disable)",
				c.OutTokensMean)
		}
		if c.OutTokensMax == 0 {
			c.OutTokensMax = int(4 * c.OutTokensMean)
		}
		if c.OutTokensMean > float64(c.OutTokensMax) {
			c.OutTokensMean = float64(c.OutTokensMax)
		}
	}

	switch {
	case c.Replicas < 0 || c.MaxBatch < 0 || c.TokenQuantum < 0 || c.PackWindow < 0:
		return c, fmt.Errorf("serve: negative replica/batch/quantum/window configuration")
	case c.Replicas > c.Engine.Cfg.Ranks:
		return c, fmt.Errorf("serve: %d replicas exceed the appliance's %d ranks",
			c.Replicas, c.Engine.Cfg.Ranks)
	case c.DurationSeconds <= 0:
		return c, fmt.Errorf("serve: duration %g must be positive", c.DurationSeconds)
	case len(c.ArrivalTimes) == 0 && c.Clients == 0 && c.RatePerSec <= 0:
		return c, fmt.Errorf("serve: no arrival source (set RatePerSec, Clients or ArrivalTimes)")
	case c.Clients < 0:
		return c, fmt.Errorf("serve: %d clients", c.Clients)
	case c.OutTokens < 0:
		return c, fmt.Errorf("serve: %d decode tokens", c.OutTokens)
	case c.OutTokensMean < 0 || c.OutTokensMax < 0:
		return c, fmt.Errorf("serve: negative output-length distribution (mean %g, max %d)",
			c.OutTokensMean, c.OutTokensMax)
	case (c.OutTokens > 0 || c.OutTokensMean > 0) && !c.Model.Decoder:
		return c, fmt.Errorf("serve: %s is not a decoder model (OutTokens must be 0)", c.Model.Name)
	}
	return c, nil
}

// Stats summarizes one latency population in seconds.
type Stats struct {
	P50, P95, P99 float64
	Mean, Max     float64
}

// statsOf computes the summary; samples arrive in completion order, so the
// mean's float accumulation order is fixed and the result reproducible.
func statsOf(vals []float64) Stats {
	if len(vals) == 0 {
		return Stats{}
	}
	qs := trace.Quantiles(vals, 0.5, 0.95, 0.99)
	s := Stats{P50: qs[0], P95: qs[1], P99: qs[2]}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(vals))
	return s
}

// Report is the outcome of one serving simulation. Same config + seed =>
// bit-identical Report.
type Report struct {
	Model     string
	Format    string
	Design    string
	Scheduler string
	Replicas  int

	Requests  int // admitted during the arrival window
	Completed int // all admitted requests are drained
	Batches   int // prefill passes
	// DecodeSteps counts token-level decode forward passes across replicas.
	DecodeSteps int

	MeanBatchSize    float64
	DurationSeconds  float64 // arrival window
	MakespanSeconds  float64 // last completion time
	OfferedPerSec    float64 // Requests / DurationSeconds
	ThroughputPerSec float64 // Completed / MakespanSeconds
	// TokensPerSec is the total token throughput over the makespan,
	// prompt and generated tokens both counted.
	TokensPerSec float64

	Queue   Stats // admission to batch start
	Service Stats // batch start to completion
	Latency Stats // admission to completion
	// TTFT is time-to-first-token: admission to prefill completion
	// (decode-enabled runs only; empty otherwise).
	TTFT Stats
	// TPOT is time-per-output-token: each request's post-first-token
	// generation time divided by its remaining tokens (requests with at
	// least two output tokens).
	TPOT Stats

	// RankUtilization is the mean busy fraction of the replicas over the
	// makespan; ReplicaUtilization itemizes it.
	RankUtilization    float64
	ReplicaUtilization []float64
	// PIMUtilization is the PIM-kernel share of that busy time — the rest
	// is host quant/pack work and transfers.
	PIMUtilization float64

	TokensIn     int64 // sampled prompt tokens
	TokensPadded int64 // prompt tokens actually priced after shape padding
	TokensOut    int64 // generated tokens (decode-enabled runs)

	EnergyJ           float64
	EnergyPerRequestJ float64

	// KVPeakBytes is the largest KV-cache footprint any replica held
	// during a decode step (fp16 K+V per layer per cached token);
	// KVCapacityBytes is one replica's DRAM-bank capacity left after the
	// LUT budget — the paper's capacity axis, contended here by LUTs and
	// KV state. KVPeakUtilization is their ratio.
	KVPeakBytes       int64
	KVCapacityBytes   int64
	KVPeakUtilization float64

	// DistinctForwardSims counts the planner executions behind the whole
	// run — the memoization that makes million-request simulation cheap.
	DistinctForwardSims int

	// LatencyHist buckets the total latency of every completed request
	// over [0, Latency.Max] (nil when nothing completed).
	LatencyHist *trace.Histogram
}

// event kinds.
const (
	evArrival = iota
	evPrefillDone
	evStepDone
)

// event is one heap entry; seq breaks time ties in insertion order so the
// loop is deterministic even under simultaneous events.
type event struct {
	at   float64
	seq  int64
	kind int

	req     *request   // evArrival
	replica int        // evPrefillDone, evStepDone
	batch   []*request // evPrefillDone
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// sim is the mutable state of one run.
type sim struct {
	cfg    Config
	oracle *oracle
	sched  scheduler

	events eventHeap
	seq    int64
	q      queue

	arrivals *workload.ArrivalSampler // open loop
	lengths  *workload.LengthSampler
	outLens  *workload.LengthSampler  // nil = fixed OutTokens per request
	think    *workload.ArrivalSampler // closed loop

	replicaBusy []bool
	live        [][]*request // per-replica decode batch
	busy        []float64    // accumulated service seconds per replica
	pimBusy     float64      // accumulated PIM-kernel seconds across replicas

	kvPerToken int64 // KV bytes one cached token occupies
	kvPeak     int64 // largest per-replica KV footprint seen

	nextID    int
	requests  int
	batches   int
	batchReqs int
	steps     int

	tokensIn, tokensPadded, tokensOut int64
	energyJ                           float64

	qLat, sLat, tLat []float64
	ttft, tpot       []float64
	makespan         float64
}

func (s *sim) pushEvent(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// newRequest admits a request arriving at t for the given closed-loop
// client (-1 for open-loop/trace), sampling its prompt and output lengths.
func (s *sim) newRequest(t float64, client int) *request {
	tok := s.lengths.Next()
	pad := roundUp(tok, s.cfg.TokenQuantum)
	out := s.cfg.OutTokens
	if s.outLens != nil {
		out = s.outLens.Next()
	}
	r := &request{id: s.nextID, client: client, tokens: tok, padded: pad, outLen: out, arrive: t}
	s.nextID++
	return r
}

func roundUp(v, quantum int) int {
	return (v + quantum - 1) / quantum * quantum
}

// dispatch starts work on every idle replica: a prefill pass when
// requests wait and the replica's decode batch has room (prefill priority
// keeps TTFT low and is how newly queued requests join the decode batch
// at step boundaries), else one decode step over the live batch.
func (s *sim) dispatch(now float64) error {
	for rep := range s.replicaBusy {
		if s.replicaBusy[rep] {
			continue
		}
		if err := s.startWork(rep, now); err != nil {
			return err
		}
	}
	return nil
}

// startWork launches the idle replica's next forward pass, if any.
func (s *sim) startWork(rep int, now float64) error {
	if room := s.cfg.MaxBatch - len(s.live[rep]); room > 0 && s.q.len() > 0 {
		batch := s.sched.pick(&s.q, room)
		// Members are already quantum-padded, so their sum is the batch's
		// padded shape; ctx is the longest member (attention span).
		padTokens, maxPad := 0, 0
		for _, r := range batch {
			r.start = now
			padTokens += r.padded
			s.tokensIn += int64(r.tokens)
			if r.padded > maxPad {
				maxPad = r.padded
			}
		}
		cost, err := s.oracle.batch(padTokens, maxPad)
		if err != nil {
			return err
		}
		s.tokensPadded += int64(padTokens)
		s.energyJ += cost.energyJ
		s.busy[rep] += cost.seconds
		s.pimBusy += cost.pimSec
		s.batches++
		s.batchReqs += len(batch)
		s.replicaBusy[rep] = true
		s.pushEvent(&event{at: now + cost.seconds, kind: evPrefillDone, replica: rep, batch: batch})
		return nil
	}
	if live := s.live[rep]; len(live) > 0 {
		// One decode step: each live request's next token attends its
		// prompt plus everything generated so far. Attention cost is
		// linear in the context, so pricing the batch at its mean context
		// is exact; the mean is then bucketed to the token quantum so the
		// oracle's step memo stays bounded.
		// ctxSum prices attention over the padded (shape-bucketed) prompt;
		// kvTokens gauges physical KV state, so it counts the real prompt
		// lengths — padding is a pricing artifact, not cached memory.
		ctxSum, kvTokens := 0, 0
		for _, r := range live {
			ctxSum += r.padded + r.generated + 1
			kvTokens += r.tokens + r.generated + 1
		}
		n := len(live)
		ctx := roundUp((ctxSum+n-1)/n, s.cfg.TokenQuantum)
		cost, err := s.oracle.decodeStep(n, ctx)
		if err != nil {
			return err
		}
		s.energyJ += cost.energyJ
		s.busy[rep] += cost.seconds
		s.pimBusy += cost.pimSec
		s.steps++
		s.replicaBusy[rep] = true
		s.pushEvent(&event{at: now + cost.seconds, kind: evStepDone, replica: rep})
		// KV gauge: during the step the replica holds every live context
		// plus the newly written token per sequence.
		if kv := int64(kvTokens+n) * s.kvPerToken; kv > s.kvPeak {
			s.kvPeak = kv
		}
	}
	return nil
}

// finish retires a completed request: latency samples, token accounting,
// and the closed-loop client's next think timer.
func (s *sim) finish(r *request, now float64) {
	r.finish = now
	s.qLat = append(s.qLat, r.start-r.arrive)
	s.sLat = append(s.sLat, r.finish-r.start)
	s.tLat = append(s.tLat, r.finish-r.arrive)
	s.tokensOut += int64(r.outLen)
	if r.outLen > 1 {
		s.tpot = append(s.tpot, (r.finish-r.firstTok)/float64(r.outLen-1))
	}
	if now > s.makespan {
		s.makespan = now
	}
	if s.think != nil && r.client >= 0 {
		if t := now + s.think.Next(); t <= s.cfg.DurationSeconds {
			s.pushEvent(&event{at: t, kind: evArrival, req: &request{client: r.client}})
		}
	}
}

// Run executes the simulation to completion: arrivals stop at the duration
// cutoff and the queue drains.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &sim{cfg: cfg, oracle: newOracle(&cfg)}
	if s.sched, err = newScheduler(cfg.Scheduler, cfg.PackWindow); err != nil {
		return nil, err
	}
	if s.lengths, err = workload.NewLengthSampler(cfg.MinTokens, cfg.MaxTokens, cfg.MeanTokens, cfg.Seed+1); err != nil {
		return nil, err
	}
	if cfg.OutTokensMean > 0 {
		if s.outLens, err = workload.NewLengthSampler(1, cfg.OutTokensMax, cfg.OutTokensMean, cfg.Seed+3); err != nil {
			return nil, err
		}
	}
	s.replicaBusy = make([]bool, cfg.Replicas)
	s.busy = make([]float64, cfg.Replicas)
	s.live = make([][]*request, cfg.Replicas)
	s.kvPerToken = 2 * int64(cfg.Model.Layers) * int64(cfg.Model.Hidden) * kvBytesPerElem

	// Seed the arrival process.
	switch {
	case len(cfg.ArrivalTimes) > 0:
		for _, t := range cfg.ArrivalTimes {
			if t < 0 {
				return nil, fmt.Errorf("serve: negative arrival time %g in trace", t)
			}
			if t > cfg.DurationSeconds {
				// The arrival window applies to every source; with an unset
				// duration withDefaults derived it from the trace maximum,
				// so nothing is dropped in that case.
				continue
			}
			s.pushEvent(&event{at: t, kind: evArrival})
		}
	case cfg.Clients > 0:
		if s.think, err = workload.NewArrivalSampler(1/cfg.ThinkSeconds, cfg.Seed+2); err != nil {
			return nil, err
		}
		for c := 0; c < cfg.Clients; c++ {
			if t := s.think.Next(); t <= cfg.DurationSeconds {
				s.pushEvent(&event{at: t, kind: evArrival, req: &request{client: c}})
			}
		}
	default:
		if s.arrivals, err = workload.NewArrivalSampler(cfg.RatePerSec, cfg.Seed); err != nil {
			return nil, err
		}
		if t := s.arrivals.Next(); t <= cfg.DurationSeconds {
			s.pushEvent(&event{at: t, kind: evArrival})
		}
	}

	// The event loop.
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		now := ev.at
		switch ev.kind {
		case evArrival:
			client := -1
			if ev.req != nil {
				client = ev.req.client
			}
			r := s.newRequest(now, client)
			s.requests++
			s.q.push(r)
			if s.arrivals != nil {
				if t := now + s.arrivals.Next(); t <= cfg.DurationSeconds {
					s.pushEvent(&event{at: t, kind: evArrival})
				}
			}
		case evPrefillDone:
			s.replicaBusy[ev.replica] = false
			for _, r := range ev.batch {
				r.firstTok = now
				if r.outLen > 0 {
					s.ttft = append(s.ttft, now-r.arrive)
				}
				if r.outLen > 1 {
					// The prefill pass emitted the first output token; the
					// remaining outLen-1 decode at token granularity.
					s.live[ev.replica] = append(s.live[ev.replica], r)
				} else {
					s.finish(r, now)
				}
			}
		case evStepDone:
			s.replicaBusy[ev.replica] = false
			live := s.live[ev.replica]
			surv := live[:0]
			for _, r := range live {
				r.generated++
				if r.generated >= r.outLen-1 {
					s.finish(r, now)
				} else {
					surv = append(surv, r)
				}
			}
			for i := len(surv); i < len(live); i++ {
				live[i] = nil
			}
			s.live[ev.replica] = surv
		}
		if err := s.dispatch(now); err != nil {
			return nil, err
		}
	}
	return s.report(), nil
}

// report assembles the final metrics.
func (s *sim) report() *Report {
	cfg := &s.cfg
	r := &Report{
		Model:     cfg.Model.Name,
		Format:    cfg.Fmt.Name(),
		Design:    cfg.Variant.String(),
		Scheduler: cfg.Scheduler.String(),
		Replicas:  cfg.Replicas,

		Requests:        s.requests,
		Completed:       len(s.tLat),
		Batches:         s.batches,
		DecodeSteps:     s.steps,
		DurationSeconds: cfg.DurationSeconds,
		MakespanSeconds: s.makespan,

		Queue:   statsOf(s.qLat),
		Service: statsOf(s.sLat),
		Latency: statsOf(s.tLat),
		TTFT:    statsOf(s.ttft),
		TPOT:    statsOf(s.tpot),

		TokensIn:     s.tokensIn,
		TokensPadded: s.tokensPadded,
		TokensOut:    s.tokensOut,
		EnergyJ:      s.energyJ,

		KVPeakBytes: s.kvPeak,

		DistinctForwardSims: s.oracle.distinctSims(),
	}
	// One replica's DRAM capacity net of the LUT budget: the part of the
	// paper's capacity axis KV state competes for.
	pcfg := &cfg.Engine.Cfg
	rankShare := pcfg.Ranks / cfg.Replicas
	if rankShare < 1 {
		rankShare = 1
	}
	r.KVCapacityBytes = int64(rankShare*pcfg.BanksPerRank) * (pcfg.MRAMBytes - pcfg.MRAMLUTBudget())
	if r.KVCapacityBytes > 0 {
		r.KVPeakUtilization = float64(r.KVPeakBytes) / float64(r.KVCapacityBytes)
	}
	r.OfferedPerSec = float64(r.Requests) / cfg.DurationSeconds
	if s.batches > 0 {
		r.MeanBatchSize = float64(s.batchReqs) / float64(s.batches)
	}
	if s.makespan > 0 {
		r.ThroughputPerSec = float64(r.Completed) / s.makespan
		r.TokensPerSec = float64(s.tokensIn+s.tokensOut) / s.makespan
		r.ReplicaUtilization = make([]float64, cfg.Replicas)
		var totalBusy float64
		for i, b := range s.busy {
			r.ReplicaUtilization[i] = b / s.makespan
			totalBusy += b
		}
		r.RankUtilization = totalBusy / (float64(cfg.Replicas) * s.makespan)
		if totalBusy > 0 {
			r.PIMUtilization = s.pimBusy / totalBusy
		}
	}
	if r.Completed > 0 {
		r.EnergyPerRequestJ = s.energyJ / float64(r.Completed)
		// Nextafter keeps the maximum inside the half-open top bucket.
		hi := math.Nextafter(r.Latency.Max, math.Inf(1))
		if hist, err := trace.NewHistogram(0, hi, 20); err == nil {
			for _, v := range s.tLat {
				hist.Add(v)
			}
			r.LatencyHist = hist
		}
	}
	return r
}
