package serve

import (
	"container/heap"
	"fmt"
	"math"

	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/energy"
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/trace"
	"github.com/ais-snu/localut/internal/workload"
)

// Config describes one serving simulation. Zero fields take the defaults
// documented on each; exactly one arrival source is active: ArrivalTimes
// if set, else a closed loop when Clients > 0, else open-loop Poisson at
// RatePerSec.
type Config struct {
	Model   dnn.ModelConfig
	Fmt     quant.Format
	Variant kernels.Variant

	// Engine is the appliance's base engine (nil = testbed defaults). It is
	// cloned and forced into cycles-only representative mode; the clone's
	// rank count is divided across Replicas.
	Engine *gemm.Engine
	// Energy prices each batch's meter (zero value = energy.Default()).
	Energy energy.Model

	// Replicas is the number of independent serving groups the appliance's
	// ranks are split into (integer division: remainder ranks stay idle);
	// each replica serves one batch at a time (default 4, must not exceed
	// the rank count).
	Replicas int

	// RatePerSec is the open-loop Poisson arrival rate.
	RatePerSec float64
	// Clients switches to a closed loop: this many clients, each issuing
	// its next request ThinkSeconds (mean, exponential) after its previous
	// one completes.
	Clients      int
	ThinkSeconds float64 // closed-loop mean think time (default 0.1)
	// ArrivalTimes replays an explicit trace of arrival timestamps
	// (seconds, need not be sorted).
	ArrivalTimes []float64

	// DurationSeconds is the arrival window; requests already admitted are
	// drained afterwards (default 60).
	DurationSeconds float64
	// Seed drives every sampler (default 1).
	Seed int64

	// MaxBatch bounds requests per batch (default 8).
	MaxBatch int
	// Scheduler picks FCFS (the zero value) or Packed.
	Scheduler Policy
	// PackWindow bounds how deep the packing scheduler scans the queue
	// (default 8*MaxBatch).
	PackWindow int

	// MinTokens/MaxTokens/MeanTokens parameterize the request length
	// distribution (defaults 16 / 256 / the model's SeqLen, clamped).
	MinTokens, MaxTokens int
	MeanTokens           float64
	// TokenQuantum is the shape-padding bucket: request lengths and batch
	// token totals round up to it, bounding the distinct forward-pass
	// shapes the oracle must simulate (default 64).
	TokenQuantum int

	// OutTokens adds autoregressive decode steps per request on decoder
	// models (default 0: prefill-only serving).
	OutTokens int
}

// withDefaults fills unset fields and validates the result.
func (c Config) withDefaults() (Config, error) {
	if c.Model.Layers == 0 {
		return c, fmt.Errorf("serve: config has no model")
	}
	if c.Engine == nil {
		c.Engine = gemm.NewEngine()
	}
	if c.Energy == (energy.Model{}) {
		c.Energy = energy.Default()
	}
	if c.Replicas == 0 {
		c.Replicas = 4
	}
	if c.DurationSeconds == 0 {
		if len(c.ArrivalTimes) > 0 {
			for _, t := range c.ArrivalTimes {
				if t > c.DurationSeconds {
					c.DurationSeconds = t
				}
			}
		} else {
			c.DurationSeconds = 60
		}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = 8
	}
	if c.PackWindow == 0 {
		c.PackWindow = 8 * c.MaxBatch
	}
	if c.MinTokens == 0 {
		c.MinTokens = 16
	}
	if c.MaxTokens == 0 {
		c.MaxTokens = 256
	}
	if c.MeanTokens == 0 {
		c.MeanTokens = float64(c.Model.SeqLen)
	}
	if c.MeanTokens < float64(c.MinTokens) {
		c.MeanTokens = float64(c.MinTokens)
	}
	if c.MeanTokens > float64(c.MaxTokens) {
		c.MeanTokens = float64(c.MaxTokens)
	}
	if c.TokenQuantum == 0 {
		c.TokenQuantum = 64
	}
	if c.ThinkSeconds == 0 {
		c.ThinkSeconds = 0.1
	}

	switch {
	case c.Replicas < 0 || c.MaxBatch < 0 || c.TokenQuantum < 0 || c.PackWindow < 0:
		return c, fmt.Errorf("serve: negative replica/batch/quantum/window configuration")
	case c.Replicas > c.Engine.Cfg.Ranks:
		return c, fmt.Errorf("serve: %d replicas exceed the appliance's %d ranks",
			c.Replicas, c.Engine.Cfg.Ranks)
	case c.DurationSeconds <= 0:
		return c, fmt.Errorf("serve: duration %g must be positive", c.DurationSeconds)
	case len(c.ArrivalTimes) == 0 && c.Clients == 0 && c.RatePerSec <= 0:
		return c, fmt.Errorf("serve: no arrival source (set RatePerSec, Clients or ArrivalTimes)")
	case c.Clients < 0:
		return c, fmt.Errorf("serve: %d clients", c.Clients)
	case c.OutTokens < 0:
		return c, fmt.Errorf("serve: %d decode tokens", c.OutTokens)
	case c.OutTokens > 0 && !c.Model.Decoder:
		return c, fmt.Errorf("serve: %s is not a decoder model (OutTokens must be 0)", c.Model.Name)
	}
	return c, nil
}

// Stats summarizes one latency population in seconds.
type Stats struct {
	P50, P95, P99 float64
	Mean, Max     float64
}

// statsOf computes the summary; samples arrive in completion order, so the
// mean's float accumulation order is fixed and the result reproducible.
func statsOf(vals []float64) Stats {
	if len(vals) == 0 {
		return Stats{}
	}
	qs := trace.Quantiles(vals, 0.5, 0.95, 0.99)
	s := Stats{P50: qs[0], P95: qs[1], P99: qs[2]}
	sum := 0.0
	for _, v := range vals {
		sum += v
		if v > s.Max {
			s.Max = v
		}
	}
	s.Mean = sum / float64(len(vals))
	return s
}

// Report is the outcome of one serving simulation. Same config + seed =>
// bit-identical Report.
type Report struct {
	Model     string
	Format    string
	Design    string
	Scheduler string
	Replicas  int

	Requests  int // admitted during the arrival window
	Completed int // all admitted requests are drained
	Batches   int

	MeanBatchSize    float64
	DurationSeconds  float64 // arrival window
	MakespanSeconds  float64 // last completion time
	OfferedPerSec    float64 // Requests / DurationSeconds
	ThroughputPerSec float64 // Completed / MakespanSeconds

	Queue   Stats // admission to batch start
	Service Stats // batch start to completion
	Latency Stats // admission to completion

	// RankUtilization is the mean busy fraction of the replicas over the
	// makespan; ReplicaUtilization itemizes it.
	RankUtilization    float64
	ReplicaUtilization []float64
	// PIMUtilization is the PIM-kernel share of that busy time — the rest
	// is host quant/pack work and transfers.
	PIMUtilization float64

	TokensIn     int64 // sampled request tokens
	TokensPadded int64 // tokens actually priced after shape padding

	EnergyJ           float64
	EnergyPerRequestJ float64

	// DistinctForwardSims counts the planner executions behind the whole
	// run — the memoization that makes million-request simulation cheap.
	DistinctForwardSims int

	// LatencyHist buckets the total latency of every completed request
	// over [0, Latency.Max] (nil when nothing completed).
	LatencyHist *trace.Histogram
}

// event kinds.
const (
	evArrival = iota
	evComplete
)

// event is one heap entry; seq breaks time ties in insertion order so the
// loop is deterministic even under simultaneous events.
type event struct {
	at   float64
	seq  int64
	kind int

	req     *request   // evArrival
	replica int        // evComplete
	batch   []*request // evComplete
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// sim is the mutable state of one run.
type sim struct {
	cfg    Config
	oracle *oracle
	sched  scheduler

	events eventHeap
	seq    int64
	q      queue

	arrivals *workload.ArrivalSampler // open loop
	lengths  *workload.LengthSampler
	think    *workload.ArrivalSampler // closed loop

	replicaBusy []bool
	busy        []float64 // accumulated service seconds per replica
	pimBusy     float64   // accumulated PIM-kernel seconds across replicas

	nextID    int
	requests  int
	batches   int
	batchReqs int

	tokensIn, tokensPadded int64
	energyJ                float64

	qLat, sLat, tLat []float64
	makespan         float64
}

func (s *sim) pushEvent(e *event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// newRequest admits a request arriving at t for the given closed-loop
// client (-1 for open-loop/trace), sampling its length.
func (s *sim) newRequest(t float64, client int) *request {
	tok := s.lengths.Next()
	pad := roundUp(tok, s.cfg.TokenQuantum)
	r := &request{id: s.nextID, client: client, tokens: tok, padded: pad, arrive: t}
	s.nextID++
	return r
}

func roundUp(v, quantum int) int {
	return (v + quantum - 1) / quantum * quantum
}

// freeReplica returns the lowest-index idle replica, or -1.
func (s *sim) freeReplica() int {
	for i, b := range s.replicaBusy {
		if !b {
			return i
		}
	}
	return -1
}

// dispatch forms and launches batches while a replica is idle and requests
// wait.
func (s *sim) dispatch(now float64) error {
	for s.q.len() > 0 {
		rep := s.freeReplica()
		if rep < 0 {
			return nil
		}
		batch := s.sched.pick(&s.q, s.cfg.MaxBatch)
		// Members are already quantum-padded, so their sum is the batch's
		// padded shape; ctx is the longest member (attention span).
		padTokens, maxPad := 0, 0
		for _, r := range batch {
			r.start = now
			padTokens += r.padded
			s.tokensIn += int64(r.tokens)
			if r.padded > maxPad {
				maxPad = r.padded
			}
		}
		cost, err := s.oracle.batch(padTokens, maxPad, len(batch))
		if err != nil {
			return err
		}
		s.tokensPadded += int64(padTokens)
		s.energyJ += cost.energyJ
		s.busy[rep] += cost.seconds
		s.pimBusy += cost.pimSec
		s.batches++
		s.batchReqs += len(batch)
		s.replicaBusy[rep] = true
		s.pushEvent(&event{at: now + cost.seconds, kind: evComplete, replica: rep, batch: batch})
	}
	return nil
}

// Run executes the simulation to completion: arrivals stop at the duration
// cutoff and the queue drains.
func Run(cfg Config) (*Report, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	s := &sim{cfg: cfg, oracle: newOracle(&cfg)}
	if s.sched, err = newScheduler(cfg.Scheduler, cfg.PackWindow); err != nil {
		return nil, err
	}
	if s.lengths, err = workload.NewLengthSampler(cfg.MinTokens, cfg.MaxTokens, cfg.MeanTokens, cfg.Seed+1); err != nil {
		return nil, err
	}
	s.replicaBusy = make([]bool, cfg.Replicas)
	s.busy = make([]float64, cfg.Replicas)

	// Seed the arrival process.
	switch {
	case len(cfg.ArrivalTimes) > 0:
		for _, t := range cfg.ArrivalTimes {
			if t < 0 {
				return nil, fmt.Errorf("serve: negative arrival time %g in trace", t)
			}
			if t > cfg.DurationSeconds {
				// The arrival window applies to every source; with an unset
				// duration withDefaults derived it from the trace maximum,
				// so nothing is dropped in that case.
				continue
			}
			s.pushEvent(&event{at: t, kind: evArrival})
		}
	case cfg.Clients > 0:
		if s.think, err = workload.NewArrivalSampler(1/cfg.ThinkSeconds, cfg.Seed+2); err != nil {
			return nil, err
		}
		for c := 0; c < cfg.Clients; c++ {
			if t := s.think.Next(); t <= cfg.DurationSeconds {
				s.pushEvent(&event{at: t, kind: evArrival, req: &request{client: c}})
			}
		}
	default:
		if s.arrivals, err = workload.NewArrivalSampler(cfg.RatePerSec, cfg.Seed); err != nil {
			return nil, err
		}
		if t := s.arrivals.Next(); t <= cfg.DurationSeconds {
			s.pushEvent(&event{at: t, kind: evArrival})
		}
	}

	// The event loop.
	for s.events.Len() > 0 {
		ev := heap.Pop(&s.events).(*event)
		now := ev.at
		switch ev.kind {
		case evArrival:
			client := -1
			if ev.req != nil {
				client = ev.req.client
			}
			r := s.newRequest(now, client)
			s.requests++
			s.q.push(r)
			if s.arrivals != nil {
				if t := now + s.arrivals.Next(); t <= cfg.DurationSeconds {
					s.pushEvent(&event{at: t, kind: evArrival})
				}
			}
			if err := s.dispatch(now); err != nil {
				return nil, err
			}
		case evComplete:
			s.replicaBusy[ev.replica] = false
			if now > s.makespan {
				s.makespan = now
			}
			for _, r := range ev.batch {
				r.finish = now
				s.qLat = append(s.qLat, r.start-r.arrive)
				s.sLat = append(s.sLat, r.finish-r.start)
				s.tLat = append(s.tLat, r.finish-r.arrive)
				if s.think != nil && r.client >= 0 {
					if t := now + s.think.Next(); t <= cfg.DurationSeconds {
						s.pushEvent(&event{at: t, kind: evArrival, req: &request{client: r.client}})
					}
				}
			}
			if err := s.dispatch(now); err != nil {
				return nil, err
			}
		}
	}
	return s.report(), nil
}

// report assembles the final metrics.
func (s *sim) report() *Report {
	cfg := &s.cfg
	r := &Report{
		Model:     cfg.Model.Name,
		Format:    cfg.Fmt.Name(),
		Design:    cfg.Variant.String(),
		Scheduler: cfg.Scheduler.String(),
		Replicas:  cfg.Replicas,

		Requests:        s.requests,
		Completed:       len(s.tLat),
		Batches:         s.batches,
		DurationSeconds: cfg.DurationSeconds,
		MakespanSeconds: s.makespan,

		Queue:   statsOf(s.qLat),
		Service: statsOf(s.sLat),
		Latency: statsOf(s.tLat),

		TokensIn:     s.tokensIn,
		TokensPadded: s.tokensPadded,
		EnergyJ:      s.energyJ,

		DistinctForwardSims: s.oracle.distinctSims(),
	}
	r.OfferedPerSec = float64(r.Requests) / cfg.DurationSeconds
	if s.batches > 0 {
		r.MeanBatchSize = float64(s.batchReqs) / float64(s.batches)
	}
	if s.makespan > 0 {
		r.ThroughputPerSec = float64(r.Completed) / s.makespan
		r.ReplicaUtilization = make([]float64, cfg.Replicas)
		var totalBusy float64
		for i, b := range s.busy {
			r.ReplicaUtilization[i] = b / s.makespan
			totalBusy += b
		}
		r.RankUtilization = totalBusy / (float64(cfg.Replicas) * s.makespan)
		if totalBusy > 0 {
			r.PIMUtilization = s.pimBusy / totalBusy
		}
	}
	if r.Completed > 0 {
		r.EnergyPerRequestJ = s.energyJ / float64(r.Completed)
		// Nextafter keeps the maximum inside the half-open top bucket.
		hi := math.Nextafter(r.Latency.Max, math.Inf(1))
		if hist, err := trace.NewHistogram(0, hi, 20); err == nil {
			for _, v := range s.tLat {
				hist.Add(v)
			}
			r.LatencyHist = hist
		}
	}
	return r
}
