package serve

import "fmt"

// queue is the FIFO admission queue. Head pops are O(1); the packing
// scheduler removes scattered entries from a bounded prefix, which costs
// O(window) per batch.
type queue struct {
	items []*Request
	head  int
}

func (q *queue) len() int          { return len(q.items) - q.head }
func (q *queue) push(r *Request)   { q.items = append(q.items, r) }
func (q *queue) at(i int) *Request { return q.items[q.head+i] }

// pushFront returns requests to the front of the queue in order (the
// first element becomes the new head). The KV-budget policies use it to
// hand back picked-but-unlaunched work without losing its place in line.
func (q *queue) pushFront(rs []*Request) {
	if len(rs) == 0 {
		return
	}
	if q.head >= len(rs) {
		q.head -= len(rs)
		copy(q.items[q.head:], rs)
		return
	}
	items := make([]*Request, 0, len(rs)+q.len())
	items = append(items, rs...)
	items = append(items, q.items[q.head:]...)
	q.items = items
	q.head = 0
}

func (q *queue) popHead() *Request {
	r := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	q.maybeCompact()
	return r
}

// removePrefix removes the requests at the ascending prefix-relative
// indices sel (which must include 0) and returns them in order. Survivors
// in the prefix shift toward the head so the queue stays contiguous.
func (q *queue) removePrefix(sel []int) []*Request {
	out := make([]*Request, 0, len(sel))
	last := sel[len(sel)-1]
	surv := make([]*Request, 0, last)
	next := 0
	for i := 0; i <= last; i++ {
		it := q.items[q.head+i]
		if next < len(sel) && sel[next] == i {
			out = append(out, it)
			next++
		} else {
			surv = append(surv, it)
		}
	}
	newHead := q.head + last + 1 - len(surv)
	copy(q.items[newHead:q.head+last+1], surv)
	for i := q.head; i < newHead; i++ {
		q.items[i] = nil
	}
	q.head = newHead
	q.maybeCompact()
	return out
}

// remove deletes one request from anywhere in the queue, preserving the
// order of the survivors, and reports whether it was present. Request
// cancellation (hedge losers) is the only caller; it is O(queue length).
func (q *queue) remove(r *Request) bool {
	for i := q.head; i < len(q.items); i++ {
		if q.items[i] == r {
			copy(q.items[i:], q.items[i+1:])
			q.items[len(q.items)-1] = nil
			q.items = q.items[:len(q.items)-1]
			return true
		}
	}
	return false
}

// maybeCompact reclaims the dead prefix once it dominates the backing array.
func (q *queue) maybeCompact() {
	if q.head > 1024 && q.head > len(q.items)/2 {
		n := copy(q.items, q.items[q.head:])
		for i := n; i < len(q.items); i++ {
			q.items[i] = nil
		}
		q.items = q.items[:n]
		q.head = 0
	}
}

// Policy selects the batch-forming scheduler.
type Policy int

const (
	// FCFS serves strictly in arrival order: the next batch is the first
	// MaxBatch waiting requests, whatever their lengths.
	FCFS Policy = iota
	// Packed is the continuous-batching-style shape packer: it scans a
	// bounded window of the queue for requests in the head's padded-length
	// bucket, so every batch is a uniform GEMM shape group.
	Packed
)

var policyNames = [...]string{"fcfs", "packed"}

func (p Policy) String() string {
	if p >= 0 && int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("Policy(%d)", int(p))
}

// ParsePolicy parses "fcfs" or "packed".
func ParsePolicy(s string) (Policy, error) {
	for i, n := range policyNames {
		if s == n {
			return Policy(i), nil
		}
	}
	return 0, fmt.Errorf("serve: unknown scheduler %q (want fcfs or packed)", s)
}

// scheduler forms the next batch from a non-empty queue. Implementations
// must be deterministic pure functions of the queue contents.
type scheduler interface {
	// pick removes and returns 1..max requests, always including the head
	// (no starvation: the oldest request is served first in every batch).
	pick(q *queue, max int) []*Request
}

// fcfsScheduler takes the first max requests in arrival order.
type fcfsScheduler struct{}

func (fcfsScheduler) pick(q *queue, max int) []*Request {
	n := q.len()
	if n > max {
		n = max
	}
	out := make([]*Request, n)
	for i := range out {
		out[i] = q.popHead()
	}
	return out
}

// packedScheduler groups same-bucket requests: it serves the head plus up
// to max-1 requests from the first window queue entries whose padded
// length matches the head's. Requests it skips keep their place in line.
type packedScheduler struct {
	window int
}

func (p packedScheduler) pick(q *queue, max int) []*Request {
	bucket := q.at(0).Padded
	w := q.len()
	if w > p.window {
		w = p.window
	}
	sel := make([]int, 0, max)
	for i := 0; i < w && len(sel) < max; i++ {
		if q.at(i).Padded == bucket {
			sel = append(sel, i)
		}
	}
	return q.removePrefix(sel)
}

// newScheduler builds the policy's scheduler. The packing window bounds
// the per-batch queue scan (and how far a request can be overtaken).
func newScheduler(p Policy, window int) (scheduler, error) {
	switch p {
	case FCFS:
		return fcfsScheduler{}, nil
	case Packed:
		return packedScheduler{window: window}, nil
	}
	return nil, fmt.Errorf("serve: unknown scheduler policy %d", int(p))
}
