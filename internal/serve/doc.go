// Package serve is a deterministic discrete-event serving simulator for a
// multi-rank LoCaLUT appliance: the layer that turns the repo's per-GEMM
// and per-forward-pass oracles into answers about *requests over time* —
// queueing delay under a Poisson arrival stream, p99 latency at a given
// offered rate, time-to-first-token and time-per-output-token under
// autoregressive decode, the saturation throughput of a design point,
// energy per request.
//
// The simulation is a single-threaded event loop over a (time, sequence)
// ordered heap with three event kinds: arrival (a request joins the
// queue), prefill-done (a replica finishes a prompt pass; members record
// TTFT and join the replica's live decode batch), and step-done (a
// replica finishes one token-level decode step; every live request
// advances a token, and those whose sampled output length completes
// leave the batch). Three processes feed arrivals:
//
//   - open-loop arrivals: exponential inter-arrival gaps at a fixed rate
//     (workload.ArrivalSampler), each request with a sampled bounded
//     prompt length (workload.LengthSampler) and, on decoder models, a
//     sampled or fixed output length;
//   - closed-loop arrivals: a fixed client population, each client issuing
//     its next request an exponential think time after its previous one
//     completes — completions happen at decode-step boundaries;
//   - trace replay: caller-provided arrival timestamps.
//
// Requests wait in an admission queue until a replica — an equal share of
// the appliance's ranks — has room. A pluggable scheduler forms the
// batch: FCFS takes the head of the line; the packing scheduler scans a
// bounded window for requests in the same padded-length bucket, so
// batches are uniform GEMM shape groups. Decode is continuous batching
// at token granularity: completed requests leave and newly prefilled
// ones join the live batch at step boundaries.
//
// Service time comes from the cost oracle: prompt passes price one dnn
// forward pass over the batch's padded token count, decode steps price
// dnn.DecodeStep at the live batch's true mean context (prompt + tokens
// generated so far), bucketed to the token quantum. Both are memoized —
// prefill per (tokens, ctx), steps per (batch, ctx bucket) — and
// cycles-only pricing is itself memoized per bank shape (gemm.CostMemo),
// so a million-request run executes only a handful of distinct
// simulations — this is what makes request-level simulation of a
// cycle-approximate machine tractable. Each step also gauges the
// replica's KV-cache footprint against its DRAM capacity net of the LUT
// budget: the paper's capacity axis, contended by LUTs and KV state.
//
// Determinism: every random draw comes from a seeded sampler consumed in
// event order, the event heap breaks time ties by insertion sequence, and
// all aggregation (latency vectors, TTFT/TPOT samples, energy, token
// counts) happens in completion order with the quantile helpers of
// internal/trace. Same seed and config => bit-identical Report, at any
// host parallelism level — cycles-only GEMM reports are
// parallelism-independent by construction.
package serve
