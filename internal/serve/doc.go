// Package serve is a deterministic discrete-event serving simulator for a
// multi-rank LoCaLUT appliance: the layer that turns the repo's per-GEMM
// and per-forward-pass oracles into answers about *requests over time* —
// queueing delay under a Poisson arrival stream, p99 latency at a given
// offered rate, the saturation throughput of a design point, energy per
// request.
//
// The simulation is a single-threaded event loop over a (time, sequence)
// ordered heap. Three processes feed it:
//
//   - open-loop arrivals: exponential inter-arrival gaps at a fixed rate
//     (workload.ArrivalSampler), each request with a sampled bounded
//     sequence length (workload.LengthSampler);
//   - closed-loop arrivals: a fixed client population, each client issuing
//     its next request an exponential think time after its previous one
//     completes;
//   - trace replay: caller-provided arrival timestamps.
//
// Requests wait in an admission queue until a replica — an equal share of
// the appliance's ranks — is free. A pluggable scheduler forms the batch:
// FCFS takes the head of the line; the packing scheduler scans a bounded
// window for requests in the same padded-length bucket, so batches are
// uniform GEMM shape groups (less padding waste, fewer distinct shapes).
//
// Service time comes from the cost oracle: one dnn forward pass over the
// batch's padded token count, priced through the gemm planners in
// cycles-only mode on an engine scaled to the replica's rank share. The
// price of a (tokens, ctx) shape is memoized, and cycles-only pricing is
// itself memoized per bank shape (gemm.CostMemo), so a million-request run
// executes only a handful of distinct simulations — this is what makes
// request-level simulation of a cycle-approximate machine tractable.
//
// Determinism: every random draw comes from a seeded sampler consumed in
// event order, the event heap breaks time ties by insertion sequence, and
// all aggregation (latency vectors, energy, token counts) happens in
// completion order with the quantile helpers of internal/trace. Same seed
// and config => bit-identical Report, at any host parallelism level —
// cycles-only GEMM reports are parallelism-independent by construction.
package serve
