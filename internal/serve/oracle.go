package serve

import (
	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/energy"
	"github.com/ais-snu/localut/internal/kernels"
)

// batchCost is the priced outcome of one batched forward pass.
type batchCost struct {
	seconds float64 // end-to-end service seconds (host + transfer + PIM)
	pimSec  float64 // PIM kernel share of seconds
	energyJ float64 // priced energy of the pass
}

// costKey identifies one distinct forward-pass shape.
type costKey struct {
	tokens, ctx int
}

// oracle prices batched forward passes through the dnn/gemm planners in
// cycles-only mode and memoizes per shape. Replica scaling happens here:
// the runner's engine is a clone of the appliance engine with its rank
// count divided by the replica count, so each replica's forward pass sees
// only its share of banks.
type oracle struct {
	runner    *dnn.Runner
	energy    energy.Model
	outTokens int

	prefill map[costKey]batchCost
	decode  map[costKey]batchCost // key: (batch size, ctx)
}

// newOracle builds the pricing path for one serving run.
func newOracle(cfg *Config) *oracle {
	eng := cfg.Engine.Clone()
	eng.Exec.Mode = kernels.CyclesOnly
	eng.Exec.FullGrid = false
	ranks := eng.Cfg.Ranks / cfg.Replicas
	if ranks < 1 {
		ranks = 1
	}
	eng.Cfg.Ranks = ranks

	r := dnn.NewRunner(cfg.Model, cfg.Fmt, cfg.Variant)
	r.Engine = eng
	r.Seed = cfg.Seed
	return &oracle{
		runner:    r,
		energy:    cfg.Energy,
		outTokens: cfg.OutTokens,
		prefill:   make(map[costKey]batchCost),
		decode:    make(map[costKey]batchCost),
	}
}

// price converts a phase report to a batchCost.
func (o *oracle) price(p *dnn.PhaseReport) batchCost {
	e := o.energy.Price(&p.Meter, p.HostOps, p.Total)
	return batchCost{seconds: p.Total, pimSec: p.GEMMPIM, energyJ: e.TotalJ}
}

// batch prices one batch: `tokens` padded prompt tokens attending over a
// ctx-token context, plus OutTokens decode steps for n sequences on
// decoder models. Misses run the planners; hits are map lookups.
func (o *oracle) batch(tokens, ctx, n int) (batchCost, error) {
	key := costKey{tokens, ctx}
	cost, ok := o.prefill[key]
	if !ok {
		rep, err := o.runner.ForwardTokens(tokens, ctx)
		if err != nil {
			return batchCost{}, err
		}
		cost = o.price(rep)
		o.prefill[key] = cost
	}
	if o.outTokens > 0 && o.runner.Model.Decoder {
		// Decode derives its own context (SeqLen + outTokens/2), so its
		// cost depends only on the batch size — keying on ctx would rerun
		// identical simulations and overcount DistinctForwardSims.
		dkey := costKey{n, 0}
		dcost, ok := o.decode[dkey]
		if !ok {
			rep, err := o.runner.Decode(n, o.outTokens)
			if err != nil {
				return batchCost{}, err
			}
			dcost = o.price(rep)
			o.decode[dkey] = dcost
		}
		cost.seconds += dcost.seconds
		cost.pimSec += dcost.pimSec
		cost.energyJ += dcost.energyJ
	}
	return cost, nil
}

// distinctSims counts the planner executions the whole run needed.
func (o *oracle) distinctSims() int { return len(o.prefill) + len(o.decode) }
