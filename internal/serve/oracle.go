package serve

import (
	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/energy"
	"github.com/ais-snu/localut/internal/kernels"
)

// batchCost is the priced outcome of one batched forward pass.
type batchCost struct {
	seconds float64 // end-to-end service seconds (host + transfer + PIM)
	pimSec  float64 // PIM kernel share of seconds
	energyJ float64 // priced energy of the pass
}

// costKey identifies one distinct forward-pass shape.
type costKey struct {
	tokens, ctx int
}

// Oracle prices batched forward passes through the dnn/gemm planners in
// cycles-only mode and memoizes per shape. Replica scaling happens here:
// the runner's engine is a clone of the appliance engine with its rank
// count divided by the replica count, so each replica's forward pass sees
// only its share of banks.
type Oracle struct {
	runner *dnn.Runner
	energy energy.Model

	prefill map[costKey]batchCost
	step    map[costKey]batchCost // key: (live batch size, ctx bucket)
}

// NewOracle builds the pricing path for one serving run. A fleet of
// identical appliances may share one Oracle (from a single event loop):
// each distinct forward-pass shape is then planned once per fleet.
func NewOracle(cfg *Config) *Oracle {
	eng := cfg.Engine.Clone()
	eng.Exec.Mode = kernels.CyclesOnly
	eng.Exec.FullGrid = false
	ranks := eng.Cfg.Ranks / cfg.Replicas
	if ranks < 1 {
		ranks = 1
	}
	eng.Cfg.Ranks = ranks

	r := dnn.NewRunner(cfg.Model, cfg.Fmt, cfg.Variant)
	r.Engine = eng
	r.Seed = cfg.Seed
	return &Oracle{
		runner:  r,
		energy:  cfg.Energy,
		prefill: make(map[costKey]batchCost),
		step:    make(map[costKey]batchCost),
	}
}

// price converts a phase report to a batchCost.
func (o *Oracle) price(p *dnn.PhaseReport) batchCost {
	e := o.energy.Price(&p.Meter, p.HostOps, p.Total)
	return batchCost{seconds: p.Total, pimSec: p.GEMMPIM, energyJ: e.TotalJ}
}

// batch prices one prefill pass: `tokens` padded prompt tokens attending
// over a ctx-token context. Misses run the planners; hits are map lookups.
func (o *Oracle) batch(tokens, ctx int) (batchCost, error) {
	key := costKey{tokens, ctx}
	cost, ok := o.prefill[key]
	if !ok {
		rep, err := o.runner.ForwardTokens(tokens, ctx)
		if err != nil {
			return batchCost{}, err
		}
		cost = o.price(rep)
		o.prefill[key] = cost
	}
	return cost, nil
}

// decodeStep prices one token-level decode step: n single-token queries
// attending over a ctx-token context. Callers bucket ctx (round up to the
// token quantum) before keying, so the step map — and with it
// DistinctForwardSims — stays bounded by batch-size x context-bucket
// combinations however long the generations run.
func (o *Oracle) decodeStep(n, ctx int) (batchCost, error) {
	key := costKey{n, ctx}
	cost, ok := o.step[key]
	if !ok {
		rep, err := o.runner.DecodeStep(n, ctx)
		if err != nil {
			return batchCost{}, err
		}
		cost = o.price(rep)
		o.step[key] = cost
	}
	return cost, nil
}

// DistinctSims counts the planner executions the whole run needed.
func (o *Oracle) DistinctSims() int { return len(o.prefill) + len(o.step) }
