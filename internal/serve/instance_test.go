package serve

import (
	"testing"

	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
)

// newTestInstance builds a normalized instance for direct state-machine
// tests.
func newTestInstance(t *testing.T, mutate func(*Config)) *Instance {
	t.Helper()
	cfg := Config{
		Model:    dnn.BERTBase(),
		Fmt:      quant.W1A3,
		Variant:  kernels.LoCaLUT,
		Replicas: 2,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	inst, err := NewInstance(cfg, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func testRequest(id, tokens int) *Request {
	return &Request{ID: id, Client: -1, Tokens: tokens, Padded: roundUp(tokens, 64)}
}

// TestKVPeakSamplesPrefill pins the gauge fix: prefill-only serving pins
// prompt KV during the pass, so the peak must be nonzero even when no
// request ever decodes.
func TestKVPeakSamplesPrefill(t *testing.T) {
	rep, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TokensOut != 0 {
		t.Fatalf("prefill-only scenario generated %d tokens", rep.TokensOut)
	}
	if rep.KVPeakBytes == 0 {
		t.Fatal("prefill writes left no KV peak; the gauge must sample at prefill launch")
	}
	if rep.KVPeakBytes > rep.KVCapacityBytes {
		t.Errorf("unenforced gauge run exceeded capacity: peak %d > cap %d (suspicious for this load)",
			rep.KVPeakBytes, rep.KVCapacityBytes)
	}
}

// TestQueuePushFront pins the head-return path both below and above the
// dead-prefix headroom.
func TestQueuePushFront(t *testing.T) {
	var q queue
	for i := 0; i < 4; i++ {
		q.push(testRequest(i, 16))
	}
	// No headroom: a rebuild must prepend in order.
	q.pushFront([]*Request{testRequest(10, 16), testRequest(11, 16)})
	want := []int{10, 11, 0, 1, 2, 3}
	if q.len() != len(want) {
		t.Fatalf("len %d, want %d", q.len(), len(want))
	}
	for i, id := range want {
		if q.at(i).ID != id {
			t.Fatalf("slot %d holds ID %d, want %d", i, q.at(i).ID, id)
		}
	}
	// Pop two to open headroom, then return them: the in-place path.
	a, b := q.popHead(), q.popHead()
	q.pushFront([]*Request{a, b})
	for i, id := range want {
		if q.at(i).ID != id {
			t.Fatalf("after in-place return, slot %d holds ID %d, want %d", i, q.at(i).ID, id)
		}
	}
}

// TestInstanceMaxQueue pins bounded admission: refusals leave every
// counter untouched.
func TestInstanceMaxQueue(t *testing.T) {
	inst := newTestInstance(t, func(c *Config) { c.MaxQueue = 2 })
	if !inst.Admit(testRequest(0, 16)) || !inst.Admit(testRequest(1, 16)) {
		t.Fatal("admission below the bound refused")
	}
	if inst.Admit(testRequest(2, 16)) {
		t.Fatal("admission above the bound accepted")
	}
	if inst.Outstanding() != 2 || inst.QueueLen() != 2 {
		t.Errorf("refusal perturbed counters: outstanding=%d queue=%d", inst.Outstanding(), inst.QueueLen())
	}
}

// TestInstanceCrash pins fail-stop semantics: the queue and all started
// work are returned, state zeroes, epochs bump so stale completions are
// recognizable.
func TestInstanceCrash(t *testing.T) {
	inst := newTestInstance(t, nil)
	for i := 0; i < 6; i++ {
		inst.Admit(testRequest(i, 16))
	}
	comps, err := inst.Dispatch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) == 0 {
		t.Fatal("dispatch started nothing")
	}
	epoch0 := inst.ReplicaEpoch(comps[0].Replica)
	queued, started := inst.Crash(1e-4)
	if len(started) == 0 {
		t.Fatal("crash lost no in-flight work despite running passes")
	}
	if len(queued)+len(started) != 6 {
		t.Fatalf("crash returned %d queued + %d started, want 6 total", len(queued), len(started))
	}
	if inst.Outstanding() != 0 || inst.QueueLen() != 0 {
		t.Errorf("crashed instance still holds work: outstanding=%d queue=%d",
			inst.Outstanding(), inst.QueueLen())
	}
	if inst.ReplicaEpoch(comps[0].Replica) != epoch0+1 {
		t.Error("crash did not bump the replica epoch")
	}
	if inst.KVDemandBytes() != 0 {
		t.Errorf("crashed instance still pins %d KV bytes", inst.KVDemandBytes())
	}
	st := inst.Stats()
	if st.Crashes != 1 {
		t.Errorf("crash counter %d, want 1", st.Crashes)
	}
	// The stale completion must be recognizable by its epoch stamp.
	if comps[0].Epoch == inst.ReplicaEpoch(comps[0].Replica) {
		t.Error("pre-crash completion epoch still matches; stale events would be delivered")
	}
}

// TestFailReplica pins degraded mode: replicas drop highest-first, the
// last healthy replica refuses to fail, and repair restores lowest-first.
func TestFailReplica(t *testing.T) {
	inst := newTestInstance(t, nil) // 2 replicas
	if got := inst.UpReplicas(); got != 2 {
		t.Fatalf("fresh instance has %d healthy replicas, want 2", got)
	}
	_, rep := inst.FailReplica(0)
	if rep != 1 {
		t.Fatalf("failed replica %d, want highest index 1", rep)
	}
	if inst.UpReplicas() != 1 {
		t.Fatalf("after one failure %d healthy, want 1", inst.UpReplicas())
	}
	if _, rep := inst.FailReplica(0); rep != -1 {
		t.Fatalf("last healthy replica failed (rep=%d); must refuse", rep)
	}
	if got := inst.RepairReplica(); got != 1 {
		t.Fatalf("repaired replica %d, want 1", got)
	}
	if inst.UpReplicas() != 2 {
		t.Errorf("after repair %d healthy, want 2", inst.UpReplicas())
	}
	if got := inst.RepairReplica(); got != -1 {
		t.Errorf("healthy instance repaired replica %d, want -1", got)
	}
}

// TestFailReplicaLosesWork verifies a degraded fault loses exactly the
// victim replica's work and dispatch avoids the downed replica.
func TestFailReplicaLosesWork(t *testing.T) {
	inst := newTestInstance(t, func(c *Config) { c.MaxBatch = 2 })
	for i := 0; i < 4; i++ {
		inst.Admit(testRequest(i, 16))
	}
	if _, err := inst.Dispatch(0); err != nil {
		t.Fatal(err)
	}
	lost, rep := inst.FailReplica(1e-4)
	if rep != 1 || len(lost) == 0 {
		t.Fatalf("degraded fault on replica %d lost %d requests", rep, len(lost))
	}
	comps, err := inst.Dispatch(1e-3)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range comps {
		if c.Replica == rep {
			t.Errorf("dispatch used downed replica %d", rep)
		}
	}
}

// TestKVShedPolicy pins budget enforcement: with a KV budget squeezed to
// one prompt per replica, the shed policy drops overflow with accounting.
func TestKVShedPolicy(t *testing.T) {
	inst := newTestInstance(t, func(c *Config) { c.KVPolicy = KVShed; c.MaxBatch = 4 })
	shed := 0
	inst.OnShed = func(r *Request, now float64, reason ShedReason) {
		if reason != ShedKV {
			t.Errorf("shed reason %d, want ShedKV", reason)
		}
		shed++
	}
	// Squeeze the budget to two prompts' worth of tokens per replica.
	inst.kvCapacity = 2 * 100 * inst.kvPerToken
	for i := 0; i < 8; i++ {
		inst.Admit(testRequest(i, 100))
	}
	if _, err := inst.Dispatch(0); err != nil {
		t.Fatal(err)
	}
	// 2 replicas x 2 fitting prompts launch; with MaxBatch 4 each replica
	// picked 4 and shed the overflow.
	if shed == 0 {
		t.Fatal("overcommitted KV shed nothing under KVShed")
	}
	if inst.Stats().Shed != shed {
		t.Errorf("stats shed %d != callback count %d", inst.Stats().Shed, shed)
	}
	if inst.Outstanding() != 8-shed {
		t.Errorf("outstanding %d after %d sheds, want %d", inst.Outstanding(), shed, 8-shed)
	}
}

// TestKVStallPolicy pins the stall path: overflow waits at the queue head
// instead of being dropped, and launches once KV frees.
func TestKVStallPolicy(t *testing.T) {
	inst := newTestInstance(t, func(c *Config) { c.KVPolicy = KVStall; c.MaxBatch = 4; c.Replicas = 1 })
	inst.OnShed = func(r *Request, now float64, reason ShedReason) {
		t.Errorf("stall policy shed request %d (%v)", r.ID, reason)
	}
	inst.kvCapacity = 2 * 100 * inst.kvPerToken
	for i := 0; i < 4; i++ {
		inst.Admit(testRequest(i, 100))
	}
	comps, err := inst.Dispatch(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 1 || len(comps[0].Batch) != 2 {
		t.Fatalf("expected one 2-request prefill within budget, got %+v", comps)
	}
	if inst.QueueLen() != 2 {
		t.Fatalf("overflow not returned to the queue: len %d, want 2", inst.QueueLen())
	}
	// Stalled work keeps arrival order at the head.
	if q := inst.q.at(0); q.ID != 2 {
		t.Errorf("stalled head ID %d, want 2", q.ID)
	}
	// Finish the pass (prefill-only => prompt KV releases) and the stalled
	// pair launches.
	inst.PrefillDone(comps[0].Replica, comps[0].Batch, comps[0].At)
	comps, err = inst.Dispatch(comps[0].At)
	if err != nil {
		t.Fatal(err)
	}
	if len(comps) != 1 || len(comps[0].Batch) != 2 {
		t.Fatalf("stalled work did not launch after KV freed: %+v", comps)
	}
	if inst.Outstanding() != 2 || inst.QueueLen() != 0 {
		t.Errorf("outstanding=%d queue=%d after relaunch", inst.Outstanding(), inst.QueueLen())
	}
}

// TestKVUnservablePromptSheds pins the escape hatch: a prompt too large
// for even an empty replica can never launch and must shed under any
// enforcing policy.
func TestKVUnservablePromptSheds(t *testing.T) {
	inst := newTestInstance(t, func(c *Config) { c.KVPolicy = KVStall; c.Replicas = 1 })
	shed := 0
	inst.OnShed = func(r *Request, now float64, reason ShedReason) {
		if reason != ShedKV {
			t.Errorf("shed reason %d, want ShedKV", reason)
		}
		shed++
	}
	inst.kvCapacity = 50 * inst.kvPerToken
	inst.Admit(testRequest(0, 100)) // can never fit
	inst.Admit(testRequest(1, 40))
	if _, err := inst.Dispatch(0); err != nil {
		t.Fatal(err)
	}
	if shed != 1 {
		t.Fatalf("unservable prompt shed %d times, want 1", shed)
	}
	if inst.Outstanding() != 1 {
		t.Errorf("outstanding %d, want 1 (the servable request)", inst.Outstanding())
	}
}

// TestDeadlineShedsQueued pins deadline enforcement at batch-forming
// time: expired queued work sheds instead of launching.
func TestDeadlineShedsQueued(t *testing.T) {
	inst := newTestInstance(t, nil)
	shed := 0
	inst.OnShed = func(r *Request, now float64, reason ShedReason) {
		if reason != ShedDeadline {
			t.Errorf("shed reason %d, want ShedDeadline", reason)
		}
		shed++
	}
	r := testRequest(0, 16)
	r.Deadline = 1
	inst.Admit(r)
	if _, err := inst.Dispatch(2); err != nil { // past the deadline
		t.Fatal(err)
	}
	if shed != 1 {
		t.Fatalf("expired request shed %d times, want 1", shed)
	}
	if inst.Outstanding() != 0 {
		t.Errorf("outstanding %d after shed, want 0", inst.Outstanding())
	}
}

// TestAbortPassRefund pins the crash cost refund: a pass aborted halfway
// keeps only its elapsed share of busy time and energy.
func TestAbortPassRefund(t *testing.T) {
	inst := newTestInstance(t, func(c *Config) { c.Replicas = 1 })
	inst.Admit(testRequest(0, 64))
	comps, err := inst.Dispatch(0)
	if err != nil {
		t.Fatal(err)
	}
	full := inst.Stats()
	dur := comps[0].At
	half := dur / 2
	inst.Crash(half)
	st := inst.Stats()
	if st.BusySeconds[0] >= full.BusySeconds[0] {
		t.Errorf("abort refunded nothing: busy %g before, %g after", full.BusySeconds[0], st.BusySeconds[0])
	}
	wantBusy := half
	if diff := st.BusySeconds[0] - wantBusy; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("busy after mid-pass abort %g, want elapsed %g", st.BusySeconds[0], wantBusy)
	}
	if st.EnergyJ >= full.EnergyJ || st.EnergyJ <= 0 {
		t.Errorf("energy after abort %g, full pass %g", st.EnergyJ, full.EnergyJ)
	}
}

// TestServeReliabilityValidation covers the new config error paths.
func TestServeReliabilityValidation(t *testing.T) {
	cases := map[string]func(*Config){
		"negative queue": func(c *Config) { c.MaxQueue = -1 },
		"bad kv policy":  func(c *Config) { c.KVPolicy = KVPolicy(5) },
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := testConfig()
			mutate(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Errorf("%s: no error", name)
			}
		})
	}
}

// TestParseKVPolicy covers the name round-trip.
func TestParseKVPolicy(t *testing.T) {
	for i, name := range kvPolicyNames {
		p, err := ParseKVPolicy(name)
		if err != nil || p != KVPolicy(i) {
			t.Errorf("ParseKVPolicy(%q) = %v, %v", name, p, err)
		}
	}
	if _, err := ParseKVPolicy("nope"); err == nil {
		t.Error("unknown policy name accepted")
	}
}
