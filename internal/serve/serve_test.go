package serve

import (
	"reflect"
	"testing"

	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
)

// testConfig is a small, fast serving run.
func testConfig() Config {
	return Config{
		Model:           dnn.BERTBase(),
		Fmt:             quant.W1A3,
		Variant:         kernels.LoCaLUT,
		RatePerSec:      50,
		DurationSeconds: 5,
		Seed:            1,
	}
}

func TestServeBasics(t *testing.T) {
	rep, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests arrived")
	}
	if rep.Completed != rep.Requests {
		t.Errorf("completed %d of %d requests (the queue must drain)", rep.Completed, rep.Requests)
	}
	if rep.Batches == 0 || rep.MeanBatchSize < 1 {
		t.Errorf("batches=%d meanBatch=%g", rep.Batches, rep.MeanBatchSize)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Errorf("suspicious latency stats %+v", rep.Latency)
	}
	if rep.Latency.Max < rep.Latency.P99 {
		t.Errorf("max %g < p99 %g", rep.Latency.Max, rep.Latency.P99)
	}
	if rep.EnergyJ <= 0 || rep.EnergyPerRequestJ <= 0 {
		t.Errorf("energy not priced: %g total, %g per request", rep.EnergyJ, rep.EnergyPerRequestJ)
	}
	if rep.RankUtilization <= 0 || rep.RankUtilization > 1 {
		t.Errorf("rank utilization %g outside (0, 1]", rep.RankUtilization)
	}
	if rep.TokensPadded < rep.TokensIn {
		t.Errorf("padded tokens %d < input tokens %d", rep.TokensPadded, rep.TokensIn)
	}
	if rep.DistinctForwardSims == 0 || rep.DistinctForwardSims > rep.Batches {
		t.Errorf("distinct sims %d vs %d batches", rep.DistinctForwardSims, rep.Batches)
	}
	if rep.MakespanSeconds < rep.DurationSeconds*0.1 {
		t.Errorf("makespan %g implausibly short", rep.MakespanSeconds)
	}
}

// TestServeDeterministic pins the tentpole invariant: same seed + config
// => bit-identical report, run to run and at every parallelism level.
func TestServeDeterministic(t *testing.T) {
	base, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, again) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", base, again)
	}
	for _, par := range []int{1, 2, 8} {
		cfg := testConfig()
		cfg.Engine = gemm.NewEngine()
		cfg.Engine.Exec.Parallelism = par
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("parallelism %d diverged:\n%+v\n%+v", par, base, rep)
		}
	}
}

func TestServeSeedMatters(t *testing.T) {
	a, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Seed = 2
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Error("different seeds produced identical reports")
	}
}

func TestServeSchedulers(t *testing.T) {
	for _, pol := range []Policy{FCFS, Packed} {
		cfg := testConfig()
		cfg.Scheduler = pol
		cfg.RatePerSec = 400 // oversubscribed, so batching actually packs
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Scheduler != pol.String() {
			t.Errorf("report names scheduler %q, want %q", rep.Scheduler, pol)
		}
		if rep.Completed != rep.Requests {
			t.Errorf("%v: completed %d of %d", pol, rep.Completed, rep.Requests)
		}
		if rep.MeanBatchSize < 2 {
			t.Errorf("%v: oversubscribed run batched only %g requests/batch", pol, rep.MeanBatchSize)
		}
	}
}

// TestPackedBatchesShareShape checks the packing scheduler's contract
// directly on the queue.
func TestPackedBatchesShareShape(t *testing.T) {
	q := &queue{}
	for i, pad := range []int{64, 128, 64, 192, 64, 64} {
		q.push(&request{id: i, padded: pad})
	}
	batch := packedScheduler{window: 16}.pick(q, 4)
	if len(batch) != 4 {
		t.Fatalf("picked %d requests, want 4", len(batch))
	}
	for _, r := range batch {
		if r.padded != 64 {
			t.Errorf("mixed bucket in packed batch: request %d has %d", r.id, r.padded)
		}
	}
	if q.len() != 2 {
		t.Fatalf("queue keeps %d, want 2", q.len())
	}
	if q.at(0).id != 1 || q.at(1).id != 3 {
		t.Errorf("skipped requests lost their order: %d, %d", q.at(0).id, q.at(1).id)
	}
}

func TestFCFSKeepsArrivalOrder(t *testing.T) {
	q := &queue{}
	for i := 0; i < 5; i++ {
		q.push(&request{id: i, padded: 64 * (1 + i%2)})
	}
	batch := fcfsScheduler{}.pick(q, 3)
	for i, r := range batch {
		if r.id != i {
			t.Errorf("batch[%d] = request %d", i, r.id)
		}
	}
	if q.len() != 2 || q.at(0).id != 3 {
		t.Error("queue head after FCFS pick is wrong")
	}
}

func TestServeClosedLoop(t *testing.T) {
	cfg := testConfig()
	cfg.RatePerSec = 0
	cfg.Clients = 4
	cfg.ThinkSeconds = 0.05
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("closed loop admitted no requests")
	}
	if rep.Completed != rep.Requests {
		t.Errorf("completed %d of %d", rep.Completed, rep.Requests)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Error("closed loop is not deterministic")
	}
}

func TestServeTraceReplay(t *testing.T) {
	cfg := testConfig()
	cfg.RatePerSec = 0
	cfg.ArrivalTimes = []float64{0.5, 0.1, 0.1, 2.0}
	cfg.DurationSeconds = 0 // derive from the trace
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 4 || rep.Completed != 4 {
		t.Fatalf("trace replay served %d/%d, want 4/4", rep.Completed, rep.Requests)
	}
	if rep.DurationSeconds != 2.0 {
		t.Errorf("derived duration %g, want 2", rep.DurationSeconds)
	}
}

func TestServeDecoderDecode(t *testing.T) {
	cfg := testConfig()
	cfg.Model = dnn.OPT125M()
	cfg.OutTokens = 8
	cfg.RatePerSec = 20
	cfg.DurationSeconds = 2
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.OutTokens = 0
	noDecode, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Service.Mean <= noDecode.Service.Mean {
		t.Errorf("decode added no service time: %g vs %g", rep.Service.Mean, noDecode.Service.Mean)
	}
}

// TestOracleDecodeMemoIgnoresCtx pins that decode pricing is keyed by
// batch size only: dnn.Decode derives its own context, so two batches
// differing only in ctx must share one decode simulation.
func TestOracleDecodeMemoIgnoresCtx(t *testing.T) {
	cfg := testConfig()
	cfg.Model = dnn.OPT125M()
	cfg.OutTokens = 4
	cfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	o := newOracle(&cfg)
	if _, err := o.batch(256, 64, 4); err != nil {
		t.Fatal(err)
	}
	after := o.distinctSims()
	if _, err := o.batch(256, 128, 4); err != nil {
		t.Fatal(err)
	}
	// The second call reuses the decode record (same batch size) and only
	// adds one prefill shape for the new ctx.
	if got := o.distinctSims(); got != after+1 {
		t.Errorf("distinct sims went %d -> %d; decode memo must not key on ctx", after, got)
	}
}

func TestServeMemoizationBoundsSims(t *testing.T) {
	cfg := testConfig()
	cfg.RatePerSec = 1000
	cfg.DurationSeconds = 10
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 5000 {
		t.Fatalf("expected thousands of requests, got %d", rep.Requests)
	}
	// MaxBatch*MaxTokens/quantum = 8*256/64 = 32 token buckets, 4 ctx
	// buckets: far fewer distinct sims than batches.
	if rep.DistinctForwardSims > 128 {
		t.Errorf("%d distinct sims for %d batches — memoization is not collapsing shapes",
			rep.DistinctForwardSims, rep.Batches)
	}
}

func TestServeConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := testConfig()
	cfg.RatePerSec = 0
	if _, err := Run(cfg); err == nil {
		t.Error("config without an arrival source accepted")
	}
	cfg = testConfig()
	cfg.OutTokens = 4 // BERT is not a decoder
	if _, err := Run(cfg); err == nil {
		t.Error("decode on an encoder model accepted")
	}
	cfg = testConfig()
	cfg.Scheduler = Packed
	cfg.PackWindow = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative pack window accepted")
	}
	cfg = testConfig()
	cfg.Replicas = 1000 // testbed has 32 ranks
	if _, err := Run(cfg); err == nil {
		t.Error("more replicas than ranks accepted")
	}
}

// TestServeTraceHonorsDuration pins the arrival-window contract on trace
// replay: timestamps past an explicit cutoff are not admitted.
func TestServeTraceHonorsDuration(t *testing.T) {
	cfg := testConfig()
	cfg.RatePerSec = 0
	cfg.ArrivalTimes = []float64{0.5, 1.0, 100.0}
	cfg.DurationSeconds = 10
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 2 {
		t.Errorf("admitted %d requests, want 2 (t=100 is past the 10s window)", rep.Requests)
	}
}

func TestRoundUp(t *testing.T) {
	cases := [][3]int{{1, 64, 64}, {64, 64, 64}, {65, 64, 128}, {128, 64, 128}}
	for _, c := range cases {
		if got := roundUp(c[0], c[1]); got != c[2] {
			t.Errorf("roundUp(%d, %d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, pol := range []Policy{FCFS, Packed} {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("ParsePolicy(%q) = %v, %v", pol.String(), got, err)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Error("unknown policy accepted")
	}
}
