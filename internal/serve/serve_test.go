package serve

import (
	"reflect"
	"testing"

	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
)

// testConfig is a small, fast serving run.
func testConfig() Config {
	return Config{
		Model:           dnn.BERTBase(),
		Fmt:             quant.W1A3,
		Variant:         kernels.LoCaLUT,
		RatePerSec:      50,
		DurationSeconds: 5,
		Seed:            1,
	}
}

func TestServeBasics(t *testing.T) {
	rep, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("no requests arrived")
	}
	if rep.Completed != rep.Requests {
		t.Errorf("completed %d of %d requests (the queue must drain)", rep.Completed, rep.Requests)
	}
	if rep.Batches == 0 || rep.MeanBatchSize < 1 {
		t.Errorf("batches=%d meanBatch=%g", rep.Batches, rep.MeanBatchSize)
	}
	if rep.Latency.P50 <= 0 || rep.Latency.P99 < rep.Latency.P50 {
		t.Errorf("suspicious latency stats %+v", rep.Latency)
	}
	if rep.Latency.Max < rep.Latency.P99 {
		t.Errorf("max %g < p99 %g", rep.Latency.Max, rep.Latency.P99)
	}
	if rep.EnergyJ <= 0 || rep.EnergyPerRequestJ <= 0 {
		t.Errorf("energy not priced: %g total, %g per request", rep.EnergyJ, rep.EnergyPerRequestJ)
	}
	if rep.RankUtilization <= 0 || rep.RankUtilization > 1 {
		t.Errorf("rank utilization %g outside (0, 1]", rep.RankUtilization)
	}
	if rep.TokensPadded < rep.TokensIn {
		t.Errorf("padded tokens %d < input tokens %d", rep.TokensPadded, rep.TokensIn)
	}
	if rep.DistinctForwardSims == 0 || rep.DistinctForwardSims > rep.Batches {
		t.Errorf("distinct sims %d vs %d batches", rep.DistinctForwardSims, rep.Batches)
	}
	if rep.MakespanSeconds < rep.DurationSeconds*0.1 {
		t.Errorf("makespan %g implausibly short", rep.MakespanSeconds)
	}
}

// TestServeDeterministic pins the tentpole invariant: same seed + config
// => bit-identical report, run to run and at every parallelism level.
func TestServeDeterministic(t *testing.T) {
	base, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, again) {
		t.Fatalf("same seed diverged:\n%+v\n%+v", base, again)
	}
	for _, par := range []int{1, 2, 8} {
		cfg := testConfig()
		cfg.Engine = gemm.NewEngine()
		cfg.Engine.Exec.Parallelism = par
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("parallelism %d diverged:\n%+v\n%+v", par, base, rep)
		}
	}
}

func TestServeSeedMatters(t *testing.T) {
	a, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Seed = 2
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Error("different seeds produced identical reports")
	}
}

func TestServeSchedulers(t *testing.T) {
	for _, pol := range []Policy{FCFS, Packed} {
		cfg := testConfig()
		cfg.Scheduler = pol
		cfg.RatePerSec = 400 // oversubscribed, so batching actually packs
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Scheduler != pol.String() {
			t.Errorf("report names scheduler %q, want %q", rep.Scheduler, pol)
		}
		if rep.Completed != rep.Requests {
			t.Errorf("%v: completed %d of %d", pol, rep.Completed, rep.Requests)
		}
		if rep.MeanBatchSize < 2 {
			t.Errorf("%v: oversubscribed run batched only %g requests/batch", pol, rep.MeanBatchSize)
		}
	}
}

// TestPackedBatchesShareShape checks the packing scheduler's contract
// directly on the queue.
func TestPackedBatchesShareShape(t *testing.T) {
	q := &queue{}
	for i, pad := range []int{64, 128, 64, 192, 64, 64} {
		q.push(&Request{ID: i, Padded: pad})
	}
	batch := packedScheduler{window: 16}.pick(q, 4)
	if len(batch) != 4 {
		t.Fatalf("picked %d requests, want 4", len(batch))
	}
	for _, r := range batch {
		if r.Padded != 64 {
			t.Errorf("mixed bucket in packed batch: request %d has %d", r.ID, r.Padded)
		}
	}
	if q.len() != 2 {
		t.Fatalf("queue keeps %d, want 2", q.len())
	}
	if q.at(0).ID != 1 || q.at(1).ID != 3 {
		t.Errorf("skipped requests lost their order: %d, %d", q.at(0).ID, q.at(1).ID)
	}
}

func TestFCFSKeepsArrivalOrder(t *testing.T) {
	q := &queue{}
	for i := 0; i < 5; i++ {
		q.push(&Request{ID: i, Padded: 64 * (1 + i%2)})
	}
	batch := fcfsScheduler{}.pick(q, 3)
	for i, r := range batch {
		if r.ID != i {
			t.Errorf("batch[%d] = request %d", i, r.ID)
		}
	}
	if q.len() != 2 || q.at(0).ID != 3 {
		t.Error("queue head after FCFS pick is wrong")
	}
}

func TestServeClosedLoop(t *testing.T) {
	cfg := testConfig()
	cfg.RatePerSec = 0
	cfg.Clients = 4
	cfg.ThinkSeconds = 0.05
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 {
		t.Fatal("closed loop admitted no requests")
	}
	if rep.Completed != rep.Requests {
		t.Errorf("completed %d of %d", rep.Completed, rep.Requests)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Error("closed loop is not deterministic")
	}
}

func TestServeTraceReplay(t *testing.T) {
	cfg := testConfig()
	cfg.RatePerSec = 0
	cfg.ArrivalTimes = []float64{0.5, 0.1, 0.1, 2.0}
	cfg.DurationSeconds = 0 // derive from the trace
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 4 || rep.Completed != 4 {
		t.Fatalf("trace replay served %d/%d, want 4/4", rep.Completed, rep.Requests)
	}
	if rep.DurationSeconds != 2.0 {
		t.Errorf("derived duration %g, want 2", rep.DurationSeconds)
	}
}

func TestServeDecoderDecode(t *testing.T) {
	cfg := testConfig()
	cfg.Model = dnn.OPT125M()
	cfg.OutTokens = 8
	cfg.RatePerSec = 20
	cfg.DurationSeconds = 2
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.OutTokens = 0
	noDecode, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Service.Mean <= noDecode.Service.Mean {
		t.Errorf("decode added no service time: %g vs %g", rep.Service.Mean, noDecode.Service.Mean)
	}
}

// TestOracleStepMemoKeysOnCtxBucket pins the context-aware decode memo:
// two steps in the same (batch, ctx-bucket) cell share one simulation,
// while a new bucket prices a new one.
func TestOracleStepMemoKeysOnCtxBucket(t *testing.T) {
	cfg := testConfig()
	cfg.Model = dnn.OPT125M()
	cfg.OutTokens = 4
	cfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(&cfg)
	a, err := o.decodeStep(4, 128)
	if err != nil {
		t.Fatal(err)
	}
	after := o.DistinctSims()
	b, err := o.decodeStep(4, 128)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.DistinctSims(); got != after || a != b {
		t.Errorf("same (n, ctx) cell re-simulated: sims %d -> %d", after, got)
	}
	c, err := o.decodeStep(4, 192)
	if err != nil {
		t.Fatal(err)
	}
	if got := o.DistinctSims(); got != after+1 {
		t.Errorf("new ctx bucket did not price a new sim: %d -> %d", after, got)
	}
	if c.seconds <= a.seconds {
		t.Errorf("longer context did not cost more: %g <= %g", c.seconds, a.seconds)
	}
}

// TestStepBucketingPriceBound pins the cost of context bucketing: rounding
// the mean context up to the token quantum may only overprice a step, and
// by no more than the attention cost of quantum-1 extra keys — within 25%
// for the serving configuration's defaults.
func TestStepBucketingPriceBound(t *testing.T) {
	cfg := testConfig()
	cfg.Model = dnn.OPT125M()
	cfg.OutTokens = 4
	cfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	o := NewOracle(&cfg)
	for _, exact := range []int{65, 130, 200, 255} {
		bucketed := roundUp(exact, cfg.TokenQuantum)
		e, err := o.decodeStep(4, exact)
		if err != nil {
			t.Fatal(err)
		}
		b, err := o.decodeStep(4, bucketed)
		if err != nil {
			t.Fatal(err)
		}
		if b.seconds < e.seconds {
			t.Errorf("ctx %d: bucketing underpriced the step: %g < %g", exact, b.seconds, e.seconds)
		}
		if b.seconds > e.seconds*1.25 {
			t.Errorf("ctx %d: bucketed price %g exceeds exact %g by more than 25%%", exact, b.seconds, e.seconds)
		}
	}
}

// decodeConfig is a small decode-heavy run with sampled output lengths.
func decodeConfig() Config {
	cfg := testConfig()
	cfg.Model = dnn.OPT125M()
	cfg.RatePerSec = 20
	cfg.DurationSeconds = 3
	cfg.OutTokensMean = 16
	cfg.OutTokensMax = 64
	return cfg
}

// TestServeDecodeTokenLevel pins the tentpole surface: a decode-enabled
// run reports TTFT, TPOT, generated-token throughput, step counts and the
// KV-footprint gauge.
func TestServeDecodeTokenLevel(t *testing.T) {
	rep, err := Run(decodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed != rep.Requests || rep.Requests == 0 {
		t.Fatalf("served %d of %d", rep.Completed, rep.Requests)
	}
	if rep.TTFT.Mean <= 0 || rep.TTFT.P99 < rep.TTFT.P50 {
		t.Errorf("TTFT not measured: %+v", rep.TTFT)
	}
	if rep.TPOT.Mean <= 0 || rep.TPOT.P99 < rep.TPOT.P50 {
		t.Errorf("TPOT not measured: %+v", rep.TPOT)
	}
	if rep.TTFT.Mean >= rep.Latency.Mean {
		t.Errorf("TTFT mean %g not below total latency mean %g", rep.TTFT.Mean, rep.Latency.Mean)
	}
	if rep.TokensOut == 0 {
		t.Error("no generated tokens counted")
	}
	if rep.DecodeSteps == 0 {
		t.Error("no decode steps ran")
	}
	if want := float64(rep.TokensIn+rep.TokensOut) / rep.MakespanSeconds; rep.TokensPerSec != want {
		t.Errorf("TokensPerSec %g != (in+out)/makespan %g", rep.TokensPerSec, want)
	}
	if rep.KVPeakBytes <= 0 || rep.KVCapacityBytes <= 0 {
		t.Errorf("KV gauge empty: peak %d capacity %d", rep.KVPeakBytes, rep.KVCapacityBytes)
	}
	if got := float64(rep.KVPeakBytes) / float64(rep.KVCapacityBytes); rep.KVPeakUtilization != got {
		t.Errorf("KV utilization %g != peak/capacity %g", rep.KVPeakUtilization, got)
	}
}

// TestServePrefillOnlyHasNoDecodeMetrics pins that encoder-style serving
// leaves the decode metrics empty.
func TestServePrefillOnlyHasNoDecodeMetrics(t *testing.T) {
	rep, err := Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.TTFT != (Stats{}) || rep.TPOT != (Stats{}) {
		t.Errorf("prefill-only run has decode latency stats: %+v %+v", rep.TTFT, rep.TPOT)
	}
	if rep.TokensOut != 0 || rep.DecodeSteps != 0 {
		t.Errorf("prefill-only run generated tokens: out=%d steps=%d", rep.TokensOut, rep.DecodeSteps)
	}
}

// TestDecodePricesRealPromptContext is the acceptance demonstration that
// per-step pricing differs measurably from the old lump model: the lump
// priced decode at a context derived only from the model's SeqLen, so
// per-output-token time was independent of the actual prompt lengths.
// With token-level decode, long-prompt requests must decode measurably
// slower than short-prompt ones.
func TestDecodePricesRealPromptContext(t *testing.T) {
	run := func(promptLen int) *Report {
		cfg := testConfig()
		cfg.Model = dnn.OPT125M()
		cfg.RatePerSec = 0
		cfg.ArrivalTimes = []float64{0, 0, 0, 0}
		cfg.DurationSeconds = 1
		cfg.MinTokens, cfg.MaxTokens = promptLen, promptLen
		cfg.MeanTokens = float64(promptLen)
		cfg.OutTokens = 16
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	short, long := run(32), run(2048)
	if long.TPOT.Mean <= short.TPOT.Mean*1.05 {
		t.Errorf("64x longer prompts did not slow decode by even 5%%: TPOT %g vs %g — "+
			"pricing is ignoring the real per-step context", long.TPOT.Mean, short.TPOT.Mean)
	}
}

// TestServeClosedLoopDecodeRearrival pins closed-loop client re-arrival
// after completion with token-level decode: completions now happen at
// step boundaries, and each must re-arm its client's think timer.
func TestServeClosedLoopDecodeRearrival(t *testing.T) {
	cfg := decodeConfig()
	cfg.RatePerSec = 0
	cfg.Clients = 3
	cfg.ThinkSeconds = 0.02
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests <= cfg.Clients {
		t.Fatalf("clients never re-arrived after completion: %d requests from %d clients",
			rep.Requests, cfg.Clients)
	}
	if rep.Completed != rep.Requests {
		t.Errorf("completed %d of %d", rep.Completed, rep.Requests)
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rep, again) {
		t.Error("closed-loop decode run is not deterministic")
	}
}

// TestServeDecodeDeterministic extends the determinism invariant to the
// token-level decode engine: bit-identical reports across runs and every
// engine parallelism level.
func TestServeDecodeDeterministic(t *testing.T) {
	base, err := Run(decodeConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 8} {
		cfg := decodeConfig()
		cfg.Engine = gemm.NewEngine()
		cfg.Engine.Exec.Parallelism = par
		rep, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("parallelism %d diverged:\n%+v\n%+v", par, base, rep)
		}
	}
}

// TestServeDecodeMemoBounded pins that context bucketing keeps the
// planner-sim count bounded while thousands of decode steps run.
func TestServeDecodeMemoBounded(t *testing.T) {
	cfg := decodeConfig()
	cfg.RatePerSec = 200
	cfg.DurationSeconds = 5
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.DecodeSteps < 1000 {
		t.Fatalf("expected thousands of decode steps, got %d", rep.DecodeSteps)
	}
	// Step shapes: batch size in [1, MaxBatch], ctx bucketed to the token
	// quantum and bounded by maxPrompt + maxOut + quantum. Prefill shapes
	// are bounded as before; the sum must stay far below the step count.
	if rep.DistinctForwardSims > 256 {
		t.Errorf("%d distinct sims for %d decode steps — context bucketing is not bounding the memo",
			rep.DistinctForwardSims, rep.DecodeSteps)
	}
}

func TestServeMemoizationBoundsSims(t *testing.T) {
	cfg := testConfig()
	cfg.RatePerSec = 1000
	cfg.DurationSeconds = 10
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests < 5000 {
		t.Fatalf("expected thousands of requests, got %d", rep.Requests)
	}
	// MaxBatch*MaxTokens/quantum = 8*256/64 = 32 token buckets, 4 ctx
	// buckets: far fewer distinct sims than batches.
	if rep.DistinctForwardSims > 128 {
		t.Errorf("%d distinct sims for %d batches — memoization is not collapsing shapes",
			rep.DistinctForwardSims, rep.Batches)
	}
}

func TestServeConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	cfg := testConfig()
	cfg.RatePerSec = 0
	if _, err := Run(cfg); err == nil {
		t.Error("config without an arrival source accepted")
	}
	cfg = testConfig()
	cfg.OutTokens = 4 // BERT is not a decoder
	if _, err := Run(cfg); err == nil {
		t.Error("decode on an encoder model accepted")
	}
	cfg = testConfig()
	cfg.OutTokensMean = 8 // sampled decode lengths need a decoder too
	if _, err := Run(cfg); err == nil {
		t.Error("sampled decode lengths on an encoder model accepted")
	}
	cfg = testConfig()
	cfg.Model = dnn.OPT125M()
	cfg.OutTokensMean = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative output-length mean accepted")
	}
	cfg = testConfig()
	cfg.Model = dnn.OPT125M()
	cfg.OutTokensMean = 0.2 // would clamp to a zero max and silently disable decode
	if _, err := Run(cfg); err == nil {
		t.Error("sub-token output-length mean accepted")
	}
	cfg = testConfig()
	cfg.Scheduler = Packed
	cfg.PackWindow = -1
	if _, err := Run(cfg); err == nil {
		t.Error("negative pack window accepted")
	}
	cfg = testConfig()
	cfg.Replicas = 1000 // testbed has 32 ranks
	if _, err := Run(cfg); err == nil {
		t.Error("more replicas than ranks accepted")
	}
}

// TestServeTraceHonorsDuration pins the arrival-window contract on trace
// replay: timestamps past an explicit cutoff are not admitted.
func TestServeTraceHonorsDuration(t *testing.T) {
	cfg := testConfig()
	cfg.RatePerSec = 0
	cfg.ArrivalTimes = []float64{0.5, 1.0, 100.0}
	cfg.DurationSeconds = 10
	rep, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests != 2 {
		t.Errorf("admitted %d requests, want 2 (t=100 is past the 10s window)", rep.Requests)
	}
}

func TestRoundUp(t *testing.T) {
	cases := [][3]int{{1, 64, 64}, {64, 64, 64}, {65, 64, 128}, {128, 64, 128}}
	for _, c := range cases {
		if got := roundUp(c[0], c[1]); got != c[2] {
			t.Errorf("roundUp(%d, %d) = %d, want %d", c[0], c[1], got, c[2])
		}
	}
}

func TestParsePolicy(t *testing.T) {
	for _, pol := range []Policy{FCFS, Packed} {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("ParsePolicy(%q) = %v, %v", pol.String(), got, err)
		}
	}
	if _, err := ParsePolicy("lifo"); err == nil {
		t.Error("unknown policy accepted")
	}
}
