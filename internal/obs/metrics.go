package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
)

// Metrics samples a set of gauges/counters on a fixed simulated-time
// interval. The event loop calls Advance(now) before applying each event;
// any interval boundary b < now is emitted using the current state, which
// is exactly the simulator's state at time b because no event fired in
// between. Rows therefore depend only on the event sequence, never on
// wall-clock or worker parallelism, and the exported CSV/JSON is
// byte-reproducible. All methods are nil-safe no-ops.
//
//determlint:nilsafe every exported method must no-op on a nil receiver
type Metrics struct {
	Interval float64 // sampling period in simulated seconds

	cols    []string
	sample  func(now float64) []float64
	times   []float64
	rows    [][]float64
	next    float64
	started bool
}

// NewMetrics builds a sampler with the given period (values <= 0 become 1).
func NewMetrics(intervalSeconds float64) *Metrics {
	if intervalSeconds <= 0 {
		intervalSeconds = 1
	}
	return &Metrics{Interval: intervalSeconds}
}

// Bind installs the column names and the sampling closure. The closure
// must read only deterministic simulator state and return one value per
// column.
func (m *Metrics) Bind(cols []string, sample func(now float64) []float64) {
	if m == nil {
		return
	}
	m.cols = cols
	m.sample = sample
}

func (m *Metrics) emit(t float64) {
	m.times = append(m.times, t)
	m.rows = append(m.rows, m.sample(t))
}

// start emits the t=0 row on the first call.
func (m *Metrics) start() {
	if m.started {
		return
	}
	m.started = true
	m.next = m.Interval
	m.emit(0)
}

// Advance emits a row for every interval boundary strictly before now.
// Call it at the top of each event-loop iteration, before mutating state.
func (m *Metrics) Advance(now float64) {
	if m == nil || m.sample == nil {
		return
	}
	m.start()
	for m.next < now {
		m.emit(m.next)
		m.next += m.Interval
	}
}

// Finish flushes boundaries up to end and appends a final row at end, so
// every run — including ones shorter than one interval — closes with the
// end-of-run state.
func (m *Metrics) Finish(end float64) {
	if m == nil || m.sample == nil {
		return
	}
	m.start()
	for m.next <= end {
		m.emit(m.next)
		m.next += m.Interval
	}
	if m.times[len(m.times)-1] < end {
		m.emit(end)
	}
}

// Rows returns the number of emitted rows.
func (m *Metrics) Rows() int {
	if m == nil {
		return 0
	}
	return len(m.rows)
}

func formatMetric(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WriteCSV writes "t_s,<col>,..." followed by one row per sample.
func (m *Metrics) WriteCSV(w io.Writer) error {
	if m == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("t_s")
	for _, c := range m.cols {
		bw.WriteByte(',')
		bw.WriteString(c)
	}
	bw.WriteByte('\n')
	for i, t := range m.times {
		bw.WriteString(formatMetric(t))
		for _, v := range m.rows[i] {
			bw.WriteByte(',')
			bw.WriteString(formatMetric(v))
		}
		bw.WriteByte('\n')
	}
	return bw.Flush()
}

// metricsJSON is the JSON export schema; rows carry the timestamp as
// their first element, matching the CSV layout.
type metricsJSON struct {
	IntervalSeconds float64     `json:"interval_s"`
	Columns         []string    `json:"columns"`
	Rows            [][]float64 `json:"rows"`
}

// WriteJSON writes the same table as indented JSON.
func (m *Metrics) WriteJSON(w io.Writer) error {
	if m == nil {
		return nil
	}
	out := metricsJSON{IntervalSeconds: m.Interval, Columns: append([]string{"t_s"}, m.cols...)}
	out.Rows = make([][]float64, len(m.rows))
	for i, r := range m.rows {
		out.Rows[i] = append([]float64{m.times[i]}, r...)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
