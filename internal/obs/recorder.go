// Package obs is the deterministic observability layer for the serving
// simulators: request/pass spans exported as Chrome trace-event JSON
// (loadable in Perfetto or chrome://tracing) and interval-sampled
// time-series metrics. Everything is driven off simulated time and
// event-order state, so exported files are byte-identical across runs and
// worker parallelism levels. All Recorder and Metrics methods are nil-safe
// no-ops, so instrumentation hooks cost one nil check when observability
// is off.
package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
)

// Arg is one key/value annotation on a trace event. Args are an ordered
// slice rather than a map so the exported JSON never depends on Go's map
// iteration order.
type Arg struct {
	Key   string
	Str   string
	Val   float64
	IsNum bool
}

// Num builds a numeric annotation.
func Num(key string, v float64) Arg { return Arg{Key: key, Val: v, IsNum: true} }

// Str builds a string annotation.
func Str(key, v string) Arg { return Arg{Key: key, Str: v} }

// event is one Chrome trace event. Timestamps and durations are kept in
// simulated seconds and converted to microseconds at write time.
type event struct {
	name string
	ph   byte // X=span, i=instant, b/e=async begin/end, M=metadata
	ts   float64
	dur  float64
	pid  int
	tid  int
	id   int    // async span id (ph b/e)
	cat  string // async category (ph b/e)
	args []Arg
}

// Recorder accumulates trace events in emission order. The simulators emit
// strictly in event-loop order, which is deterministic, so the recorded
// stream — and the exported JSON — is too. Track layout: pid 0 is the
// traffic/fleet track (request lifecycle spans, scale and admission
// events); pid i+1 is instance i, with tid 0 for instance-level events and
// tid r+1 for replica r's batch spans.
//
//determlint:nilsafe every exported method must no-op on a nil receiver
type Recorder struct {
	// SampleN records every Nth request lifecycle (1 = all). Pass and
	// fleet events are always recorded; only per-request spans sample.
	SampleN int

	events  []event
	procs   map[int]bool
	threads map[[2]int]bool
}

// NewRecorder builds a recorder sampling every sampleN-th request
// lifecycle (values < 1 record everything).
func NewRecorder(sampleN int) *Recorder {
	if sampleN < 1 {
		sampleN = 1
	}
	return &Recorder{SampleN: sampleN, procs: map[int]bool{}, threads: map[[2]int]bool{}}
}

// Sampled reports whether request id's lifecycle should be recorded.
// Request IDs are assigned in arrival order, so id%SampleN picks the same
// deterministic subset on every run and -j level.
func (r *Recorder) Sampled(id int) bool {
	if r == nil {
		return false
	}
	return id%r.SampleN == 0
}

// Process names a track group (one per appliance instance, plus pid 0 for
// fleet-level traffic). Repeated registrations are dropped so lifecycle
// churn (crash/repair, scale up) can re-register freely.
func (r *Recorder) Process(pid int, name string) {
	if r == nil || r.procs[pid] {
		return
	}
	r.procs[pid] = true
	r.events = append(r.events, event{name: "process_name", ph: 'M', pid: pid, args: []Arg{Str("name", name)}})
}

// Thread names one track within a process (one per replica).
func (r *Recorder) Thread(pid, tid int, name string) {
	if r == nil || r.threads[[2]int{pid, tid}] {
		return
	}
	r.threads[[2]int{pid, tid}] = true
	r.events = append(r.events, event{name: "thread_name", ph: 'M', pid: pid, tid: tid, args: []Arg{Str("name", name)}})
}

// Span records a complete span (ph "X") of dur seconds starting at ts.
func (r *Recorder) Span(pid, tid int, name string, ts, dur float64, args ...Arg) {
	if r == nil {
		return
	}
	r.events = append(r.events, event{name: name, ph: 'X', ts: ts, dur: dur, pid: pid, tid: tid, args: args})
}

// Instant records a point event (ph "i").
func (r *Recorder) Instant(pid, tid int, name string, ts float64, args ...Arg) {
	if r == nil {
		return
	}
	r.events = append(r.events, event{name: name, ph: 'i', ts: ts, pid: pid, tid: tid, args: args})
}

// BeginAsync opens an async span (ph "b") keyed by (cat, id); EndAsync
// closes it. Request lifecycles use async spans because a request's
// begin and end interleave arbitrarily with other requests on the same
// track.
func (r *Recorder) BeginAsync(pid int, cat string, id int, name string, ts float64, args ...Arg) {
	if r == nil {
		return
	}
	r.events = append(r.events, event{name: name, ph: 'b', ts: ts, pid: pid, id: id, cat: cat, args: args})
}

// EndAsync closes the async span opened by BeginAsync with the same
// (cat, id).
func (r *Recorder) EndAsync(pid int, cat string, id int, name string, ts float64, args ...Arg) {
	if r == nil {
		return
	}
	r.events = append(r.events, event{name: name, ph: 'e', ts: ts, pid: pid, id: id, cat: cat, args: args})
}

// Len returns the number of recorded events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	return len(r.events)
}

// secondsToMicros renders a simulated-seconds timestamp as a microsecond
// string with fixed nanosecond precision — fixed format, so the bytes are
// reproducible and trace viewers parse them as plain decimals.
func secondsToMicros(s float64) string {
	return strconv.FormatFloat(s*1e6, 'f', 3, 64)
}

// writeString JSON-escapes s deterministically.
func writeString(w *bufio.Writer, s string) {
	b, _ := json.Marshal(s)
	w.Write(b)
}

func writeArgs(w *bufio.Writer, args []Arg) {
	w.WriteString(`,"args":{`)
	for i, a := range args {
		if i > 0 {
			w.WriteByte(',')
		}
		writeString(w, a.Key)
		w.WriteByte(':')
		if a.IsNum {
			w.WriteString(strconv.FormatFloat(a.Val, 'g', -1, 64))
		} else {
			writeString(w, a.Str)
		}
	}
	w.WriteByte('}')
}

// WriteJSON writes the trace in Chrome trace-event JSON object form
// ({"traceEvents": [...]}) with a fixed field order per event, one event
// per line. The output depends only on the recorded event sequence.
func (r *Recorder) WriteJSON(w io.Writer) error {
	if r == nil {
		return nil
	}
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n")
	for i := range r.events {
		e := &r.events[i]
		if i > 0 {
			bw.WriteString(",\n")
		}
		bw.WriteString(`{"name":`)
		writeString(bw, e.name)
		bw.WriteString(`,"ph":"`)
		bw.WriteByte(e.ph)
		bw.WriteByte('"')
		switch e.ph {
		case 'M':
			bw.WriteString(`,"pid":` + strconv.Itoa(e.pid) + `,"tid":` + strconv.Itoa(e.tid))
		case 'X':
			bw.WriteString(`,"ts":` + secondsToMicros(e.ts) + `,"dur":` + secondsToMicros(e.dur) +
				`,"pid":` + strconv.Itoa(e.pid) + `,"tid":` + strconv.Itoa(e.tid))
		case 'i':
			bw.WriteString(`,"s":"t","ts":` + secondsToMicros(e.ts) +
				`,"pid":` + strconv.Itoa(e.pid) + `,"tid":` + strconv.Itoa(e.tid))
		case 'b', 'e':
			bw.WriteString(`,"cat":`)
			writeString(bw, e.cat)
			bw.WriteString(`,"id":` + strconv.Itoa(e.id) + `,"ts":` + secondsToMicros(e.ts) +
				`,"pid":` + strconv.Itoa(e.pid) + `,"tid":0`)
		}
		if len(e.args) > 0 || e.ph == 'b' {
			writeArgs(bw, e.args)
		}
		bw.WriteByte('}')
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
