package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestNilRecorderSafe pins the zero-cost-when-off contract: every hook on
// a nil recorder and nil metrics sampler must be a safe no-op.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	r.Process(1, "x")
	r.Thread(1, 1, "x")
	r.Span(1, 1, "prefill", 0, 1, Num("reqs", 3))
	r.Instant(1, 1, "crash", 2)
	r.BeginAsync(0, "req", 1, "request", 0)
	r.EndAsync(0, "req", 1, "request", 1)
	if r.Sampled(0) {
		t.Error("nil recorder claims to sample")
	}
	if r.Len() != 0 {
		t.Error("nil recorder has events")
	}
	var m *Metrics
	m.Bind([]string{"x"}, nil)
	m.Advance(1)
	m.Finish(2)
	if m.Rows() != 0 {
		t.Error("nil metrics has rows")
	}
}

// TestRecorderSampling checks the deterministic 1-in-N request filter.
func TestRecorderSampling(t *testing.T) {
	r := NewRecorder(3)
	got := []bool{r.Sampled(0), r.Sampled(1), r.Sampled(2), r.Sampled(3)}
	want := []bool{true, false, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Sampled(%d) = %v, want %v", i, got[i], want[i])
		}
	}
	if !NewRecorder(0).Sampled(17) {
		t.Error("sampleN<1 must record everything")
	}
}

// TestRecorderJSON validates the export: parseable JSON, traceEvents
// array, fixed field order, and metadata/span/instant/async forms.
func TestRecorderJSON(t *testing.T) {
	r := NewRecorder(1)
	r.Process(0, "traffic")
	r.Process(1, "instance 0")
	r.Process(1, "dup ignored")
	r.Thread(1, 1, "replica 0")
	r.BeginAsync(0, "req", 7, "request", 0.5, Num("tokens", 128), Str("class", "hot"))
	r.Span(1, 1, "prefill", 0.5, 0.25, Num("reqs", 2))
	r.Instant(1, 0, "crash", 1)
	r.EndAsync(0, "req", 7, "request", 1.5)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var top struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &top); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(top.TraceEvents) != 7 { // dup process registration dropped
		t.Fatalf("got %d events, want 7:\n%s", len(top.TraceEvents), buf.String())
	}
	span := top.TraceEvents[4]
	if span["ph"] != "X" || span["ts"] != 500000.0 || span["dur"] != 250000.0 {
		t.Errorf("span event mangled: %v", span)
	}
	if !strings.Contains(buf.String(), `"args":{"tokens":128,"class":"hot"}`) {
		t.Errorf("args lost order or content:\n%s", buf.String())
	}
	// Byte-reproducibility of the writer itself.
	var again bytes.Buffer
	if err := r.WriteJSON(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Error("two writes of the same recorder differ")
	}
}

// TestMetricsBoundaries pins the lazy-advance semantics: a t=0 row, one
// row per interior boundary using pre-event state, and a final row at end.
func TestMetricsBoundaries(t *testing.T) {
	m := NewMetrics(1)
	v := 0.0
	m.Bind([]string{"v"}, func(now float64) []float64 { return []float64{v} })
	// Events at t=0.5 (v becomes 1), t=2.5 (v becomes 2); run ends at 3.2.
	m.Advance(0.5)
	v = 1
	m.Advance(2.5)
	v = 2
	m.Finish(3.2)
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "t_s,v\n0,0\n1,1\n2,1\n3,2\n3.2,2\n"
	if buf.String() != want {
		t.Errorf("CSV:\n%s\nwant:\n%s", buf.String(), want)
	}
}

// TestMetricsIntervalLongerThanRun covers the satellite edge case: the
// export still has the header, the t=0 row and the end-of-run row.
func TestMetricsIntervalLongerThanRun(t *testing.T) {
	m := NewMetrics(60)
	m.Bind([]string{"x"}, func(now float64) []float64 { return []float64{now * 2} })
	m.Advance(1.5)
	m.Finish(2)
	var buf bytes.Buffer
	if err := m.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != "t_s,x\n0,0\n2,4\n" {
		t.Errorf("CSV:\n%s", buf.String())
	}
	// Zero-duration flavor: only the t=0 row.
	z := NewMetrics(60)
	z.Bind([]string{"x"}, func(now float64) []float64 { return []float64{1} })
	z.Finish(0)
	if z.Rows() != 1 {
		t.Errorf("zero-duration run emitted %d rows, want 1", z.Rows())
	}
}

// TestMetricsJSON checks the JSON flavor parses and mirrors the CSV rows.
func TestMetricsJSON(t *testing.T) {
	m := NewMetrics(1)
	m.Bind([]string{"a", "b"}, func(now float64) []float64 { return []float64{now, now + 1} })
	m.Finish(2)
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		IntervalSeconds float64     `json:"interval_s"`
		Columns         []string    `json:"columns"`
		Rows            [][]float64 `json:"rows"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if out.IntervalSeconds != 1 || len(out.Columns) != 3 || out.Columns[0] != "t_s" || len(out.Rows) != 3 {
		t.Errorf("JSON export mangled: %+v", out)
	}
}

// BenchmarkNilRecorder pins the disabled-recorder overhead: each hook is
// one nil check, so instrumented hot paths cost nothing when tracing is
// off.
func BenchmarkNilRecorder(b *testing.B) {
	var r *Recorder
	var m *Metrics
	for i := 0; i < b.N; i++ {
		r.Span(1, 1, "prefill", 0, 1)
		r.Instant(1, 1, "kv-stall", 0)
		_ = r.Sampled(i)
		m.Advance(float64(i))
	}
}
