package determlint_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/ais-snu/localut/internal/analysis/determlint"
)

// moduleRoot locates the enclosing module.
func moduleRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == "/dev/null" {
		t.Fatal("not inside a module")
	}
	return filepath.Dir(gomod)
}

// TestTreeClean is the linter's own acceptance bar: the full suite over
// ./... must report zero unsuppressed diagnostics. Any new map-order
// hazard, wall-clock read, unregistered RNG stream, or missing nil
// guard fails this test until it is fixed or given a reasoned
// suppression.
func TestTreeClean(t *testing.T) {
	findings, err := determlint.Check(moduleRoot(t), "./...")
	if err != nil {
		t.Fatalf("determlint over ./...: %v", err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}

// TestScope pins the house scoping rules: walltime binds simulation
// packages only, while the other analyzers run everywhere.
func TestScope(t *testing.T) {
	names := func(path string) map[string]bool {
		out := map[string]bool{}
		for _, a := range determlint.For(path) {
			out[a.Name] = true
		}
		return out
	}
	const mod = determlint.ModulePath
	for _, tc := range []struct {
		path     string
		walltime bool
	}{
		{mod + "/internal/serve", true},
		{mod + "/internal/cluster", true},
		{mod + "/internal/gemm", true},
		{mod + "/internal/obs", true},
		{mod + "/internal/workload", true},
		{mod, true},
		{mod + "/cmd/localut-serve", false},
		{mod + "/cmd/determlint", false},
		{mod + "/examples/quickstart", false},
		{mod + "/internal/prof", false},
	} {
		got := names(tc.path)
		if got["walltime"] != tc.walltime {
			t.Errorf("%s: walltime scoped %v, want %v", tc.path, got["walltime"], tc.walltime)
		}
		for _, always := range []string{"maporder", "rngstream", "nilrecv"} {
			if !got[always] {
				t.Errorf("%s: analyzer %s must apply everywhere", tc.path, always)
			}
		}
	}
}
