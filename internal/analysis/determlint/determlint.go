// Package determlint assembles the project's determinism analyzers —
// maporder, walltime, rngstream, nilrecv — into one suite with the
// house scoping rules, shared by the cmd/determlint driver (standalone
// and `go vet -vettool` modes) and by the self-check test that keeps
// the tree clean.
//
// Scoping: maporder, rngstream, and nilrecv run everywhere — a CLI
// printing a table in map order corrupts a report just as surely as a
// simulator kernel. walltime runs only on simulation packages: cmd/*
// and examples/* legitimately measure host wall-clock, and
// internal/prof exists to wrap pprof; everything else in the module
// must advance only the simulated clock.
package determlint

import (
	"fmt"
	"strings"

	"github.com/ais-snu/localut/internal/analysis"
	"github.com/ais-snu/localut/internal/analysis/loader"
	"github.com/ais-snu/localut/internal/analysis/maporder"
	"github.com/ais-snu/localut/internal/analysis/nilrecv"
	"github.com/ais-snu/localut/internal/analysis/rngstream"
	"github.com/ais-snu/localut/internal/analysis/walltime"
)

// ModulePath is the import prefix the scoping rules strip.
const ModulePath = "github.com/ais-snu/localut"

// Analyzers returns the full suite in a fixed order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		nilrecv.Analyzer,
		rngstream.Analyzer,
		walltime.Analyzer,
	}
}

// wallClockExempt lists module-relative path prefixes where host
// wall-clock use is part of the job.
var wallClockExempt = []string{"cmd/", "examples/", "internal/prof"}

// For returns the analyzers that apply to the package at importPath.
func For(importPath string) []*analysis.Analyzer {
	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, ModulePath), "/")
	out := []*analysis.Analyzer{maporder.Analyzer, nilrecv.Analyzer, rngstream.Analyzer}
	for _, p := range wallClockExempt {
		if strings.HasPrefix(rel, p) {
			return out
		}
	}
	return append(out, walltime.Analyzer)
}

// Check loads the packages matching patterns in the module at dir, runs
// the scoped suite on each, and returns every unsuppressed diagnostic
// pre-rendered as "path:line:col: [analyzer] message", sorted within
// each package by position. Test files are not analyzed: the
// determinism contract binds the simulator, and tests pin it by other
// means.
func Check(dir string, patterns ...string) ([]string, error) {
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, pkg := range pkgs {
		diags, err := analysis.Run(pkg.Fset, pkg.Files, pkg.Pkg, pkg.TypesInfo, For(pkg.Path))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", pkg.Path, err)
		}
		for _, d := range diags {
			out = append(out, d.Format(pkg.Fset))
		}
	}
	return out, nil
}
