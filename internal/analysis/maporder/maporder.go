// Package maporder flags `for ... range m` loops over maps whose body
// is sensitive to iteration order: accumulating floating-point values
// (float addition does not commute at ulp level — the exact bug class
// behind the energy.Price jitter fixed in PR 2), appending to a slice
// that is never sorted afterwards (the fig15 row-order bug), or writing
// ordered output (fmt printing, Write/Encode methods) per iteration.
//
// Safe patterns are not flagged: integer accumulation, map writes,
// collecting keys or values into a slice that a later sort.* or
// slices.* call orders, and sites annotated with a
// //determlint:ordered <reason> suppression.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/ais-snu/localut/internal/analysis"
)

// Analyzer is the maporder pass.
var Analyzer = &analysis.Analyzer{
	Name:     "maporder",
	Doc:      "flag map iteration whose body depends on iteration order (float accumulation, unsorted appends, ordered output)",
	Suppress: "ordered",
	Run:      run,
}

// writerMethods are method names treated as ordered output sinks.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteRow": true, "WriteAll": true, "Encode": true,
	"Print": true, "Printf": true, "Println": true, "Fprintf": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if t := pass.TypesInfo.TypeOf(rs.X); t == nil {
				return true
			} else if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, rs, analysis.EnclosingFunc(stack))
			return true
		})
	}
	return nil
}

// checkMapRange inspects one range-over-map body for order-sensitive
// effects. encl is the enclosing function, used to look for a
// neutralizing sort after the loop.
func checkMapRange(pass *analysis.Pass, rs *ast.RangeStmt, encl ast.Node) {
	info := pass.TypesInfo
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			switch st.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
				lhs := st.Lhs[0]
				if t := info.TypeOf(lhs); t != nil && analysis.IsFloat(t) {
					if id, outside := analysis.DeclaredOutside(info, lhs, rs.Pos(), rs.End()); outside {
						pass.Reportf(st.Pos(), "float accumulation into %s inside map iteration is order-sensitive; iterate sorted keys or add //determlint:ordered <reason>", id.Name)
					}
				}
			case token.ASSIGN:
				for i, lhs := range st.Lhs {
					if i >= len(st.Rhs) {
						break
					}
					checkAssign(pass, rs, encl, lhs, st.Rhs[i], st.Pos())
				}
			}
		case *ast.CallExpr:
			if isOrderedOutput(info, st) {
				pass.Reportf(st.Pos(), "ordered output written inside map iteration follows map order; iterate sorted keys or add //determlint:ordered <reason>")
				return false
			}
		}
		return true
	})
}

// checkAssign handles `x = x + v` float accumulation and
// `s = append(s, ...)` into a slice declared outside the loop.
func checkAssign(pass *analysis.Pass, rs *ast.RangeStmt, encl ast.Node, lhs, rhs ast.Expr, pos token.Pos) {
	info := pass.TypesInfo
	rhs = ast.Unparen(rhs)
	if call, ok := rhs.(*ast.CallExpr); ok {
		if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && id.Name == "append" {
			if _, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
				id, outside := analysis.DeclaredOutside(info, lhs, rs.Pos(), rs.End())
				if outside && !sortedAfter(info, encl, info.ObjectOf(id), rs.End()) {
					pass.Reportf(pos, "append to %s inside map iteration records map order; sort %s afterwards, iterate sorted keys, or add //determlint:ordered <reason>", id.Name, id.Name)
				}
			}
		}
		return
	}
	// x = x + v (or -, *, /) with float x declared outside the loop.
	bin, ok := rhs.(*ast.BinaryExpr)
	if !ok {
		return
	}
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return
	}
	t := info.TypeOf(lhs)
	if t == nil || !analysis.IsFloat(t) {
		return
	}
	id, outside := analysis.DeclaredOutside(info, lhs, rs.Pos(), rs.End())
	if !outside {
		return
	}
	if obj := info.ObjectOf(id); obj != nil && refersTo(info, bin, obj) {
		pass.Reportf(pos, "float accumulation into %s inside map iteration is order-sensitive; iterate sorted keys or add //determlint:ordered <reason>", id.Name)
	}
}

// sortedAfter reports whether obj is passed to a sort or slices call
// positioned after pos inside the enclosing function — the canonical
// collect-then-sort idiom that makes an in-loop append deterministic.
func sortedAfter(info *types.Info, encl ast.Node, obj types.Object, pos token.Pos) bool {
	if encl == nil || obj == nil {
		return false
	}
	found := false
	ast.Inspect(encl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < pos || found {
			return !found
		}
		fn := analysis.PkgFunc(info, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "sort", "slices":
		default:
			return true
		}
		for _, arg := range call.Args {
			if refersTo(info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// refersTo reports whether expr mentions obj.
func refersTo(info *types.Info, expr ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}

// isOrderedOutput reports whether call writes ordered output: a
// fmt.Print*/Fprint* call or a Write/Encode-family method.
func isOrderedOutput(info *types.Info, call *ast.CallExpr) bool {
	fn := analysis.PkgFunc(info, call)
	if fn == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if sig.Recv() == nil {
		return fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
			(strings.HasPrefix(fn.Name(), "Print") || strings.HasPrefix(fn.Name(), "Fprint"))
	}
	return writerMethods[fn.Name()]
}
