package fixture

import "fmt"

// FloatAccum sums float values straight out of map order: the ulp-level
// result depends on iteration order.
func FloatAccum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v // want "float accumulation into sum"
	}
	return sum
}

// FloatAssignForm is the same bug spelled as x = x + v.
func FloatAssignForm(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want "float accumulation into total"
	}
	return total
}

// AppendRows records map order into a slice that is never sorted.
func AppendRows(m map[string]int) []string {
	var rows []string
	for k := range m {
		rows = append(rows, k) // want "append to rows inside map iteration"
	}
	return rows
}

// Output prints rows in map order.
func Output(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want "ordered output written inside map iteration"
	}
}

// NestedAccum leaks order through an inner loop over the map value: the
// outer map order still decides the order float addends meet.
func NestedAccum(m map[string][]float64) float64 {
	grand := 0.0
	for _, vs := range m {
		for _, v := range vs {
			grand += v // want "float accumulation into grand"
		}
	}
	return grand
}
