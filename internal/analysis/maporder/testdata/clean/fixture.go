package fixture

import (
	"fmt"
	"sort"
)

// CountValues accumulates integers, which commute exactly.
func CountValues(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// SortedKeys is the canonical collect-then-sort idiom: the in-loop
// append is neutralized by the sort that follows.
func SortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// PrintSorted iterates the sorted key slice, so accumulation and output
// are deterministic.
func PrintSorted(m map[string]float64) float64 {
	sum := 0.0
	for _, k := range SortedKeys(m) {
		sum += m[k]
		fmt.Println(k, m[k])
	}
	return sum
}

// LocalScratch accumulates into a per-iteration local, which resets
// every pass and cannot leak order.
func LocalScratch(m map[string][]float64) map[string]float64 {
	out := make(map[string]float64, len(m))
	for k, vs := range m {
		s := 0.0
		for _, v := range vs {
			s += v
		}
		out[k] = s
	}
	return out
}
