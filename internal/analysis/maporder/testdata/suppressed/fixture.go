package fixture

import "fmt"

// SuppressedAccum carries a reasoned trailing suppression.
func SuppressedAccum(m map[string]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum += v //determlint:ordered result only compared at 1e-3 tolerance downstream
	}
	return sum
}

// SuppressedOutput uses annotation-above style.
func SuppressedOutput(m map[string]int) {
	for k := range m {
		//determlint:ordered debug dump, never diffed against goldens
		fmt.Println(k)
	}
}

// BareSuppression has no reason, so it does not suppress: every
// suppression must say why.
func BareSuppression(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		//determlint:ordered
		t += v // want "float accumulation into t"
	}
	return t
}
