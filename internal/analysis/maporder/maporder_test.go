package maporder_test

import (
	"testing"

	"github.com/ais-snu/localut/internal/analysis/analysistest"
	"github.com/ais-snu/localut/internal/analysis/maporder"
)

func TestFlagged(t *testing.T)    { analysistest.Run(t, "testdata/flagged", maporder.Analyzer) }
func TestClean(t *testing.T)      { analysistest.Run(t, "testdata/clean", maporder.Analyzer) }
func TestSuppressed(t *testing.T) { analysistest.Run(t, "testdata/suppressed", maporder.Analyzer) }
