package fixture

import "math/rand"

// Jitter keeps an intentional global draw with a reasoned suppression.
func Jitter() int {
	return rand.Intn(3) //determlint:rngstream harness-only jitter, result never enters a report
}
