package fixture

import "math/rand"

// GlobalDraw pulls from the process-wide source.
func GlobalDraw() int {
	return rand.Intn(10) // want "global rand.Intn"
}

// GlobalShuffle mutates through the shared source too.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global rand.Shuffle"
}

type seedStream struct{ offset, stride int64 }

// chaosStreams is a registry with a colliding stride, which the
// analyzer must reject.
var chaosStreams = [2]seedStream{
	{offset: 7, stride: 99991},
	{offset: 11, stride: 99991}, // want "duplicate stride 99991"
}

// fromRegistry is the sanctioned accessor: it reads the registry, so
// its constructions are legal.
func fromRegistry(seed int64, id, k int) *rand.Rand {
	s := chaosStreams[id]
	return rand.New(rand.NewSource(seed + s.offset + int64(k)*s.stride))
}

// adHoc builds a stream next to a registry without registering it.
func adHoc(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed + 99)) // want "unregistered chaos RNG stream"
}

var _ = fromRegistry
var _ = adHoc
