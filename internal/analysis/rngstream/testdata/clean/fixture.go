package fixture

import "math/rand"

// Seeded derives an explicit source: methods on a *rand.Rand are always
// legal, and without a registry in the package, construction sites are
// unconstrained.
func Seeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// Derived streams built from an explicit seed are fine too.
func PerWorker(seed int64, workers int) []*rand.Rand {
	out := make([]*rand.Rand, workers)
	for i := range out {
		out[i] = rand.New(rand.NewSource(seed + int64(i)))
	}
	return out
}
