// Package rngstream enforces the project's randomness discipline:
//
//  1. No global math/rand (or math/rand/v2) state, anywhere: the
//     package-level convenience functions (rand.Intn, rand.Float64,
//     rand.Shuffle, rand.Seed, ...) draw from one process-wide source
//     whose schedule shifts with every unrelated caller. Deterministic
//     code derives every stream from an explicit seed via
//     rand.New(rand.NewSource(seed)).
//
//  2. In a package that declares a chaos stream registry — a top-level
//     `chaosStreams` table of (offset, stride) seed-derivation pairs —
//     the entries must be pairwise unique in both offset and stride
//     (so enabling one chaos layer can never shift another layer's
//     schedule), and every rand.New/rand.NewSource construction in the
//     package must happen inside a function that reads the registry.
//     Ad-hoc seed arithmetic next to the table is exactly how two
//     subsystems end up on colliding streams.
package rngstream

import (
	"go/ast"
	"go/constant"
	"go/types"

	"github.com/ais-snu/localut/internal/analysis"
)

// Analyzer is the rngstream pass.
var Analyzer = &analysis.Analyzer{
	Name:     "rngstream",
	Doc:      "forbid global math/rand and unregistered chaos RNG streams; verify registry uniqueness",
	Suppress: "rngstream",
	Run:      run,
}

// RegistryName is the top-level table rngstream recognizes as the
// single source of truth for chaos seed streams.
const RegistryName = "chaosStreams"

// allowed are the math/rand package-level functions that construct
// explicitly seeded state instead of touching the global source.
var allowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

func run(pass *analysis.Pass) error {
	checkGlobalRand(pass)
	if reg := pass.Pkg.Scope().Lookup(RegistryName); reg != nil {
		checkRegistry(pass, reg)
	}
	return nil
}

// checkGlobalRand flags every use of a math/rand package-level function
// that draws from (or reseeds) the shared global source.
func checkGlobalRand(pass *analysis.Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on an explicit *rand.Rand are fine
			}
			if allowed[fn.Name()] {
				return true
			}
			pass.Reportf(sel.Pos(), "global rand.%s draws from process-wide state and is not reproducible; use a seeded rand.New(rand.NewSource(...)) (or add //determlint:rngstream <reason>)", fn.Name())
			return true
		})
	}
}

// checkRegistry verifies the chaosStreams table and confines stream
// construction to its accessor functions.
func checkRegistry(pass *analysis.Pass, reg types.Object) {
	info := pass.TypesInfo
	// Locate the registry's composite literal and check uniqueness.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			vs, ok := n.(*ast.ValueSpec)
			if !ok {
				return true
			}
			for i, name := range vs.Names {
				if info.ObjectOf(name) != reg || i >= len(vs.Values) {
					continue
				}
				if lit, ok := ast.Unparen(vs.Values[i]).(*ast.CompositeLit); ok {
					checkUniqueness(pass, lit)
				}
			}
			return true
		})
	}
	// Any rand.New/rand.NewSource outside a registry-reading function is
	// an unregistered stream. rand.New(rand.NewSource(...)) is one site,
	// so report each source line once.
	type fileLine struct {
		file string
		line int
	}
	reported := map[fileLine]bool{}
	for _, file := range pass.Files {
		analysis.WalkStack(file, func(n ast.Node, stack []ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "math/rand", "math/rand/v2":
			default:
				return true
			}
			if fn.Name() != "New" && fn.Name() != "NewSource" {
				return true
			}
			encl := analysis.EnclosingFunc(stack)
			if encl != nil && refersTo(info, encl, reg) {
				return true
			}
			p := pass.Fset.Position(sel.Pos())
			if key := (fileLine{p.Filename, p.Line}); !reported[key] {
				reported[key] = true
				pass.Reportf(sel.Pos(), "unregistered chaos RNG stream: this package has a %s registry; derive every stream through its accessor so offsets and strides stay unique (or add //determlint:rngstream <reason>)", RegistryName)
			}
			return true
		})
	}
}

// checkUniqueness evaluates the (offset, stride) constants of every
// registry entry and reports collisions in either column.
func checkUniqueness(pass *analysis.Pass, lit *ast.CompositeLit) {
	seen := map[string]map[int64]bool{"offset": {}, "stride": {}}
	report := func(col string, v int64, at ast.Expr) {
		if seen[col][v] {
			pass.Reportf(at.Pos(), "chaos stream registry: duplicate %s %d — two streams would collide; every registry entry needs a unique offset and a unique stride", col, v)
		}
		seen[col][v] = true
	}
	for _, el := range lit.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			el = kv.Value
		}
		inner, ok := ast.Unparen(el).(*ast.CompositeLit)
		if !ok {
			continue
		}
		for j, fe := range inner.Elts {
			col := ""
			val := fe
			if kv, ok := fe.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					col = id.Name
				}
				val = kv.Value
			} else if j == 0 {
				col = "offset"
			} else if j == 1 {
				col = "stride"
			}
			tv, ok := pass.TypesInfo.Types[val]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
				continue
			}
			v, ok := constant.Int64Val(tv.Value)
			if !ok {
				continue
			}
			if col == "offset" || col == "stride" {
				if v <= 0 {
					pass.Reportf(val.Pos(), "chaos stream registry: %s %d must be positive", col, v)
				}
				report(col, v, val)
			}
		}
	}
}

// refersTo reports whether node mentions obj.
func refersTo(info *types.Info, node ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
		}
		return !found
	})
	return found
}
