package rngstream_test

import (
	"testing"

	"github.com/ais-snu/localut/internal/analysis/analysistest"
	"github.com/ais-snu/localut/internal/analysis/rngstream"
)

func TestFlagged(t *testing.T)    { analysistest.Run(t, "testdata/flagged", rngstream.Analyzer) }
func TestClean(t *testing.T)      { analysistest.Run(t, "testdata/clean", rngstream.Analyzer) }
func TestSuppressed(t *testing.T) { analysistest.Run(t, "testdata/suppressed", rngstream.Analyzer) }
