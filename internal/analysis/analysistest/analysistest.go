// Package analysistest runs one analyzer over a fixture package and
// checks its diagnostics against `// want "regexp"` comments, in the
// spirit of golang.org/x/tools/go/analysis/analysistest but built on
// the in-repo loader. Each fixture directory is one package (all its
// .go files); suppression comments are honored exactly as the real
// driver honors them, so fixtures can pin all three behaviors: a true
// positive (line carries a want), a clean site (no want, no finding),
// and a suppressed site (suppression comment, no want).
package analysistest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"github.com/ais-snu/localut/internal/analysis"
	"github.com/ais-snu/localut/internal/analysis/loader"
)

// wantRE extracts the quoted patterns of a `// want "..." "..."` comment.
var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// expectation is one want pattern anchored to a file line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads the fixture package in dir, applies a (with suppression
// filtering), and fails t on any mismatch between diagnostics and the
// fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := loader.LoadDir(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(pkg.Fset, pkg.Files, pkg.Pkg, pkg.TypesInfo, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	var wants []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: m[1]})
				}
			}
		}
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s", fmt.Sprintf("%s:%d: [%s] %s", pos.Filename, pos.Line, d.Analyzer.Name, d.Message))
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.raw)
		}
	}
}
