// Package nilrecv enforces the zero-cost-when-nil contract on types
// documented as nil-safe: the observability layer promises that a nil
// *obs.Recorder or *obs.Metrics makes every call a no-op, so
// instrumentation costs nothing when disabled. A type opts in by
// carrying a //determlint:nilsafe line in its doc comment; from then on
// every exported method must use a named pointer receiver and begin
// with `if r == nil { return ... }` (a leading `r == nil || ...`
// condition also qualifies). One missing guard turns "tracing off" into
// a panic on the hot path.
package nilrecv

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"github.com/ais-snu/localut/internal/analysis"
)

// Analyzer is the nilrecv pass.
var Analyzer = &analysis.Analyzer{
	Name:     "nilrecv",
	Doc:      "exported methods on //determlint:nilsafe types must nil-check their pointer receiver first",
	Suppress: "nilrecv",
	Run:      run,
}

// Marker is the doc-comment line that declares a type nil-safe.
const Marker = "//determlint:nilsafe"

func run(pass *analysis.Pass) error {
	nilsafe := markedTypes(pass)
	if len(nilsafe) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv == nil || len(fd.Recv.List) != 1 || !fd.Name.IsExported() {
				continue
			}
			checkMethod(pass, nilsafe, fd)
		}
	}
	return nil
}

// markedTypes collects the named types whose declaration doc contains
// the nilsafe marker.
func markedTypes(pass *analysis.Pass) map[types.Object]bool {
	marked := make(map[types.Object]bool)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if hasMarker(gd.Doc) || hasMarker(ts.Doc) {
					if obj := pass.TypesInfo.ObjectOf(ts.Name); obj != nil {
						marked[obj] = true
					}
				}
			}
		}
	}
	return marked
}

func hasMarker(cg *ast.CommentGroup) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, Marker) {
			return true
		}
	}
	return false
}

// checkMethod verifies one exported method against the contract.
func checkMethod(pass *analysis.Pass, nilsafe map[types.Object]bool, fd *ast.FuncDecl) {
	recv := fd.Recv.List[0]
	star, isPtr := recv.Type.(*ast.StarExpr)
	var typeIdent *ast.Ident
	if isPtr {
		typeIdent, _ = ast.Unparen(star.X).(*ast.Ident)
	} else {
		typeIdent, _ = ast.Unparen(recv.Type).(*ast.Ident)
	}
	if typeIdent == nil || !nilsafe[pass.TypesInfo.ObjectOf(typeIdent)] {
		return
	}
	if !isPtr {
		pass.Reportf(fd.Name.Pos(), "nil-safe type %s: exported method %s has a value receiver, so a nil pointer cannot be guarded; use a pointer receiver with a leading nil check", typeIdent.Name, fd.Name.Name)
		return
	}
	if len(recv.Names) == 0 || recv.Names[0].Name == "_" {
		pass.Reportf(fd.Name.Pos(), "nil-safe type %s: exported method %s must name its receiver and begin with a nil check", typeIdent.Name, fd.Name.Name)
		return
	}
	recvObj := pass.TypesInfo.ObjectOf(recv.Names[0])
	if fd.Body == nil || len(fd.Body.List) == 0 || !startsWithNilGuard(pass, fd.Body.List[0], recvObj) {
		pass.Reportf(fd.Name.Pos(), "nil-safe type %s: exported method %s must begin with `if %s == nil { return ... }` so a nil receiver is a no-op", typeIdent.Name, fd.Name.Name, recv.Names[0].Name)
	}
}

// startsWithNilGuard reports whether stmt is `if recv == nil { ...
// return }` (possibly `recv == nil || more`), ending in a return.
func startsWithNilGuard(pass *analysis.Pass, stmt ast.Stmt, recv types.Object) bool {
	ifs, ok := stmt.(*ast.IfStmt)
	if !ok || ifs.Init != nil || ifs.Body == nil || len(ifs.Body.List) == 0 {
		return false
	}
	if _, ok := ifs.Body.List[len(ifs.Body.List)-1].(*ast.ReturnStmt); !ok {
		return false
	}
	return condHasNilCheck(pass, ifs.Cond, recv)
}

// condHasNilCheck matches `recv == nil` as the condition or as an
// operand of a top-level ||.
func condHasNilCheck(pass *analysis.Pass, cond ast.Expr, recv types.Object) bool {
	bin, ok := ast.Unparen(cond).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	if bin.Op == token.LOR {
		return condHasNilCheck(pass, bin.X, recv) || condHasNilCheck(pass, bin.Y, recv)
	}
	if bin.Op != token.EQL {
		return false
	}
	isRecv := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.ObjectOf(id) == recv
	}
	isNil := func(e ast.Expr) bool {
		tv, ok := pass.TypesInfo.Types[ast.Unparen(e)]
		return ok && tv.IsNil()
	}
	return (isRecv(bin.X) && isNil(bin.Y)) || (isRecv(bin.Y) && isNil(bin.X))
}
