package fixture

// Recorder promises nil-safety: every exported method must no-op on a
// nil receiver.
//
//determlint:nilsafe all exported methods no-op on nil
type Recorder struct {
	n int
}

// Good has the canonical leading guard.
func (r *Recorder) Good() int {
	if r == nil {
		return 0
	}
	return r.n
}

// GuardWithOr folds the nil check into a compound condition, which
// still guards.
func (r *Recorder) GuardWithOr(xs []int) int {
	if r == nil || len(xs) == 0 {
		return 0
	}
	return r.n + xs[0]
}

// Missing dereferences an unguarded receiver.
func (r *Recorder) Missing() int { // want "exported method Missing must begin with"
	return r.n
}

// Late guards too late: the first statement already dereferenced.
func (r *Recorder) Late() int { // want "exported method Late must begin with"
	v := r.n
	if r == nil {
		return 0
	}
	return v
}

// ValueRecv cannot guard a nil pointer at all.
func (r Recorder) ValueRecv() int { // want "value receiver"
	return r.n
}

// Unnamed receivers cannot be checked.
func (*Recorder) Unnamed() {} // want "must name its receiver"

// internal is unexported and outside the contract.
func (r *Recorder) internal() int { return r.n }

var _ = (*Recorder)(nil).internal
