package fixture

// Plain carries no nilsafe contract, so its methods may dereference
// freely.
type Plain struct{ n int }

// Value dereferences without a guard; legal on an unmarked type.
func (p *Plain) Value() int { return p.n }
