package fixture

// Sink is nil-safe.
//
//determlint:nilsafe all exported methods no-op on nil
type Sink struct{ n int }

// Reset skips the guard with a reasoned suppression.
//
//determlint:nilrecv constructed internally, a nil Sink is impossible by construction
func (s *Sink) Reset() { s.n = 0 }
