package nilrecv_test

import (
	"testing"

	"github.com/ais-snu/localut/internal/analysis/analysistest"
	"github.com/ais-snu/localut/internal/analysis/nilrecv"
)

func TestFlagged(t *testing.T)    { analysistest.Run(t, "testdata/flagged", nilrecv.Analyzer) }
func TestClean(t *testing.T)      { analysistest.Run(t, "testdata/clean", nilrecv.Analyzer) }
func TestSuppressed(t *testing.T) { analysistest.Run(t, "testdata/suppressed", nilrecv.Analyzer) }
