package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// parse builds one file's suppression index.
func parse(t *testing.T, src string) (*token.FileSet, *Suppressions) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, ParseSuppressions(fset, []*ast.File{f})
}

// posAt returns a Pos on the given 1-indexed line of x.go.
func posAt(fset *token.FileSet, line int) token.Pos {
	var file *token.File
	fset.Iterate(func(f *token.File) bool { file = f; return false })
	return file.LineStart(line)
}

func TestSuppressions(t *testing.T) {
	src := `package p

func a() {
	_ = 1 //determlint:ordered keys sorted upstream
	//determlint:walltime host timing for the progress bar
	_ = 2
	//determlint:rngstream
	_ = 3
	_ = 4
}
`
	fset, sups := parse(t, src)
	for _, tc := range []struct {
		tok  string
		line int
		want bool
	}{
		{"ordered", 4, true},    // trailing comment, same line
		{"ordered", 5, true},    // trailing comments also cover the next line
		{"walltime", 6, true},   // annotation-above
		{"walltime", 4, false},  // wrong token
		{"rngstream", 8, false}, // no reason given: does not suppress
		{"ordered", 9, false},   // out of range
	} {
		if got := sups.Suppressed(fset, tc.tok, posAt(fset, tc.line)); got != tc.want {
			t.Errorf("Suppressed(%q, line %d) = %v, want %v", tc.tok, tc.line, got, tc.want)
		}
	}
}

func TestSuppressedNilReceiver(t *testing.T) {
	fset := token.NewFileSet()
	var s *Suppressions
	if s.Suppressed(fset, "ordered", token.NoPos) {
		t.Error("nil Suppressions must suppress nothing")
	}
}
