// Package loader loads type-checked packages for determlint using only
// the standard library and the go command. Package metadata and export
// data for dependencies come from `go list -deps -export -json`; the
// target packages themselves are parsed from source (with comments, so
// suppression directives survive) and type-checked against that export
// data via go/importer's gc lookup mode. No network access and no
// module downloads are required: everything reads the local build
// cache, which `go build ./...` has already populated in any checkout
// that compiles.
package loader

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string // import path
	Dir       string
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	CgoFiles   []string
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// goList runs `go list -deps -export -json` in dir for patterns and
// decodes the package stream.
func goList(dir string, patterns []string) ([]listPkg, error) {
	args := append([]string{"list", "-deps", "-export",
		"-json=ImportPath,Dir,Export,GoFiles,CgoFiles,DepOnly,Incomplete,Error"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// ExportLookup returns a gc-importer lookup function over the transitive
// export data of patterns, resolved by `go list` in dir.
func ExportLookup(dir string, patterns []string) (func(path string) (io.ReadCloser, error), error) {
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	}, nil
}

// TypeCheck parses and type-checks one package from its source files,
// resolving imports through lookup. Parse and type errors are returned;
// the *types.Info is fully populated for analysis.
func TypeCheck(fset *token.FileSet, path string, filenames []string, src map[string][]byte, lookup func(string) (io.ReadCloser, error)) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		var content any
		if src != nil {
			content = src[name]
		}
		f, err := parser.ParseFile(fset, name, content, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var firstErr error
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", lookup),
		Error: func(err error) {
			if firstErr == nil {
				firstErr = err
			}
		},
	}
	pkg, err := conf.Check(path, fset, files, info)
	if firstErr != nil {
		return nil, firstErr
	}
	if err != nil {
		return nil, err
	}
	dir := ""
	if len(filenames) > 0 {
		dir = filepath.Dir(filenames[0])
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Pkg: pkg, TypesInfo: info}, nil
}

// Load loads the packages matching patterns (e.g. "./...") in the
// module rooted at dir, type-checking each matched package from source
// and its dependencies from export data. Returned packages are in
// go list order (dependencies first), which is deterministic.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(pkgs))
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("loader: no export data for %q", path)
		}
		return os.Open(f)
	}
	fset := token.NewFileSet()
	var out []*Package
	for _, p := range pkgs {
		if p.DepOnly {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("loader: %s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.CgoFiles) > 0 {
			return nil, fmt.Errorf("loader: %s: cgo packages are not supported", p.ImportPath)
		}
		var filenames []string
		for _, gf := range p.GoFiles {
			filenames = append(filenames, filepath.Join(p.Dir, gf))
		}
		if len(filenames) == 0 {
			continue
		}
		lp, err := TypeCheck(fset, p.ImportPath, filenames, nil, lookup)
		if err != nil {
			return nil, fmt.Errorf("loader: %s: %w", p.ImportPath, err)
		}
		out = append(out, lp)
	}
	return out, nil
}

// LoadDir loads the single package formed by every .go file directly in
// dir (an analysistest fixture). Imports are resolved from the local
// build cache; the fixture may import anything the surrounding module
// can.
func LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(filenames)
	if len(filenames) == 0 {
		return nil, errors.New("loader: no .go files in " + dir)
	}
	// Collect the direct imports so `go list` can resolve the
	// transitive export-data closure.
	fset := token.NewFileSet()
	importSet := make(map[string]bool)
	for _, name := range filenames {
		f, err := parser.ParseFile(fset, name, nil, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				return nil, err
			}
			importSet[p] = true
		}
	}
	lookup := func(string) (io.ReadCloser, error) {
		return nil, errors.New("loader: fixture has no imports")
	}
	if len(importSet) > 0 {
		var imports []string
		for p := range importSet {
			imports = append(imports, p)
		}
		sort.Strings(imports)
		lookup, err = ExportLookup(dir, imports)
		if err != nil {
			return nil, err
		}
	}
	return TypeCheck(token.NewFileSet(), filepath.Base(dir), filenames, nil, lookup)
}
