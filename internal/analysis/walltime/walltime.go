// Package walltime forbids reading or acting on the host's wall clock
// inside simulation packages. The simulator's only clock is the
// discrete-event time threaded through the event heap; a time.Now (or a
// sleep, timer, or ticker) in simulation code couples results to the
// machine and breaks byte-identical reports across runs and -j levels.
// Wall-clock measurement belongs in cmd/* drivers and internal/prof,
// which the determlint suite exempts.
package walltime

import (
	"go/ast"
	"go/types"

	"github.com/ais-snu/localut/internal/analysis"
)

// Analyzer is the walltime pass.
var Analyzer = &analysis.Analyzer{
	Name:     "walltime",
	Doc:      "forbid wall-clock reads (time.Now, time.Since, timers) in simulation packages",
	Suppress: "walltime",
	Run:      run,
}

// denied are the package-level time functions that observe or schedule
// against the host clock. Pure data constructors (time.Duration math,
// time.Unix, time.Date) stay legal.
var denied = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"Sleep": true, "After": true, "Tick": true,
	"NewTimer": true, "NewTicker": true, "AfterFunc": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.ObjectOf(sel.Sel).(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" || !denied[fn.Name()] {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			pass.Reportf(sel.Pos(), "wall-clock time.%s in simulation code: only the simulated clock may advance state (move to cmd/* or internal/prof, or add //determlint:walltime <reason>)", fn.Name())
			return true
		})
	}
	return nil
}
