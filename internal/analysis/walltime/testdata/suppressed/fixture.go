package fixture

import "time"

// Profiled justifies its wall-clock read: it feeds an operator-facing
// progress line, never simulated state.
func Profiled() time.Time {
	return time.Now() //determlint:walltime progress logging only, never enters simulated state
}
