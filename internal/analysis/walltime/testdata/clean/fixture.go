package fixture

import "time"

// Pure duration arithmetic and explicit instants are data, not clock
// reads, and stay legal in simulation code.
func Pure() time.Time {
	d := 3 * time.Second
	return time.Unix(0, 0).Add(d)
}

// Format renders a simulated timestamp; nothing observes the host.
func Format(simSeconds float64) string {
	return time.Unix(int64(simSeconds), 0).UTC().Format(time.RFC3339)
}
