package fixture

import "time"

// Step reads and schedules against the host clock from simulation code.
func Step() float64 {
	start := time.Now()                // want "wall-clock time.Now in simulation code"
	time.Sleep(time.Millisecond)       // want "wall-clock time.Sleep in simulation code"
	return time.Since(start).Seconds() // want "wall-clock time.Since in simulation code"
}

// Deadline uses a timer, which is the same clock in disguise.
func Deadline() <-chan time.Time {
	return time.After(time.Second) // want "wall-clock time.After in simulation code"
}
