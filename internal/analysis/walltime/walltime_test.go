package walltime_test

import (
	"testing"

	"github.com/ais-snu/localut/internal/analysis/analysistest"
	"github.com/ais-snu/localut/internal/analysis/walltime"
)

func TestFlagged(t *testing.T)    { analysistest.Run(t, "testdata/flagged", walltime.Analyzer) }
func TestClean(t *testing.T)      { analysistest.Run(t, "testdata/clean", walltime.Analyzer) }
func TestSuppressed(t *testing.T) { analysistest.Run(t, "testdata/suppressed", walltime.Analyzer) }
