// Package analysis is a self-contained mirror of the
// golang.org/x/tools/go/analysis API surface used by determlint, built
// entirely on the standard library so the linter needs no module
// downloads. An Analyzer inspects one type-checked package through a
// Pass and reports Diagnostics; the driver (cmd/determlint or the
// analysistest harness) loads packages, runs analyzers, and filters
// diagnostics through //determlint:<check> <reason> suppression
// comments.
//
// The shapes are kept deliberately close to go/analysis so the suite
// could be rehosted on x/tools (and go vet's unitchecker) by swapping
// imports; cmd/determlint already speaks the vettool protocol.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in output (e.g. "maporder").
	Name string
	// Doc is the one-paragraph description shown by -help.
	Doc string
	// Suppress is the token accepted after "//determlint:" to silence a
	// finding from this analyzer (e.g. "ordered" for maporder). A
	// suppression comment must carry a non-empty reason or it is
	// ignored — the diagnostic stays.
	Suppress string
	// Run inspects one package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package to an Analyzer.Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report records one finding. The driver installs it.
	Report func(Diagnostic)
}

// Reportf reports a finding at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Analyzer: p.Analyzer, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding, positioned in the pass's FileSet.
type Diagnostic struct {
	Analyzer *Analyzer
	Pos      token.Pos
	Message  string
}

// String renders the diagnostic as path:line:col: [name] message.
func (d Diagnostic) Format(fset *token.FileSet) string {
	return fmt.Sprintf("%s: [%s] %s", fset.Position(d.Pos), d.Analyzer.Name, d.Message)
}

// SuppressionPrefix introduces an inline suppression comment.
const SuppressionPrefix = "//determlint:"

// suppression is one parsed //determlint:<token> <reason> comment.
type suppression struct {
	token string
	line  int // line the comment appears on
}

// Suppressions indexes every //determlint: comment in files, keyed by
// file name. Comments without a reason are ignored (and so do not
// suppress anything): every suppression must say why.
type Suppressions struct {
	byFile map[string][]suppression
}

// ParseSuppressions scans the comments of files for suppression
// directives. A directive silences matching diagnostics on its own line
// and on the line immediately below, so both trailing comments and
// annotation-above style work.
func ParseSuppressions(fset *token.FileSet, files []*ast.File) *Suppressions {
	s := &Suppressions{byFile: make(map[string][]suppression)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, SuppressionPrefix)
				if !ok {
					continue
				}
				tok, reason, _ := strings.Cut(text, " ")
				if tok == "" || strings.TrimSpace(reason) == "" {
					continue // a suppression without a reason does not suppress
				}
				pos := fset.Position(c.Pos())
				s.byFile[pos.Filename] = append(s.byFile[pos.Filename], suppression{token: tok, line: pos.Line})
			}
		}
	}
	return s
}

// Suppressed reports whether a diagnostic from an analyzer with
// suppression token tok at pos is silenced.
func (s *Suppressions) Suppressed(fset *token.FileSet, tok string, pos token.Pos) bool {
	if s == nil {
		return false
	}
	p := fset.Position(pos)
	for _, sup := range s.byFile[p.Filename] {
		if sup.token == tok && (sup.line == p.Line || sup.line == p.Line-1) {
			return true
		}
	}
	return false
}

// Run executes analyzers over one loaded package and returns the
// diagnostics that survive suppression filtering, sorted by position
// so output is deterministic regardless of analyzer order.
func Run(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) ([]Diagnostic, error) {
	sups := ParseSuppressions(fset, files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
		}
		pass.Report = func(d Diagnostic) {
			if sups.Suppressed(fset, a.Suppress, d.Pos) {
				return
			}
			out = append(out, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %w", a.Name, err)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return out[i].Analyzer.Name < out[j].Analyzer.Name
	})
	return out, nil
}
