package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// WalkStack traverses root in depth-first order like ast.Inspect, but
// passes the stack of ancestor nodes (outermost first, not including n)
// to fn. Returning false skips n's children.
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !fn(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// RootIdent unwraps parens, selectors, index and star expressions to
// the base identifier of an lvalue, e.g. cs.totals[k] -> cs. It returns
// nil when the expression is not rooted in an identifier.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// DeclaredOutside reports whether the object behind e's root identifier
// exists and is declared outside the [lo, hi] node span — i.e. mutating
// it inside the span leaks state across iterations of a loop spanning
// [lo, hi].
func DeclaredOutside(info *types.Info, e ast.Expr, lo, hi token.Pos) (*ast.Ident, bool) {
	id := RootIdent(e)
	if id == nil {
		return nil, false
	}
	obj := info.ObjectOf(id)
	if obj == nil || obj.Pos() == token.NoPos {
		return id, false
	}
	return id, obj.Pos() < lo || obj.Pos() > hi
}

// PkgFunc resolves a call expression to the package-level function or
// method it invokes, or nil.
func PkgFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.ObjectOf(id).(*types.Func)
	return fn
}

// IsFloat reports whether t's core type is a floating-point basic type.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// EnclosingFunc returns the innermost function literal or declaration
// body on the stack, or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}
