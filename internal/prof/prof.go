// Package prof wires the standard pprof collectors into the command-line
// tools, so every perf change to the simulator can ship with CPU and heap
// evidence (`-cpuprofile` / `-memprofile` on localut-bench and
// localut-serve, inspected with `go tool pprof`).
package prof

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Start begins the requested profiles and returns a stop function to run
// at process exit (defer it from main; error exits should call it too —
// it is idempotent, so both may fire). Empty paths disable the matching
// profile. The CPU profile streams for the whole run; the heap profile is
// a single post-GC snapshot taken at stop, which is the view that shows
// steady-state retention rather than transient garbage.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: %w", err)
		}
	}
	var once sync.Once
	return func() {
		once.Do(func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if memPath != "" {
				f, err := os.Create(memPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "prof:", err)
					return
				}
				defer f.Close()
				runtime.GC() // snapshot live objects, not garbage
				if err := pprof.WriteHeapProfile(f); err != nil {
					fmt.Fprintln(os.Stderr, "prof:", err)
				}
			}
		})
	}, nil
}
