package prof

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartDisabled(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	// Idempotent and safe with both profiles disabled.
	stop()
	stop()
}

func TestStartCPUAndHeap(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to sample.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	stop()
	stop() // the error path may fire the same stop again

	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("profile %s not written: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("profile %s is empty", p)
		}
	}
}

func TestStartHeapOnly(t *testing.T) {
	mem := filepath.Join(t.TempDir(), "mem.pprof")
	stop, err := Start("", mem)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if fi, err := os.Stat(mem); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile missing or empty: %v", err)
	}
}

func TestStartBadCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no-such-dir", "cpu.pprof"), ""); err == nil {
		t.Fatal("uncreatable CPU profile path accepted")
	}
}

func TestStartBadMemPathSurvives(t *testing.T) {
	// A bad heap path fails at stop time (written to stderr), not at
	// start; the stop function must still be safe to call.
	stop, err := Start("", filepath.Join(t.TempDir(), "no-such-dir", "mem.pprof"))
	if err != nil {
		t.Fatal(err)
	}
	stop()
}
