package hostops

import (
	"math"
	"math/rand"
	"testing"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := make([]float64, 4*7)
	for i := range x {
		x[i] = rng.NormFloat64() * 10
	}
	if err := Softmax(x, 4, 7); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		sum := 0.0
		for c := 0; c < 7; c++ {
			v := x[r*7+c]
			if v < 0 || v > 1 {
				t.Fatalf("softmax value %g outside [0,1]", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("row %d sums to %g", r, sum)
		}
	}
}

func TestSoftmaxStability(t *testing.T) {
	// Huge logits must not overflow.
	x := []float64{1e30, 1e30 - 1, 0}
	if err := Softmax(x, 1, 3); err != nil {
		t.Fatal(err)
	}
	for _, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("unstable softmax: %v", x)
		}
	}
}

func TestSoftmaxValidation(t *testing.T) {
	if err := Softmax(make([]float64, 5), 2, 3); err == nil {
		t.Error("accepted wrong shape")
	}
}

func TestLayerNormMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := make([]float64, 3*64)
	for i := range x {
		x[i] = rng.NormFloat64()*3 + 5
	}
	if err := LayerNorm(x, 3, 64, nil, nil); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 3; r++ {
		var mean, sq float64
		for c := 0; c < 64; c++ {
			mean += x[r*64+c]
			sq += x[r*64+c] * x[r*64+c]
		}
		mean /= 64
		variance := sq/64 - mean*mean
		if math.Abs(mean) > 1e-9 || math.Abs(variance-1) > 1e-3 {
			t.Errorf("row %d: mean %g var %g", r, mean, variance)
		}
	}
}

func TestLayerNormAffine(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	gamma := []float64{2, 2, 2, 2}
	beta := []float64{1, 1, 1, 1}
	if err := LayerNorm(x, 1, 4, gamma, beta); err != nil {
		t.Fatal(err)
	}
	mean := (x[0] + x[1] + x[2] + x[3]) / 4
	if math.Abs(mean-1) > 1e-9 { // beta shifts the mean to 1
		t.Errorf("affine mean %g, want 1", mean)
	}
	if err := LayerNorm(x, 1, 4, []float64{1}, nil); err == nil {
		t.Error("accepted wrong gamma length")
	}
}

func TestGELU(t *testing.T) {
	x := []float64{-10, -1, 0, 1, 10}
	GELU(x)
	if x[2] != 0 {
		t.Errorf("GELU(0) = %g", x[2])
	}
	if math.Abs(x[3]-0.841192) > 1e-3 {
		t.Errorf("GELU(1) = %g, want ~0.8412", x[3])
	}
	if math.Abs(x[4]-10) > 1e-6 {
		t.Errorf("GELU(10) = %g, want ~10", x[4])
	}
	if math.Abs(x[0]) > 1e-6 {
		t.Errorf("GELU(-10) = %g, want ~0", x[0])
	}
}

func TestAddInPlace(t *testing.T) {
	a := []float64{1, 2}
	if err := AddInPlace(a, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if a[0] != 4 || a[1] != 6 {
		t.Errorf("residual: %v", a)
	}
	if err := AddInPlace(a, []float64{1}); err == nil {
		t.Error("accepted mismatched lengths")
	}
}

func TestAttentionUniformValues(t *testing.T) {
	// With identical keys, attention weights are uniform and the output is
	// the mean of the values.
	const tokens, hidden, heads = 3, 4, 2
	q := make([]float64, tokens*hidden)
	k := make([]float64, tokens*hidden)
	v := make([]float64, tokens*hidden)
	for i := range v {
		v[i] = float64(i)
	}
	out, err := Attention(q, k, v, tokens, hidden, heads)
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < hidden; d++ {
		want := (v[0*hidden+d] + v[1*hidden+d] + v[2*hidden+d]) / 3
		for i := 0; i < tokens; i++ {
			if math.Abs(out[i*hidden+d]-want) > 1e-9 {
				t.Fatalf("out[%d][%d] = %g, want %g", i, d, out[i*hidden+d], want)
			}
		}
	}
}

func TestAttentionSharpSelection(t *testing.T) {
	// A query aligned strongly with one key must select that key's value.
	const tokens, hidden, heads = 2, 2, 1
	q := []float64{10, 0, 0, 10}
	k := []float64{10, 0, 0, 10}
	v := []float64{1, 2, 3, 4}
	out, err := Attention(q, k, v, tokens, hidden, heads)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1) > 1e-6 || math.Abs(out[3]-4) > 1e-6 {
		t.Errorf("selection failed: %v", out)
	}
}

func TestAttentionValidation(t *testing.T) {
	if _, err := Attention(make([]float64, 4), make([]float64, 4), make([]float64, 4), 2, 2, 3); err == nil {
		t.Error("accepted hidden not divisible by heads")
	}
	if _, err := Attention(make([]float64, 3), make([]float64, 4), make([]float64, 4), 2, 2, 1); err == nil {
		t.Error("accepted short q")
	}
}
