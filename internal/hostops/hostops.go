// Package hostops implements the host-resident fp32 operators of Fig. 8 —
// softmax, layer normalization, GELU, residual adds and multi-head
// attention — as real computations. The dnn package prices these with a
// flops model for timing; hostops supplies the arithmetic so an end-to-end
// transformer forward pass can run numerically through the simulated PIM
// GEMMs (see examples/transformerforward).
package hostops

import (
	"fmt"
	"math"
)

// Softmax applies a numerically-stable softmax over each row of a
// rows x cols matrix in place.
func Softmax(x []float64, rows, cols int) error {
	if len(x) != rows*cols {
		return fmt.Errorf("hostops: softmax shape %dx%d != len %d", rows, cols, len(x))
	}
	for r := 0; r < rows; r++ {
		row := x[r*cols : (r+1)*cols]
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		sum := 0.0
		for i, v := range row {
			e := math.Exp(v - max)
			row[i] = e
			sum += e
		}
		for i := range row {
			row[i] /= sum
		}
	}
	return nil
}

// LayerNorm normalizes each row to zero mean and unit variance, then
// applies the affine gamma/beta parameters (pass nil for identity).
func LayerNorm(x []float64, rows, cols int, gamma, beta []float64) error {
	if len(x) != rows*cols {
		return fmt.Errorf("hostops: layernorm shape %dx%d != len %d", rows, cols, len(x))
	}
	if gamma != nil && len(gamma) != cols {
		return fmt.Errorf("hostops: gamma length %d != %d", len(gamma), cols)
	}
	if beta != nil && len(beta) != cols {
		return fmt.Errorf("hostops: beta length %d != %d", len(beta), cols)
	}
	const eps = 1e-5
	for r := 0; r < rows; r++ {
		row := x[r*cols : (r+1)*cols]
		mean := 0.0
		for _, v := range row {
			mean += v
		}
		mean /= float64(cols)
		variance := 0.0
		for _, v := range row {
			d := v - mean
			variance += d * d
		}
		variance /= float64(cols)
		inv := 1 / math.Sqrt(variance+eps)
		for i := range row {
			v := (row[i] - mean) * inv
			if gamma != nil {
				v *= gamma[i]
			}
			if beta != nil {
				v += beta[i]
			}
			row[i] = v
		}
	}
	return nil
}

// GELU applies the tanh-approximation GELU activation in place.
func GELU(x []float64) {
	const c = 0.7978845608028654 // sqrt(2/pi)
	for i, v := range x {
		x[i] = 0.5 * v * (1 + math.Tanh(c*(v+0.044715*v*v*v)))
	}
}

// AddInPlace accumulates b into a (residual connection).
func AddInPlace(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("hostops: residual lengths %d != %d", len(a), len(b))
	}
	for i := range a {
		a[i] += b[i]
	}
	return nil
}

// Attention computes standard multi-head scaled dot-product attention for
// one sequence: q, k, v are tokens x hidden row-major with hidden split
// into heads. Returns tokens x hidden.
func Attention(q, k, v []float64, tokens, hidden, heads int) ([]float64, error) {
	if hidden%heads != 0 {
		return nil, fmt.Errorf("hostops: hidden %d not divisible by %d heads", hidden, heads)
	}
	for _, m := range [][]float64{q, k, v} {
		if len(m) != tokens*hidden {
			return nil, fmt.Errorf("hostops: attention operand length %d != %d", len(m), tokens*hidden)
		}
	}
	dHead := hidden / heads
	invSqrt := 1 / math.Sqrt(float64(dHead))
	out := make([]float64, tokens*hidden)
	scores := make([]float64, tokens*tokens)
	for h := 0; h < heads; h++ {
		off := h * dHead
		for i := 0; i < tokens; i++ {
			for j := 0; j < tokens; j++ {
				s := 0.0
				for d := 0; d < dHead; d++ {
					s += q[i*hidden+off+d] * k[j*hidden+off+d]
				}
				scores[i*tokens+j] = s * invSqrt
			}
		}
		if err := Softmax(scores, tokens, tokens); err != nil {
			return nil, err
		}
		for i := 0; i < tokens; i++ {
			for d := 0; d < dHead; d++ {
				s := 0.0
				for j := 0; j < tokens; j++ {
					s += scores[i*tokens+j] * v[j*hidden+off+d]
				}
				out[i*hidden+off+d] = s
			}
		}
	}
	return out, nil
}
