// Package energy prices the event counts the PIM simulator accumulates into
// joules, for the Fig. 14 / Fig. 17(b) energy comparisons.
//
// The per-event constants follow published DRAM-PIM characterizations
// (UPMEM measurements in Gómez-Luna et al., IGSC'21; DRAM access energies
// from CACTI-class models): an in-order DPU instruction costs tens of pJ,
// DRAM bank row access amortizes to a few pJ/bit, SRAM (WRAM) access is an
// order of magnitude cheaper, and host DDR4 transfers also amortize to
// pJ/bit plus the host package overhead. Absolute joules are not the
// reproduction target — the paper's own energy figures are measured on a
// different wall — but the *ratios* between kernels follow from the event
// mix, which these constants price consistently.
package energy

import (
	"fmt"

	"github.com/ais-snu/localut/internal/pim"
)

// Model holds per-event energies in joules.
type Model struct {
	// InstrJ is the energy of one DPU instruction (pipeline + register
	// file + control of a 350 MHz in-order core on a DRAM process).
	InstrJ float64
	// Mul8J is the extra energy of the 8-bit multiplier datapath.
	Mul8J float64
	// DMAByteJ is the per-byte MRAM <-> WRAM DMA energy (row activation
	// amortized over bursts).
	DMAByteJ float64
	// WRAMAccessJ is a 4-byte-class SRAM scratchpad access.
	WRAMAccessJ float64
	// HostLinkByteJ is the per-byte host <-> PIM DDR4 channel energy
	// including PHY and host memory-controller share.
	HostLinkByteJ float64
	// HostOpJ is the per-scalar-op host CPU energy (quantize/sort/pack,
	// softmax and friends), amortized Xeon-class core energy.
	HostOpJ float64
	// StaticW is the static power of the active PIM ranks plus host,
	// charged over the execution's wall time.
	StaticW float64
}

// Default returns the calibrated constants.
func Default() Model {
	return Model{
		InstrJ:        55e-12,
		Mul8J:         25e-12,
		DMAByteJ:      40e-12,
		WRAMAccessJ:   8e-12,
		HostLinkByteJ: 60e-12,
		HostOpJ:       150e-12,
		StaticW:       90,
	}
}

// Validate rejects nonsensical models.
func (m Model) Validate() error {
	if m.InstrJ < 0 || m.Mul8J < 0 || m.DMAByteJ < 0 || m.WRAMAccessJ < 0 ||
		m.HostLinkByteJ < 0 || m.HostOpJ < 0 || m.StaticW < 0 {
		return fmt.Errorf("energy: negative constant in model %+v", m)
	}
	return nil
}

// Report itemizes the energy of one execution.
type Report struct {
	DynamicJ map[string]float64
	StaticJ  float64
	TotalJ   float64
}

// Price converts an aggregated meter (event counts across all active banks),
// host scalar-op count and wall-clock seconds into joules. The total is
// summed in a fixed component order: float addition is not associative, so
// ranging over the map would make TotalJ depend on Go's randomized map
// iteration and identical executions could differ in the last ulp.
func (m Model) Price(meter *pim.Meter, hostOps int64, wallSeconds float64) *Report {
	components := []struct {
		name string
		j    float64
	}{
		{"dpu_instr", float64(meter.Count(pim.EvInstr)) * m.InstrJ},
		{"dpu_mul", float64(meter.Count(pim.EvMul8))*(m.InstrJ+m.Mul8J) + float64(meter.Count(pim.EvMul32))*(m.InstrJ+m.Mul8J)*4},
		{"dma", float64(meter.Count(pim.EvDMARead)+meter.Count(pim.EvDMAWrite)) * m.DMAByteJ},
		{"wram", float64(meter.Count(pim.EvWRAMAccess)) * m.WRAMAccessJ},
		{"host_link", float64(meter.Count(pim.EvHostToPIM)+meter.Count(pim.EvPIMToHost)) * m.HostLinkByteJ},
		{"host_cpu", float64(hostOps) * m.HostOpJ},
	}
	r := &Report{DynamicJ: make(map[string]float64, len(components)), StaticJ: m.StaticW * wallSeconds}
	r.TotalJ = r.StaticJ
	for _, c := range components {
		r.DynamicJ[c.name] = c.j
		r.TotalJ += c.j
	}
	return r
}
