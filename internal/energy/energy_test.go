package energy

import (
	"testing"

	"github.com/ais-snu/localut/internal/pim"
)

func TestDefaultValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsNegatives(t *testing.T) {
	m := Default()
	m.InstrJ = -1
	if err := m.Validate(); err == nil {
		t.Error("negative InstrJ accepted")
	}
}

func TestPriceAdditivity(t *testing.T) {
	m := Default()
	var a, b pim.Meter
	a.Counts[pim.EvInstr] = 1000
	a.Counts[pim.EvDMARead] = 4096
	b.Counts[pim.EvInstr] = 500
	b.Counts[pim.EvMul8] = 200

	ra := m.Price(&a, 100, 0)
	rb := m.Price(&b, 50, 0)
	var sum pim.Meter
	sum.Counts[pim.EvInstr] = 1500
	sum.Counts[pim.EvDMARead] = 4096
	sum.Counts[pim.EvMul8] = 200
	rs := m.Price(&sum, 150, 0)
	if diff := rs.TotalJ - (ra.TotalJ + rb.TotalJ); diff > 1e-15 || diff < -1e-15 {
		t.Errorf("energy not additive: %g vs %g", rs.TotalJ, ra.TotalJ+rb.TotalJ)
	}
}

func TestPriceComponents(t *testing.T) {
	m := Default()
	var meter pim.Meter
	meter.Counts[pim.EvInstr] = 1_000_000
	meter.Counts[pim.EvHostToPIM] = 1 << 20
	r := m.Price(&meter, 0, 2.0)
	if r.DynamicJ["dpu_instr"] != 1_000_000*m.InstrJ {
		t.Errorf("instr energy %g", r.DynamicJ["dpu_instr"])
	}
	if r.StaticJ != 2.0*m.StaticW {
		t.Errorf("static energy %g", r.StaticJ)
	}
	if r.TotalJ <= r.StaticJ {
		t.Error("total must include dynamic terms")
	}
}

func TestMul32CostsMoreThanMul8(t *testing.T) {
	m := Default()
	var m8, m32 pim.Meter
	m8.Counts[pim.EvMul8] = 100
	m32.Counts[pim.EvMul32] = 100
	if m.Price(&m32, 0, 0).TotalJ <= m.Price(&m8, 0, 0).TotalJ {
		t.Error("mul32 should cost more than mul8")
	}
}
