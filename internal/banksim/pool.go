package banksim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// This file is the sharded multi-bank execution layer: a PIM system has
// thousands of independent banks, so simulating them is embarrassingly
// parallel on the host. ForEachShard is the deterministic shard scheduler
// (also reused by the gemm engine); RunShards drives one unit simulator
// over every bank's share and aggregates deterministically.

// ForEachShard executes fn(task) for every task in [0, n) on a pool of
// workers. Shard s owns the strided task set {s, s+W, s+2W, ...} — a fixed,
// scheduling-independent assignment — and outcomes must be written to
// task-indexed slots by the caller, so successful results never depend on
// scheduling. Once any task fails, shards stop picking up new tasks and the
// lowest-indexed recorded error is returned; which failing task got recorded
// first may vary when several fail concurrently, but success vs failure
// never does. workers <= 1 (or n == 1) degenerates to a plain loop on the
// calling goroutine that stops at the first failure; workers <= 0 uses
// runtime.NumCPU().
func ForEachShard(n, workers int, fn func(task int) error) error {
	return ForEachShardArena(n, workers,
		func() struct{} { return struct{}{} },
		func(struct{}) {},
		func(_ struct{}, task int) error { return fn(task) })
}

// ForEachShardArena is ForEachShard with a per-worker execution arena: each
// worker acquires one context from get before its first task, threads it
// through every task it owns, and returns it to put when its strided task
// set is exhausted. Contexts hold reusable state (a simulated DPU, scratch
// buffers, a Bank state machine) so a worker that executes thousands of
// tasks allocates once; because the shard->task assignment and all outcome
// slots are fixed, recycling cannot perturb results. get/put must be safe
// for concurrent use; fn receives each context from exactly one goroutine
// at a time.
func ForEachShardArena[C any](n, workers int, get func() C, put func(C), fn func(ctx C, task int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		ctx := get()
		defer put(ctx)
		for i := 0; i < n; i++ {
			if err := fn(ctx, i); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, n)
	var failed atomic.Bool
	var wg sync.WaitGroup
	for s := 0; s < workers; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			ctx := get()
			defer put(ctx)
			for i := shard; i < n; i += workers {
				if failed.Load() {
					return
				}
				if errs[i] = fn(ctx, i); errs[i] != nil {
					failed.Store(true)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Runner is any per-bank unit simulator (SIMDPIM, LUTPIM). Implementations
// must be safe for concurrent RunGEMM calls; both unit designs here are —
// each call builds its own Bank state machine.
type Runner interface {
	RunGEMM(GEMMSpec) (*Result, error)
}

// ArenaRunner is an optional Runner extension: RunGEMMOn executes on a
// caller-owned Bank (reset by the callee before use), letting a shard
// worker reuse one Bank state machine across every share it simulates
// instead of allocating per call. Results are identical to RunGEMM.
// Implementations must be safe for concurrent RunGEMMOn calls on distinct
// Banks.
type ArenaRunner interface {
	RunGEMMOn(b *Bank, g GEMMSpec) (*Result, error)
}

// Grid aggregates a multi-bank run deterministically: banks execute
// concurrently on the PIM side, so wall-clock is the slowest bank while
// command and MAC counts sum over all banks.
type Grid struct {
	// PerBank holds each bank's result in bank order. Banks with identical
	// shares alias the same Result (see RunShards).
	PerBank []*Result
	// Cycles and Seconds are the max over banks (system wall-clock).
	Cycles  int64
	Seconds float64
	// Command totals over all banks.
	Reads, Writes, Activates, RowHits, MACs int64
}

// RunShards simulates every bank share in specs on the unit across a pool
// of `parallelism` workers (0 = NumCPU, 1 = serial) and merges the results
// in bank order. Identical shares are simulated once and shared — the
// common case of an evenly divided GEMM costs one bank simulation however
// many banks the system has, while ragged edges pay only for their distinct
// shapes.
func RunShards(unit Runner, specs []GEMMSpec, parallelism int) (*Grid, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("banksim: no bank shares to run")
	}
	// Dedup: bank -> index of the first bank with the same share.
	owner := make([]int, len(specs))
	first := make(map[GEMMSpec]int, 4)
	distinct := make([]int, 0, 4)
	for i, g := range specs {
		if j, ok := first[g]; ok {
			owner[i] = j
			continue
		}
		first[g] = i
		owner[i] = i
		distinct = append(distinct, i)
	}

	results := make([]*Result, len(specs))
	arena, pooled := unit.(ArenaRunner)
	err := ForEachShardArena(len(distinct), parallelism,
		func() *Bank { return new(Bank) },
		func(*Bank) {},
		func(b *Bank, t int) error {
			i := distinct[t]
			var r *Result
			var err error
			if pooled {
				r, err = arena.RunGEMMOn(b, specs[i])
			} else {
				r, err = unit.RunGEMM(specs[i])
			}
			if err != nil {
				return fmt.Errorf("banksim: bank %d: %w", i, err)
			}
			results[i] = r
			return nil
		})
	if err != nil {
		return nil, err
	}

	grid := &Grid{PerBank: make([]*Result, len(specs))}
	for i := range specs {
		r := results[owner[i]]
		grid.PerBank[i] = r
		if r.Cycles > grid.Cycles {
			grid.Cycles = r.Cycles
		}
		if r.Seconds > grid.Seconds {
			grid.Seconds = r.Seconds
		}
		grid.Reads += r.Reads
		grid.Writes += r.Writes
		grid.Activates += r.Activates
		grid.RowHits += r.RowHits
		grid.MACs += r.MACs
	}
	return grid, nil
}

// SplitGEMM partitions an M x K x N GEMM over a channels x banks system the
// way the bank-level studies map it (M across channels, N across banks, full
// K per bank) and returns one share per bank in bank order. Remainders are
// spread one row/column at a time over the leading channels/banks, so at
// most four distinct share shapes exist and the largest equals the
// ceil-division share (the system's critical path).
func SplitGEMM(m, k, n, channels, banks int) ([]GEMMSpec, error) {
	if channels < 1 || banks < 1 {
		return nil, fmt.Errorf("banksim: bad system %dx%d", channels, banks)
	}
	if m < channels || n < banks {
		return nil, fmt.Errorf("banksim: GEMM %dx%dx%d smaller than the %dx%d system",
			m, k, n, channels, banks)
	}
	specs := make([]GEMMSpec, 0, channels*banks)
	for c := 0; c < channels; c++ {
		mc := m / channels
		if c < m%channels {
			mc++
		}
		for b := 0; b < banks; b++ {
			nb := n / banks
			if b < n%banks {
				nb++
			}
			specs = append(specs, GEMMSpec{M: mc, K: k, N: nb})
		}
	}
	return specs, nil
}
