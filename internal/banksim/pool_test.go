package banksim

import (
	"fmt"
	"testing"
)

func TestForEachShardDeterministicErrors(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEachShard(16, workers, func(i int) error {
			if i == 3 || i == 11 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: got %v, want lowest-indexed error", workers, err)
		}
	}
}

func TestForEachShardCoversAllTasks(t *testing.T) {
	hit := make([]bool, 37)
	if err := ForEachShard(len(hit), 5, func(i int) error { hit[i] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("task %d never ran", i)
		}
	}
}

// TestRunShardsMatchesSerial checks that the pooled multi-bank run is
// bit-identical to the serial one and to a direct single-bank simulation of
// the critical-path share.
func TestRunShardsMatchesSerial(t *testing.T) {
	tm := HBM2()
	unit := NewSIMDPIM(tm)
	specs, err := SplitGEMM(1000, 512, 130, 4, 16) // ragged on both axes
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunShards(unit, specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunShards(unit, specs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Cycles != parallel.Cycles || serial.Reads != parallel.Reads ||
		serial.MACs != parallel.MACs || serial.Activates != parallel.Activates {
		t.Fatalf("serial and parallel grids diverge:\n%+v\n%+v", serial, parallel)
	}

	// The system's wall-clock is the ceil-division share's time.
	critical, err := unit.RunGEMM(GEMMSpec{M: 250, K: 512, N: 9})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Cycles != critical.Cycles {
		t.Fatalf("grid cycles %d != critical-path bank cycles %d", serial.Cycles, critical.Cycles)
	}

	// MAC totals must cover the whole problem exactly.
	if want := int64(1000) * 512 * 130; serial.MACs != want {
		t.Fatalf("grid MACs %d, want %d", serial.MACs, want)
	}
}

func TestSplitGEMMCoversProblem(t *testing.T) {
	specs, err := SplitGEMM(1000, 16, 130, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 64 {
		t.Fatalf("got %d shares, want 64", len(specs))
	}
	// Sum M over one bank column and N over one channel row.
	mTot := 0
	for c := 0; c < 4; c++ {
		mTot += specs[c*16].M
	}
	nTot := 0
	for b := 0; b < 16; b++ {
		nTot += specs[b].N
	}
	if mTot != 1000 || nTot != 130 {
		t.Fatalf("shares cover %dx%d, want 1000x130", mTot, nTot)
	}
}
