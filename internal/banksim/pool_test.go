package banksim

import (
	"fmt"
	"sync"
	"testing"
)

func TestForEachShardDeterministicErrors(t *testing.T) {
	for _, workers := range []int{1, 4} {
		err := ForEachShard(16, workers, func(i int) error {
			if i == 3 || i == 11 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 3 failed" {
			t.Fatalf("workers=%d: got %v, want lowest-indexed error", workers, err)
		}
	}
}

func TestForEachShardCoversAllTasks(t *testing.T) {
	hit := make([]bool, 37)
	if err := ForEachShard(len(hit), 5, func(i int) error { hit[i] = true; return nil }); err != nil {
		t.Fatal(err)
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("task %d never ran", i)
		}
	}
}

// TestRunShardsMatchesSerial checks that the pooled multi-bank run is
// bit-identical to the serial one and to a direct single-bank simulation of
// the critical-path share.
func TestRunShardsMatchesSerial(t *testing.T) {
	tm := HBM2()
	unit := NewSIMDPIM(tm)
	specs, err := SplitGEMM(1000, 512, 130, 4, 16) // ragged on both axes
	if err != nil {
		t.Fatal(err)
	}
	serial, err := RunShards(unit, specs, 1)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunShards(unit, specs, 8)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Cycles != parallel.Cycles || serial.Reads != parallel.Reads ||
		serial.MACs != parallel.MACs || serial.Activates != parallel.Activates {
		t.Fatalf("serial and parallel grids diverge:\n%+v\n%+v", serial, parallel)
	}

	// The system's wall-clock is the ceil-division share's time.
	critical, err := unit.RunGEMM(GEMMSpec{M: 250, K: 512, N: 9})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Cycles != critical.Cycles {
		t.Fatalf("grid cycles %d != critical-path bank cycles %d", serial.Cycles, critical.Cycles)
	}

	// MAC totals must cover the whole problem exactly.
	if want := int64(1000) * 512 * 130; serial.MACs != want {
		t.Fatalf("grid MACs %d, want %d", serial.MACs, want)
	}
}

func TestSplitGEMMCoversProblem(t *testing.T) {
	specs, err := SplitGEMM(1000, 16, 130, 4, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 64 {
		t.Fatalf("got %d shares, want 64", len(specs))
	}
	// Sum M over one bank column and N over one channel row.
	mTot := 0
	for c := 0; c < 4; c++ {
		mTot += specs[c*16].M
	}
	nTot := 0
	for b := 0; b < 16; b++ {
		nTot += specs[b].N
	}
	if mTot != 1000 || nTot != 130 {
		t.Fatalf("shares cover %dx%d, want 1000x130", mTot, nTot)
	}
}

// TestForEachShardArenaContexts checks the per-worker context contract:
// every task sees exactly one context, each context is owned by one worker
// at a time, and all contexts are returned.
func TestForEachShardArenaContexts(t *testing.T) {
	const n, workers = 100, 7
	type ctx struct {
		id    int
		tasks []int
	}
	var mu sync.Mutex
	var made, returned int
	seen := make([]*ctx, 0, workers)
	err := ForEachShardArena(n, workers,
		func() *ctx {
			mu.Lock()
			defer mu.Unlock()
			c := &ctx{id: made}
			made++
			seen = append(seen, c)
			return c
		},
		func(c *ctx) {
			mu.Lock()
			returned++
			mu.Unlock()
		},
		func(c *ctx, task int) error {
			c.tasks = append(c.tasks, task) // un-synchronized: -race guards ownership
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if made != workers || returned != workers {
		t.Fatalf("made %d contexts, returned %d, want %d each", made, returned, workers)
	}
	covered := make([]bool, n)
	for _, c := range seen {
		for _, task := range c.tasks {
			if covered[task] {
				t.Fatalf("task %d ran twice", task)
			}
			covered[task] = true
		}
	}
	for i, ok := range covered {
		if !ok {
			t.Fatalf("task %d never ran", i)
		}
	}
}

// TestRunGEMMOnMatchesRunGEMM pins the ArenaRunner contract for both unit
// simulators: a recycled Bank produces bit-identical results to a fresh
// one, including when shares of different shapes alternate through it.
func TestRunGEMMOnMatchesRunGEMM(t *testing.T) {
	lutUnit, err := NewLUTPIM(HBM2(), 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := lutUnit.ConfigureSlices(256, 128); err != nil {
		t.Fatal(err)
	}
	units := []struct {
		name string
		r    Runner
	}{
		{"SIMDPIM", NewSIMDPIM(HBM2())},
		{"LUTPIM", lutUnit},
	}
	shapes := []GEMMSpec{{M: 16, K: 64, N: 8}, {M: 5, K: 33, N: 3}, {M: 16, K: 64, N: 8}}
	for _, u := range units {
		ar, ok := u.r.(ArenaRunner)
		if !ok {
			t.Fatalf("%s does not implement ArenaRunner", u.name)
		}
		b := new(Bank)
		for i, g := range shapes {
			want, err := u.r.RunGEMM(g)
			if err != nil {
				t.Fatal(err)
			}
			got, err := ar.RunGEMMOn(b, g)
			if err != nil {
				t.Fatal(err)
			}
			if *got != *want {
				t.Fatalf("%s share %d: pooled bank diverges:\npooled %+v\nfresh  %+v", u.name, i, got, want)
			}
		}
	}
}
