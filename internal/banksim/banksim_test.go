package banksim

import (
	"testing"
)

func TestBankRowBuffer(t *testing.T) {
	tm := HBM2()
	b := NewBank(tm)
	// First access: ACT + RD on a precharged bank.
	b.Read(0, 32)
	if b.Cycles != tm.TRCD+tm.TCL {
		t.Errorf("first access cycles %d", b.Cycles)
	}
	if b.Activates != 1 || b.RowHits != 0 {
		t.Errorf("act=%d hits=%d", b.Activates, b.RowHits)
	}
	// Same-row access: row hit at tCCD.
	c0 := b.Cycles
	b.Read(64, 32)
	if b.Cycles-c0 != tm.TCCD {
		t.Errorf("row hit cycles %d", b.Cycles-c0)
	}
	// Different-row access: PRE + ACT + RD.
	c0 = b.Cycles
	b.Read(tm.RowBytes*5, 32)
	if b.Cycles-c0 != tm.TRP+tm.TRCD+tm.TCL {
		t.Errorf("row miss cycles %d", b.Cycles-c0)
	}
}

func TestReadBurstCount(t *testing.T) {
	b := NewBank(HBM2())
	b.Read(0, 1024) // one full row: 32 bursts
	if b.Reads != 32 {
		t.Errorf("reads = %d, want 32", b.Reads)
	}
	if b.Activates != 1 {
		t.Errorf("activates = %d, want 1 (sequential stream)", b.Activates)
	}
}

func TestTimingValidation(t *testing.T) {
	bad := HBM2()
	bad.TRCD = 0
	if err := bad.Validate(); err == nil {
		t.Error("accepted zero tRCD")
	}
	bad = HBM2()
	bad.RowBytes = 33 // not a burst multiple
	if err := bad.Validate(); err == nil {
		t.Error("accepted misaligned row size")
	}
}

func TestSIMDPIMGemm(t *testing.T) {
	s := NewSIMDPIM(HBM2())
	res, err := s.RunGEMM(GEMMSpec{M: 64, K: 128, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.MACs != 64*128*8 {
		t.Errorf("MACs = %d", res.MACs)
	}
	if res.Cycles <= 0 || res.Seconds <= 0 {
		t.Errorf("cycles %d seconds %g", res.Cycles, res.Seconds)
	}
	// Weight streaming dominates: roughly M*N*K*2/32 read bursts.
	wantReads := int64(64*8) * 128 * 2 / 32
	if res.Reads < wantReads {
		t.Errorf("reads = %d, want >= %d", res.Reads, wantReads)
	}
}

func TestLUTPIMBeatsSIMDAtLowBits(t *testing.T) {
	tm := HBM2()
	g := GEMMSpec{M: 256, K: 256, N: 4}
	s := NewSIMDPIM(tm)
	simd, err := s.RunGEMM(g)
	if err != nil {
		t.Fatal(err)
	}
	// W1A3-class config: p=8, 1-byte packed vectors, 1-byte entries,
	// 256-entry slices.
	u, err := NewLUTPIM(tm, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.ConfigureSlices(256, 256); err != nil {
		t.Fatal(err)
	}
	lut, err := u.RunGEMM(g)
	if err != nil {
		t.Fatal(err)
	}
	if lut.MACs != simd.MACs {
		t.Fatalf("MAC counts differ: %d vs %d", lut.MACs, simd.MACs)
	}
	speedup := float64(simd.Cycles) / float64(lut.Cycles)
	if speedup < 1.5 {
		t.Errorf("W1-class LUT-PIM speedup %.2f, want > 1.5", speedup)
	}
}

func TestLUTPIMW4A4SmallGain(t *testing.T) {
	tm := HBM2()
	// Fig. 20-representative per-bank share: slice loads must amortize
	// over a realistic M before the W4A4 ratio is meaningful.
	g := GEMMSpec{M: 1024, K: 1024, N: 16}
	simd, err := NewSIMDPIM(tm).RunGEMM(g)
	if err != nil {
		t.Fatal(err)
	}
	// W4A4-class: p=2, 1-byte vectors, 1-byte entries, 256-entry slices.
	u, err := NewLUTPIM(tm, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.ConfigureSlices(256, 256); err != nil {
		t.Fatal(err)
	}
	lut, err := u.RunGEMM(g)
	if err != nil {
		t.Fatal(err)
	}
	speedup := float64(simd.Cycles) / float64(lut.Cycles)
	if speedup < 0.8 || speedup > 2.0 {
		t.Errorf("W4A4-class speedup %.2f, want modest (paper: 1.17)", speedup)
	}
}

func TestLUTPIMValidation(t *testing.T) {
	tm := HBM2()
	if _, err := NewLUTPIM(tm, 0, 1, 1); err == nil {
		t.Error("accepted p=0")
	}
	u, err := NewLUTPIM(tm, 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.ConfigureSlices(1024, 256); err == nil {
		t.Error("accepted slice larger than unit SRAM")
	}
	if _, err := u.RunGEMM(GEMMSpec{M: 8, K: 8, N: 1}); err == nil {
		t.Error("ran without configured slices")
	}
	if err := u.ConfigureSlices(256, 128); err != nil {
		t.Fatal(err)
	}
	if _, err := u.RunGEMM(GEMMSpec{M: 0, K: 8, N: 1}); err == nil {
		t.Error("accepted M=0")
	}
}

func TestSlicesScatterCausesActivates(t *testing.T) {
	tm := HBM2()
	u, err := NewLUTPIM(tm, 8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := u.ConfigureSlices(256, 256); err != nil {
		t.Fatal(err)
	}
	res, err := u.RunGEMM(GEMMSpec{M: 64, K: 256, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every slice load lands on a pseudo-random LUT row: expect at least
	// one activate per group slice.
	groups := int64(256 / 8)
	if res.Activates < groups*4 {
		t.Errorf("activates = %d, want >= %d (scattered slices)", res.Activates, groups*4)
	}
}
