package banksim

import (
	"math/rand"
	"testing"
)

// refBank replays the per-burst reference semantics (one access per burst)
// against which the row-grouped stream fast path must stay bit-identical.
type refBank struct{ b *Bank }

func (r refBank) read(addr, n int64) {
	for off := int64(0); off < n; off += r.b.T.BurstBytes {
		r.b.access(addr + off)
		r.b.Reads++
	}
}

func (r refBank) write(addr, n int64) {
	for off := int64(0); off < n; off += r.b.T.BurstBytes {
		r.b.access(addr + off)
		r.b.Writes++
	}
}

// TestStreamMatchesPerBurstReference drives fast and reference banks with
// identical random access sequences — unaligned addresses, row-crossing
// spans, interleaved reads and writes — and requires identical cycles and
// counters throughout.
func TestStreamMatchesPerBurstReference(t *testing.T) {
	for _, tm := range []Timing{HBM2(), DDR4()} {
		rng := rand.New(rand.NewSource(42))
		fast := NewBank(tm)
		ref := refBank{b: NewBank(tm)}
		for i := 0; i < 2000; i++ {
			addr := rng.Int63n(1 << 20)
			n := 1 + rng.Int63n(4*tm.RowBytes)
			if rng.Intn(2) == 0 {
				fast.Read(addr, n)
				ref.read(addr, n)
			} else {
				fast.Write(addr, n)
				ref.write(addr, n)
			}
			if fast.Cycles != ref.b.Cycles || fast.Reads != ref.b.Reads ||
				fast.Writes != ref.b.Writes || fast.Activates != ref.b.Activates ||
				fast.RowHits != ref.b.RowHits || fast.openRow != ref.b.openRow {
				t.Fatalf("step %d (addr=%d n=%d): fast %+v != ref %+v", i, addr, n, *fast, *ref.b)
			}
		}
	}
}

// TestStreamZeroLength checks the degenerate transfer is a no-op.
func TestStreamZeroLength(t *testing.T) {
	b := NewBank(HBM2())
	b.Read(128, 0)
	b.Write(128, 0)
	if b.Cycles != 0 || b.Reads != 0 || b.Writes != 0 {
		t.Fatalf("zero-length transfer charged: %+v", *b)
	}
}
