// Package banksim is the "in-house cycle-accurate simulator" of §VI-K: a
// Ramulator-class command-level DRAM bank timing model with pluggable
// per-bank processing units, used to study LoCaLUT on HBM-PIM-style
// bank-level PIM (Fig. 20) and its floating-point extension (Fig. 21a).
//
// Two unit designs are modelled on identical banks:
//
//   - SIMDPIM: the conventional bank-level PIM of HBM-PIM/AttAcc — a
//     16-lane fp16 MAC unit fed one 32-byte column burst per command.
//     Throughput is fixed by the lane count regardless of the operand's
//     logical precision.
//   - LUTPIM: LoCaLUT's replacement — sixteen 512 B canonical-LUT units
//     plus reordering units; one weight burst carries packed vectors for
//     all sixteen units, so each command retires 16*p MACs, at the price
//     of streaming LUT slices into the unit SRAMs whenever the activation
//     group batch advances.
//
// # Multi-bank sharded execution
//
// A bank-level PIM system is thousands of independent banks, so the package
// also provides the sharded multi-bank layer: SplitGEMM partitions a GEMM
// over a channels x banks system, RunShards drives a unit simulator over
// every share on a worker pool (deduplicating identical shares, since an
// evenly divided GEMM gives every bank the same work), and Grid aggregates
// deterministically — wall-clock is the slowest bank, command counts sum in
// bank order. ForEachShard, the deterministic shard scheduler underneath,
// is shared with the gemm engine's full-grid mode.
package banksim
