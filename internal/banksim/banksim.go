package banksim

import (
	"fmt"
)

// Timing holds the DRAM bank command timings (in device cycles) and
// geometry. Defaults follow an HBM2-class stack.
type Timing struct {
	TCK  float64 // ns per cycle
	TRCD int64   // ACT -> RD
	TCL  int64   // RD -> data
	TRP  int64   // PRE -> ACT
	TCCD int64   // column-to-column (burst gap)
	// RowBytes is the DRAM row (page) size; BurstBytes is the data moved
	// per column command.
	RowBytes   int64
	BurstBytes int64
}

// HBM2 returns the stack timing used for the bank-level PIM study.
func HBM2() Timing {
	return Timing{
		TCK: 1.0, TRCD: 14, TCL: 14, TRP: 14, TCCD: 2,
		RowBytes: 1024, BurstBytes: 32,
	}
}

// DDR4 returns commodity DIMM timings (DDR4-2400 class), for studying the
// bank-level designs on UPMEM-like substrates instead of an HBM stack.
func DDR4() Timing {
	return Timing{
		TCK: 0.833, TRCD: 17, TCL: 17, TRP: 17, TCCD: 4,
		RowBytes: 8192, BurstBytes: 64,
	}
}

// Validate rejects nonsense timings.
func (t Timing) Validate() error {
	if t.TCK <= 0 || t.TRCD <= 0 || t.TCL <= 0 || t.TRP <= 0 || t.TCCD <= 0 {
		return fmt.Errorf("banksim: nonpositive timing %+v", t)
	}
	if t.RowBytes <= 0 || t.BurstBytes <= 0 || t.RowBytes%t.BurstBytes != 0 {
		return fmt.Errorf("banksim: bad geometry row=%d burst=%d", t.RowBytes, t.BurstBytes)
	}
	return nil
}

// Bank is one DRAM bank's row-buffer state machine with cycle accounting.
type Bank struct {
	T       Timing
	openRow int64 // -1 when precharged
	Cycles  int64
	// Stats.
	Activates, RowHits, Reads, Writes int64
}

// NewBank returns a precharged bank.
func NewBank(t Timing) *Bank { return &Bank{T: t, openRow: -1} }

// reset returns the bank to the precharged zero-cycle state under the
// timing, recycling the struct for per-worker reuse (see ArenaRunner).
func (b *Bank) reset(t Timing) { *b = Bank{T: t, openRow: -1} }

// access applies the timing for one column command on the byte address. It
// is the per-burst reference semantics; the streaming entry points batch it
// row by row (see stream) and tests pin the equivalence.
func (b *Bank) access(addr int64) {
	row := addr / b.T.RowBytes
	switch {
	case b.openRow == row:
		b.Cycles += b.T.TCCD
		b.RowHits++
	case b.openRow < 0:
		b.Cycles += b.T.TRCD + b.T.TCL
		b.openRow = row
		b.Activates++
	default:
		b.Cycles += b.T.TRP + b.T.TRCD + b.T.TCL
		b.openRow = row
		b.Activates++
	}
}

// stream applies the timing of a sequential burst train over [addr, addr+n)
// in O(rows touched) instead of O(bursts): within one DRAM row only the
// first burst can miss, every subsequent burst is a TCCD row hit, so each
// row contributes one access() outcome plus a closed-form hit count. The
// counters and cycle total are bit-identical to burst-by-burst access.
// Returns the number of bursts issued.
func (b *Bank) stream(addr, n int64) int64 {
	if n <= 0 {
		return 0
	}
	total := (n + b.T.BurstBytes - 1) / b.T.BurstBytes
	done := int64(0)
	for done < total {
		cur := addr + done*b.T.BurstBytes
		rowEnd := (cur/b.T.RowBytes + 1) * b.T.RowBytes
		inRow := (rowEnd - cur + b.T.BurstBytes - 1) / b.T.BurstBytes
		if inRow > total-done {
			inRow = total - done
		}
		b.access(cur)
		b.Cycles += (inRow - 1) * b.T.TCCD
		b.RowHits += inRow - 1
		done += inRow
	}
	return total
}

// Read streams n bytes starting at addr through column commands.
func (b *Bank) Read(addr, n int64) {
	b.Reads += b.stream(addr, n)
}

// Write streams n bytes to addr.
func (b *Bank) Write(addr, n int64) {
	b.Writes += b.stream(addr, n)
}

// Seconds converts accumulated cycles to seconds.
func (b *Bank) Seconds() float64 { return float64(b.Cycles) * b.T.TCK * 1e-9 }

// GEMMSpec describes one bank's GEMM share for the unit simulators. Bytes
// per element are physical storage widths (fp16 for SIMD; packed codes for
// LUT designs).
type GEMMSpec struct {
	M, K, N int
}

// Validate rejects empty problems.
func (g GEMMSpec) Validate() error {
	if g.M <= 0 || g.K <= 0 || g.N <= 0 {
		return fmt.Errorf("banksim: invalid GEMM %+v", g)
	}
	return nil
}

// Result reports one simulated execution.
type Result struct {
	Cycles  int64
	Seconds float64
	// Commands and row behaviour for diagnostics.
	Reads, Writes, Activates, RowHits int64
	MACs                              int64
}

func result(b *Bank, macs int64) *Result {
	return &Result{
		Cycles: b.Cycles, Seconds: b.Seconds(),
		Reads: b.Reads, Writes: b.Writes,
		Activates: b.Activates, RowHits: b.RowHits,
		MACs: macs,
	}
}

// SIMDPIM models the HBM-PIM-style 16-lane fp16 MAC unit. Weights stream
// from the bank (2 bytes per element regardless of logical precision — the
// datapath is fixed fp16); activations are held in the unit register file
// per output column group; outputs write back once per row.
type SIMDPIM struct {
	Lanes int
	T     Timing
}

// NewSIMDPIM returns the 16-lane baseline.
func NewSIMDPIM(t Timing) *SIMDPIM { return &SIMDPIM{Lanes: 16, T: t} }

// RunGEMM simulates the command stream of one bank's M x K x N share.
func (s *SIMDPIM) RunGEMM(g GEMMSpec) (*Result, error) {
	return s.RunGEMMOn(new(Bank), g)
}

// RunGEMMOn is RunGEMM on a caller-owned Bank (reset here), the
// ArenaRunner entry point shard workers use to avoid per-share allocation.
func (s *SIMDPIM) RunGEMMOn(b *Bank, g GEMMSpec) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := s.T.Validate(); err != nil {
		return nil, err
	}
	b.reset(s.T)
	const elemBytes = 2 // fp16 datapath
	wBase := int64(0)
	aBase := int64(g.M) * int64(g.K) * elemBytes
	oBase := aBase + int64(g.K)*int64(g.N)*elemBytes

	for n := 0; n < g.N; n++ {
		// Load the activation column into the unit register file.
		b.Read(aBase+int64(n)*int64(g.K)*elemBytes, int64(g.K)*elemBytes)
		for m := 0; m < g.M; m++ {
			// Stream the weight row; each burst feeds Lanes MACs and the
			// MAC latency is pipelined behind the command stream.
			b.Read(wBase+int64(m)*int64(g.K)*elemBytes, int64(g.K)*elemBytes)
			// Output writeback, one element amortized per burst width.
			if n%int(s.T.BurstBytes/elemBytes) == 0 {
				b.Write(oBase+int64(m)*elemBytes, elemBytes)
			}
		}
	}
	return result(b, int64(g.M)*int64(g.K)*int64(g.N)), nil
}

// LUTPIM models the LoCaLUT bank-level design of Fig. 20(a): Units
// canonical-LUT SRAMs of UnitBytes each, fed by slice streams from the
// bank's LUT region and packed weight bursts.
type LUTPIM struct {
	Units     int
	UnitBytes int
	T         Timing
	// P is the packing degree; WeightRowBytes and EntryBytes the packed
	// vector and LUT entry widths; CanonColBytes and ReorderColBytes the
	// two slice columns streamed per activation group (they live in
	// different tables, so each load starts a fresh DRAM row).
	P               int
	WeightRowBytes  int
	EntryBytes      int
	CanonColBytes   int64
	ReorderColBytes int64
	// LookupsPerCycle is the per-unit SRAM lookup throughput (a reorder
	// access plus a canonical access per group gives 0.5).
	LookupsPerCycle float64
}

// NewLUTPIM configures the design for a packing degree and entry widths.
// Call ConfigureSlices before RunGEMM.
func NewLUTPIM(t Timing, p, weightRowBytes, entryBytes int) (*LUTPIM, error) {
	if p < 1 {
		return nil, fmt.Errorf("banksim: p=%d", p)
	}
	if weightRowBytes < 1 || entryBytes < 1 {
		return nil, fmt.Errorf("banksim: widths rb=%d bo=%d", weightRowBytes, entryBytes)
	}
	return &LUTPIM{
		Units: 16, UnitBytes: 512, T: t,
		P: p, WeightRowBytes: weightRowBytes, EntryBytes: entryBytes,
		LookupsPerCycle: 0.5,
	}, nil
}

// ConfigureSlices sets the streamed slice sizes (canonical column +
// reordering column) and validates the canonical column against the unit
// SRAM capacity.
func (u *LUTPIM) ConfigureSlices(canonColBytes, reorderColBytes int64) error {
	if canonColBytes > int64(u.UnitBytes) {
		return fmt.Errorf("banksim: canonical slice %d B exceeds %d B unit SRAM", canonColBytes, u.UnitBytes)
	}
	if canonColBytes <= 0 || reorderColBytes <= 0 {
		return fmt.Errorf("banksim: slice sizes must be positive")
	}
	u.CanonColBytes = canonColBytes
	u.ReorderColBytes = reorderColBytes
	return nil
}

// RunGEMM simulates one bank's share: for every batch of Units activation
// groups, slices stream into the unit SRAMs, then packed weight bursts are
// looked up by all units in parallel.
func (u *LUTPIM) RunGEMM(g GEMMSpec) (*Result, error) {
	return u.RunGEMMOn(new(Bank), g)
}

// RunGEMMOn is RunGEMM on a caller-owned Bank (reset here), the
// ArenaRunner entry point shard workers use to avoid per-share allocation.
func (u *LUTPIM) RunGEMMOn(b *Bank, g GEMMSpec) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := u.T.Validate(); err != nil {
		return nil, err
	}
	if u.CanonColBytes <= 0 {
		return nil, fmt.Errorf("banksim: slices not configured")
	}
	b.reset(u.T)
	groups := (g.K + u.P - 1) / u.P
	wBase := int64(0)
	wBytes := int64(groups) * int64(g.M) * int64(u.WeightRowBytes)
	lutBase := wBytes
	lutRegion := int64(32 << 20) // canonical LUT region
	reorderBase := lutBase + lutRegion
	reorderRegion := int64(16 << 20)
	oBase := reorderBase + reorderRegion

	var macs int64
	var computeCycles int64
	for n := 0; n < g.N; n++ {
		for g0 := 0; g0 < groups; g0 += u.Units {
			batch := u.Units
			if g0+batch > groups {
				batch = groups - g0
			}
			// Slice streaming: each unit's canonical and reordering
			// columns come from effectively random rows of their tables,
			// so each of the two loads opens its own row.
			for j := 0; j < batch; j++ {
				h := int64(n*groups+g0+j) * 2654435761
				b.Read(lutBase+h%(lutRegion-u.CanonColBytes), u.CanonColBytes)
				b.Read(reorderBase+(h>>7)%(reorderRegion-u.ReorderColBytes), u.ReorderColBytes)
			}
			// Per-batch activation metadata (column/permutation ids).
			b.Read(oBase+int64(g.M)*2+int64(n*groups+g0)*4, int64(batch)*4)
			// Weight streaming: one burst carries packed vectors for the
			// whole unit array; rows of W for this group batch are
			// contiguous per group.
			for m := 0; m < g.M; m++ {
				b.Read(wBase+int64((g0/u.Units)*g.M+m)*int64(batch*u.WeightRowBytes),
					int64(batch*u.WeightRowBytes))
				macs += int64(batch) * int64(u.P)
				// Unit lookup throughput may exceed the command stream;
				// track compute separately and take the max at the end.
				computeCycles += int64(float64(1) / u.LookupsPerCycle)
			}
			// Output update per row handled in unit accumulators; write
			// back once per column batch end.
		}
		b.Write(oBase+int64(n)*int64(g.M)*2, int64(g.M)*2)
	}
	if computeCycles > b.Cycles {
		b.Cycles = computeCycles
	}
	return result(b, macs), nil
}
