package pq

import (
	"math"
	"testing"

	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/workload"
)

func trainSmall(t *testing.T, cfg Config, k, nCal int) (*Quantizer, []float64) {
	t.Helper()
	calib := workload.Gaussian(k, nCal, 11)
	q, err := Train(cfg, calib, k, nCal, 7)
	if err != nil {
		t.Fatal(err)
	}
	return q, calib
}

func TestTrainShapes(t *testing.T) {
	cfg := Config{Name: "t", D: 4, C: 8, Metric: L2, Iters: 5}
	q, _ := trainSmall(t, cfg, 32, 256)
	if q.Subspaces != 8 {
		t.Errorf("subspaces = %d", q.Subspaces)
	}
	for s, cents := range q.Centroids {
		if len(cents) != 8*4 {
			t.Errorf("subspace %d codebook size %d", s, len(cents))
		}
	}
}

func TestTrainValidation(t *testing.T) {
	calib := workload.Gaussian(32, 64, 1)
	if _, err := Train(Config{D: 5, C: 8, Iters: 3}, calib, 32, 64, 1); err == nil {
		t.Error("accepted K not divisible by D")
	}
	if _, err := Train(Config{D: 4, C: 128, Iters: 3}, calib, 32, 64, 1); err == nil {
		t.Error("accepted C > calibration columns")
	}
	if _, err := Train(Config{D: 0, C: 8, Iters: 3}, calib, 32, 64, 1); err == nil {
		t.Error("accepted D=0")
	}
	if _, err := Train(Config{D: 4, C: 8, Iters: 3}, calib[:10], 32, 64, 1); err == nil {
		t.Error("accepted short calibration data")
	}
}

func TestEncodeIsNearest(t *testing.T) {
	cfg := Config{Name: "t", D: 2, C: 4, Metric: L2, Iters: 8}
	q, _ := trainSmall(t, cfg, 8, 128)
	acts := workload.Gaussian(8, 16, 3)
	codes, ops, err := q.Encode(acts, 16)
	if err != nil {
		t.Fatal(err)
	}
	if ops <= 0 {
		t.Error("no host ops counted")
	}
	// Spot-check: every assignment must be the true nearest centroid.
	for col := 0; col < 16; col++ {
		for sub := 0; sub < q.Subspaces; sub++ {
			p := []float64{acts[(sub*2)*16+col], acts[(sub*2+1)*16+col]}
			want := nearest(q.Centroids[sub], p, L2, 2, 4)
			if got := codes[sub*16+col]; got != want {
				t.Fatalf("col %d sub %d: code %d, want %d", col, sub, got, want)
			}
		}
	}
}

// TestPQApproxErrorDecreasesWithC is the core PQ property: larger codebooks
// approximate the GEMM better.
func TestPQApproxErrorDecreasesWithC(t *testing.T) {
	const k, m, n, nCal = 32, 24, 64, 512
	calib := workload.Gaussian(k, nCal, 5)
	w := workload.Gaussian(m, k, 6)
	acts := workload.Gaussian(k, n, 9)
	exact := ExactGEMM(w, acts, m, k, n)

	var prevErr = math.Inf(1)
	for _, c := range []int{4, 16, 64} {
		cfg := Config{Name: "sweep", D: 4, C: c, Metric: L2, Iters: 15}
		q, err := Train(cfg, calib, k, nCal, 7)
		if err != nil {
			t.Fatal(err)
		}
		codes, _, err := q.Encode(acts, n)
		if err != nil {
			t.Fatal(err)
		}
		tables, err := q.BuildTables(w, m)
		if err != nil {
			t.Fatal(err)
		}
		approx := q.ApproxGEMM(tables, codes, m, n)
		e := workload.FrobeniusError(approx, exact)
		if e <= 0 || e >= 1 {
			t.Errorf("C=%d: error %g out of (0,1)", c, e)
		}
		if e >= prevErr {
			t.Errorf("C=%d: error %g did not improve on %g", c, e, prevErr)
		}
		prevErr = e
	}
}

func TestL1VariantTrainsAndEncodes(t *testing.T) {
	cfg := LUTDLAL1()
	cfg.C = 16 // keep the test fast
	q, _ := trainSmall(t, cfg, 32, 256)
	acts := workload.Gaussian(32, 8, 2)
	codes, ops, err := q.Encode(acts, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(codes) != q.Subspaces*8 {
		t.Errorf("codes length %d", len(codes))
	}
	// L1 distances cost 2 ops per element vs 3 for L2.
	if want := int64(8) * int64(q.Subspaces) * 16 * 4 * 2; ops != want {
		t.Errorf("L1 host ops = %d, want %d", ops, want)
	}
}

func TestPresetConfigs(t *testing.T) {
	for _, cfg := range []Config{PIMDL(), LUTDLAL1(), LUTDLAL2()} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s: %v", cfg.Name, err)
		}
	}
	if PIMDL().Metric != L2 || LUTDLAL1().Metric != L1 {
		t.Error("preset metrics")
	}
	if L1.String() != "L1" || L2.String() != "L2" {
		t.Error("metric names")
	}
}

func TestCostModelPhases(t *testing.T) {
	cfg := pim.DefaultConfig()
	cm := DefaultCostModel(&cfg)
	pqc := PIMDL()
	ops := EncodeOps(pqc, 768, 128)
	cost := cm.Estimate(pqc, 768, 768, 128, ops)
	if cost.HostSelectSeconds <= 0 || cost.PIMSeconds <= 0 || cost.TransferSeconds <= 0 {
		t.Errorf("cost %+v", cost)
	}
	if diff := cost.Total - (cost.HostSelectSeconds + cost.PIMSeconds + cost.TransferSeconds); math.Abs(diff) > 1e-15 {
		t.Error("total mismatch")
	}
	// The paper's Fig. 16(a): centroid selection dominates PIM-DL.
	if cost.HostSelectSeconds < cost.PIMSeconds {
		t.Errorf("PIM-DL centroid selection (%g) should dominate PIM time (%g)",
			cost.HostSelectSeconds, cost.PIMSeconds)
	}
}

func TestEncodeValidation(t *testing.T) {
	q, _ := trainSmall(t, Config{Name: "t", D: 4, C: 8, Metric: L2, Iters: 3}, 32, 64)
	if _, _, err := q.Encode(make([]float64, 10), 4); err == nil {
		t.Error("accepted wrong activation length")
	}
	if _, err := q.BuildTables(make([]float64, 10), 4); err == nil {
		t.Error("accepted wrong weight length")
	}
}
