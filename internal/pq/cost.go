package pq

import (
	"github.com/ais-snu/localut/internal/pim"
)

// CostModel prices a PQ GEMM execution on the PIM system with the same
// constants the LoCaLUT engine uses, so Fig. 15/16 comparisons share one
// machine model.
type CostModel struct {
	Cfg *pim.Config
	// LookupInstr is the per-table-lookup instruction budget on the DPU
	// (index load, address, table load, accumulate, loop) — the PQ kernel
	// is structurally the OP kernel with centroid ids as indices.
	LookupInstr int64
	// HostOpsPerSec is the host scalar throughput for centroid selection.
	HostOpsPerSec float64
}

// DefaultCostModel matches the gemm.Engine constants. The PQ lookup is two
// instructions cheaper than the OP kernel's (centroid ids arrive as ready
// byte indices — no packed-vector extraction).
func DefaultCostModel(cfg *pim.Config) CostModel {
	return CostModel{Cfg: cfg, LookupInstr: 7, HostOpsPerSec: 2e10}
}

// Cost reports the phase split of one PQ GEMM.
type Cost struct {
	HostSelectSeconds float64 // centroid selection on the host
	PIMSeconds        float64 // lookup-accumulate kernel on the banks
	TransferSeconds   float64 // code scatter + output gather
	Total             float64
}

// Estimate prices an M x K x N PQ GEMM under the paper's context-parallel
// tiling (columns across banks, full M per bank).
func (c CostModel) Estimate(cfg Config, m, k, n int, hostOpsFromEncode int64) Cost {
	banks := n
	if banks > c.Cfg.NumDPUs() {
		banks = c.Cfg.NumDPUs()
	}
	tileN := (n + banks - 1) / banks
	subspaces := k / cfg.D

	lookups := int64(m) * int64(tileN) * int64(subspaces)
	kernelCycles := lookups * c.LookupInstr
	pimSeconds := c.Cfg.Seconds(kernelCycles)

	hostSeconds := float64(hostOpsFromEncode) / c.HostOpsPerSec
	codeBytes := int64(subspaces) * int64(n) // one byte per centroid id
	outBytes := int64(m) * int64(n) * 4
	transfer := float64(codeBytes)/c.Cfg.HostToPIMBW + float64(outBytes)/c.Cfg.PIMToHostBW

	t := Cost{
		HostSelectSeconds: hostSeconds,
		PIMSeconds:        pimSeconds,
		TransferSeconds:   transfer,
	}
	t.Total = t.HostSelectSeconds + t.PIMSeconds + t.TransferSeconds
	return t
}

// EncodeOps returns the host distance-op count of encoding N columns
// without materializing data (for timing-only sweeps).
func EncodeOps(cfg Config, k, n int) int64 {
	opsPerDist := int64(3)
	if cfg.Metric == L1 {
		opsPerDist = 2
	}
	return int64(n) * int64(k/cfg.D) * int64(cfg.C) * int64(cfg.D) * opsPerDist
}
