// Package pq implements the product-quantization GEMM baselines LoCaLUT is
// compared against in §VI-F: PIM-DL and LUT-DLA (L1 and L2 variants).
//
// Product quantization splits the reduction dimension K into K/D
// subvectors, learns C centroids per subspace from calibration data
// (k-means for L2, k-medians for L1), and replaces each activation
// subvector with its nearest centroid id. The GEMM then becomes K/D table
// lookups per output element — fast on PIM — at the price of (a) a
// *host-side* centroid-selection pass over every activation (the bottleneck
// Fig. 16(a) exposes) and (b) codebook approximation error, which is what
// separates these methods from LoCaLUT's bit-exact lookups on the
// speedup-accuracy plane of Fig. 15.
package pq

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Metric selects the centroid distance.
type Metric int

const (
	// L2 is squared Euclidean distance (k-means).
	L2 Metric = iota
	// L1 is Manhattan distance (k-medians) — cheaper host selection,
	// the LUT-DLA (L1) variant.
	L1
)

func (m Metric) String() string {
	if m == L1 {
		return "L1"
	}
	return "L2"
}

// Config describes one PQ design point.
type Config struct {
	Name string
	// D is the subvector length; C is the codebook size per subspace.
	D, C   int
	Metric Metric
	// Iters bounds the Lloyd iterations during training.
	Iters int
}

// PIMDL returns the PIM-DL configuration (LUT-NN-style: short subvectors,
// a large codebook, Euclidean assignment).
func PIMDL() Config { return Config{Name: "PIM-DL", D: 4, C: 256, Metric: L2, Iters: 12} }

// LUTDLAL1 returns LUT-DLA with the cheap L1 metric.
func LUTDLAL1() Config { return Config{Name: "LUT-DLA (L1)", D: 4, C: 64, Metric: L1, Iters: 12} }

// LUTDLAL2 returns LUT-DLA with the L2 metric.
func LUTDLAL2() Config { return Config{Name: "LUT-DLA (L2)", D: 4, C: 64, Metric: L2, Iters: 12} }

// Validate rejects unusable configurations.
func (c Config) Validate() error {
	if c.D < 1 || c.C < 1 || c.Iters < 1 {
		return fmt.Errorf("pq: invalid config %+v", c)
	}
	return nil
}

// Quantizer holds trained per-subspace codebooks for a fixed K.
type Quantizer struct {
	Cfg       Config
	K         int
	Subspaces int
	// Centroids[s] is a C x D matrix, row-major.
	Centroids [][]float64
}

// Train learns codebooks from calibration activations (row-major K x NCal).
// Each subspace s clusters the D-dimensional slices of rows [s*D,(s+1)*D).
func Train(cfg Config, calib []float64, k, nCal int, seed int64) (*Quantizer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if k%cfg.D != 0 {
		return nil, fmt.Errorf("pq: K=%d not a multiple of subvector length D=%d", k, cfg.D)
	}
	if len(calib) != k*nCal {
		return nil, fmt.Errorf("pq: calibration data has %d values, want %d", len(calib), k*nCal)
	}
	if nCal < cfg.C {
		return nil, fmt.Errorf("pq: %d calibration columns cannot seed %d centroids", nCal, cfg.C)
	}
	s := k / cfg.D
	q := &Quantizer{Cfg: cfg, K: k, Subspaces: s, Centroids: make([][]float64, s)}
	rng := rand.New(rand.NewSource(seed))
	vec := make([]float64, cfg.D)
	for sub := 0; sub < s; sub++ {
		// Gather the subvectors of this subspace: one per calibration column.
		pts := make([][]float64, nCal)
		for n := 0; n < nCal; n++ {
			p := make([]float64, cfg.D)
			for d := 0; d < cfg.D; d++ {
				p[d] = calib[(sub*cfg.D+d)*nCal+n]
			}
			pts[n] = p
		}
		q.Centroids[sub] = lloyd(pts, cfg, rng, vec)
	}
	return q, nil
}

// lloyd runs k-means (L2) or k-medians (L1) and returns the flattened C x D
// codebook.
func lloyd(pts [][]float64, cfg Config, rng *rand.Rand, scratch []float64) []float64 {
	d, c := cfg.D, cfg.C
	cents := make([]float64, c*d)
	// Seed with distinct random points.
	perm := rng.Perm(len(pts))
	for i := 0; i < c; i++ {
		copy(cents[i*d:(i+1)*d], pts[perm[i%len(perm)]])
	}
	assign := make([]int, len(pts))
	for iter := 0; iter < cfg.Iters; iter++ {
		changed := false
		for i, p := range pts {
			best := nearest(cents, p, cfg.Metric, d, c)
			if best != assign[i] {
				assign[i] = best
				changed = true
			}
		}
		// Update step.
		for ci := 0; ci < c; ci++ {
			members := members(assign, ci)
			if len(members) == 0 {
				// Re-seed empty clusters from a random point.
				copy(cents[ci*d:(ci+1)*d], pts[rng.Intn(len(pts))])
				continue
			}
			for dim := 0; dim < d; dim++ {
				if cfg.Metric == L2 {
					sum := 0.0
					for _, mi := range members {
						sum += pts[mi][dim]
					}
					cents[ci*d+dim] = sum / float64(len(members))
				} else {
					vals := scratch[:0]
					for _, mi := range members {
						vals = append(vals, pts[mi][dim])
					}
					cents[ci*d+dim] = median(vals)
				}
			}
		}
		if !changed {
			break
		}
	}
	return cents
}

func members(assign []int, c int) []int {
	var out []int
	for i, a := range assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

func median(v []float64) float64 {
	sort.Float64s(v)
	n := len(v)
	if n%2 == 1 {
		return v[n/2]
	}
	return (v[n/2-1] + v[n/2]) / 2
}

// nearest returns the index of the closest centroid.
func nearest(cents []float64, p []float64, m Metric, d, c int) int {
	best, bestDist := 0, math.Inf(1)
	for ci := 0; ci < c; ci++ {
		dist := 0.0
		base := ci * d
		for dim := 0; dim < d; dim++ {
			diff := cents[base+dim] - p[dim]
			if m == L2 {
				dist += diff * diff
			} else {
				dist += math.Abs(diff)
			}
		}
		if dist < bestDist {
			best, bestDist = ci, dist
		}
	}
	return best
}

// Encode assigns every activation column's subvectors to centroid ids
// (the host-side centroid-selection pass). acts is row-major K x N.
// The returned hostOps counts the scalar distance operations performed,
// which the timing model prices.
func (q *Quantizer) Encode(acts []float64, n int) (codes []int, hostOps int64, err error) {
	if len(acts) != q.K*n {
		return nil, 0, fmt.Errorf("pq: acts has %d values, want %d", len(acts), q.K*n)
	}
	codes = make([]int, q.Subspaces*n)
	p := make([]float64, q.Cfg.D)
	opsPerDist := int64(3) // sub, mul/abs, add
	if q.Cfg.Metric == L1 {
		opsPerDist = 2
	}
	for col := 0; col < n; col++ {
		for sub := 0; sub < q.Subspaces; sub++ {
			for d := 0; d < q.Cfg.D; d++ {
				p[d] = acts[(sub*q.Cfg.D+d)*n+col]
			}
			codes[sub*n+col] = nearest(q.Centroids[sub], p, q.Cfg.Metric, q.Cfg.D, q.Cfg.C)
		}
	}
	hostOps = int64(n) * int64(q.Subspaces) * int64(q.Cfg.C) * int64(q.Cfg.D) * opsPerDist
	return codes, hostOps, nil
}

// BuildTables precomputes the PIM lookup tables: T[s][m*C+c] =
// dot(W[m, s*D:(s+1)*D], centroid[s][c]). w is row-major M x K.
func (q *Quantizer) BuildTables(w []float64, m int) ([][]float64, error) {
	if len(w) != m*q.K {
		return nil, fmt.Errorf("pq: W has %d values, want %d", len(w), m*q.K)
	}
	tables := make([][]float64, q.Subspaces)
	for sub := 0; sub < q.Subspaces; sub++ {
		t := make([]float64, m*q.Cfg.C)
		for mi := 0; mi < m; mi++ {
			for c := 0; c < q.Cfg.C; c++ {
				sum := 0.0
				for d := 0; d < q.Cfg.D; d++ {
					sum += w[mi*q.K+sub*q.Cfg.D+d] * q.Centroids[sub][c*q.Cfg.D+d]
				}
				t[mi*q.Cfg.C+c] = sum
			}
		}
		tables[sub] = t
	}
	return tables, nil
}

// ApproxGEMM evaluates the PQ-approximated product from the tables and
// codes: out[m][n] = sum_s T[s][m*C+codes[s*n+n]]. Returns row-major M x N.
func (q *Quantizer) ApproxGEMM(tables [][]float64, codes []int, m, n int) []float64 {
	out := make([]float64, m*n)
	for sub := 0; sub < q.Subspaces; sub++ {
		t := tables[sub]
		for col := 0; col < n; col++ {
			c := codes[sub*n+col]
			for mi := 0; mi < m; mi++ {
				out[mi*n+col] += t[mi*q.Cfg.C+c]
			}
		}
	}
	return out
}

// ExactGEMM is the float reference product (row-major W: MxK, A: KxN).
func ExactGEMM(w, a []float64, m, k, n int) []float64 {
	out := make([]float64, m*n)
	for mi := 0; mi < m; mi++ {
		for ki := 0; ki < k; ki++ {
			wv := w[mi*k+ki]
			if wv == 0 {
				continue
			}
			for col := 0; col < n; col++ {
				out[mi*n+col] += wv * a[ki*n+col]
			}
		}
	}
	return out
}
