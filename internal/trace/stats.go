package trace

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Quantile returns the q-quantile (0 <= q <= 1) of an ascending-sorted
// slice by linear interpolation between the two bracketing order
// statistics (the "type 7" estimator). It is a pure function of the sorted
// values, so aggregations built on it are bit-reproducible: same samples,
// same quantiles, whatever order the samples arrived in. An empty slice
// yields 0.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + frac*(sorted[hi]-sorted[lo])
}

// Quantiles sorts a copy of vals once and evaluates every requested
// quantile against it. The input is not modified.
func Quantiles(vals []float64, qs ...float64) []float64 {
	sorted := make([]float64, len(vals))
	copy(sorted, vals)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = Quantile(sorted, q)
	}
	return out
}

// Histogram counts samples into fixed-width buckets over [Lo, Hi).
// Out-of-range samples land in Under/Over so Total always equals the number
// of Add calls. Counting is exact integer arithmetic: two histograms fed
// the same multiset of samples are identical regardless of insertion order.
type Histogram struct {
	Lo, Hi float64
	Counts []int64
	Under  int64 // samples < Lo
	Over   int64 // samples >= Hi
}

// NewHistogram builds a histogram with n equal-width buckets over [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 || !(hi > lo) {
		return nil, fmt.Errorf("trace: bad histogram bounds [%g, %g) with %d buckets", lo, hi, n)
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int64, n)}, nil
}

// Add counts one sample.
func (h *Histogram) Add(v float64) {
	switch {
	case v < h.Lo:
		h.Under++
	case v >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Counts) { // guard the v ~ Hi rounding edge
			i = len(h.Counts) - 1
		}
		h.Counts[i]++
	}
}

// addCount counts c identical samples at value v in one step.
func (h *Histogram) addCount(v float64, c int64) {
	switch {
	case c <= 0:
		return
	case v < h.Lo:
		h.Under += c
	case v >= h.Hi:
		h.Over += c
	default:
		i := int(float64(len(h.Counts)) * (v - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Counts) { // guard the v ~ Hi rounding edge
			i = len(h.Counts) - 1
		}
		h.Counts[i] += c
	}
}

// Total returns the number of samples added, including out-of-range ones.
func (h *Histogram) Total() int64 {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// Merge adds other's counts into h. The histograms must share bounds and
// bucket count — merged aggregations only compose when every shard
// bucketed identically.
func (h *Histogram) Merge(other *Histogram) error {
	if other.Lo != h.Lo || other.Hi != h.Hi || len(other.Counts) != len(h.Counts) {
		return fmt.Errorf("trace: merging histogram [%g, %g)x%d into [%g, %g)x%d",
			other.Lo, other.Hi, len(other.Counts), h.Lo, h.Hi, len(h.Counts))
	}
	h.Under += other.Under
	h.Over += other.Over
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	return nil
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts:
// the sample at fractional rank q*(Total-1) is located by cumulative count
// and interpolated linearly inside its bucket. Under-range samples
// evaluate to Lo and over-range samples to Hi (their true values were not
// retained), so the estimate is exact to within one bucket width for
// in-range data. An empty histogram yields 0.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.Total()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total-1)
	cum := float64(h.Under)
	if rank < cum {
		return h.Lo
	}
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if rank < cum+float64(c) {
			// The bucket's c samples sit at fractional positions
			// (k+0.5)/c across its width; interpolate the rank among them.
			frac := (rank - cum + 0.5) / float64(c)
			if frac > 1 {
				frac = 1
			}
			return h.Lo + float64(i)*w + frac*w
		}
		cum += float64(c)
	}
	return h.Hi
}

// BucketBounds returns bucket i's half-open interval [lo, hi).
func (h *Histogram) BucketBounds(i int) (lo, hi float64) {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + float64(i)*w, h.Lo + float64(i+1)*w
}

// Render writes the histogram as aligned text with proportional bars.
func (h *Histogram) Render(w io.Writer) error {
	var peak int64
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	const barWidth = 40
	for i, c := range h.Counts {
		lo, hi := h.BucketBounds(i)
		bar := ""
		if peak > 0 {
			bar = strings.Repeat("#", int(c*barWidth/peak))
		}
		if _, err := fmt.Fprintf(w, "[%12.6g, %12.6g) %8d %s\n", lo, hi, c, bar); err != nil {
			return err
		}
	}
	if h.Under > 0 || h.Over > 0 {
		if _, err := fmt.Fprintf(w, "out of range: %d under, %d over\n", h.Under, h.Over); err != nil {
			return err
		}
	}
	return nil
}
