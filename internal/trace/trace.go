// Package trace renders experiment results as aligned text/markdown tables
// and CSV, and provides the aggregate statistics (geometric means) the
// paper's headline numbers use.
package trace

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Table is a simple column-aligned result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// Add appends a row; values are formatted with %v, floats with 4 significant
// digits.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case float32:
			row[i] = formatFloat(float64(v))
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case math.Abs(v) >= 0.01 && math.Abs(v) < 10000:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.3e", v)
	}
}

// Render writes the table as github-flavoured markdown.
func (t *Table) Render(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "\n### %s\n\n", t.Title); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(t.Headers))
		for i := range t.Headers {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		_, err := fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
		return err
	}
	if err := writeRow(t.Headers); err != nil {
		return err
	}
	seps := make([]string, len(t.Headers))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(seps); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	all := append([][]string{t.Headers}, t.Rows...)
	for _, row := range all {
		cells := make([]string, len(row))
		for i, c := range row {
			cells[i] = esc(c)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Geomean returns the geometric mean of positive values; it returns 0 for
// an empty input and NaN if any value is non-positive.
func Geomean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	sum := 0.0
	for _, v := range vals {
		if v <= 0 {
			return math.NaN()
		}
		sum += math.Log(v)
	}
	return math.Exp(sum / float64(len(vals)))
}

// MinMax returns the extremes of a non-empty slice.
func MinMax(vals []float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}
