package trace

import (
	"math"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := NewTable("Demo", "name", "value")
	tab.Add("alpha", 1.5)
	tab.Add("beta", 0.000123)
	var sb strings.Builder
	if err := tab.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"### Demo", "| name", "alpha", "1.500", "1.230e-04"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("", "a", "b")
	tab.Add("x,y", `quote"d`)
	var sb strings.Builder
	if err := tab.CSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, `"x,y"`) || !strings.Contains(out, `"quote""d"`) {
		t.Errorf("CSV escaping wrong: %s", out)
	}
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("missing header: %s", out)
	}
}

func TestGeomean(t *testing.T) {
	if g := Geomean([]float64{2, 8}); math.Abs(g-4) > 1e-12 {
		t.Errorf("Geomean(2,8) = %g", g)
	}
	if g := Geomean(nil); g != 0 {
		t.Errorf("empty geomean = %g", g)
	}
	if g := Geomean([]float64{1, -1}); !math.IsNaN(g) {
		t.Errorf("negative input geomean = %g", g)
	}
}

func TestMinMax(t *testing.T) {
	lo, hi := MinMax([]float64{3, -1, 7})
	if lo != -1 || hi != 7 {
		t.Errorf("MinMax = %g %g", lo, hi)
	}
}

func TestFormatFloat(t *testing.T) {
	if formatFloat(0) != "0" {
		t.Error("zero")
	}
	if formatFloat(12345678) != "1.235e+07" {
		t.Errorf("big: %s", formatFloat(12345678))
	}
	if formatFloat(1.5) != "1.500" {
		t.Errorf("mid: %s", formatFloat(1.5))
	}
}
