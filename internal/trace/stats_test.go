package trace

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestQuantileEmptyAndSingleton(t *testing.T) {
	if got := Quantile(nil, 0.5); got != 0 {
		t.Errorf("empty quantile = %g, want 0", got)
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("singleton quantile = %g, want 7", got)
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{0, 10, 20, 30, 40}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 0}, {1, 40}, {0.5, 20}, {0.25, 10}, {0.125, 5}, {0.95, 38},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(q=%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantilesOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]float64, 1000)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	a := Quantiles(vals, 0.5, 0.95, 0.99)

	shuffled := make([]float64, len(vals))
	copy(shuffled, vals)
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	b := Quantiles(shuffled, 0.5, 0.95, 0.99)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("quantile %d differs across insertion orders: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestQuantilesDoesNotMutateInput(t *testing.T) {
	vals := []float64{3, 1, 2}
	Quantiles(vals, 0.5)
	if vals[0] != 3 || vals[1] != 1 || vals[2] != 2 {
		t.Errorf("Quantiles mutated its input: %v", vals)
	}
}

func TestHistogramCounts(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-1, 0, 1.9, 2, 9.999, 10, 42} {
		h.Add(v)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("under/over = %d/%d, want 1/2", h.Under, h.Over)
	}
	want := []int64{2, 1, 0, 0, 1}
	for i, c := range h.Counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Total() != 7 {
		t.Errorf("total = %d, want 7", h.Total())
	}
	lo, hi := h.BucketBounds(1)
	if lo != 2 || hi != 4 {
		t.Errorf("bucket 1 bounds = [%g, %g), want [2, 4)", lo, hi)
	}
}

func TestHistogramOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = rng.Float64() * 12
	}
	a, _ := NewHistogram(0, 10, 16)
	b, _ := NewHistogram(0, 10, 16)
	for _, v := range vals {
		a.Add(v)
	}
	rng.Shuffle(len(vals), func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
	for _, v := range vals {
		b.Add(v)
	}
	if a.Under != b.Under || a.Over != b.Over {
		t.Fatal("under/over differ across insertion orders")
	}
	for i := range a.Counts {
		if a.Counts[i] != b.Counts[i] {
			t.Fatalf("bucket %d differs across insertion orders", i)
		}
	}
}

func TestHistogramRejectsBadBounds(t *testing.T) {
	if _, err := NewHistogram(1, 1, 4); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("zero buckets accepted")
	}
}

func TestHistogramRender(t *testing.T) {
	h, _ := NewHistogram(0, 4, 2)
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.Add(9)
	var sb strings.Builder
	if err := h.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "out of range: 0 under, 1 over") {
		t.Errorf("render missing overflow line:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 {
		t.Errorf("render should have 3 lines:\n%s", out)
	}
}
