package trace

import (
	"fmt"
	"math"
)

// LogHistogram defaults: buckets grow by ~5% per step, so quantiles read
// back from the buckets carry at most ~5% relative error — "within one
// bucket width" of the sorted-sample answer. logHistMin is the smallest
// resolvable value; anything below it (including zero) lands in the
// underflow bucket and reads back as the exact minimum seen.
const (
	logHistBase = 1.05
	logHistMin  = 1e-9
)

// LogHistogram is a bounded-memory streaming aggregate over positive
// samples: geometric (log-spaced) buckets plus exact count, sum, min and
// max. It replaces unbounded per-request record vectors for latency
// aggregation — memory is O(log(max/min)/log(base)) regardless of sample
// count — while keeping Mean and Max exact and quantiles within one bucket
// width of the sorted-sample estimator. Bucket counts are exact integers:
// two histograms fed the same multiset of samples are identical regardless
// of insertion order, so aggregations built on it stay byte-reproducible.
type LogHistogram struct {
	Base   float64 // bucket width ratio, > 1
	Min    float64 // lower edge of bucket 0, > 0
	Counts []int64 // Counts[i] covers [Min*Base^i, Min*Base^(i+1)); grown on demand
	Under  int64   // samples < Min (zeros and denormals)
	N      int64   // total samples
	Sum    float64 // exact running sum, in insertion order
	MinV   float64 // exact smallest sample (valid when N > 0)
	MaxV   float64 // exact largest sample (valid when N > 0)
}

// NewLogHistogram builds an empty histogram with the package defaults.
func NewLogHistogram() *LogHistogram {
	return &LogHistogram{Base: logHistBase, Min: logHistMin}
}

// bucketLo returns bucket i's lower edge Min*Base^i.
func (h *LogHistogram) bucketLo(i int) float64 {
	return h.Min * math.Pow(h.Base, float64(i))
}

// Add counts one sample.
func (h *LogHistogram) Add(v float64) {
	h.N++
	h.Sum += v
	if h.N == 1 || v < h.MinV {
		h.MinV = v
	}
	if h.N == 1 || v > h.MaxV {
		h.MaxV = v
	}
	if v < h.Min {
		h.Under++
		return
	}
	i := int(math.Log(v/h.Min) / math.Log(h.Base))
	// Float log can land one bucket off at the edges; nudge until
	// bucketLo(i) <= v < bucketLo(i+1) holds exactly.
	for i > 0 && v < h.bucketLo(i) {
		i--
	}
	for v >= h.bucketLo(i+1) {
		i++
	}
	for len(h.Counts) <= i {
		h.Counts = append(h.Counts, 0)
	}
	h.Counts[i]++
}

// Merge adds other's samples into h. Both histograms must share Base and
// Min so bucket i means the same interval on each side.
func (h *LogHistogram) Merge(other *LogHistogram) error {
	if other.Base != h.Base || other.Min != h.Min {
		return fmt.Errorf("trace: merging log histogram base=%g min=%g into base=%g min=%g",
			other.Base, other.Min, h.Base, h.Min)
	}
	if other.N == 0 {
		return nil
	}
	if h.N == 0 || other.MinV < h.MinV {
		h.MinV = other.MinV
	}
	if h.N == 0 || other.MaxV > h.MaxV {
		h.MaxV = other.MaxV
	}
	h.N += other.N
	h.Sum += other.Sum
	h.Under += other.Under
	for len(h.Counts) < len(other.Counts) {
		h.Counts = append(h.Counts, 0)
	}
	for i, c := range other.Counts {
		h.Counts[i] += c
	}
	return nil
}

// Quantile estimates the q-quantile (0 <= q <= 1) from the bucket counts:
// the sample at fractional rank q*(N-1) is located by cumulative count and
// interpolated geometrically inside its bucket, then clamped to the exact
// [MinV, MaxV] range. The estimate is within one bucket width (~(Base-1)
// relative error) of the sorted-sample value. An empty histogram yields 0.
func (h *LogHistogram) Quantile(q float64) float64 {
	if h.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.N-1)
	cum := float64(h.Under)
	if rank < cum {
		return h.MinV
	}
	for i, c := range h.Counts {
		if c == 0 {
			continue
		}
		if rank < cum+float64(c) {
			// Interpolate the rank among the bucket's c samples on the
			// bucket's geometric scale.
			frac := (rank - cum + 0.5) / float64(c)
			if frac > 1 {
				frac = 1
			}
			v := h.bucketLo(i) * math.Pow(h.Base, frac)
			if v < h.MinV {
				v = h.MinV
			}
			if v > h.MaxV {
				v = h.MaxV
			}
			return v
		}
		cum += float64(c)
	}
	return h.MaxV
}

// Mean returns the exact sample mean (0 when empty).
func (h *LogHistogram) Mean() float64 {
	if h.N == 0 {
		return 0
	}
	return h.Sum / float64(h.N)
}

// Max returns the exact largest sample (0 when empty).
func (h *LogHistogram) Max() float64 {
	if h.N == 0 {
		return 0
	}
	return h.MaxV
}

// ToFixed rebuckets the histogram onto n equal-width buckets over [lo, hi)
// for report export and text rendering. Each log bucket's count is placed
// at its geometric midpoint (underflow samples at MinV), so the fixed view
// is total-preserving but only as sharp as the log buckets it came from.
func (h *LogHistogram) ToFixed(lo, hi float64, n int) (*Histogram, error) {
	f, err := NewHistogram(lo, hi, n)
	if err != nil {
		return nil, err
	}
	f.addCount(h.MinV, h.Under)
	for i, c := range h.Counts {
		mid := h.bucketLo(i) * math.Sqrt(h.Base)
		f.addCount(mid, c)
	}
	return f, nil
}
