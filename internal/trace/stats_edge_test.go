package trace

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// Edge-case coverage for the quantile estimator and histogram: degenerate
// populations and a cross-check against an independent reference.

func TestQuantilesEmptySeries(t *testing.T) {
	got := Quantiles(nil, 0, 0.5, 0.99, 1)
	for i, v := range got {
		if v != 0 {
			t.Errorf("empty series quantile %d = %g, want 0", i, v)
		}
	}
	if got := Quantiles([]float64{}, 0.5); got[0] != 0 {
		t.Errorf("zero-length series quantile = %g, want 0", got[0])
	}
}

func TestQuantilesSingleSample(t *testing.T) {
	// Every quantile of a one-sample population is that sample.
	for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
		if got := Quantiles([]float64{3.25}, q)[0]; got != 3.25 {
			t.Errorf("single-sample q=%g = %g, want 3.25", q, got)
		}
	}
}

func TestQuantilesAllEqual(t *testing.T) {
	vals := make([]float64, 100)
	for i := range vals {
		vals[i] = 7.5
	}
	// Interpolation between equal order statistics must return the value
	// exactly — no floating-point drift from the frac arithmetic.
	for _, q := range []float64{0, 0.25, 0.5, 0.95, 0.99, 1} {
		if got := Quantiles(vals, q)[0]; got != 7.5 {
			t.Errorf("all-equal q=%g = %g, want exactly 7.5", q, got)
		}
	}
}

func TestQuantileOutOfRangeQ(t *testing.T) {
	sorted := []float64{1, 2, 3}
	if got := Quantile(sorted, -0.5); got != 1 {
		t.Errorf("q<0 = %g, want min", got)
	}
	if got := Quantile(sorted, 1.5); got != 3 {
		t.Errorf("q>1 = %g, want max", got)
	}
}

// naiveQuantile is an independent type-7 reference implementation.
func naiveQuantile(vals []float64, q float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	s := append([]float64(nil), vals...)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	h := q * float64(len(s)-1)
	lo := int(h)
	frac := h - float64(lo)
	if lo+1 >= len(s) {
		return s[lo]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// TestQuantilesAgainstNaiveReference cross-checks Quantiles over random
// populations of many sizes against the independently written estimator.
func TestQuantilesAgainstNaiveReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	qs := []float64{0, 0.1, 0.25, 0.5, 0.9, 0.95, 0.99, 1}
	for _, n := range []int{1, 2, 3, 7, 100, 1023} {
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.ExpFloat64() * 10
		}
		got := Quantiles(vals, qs...)
		for i, q := range qs {
			want := naiveQuantile(vals, q)
			if math.Abs(got[i]-want) > 1e-9*math.Max(1, math.Abs(want)) {
				t.Errorf("n=%d q=%g: got %g, reference %g", n, q, got[i], want)
			}
		}
	}
}

func TestQuantilesMonotoneInQ(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 500)
	for i := range vals {
		vals[i] = rng.NormFloat64()
	}
	qs := []float64{0, 0.1, 0.5, 0.9, 0.99, 1}
	got := Quantiles(vals, qs...)
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("quantiles not monotone: q=%g -> %g but q=%g -> %g",
				qs[i-1], got[i-1], qs[i], got[i])
		}
	}
}

func TestHistogramSingleBucket(t *testing.T) {
	h, err := NewHistogram(0, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(0)
	h.Add(0.5)
	h.Add(math.Nextafter(1, 0)) // largest value still inside [0, 1)
	h.Add(1)                    // exactly Hi -> Over
	if h.Counts[0] != 3 || h.Over != 1 || h.Under != 0 {
		t.Errorf("single bucket: counts=%v under=%d over=%d", h.Counts, h.Under, h.Over)
	}
	lo, hi := h.BucketBounds(0)
	if lo != 0 || hi != 1 {
		t.Errorf("bucket bounds [%g, %g), want [0, 1)", lo, hi)
	}
}

func TestHistogramAllEqualSamples(t *testing.T) {
	h, err := NewHistogram(0, 10, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		h.Add(2.5) // exactly on the bucket 0/1 boundary -> bucket 1
	}
	if h.Counts[1] != 1000 {
		t.Errorf("boundary value scattered: %v", h.Counts)
	}
	if h.Total() != 1000 {
		t.Errorf("total %d, want 1000", h.Total())
	}
}

func TestHistogramNegativeRange(t *testing.T) {
	h, err := NewHistogram(-10, -2, 4)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(-10) // first bucket
	h.Add(-3)  // last bucket
	h.Add(-11) // under
	h.Add(-2)  // over (Hi is exclusive)
	if h.Counts[0] != 1 || h.Counts[3] != 1 || h.Under != 1 || h.Over != 1 {
		t.Errorf("negative-range buckets wrong: counts=%v under=%d over=%d",
			h.Counts, h.Under, h.Over)
	}
	lo, hi := h.BucketBounds(3)
	if lo != -4 || hi != -2 {
		t.Errorf("last bucket [%g, %g), want [-4, -2)", lo, hi)
	}
}

func TestHistogramEmptyTotalAndRender(t *testing.T) {
	h, err := NewHistogram(0, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total() != 0 {
		t.Errorf("empty total %d", h.Total())
	}
	// Rendering an empty histogram must not divide by the zero peak.
	var sink nullWriter
	if err := h.Render(&sink); err != nil {
		t.Fatal(err)
	}
}

type nullWriter struct{}

func (nullWriter) Write(p []byte) (int, error) { return len(p), nil }
