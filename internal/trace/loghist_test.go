package trace

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func sortFloat64s(v []float64) { sort.Float64s(v) }

// TestLogHistogramExactAggregates pins the exact side of the aggregate:
// count, sum, min and max must match the raw samples bit for bit.
func TestLogHistogramExactAggregates(t *testing.T) {
	h := NewLogHistogram()
	vals := []float64{0.5, 0.001, 3.25, 0.5, 12, 0.25}
	var sum float64
	for _, v := range vals {
		h.Add(v)
		sum += v
	}
	if h.N != int64(len(vals)) {
		t.Errorf("N = %d, want %d", h.N, len(vals))
	}
	if h.Sum != sum {
		t.Errorf("Sum = %g, want %g", h.Sum, sum)
	}
	if h.MinV != 0.001 || h.MaxV != 12 {
		t.Errorf("Min/Max = %g/%g, want 0.001/12", h.MinV, h.MaxV)
	}
	if got := h.Mean(); got != sum/float64(len(vals)) {
		t.Errorf("Mean = %g", got)
	}
}

// TestLogHistogramQuantileVsSorted is the satellite cross-check: on random
// workload-shaped samples, bucket quantiles must match the sorted-sample
// estimator within one bucket width (a factor of Base in either direction).
func TestLogHistogramQuantileVsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 10, 1000, 20000} {
		h := NewLogHistogram()
		vals := make([]float64, n)
		for i := range vals {
			// Lognormal-ish latencies spanning several decades.
			vals[i] = math.Exp(rng.NormFloat64()*1.5 - 3)
			h.Add(vals[i])
		}
		sorted := append([]float64(nil), vals...)
		sortFloat64s(sorted)
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			got := h.Quantile(q)
			// The sorted estimator interpolates between two order
			// statistics; the bucket estimator must land within one
			// bucket width of that bracketing range (for dense samples
			// the range collapses and this is the strict "within one
			// bucket of the sorted value" check).
			pos := q * float64(n-1)
			lo := sorted[int(math.Floor(pos))] / h.Base
			hi := sorted[int(math.Ceil(pos))] * h.Base
			if got < lo || got > hi {
				t.Errorf("n=%d q=%g: bucket quantile %g outside [%g, %g] (sorted %g)",
					n, q, got, lo, hi, Quantile(sorted, q))
			}
		}
	}
}

// TestLogHistogramEdgeBuckets exercises the index math at bucket edges and
// below the resolvable floor.
func TestLogHistogramEdgeBuckets(t *testing.T) {
	h := NewLogHistogram()
	h.Add(0) // underflow
	h.Add(h.Min)
	h.Add(h.Min * h.Base)
	h.Add(h.Min * h.Base * h.Base)
	if h.Under != 1 {
		t.Errorf("Under = %d, want 1", h.Under)
	}
	var total int64
	for _, c := range h.Counts {
		total += c
	}
	if total != 3 {
		t.Errorf("bucketed %d samples, want 3", total)
	}
	if h.Quantile(0) != 0 {
		t.Errorf("Quantile(0) = %g, want exact min 0", h.Quantile(0))
	}
}

// TestLogHistogramMerge checks that merging shards equals feeding one
// histogram all the samples.
func TestLogHistogramMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	whole, a, b := NewLogHistogram(), NewLogHistogram(), NewLogHistogram()
	for i := 0; i < 2000; i++ {
		v := math.Exp(rng.NormFloat64())
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.N != whole.N || a.MinV != whole.MinV || a.MaxV != whole.MaxV {
		t.Errorf("merged aggregates differ: %+v vs %+v", a, whole)
	}
	// Sum is added in shard order, so it may differ from the in-order sum
	// by float associativity — but only by ulps, never materially.
	if math.Abs(a.Sum-whole.Sum) > 1e-9*whole.Sum {
		t.Errorf("merged Sum %g drifted from %g", a.Sum, whole.Sum)
	}
	for i, c := range whole.Counts {
		if a.Counts[i] != c {
			t.Errorf("bucket %d: merged %d, whole %d", i, a.Counts[i], c)
		}
	}
	bad := &LogHistogram{Base: 2, Min: 1}
	if err := a.Merge(bad); err == nil {
		t.Error("merge across bucketings accepted")
	}
}

// TestLogHistogramEmpty pins the zero-sample behavior the report layer
// relies on: everything reads back as zero.
func TestLogHistogramEmpty(t *testing.T) {
	h := NewLogHistogram()
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Errorf("empty histogram not all-zero: q50=%g mean=%g max=%g",
			h.Quantile(0.5), h.Mean(), h.Max())
	}
}

// TestLogHistogramToFixed checks the export path is total-preserving.
func TestLogHistogramToFixed(t *testing.T) {
	h := NewLogHistogram()
	for _, v := range []float64{0, 0.1, 0.5, 0.9, 2.5} {
		h.Add(v)
	}
	f, err := h.ToFixed(0, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if f.Total() != h.N {
		t.Errorf("fixed view holds %d samples, want %d", f.Total(), h.N)
	}
	if f.Over != 1 {
		t.Errorf("Over = %d, want 1 (the 2.5 sample)", f.Over)
	}
}

// TestFixedHistogramMergeQuantile covers the satellite additions on the
// equal-width histogram: shards compose, and bucket quantiles track the
// sorted estimator within one bucket width.
func TestFixedHistogramMergeQuantile(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	whole, _ := NewHistogram(0, 1, 50)
	a, _ := NewHistogram(0, 1, 50)
	b, _ := NewHistogram(0, 1, 50)
	vals := make([]float64, 5000)
	for i := range vals {
		vals[i] = rng.Float64()
		whole.Add(vals[i])
		if i%2 == 0 {
			a.Add(vals[i])
		} else {
			b.Add(vals[i])
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != whole.Total() {
		t.Errorf("merged total %d, want %d", a.Total(), whole.Total())
	}
	for i := range whole.Counts {
		if a.Counts[i] != whole.Counts[i] {
			t.Fatalf("bucket %d differs after merge", i)
		}
	}
	w := (whole.Hi - whole.Lo) / float64(len(whole.Counts))
	for _, q := range []float64{0.5, 0.95, 0.99} {
		want := Quantiles(vals, q)[0]
		got := whole.Quantile(q)
		if math.Abs(got-want) > w {
			t.Errorf("q=%g: bucket quantile %g vs sorted %g differs by more than bucket width %g",
				q, got, want, w)
		}
	}
	mismatched, _ := NewHistogram(0, 2, 50)
	if err := a.Merge(mismatched); err == nil {
		t.Error("merge across bounds accepted")
	}
	empty, _ := NewHistogram(0, 1, 4)
	if empty.Quantile(0.5) != 0 {
		t.Errorf("empty Quantile = %g, want 0", empty.Quantile(0.5))
	}
}
