package kernels

import (
	"fmt"

	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
)

// StreamKernel is the full LoCaLUT design (OP+LC+RC+SS, §IV-C): the
// canonical and reordering LUTs live in the DRAM bank at a packing degree up
// to p_DRAM, and for every batch of SliceK activation groups only the
// referenced LUT columns are DMA-streamed into WRAM, where they are reused
// across all M weight rows of the tile — the input-stationary-over-LUT-slice
// dataflow of Fig. 7.
type StreamKernel struct {
	Costs Costs
	Spec  lut.Spec
	// SliceK is the number of slice pairs kept resident in WRAM (the k of
	// §VI-D). Must be >= 1.
	SliceK int
}

// NewStreamKernel returns the kernel.
func NewStreamKernel(c Costs, spec lut.Spec, sliceK int) *StreamKernel {
	return &StreamKernel{Costs: c, Spec: spec, SliceK: sliceK}
}

func (k *StreamKernel) Name() string     { return LoCaLUT.String() }
func (k *StreamKernel) Variant() Variant { return LoCaLUT }

func (k *StreamKernel) Run(d *pim.DPU, t *Tile) (*Result, error) {
	return k.RunRequest(&Request{DPU: d, Tile: t})
}

func (k *StreamKernel) RunRequest(req *Request) (*Result, error) {
	d, t, ws := req.DPU, req.Tile, req.WS.ensure()
	d.Reset()
	cost := d.CostOnly()
	if k.SliceK < 1 {
		return nil, fmt.Errorf("kernels: LoCaLUT: SliceK %d < 1", k.SliceK)
	}
	spec := k.Spec
	bo := spec.EntryBytes()
	rb := spec.WeightRowBytes()
	rows := int(spec.Rows())

	// Both LUTs must fit the MRAM LUT budget.
	if spec.CombinedBytes() > d.Cfg.MRAMLUTBudget() {
		return nil, fmt.Errorf("kernels: LoCaLUT LUTs %s need %d bytes, MRAM LUT budget is %d",
			spec, spec.CombinedBytes(), d.Cfg.MRAMLUTBudget())
	}
	// k slice pairs must fit the WRAM LUT budget.
	sliceBytes := rows * (bo + rb)
	if int64(k.SliceK*sliceBytes) > d.Cfg.WRAMLUTBudget() {
		return nil, fmt.Errorf("kernels: LoCaLUT: k=%d slices of %d bytes exceed WRAM LUT budget %d",
			k.SliceK, sliceBytes, d.Cfg.WRAMLUTBudget())
	}

	colB := byteWidthFor(spec.CanonicalBytes())
	sigB := byteWidthFor(spec.ReorderBytes())
	recBytes := colB + sigB
	sorted := grow(&ws.sorted, spec.P)
	sperm := grow(&ws.sperm, spec.P)
	st, err := stageCommon(d, t, spec, recBytes, ws, func(rec []byte, actCodes []int) error {
		col, sigma, err := ws.canonicalize(spec, actCodes, sorted, sperm)
		if err != nil {
			return err
		}
		lut.WriteUint(rec, 0, colB, uint32(col)*uint32(rows*bo))
		lut.WriteUint(rec[colB:], 0, sigB, uint32(sigma)*uint32(rows*rb))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("kernels: LoCaLUT: %w", err)
	}

	canonSeg, err := lutSegment(d, "CanonLUT", spec.CanonicalBytes(), func() ([]byte, error) {
		canon, err := lut.CachedCanonical(spec)
		if err != nil {
			return nil, err
		}
		return canon.Data, nil
	})
	if err != nil {
		return nil, fmt.Errorf("kernels: LoCaLUT: %w", err)
	}
	reorderSeg, err := lutSegment(d, "ReorderLUT", spec.ReorderBytes(), func() ([]byte, error) {
		reorder, err := lut.CachedReorder(spec)
		if err != nil {
			return nil, err
		}
		return reorder.Data, nil
	})
	if err != nil {
		return nil, fmt.Errorf("kernels: LoCaLUT: %w", err)
	}

	// WRAM: k canonical slices, k reordering slices, metadata, streamed
	// weight chunks (one per resident slice so the chunk loop shares the
	// slice batch), and the output column accumulator.
	canonSlices, err := d.WRAM.Alloc("canonslices", k.SliceK*rows*bo)
	if err != nil {
		return nil, fmt.Errorf("kernels: LoCaLUT: %w", err)
	}
	reorderSlices, err := d.WRAM.Alloc("reorderslices", k.SliceK*rows*rb)
	if err != nil {
		return nil, fmt.Errorf("kernels: LoCaLUT: %w", err)
	}
	g := st.groups
	metaBuf, err := d.WRAM.Alloc("meta", g*recBytes)
	if err != nil {
		return nil, fmt.Errorf("kernels: LoCaLUT: %w", err)
	}
	wBuf, err := d.WRAM.Alloc("wchunk", k.SliceK*wChunk*rb)
	if err != nil {
		return nil, fmt.Errorf("kernels: LoCaLUT: %w", err)
	}
	oBuf, err := d.WRAM.Alloc("ocol", t.M*4)
	if err != nil {
		return nil, fmt.Errorf("kernels: LoCaLUT: %w (tile M too large)", err)
	}
	var acc []int32
	var wcodes []uint32
	if !cost {
		acc = grow(&ws.acc, t.M)
		wcodes = grow(&ws.wcodes, wChunk)
	}

	x := ws.newBK(d)
	for n := 0; n < t.N; n++ {
		if err := dmaIn(d, st.metaSeg, int64(n*g*recBytes), metaBuf, g*recBytes); err != nil {
			return nil, err
		}
		x.charge(&x.b.Transfer)
		if !cost {
			zeroAcc(acc)
		}
		d.Exec(pim.EvInstr, int64(t.M))
		x.charge(&x.b.Other)

		for g0 := 0; g0 < g; g0 += k.SliceK {
			kk := k.SliceK
			if g0+kk > g {
				kk = g - g0
			}
			// Stream the slice pairs for this group batch (step 3, Fig. 7).
			// The streamed addresses are data-dependent but every slice has
			// the same size, so the cost program folds the batch into two
			// aggregate charges of identical total cycles and bytes.
			if cost {
				if err := d.ChargeDMAReads(canonSeg, int64(kk), int64(rows*bo)); err != nil {
					return nil, err
				}
				if err := d.ChargeDMAReads(reorderSeg, int64(kk), int64(rows*rb)); err != nil {
					return nil, err
				}
			} else {
				for j := 0; j < kk; j++ {
					colOff := int64(lut.ReadUint(metaBuf.Data[(g0+j)*recBytes:], 0, colB))
					sigmaOff := int64(lut.ReadUint(metaBuf.Data[(g0+j)*recBytes+colB:], 0, sigB))
					if err := d.DMARead(canonSeg, colOff,
						canonSlices.Data[j*rows*bo:(j+1)*rows*bo]); err != nil {
						return nil, err
					}
					if err := d.DMARead(reorderSeg, sigmaOff,
						reorderSlices.Data[j*rows*rb:(j+1)*rows*rb]); err != nil {
						return nil, err
					}
				}
			}
			x.charge(&x.b.LUTLoad)

			// Stream weights and reuse the resident slices across M rows
			// (steps 4-6, Fig. 7).
			for m0 := 0; m0 < t.M; m0 += wChunk {
				mc := wChunk
				if m0+mc > t.M {
					mc = t.M - m0
				}
				if cost {
					if err := d.ChargeDMAReadSeq(st.wSeg, int64((g0*t.M+m0)*rb),
						int64(t.M*rb), int64(kk), int64(mc*rb)); err != nil {
						return nil, err
					}
				} else {
					for j := 0; j < kk; j++ {
						if err := d.DMARead(st.wSeg, int64(((g0+j)*t.M+m0)*rb),
							wBuf.Data[j*wChunk*rb:j*wChunk*rb+mc*rb]); err != nil {
							return nil, err
						}
					}
				}
				x.charge(&x.b.Transfer)

				// For each weight row, the kk resident slice pairs are
				// looked up back-to-back and accumulated in a register;
				// only one WRAM output update closes the row. This
				// register-level output reuse is what makes larger k pay
				// off (§VI-D, Fig. 13).
				//
				// The host walks the same lookups slice-by-slice: per
				// resident slice pair the burst's packed codes are decoded
				// once, translated through the reordering column in one
				// pass, and gathered from the canonical column straight
				// into the int32 accumulator. int32 addition commutes, so
				// the slice-major order produces bit-identical outputs to
				// the device's row-major register walk.
				if !cost {
					wc := wcodes[:mc]
					for j := 0; j < kk; j++ {
						decodeCodes(wc, wBuf.Data[j*wChunk*rb:], mc, rb)
						translateCodes(wc, reorderSlices.Data[j*rows*rb:], rb)
						gatherAccum(acc[m0:m0+mc], wc, canonSlices.Data[j*rows*bo:], bo, 0, bo)
					}
				}
				mk := int64(mc) * int64(kk)
				d.Exec(pim.EvInstr, mk*k.Costs.RCIdxCalcInstr)
				x.charge(&x.b.IdxCalc)
				d.Exec(pim.EvInstr, mk*k.Costs.RCReorderAccInstr)
				x.charge(&x.b.ReorderAccess)
				d.Exec(pim.EvInstr, mk*k.Costs.RCCanonAccInstr)
				x.charge(&x.b.CanonAccess)
				d.Exec(pim.EvInstr, mk*k.Costs.RCStreamRegInstr+int64(mc)*k.Costs.RCOutUpdateInstr)
				x.charge(&x.b.Accumulate)
				d.Note(pim.EvWRAMAccess, mk*3+int64(mc)*2)
			}
		}
		if !cost {
			flushAcc(acc, oBuf.Data)
		}
		if err := dmaOut(d, st.oSeg, int64(n*t.M*4), oBuf, t.M*4); err != nil {
			return nil, err
		}
		x.charge(&x.b.Other)
	}
	if !cost {
		st.readO(t)
	}
	return x.result(LoCaLUT, spec, spec.P, k.SliceK), nil
}
