package kernels

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
)

// randTile builds a reproducible random tile.
func randTile(tb testing.TB, m, k, n int, f quant.Format, seed int64) *Tile {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	w := make([]uint8, m*k)
	for i := range w {
		w[i] = uint8(rng.Intn(f.Weight.Levels()))
	}
	a := make([]uint8, k*n)
	for i := range a {
		a[i] = uint8(rng.Intn(f.Act.Levels()))
	}
	t, err := NewTile(m, k, n, f, w, a)
	if err != nil {
		tb.Fatal(err)
	}
	return t
}

func freshDPU(tb testing.TB) *pim.DPU {
	tb.Helper()
	cfg := pim.DefaultConfig()
	return pim.NewDPU(&cfg)
}

// allKernels builds each design at a p that fits the default budgets for
// the given format.
func allKernels(tb testing.TB, f quant.Format) []Kernel {
	tb.Helper()
	cfg := pim.DefaultConfig()
	costs := DefaultCosts()
	pOP := maxFitP(f, cfg.WRAMLUTBudget(), func(s lut.Spec) int64 { return s.OpPackedBytes() })
	pLC := maxFitP(f, cfg.WRAMLUTBudget(), func(s lut.Spec) int64 { return s.CanonicalBytes() })
	pRC := maxFitP(f, cfg.WRAMLUTBudget(), func(s lut.Spec) int64 { return s.CombinedBytes() })
	pSS := maxFitP(f, cfg.MRAMLUTBudget(), func(s lut.Spec) int64 { return s.CombinedBytes() })
	// Keep the streaming slice pairs within the WRAM budget at k=4.
	for pSS > 1 {
		s := lut.MustSpec(f, pSS)
		if 4*s.SliceBytes() <= cfg.WRAMLUTBudget() && s.CombinedBytes() <= lut.MaxBuildBytes {
			break
		}
		pSS--
	}
	return []Kernel{
		NewNaiveKernel(costs),
		NewLTCKernel(costs),
		NewOPKernel(costs, lut.MustSpec(f, pOP)),
		NewOPLCKernel(costs, lut.MustSpec(f, pLC)),
		NewOPLCRCKernel(costs, lut.MustSpec(f, pRC)),
		NewStreamKernel(costs, lut.MustSpec(f, pSS), 4),
	}
}

// maxFitP returns the largest p whose size (per sizeFn) fits the budget.
func maxFitP(f quant.Format, budget int64, sizeFn func(lut.Spec) int64) int {
	best := 1
	for p := 1; p <= 10; p++ {
		s, err := lut.NewSpec(f, p)
		if err != nil {
			break
		}
		if sizeFn(s) <= budget && sizeFn(s) <= lut.MaxBuildBytes {
			best = p
		}
	}
	return best
}

// TestAllKernelsBitExact is the central correctness test: every kernel must
// reproduce the exact integer reference product for every format, including
// shapes where K is not a multiple of p.
func TestAllKernelsBitExact(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{16, 32, 8},
		{7, 33, 5}, // K not divisible by any p, odd M/N
		{1, 16, 1}, // degenerate edges
		{64, 96, 4},
	}
	for _, f := range quant.Formats {
		for _, sh := range shapes {
			tile := randTile(t, sh.m, sh.k, sh.n, f, int64(sh.m*1000+sh.k))
			want := RefGEMM(tile)
			for _, kn := range allKernels(t, f) {
				d := freshDPU(t)
				for i := range tile.O {
					tile.O[i] = 0
				}
				res, err := kn.Run(d, tile)
				if err != nil {
					t.Fatalf("%s %s %dx%dx%d: %v", f.Name(), kn.Name(), sh.m, sh.k, sh.n, err)
				}
				if !reflect.DeepEqual(tile.O, want) {
					t.Fatalf("%s %s %dx%dx%d: output mismatch\nfirst rows got %v\nwant %v",
						f.Name(), kn.Name(), sh.m, sh.k, sh.n,
						tile.O[:min(8, len(tile.O))], want[:min(8, len(want))])
				}
				if res.Cycles <= 0 {
					t.Errorf("%s %s: nonpositive cycles %d", f.Name(), kn.Name(), res.Cycles)
				}
				if res.Seconds <= 0 {
					t.Errorf("%s %s: nonpositive seconds", f.Name(), kn.Name())
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBreakdownAccountsAllCycles(t *testing.T) {
	f := quant.W1A3
	tile := randTile(t, 32, 64, 8, f, 7)
	for _, kn := range allKernels(t, f) {
		d := freshDPU(t)
		res, err := kn.Run(d, tile)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := res.Breakdown.Total(), res.Cycles; got != want {
			t.Errorf("%s: breakdown total %d != cycles %d", kn.Name(), got, want)
		}
	}
}

func TestKernelSpeedOrdering(t *testing.T) {
	// For W1A3 with a tall weight matrix, the paper's ordering must hold:
	// LoCaLUT < OP+LC+RC < OP < Naive in cycles, and OP+LC slower than
	// OP+LC+RC (software reordering overhead).
	f := quant.W1A3
	tile := randTile(t, 256, 128, 8, f, 3)
	cycles := map[Variant]int64{}
	for _, kn := range allKernels(t, f) {
		d := freshDPU(t)
		res, err := kn.Run(d, tile)
		if err != nil {
			t.Fatal(err)
		}
		cycles[kn.Variant()] = res.Cycles
	}
	if !(cycles[LoCaLUT] < cycles[OPLCRC]) {
		t.Errorf("LoCaLUT (%d) should beat OP+LC+RC (%d)", cycles[LoCaLUT], cycles[OPLCRC])
	}
	if !(cycles[OPLCRC] < cycles[OP]) {
		t.Errorf("OP+LC+RC (%d) should beat OP (%d)", cycles[OPLCRC], cycles[OP])
	}
	if !(cycles[OP] < cycles[Naive]) {
		t.Errorf("OP (%d) should beat Naive (%d)", cycles[OP], cycles[Naive])
	}
	if !(cycles[OPLC] > cycles[OPLCRC]) {
		t.Errorf("OP+LC (%d) should be slower than OP+LC+RC (%d)", cycles[OPLC], cycles[OPLCRC])
	}
	if !(cycles[LoCaLUT] < cycles[Naive]/2) {
		t.Errorf("LoCaLUT (%d) should be at least 2x faster than Naive (%d)", cycles[LoCaLUT], cycles[Naive])
	}
}

func TestStreamKernelKSensitivity(t *testing.T) {
	// Larger k must reduce cycles for W1A3 (same p): the Fig. 13 mechanism.
	f := quant.W1A3
	tile := randTile(t, 128, 128, 4, f, 11)
	costs := DefaultCosts()
	spec := lut.MustSpec(f, 8)
	var prev int64 = 1 << 62
	for _, k := range []int{1, 2, 4, 8} {
		d := freshDPU(t)
		res, err := NewStreamKernel(costs, spec, k).Run(d, tile)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cycles >= prev {
			t.Errorf("k=%d: cycles %d did not improve on %d", k, res.Cycles, prev)
		}
		prev = res.Cycles
		if !reflect.DeepEqual(tile.O, RefGEMM(tile)) {
			t.Fatalf("k=%d: wrong output", k)
		}
	}
}

func TestStreamKernelRejectsOverbudget(t *testing.T) {
	costs := DefaultCosts()
	tile := randTile(t, 8, 16, 2, quant.W1A3, 1)
	d := freshDPU(t)
	// k so large the slices cannot fit WRAM.
	if _, err := NewStreamKernel(costs, lut.MustSpec(quant.W1A3, 8), 100).Run(d, tile); err == nil {
		t.Error("accepted k=100")
	}
	if _, err := NewStreamKernel(costs, lut.MustSpec(quant.W1A3, 8), 0).Run(d, tile); err == nil {
		t.Error("accepted k=0")
	}
	// W4A4 p=4 needs ~254 MB canonical: must exceed the MRAM budget.
	if _, err := NewStreamKernel(costs, lut.MustSpec(quant.W4A4, 4), 1).Run(d, tile); err == nil {
		t.Error("accepted p beyond the MRAM budget")
	}
}

func TestBufferKernelsRejectOverbudget(t *testing.T) {
	costs := DefaultCosts()
	tile := randTile(t, 8, 16, 2, quant.W1A3, 1)
	d := freshDPU(t)
	// W1A3 p=4 OP LUT = 2^16 entries > 32 KB WRAM budget.
	if _, err := NewOPKernel(costs, lut.MustSpec(quant.W1A3, 4)).Run(d, tile); err == nil {
		t.Error("OP accepted p=4 (64 KB LUT)")
	}
	// W1A3 p=6 canonical = 64*1716 = 110 KB > budget.
	if _, err := NewOPLCKernel(costs, lut.MustSpec(quant.W1A3, 6)).Run(d, tile); err == nil {
		t.Error("OP+LC accepted p=6")
	}
	if _, err := NewOPLCRCKernel(costs, lut.MustSpec(quant.W1A3, 6)).Run(d, tile); err == nil {
		t.Error("OP+LC+RC accepted p=6")
	}
}

func TestPaperPLocalChoices(t *testing.T) {
	// §V-A: for W1A3 the buffer holds p=5 with canonicalization (LC+RC) and
	// p=3 without (plain OP); the bank holds p=8.
	cfg := pim.DefaultConfig()
	if got := maxFitP(quant.W1A3, cfg.WRAMLUTBudget(), func(s lut.Spec) int64 { return s.OpPackedBytes() }); got != 3 {
		t.Errorf("OP p_local = %d, want 3", got)
	}
	if got := maxFitP(quant.W1A3, cfg.WRAMLUTBudget(), func(s lut.Spec) int64 { return s.CombinedBytes() }); got != 5 {
		t.Errorf("LC+RC p_local = %d, want 5", got)
	}
	if got := maxFitP(quant.W1A3, cfg.MRAMLUTBudget(), func(s lut.Spec) int64 { return s.CombinedBytes() }); got != 8 {
		t.Errorf("LC+RC p_DRAM = %d, want 8", got)
	}
}

func TestLTCHandlesAllWeightModes(t *testing.T) {
	// Exercise the plane-coefficient decomposition across codec modes,
	// including an unsigned weight codec (not part of the paper's formats
	// but supported by the decomposition).
	formats := []quant.Format{
		quant.W1A3, // symmetric 1-bit weights
		quant.W2A2, // two's complement
		quant.W4A4,
		{Weight: quant.MustCodec(2, quant.Unsigned), Act: quant.MustCodec(3, quant.Twos)},
		{Weight: quant.MustCodec(2, quant.Symmetric), Act: quant.MustCodec(3, quant.Twos)},
	}
	for _, f := range formats {
		tile := randTile(t, 9, 21, 3, f, 5)
		d := freshDPU(t)
		if _, err := NewLTCKernel(DefaultCosts()).Run(d, tile); err != nil {
			t.Fatalf("%v: %v", f, err)
		}
		if want := RefGEMM(tile); !reflect.DeepEqual(tile.O, want) {
			t.Errorf("%v: LTC mismatch", f)
		}
	}
}

func TestNewTileValidation(t *testing.T) {
	if _, err := NewTile(0, 1, 1, quant.W1A3, nil, nil); err == nil {
		t.Error("accepted M=0")
	}
	if _, err := NewTile(2, 2, 2, quant.W1A3, make([]uint8, 3), make([]uint8, 4)); err == nil {
		t.Error("accepted wrong W length")
	}
	if _, err := NewTile(2, 2, 2, quant.W1A3, make([]uint8, 4), make([]uint8, 5)); err == nil {
		t.Error("accepted wrong A length")
	}
}

func TestVariantString(t *testing.T) {
	if Naive.String() != "NaivePIM" || LoCaLUT.String() != "LoCaLUT" {
		t.Error("variant names")
	}
	if Variant(42).String() != "Variant(42)" {
		t.Error("unknown variant name")
	}
	if len(Variants) != int(NumVariants) {
		t.Error("Variants list incomplete")
	}
}

func TestFig16BreakdownShape(t *testing.T) {
	// Fig. 16(b): in the LoCaLUT GEMM kernel, reordering-LUT index
	// calculation dominates and LUT accesses are a small share;
	// reordering LUT access is in the mid-single-digit percent range.
	f := quant.W1A3
	tile := randTile(t, 512, 256, 8, f, 13)
	d := freshDPU(t)
	spec := lut.MustSpec(f, 8)
	res, err := NewStreamKernel(DefaultCosts(), spec, 4).Run(d, tile)
	if err != nil {
		t.Fatal(err)
	}
	b := res.Breakdown
	total := float64(b.Total())
	idx := float64(b.IdxCalc) / total
	reord := float64(b.ReorderAccess) / total
	canon := float64(b.CanonAccess) / total
	if idx < 0.30 {
		t.Errorf("index calc share %.2f, want dominant (>= 0.30)", idx)
	}
	if reord < 0.02 || reord > 0.15 {
		t.Errorf("reorder access share %.3f, want ~0.07 (paper: 6.9%%)", reord)
	}
	if canon > idx {
		t.Errorf("canonical access (%.2f) should not dominate index calc (%.2f)", canon, idx)
	}
}

func BenchmarkNaiveKernel(b *testing.B) {
	tile := randTile(b, 64, 256, 16, quant.W1A3, 1)
	kn := NewNaiveKernel(DefaultCosts())
	d := freshDPU(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kn.Run(d, tile); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamKernel(b *testing.B) {
	tile := randTile(b, 64, 256, 16, quant.W1A3, 1)
	kn := NewStreamKernel(DefaultCosts(), lut.MustSpec(quant.W1A3, 8), 4)
	d := freshDPU(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kn.Run(d, tile); err != nil {
			b.Fatal(err)
		}
	}
}
