package kernels

import (
	"fmt"

	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
)

// OPDRAMKernel is the Fig. 3(a) candidate design: the operation-packed LUT
// resides in the DRAM bank (allowing packing degrees up to p_DRAM) and
// every group lookup issues an individual MRAM access. The per-lookup DMA
// setup cost is exactly what makes this design lose to the buffer-sized
// LUT in Fig. 3(c), motivating LoCaLUT's buffer-centric base design.
type OPDRAMKernel struct {
	Costs Costs
	Spec  lut.Spec
}

// NewOPDRAMKernel returns the DRAM-resident OP design.
func NewOPDRAMKernel(c Costs, spec lut.Spec) *OPDRAMKernel {
	return &OPDRAMKernel{Costs: c, Spec: spec}
}

func (k *OPDRAMKernel) Name() string     { return "OP(DRAM)" }
func (k *OPDRAMKernel) Variant() Variant { return OP }

func (k *OPDRAMKernel) Run(d *pim.DPU, t *Tile) (*Result, error) {
	return k.RunRequest(&Request{DPU: d, Tile: t})
}

func (k *OPDRAMKernel) RunRequest(req *Request) (*Result, error) {
	d, t, ws := req.DPU, req.Tile, req.WS.ensure()
	d.Reset()
	cost := d.CostOnly()
	spec := k.Spec
	bo := spec.EntryBytes()
	lutBytes := spec.OpPackedBytes()
	if lutBytes > d.Cfg.MRAMLUTBudget() {
		return nil, fmt.Errorf("kernels: OP(DRAM) LUT %s needs %d bytes, MRAM LUT budget is %d",
			spec, lutBytes, d.Cfg.MRAMLUTBudget())
	}

	recBytes := byteWidthFor(spec.OpCols() * int64(bo))
	aBits := spec.Fmt.Act.Bits
	codes := grow(&ws.codes, spec.P)
	st, err := stageCommon(d, t, spec, recBytes, ws, func(rec []byte, actCodes []int) error {
		for i, c := range actCodes {
			codes[i] = uint32(c)
		}
		a := quant.PackVector(codes, aBits)
		lut.WriteUint(rec, 0, recBytes, a*uint32(bo))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("kernels: OP(DRAM): %w", err)
	}

	lutSeg, err := lutSegment(d, "LUT", lutBytes, func() ([]byte, error) {
		table, err := lut.CachedOpPacked(spec)
		if err != nil {
			return nil, err
		}
		return table.Data, nil
	})
	if err != nil {
		return nil, fmt.Errorf("kernels: OP(DRAM): %w", err)
	}

	g := st.groups
	metaBuf, err := d.WRAM.Alloc("meta", g*recBytes)
	if err != nil {
		return nil, fmt.Errorf("kernels: OP(DRAM): %w", err)
	}
	wBuf, err := d.WRAM.Alloc("wchunk", wChunk*st.rowBytes)
	if err != nil {
		return nil, fmt.Errorf("kernels: OP(DRAM): %w", err)
	}
	oBuf, err := d.WRAM.Alloc("ocol", t.M*4)
	if err != nil {
		return nil, fmt.Errorf("kernels: OP(DRAM): %w (tile M too large)", err)
	}
	var acc []int32
	var wcodes []uint32
	if !cost {
		acc = grow(&ws.acc, t.M)
		wcodes = grow(&ws.wcodes, wChunk)
	}

	rowStride := int64(spec.OpCols()) * int64(bo)
	entry := grow(&ws.entry, bo)
	x := ws.newBK(d)
	for n := 0; n < t.N; n++ {
		if err := dmaIn(d, st.metaSeg, int64(n*g*recBytes), metaBuf, g*recBytes); err != nil {
			return nil, err
		}
		x.charge(&x.b.Transfer)
		if !cost {
			zeroAcc(acc)
		}
		d.Exec(pim.EvInstr, int64(t.M))
		x.charge(&x.b.Other)

		for gi := 0; gi < g; gi++ {
			var aOff int64
			if !cost {
				aOff = int64(lut.ReadUint(metaBuf.Data, gi, recBytes))
			}
			for m0 := 0; m0 < t.M; m0 += wChunk {
				mc := wChunk
				if m0+mc > t.M {
					mc = t.M - m0
				}
				if err := dmaIn(d, st.wSeg, int64((gi*t.M+m0)*st.rowBytes),
					wBuf, mc*st.rowBytes); err != nil {
					return nil, err
				}
				x.charge(&x.b.Transfer)

				// Per-lookup MRAM access: the defining cost of this design
				// point. Entry addresses are data-dependent but every access
				// moves the same bo bytes, so the cost program folds the mc
				// lookups into one aggregate charge of identical cycles.
				if cost {
					if err := d.ChargeDMAReads(lutSeg, int64(mc), int64(bo)); err != nil {
						return nil, err
					}
				} else {
					// The chunk's packed codes are decoded burst-wide; the
					// per-element DMARead stays — it is this design's
					// defining cost and each transfer must charge the meter
					// individually sized.
					wc := wcodes[:mc]
					decodeCodes(wc, wBuf.Data, mc, st.rowBytes)
					for m, w := range wc {
						if err := d.DMARead(lutSeg, int64(w)*rowStride+aOff, entry); err != nil {
							return nil, err
						}
						acc[m0+m] += lut.ReadEntry(entry, 0, bo)
					}
				}
				x.charge(&x.b.LUTLoad)
				d.Exec(pim.EvInstr, int64(mc)*k.Costs.OPGroupInstr)
				d.Note(pim.EvWRAMAccess, int64(mc)*4)
				x.charge(&x.b.CanonAccess)
			}
		}
		if !cost {
			flushAcc(acc, oBuf.Data)
		}
		if err := dmaOut(d, st.oSeg, int64(n*t.M*4), oBuf, t.M*4); err != nil {
			return nil, err
		}
		x.charge(&x.b.Other)
	}
	if !cost {
		st.readO(t)
	}
	return x.result(OP, spec, spec.P, 0), nil
}
