package kernels

import (
	"fmt"

	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
)

// stagedLUT is the host-prepared bank image shared by all packed-LUT
// kernels: weights packed into p-wide group vectors laid out group-major
// (so one group's column of M vectors is contiguous for streaming), plus a
// per-(column, group) metadata record whose contents depend on the variant.
type stagedLUT struct {
	spec     lut.Spec
	groups   int // ceil(K/p)
	rowBytes int // packed weight vector width
	recBytes int // metadata record width
	wSeg     *pim.Segment
	metaSeg  *pim.Segment
	oSeg     *pim.Segment
}

// padActCode returns the activation code that decodes to zero, used to pad
// the final group when K is not a multiple of p.
func padActCode(c quant.Codec) (uint32, error) {
	if c.Decode(0) == 0 {
		return 0, nil
	}
	// Symmetric codecs have no zero level; search for one defensively.
	for code := uint32(0); code < uint32(c.Levels()); code++ {
		if c.Decode(code) == 0 {
			return code, nil
		}
	}
	return 0, fmt.Errorf("kernels: activation codec %v cannot represent 0; K must be a multiple of p", c)
}

// stageCommon allocates the weight, metadata and output segments and — on a
// functional DPU — fills the weight and metadata images. buildMeta fills the
// record for group g of column n given the group's activation codes; it is
// never invoked on an accounting DPU, whose segments have the same sizes but
// no bytes. Staging is host work and charges nothing, so skipping the fills
// cannot perturb the meter. The returned descriptor and all staging scratch
// live in ws and are recycled across runs.
func stageCommon(d *pim.DPU, t *Tile, spec lut.Spec, recBytes int, ws *Workspace,
	buildMeta func(rec []byte, actCodes []int) error) (*stagedLUT, error) {

	p := spec.P
	g := groupsOf(t.K, p)
	rb := spec.WeightRowBytes()
	st := &ws.st
	*st = stagedLUT{spec: spec, groups: g, rowBytes: rb, recBytes: recBytes}

	var err error
	if st.wSeg, err = d.MRAM.Alloc("Wg", int64(g*t.M*rb)); err != nil {
		return nil, err
	}
	if st.metaSeg, err = d.MRAM.Alloc("Ameta", int64(t.N*g*recBytes)); err != nil {
		return nil, err
	}
	if st.oSeg, err = d.MRAM.Alloc("O", int64(t.M*t.N*4)); err != nil {
		return nil, err
	}

	// The pad code is resolved in both modes so a padding-impossible codec
	// fails identically whichever program runs.
	padCode, err := padActCode(spec.Fmt.Act)
	if err != nil {
		return nil, err
	}
	if d.CostOnly() {
		return st, nil
	}

	// Pack weights group-major: [g][m], with the PackVector shift-or fused
	// into the walk (identical bits), the weight row sliced once per m, and
	// padding confined to the one possibly-partial trailing group. Pad
	// weights are 0, contributing no bits — the matching pad activation
	// decodes to 0.
	uwb := uint(spec.Fmt.Weight.Bits)
	wMask := uint32(1<<uwb) - 1
	wImg := st.wSeg.Data
	for m := 0; m < t.M; m++ {
		row := t.W[m*t.K : m*t.K+t.K]
		for gi := 0; gi < g; gi++ {
			base := gi * p
			end := base + p
			if end > t.K {
				end = t.K // the one possibly-partial trailing group
			}
			var packed uint32
			for kk := base; kk < end; kk++ {
				packed |= (uint32(row[kk]) & wMask) << (uint(kk-base) * uwb)
			}
			if rb == 1 {
				wImg[gi*t.M+m] = byte(packed)
			} else {
				lut.WriteUint(wImg[(gi*t.M+m)*rb:], 0, rb, packed)
			}
		}
	}

	// Metadata per (n, g).
	actCodes := grow(&ws.actCodes, p)
	for n := 0; n < t.N; n++ {
		for gi := 0; gi < g; gi++ {
			for i := 0; i < p; i++ {
				kk := gi*p + i
				if kk < t.K {
					actCodes[i] = int(t.A[kk*t.N+n])
				} else {
					actCodes[i] = int(padCode)
				}
			}
			rec := st.metaSeg.Data[(n*g+gi)*recBytes : (n*g+gi+1)*recBytes]
			if err := buildMeta(rec, actCodes); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

// readO transposes the column-major bank output into the tile.
func (st *stagedLUT) readO(t *Tile) {
	for n := 0; n < t.N; n++ {
		for m := 0; m < t.M; m++ {
			t.O[m*t.N+n] = lut.ReadEntry(st.oSeg.Data, n*t.M+m, 4)
		}
	}
}

// wChunk is the weight-streaming granularity (rows per DMA).
const wChunk = 256

// OPKernel is the buffer-resident operation-packed LUT design (§III-B2):
// the full 2^((bw+ba)p) LUT lives in WRAM and each group lookup concatenates
// the packed weight and activation indices.
type OPKernel struct {
	Costs Costs
	Spec  lut.Spec
}

// NewOPKernel returns the kernel; Spec.P must make the OP LUT fit the WRAM
// LUT budget (checked at Run).
func NewOPKernel(c Costs, spec lut.Spec) *OPKernel { return &OPKernel{Costs: c, Spec: spec} }

func (k *OPKernel) Name() string     { return OP.String() }
func (k *OPKernel) Variant() Variant { return OP }

func (k *OPKernel) Run(d *pim.DPU, t *Tile) (*Result, error) {
	return k.RunRequest(&Request{DPU: d, Tile: t})
}

func (k *OPKernel) RunRequest(req *Request) (*Result, error) {
	d, t, ws := req.DPU, req.Tile, req.WS.ensure()
	d.Reset()
	cost := d.CostOnly()
	spec := k.Spec
	bo := spec.EntryBytes()
	lutBytes := spec.OpPackedBytes()
	if lutBytes > d.Cfg.WRAMLUTBudget() {
		return nil, fmt.Errorf("kernels: OP LUT %s needs %d bytes, WRAM LUT budget is %d",
			spec, lutBytes, d.Cfg.WRAMLUTBudget())
	}

	// Meta record: byte offset of the packed activation within a LUT row.
	aBits := spec.Fmt.Act.Bits
	recBytes := MetaRecordBytes(OP, spec)
	codes := grow(&ws.codes, spec.P)
	st, err := stageCommon(d, t, spec, recBytes, ws, func(rec []byte, actCodes []int) error {
		for i, c := range actCodes {
			codes[i] = uint32(c)
		}
		a := quant.PackVector(codes, aBits)
		lut.WriteUint(rec, 0, recBytes, a*uint32(bo))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("kernels: OP: %w", err)
	}

	// The LUT is broadcast into the bank and DMAd into WRAM once. Every
	// bank holds the identical table, so the functional simulation maps the
	// shared cached copy instead of duplicating it per DPU; the cost program
	// reserves the same bytes without ever building the table.
	lutSeg, err := lutSegment(d, "LUT", lutBytes, func() ([]byte, error) {
		table, err := lut.CachedOpPacked(spec)
		if err != nil {
			return nil, err
		}
		return table.Data, nil
	})
	if err != nil {
		return nil, fmt.Errorf("kernels: OP: %w", err)
	}

	lutBuf, err := d.WRAM.Alloc("lut", int(lutBytes))
	if err != nil {
		return nil, fmt.Errorf("kernels: OP: %w", err)
	}
	x := ws.newBK(d)
	if err := dmaIn(d, lutSeg, 0, lutBuf, int(lutBytes)); err != nil {
		return nil, err
	}
	x.charge(&x.b.LUTLoad)

	rowStride := int(spec.OpCols()) * bo
	g := st.groups
	metaBuf, err := d.WRAM.Alloc("meta", g*recBytes)
	if err != nil {
		return nil, fmt.Errorf("kernels: OP: %w", err)
	}
	wBuf, err := d.WRAM.Alloc("wchunk", wChunk*st.rowBytes)
	if err != nil {
		return nil, fmt.Errorf("kernels: OP: %w", err)
	}
	oBuf, err := d.WRAM.Alloc("ocol", t.M*4)
	if err != nil {
		return nil, fmt.Errorf("kernels: OP: %w (tile M too large)", err)
	}
	var acc []int32
	var wcodes []uint32
	if !cost {
		acc = grow(&ws.acc, t.M)
		wcodes = grow(&ws.wcodes, wChunk)
	}

	for n := 0; n < t.N; n++ {
		if err := dmaIn(d, st.metaSeg, int64(n*g*recBytes), metaBuf, g*recBytes); err != nil {
			return nil, err
		}
		x.charge(&x.b.Transfer)
		if !cost {
			zeroAcc(acc)
		}
		d.Exec(pim.EvInstr, int64(t.M))
		x.charge(&x.b.Other)

		for gi := 0; gi < g; gi++ {
			var aOff int
			if !cost {
				aOff = int(lut.ReadUint(metaBuf.Data, gi, recBytes))
			}
			for m0 := 0; m0 < t.M; m0 += wChunk {
				mc := wChunk
				if m0+mc > t.M {
					mc = t.M - m0
				}
				if err := dmaIn(d, st.wSeg, int64((gi*t.M+m0)*st.rowBytes),
					wBuf, mc*st.rowBytes); err != nil {
					return nil, err
				}
				x.charge(&x.b.Transfer)

				if !cost {
					// Burst-wide lookup: decode the chunk's packed weight
					// codes once, then gather with the row base resolved per
					// burst instead of per element.
					wc := wcodes[:mc]
					decodeCodes(wc, wBuf.Data, mc, st.rowBytes)
					gatherAccum(acc[m0:m0+mc], wc, lutBuf.Data, rowStride, aOff, bo)
				}
				d.Exec(pim.EvInstr, int64(mc)*k.Costs.OPGroupInstr)
				d.Note(pim.EvWRAMAccess, int64(mc)*4)
				x.charge(&x.b.CanonAccess)
			}
		}
		if !cost {
			flushAcc(acc, oBuf.Data)
		}
		if err := dmaOut(d, st.oSeg, int64(n*t.M*4), oBuf, t.M*4); err != nil {
			return nil, err
		}
		x.charge(&x.b.Other)
	}
	if !cost {
		st.readO(t)
	}
	return x.result(OP, spec, spec.P, 0), nil
}

// OPLCKernel is OP + LUT canonicalization with *software* weight reordering
// (§IV-A without §IV-B): the canonical LUT fits WRAM at a larger p, but
// every group pays unpack/permute/repack on the in-order core — the
// overhead Fig. 9 shows erasing the canonicalization gain.
type OPLCKernel struct {
	Costs Costs
	Spec  lut.Spec
}

// NewOPLCKernel returns the kernel.
func NewOPLCKernel(c Costs, spec lut.Spec) *OPLCKernel { return &OPLCKernel{Costs: c, Spec: spec} }

func (k *OPLCKernel) Name() string     { return OPLC.String() }
func (k *OPLCKernel) Variant() Variant { return OPLC }

func (k *OPLCKernel) Run(d *pim.DPU, t *Tile) (*Result, error) {
	return k.RunRequest(&Request{DPU: d, Tile: t})
}

func (k *OPLCKernel) RunRequest(req *Request) (*Result, error) {
	d, t, ws := req.DPU, req.Tile, req.WS.ensure()
	d.Reset()
	cost := d.CostOnly()
	spec := k.Spec
	p := spec.P
	bo := spec.EntryBytes()
	lutBytes := spec.CanonicalBytes()
	if lutBytes > d.Cfg.WRAMLUTBudget() {
		return nil, fmt.Errorf("kernels: OP+LC canonical LUT %s needs %d bytes, WRAM LUT budget is %d",
			spec, lutBytes, d.Cfg.WRAMLUTBudget())
	}

	// Meta record: canonical column byte offset (minimal width) + the sort
	// permutation as p index bytes for the software reorder.
	recBytes := MetaRecordBytes(OPLC, spec)
	colB := recBytes - p
	rows := int(spec.Rows())
	sorted := grow(&ws.sorted, p)
	sperm := grow(&ws.sperm, p)
	st, err := stageCommon(d, t, spec, recBytes, ws, func(rec []byte, actCodes []int) error {
		col, _, err := ws.canonicalize(spec, actCodes, sorted, sperm)
		if err != nil {
			return err
		}
		lut.WriteUint(rec, 0, colB, uint32(col)*uint32(rows*bo))
		for i, v := range sperm {
			rec[colB+i] = byte(v)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("kernels: OP+LC: %w", err)
	}

	lutSeg, err := lutSegment(d, "LUT", lutBytes, func() ([]byte, error) {
		canon, err := lut.CachedCanonical(spec)
		if err != nil {
			return nil, err
		}
		return canon.Data, nil
	})
	if err != nil {
		return nil, fmt.Errorf("kernels: OP+LC: %w", err)
	}
	lutBuf, err := d.WRAM.Alloc("lut", int(lutBytes))
	if err != nil {
		return nil, fmt.Errorf("kernels: OP+LC: %w", err)
	}
	x := ws.newBK(d)
	if err := dmaIn(d, lutSeg, 0, lutBuf, int(lutBytes)); err != nil {
		return nil, err
	}
	x.charge(&x.b.LUTLoad)

	g := st.groups
	metaBuf, err := d.WRAM.Alloc("meta", g*recBytes)
	if err != nil {
		return nil, fmt.Errorf("kernels: OP+LC: %w", err)
	}
	wBuf, err := d.WRAM.Alloc("wchunk", wChunk*st.rowBytes)
	if err != nil {
		return nil, fmt.Errorf("kernels: OP+LC: %w", err)
	}
	oBuf, err := d.WRAM.Alloc("ocol", t.M*4)
	if err != nil {
		return nil, fmt.Errorf("kernels: OP+LC: %w (tile M too large)", err)
	}
	var acc []int32
	var wcodes []uint32
	if !cost {
		acc = grow(&ws.acc, t.M)
		wcodes = grow(&ws.wcodes, wChunk)
	}

	wb := spec.Fmt.Weight.Bits
	for n := 0; n < t.N; n++ {
		if err := dmaIn(d, st.metaSeg, int64(n*g*recBytes), metaBuf, g*recBytes); err != nil {
			return nil, err
		}
		x.charge(&x.b.Transfer)
		if !cost {
			zeroAcc(acc)
		}
		d.Exec(pim.EvInstr, int64(t.M))
		x.charge(&x.b.Other)

		for gi := 0; gi < g; gi++ {
			var colOff int
			var sigma []byte
			if !cost {
				rec := metaBuf.Data[gi*recBytes : (gi+1)*recBytes]
				colOff = int(lut.ReadUint(rec, 0, colB))
				sigma = rec[colB : colB+p]
			}
			for m0 := 0; m0 < t.M; m0 += wChunk {
				mc := wChunk
				if m0+mc > t.M {
					mc = t.M - m0
				}
				if err := dmaIn(d, st.wSeg, int64((gi*t.M+m0)*st.rowBytes),
					wBuf, mc*st.rowBytes); err != nil {
					return nil, err
				}
				x.charge(&x.b.Transfer)

				if !cost {
					// Burst-wide: decode the chunk's packed codes once,
					// software-reorder each into its canonical code — the
					// unpack/permute/repack fused into one shift-or walk,
					// bit-identical to the three-step sequence — then
					// gather-accumulate with the column base resolved once
					// per burst.
					wc := wcodes[:mc]
					decodeCodes(wc, wBuf.Data, mc, st.rowBytes)
					uwb := uint(wb)
					wMask := uint32(1<<uwb) - 1
					for m, w := range wc {
						var wCanon uint32
						for i := 0; i < p; i++ {
							wCanon |= ((w >> (uint(sigma[i]) * uwb)) & wMask) << (uint(i) * uwb)
						}
						wc[m] = wCanon
					}
					gatherAccum(acc[m0:m0+mc], wc, lutBuf.Data, bo, colOff, bo)
				}
				d.Exec(pim.EvInstr, int64(mc)*(k.Costs.LCSWPerElement*int64(p)+k.Costs.LCSWGroupInstr))
				d.Note(pim.EvWRAMAccess, int64(mc)*int64(4+p))
				x.charge(&x.b.IdxCalc)
			}
		}
		if !cost {
			flushAcc(acc, oBuf.Data)
		}
		if err := dmaOut(d, st.oSeg, int64(n*t.M*4), oBuf, t.M*4); err != nil {
			return nil, err
		}
		x.charge(&x.b.Other)
	}
	if !cost {
		st.readO(t)
	}
	return x.result(OPLC, spec, p, 0), nil
}

// OPLCRCKernel is the buffer-resident OP+LC+RC design: both the canonical
// and the reordering LUT live in WRAM, and each group costs the 12
// instructions of §VI-I.
type OPLCRCKernel struct {
	Costs Costs
	Spec  lut.Spec
}

// NewOPLCRCKernel returns the kernel.
func NewOPLCRCKernel(c Costs, spec lut.Spec) *OPLCRCKernel {
	return &OPLCRCKernel{Costs: c, Spec: spec}
}

func (k *OPLCRCKernel) Name() string     { return OPLCRC.String() }
func (k *OPLCRCKernel) Variant() Variant { return OPLCRC }

func (k *OPLCRCKernel) Run(d *pim.DPU, t *Tile) (*Result, error) {
	return k.RunRequest(&Request{DPU: d, Tile: t})
}

func (k *OPLCRCKernel) RunRequest(req *Request) (*Result, error) {
	d, t, ws := req.DPU, req.Tile, req.WS.ensure()
	d.Reset()
	cost := d.CostOnly()
	spec := k.Spec
	bo := spec.EntryBytes()
	rb := spec.WeightRowBytes()
	needed := spec.CombinedBytes()
	if needed > d.Cfg.WRAMLUTBudget() {
		return nil, fmt.Errorf("kernels: OP+LC+RC LUTs %s need %d bytes, WRAM LUT budget is %d",
			spec, needed, d.Cfg.WRAMLUTBudget())
	}

	rows := int(spec.Rows())
	colB := byteWidthFor(spec.CanonicalBytes())
	sigB := byteWidthFor(spec.ReorderBytes())
	recBytes := colB + sigB
	sorted := grow(&ws.sorted, spec.P)
	sperm := grow(&ws.sperm, spec.P)
	st, err := stageCommon(d, t, spec, recBytes, ws, func(rec []byte, actCodes []int) error {
		col, sigma, err := ws.canonicalize(spec, actCodes, sorted, sperm)
		if err != nil {
			return err
		}
		lut.WriteUint(rec, 0, colB, uint32(col)*uint32(rows*bo))
		lut.WriteUint(rec[colB:], 0, sigB, uint32(sigma)*uint32(rows*rb))
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("kernels: OP+LC+RC: %w", err)
	}

	canonSeg, err := lutSegment(d, "CanonLUT", spec.CanonicalBytes(), func() ([]byte, error) {
		canon, err := lut.CachedCanonical(spec)
		if err != nil {
			return nil, err
		}
		return canon.Data, nil
	})
	if err != nil {
		return nil, fmt.Errorf("kernels: OP+LC+RC: %w", err)
	}
	reorderSeg, err := lutSegment(d, "ReorderLUT", spec.ReorderBytes(), func() ([]byte, error) {
		reorder, err := lut.CachedReorder(spec)
		if err != nil {
			return nil, err
		}
		return reorder.Data, nil
	})
	if err != nil {
		return nil, fmt.Errorf("kernels: OP+LC+RC: %w", err)
	}

	canonBuf, err := d.WRAM.Alloc("canon", int(spec.CanonicalBytes()))
	if err != nil {
		return nil, fmt.Errorf("kernels: OP+LC+RC: %w", err)
	}
	reorderBuf, err := d.WRAM.Alloc("reorder", int(spec.ReorderBytes()))
	if err != nil {
		return nil, fmt.Errorf("kernels: OP+LC+RC: %w", err)
	}
	x := ws.newBK(d)
	if err := dmaIn(d, canonSeg, 0, canonBuf, int(spec.CanonicalBytes())); err != nil {
		return nil, err
	}
	if err := dmaIn(d, reorderSeg, 0, reorderBuf, int(spec.ReorderBytes())); err != nil {
		return nil, err
	}
	x.charge(&x.b.LUTLoad)

	g := st.groups
	metaBuf, err := d.WRAM.Alloc("meta", g*recBytes)
	if err != nil {
		return nil, fmt.Errorf("kernels: OP+LC+RC: %w", err)
	}
	wBuf, err := d.WRAM.Alloc("wchunk", wChunk*st.rowBytes)
	if err != nil {
		return nil, fmt.Errorf("kernels: OP+LC+RC: %w", err)
	}
	oBuf, err := d.WRAM.Alloc("ocol", t.M*4)
	if err != nil {
		return nil, fmt.Errorf("kernels: OP+LC+RC: %w (tile M too large)", err)
	}
	var acc []int32
	var wcodes []uint32
	if !cost {
		acc = grow(&ws.acc, t.M)
		wcodes = grow(&ws.wcodes, wChunk)
	}

	for n := 0; n < t.N; n++ {
		if err := dmaIn(d, st.metaSeg, int64(n*g*recBytes), metaBuf, g*recBytes); err != nil {
			return nil, err
		}
		x.charge(&x.b.Transfer)
		if !cost {
			zeroAcc(acc)
		}
		d.Exec(pim.EvInstr, int64(t.M))
		x.charge(&x.b.Other)

		for gi := 0; gi < g; gi++ {
			var colOff, sigmaOff int
			if !cost {
				colOff = int(lut.ReadUint(metaBuf.Data[gi*recBytes:], 0, colB))
				sigmaOff = int(lut.ReadUint(metaBuf.Data[gi*recBytes+colB:], 0, sigB))
			}
			for m0 := 0; m0 < t.M; m0 += wChunk {
				mc := wChunk
				if m0+mc > t.M {
					mc = t.M - m0
				}
				if err := dmaIn(d, st.wSeg, int64((gi*t.M+m0)*st.rowBytes),
					wBuf, mc*st.rowBytes); err != nil {
					return nil, err
				}
				x.charge(&x.b.Transfer)

				if !cost {
					// Burst-wide: decode the chunk's packed codes once,
					// translate them through the group's reordering column in
					// one pass, then gather-accumulate from the canonical
					// column — both slice bases resolved once per burst.
					wc := wcodes[:mc]
					decodeCodes(wc, wBuf.Data, mc, st.rowBytes)
					translateCodes(wc, reorderBuf.Data[sigmaOff:], rb)
					gatherAccum(acc[m0:m0+mc], wc, canonBuf.Data, bo, colOff, bo)
				}
				mc64 := int64(mc)
				d.Exec(pim.EvInstr, mc64*k.Costs.RCIdxCalcInstr)
				x.charge(&x.b.IdxCalc)
				d.Exec(pim.EvInstr, mc64*k.Costs.RCReorderAccInstr)
				x.charge(&x.b.ReorderAccess)
				d.Exec(pim.EvInstr, mc64*k.Costs.RCCanonAccInstr)
				x.charge(&x.b.CanonAccess)
				d.Exec(pim.EvInstr, mc64*k.Costs.RCAccumInstr)
				x.charge(&x.b.Accumulate)
				d.Note(pim.EvWRAMAccess, mc64*4)
			}
		}
		if !cost {
			flushAcc(acc, oBuf.Data)
		}
		if err := dmaOut(d, st.oSeg, int64(n*t.M*4), oBuf, t.M*4); err != nil {
			return nil, err
		}
		x.charge(&x.b.Other)
	}
	if !cost {
		st.readO(t)
	}
	return x.result(OPLCRC, spec, spec.P, 0), nil
}
