package kernels

import "fmt"

// Burst-wide inner-loop primitives. The functional data programs used to
// walk one element at a time, re-deriving byte offsets and paying a
// ReadUint/ReadEntry call (switch + bounds checks) per lookup — on the host
// that overhead, not the modeled hardware, dominated full-grid wall-clock.
// These helpers process a whole DMA burst (one weight chunk) per call: the
// packed codes are decoded once into a uint32 vector, translated through
// the reordering slice in one pass, and gathered from the canonical slice
// straight into the int32 accumulator, with the entry width resolved once
// per burst instead of once per element. They move exactly the bytes the
// per-element loops moved, so outputs are bit-identical.

// decodeCodes reads count packed little-endian codes of the given byte
// width from the head of src into dst (len(dst) >= count).
func decodeCodes(dst []uint32, src []byte, count, width int) {
	switch width {
	case 1:
		src = src[:count]
		for i, b := range src {
			dst[i] = uint32(b)
		}
	case 2:
		src = src[:2*count]
		for i := 0; i < count; i++ {
			dst[i] = uint32(src[2*i]) | uint32(src[2*i+1])<<8
		}
	case 4:
		src = src[:4*count]
		for i := 0; i < count; i++ {
			dst[i] = uint32(src[4*i]) | uint32(src[4*i+1])<<8 |
				uint32(src[4*i+2])<<16 | uint32(src[4*i+3])<<24
		}
	default:
		panic(fmt.Sprintf("kernels: unsupported code width %d", width))
	}
}

// translateCodes maps every code through a reordering table of unsigned
// entries of the given width: codes[i] = table[codes[i]], in place. table
// is the slice base (entry 0 at offset 0).
func translateCodes(codes []uint32, table []byte, width int) {
	switch width {
	case 1:
		for i, c := range codes {
			codes[i] = uint32(table[c])
		}
	case 2:
		for i, c := range codes {
			off := 2 * c
			codes[i] = uint32(table[off]) | uint32(table[off+1])<<8
		}
	case 4:
		for i, c := range codes {
			off := 4 * c
			codes[i] = uint32(table[off]) | uint32(table[off+1])<<8 |
				uint32(table[off+2])<<16 | uint32(table[off+3])<<24
		}
	default:
		panic(fmt.Sprintf("kernels: unsupported reorder width %d", width))
	}
}

// gatherAccum adds the signed table entry addressed by each code to the
// matching accumulator slot: acc[i] += entry at byte offset
// base + codes[i]*stride, entries little-endian of the given width.
// len(acc) == len(codes).
func gatherAccum(acc []int32, codes []uint32, table []byte, stride, base, width int) {
	switch width {
	case 1:
		for i, c := range codes {
			acc[i] += int32(int8(table[base+int(c)*stride]))
		}
	case 2:
		for i, c := range codes {
			off := base + int(c)*stride
			acc[i] += int32(int16(uint16(table[off]) | uint16(table[off+1])<<8))
		}
	case 4:
		for i, c := range codes {
			off := base + int(c)*stride
			acc[i] += int32(uint32(table[off]) | uint32(table[off+1])<<8 |
				uint32(table[off+2])<<16 | uint32(table[off+3])<<24)
		}
	default:
		panic(fmt.Sprintf("kernels: unsupported entry width %d", width))
	}
}
