package kernels

import (
	"fmt"
	"testing"

	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/workload"
)

// Kernel micro-benchmarks: one bank tile per iteration, covering the
// packed-LUT designs in both execution modes. They are the repo's perf
// trajectory at kernel granularity (localut-bench -bench-json emits the
// same measurements as JSON); run with
//
//	go test -bench=. -benchtime=1x ./internal/kernels/
//
// for a smoke pass or longer -benchtime for stable numbers.

const benchM, benchK, benchN = 256, 256, 32

func benchKernel(b *testing.B, kn Kernel, mode Mode) {
	b.Helper()
	f := quant.W1A3
	cfg := pim.DefaultConfig()
	var tile *Tile
	var err error
	if mode == CyclesOnly {
		tile, err = NewShapeTile(benchM, benchK, benchN, f)
	} else {
		pair := workload.NewGEMMPair(benchM, benchK, benchN, f, 1)
		tile, err = NewTile(benchM, benchK, benchN, f, pair.W.Codes, pair.A.Codes)
	}
	if err != nil {
		b.Fatal(err)
	}
	d := DPUForMode(&cfg, mode)
	// Warm-up builds the process-wide LUT tables outside the timer.
	if _, err := kn.Run(d, tile); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kn.Run(d, tile); err != nil {
			b.Fatal(err)
		}
	}
}

func benchModes(b *testing.B, mk func() Kernel) {
	b.Helper()
	for _, mode := range []Mode{Functional, CyclesOnly} {
		b.Run(fmt.Sprintf("mode=%s", mode), func(b *testing.B) {
			benchKernel(b, mk(), mode)
		})
	}
}

func BenchmarkOPKernel(b *testing.B) {
	benchModes(b, func() Kernel { return NewOPKernel(DefaultCosts(), lut.MustSpec(quant.W1A3, 2)) })
}

func BenchmarkOPLCKernel(b *testing.B) {
	benchModes(b, func() Kernel { return NewOPLCKernel(DefaultCosts(), lut.MustSpec(quant.W1A3, 4)) })
}

func BenchmarkOPLCRCKernel(b *testing.B) {
	benchModes(b, func() Kernel { return NewOPLCRCKernel(DefaultCosts(), lut.MustSpec(quant.W1A3, 4)) })
}

func BenchmarkStreamKernelModes(b *testing.B) {
	benchModes(b, func() Kernel { return NewStreamKernel(DefaultCosts(), lut.MustSpec(quant.W1A3, 6), 2) })
}
