// Package kernels implements the per-bank GEMM kernels LoCaLUT's evaluation
// compares (§VI-A): the Naive PIM MAC kernel, the LUT-Tensor-Core-style
// bit-serial kernel (LTC), the operation-packed LUT kernel (OP), LUT
// canonicalization without and with the reordering LUT (OP+LC, OP+LC+RC),
// and the full LoCaLUT design with LUT slice streaming (OP+LC+RC+SS).
//
// Every kernel is functional *and* cycle-charged: it computes the exact
// integer tile product by moving real bytes through the pim.DPU's MRAM, DMA
// and WRAM objects, while charging the documented instruction budget of its
// inner loop. Unit tests check each kernel bit-exact against RefGEMM, so the
// timing model and the arithmetic can never drift apart.
//
// Each Run is structured as two interleaved programs — a cost program (the
// charge sequence, a data-independent function of the tile shape) and a
// data program (the byte work). Mode selects how much runs: Functional
// executes both; CyclesOnly executes only the cost program on an
// accounting DPU (pim.NewAccountingDPU) with a data-less NewShapeTile,
// producing bit-identical cycles, meters and breakdowns at O(meter
// updates) host cost. Mode-equivalence tests pin that guarantee for every
// kernel.
//
// Kernels are stateless after construction — all mutable state lives in the
// DPU and Tile passed to Run — so one kernel instance may execute many bank
// tiles concurrently from the sharded engine. Shared LUT tables come from
// the process-wide cache in package lut and are mapped read-only into each
// simulated bank (pim.MRAM.Map) rather than copied, keeping host memory
// independent of the bank count.
package kernels
