package kernels

import (
	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
)

// Workspace is the reusable host-side scratch of one kernel executor. Every
// kernel Run needs a handful of transient buffers — the int32 output-column
// accumulator, packed-code staging vectors, canonicalization scratch, the
// breakdown tracker, and (on the engine side) the RefGEMM verification
// buffers. A Workspace owns all of them with grow-only reuse, so a worker
// that executes many bank tiles through one Workspace allocates only on the
// first tile of each shape.
//
// A Workspace is not safe for concurrent use; give each worker its own.
// The zero value is ready (NewWorkspace exists for symmetry). Kernels run
// without one transparently: a nil Request.WS falls back to a private
// Workspace for that call.
type Workspace struct {
	acc      []int32  // output column accumulator (tile M)
	wcodes   []uint32 // burst-decoded packed weight codes (wChunk)
	actCodes []int    // staging: one group's activation codes (p)
	sorted   []int    // canonicalization scratch (p)
	sperm    []int    // stable sorting permutation scratch (p)
	codes    []uint32 // packing scratch (p)
	coefs    []int32  // LTC plane coefficients (bw)
	planeAcc []int32  // LTC per-plane partial sums (bw)
	entry    []byte   // OP(DRAM) per-lookup DMA landing pad (bo)
	st       stagedLUT
	x        bk
	refOut   []int32 // RefGEMM output scratch (M*N)
	refW     []int32 // RefGEMM decoded weights (M*K)
	refA     []int32 // RefGEMM decoded activations (K*N)
	wdecT    []int32 // weight codec decode table (Levels entries)
	adecT    []int32 // activation codec decode table (Levels entries)
	planeT   []byte  // LTC plane-bit table (Levels entries)

	// Canonicalization memo: one activation group's (column rank, Lehmer
	// rank, stable sort permutation) keyed by its packed code index. Bank
	// tiles along one grid row replay the same activation columns, so a
	// worker's arena sees every group many times.
	canonSpec lut.Spec
	canonMemo map[uint32]canonEntry
}

// canonEntry is one memoized canonicalization outcome. perm holds the
// stable sorting permutation for p <= len(perm); larger packings bypass
// the memo.
type canonEntry struct {
	col   int64
	sigma int64
	perm  [8]uint8
}

// canonMemoMax bounds the memo: workspaces live as long as their arena
// (process lifetime), and wide-key specs (up to 2^32 distinct groups)
// must not grow one worker's memo without limit. Common specs (key spaces
// up to ~2^16) never hit the bound; past it the memo resets and re-warms,
// trading a little recompute for bounded memory.
const canonMemoMax = 1 << 16

// canonicalize is Spec.CanonicalizeActsScratch memoized in the workspace:
// sperm (len p) is filled with the stable sorting permutation and the
// (col, sigma) ranks are returned; sorted (len p) is pure scratch whose
// contents are unspecified on return. Results are bit-identical to the
// uncached path; only host time changes.
func (w *Workspace) canonicalize(spec lut.Spec, actCodes, sorted, sperm []int) (col, sigma int64, err error) {
	p := spec.P
	// Bypass the memo when the permutation cannot be stored or the packed
	// key would not fit 32 bits (lut.NewSpec rejects such specs, but a
	// hand-built Spec must degrade to the direct path, not collide keys).
	if p > len(canonEntry{}.perm) || len(actCodes) != p || p*spec.Fmt.Act.Bits > 32 {
		return spec.CanonicalizeActsScratch(actCodes, sorted, sperm)
	}
	if w.canonSpec != spec || w.canonMemo == nil {
		w.canonSpec = spec
		w.canonMemo = make(map[uint32]canonEntry)
	}
	aBits := uint(spec.Fmt.Act.Bits)
	var key uint32
	for i, c := range actCodes {
		key |= uint32(c) << (uint(i) * aBits)
	}
	if e, ok := w.canonMemo[key]; ok {
		for i := 0; i < p; i++ {
			sperm[i] = int(e.perm[i])
		}
		return e.col, e.sigma, nil
	}
	col, sigma, err = spec.CanonicalizeActsScratch(actCodes, sorted, sperm)
	if err != nil {
		return 0, 0, err
	}
	e := canonEntry{col: col, sigma: sigma}
	for i, v := range sperm {
		e.perm[i] = uint8(v)
	}
	if len(w.canonMemo) >= canonMemoMax {
		clear(w.canonMemo)
	}
	w.canonMemo[key] = e
	return col, sigma, nil
}

// NewWorkspace returns an empty workspace.
func NewWorkspace() *Workspace { return &Workspace{} }

// ensure falls back to a private workspace when the caller did not supply
// one, keeping the legacy Run(d, t) entry point allocation-compatible with
// its pre-workspace behavior.
func (w *Workspace) ensure() *Workspace {
	if w == nil {
		return &Workspace{}
	}
	return w
}

// grow returns *s resized to n elements, reallocating only when capacity
// is insufficient — the grow-only reuse policy of all workspace scratch.
func grow[T any](s *[]T, n int) []T {
	if cap(*s) < n {
		*s = make([]T, n)
	}
	return (*s)[:n]
}

// newBKWS rebinds the workspace's breakdown tracker to the DPU, replacing
// the per-run newBK allocation.
func (w *Workspace) newBK(d *pim.DPU) *bk {
	w.x = bk{d: d, last: d.Meter.Cycles}
	return &w.x
}

// Request bundles one kernel execution: the DPU to run on, the tile to
// execute, and an optional Workspace to recycle scratch through. It is the
// unit the pooled execution engine hands to shard workers.
type Request struct {
	DPU  *pim.DPU
	Tile *Tile
	WS   *Workspace
}

// decodeTable materializes a codec's full decode map into ws-backed
// scratch: tab[v] == codec.Decode(v) for every masked code v. Decode masks
// its input, so indexing with code&mask reproduces Decode bit-exactly while
// replacing a per-element method call (switch included) with one load.
func decodeTable(dst *[]int32, c quant.Codec) []int32 {
	tab := grow(dst, c.Levels())
	for i := range tab {
		tab[i] = c.Decode(uint32(i))
	}
	return tab
}

// RefGEMMInto computes the exact integer reference product of the tile's
// codes into workspace-backed scratch. The returned slice is owned by the
// workspace and valid until the next RefGEMMInto call on it.
func RefGEMMInto(ws *Workspace, t *Tile) []int32 {
	out := grow(&ws.refOut, t.M*t.N)
	clear(out)
	wt := decodeTable(&ws.wdecT, t.Fmt.Weight)
	wMask := t.Fmt.Weight.Mask()
	wv := grow(&ws.refW, t.M*t.K)
	for i, c := range t.W {
		wv[i] = wt[uint32(c)&wMask]
	}
	at := decodeTable(&ws.adecT, t.Fmt.Act)
	aMask := t.Fmt.Act.Mask()
	av := grow(&ws.refA, t.K*t.N)
	for i, c := range t.A {
		av[i] = at[uint32(c)&aMask]
	}
	refGEMM(t, wv, av, out)
	return out
}

// refGEMM is the shared triple loop of RefGEMM and RefGEMMInto.
func refGEMM(t *Tile, wv, av, out []int32) {
	if t.N == 1 {
		// Column-stripe tiles (the dominant full-grid shape) degenerate to
		// one dot product per row; the dedicated loop avoids per-k slicing.
		for m := 0; m < t.M; m++ {
			wrow := wv[m*t.K : (m+1)*t.K]
			var s int32
			for k, w := range wrow {
				s += w * av[k]
			}
			out[m] = s
		}
		return
	}
	for m := 0; m < t.M; m++ {
		wrow := wv[m*t.K : (m+1)*t.K]
		orow := out[m*t.N : (m+1)*t.N]
		for k := 0; k < t.K; k++ {
			w := wrow[k]
			if w == 0 {
				continue
			}
			arow := av[k*t.N : (k+1)*t.N]
			for n := 0; n < t.N; n++ {
				orow[n] += w * arow[n]
			}
		}
	}
}

// VerifyTile checks t.O bit-exactly against the integer reference,
// recycling the workspace's verification scratch. It is the pooled
// counterpart of comparing against RefGEMM with reflect.DeepEqual.
func VerifyTile(ws *Workspace, t *Tile) bool {
	ref := RefGEMMInto(ws, t)
	if len(ref) != len(t.O) {
		return false
	}
	for i, v := range ref {
		if t.O[i] != v {
			return false
		}
	}
	return true
}
