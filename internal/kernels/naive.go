package kernels

import (
	"fmt"

	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
)

// NaiveKernel is conventional PIM: the in-order core performs every MAC with
// its native 8-bit multiplier. The host pre-decodes the quantized codes to
// int8 values (all evaluated formats fit int8), ships W row-major and A
// column-major, and the device streams weight rows against WRAM-staged
// activation columns.
type NaiveKernel struct {
	Costs Costs
}

// NewNaiveKernel returns the baseline kernel with the given cost table.
func NewNaiveKernel(c Costs) *NaiveKernel { return &NaiveKernel{Costs: c} }

func (k *NaiveKernel) Name() string     { return Naive.String() }
func (k *NaiveKernel) Variant() Variant { return Naive }

// Run executes the tile. The DPU must be freshly reset.
func (k *NaiveKernel) Run(d *pim.DPU, t *Tile) (*Result, error) {
	return k.RunRequest(&Request{DPU: d, Tile: t})
}

func (k *NaiveKernel) RunRequest(req *Request) (*Result, error) {
	d, t, ws := req.DPU, req.Tile, req.WS.ensure()
	d.Reset()
	cost := d.CostOnly()

	// Host-side staging into the bank (uncharged here; the orchestrator
	// charges the host->PIM link for these bytes).
	wSeg, err := d.MRAM.Alloc("W", int64(t.M*t.K))
	if err != nil {
		return nil, fmt.Errorf("naive: %w", err)
	}
	aSeg, err := d.MRAM.Alloc("A", int64(t.K*t.N))
	if err != nil {
		return nil, fmt.Errorf("naive: %w", err)
	}
	oSeg, err := d.MRAM.Alloc("O", int64(t.M*t.N*4))
	if err != nil {
		return nil, fmt.Errorf("naive: %w", err)
	}
	if !cost {
		// Decode through workspace tables: one load per element instead of
		// a per-element Decode call (bit-identical, Decode masks its input).
		wt := decodeTable(&ws.wdecT, t.Fmt.Weight)
		wMask := t.Fmt.Weight.Mask()
		for i, c := range t.W {
			wSeg.Data[i] = byte(int8(wt[uint32(c)&wMask]))
		}
		// A column-major so device column DMAs are contiguous.
		at := decodeTable(&ws.adecT, t.Fmt.Act)
		aMask := t.Fmt.Act.Mask()
		for kk := 0; kk < t.K; kk++ {
			arow := t.A[kk*t.N : (kk+1)*t.N]
			for n, c := range arow {
				aSeg.Data[n*t.K+kk] = byte(int8(at[uint32(c)&aMask]))
			}
		}
	}

	// Device WRAM staging: one weight row, a chunk of activation columns,
	// and one output row chunk.
	nc := (d.WRAM.Capacity() - t.K - 4096) / t.K
	if nc < 1 {
		nc = 1
	}
	if nc > t.N {
		nc = t.N
	}
	wRow, err := d.WRAM.Alloc("wrow", t.K)
	if err != nil {
		return nil, fmt.Errorf("naive: %w", err)
	}
	aChunk, err := d.WRAM.Alloc("acols", nc*t.K)
	if err != nil {
		return nil, fmt.Errorf("naive: %w", err)
	}
	oRow, err := d.WRAM.Alloc("orow", nc*4)
	if err != nil {
		return nil, fmt.Errorf("naive: %w", err)
	}

	x := ws.newBK(d)
	for n0 := 0; n0 < t.N; n0 += nc {
		ncols := nc
		if n0+ncols > t.N {
			ncols = t.N - n0
		}
		if err := dmaIn(d, aSeg, int64(n0*t.K), aChunk, ncols*t.K); err != nil {
			return nil, err
		}
		x.charge(&x.b.Transfer)

		for m := 0; m < t.M; m++ {
			if err := dmaIn(d, wSeg, int64(m*t.K), wRow, t.K); err != nil {
				return nil, err
			}
			x.charge(&x.b.Transfer)

			// The per-column charge sequence is a linear function of the trip
			// count, so the cost program folds the ncols columns into one
			// batch of identical totals.
			if cost {
				d.Exec(pim.EvInstr, int64(ncols)*int64(t.K)*k.Costs.NaiveMACInstr)
				d.Exec(pim.EvMul8, int64(ncols)*int64(t.K))
				d.Note(pim.EvWRAMAccess, int64(ncols)*int64(2*t.K))
			} else {
				for j := 0; j < ncols; j++ {
					acol := aChunk.Data[j*t.K : (j+1)*t.K]
					var acc int32
					for kk := 0; kk < t.K; kk++ {
						acc += int32(int8(wRow.Data[kk])) * int32(int8(acol[kk]))
					}
					lut.WriteEntry(oRow.Data, j, 4, acc)
					d.Exec(pim.EvInstr, int64(t.K)*k.Costs.NaiveMACInstr)
					d.Exec(pim.EvMul8, int64(t.K))
					d.Note(pim.EvWRAMAccess, int64(2*t.K))
				}
			}
			x.charge(&x.b.Accumulate)
			if err := dmaOut(d, oSeg, int64((m*t.N+n0)*4), oRow, ncols*4); err != nil {
				return nil, err
			}
			x.charge(&x.b.Other)
		}
	}

	// Read the output back out of the bank image (host gather is charged
	// by the orchestrator).
	if !cost {
		for i := 0; i < t.M*t.N; i++ {
			t.O[i] = lut.ReadEntry(oSeg.Data, i, 4)
		}
	}
	return x.result(Naive, lut.Spec{}, 0, 0), nil
}
