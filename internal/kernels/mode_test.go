package kernels

import (
	"testing"

	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/workload"
)

// modeKernels enumerates every kernel implementation (the six designs plus
// the Fig. 3(a) DRAM-resident OP candidate) at representative design points.
func modeKernels(t *testing.T, f quant.Format) []Kernel {
	t.Helper()
	c := DefaultCosts()
	return []Kernel{
		NewNaiveKernel(c),
		NewLTCKernel(c),
		NewOPKernel(c, lut.MustSpec(f, 2)),
		NewOPDRAMKernel(c, lut.MustSpec(f, 4)),
		NewOPLCKernel(c, lut.MustSpec(f, 4)),
		NewOPLCRCKernel(c, lut.MustSpec(f, 4)),
		NewStreamKernel(c, lut.MustSpec(f, 6), 2),
	}
}

// TestCyclesOnlyMatchesFunctional pins the tentpole guarantee at kernel
// granularity: the cost program charges bit-identical cycles, event counts
// and phase breakdowns to the functional data program, for every kernel,
// across shapes including ragged group/chunk edges.
func TestCyclesOnlyMatchesFunctional(t *testing.T) {
	shapes := []struct{ m, k, n int }{
		{16, 24, 8},
		{300, 64, 5}, // crosses the wChunk=256 boundary with a ragged tail
		{64, 250, 3}, // K not a multiple of any tested p
		{1, 7, 1},    // degenerate tile
	}
	for _, f := range []quant.Format{quant.W1A3, quant.W2A2} {
		for _, kn := range modeKernels(t, f) {
			for _, sh := range shapes {
				pair := workload.NewGEMMPair(sh.m, sh.k, sh.n, f, 7)
				tile, err := NewTile(sh.m, sh.k, sh.n, f, pair.W.Codes, pair.A.Codes)
				if err != nil {
					t.Fatal(err)
				}
				cfg := pim.DefaultConfig()
				fd := pim.NewDPU(&cfg)
				fres, err := kn.Run(fd, tile)
				if err != nil {
					t.Fatalf("%s %s %dx%dx%d functional: %v", kn.Name(), f.Name(), sh.m, sh.k, sh.n, err)
				}

				shapeTile, err := NewShapeTile(sh.m, sh.k, sh.n, f)
				if err != nil {
					t.Fatal(err)
				}
				cd := pim.NewAccountingDPU(&cfg)
				cres, err := kn.Run(cd, shapeTile)
				if err != nil {
					t.Fatalf("%s %s %dx%dx%d cycles-only: %v", kn.Name(), f.Name(), sh.m, sh.k, sh.n, err)
				}

				tag := kn.Name() + " " + f.Name()
				if fres.Cycles != cres.Cycles {
					t.Errorf("%s %dx%dx%d: cycles %d (functional) != %d (cycles-only)",
						tag, sh.m, sh.k, sh.n, fres.Cycles, cres.Cycles)
				}
				if fd.Meter != cd.Meter {
					t.Errorf("%s %dx%dx%d: meters diverge\n functional  %+v\n cycles-only %+v",
						tag, sh.m, sh.k, sh.n, fd.Meter, cd.Meter)
				}
				if fres.Breakdown != cres.Breakdown {
					t.Errorf("%s %dx%dx%d: breakdowns diverge\n functional  %+v\n cycles-only %+v",
						tag, sh.m, sh.k, sh.n, fres.Breakdown, cres.Breakdown)
				}
				if fres.Seconds != cres.Seconds {
					t.Errorf("%s %dx%dx%d: seconds %g != %g", tag, sh.m, sh.k, sh.n, fres.Seconds, cres.Seconds)
				}
			}
		}
	}
}

// TestCyclesOnlyLeavesOutputUntouched checks that the cost program computes
// nothing: a shape tile has no output and the accounting DPU no bytes.
func TestCyclesOnlyLeavesOutputUntouched(t *testing.T) {
	f := quant.W1A3
	kn := NewOPKernel(DefaultCosts(), lut.MustSpec(f, 2))
	tile, err := NewShapeTile(8, 16, 4, f)
	if err != nil {
		t.Fatal(err)
	}
	cfg := pim.DefaultConfig()
	d := pim.NewAccountingDPU(&cfg)
	if _, err := kn.Run(d, tile); err != nil {
		t.Fatal(err)
	}
	if tile.O != nil || tile.W != nil || tile.A != nil {
		t.Fatalf("shape tile gained data: O=%v W=%v A=%v", tile.O != nil, tile.W != nil, tile.A != nil)
	}
}

// TestAccountingDPUCapacityParity checks that capacity exhaustion fails
// identically in both modes — the WRAM bound is part of the cost model.
func TestAccountingDPUCapacityParity(t *testing.T) {
	f := quant.W4A4
	// p=4 makes the combined W4A4 LUTs far exceed the default WRAM budget.
	kn := NewOPLCRCKernel(DefaultCosts(), lut.MustSpec(f, 4))
	cfg := pim.DefaultConfig()
	pair := workload.NewGEMMPair(8, 16, 4, f, 7)
	tile, _ := NewTile(8, 16, 4, f, pair.W.Codes, pair.A.Codes)
	_, ferr := kn.Run(pim.NewDPU(&cfg), tile)
	shapeTile, _ := NewShapeTile(8, 16, 4, f)
	_, cerr := kn.Run(pim.NewAccountingDPU(&cfg), shapeTile)
	if (ferr == nil) != (cerr == nil) {
		t.Fatalf("mode error divergence: functional=%v cycles-only=%v", ferr, cerr)
	}
	if ferr != nil && ferr.Error() != cerr.Error() {
		t.Fatalf("mode error text divergence:\n functional  %v\n cycles-only %v", ferr, cerr)
	}
}
