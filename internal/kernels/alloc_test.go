package kernels

import (
	"testing"

	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/workload"
)

// pooledKernels builds one instance of every design at a spec that fits the
// default machine.
func pooledKernels() []Kernel {
	c := DefaultCosts()
	return []Kernel{
		NewNaiveKernel(c),
		NewLTCKernel(c),
		NewOPKernel(c, lut.MustSpec(quant.W1A3, 2)),
		NewOPLCKernel(c, lut.MustSpec(quant.W1A3, 4)),
		NewOPLCRCKernel(c, lut.MustSpec(quant.W1A3, 4)),
		NewStreamKernel(c, lut.MustSpec(quant.W1A3, 6), 2),
		NewOPDRAMKernel(c, lut.MustSpec(quant.W1A3, 4)),
	}
}

// TestRunRequestMatchesRun pins the workspace contract: executing through a
// shared, recycled Workspace (and a recycled DPU) produces bit-identical
// results and outputs to the legacy per-call entry point, including when
// differently shaped tiles alternate through one workspace — the pattern a
// shard worker's arena sees on a ragged grid.
func TestRunRequestMatchesRun(t *testing.T) {
	cfg := pim.DefaultConfig()
	shapes := [][3]int{{24, 40, 8}, {7, 33, 5}, {24, 40, 8}, {16, 48, 1}}
	for _, kn := range pooledKernels() {
		ws := NewWorkspace()
		pooledDPU := pim.NewDPU(&cfg)
		for run, s := range shapes {
			pair := workload.NewGEMMPair(s[0], s[1], s[2], quant.W1A3, int64(run))
			fresh, err := NewTile(s[0], s[1], s[2], quant.W1A3, pair.W.Codes, pair.A.Codes)
			if err != nil {
				t.Fatal(err)
			}
			freshDPU := pim.NewDPU(&cfg)
			want, err := kn.Run(freshDPU, fresh)
			if err != nil {
				t.Fatalf("%s: %v", kn.Name(), err)
			}

			pooledTile, err := NewTile(s[0], s[1], s[2], quant.W1A3, pair.W.Codes, pair.A.Codes)
			if err != nil {
				t.Fatal(err)
			}
			got, err := kn.RunRequest(&Request{DPU: pooledDPU, Tile: pooledTile, WS: ws})
			if err != nil {
				t.Fatalf("%s pooled: %v", kn.Name(), err)
			}

			if *got != *want {
				t.Fatalf("%s run %d: pooled result diverges:\npooled %+v\nfresh  %+v",
					kn.Name(), run, got, want)
			}
			if pooledDPU.Meter != freshDPU.Meter {
				t.Fatalf("%s run %d: pooled meter diverges:\npooled %+v\nfresh  %+v",
					kn.Name(), run, pooledDPU.Meter, freshDPU.Meter)
			}
			for i := range fresh.O {
				if pooledTile.O[i] != fresh.O[i] {
					t.Fatalf("%s run %d: pooled output diverges at %d", kn.Name(), run, i)
				}
			}
		}
	}
}

// TestVerifyTile checks the pooled verifier agrees with RefGEMM.
func TestVerifyTile(t *testing.T) {
	pair := workload.NewGEMMPair(9, 17, 5, quant.W2A2, 3)
	tile, err := NewTile(9, 17, 5, quant.W2A2, pair.W.Codes, pair.A.Codes)
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspace()
	copy(tile.O, RefGEMM(tile))
	if !VerifyTile(ws, tile) {
		t.Fatal("VerifyTile rejected the reference output")
	}
	tile.O[7]++
	if VerifyTile(ws, tile) {
		t.Fatal("VerifyTile accepted a corrupted output")
	}
}

// TestSteadyStateAllocations pins the zero-allocation contract of the
// per-tile hot path: once a worker's DPU + Workspace pair has executed a
// tile shape once, re-running it allocates (almost) nothing — the Result
// struct is the only steady-state allocation allowed, with one spare for
// map-internals noise.
func TestSteadyStateAllocations(t *testing.T) {
	cfg := pim.DefaultConfig()
	const m, k, n = 32, 48, 4
	pair := workload.NewGEMMPair(m, k, n, quant.W1A3, 1)
	for _, kn := range pooledKernels() {
		kn := kn
		t.Run(kn.Name(), func(t *testing.T) {
			tile, err := NewTile(m, k, n, quant.W1A3, pair.W.Codes, pair.A.Codes)
			if err != nil {
				t.Fatal(err)
			}
			ws := NewWorkspace()
			d := pim.NewDPU(&cfg)
			req := &Request{DPU: d, Tile: tile, WS: ws}
			// Warm: grows scratch, builds shared LUTs, settles the memos.
			for i := 0; i < 3; i++ {
				if _, err := kn.RunRequest(req); err != nil {
					t.Fatal(err)
				}
			}
			allocs := testing.AllocsPerRun(20, func() {
				if _, err := kn.RunRequest(req); err != nil {
					t.Fatal(err)
				}
			})
			if allocs > 2 {
				t.Errorf("%s steady state allocates %.1f objects per tile, want <= 2", kn.Name(), allocs)
			}
		})
	}
}

// TestGatherPrimitivesMatchScalar cross-checks the burst-wide inner-loop
// primitives against the scalar ReadUint/ReadEntry walks they replaced, at
// every supported width.
func TestGatherPrimitivesMatchScalar(t *testing.T) {
	for _, width := range []int{1, 2, 4} {
		const count = 37
		src := make([]byte, count*width)
		for i := range src {
			src[i] = byte(i*37 + 11)
		}
		dst := make([]uint32, count)
		decodeCodes(dst, src, count, width)
		for i := 0; i < count; i++ {
			if want := lut.ReadUint(src, i, width); dst[i] != want {
				t.Fatalf("decodeCodes width %d at %d: %d != %d", width, i, dst[i], want)
			}
		}

		// translateCodes against per-element ReadUint.
		table := make([]byte, 256*width)
		for i := range table {
			table[i] = byte(i * 13)
		}
		codes := make([]uint32, count)
		want := make([]uint32, count)
		for i := range codes {
			codes[i] = uint32(i * 5 % 200)
			want[i] = lut.ReadUint(table, int(codes[i]), width)
		}
		translateCodes(codes, table, width)
		for i := range codes {
			if codes[i] != want[i] {
				t.Fatalf("translateCodes width %d at %d: %d != %d", width, i, codes[i], want[i])
			}
		}
	}

	// gatherAccum against per-element ReadEntry with stride and base.
	for _, bo := range []int{1, 2, 4} {
		table := make([]byte, 64*bo+3)
		for i := range table {
			table[i] = byte(i*29 + 7)
		}
		const base, n = 3, 16
		codes := make([]uint32, n)
		acc := make([]int32, n)
		wantAcc := make([]int32, n)
		for i := range codes {
			codes[i] = uint32(i * 3)
			acc[i] = int32(i) - 5
			wantAcc[i] = acc[i] + lut.ReadEntry(table[base+int(codes[i])*bo:], 0, bo)
		}
		gatherAccum(acc, codes, table, bo, base, bo)
		for i := range acc {
			if acc[i] != wantAcc[i] {
				t.Fatalf("gatherAccum width %d at %d: %d != %d", bo, i, acc[i], wantAcc[i])
			}
		}
	}
}

// TestWorkspaceCanonicalizeMatchesDirect checks memo hits reproduce the
// direct canonicalization bit-for-bit across every group content.
func TestWorkspaceCanonicalizeMatchesDirect(t *testing.T) {
	spec := lut.MustSpec(quant.W1A3, 3)
	ws := NewWorkspace()
	p := spec.P
	sorted := make([]int, p)
	sperm := make([]int, p)
	wantSorted := make([]int, p)
	wantPerm := make([]int, p)
	levels := spec.Fmt.Act.Levels()
	// Two passes: the first populates the memo, the second hits it.
	for pass := 0; pass < 2; pass++ {
		for x := 0; x < levels*levels*levels; x++ {
			acts := []int{x % levels, (x / levels) % levels, (x / levels / levels) % levels}
			wantCol, wantSigma, err := spec.CanonicalizeActsScratch(acts, wantSorted, wantPerm)
			if err != nil {
				t.Fatal(err)
			}
			col, sigma, err := ws.canonicalize(spec, acts, sorted, sperm)
			if err != nil {
				t.Fatal(err)
			}
			if col != wantCol || sigma != wantSigma {
				t.Fatalf("pass %d acts %v: (%d,%d) != (%d,%d)", pass, acts, col, sigma, wantCol, wantSigma)
			}
			for i := range wantPerm {
				if sperm[i] != wantPerm[i] {
					t.Fatalf("pass %d acts %v: perm %v != %v", pass, acts, sperm[:p], wantPerm)
				}
			}
		}
	}
}

// TestRefGEMMIntoMatchesRefGEMM checks the pooled reference against the
// allocating one on assorted shapes and formats.
func TestRefGEMMIntoMatchesRefGEMM(t *testing.T) {
	ws := NewWorkspace()
	for i, f := range []quant.Format{quant.W1A3, quant.W2A2, quant.W4A4} {
		for _, s := range [][3]int{{5, 9, 3}, {1, 16, 1}, {8, 4, 8}} {
			pair := workload.NewGEMMPair(s[0], s[1], s[2], f, int64(i))
			tile, err := NewTile(s[0], s[1], s[2], f, pair.W.Codes, pair.A.Codes)
			if err != nil {
				t.Fatal(err)
			}
			want := RefGEMM(tile)
			got := RefGEMMInto(ws, tile)
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("%s %v: RefGEMMInto diverges at %d", f.Name(), s, j)
				}
			}
		}
	}
}

var benchSink *Result

// BenchmarkPooledStreamKernel measures the arena-style hot path (recycled
// DPU + Workspace) for the full LoCaLUT design — the benchmem companion to
// TestSteadyStateAllocations.
func BenchmarkPooledStreamKernel(b *testing.B) {
	cfg := pim.DefaultConfig()
	pair := workload.NewGEMMPair(benchM, benchK, benchN, quant.W1A3, 1)
	tile, err := NewTile(benchM, benchK, benchN, quant.W1A3, pair.W.Codes, pair.A.Codes)
	if err != nil {
		b.Fatal(err)
	}
	kn := NewStreamKernel(DefaultCosts(), lut.MustSpec(quant.W1A3, 6), 2)
	req := &Request{DPU: pim.NewDPU(&cfg), Tile: tile, WS: NewWorkspace()}
	if _, err := kn.RunRequest(req); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := kn.RunRequest(req)
		if err != nil {
			b.Fatal(err)
		}
		benchSink = res
	}
}
