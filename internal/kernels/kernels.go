package kernels

import (
	"fmt"

	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
)

// Variant enumerates the kernel designs in the paper's presentation order.
type Variant int

const (
	// Naive is conventional PIM: the in-order core with its native 8-bit
	// multipliers, no LUTs.
	Naive Variant = iota
	// LTC is the LUT Tensor Core adaptation: bit-serial weights over
	// runtime-built activation subset-sum tables.
	LTC
	// OP is the buffer-resident operation-packed LUT (§III-B2).
	OP
	// OPLC adds LUT canonicalization with software weight reordering.
	OPLC
	// OPLCRC adds the reordering LUT (still buffer-resident).
	OPLCRC
	// LoCaLUT is OP+LC+RC+SS: DRAM-resident LUTs with slice streaming.
	LoCaLUT
	// NumVariants counts the designs.
	NumVariants
)

var variantNames = [...]string{"NaivePIM", "LTC", "OP", "OP+LC", "OP+LC+RC", "LoCaLUT"}

func (v Variant) String() string {
	if v >= 0 && int(v) < len(variantNames) {
		return variantNames[v]
	}
	return fmt.Sprintf("Variant(%d)", int(v))
}

// Variants lists all designs in order.
var Variants = []Variant{Naive, LTC, OP, OPLC, OPLCRC, LoCaLUT}

// Mode selects how a kernel executes a tile.
//
// Every kernel's Run is two interleaved programs: a cost program (the
// Exec/Note/DMA charge sequence, a data-independent function of the tile
// shape, the spec and the machine config) and a data program (byte movement
// through MRAM/WRAM and the per-element lookups that fill t.O). Functional
// runs both; CyclesOnly runs only the cost program on an accounting DPU —
// same loop trip counts, same charges in the same order, so cycles, meters
// and breakdowns are bit-identical to Functional, at O(meter updates) host
// work instead of O(M·N·K) byte work. CyclesOnly produces no output (t.O is
// untouched) and therefore cannot be verified against the reference.
type Mode int

const (
	// Functional executes both the cost and the data program.
	Functional Mode = iota
	// CyclesOnly executes only the cost program.
	CyclesOnly
)

var modeNames = [...]string{"functional", "cycles-only"}

func (m Mode) String() string {
	if m >= 0 && int(m) < len(modeNames) {
		return modeNames[m]
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// DPUForMode builds the DPU a kernel run under the mode needs: a functional
// DPU with backed memories, or a segment-less accounting DPU.
func DPUForMode(cfg *pim.Config, m Mode) *pim.DPU {
	if m == CyclesOnly {
		return pim.NewAccountingDPU(cfg)
	}
	return pim.NewDPU(cfg)
}

// Costs bundles the per-inner-loop instruction budgets of each kernel. All
// values are DPU instructions (1 cycle each unless noted); they encode the
// realistic UPMEM assembly the paper's kernels compile to and are the only
// free calibration parameters of the simulator.
type Costs struct {
	// NaiveMACInstr: per-MAC instructions besides the 8-bit multiply
	// (2 WRAM loads, add, pointer/branch bookkeeping).
	NaiveMACInstr int64
	// LTCGroupInstr: per 4-activation plane-group lookup (index load,
	// nibble extract, address, table load, accumulate, loop bookkeeping).
	LTCGroupInstr int64
	// LTCTableBuildInstr: per table entry during the runtime subset-sum
	// table construction (gray-code add + store + bookkeeping).
	LTCTableBuildInstr int64
	// LTCCombineInstr: per output per bit-plane shift-accumulate combine.
	LTCCombineInstr int64
	// OPGroupInstr: per packed lookup of the OP kernel (w load, index
	// load, concat-address, LUT load, accumulate, bookkeeping).
	OPGroupInstr int64
	// LCSWPerElement: OP+LC software reordering instructions per packed
	// element (unpack, permute move, repack shift-or).
	LCSWPerElement int64
	// LCSWGroupInstr: OP+LC fixed per-group instructions besides the
	// per-element reordering (loads, address, lookup, accumulate).
	LCSWGroupInstr int64
	// The reordering-LUT lookup sequence of §VI-I — "lookup operations for
	// canonical LUT and reordering LUT with accumulation consist of 12
	// instructions" — split into Fig. 16(b) phases: index calculation,
	// reorder access, canonical access, and accumulation+loop upkeep.
	// The buffer-resident OP+LC+RC kernel charges
	// IdxCalc+Reorder+Canon+Accum = 12 per group.
	RCIdxCalcInstr, RCReorderAccInstr, RCCanonAccInstr, RCAccumInstr int64
	// The slice-streaming kernel accumulates its k resident slices in a
	// register (RCStreamRegInstr per lookup: add + loop) and pays one WRAM
	// output read-modify-write per row and slice batch (RCOutUpdateInstr),
	// so per-group cost is IdxCalc+Reorder+Canon+Reg + OutUpdate/k —
	// 13 at k=1 down to ~10.4 at k=8, bracketing the paper's 12.
	RCStreamRegInstr, RCOutUpdateInstr int64
}

// DefaultCosts returns the calibrated instruction budgets.
func DefaultCosts() Costs {
	return Costs{
		NaiveMACInstr:      5, // + CyclesPerMul8 => ~7 cycles/MAC
		LTCGroupInstr:      10,
		LTCTableBuildInstr: 2,
		LTCCombineInstr:    2,
		OPGroupInstr:       9,
		LCSWPerElement:     5,
		LCSWGroupInstr:     8,
		RCIdxCalcInstr:     6,
		RCReorderAccInstr:  1,
		RCCanonAccInstr:    1,
		RCAccumInstr:       4,
		RCStreamRegInstr:   2,
		RCOutUpdateInstr:   3,
	}
}

// Tile is one bank's share of a GEMM: O[m][n] = sum_k W[m][k] * A[k][n]
// over decoded code values. W codes are row-major M x K, A codes are
// row-major K x N, O is row-major M x N.
type Tile struct {
	M, K, N int
	Fmt     quant.Format
	W       []uint8
	A       []uint8
	O       []int32
}

// NewTile validates shapes and allocates the output.
func NewTile(m, k, n int, f quant.Format, w, a []uint8) (*Tile, error) {
	if m <= 0 || k <= 0 || n <= 0 {
		return nil, fmt.Errorf("kernels: invalid tile %dx%dx%d", m, k, n)
	}
	if len(w) != m*k {
		return nil, fmt.Errorf("kernels: W has %d codes, want %d", len(w), m*k)
	}
	if len(a) != k*n {
		return nil, fmt.Errorf("kernels: A has %d codes, want %d", len(a), k*n)
	}
	return &Tile{M: m, K: k, N: n, Fmt: f, W: w, A: a, O: make([]int32, m*n)}, nil
}

// NewShapeTile builds a data-less tile for cycles-only runs: the shape and
// format drive the cost program, and no code arrays or output are allocated.
// The DPU mode — not the tile — selects which program runs, so a shape tile
// must only be paired with an accounting DPU: on a functional DPU the data
// program will index the nil code slices and panic.
func NewShapeTile(m, k, n int, f quant.Format) (*Tile, error) {
	if m <= 0 || k <= 0 || n <= 0 {
		return nil, fmt.Errorf("kernels: invalid tile %dx%dx%d", m, k, n)
	}
	return &Tile{M: m, K: k, N: n, Fmt: f}, nil
}

// RefGEMM computes the exact integer reference product of the tile's codes.
func RefGEMM(t *Tile) []int32 {
	out := make([]int32, t.M*t.N)
	wv := make([]int32, t.M*t.K)
	for i, c := range t.W {
		wv[i] = t.Fmt.Weight.Decode(uint32(c))
	}
	av := make([]int32, t.K*t.N)
	for i, c := range t.A {
		av[i] = t.Fmt.Act.Decode(uint32(c))
	}
	refGEMM(t, wv, av, out)
	return out
}

// Breakdown attributes kernel cycles to the Fig. 16(b) phases.
type Breakdown struct {
	CanonAccess   int64 // canonical LUT access
	ReorderAccess int64 // reordering LUT access
	IdxCalc       int64 // reordering/canonical LUT index calculation
	Transfer      int64 // activation/weight transfer (DMA)
	LUTLoad       int64 // LUT (slice) loading DMA
	Accumulate    int64 // accumulation and loop upkeep
	Other         int64 // everything else (table builds, writeback, setup)
}

// Total sums all phases.
func (b *Breakdown) Total() int64 {
	return b.CanonAccess + b.ReorderAccess + b.IdxCalc + b.Transfer +
		b.LUTLoad + b.Accumulate + b.Other
}

// Result reports one kernel execution on one bank.
type Result struct {
	Variant   Variant
	Spec      lut.Spec // zero Spec for Naive/LTC
	P         int      // packing degree used (0 for Naive/LTC)
	K         int      // slice batch for LoCaLUT (0 otherwise)
	Cycles    int64
	Seconds   float64
	Breakdown Breakdown
}

// Kernel runs one tile on one DPU.
type Kernel interface {
	Name() string
	Variant() Variant
	// Run executes the tile on the DPU, filling t.O, and returns timing.
	// It is the convenience entry point; each call uses private scratch.
	Run(d *pim.DPU, t *Tile) (*Result, error)
	// RunRequest is Run with an optional reusable Workspace (Request.WS).
	// A worker that executes many tiles through one DPU + Workspace pair
	// reaches an allocation-free steady state; results are bit-identical
	// to Run whatever scratch is recycled.
	RunRequest(req *Request) (*Result, error)
}

// bk tracks a phase-attributed cycle meter on top of the DPU meter.
type bk struct {
	d    *pim.DPU
	last int64
	b    Breakdown
}

func newBK(d *pim.DPU) *bk { return &bk{d: d, last: d.Meter.Cycles} }

// charge attributes the cycles since the last call to the given bucket.
func (x *bk) charge(bucket *int64) {
	now := x.d.Meter.Cycles
	*bucket += now - x.last
	x.last = now
}

// result assembles the Result from the DPU meter.
func (x *bk) result(v Variant, spec lut.Spec, p, k int) *Result {
	return &Result{
		Variant: v, Spec: spec, P: p, K: k,
		Cycles:    x.d.Meter.Cycles,
		Seconds:   x.d.Seconds(),
		Breakdown: x.b,
	}
}

// groupsOf returns ceil(k/p).
func groupsOf(k, p int) int { return (k + p - 1) / p }

// byteWidthFor returns the minimal little-endian field width (1, 2 or 4
// bytes) holding unsigned values below maxExclusive.
func byteWidthFor(maxExclusive int64) int {
	switch {
	case maxExclusive <= 1<<8:
		return 1
	case maxExclusive <= 1<<16:
		return 2
	default:
		return 4
	}
}

// MetaRecordBytes returns the per-group activation metadata record width a
// variant ships to each bank: the host packs column/permutation byte
// offsets in the minimal width the LUT footprint requires, so low-bit
// configurations keep their transfer advantage.
func MetaRecordBytes(v Variant, spec lut.Spec) int {
	switch v {
	case OP:
		return byteWidthFor(spec.OpCols() * int64(spec.EntryBytes()))
	case OPLC:
		return byteWidthFor(spec.CanonicalBytes()) + spec.P
	case OPLCRC, LoCaLUT:
		return byteWidthFor(spec.CanonicalBytes()) + byteWidthFor(spec.ReorderBytes())
	}
	return 0
}

// chunkBytes is the staging granularity for raw-code DMA transfers.
const chunkBytes = 2048

// lutSegment places one host-built LUT in the bank: functional DPUs build
// (or fetch from the process-wide cache) the table via build and map it
// read-only; accounting DPUs reserve the identical byte count without ever
// materializing the table. All packed-LUT kernels route their table setup
// through here so the two programs cannot drift.
func lutSegment(d *pim.DPU, name string, size int64, build func() ([]byte, error)) (*pim.Segment, error) {
	if d.CostOnly() {
		return d.MRAM.Reserve(name, size)
	}
	data, err := build()
	if err != nil {
		return nil, err
	}
	return d.MRAM.Map(name, data)
}

// dmaIn streams n bytes from seg[off:] into the WRAM buffer on a functional
// DPU, or charges the identical transfer on an accounting DPU. Kernels call
// it so the cost and data programs share one call site per transfer.
func dmaIn(d *pim.DPU, seg *pim.Segment, off int64, buf *pim.Buffer, n int) error {
	if d.CostOnly() {
		return d.ChargeDMARead(seg, off, int64(n))
	}
	return d.DMARead(seg, off, buf.Data[:n])
}

// dmaOut is dmaIn for the WRAM -> MRAM direction.
func dmaOut(d *pim.DPU, seg *pim.Segment, off int64, buf *pim.Buffer, n int) error {
	if d.CostOnly() {
		return d.ChargeDMAWrite(seg, off, int64(n))
	}
	return d.DMAWrite(seg, off, buf.Data[:n])
}

// flushAcc serializes the int32 column accumulator into the output buffer's
// little-endian byte image before writeback. Kernels accumulate in acc (one
// register-file-style scratch, satellite of the byte-RMW removal) and only
// touch bytes once per column.
func flushAcc(acc []int32, dst []byte) {
	for i, v := range acc {
		lut.WriteEntry(dst, i, 4, v)
	}
}

// zeroAcc clears the accumulator.
func zeroAcc(acc []int32) {
	for i := range acc {
		acc[i] = 0
	}
}
