package kernels

import (
	"reflect"
	"testing"

	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
)

// TestKernelDeterminism: identical tiles must produce identical cycle
// counts — the property that lets the orchestrator simulate one
// representative bank for the whole grid.
func TestKernelDeterminism(t *testing.T) {
	tile := randTile(t, 48, 64, 4, quant.W1A3, 77)
	for _, kn := range allKernels(t, quant.W1A3) {
		d1, d2 := freshDPU(t), freshDPU(t)
		r1, err := kn.Run(d1, tile)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := kn.Run(d2, tile)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Cycles != r2.Cycles {
			t.Errorf("%s: cycles differ across identical runs: %d vs %d",
				kn.Name(), r1.Cycles, r2.Cycles)
		}
		if r1.Breakdown != r2.Breakdown {
			t.Errorf("%s: breakdowns differ", kn.Name())
		}
	}
}

// TestKernelCyclesValueIndependent: cycle counts must not depend on the
// tile's data values (only its shape), or representative-tile timing would
// be wrong for other banks.
func TestKernelCyclesValueIndependent(t *testing.T) {
	a := randTile(t, 32, 40, 4, quant.W2A2, 1)
	b := randTile(t, 32, 40, 4, quant.W2A2, 999)
	for _, kn := range allKernels(t, quant.W2A2) {
		d1, d2 := freshDPU(t), freshDPU(t)
		r1, err := kn.Run(d1, a)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := kn.Run(d2, b)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Cycles != r2.Cycles {
			t.Errorf("%s: cycles depend on data values: %d vs %d",
				kn.Name(), r1.Cycles, r2.Cycles)
		}
	}
}

// TestKSmallerThanP: a K below the packing degree runs as one padded group.
func TestKSmallerThanP(t *testing.T) {
	f := quant.W1A3
	tile := randTile(t, 9, 3, 5, f, 5)
	want := RefGEMM(tile)
	spec := lut.MustSpec(f, 8)
	for _, kn := range []Kernel{
		NewOPLCRCKernel(DefaultCosts(), lut.MustSpec(f, 5)),
		NewStreamKernel(DefaultCosts(), spec, 4),
	} {
		d := freshDPU(t)
		if _, err := kn.Run(d, tile); err != nil {
			t.Fatalf("%s: %v", kn.Name(), err)
		}
		if !reflect.DeepEqual(tile.O, want) {
			t.Errorf("%s: wrong output for K < p", kn.Name())
		}
	}
}

// TestNonPresetFormats: the kernels must handle any valid WxAy pairing,
// not just the paper's four.
func TestNonPresetFormats(t *testing.T) {
	for _, dims := range [][2]int{{3, 3}, {2, 4}, {1, 2}, {4, 2}} {
		f, err := quant.NewFormat(dims[0], dims[1])
		if err != nil {
			t.Fatal(err)
		}
		tile := randTile(t, 12, 24, 3, f, 31)
		want := RefGEMM(tile)
		for _, kn := range allKernels(t, f) {
			d := freshDPU(t)
			if _, err := kn.Run(d, tile); err != nil {
				t.Fatalf("%s %s: %v", f.Name(), kn.Name(), err)
			}
			if !reflect.DeepEqual(tile.O, want) {
				t.Errorf("%s %s: mismatch", f.Name(), kn.Name())
			}
		}
	}
}

// TestOPDRAMKernelBitExact covers the Fig. 3(a) design point.
func TestOPDRAMKernelBitExact(t *testing.T) {
	f := quant.W1A3
	tile := randTile(t, 16, 24, 3, f, 3)
	want := RefGEMM(tile)
	for p := 1; p <= 5; p++ {
		d := freshDPU(t)
		kn := NewOPDRAMKernel(DefaultCosts(), lut.MustSpec(f, p))
		res, err := kn.Run(d, tile)
		if err != nil {
			t.Fatalf("p=%d: %v", p, err)
		}
		if !reflect.DeepEqual(tile.O, want) {
			t.Errorf("p=%d: mismatch", p)
		}
		if res.Breakdown.LUTLoad == 0 {
			t.Errorf("p=%d: no per-lookup DMA charged", p)
		}
	}
	// Oversized spec must be rejected (OP LUT beyond the bank budget).
	d := freshDPU(t)
	if _, err := NewOPDRAMKernel(DefaultCosts(), lut.MustSpec(quant.W4A4, 4)).Run(d, tile); err == nil {
		t.Error("accepted an over-budget DRAM LUT")
	}
}

// TestOPDRAMSlowerThanBuffer is the Fig. 3(c) conclusion as an invariant.
func TestOPDRAMSlowerThanBuffer(t *testing.T) {
	f := quant.W1A3
	tile := randTile(t, 64, 96, 4, f, 13)
	spec := lut.MustSpec(f, 3) // fits both residences
	d1, d2 := freshDPU(t), freshDPU(t)
	dram, err := NewOPDRAMKernel(DefaultCosts(), spec).Run(d1, tile)
	if err != nil {
		t.Fatal(err)
	}
	buf, err := NewOPKernel(DefaultCosts(), spec).Run(d2, tile)
	if err != nil {
		t.Fatal(err)
	}
	if dram.Cycles <= buf.Cycles {
		t.Errorf("DRAM-resident LUT (%d cycles) should lose to buffer-resident (%d)",
			dram.Cycles, buf.Cycles)
	}
}

// TestMRAMExhaustion: a tile too large for the bank must fail cleanly.
func TestMRAMExhaustion(t *testing.T) {
	cfg := freshDPU(t).Cfg
	small := *cfg
	small.MRAMBytes = 1 << 16 // 64 KB bank
	d := newDPUWith(&small)
	tile := randTile(t, 256, 512, 16, quant.W1A3, 2) // W alone is 128 KB
	if _, err := NewNaiveKernel(DefaultCosts()).Run(d, tile); err == nil {
		t.Error("naive kernel accepted a tile larger than the bank")
	}
}

// TestWRAMExhaustion: a tile M beyond the WRAM accumulator must fail.
func TestWRAMExhaustion(t *testing.T) {
	tile := randTile(t, 20000, 8, 1, quant.W1A3, 2)
	d := freshDPU(t)
	if _, err := NewStreamKernel(DefaultCosts(), lut.MustSpec(quant.W1A3, 8), 2).Run(d, tile); err == nil {
		t.Error("stream kernel accepted M=20000 (80 KB accumulator)")
	}
}

func newDPUWith(cfg *pim.Config) *pim.DPU { return pim.NewDPU(cfg) }
