package kernels

import (
	"fmt"

	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
)

// ltcGroup is the activation-group width of the bit-serial design: one
// lookup covers 4 activations per weight bit-plane, as in LUT Tensor Core
// and T-MAC.
const ltcGroup = 4

// LTCKernel adapts LUT Tensor Core's bit-serial mpGEMM to the DPU (§VI-A
// "we faithfully adapted its core ideas to our environment"). Weights are
// decomposed into bit-planes; for every activation column the device builds
// a 16-entry subset-sum table per group of 4 activations at runtime, then
// each weight bit-plane nibble indexes the table and the per-plane partial
// sums are shift-combined. The runtime table construction and the per-plane
// passes are exactly the overheads §II-B attributes to activation-driven
// LUT designs.
type LTCKernel struct {
	Costs Costs
}

// NewLTCKernel returns the LTC adaptation with the given cost table.
func NewLTCKernel(c Costs) *LTCKernel { return &LTCKernel{Costs: c} }

func (k *LTCKernel) Name() string     { return LTC.String() }
func (k *LTCKernel) Variant() Variant { return LTC }

// weightPlaneCoef returns the signed coefficient of bit-plane b and the
// column-sum correction coefficient for the tile's weight codec. A weight
// value decomposes as value = sum_b coef_b * bit_b + corr, so the output is
// O = sum_b coef_b * S_b + corr * colSum with S_b the plane partial sums.
//
// TwosSym is not bit-linear (its excluded minimum pattern decodes to 0), so
// the host re-encodes each weight value into plain two's complement before
// slicing planes (see planeBits); both then share the Twos coefficients.
func weightPlaneCoef(t *Tile, b int) (coef int32, corr int32) {
	c := t.Fmt.Weight
	switch c.Mode {
	case quant.Twos, quant.TwosSym:
		if b == c.Bits-1 {
			return -(1 << uint(b)), 0
		}
		return 1 << uint(b), 0
	case quant.Symmetric: // value = 2*code - (L-1)
		return 2 << uint(b), -int32(c.Levels() - 1)
	default: // quant.Unsigned
		return 1 << uint(b), 0
	}
}

// planeBits returns the bit pattern the host decomposes into planes for a
// weight code: the code itself for bit-linear codecs, or the value
// re-encoded as two's complement for TwosSym.
func planeBits(c quant.Codec, code uint8) uint8 {
	if c.Mode != quant.TwosSym {
		return code
	}
	return uint8(uint32(c.Decode(uint32(code))) & c.Mask())
}

// Run executes the tile. The DPU must be freshly reset.
func (k *LTCKernel) Run(d *pim.DPU, t *Tile) (*Result, error) {
	return k.RunRequest(&Request{DPU: d, Tile: t})
}

func (k *LTCKernel) RunRequest(req *Request) (*Result, error) {
	d, t, ws := req.DPU, req.Tile, req.WS.ensure()
	d.Reset()
	cost := d.CostOnly()
	bw := t.Fmt.Weight.Bits
	g4 := groupsOf(t.K, ltcGroup)
	planeRowBytes := (g4 + 1) / 2 // two 4-bit groups per byte

	// Host staging: weight bit-planes, m-major so one DMA fetches all bw
	// plane rows of a weight row; activation columns as int8 values with
	// the column-sum correction at the head of each record.
	wSeg, err := d.MRAM.Alloc("Wplanes", int64(t.M*bw*planeRowBytes))
	if err != nil {
		return nil, fmt.Errorf("ltc: %w", err)
	}
	colRec := 4 + t.K
	aSeg, err := d.MRAM.Alloc("Acols", int64(t.N*colRec))
	if err != nil {
		return nil, fmt.Errorf("ltc: %w", err)
	}
	oSeg, err := d.MRAM.Alloc("O", int64(t.M*t.N*4))
	if err != nil {
		return nil, fmt.Errorf("ltc: %w", err)
	}
	if !cost {
		// planeBits is a pure function of the code byte; tabulating it once
		// per run turns the per-element call (with its codec-mode branch)
		// into a load.
		pt := grow(&ws.planeT, 256)
		for i := range pt {
			pt[i] = planeBits(t.Fmt.Weight, uint8(i))
		}
		for m := 0; m < t.M; m++ {
			for b := 0; b < bw; b++ {
				base := (m*bw + b) * planeRowBytes
				for g := 0; g < g4; g++ {
					var nib byte
					for i := 0; i < ltcGroup; i++ {
						kk := g*ltcGroup + i
						if kk >= t.K {
							break
						}
						bit := (pt[t.W[m*t.K+kk]] >> uint(b)) & 1
						nib |= bit << uint(i)
					}
					if g%2 == 0 {
						wSeg.Data[base+g/2] |= nib
					} else {
						wSeg.Data[base+g/2] |= nib << 4
					}
				}
			}
		}
		at := decodeTable(&ws.adecT, t.Fmt.Act)
		aMask := t.Fmt.Act.Mask()
		for n := 0; n < t.N; n++ {
			base := n * colRec
			var colSum int32
			for kk := 0; kk < t.K; kk++ {
				v := at[uint32(t.A[kk*t.N+n])&aMask]
				aSeg.Data[base+4+kk] = byte(int8(v))
				colSum += v
			}
			lut.WriteEntry(aSeg.Data[base:], 0, 4, colSum)
		}
	}

	// WRAM: activation column record, subset-sum tables (2 B entries),
	// the current weight plane rows, and the output column accumulator.
	aBuf, err := d.WRAM.Alloc("acol", colRec)
	if err != nil {
		return nil, fmt.Errorf("ltc: %w", err)
	}
	tblBuf, err := d.WRAM.Alloc("tables", g4*16*2)
	if err != nil {
		return nil, fmt.Errorf("ltc: %w", err)
	}
	wBuf, err := d.WRAM.Alloc("wplanes", bw*planeRowBytes)
	if err != nil {
		return nil, fmt.Errorf("ltc: %w", err)
	}
	oBuf, err := d.WRAM.Alloc("ocol", t.M*4)
	if err != nil {
		return nil, fmt.Errorf("ltc: %w (tile M too large for WRAM column accumulator)", err)
	}

	x := ws.newBK(d)
	coefs := grow(&ws.coefs, bw)
	var corr int32
	for b := 0; b < bw; b++ {
		coefs[b], corr = weightPlaneCoef(t, b)
	}
	accs := grow(&ws.planeAcc, bw)

	for n := 0; n < t.N; n++ {
		if err := dmaIn(d, aSeg, int64(n*colRec), aBuf, colRec); err != nil {
			return nil, err
		}
		x.charge(&x.b.Transfer)
		var colSum int32
		if !cost {
			colSum = lut.ReadEntry(aBuf.Data, 0, 4)

			// Runtime table build: gray-code subset sums per activation
			// group, with the fixed 2-byte entry loads/stores inlined
			// (bit-identical to ReadEntry/WriteEntry at width 2).
			tbl := tblBuf.Data
			for g := 0; g < g4; g++ {
				tbase := g * 16
				tbl[tbase*2], tbl[tbase*2+1] = 0, 0
				for idx := 1; idx < 16; idx++ {
					low := idx & -idx
					poff := (tbase + (idx ^ low)) * 2
					prev := int32(int16(uint16(tbl[poff]) | uint16(tbl[poff+1])<<8))
					bitPos := trailingZeros4(low)
					kk := g*ltcGroup + bitPos
					var av int32
					if kk < t.K {
						av = int32(int8(aBuf.Data[4+kk]))
					}
					v := prev + av
					if v < -32768 || v > 32767 {
						panic(fmt.Sprintf("ltc: subset sum %d overflows 2 bytes", v))
					}
					woff := (tbase + idx) * 2
					tbl[woff] = byte(v)
					tbl[woff+1] = byte(v >> 8)
				}
			}
		}
		d.Exec(pim.EvInstr, int64(g4)*16*k.Costs.LTCTableBuildInstr)
		d.Note(pim.EvWRAMAccess, int64(g4)*32)
		x.charge(&x.b.Other)

		if cost {
			// The per-row charge sequence is a linear function of the trip
			// count, so the cost program folds the M rows into three batched
			// charges with identical totals and phase attribution.
			if err := d.ChargeDMAReadSeq(wSeg, 0, int64(bw*planeRowBytes),
				int64(t.M), int64(bw*planeRowBytes)); err != nil {
				return nil, err
			}
			x.charge(&x.b.Transfer)
			d.Exec(pim.EvInstr, int64(t.M)*int64(bw)*int64(g4)*k.Costs.LTCGroupInstr)
			d.Note(pim.EvWRAMAccess, int64(t.M)*int64(bw)*int64(g4)*2)
			x.charge(&x.b.CanonAccess)
			d.Exec(pim.EvInstr, int64(t.M)*(int64(bw)*k.Costs.LTCCombineInstr+2))
			x.charge(&x.b.Accumulate)
		} else {
			for m := 0; m < t.M; m++ {
				if err := d.DMARead(wSeg, int64(m*bw*planeRowBytes), wBuf.Data); err != nil {
					return nil, err
				}
				x.charge(&x.b.Transfer)

				// The subset-sum tables are fixed 2-byte entries; walking
				// them with the load inlined (two nibbles per plane byte)
				// keeps the per-group cost at two shifts and one 16-bit
				// load instead of a per-element ReadEntry call.
				tbl := tblBuf.Data
				for b := 0; b < bw; b++ {
					var acc int32
					prow := wBuf.Data[b*planeRowBytes : (b+1)*planeRowBytes]
					for g := 0; g < g4; g++ {
						nib := prow[g/2]
						if g%2 == 1 {
							nib >>= 4
						}
						off := (g*16 + int(nib&0xF)) * 2
						acc += int32(int16(uint16(tbl[off]) | uint16(tbl[off+1])<<8))
					}
					accs[b] = acc
				}
				d.Exec(pim.EvInstr, int64(bw)*int64(g4)*k.Costs.LTCGroupInstr)
				d.Note(pim.EvWRAMAccess, int64(bw)*int64(g4)*2)
				x.charge(&x.b.CanonAccess)

				var out int32
				for b := 0; b < bw; b++ {
					out += coefs[b] * accs[b]
				}
				out += corr * colSum
				lut.WriteEntry(oBuf.Data, m, 4, out)
				d.Exec(pim.EvInstr, int64(bw)*k.Costs.LTCCombineInstr+2)
				x.charge(&x.b.Accumulate)
			}
		}
		if err := dmaOut(d, oSeg, int64(n*t.M*4), oBuf, t.M*4); err != nil {
			return nil, err
		}
		x.charge(&x.b.Other)
	}

	// O is stored column-major in the bank; transpose out.
	if !cost {
		for n := 0; n < t.N; n++ {
			for m := 0; m < t.M; m++ {
				t.O[m*t.N+n] = lut.ReadEntry(oSeg.Data, n*t.M+m, 4)
			}
		}
	}
	return x.result(LTC, lut.Spec{}, 0, 0), nil
}

// trailingZeros4 returns the bit position of the lowest set bit of a 4-bit
// value (v must be nonzero and < 16).
func trailingZeros4(v int) int {
	switch {
	case v&1 != 0:
		return 0
	case v&2 != 0:
		return 1
	case v&4 != 0:
		return 2
	default:
		return 3
	}
}
