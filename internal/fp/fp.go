// Package fp implements the low-bit floating-point formats LoCaLUT's
// floating-point extension (§VI-K) treats as LUT symbols: FP4 (E2M1),
// FP8 (E4M3, the OCP/MX variant without infinities), and IEEE FP16.
//
// Because the LUT machinery only cares about the number of distinct codes —
// "the LUT entry count depends solely on input bitwidth rather than
// numerical format" — each format exposes the same Format interface:
// a bit width and a Decode from code to real value. LUT entries for float
// configs store float32 partial dot products of decoded symbol values.
package fp

import (
	"fmt"
	"math"
)

// Format describes a floating-point symbol encoding of Bits bits.
type Format interface {
	// Name returns the conventional format name, e.g. "FP4".
	Name() string
	// Bits returns the code width.
	Bits() int
	// Decode maps a code (low Bits bits) to its real value.
	Decode(code uint32) float64
	// Encode maps a real value to the nearest representable code.
	Encode(v float64) uint32
}

// ByName returns the format for "FP4", "FP8" or "FP16".
func ByName(name string) (Format, error) {
	switch name {
	case "FP4":
		return FP4{}, nil
	case "FP8":
		return FP8{}, nil
	case "FP16":
		return FP16{}, nil
	}
	return nil, fmt.Errorf("fp: unknown format %q", name)
}

// FP4 is the E2M1 4-bit format: 1 sign, 2 exponent (bias 1), 1 mantissa bit.
// Representable magnitudes: 0, 0.5, 1, 1.5, 2, 3, 4, 6. No inf/NaN.
type FP4 struct{}

func (FP4) Name() string { return "FP4" }
func (FP4) Bits() int    { return 4 }

func (FP4) Decode(code uint32) float64 {
	code &= 0xF
	sign := 1.0
	if code&0x8 != 0 {
		sign = -1
	}
	exp := (code >> 1) & 0x3
	man := code & 0x1
	var mag float64
	if exp == 0 { // subnormal: 0 or 0.5
		mag = 0.5 * float64(man)
	} else {
		mag = (1 + 0.5*float64(man)) * math.Pow(2, float64(exp)-1)
	}
	return sign * mag
}

func (f FP4) Encode(v float64) uint32 { return encodeNearest(f, v) }

// FP8 is E4M3 in the OCP MX convention: 1 sign, 4 exponent (bias 7),
// 3 mantissa bits; the all-ones exponent with all-ones mantissa is NaN
// (we clamp to the max normal 448 instead of emitting NaN on Encode).
type FP8 struct{}

func (FP8) Name() string { return "FP8" }
func (FP8) Bits() int    { return 8 }

func (FP8) Decode(code uint32) float64 {
	code &= 0xFF
	sign := 1.0
	if code&0x80 != 0 {
		sign = -1
	}
	exp := (code >> 3) & 0xF
	man := code & 0x7
	if exp == 0xF && man == 0x7 {
		return math.NaN()
	}
	var mag float64
	if exp == 0 { // subnormal
		mag = float64(man) / 8 * math.Pow(2, -6)
	} else {
		mag = (1 + float64(man)/8) * math.Pow(2, float64(exp)-7)
	}
	return sign * mag
}

func (f FP8) Encode(v float64) uint32 { return encodeNearest(f, v) }

// FP16 is IEEE binary16: 1 sign, 5 exponent (bias 15), 10 mantissa bits.
type FP16 struct{}

func (FP16) Name() string { return "FP16" }
func (FP16) Bits() int    { return 16 }

func (FP16) Decode(code uint32) float64 {
	code &= 0xFFFF
	sign := 1.0
	if code&0x8000 != 0 {
		sign = -1
	}
	exp := (code >> 10) & 0x1F
	man := code & 0x3FF
	switch {
	case exp == 0x1F && man != 0:
		return math.NaN()
	case exp == 0x1F:
		return sign * math.Inf(1)
	case exp == 0:
		return sign * float64(man) / 1024 * math.Pow(2, -14)
	default:
		return sign * (1 + float64(man)/1024) * math.Pow(2, float64(exp)-15)
	}
}

// Encode converts to the nearest finite FP16 value (round-to-nearest-even
// via float32 truncation of the mantissa path would be more precise; for
// simulator symbol purposes nearest-value search over the magnitude bits is
// exact and fast enough for 16-bit spaces is NOT acceptable, so we convert
// analytically).
func (FP16) Encode(v float64) uint32 {
	if math.IsNaN(v) {
		return 0x7E00
	}
	sign := uint32(0)
	if math.Signbit(v) {
		sign = 0x8000
		v = -v
	}
	const maxFP16 = 65504
	if math.IsInf(v, 0) || v > maxFP16 {
		return sign | 0x7BFF // clamp to max finite
	}
	if v == 0 {
		return sign
	}
	exp := math.Floor(math.Log2(v))
	if exp < -14 { // subnormal
		man := uint32(math.Round(v / math.Pow(2, -14) * 1024))
		if man > 0x3FF {
			man = 0x3FF
		}
		return sign | man
	}
	man := math.Round((v/math.Pow(2, exp) - 1) * 1024)
	if man >= 1024 { // rounding overflowed the mantissa; bump exponent
		man = 0
		exp++
	}
	e := uint32(exp + 15)
	if e >= 0x1F {
		return sign | 0x7BFF
	}
	return sign | e<<10 | uint32(man)
}

// encodeNearest linearly scans the code space for the closest finite value.
// Only used for 4- and 8-bit formats where the scan is trivial.
func encodeNearest(f Format, v float64) uint32 {
	best := uint32(0)
	bestDist := math.Inf(1)
	n := uint32(1) << uint(f.Bits())
	for code := uint32(0); code < n; code++ {
		x := f.Decode(code)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		d := math.Abs(x - v)
		if d < bestDist || (d == bestDist && x >= 0 && v >= 0) {
			bestDist = d
			best = code
		}
	}
	return best
}

// MaxFinite returns the largest finite magnitude of the format.
func MaxFinite(f Format) float64 {
	switch f.(type) {
	case FP4:
		return 6
	case FP8:
		return 448
	case FP16:
		return 65504
	}
	max := 0.0
	n := uint32(1) << uint(f.Bits())
	for code := uint32(0); code < n; code++ {
		x := f.Decode(code)
		if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) > max {
			max = math.Abs(x)
		}
	}
	return max
}

// QuantizeTensor quantizes a float slice into format codes with a per-tensor
// scale chosen so absmax maps to the format's max finite value.
func QuantizeTensor(data []float64, f Format) (codes []uint16, scale float64) {
	absmax := 0.0
	for _, v := range data {
		if a := math.Abs(v); a > absmax {
			absmax = a
		}
	}
	scale = 1.0
	if absmax > 0 {
		scale = absmax / MaxFinite(f)
	}
	codes = make([]uint16, len(data))
	for i, v := range data {
		codes[i] = uint16(f.Encode(v / scale))
	}
	return codes, scale
}
