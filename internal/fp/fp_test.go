package fp

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFP4Values(t *testing.T) {
	f := FP4{}
	// All positive magnitudes of E2M1.
	want := map[uint32]float64{
		0b0000: 0, 0b0001: 0.5, 0b0010: 1, 0b0011: 1.5,
		0b0100: 2, 0b0101: 3, 0b0110: 4, 0b0111: 6,
	}
	for code, w := range want {
		if got := f.Decode(code); got != w {
			t.Errorf("Decode(%04b) = %g, want %g", code, got, w)
		}
		if got := f.Decode(code | 0x8); got != -w {
			t.Errorf("Decode(%04b) = %g, want %g", code|0x8, got, -w)
		}
	}
}

func TestFP8Values(t *testing.T) {
	f := FP8{}
	if got := f.Decode(0x00); got != 0 {
		t.Errorf("zero: %g", got)
	}
	// Max normal E4M3 (OCP): S.1111.110 = 448.
	if got := f.Decode(0x7E); got != 448 {
		t.Errorf("max: %g", got)
	}
	// NaN pattern S.1111.111.
	if got := f.Decode(0x7F); !math.IsNaN(got) {
		t.Errorf("NaN pattern decoded to %g", got)
	}
	// 1.0 = 0.0111.000
	if got := f.Decode(0x38); got != 1.0 {
		t.Errorf("one: %g", got)
	}
	// Smallest subnormal: 2^-9.
	if got := f.Decode(0x01); got != math.Pow(2, -9) {
		t.Errorf("min subnormal: %g", got)
	}
}

func TestFP16Values(t *testing.T) {
	f := FP16{}
	cases := map[uint32]float64{
		0x0000: 0,
		0x3C00: 1,
		0xBC00: -1,
		0x4000: 2,
		0x3555: 0.333251953125,
		0x7BFF: 65504,
		0x0400: math.Pow(2, -14),
	}
	for code, w := range cases {
		if got := f.Decode(code); got != w {
			t.Errorf("Decode(%#04x) = %g, want %g", code, got, w)
		}
	}
	if !math.IsInf(f.Decode(0x7C00), 1) || !math.IsInf(f.Decode(0xFC00), -1) {
		t.Error("infinities")
	}
	if !math.IsNaN(f.Decode(0x7C01)) {
		t.Error("NaN")
	}
}

func TestEncodeDecodeRoundTripSmall(t *testing.T) {
	for _, f := range []Format{FP4{}, FP8{}} {
		n := uint32(1) << uint(f.Bits())
		for code := uint32(0); code < n; code++ {
			v := f.Decode(code)
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			back := f.Decode(f.Encode(v))
			if back != v {
				t.Errorf("%s: Encode(Decode(%d)=%g) decodes to %g", f.Name(), code, v, back)
			}
		}
	}
}

func TestFP16EncodeRoundTrip(t *testing.T) {
	f := FP16{}
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 2000; i++ {
		code := uint32(rng.Intn(1 << 16))
		v := f.Decode(code)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		back := f.Decode(f.Encode(v))
		if back != v {
			t.Fatalf("code %#04x: value %g re-encodes to %g", code, v, back)
		}
	}
}

func TestFP16EncodeSpecials(t *testing.T) {
	f := FP16{}
	if !math.IsNaN(f.Decode(f.Encode(math.NaN()))) {
		t.Error("NaN encode")
	}
	if got := f.Decode(f.Encode(math.Inf(1))); got != 65504 {
		t.Errorf("inf clamps to %g", got)
	}
	if got := f.Decode(f.Encode(1e9)); got != 65504 {
		t.Errorf("overflow clamps to %g", got)
	}
	negZero := math.Copysign(0, -1)
	if got := f.Decode(f.Encode(negZero)); got != 0 || !math.Signbit(got) {
		t.Errorf("-0 encodes to %g (signbit %v)", got, math.Signbit(got))
	}
}

func TestEncodeNearestProperty(t *testing.T) {
	// For any v, the encoded value must be at least as close as every other
	// representable value.
	check := func(f Format) func(float64) bool {
		return func(raw float64) bool {
			v := math.Mod(raw, 2*MaxFinite(f))
			if math.IsNaN(v) {
				return true
			}
			got := f.Decode(f.Encode(v))
			gd := math.Abs(got - v)
			n := uint32(1) << uint(f.Bits())
			for code := uint32(0); code < n; code++ {
				x := f.Decode(code)
				if math.IsNaN(x) || math.IsInf(x, 0) {
					continue
				}
				if math.Abs(x-v) < gd-1e-12 {
					return false
				}
			}
			return true
		}
	}
	for _, f := range []Format{FP4{}, FP8{}} {
		if err := quick.Check(check(f), &quick.Config{MaxCount: 200}); err != nil {
			t.Errorf("%s: %v", f.Name(), err)
		}
	}
}

func TestMaxFinite(t *testing.T) {
	if MaxFinite(FP4{}) != 6 || MaxFinite(FP8{}) != 448 || MaxFinite(FP16{}) != 65504 {
		t.Error("MaxFinite constants")
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"FP4", "FP8", "FP16"} {
		f, err := ByName(name)
		if err != nil || f.Name() != name {
			t.Errorf("ByName(%s): %v %v", name, f, err)
		}
	}
	if _, err := ByName("FP32"); err == nil {
		t.Error("accepted FP32")
	}
}

func TestQuantizeTensor(t *testing.T) {
	data := []float64{-2, -1, 0, 0.5, 1, 3}
	codes, scale := QuantizeTensor(data, FP4{})
	f := FP4{}
	// absmax 3 maps to 6 => scale 0.5; all inputs/scale are representable.
	if scale != 0.5 {
		t.Fatalf("scale = %g", scale)
	}
	for i, v := range data {
		got := f.Decode(uint32(codes[i])) * scale
		if got != v {
			t.Errorf("elem %d: %g -> %g", i, v, got)
		}
	}
	// Zero tensor must not divide by zero.
	codes, scale = QuantizeTensor(make([]float64, 3), FP8{})
	if scale != 1 {
		t.Errorf("zero scale = %g", scale)
	}
	for _, c := range codes {
		if f8 := (FP8{}).Decode(uint32(c)); f8 != 0 {
			t.Errorf("zero tensor code %d", c)
		}
	}
}

func BenchmarkFP16Encode(b *testing.B) {
	f := FP16{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.Encode(3.14159)
	}
}
