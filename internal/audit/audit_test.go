package audit

import (
	"strings"
	"testing"
)

// cleanFleet balances every ledger: 100 offered, 90 admitted, 80
// completed (70 good), 10 shed, one instance carrying it all, and two
// hedges resolved as one cancel and one drop.
func cleanFleet() *Fleet {
	return &Fleet{
		Offered: 100, Admitted: 90, Rejected: 10, Completed: 80,
		Good: 70, Late: 10,
		Shed: 10, ShedExpired: 4, ShedKV: 3, ShedQueueFull: 2, ShedRetries: 1,
		HedgesIssued: 2, HedgeWins: 1, HedgeCancels: 1, HedgeDrops: 1,
		HedgeWastedSeconds: 0.5,
		UnavailableSeconds: 3, RepairWindowSeconds: 3,
		Instances: []Instance{{
			ID: 0, Replicas: 2, ActiveAt: 0, End: 60, UnavailableSeconds: 3,
			BusySeconds: 50, PIMBusySeconds: 30, EnergyJ: 12,
			Admitted: 92, Finished: 80, Shed: 10, Canceled: 1, Displaced: 1,
		}},
	}
}

func TestCheckFleetClean(t *testing.T) {
	if vs := CheckFleet(cleanFleet()); len(vs) != 0 {
		t.Fatalf("clean fleet flagged: %v", vs)
	}
}

// TestCheckFleetViolations breaks one invariant per case and demands the
// named check fires.
func TestCheckFleetViolations(t *testing.T) {
	cases := map[string]struct {
		mutate    func(*Fleet)
		invariant string
	}{
		"offered leak":     {func(f *Fleet) { f.Offered++ }, "offered-split"},
		"request leak":     {func(f *Fleet) { f.Completed-- }, "request-conservation"},
		"goodput leak":     {func(f *Fleet) { f.Good-- }, "goodput-split"},
		"shed cause leak":  {func(f *Fleet) { f.ShedKV-- }, "shed-split"},
		"hedge leak":       {func(f *Fleet) { f.HedgeDrops-- }, "hedge-balance"},
		"phantom win":      {func(f *Fleet) { f.HedgeWins = 3 }, "hedge-wins"},
		"negative waste":   {func(f *Fleet) { f.HedgeWastedSeconds = -1 }, "hedge-waste"},
		"instance leak":    {func(f *Fleet) { f.Instances[0].Finished-- }, "instance-conservation"},
		"undrained":        {func(f *Fleet) { f.Instances[0].Outstanding = 1; f.Instances[0].Admitted++ }, "drain"},
		"negative busy":    {func(f *Fleet) { f.Instances[0].BusySeconds = -1 }, "busy-nonnegative"},
		"overfull":         {func(f *Fleet) { f.Instances[0].BusySeconds = 200 }, "capacity"},
		"pim exceeds busy": {func(f *Fleet) { f.Instances[0].PIMBusySeconds = 60 }, "pim-share"},
		"negative energy":  {func(f *Fleet) { f.Instances[0].EnergyJ = -1 }, "energy-nonnegative"},
		"pinned kv":        {func(f *Fleet) { f.Instances[0].KVPinnedEndBytes = 4096 }, "kv-balance"},
		"unavail mismatch": {func(f *Fleet) { f.Instances[0].UnavailableSeconds = 2 }, "unavailable-sum"},
		"lost repair":      {func(f *Fleet) { f.RepairWindowSeconds = 2 }, "unavailable-evidence"},
	}
	for name, tc := range cases {
		t.Run(name, func(t *testing.T) {
			f := cleanFleet()
			tc.mutate(f)
			vs := CheckFleet(f)
			if len(vs) == 0 {
				t.Fatalf("violation not detected, want %q", tc.invariant)
			}
			for _, v := range vs {
				if v.Invariant == tc.invariant {
					if !strings.Contains(v.String(), tc.invariant) {
						t.Errorf("String() %q drops the invariant name", v.String())
					}
					return
				}
			}
			t.Fatalf("got %v, want invariant %q", vs, tc.invariant)
		})
	}
}

// TestCheckFleetTolerance accepts float drift at rounding scale: refunds
// re-subtract what charging added in a different order.
func TestCheckFleetTolerance(t *testing.T) {
	f := cleanFleet()
	f.RepairWindowSeconds += 1e-12
	f.Instances[0].BusySeconds = (f.Instances[0].End-f.Instances[0].ActiveAt-
		f.Instances[0].UnavailableSeconds)*float64(f.Instances[0].Replicas) + 1e-12
	if vs := CheckFleet(f); len(vs) != 0 {
		t.Fatalf("rounding-scale drift flagged: %v", vs)
	}
}

func TestCheckApplianceClean(t *testing.T) {
	a := &Appliance{
		Requests: 50, Completed: 48, Shed: 2,
		Replicas: 2, MakespanSeconds: 30, BusySeconds: 40, PIMBusySeconds: 25,
		EnergyJ: 5,
	}
	if vs := CheckAppliance(a); len(vs) != 0 {
		t.Fatalf("clean appliance flagged: %v", vs)
	}
	a.Shed--
	a.KVPinnedEndBytes = 1
	a.BusySeconds = 100
	vs := CheckAppliance(a)
	want := map[string]bool{"request-conservation": false, "kv-balance": false, "capacity": false}
	for _, v := range vs {
		if _, ok := want[v.Invariant]; ok {
			want[v.Invariant] = true
		}
	}
	for inv, seen := range want {
		if !seen {
			t.Errorf("broken appliance did not trip %q (got %v)", inv, vs)
		}
	}
}
