// Package audit checks conservation invariants over finished simulation
// runs. The fault machinery — crashes, domain outages, retries, hedging,
// pro-rata refunds — moves work and cost between accounts; every move
// must balance, and a silent leak (a request neither completed nor shed,
// busy-seconds exceeding physical capacity, KV pinned after the drain)
// means the simulator is lying about the scenario it modeled. The checks
// run on plain snapshot structs so the package has no dependency on the
// simulators it audits; internal/cluster and the CLIs build the
// snapshots and report violations.
package audit

import "fmt"

// Violation is one failed invariant.
type Violation struct {
	Invariant string // short name, stable across releases
	Detail    string // human-readable evidence
}

func (v Violation) String() string {
	return v.Invariant + ": " + v.Detail
}

// eps is the relative tolerance for float comparisons: refund arithmetic
// subtracts in a different order than charging added, so sums agree to
// rounding, not bitwise.
const eps = 1e-9

// approxLE reports a <= b up to relative tolerance.
func approxLE(a, b float64) bool {
	scale := 1.0
	if ab := abs(a); ab > scale {
		scale = ab
	}
	if bb := abs(b); bb > scale {
		scale = bb
	}
	return a <= b+eps*scale
}

// approxEq reports a == b up to relative tolerance.
func approxEq(a, b float64) bool {
	return approxLE(a, b) && approxLE(b, a)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Instance is one fleet member's post-drain account.
type Instance struct {
	ID       int
	Replicas int

	// ActiveAt/End bound the member's routable life in simulated seconds
	// (End is retirement or the run makespan); UnavailableSeconds is time
	// inside that span spent crashed.
	ActiveAt, End      float64
	UnavailableSeconds float64

	BusySeconds    float64 // Σ per-replica service seconds, refunds applied
	PIMBusySeconds float64
	EnergyJ        float64

	// KVPinnedEndBytes is the KV gauge after the drain; anything nonzero
	// is a pin/unpin imbalance.
	KVPinnedEndBytes int64

	// Request conservation: every admission to this instance must end in
	// exactly one of finished, shed, cancelled (hedge loser) or displaced
	// (handed back by a fault); Outstanding is what remains, and must be
	// zero after the drain.
	Admitted, Finished, Shed int
	Canceled, Displaced      int
	Outstanding              int
}

// Fleet is a cluster run's post-drain account.
type Fleet struct {
	Offered, Admitted, Rejected, Completed int
	Good, Late                             int

	Shed, ShedExpired, ShedKV  int
	ShedQueueFull, ShedRetries int

	// Hedge balance: every issued hedge resolves as exactly one cancel
	// (loser found on its instance) or drop (loser already parked or
	// displaced); wins are the subset of resolutions the duplicate won.
	HedgesIssued, HedgeWins  int
	HedgeCancels, HedgeDrops int
	HedgeWastedSeconds       float64

	// UnavailableSeconds is the fleet counter; RepairWindowSeconds is the
	// independently-summed timeline evidence (Σ repair RecoverSeconds).
	// They must agree, or an outage was double-counted or lost.
	UnavailableSeconds  float64
	RepairWindowSeconds float64

	Instances []Instance
}

// CheckFleet validates a cluster run's conservation invariants and
// returns every violation found (empty = clean).
func CheckFleet(f *Fleet) []Violation {
	var vs []Violation
	add := func(invariant, format string, args ...interface{}) {
		vs = append(vs, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}

	if f.Offered != f.Admitted+f.Rejected {
		add("offered-split", "offered %d != admitted %d + rejected %d",
			f.Offered, f.Admitted, f.Rejected)
	}
	if f.Admitted != f.Completed+f.Shed {
		add("request-conservation", "admitted %d != completed %d + shed %d",
			f.Admitted, f.Completed, f.Shed)
	}
	if f.Completed != f.Good+f.Late {
		add("goodput-split", "completed %d != good %d + late %d",
			f.Completed, f.Good, f.Late)
	}
	if f.Shed != f.ShedExpired+f.ShedKV+f.ShedQueueFull+f.ShedRetries {
		add("shed-split", "shed %d != expired %d + kv %d + queue-full %d + retries %d",
			f.Shed, f.ShedExpired, f.ShedKV, f.ShedQueueFull, f.ShedRetries)
	}
	if f.HedgesIssued != f.HedgeCancels+f.HedgeDrops {
		add("hedge-balance", "hedges issued %d != cancels %d + drops %d",
			f.HedgesIssued, f.HedgeCancels, f.HedgeDrops)
	}
	if f.HedgeWins > f.HedgesIssued {
		add("hedge-wins", "hedge wins %d exceed hedges issued %d", f.HedgeWins, f.HedgesIssued)
	}
	if f.HedgeWastedSeconds < 0 {
		add("hedge-waste", "negative hedge waste %g s", f.HedgeWastedSeconds)
	}
	var unavailSum float64
	for i := range f.Instances {
		in := &f.Instances[i]
		id := in.ID
		unavailSum += in.UnavailableSeconds
		if in.Admitted != in.Finished+in.Shed+in.Canceled+in.Displaced+in.Outstanding {
			add("instance-conservation",
				"instance %d: admitted %d != finished %d + shed %d + canceled %d + displaced %d + outstanding %d",
				id, in.Admitted, in.Finished, in.Shed, in.Canceled, in.Displaced, in.Outstanding)
		}
		if in.Outstanding != 0 {
			add("drain", "instance %d: %d requests outstanding after the drain", id, in.Outstanding)
		}
		if in.BusySeconds < -eps {
			add("busy-nonnegative", "instance %d: busy %g s negative (refund exceeded charge)",
				id, in.BusySeconds)
		}
		if cap := (in.End - in.ActiveAt - in.UnavailableSeconds) * float64(in.Replicas); in.End > in.ActiveAt &&
			!approxLE(in.BusySeconds, cap) {
			add("capacity", "instance %d: busy %g s exceeds available capacity %g s (%d replicas over [%g, %g] minus %g s down)",
				id, in.BusySeconds, cap, in.Replicas, in.ActiveAt, in.End, in.UnavailableSeconds)
		}
		if !approxLE(in.PIMBusySeconds, in.BusySeconds) || in.PIMBusySeconds < -eps {
			add("pim-share", "instance %d: PIM-busy %g s outside [0, busy %g s]",
				id, in.PIMBusySeconds, in.BusySeconds)
		}
		if in.EnergyJ < -eps {
			add("energy-nonnegative", "instance %d: energy %g J negative (refund exceeded charge)",
				id, in.EnergyJ)
		}
		if in.KVPinnedEndBytes != 0 {
			add("kv-balance", "instance %d: %d KV bytes still pinned after the drain",
				id, in.KVPinnedEndBytes)
		}
	}
	if !approxEq(f.UnavailableSeconds, unavailSum) {
		add("unavailable-sum", "fleet unavailable %g s != per-instance sum %g s",
			f.UnavailableSeconds, unavailSum)
	}
	if !approxEq(f.UnavailableSeconds, f.RepairWindowSeconds) {
		add("unavailable-evidence", "fleet unavailable %g s != timeline repair windows %g s",
			f.UnavailableSeconds, f.RepairWindowSeconds)
	}
	return vs
}

// Appliance is a single-appliance run's post-drain account, for the
// localut-serve -audit path.
type Appliance struct {
	Requests, Completed, Shed int

	Replicas        int
	MakespanSeconds float64
	BusySeconds     float64
	PIMBusySeconds  float64
	EnergyJ         float64

	KVPinnedEndBytes int64
}

// CheckAppliance validates a single-appliance run's invariants.
func CheckAppliance(a *Appliance) []Violation {
	var vs []Violation
	add := func(invariant, format string, args ...interface{}) {
		vs = append(vs, Violation{Invariant: invariant, Detail: fmt.Sprintf(format, args...)})
	}
	if a.Requests != a.Completed+a.Shed {
		add("request-conservation", "requests %d != completed %d + shed %d",
			a.Requests, a.Completed, a.Shed)
	}
	if cap := a.MakespanSeconds * float64(a.Replicas); !approxLE(a.BusySeconds, cap) {
		add("capacity", "busy %g s exceeds %d replicas over makespan %g s",
			a.BusySeconds, a.Replicas, a.MakespanSeconds)
	}
	if !approxLE(a.PIMBusySeconds, a.BusySeconds) || a.PIMBusySeconds < -eps {
		add("pim-share", "PIM-busy %g s outside [0, busy %g s]", a.PIMBusySeconds, a.BusySeconds)
	}
	if a.EnergyJ < -eps {
		add("energy-nonnegative", "energy %g J negative", a.EnergyJ)
	}
	if a.KVPinnedEndBytes != 0 {
		add("kv-balance", "%d KV bytes still pinned after the drain", a.KVPinnedEndBytes)
	}
	return vs
}
