// Package perm provides the permutation and multiset combinatorics that
// underpin LoCaLUT's canonical and reordering LUTs.
//
// Three bijections are implemented:
//
//   - Lehmer ranking of permutations of [0,n): Rank / Unrank. The reordering
//     LUT uses the Lehmer rank of the stable-sort permutation of an
//     activation vector as its column index (p! columns).
//   - Combinatorial-number-system ranking of non-decreasing sequences
//     (multisets): MultisetRank / MultisetUnrank. The canonical LUT uses the
//     multiset rank of the sorted activation vector as its column index
//     (C(A+p-1, p) columns, Eq. 1 of the paper).
//   - Stable sorting permutations: SortPerm returns the unique stable
//     permutation that sorts a vector, so equal activation values always map
//     to the same reordering-LUT column.
package perm

import (
	"fmt"
	"math"
	"math/big"
)

// MaxFactorialN is the largest n for which Factorial does not overflow int64.
const MaxFactorialN = 20

// Factorial returns n! for 0 <= n <= MaxFactorialN.
// It panics on out-of-range input; packing degrees in LoCaLUT never exceed
// p_DRAM < 10, so a panic here always indicates a programming error.
func Factorial(n int) int64 {
	if n < 0 || n > MaxFactorialN {
		panic(fmt.Sprintf("perm: Factorial(%d) out of range [0,%d]", n, MaxFactorialN))
	}
	f := int64(1)
	for i := 2; i <= n; i++ {
		f *= int64(i)
	}
	return f
}

// binomTableN/binomTableK bound the precomputed Pascal triangle that makes
// small Binomial calls a table load. MultisetRank calls Binomial once per
// element of every canonicalized activation group — the innermost host-side
// loop of packed-LUT staging — with n < levels+p (<= 264 for 8-bit codecs)
// and k <= p+1, all well inside the table.
// The K bound keeps every table entry exact: C(299, 10) ~ 1.4e18 fits
// int64, C(299, 11) would not.
const (
	binomTableN = 300
	binomTableK = 11
)

var binomTable = func() *[binomTableN][binomTableK]int64 {
	var t [binomTableN][binomTableK]int64
	for n := 0; n < binomTableN; n++ {
		t[n][0] = 1
		for k := 1; k < binomTableK && k <= n; k++ {
			if k == n {
				t[n][k] = 1
			} else {
				t[n][k] = t[n-1][k-1] + t[n-1][k] // exact: bounds chosen to fit int64
			}
		}
	}
	return &t
}()

// Binomial returns C(n, k) computed exactly in int64, saturating at
// math.MaxInt64 on overflow. Saturation (rather than panic) lets capacity
// planning reason about absurdly large LUTs (e.g. W1A16 at p > 1) without
// special cases: a saturated size simply never fits any budget.
func Binomial(n, k int) int64 {
	if k < 0 || n < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	if n < binomTableN && k < binomTableK {
		return binomTable[n][k]
	}
	var c int64 = 1
	for i := 0; i < k; i++ {
		// c = c * (n-i) / (i+1), exact because c always holds C(n, i+1)
		// after the division. If the intermediate product would overflow,
		// fall back to exact big-integer arithmetic: the result itself may
		// still fit in int64 even when an intermediate does not.
		hi := int64(n - i)
		if c > math.MaxInt64/hi {
			return binomialBig(n, k)
		}
		c = c * hi / int64(i+1)
	}
	return c
}

// binomialBig computes C(n, k) exactly with math/big and saturates at
// math.MaxInt64. It is only reached for operands large enough that the fast
// int64 path risks intermediate overflow, which never happens for the LUT
// shapes LoCaLUT actually constructs.
func binomialBig(n, k int) int64 {
	var z big.Int
	z.Binomial(int64(n), int64(k))
	if !z.IsInt64() {
		return math.MaxInt64
	}
	return z.Int64()
}

// BinomialFloat returns C(n, k) as a float64 via lgamma, for capacity
// planning where exactness is unnecessary and int64 would overflow.
func BinomialFloat(n, k int) float64 {
	if k < 0 || n < 0 || k > n {
		return 0
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return math.Exp(ln - lk - lnk)
}

// Rank returns the Lehmer (lexicographic) rank of a permutation of [0, n)
// in [0, n!). It returns an error if p is not a permutation.
func Rank(p []int) (int64, error) {
	n := len(p)
	if n > MaxFactorialN {
		return 0, fmt.Errorf("perm: Rank: length %d exceeds %d", n, MaxFactorialN)
	}
	var seen [MaxFactorialN]bool
	for _, v := range p {
		if v < 0 || v >= n || seen[v] {
			return 0, fmt.Errorf("perm: Rank: %v is not a permutation of [0,%d)", p, n)
		}
		seen[v] = true
	}
	var r int64
	for i := 0; i < n; i++ {
		// Count elements after position i that are smaller than p[i].
		smaller := 0
		for j := i + 1; j < n; j++ {
			if p[j] < p[i] {
				smaller++
			}
		}
		r += int64(smaller) * Factorial(n-1-i)
	}
	return r, nil
}

// MustRank is Rank for inputs known to be valid permutations.
func MustRank(p []int) int64 {
	r, err := Rank(p)
	if err != nil {
		panic(err)
	}
	return r
}

// Unrank returns the permutation of [0, n) with Lehmer rank r, the inverse
// of Rank. It panics if r is outside [0, n!).
func Unrank(r int64, n int) []int {
	if r < 0 || r >= Factorial(n) {
		panic(fmt.Sprintf("perm: Unrank(%d, %d): rank out of range", r, n))
	}
	avail := make([]int, n)
	for i := range avail {
		avail[i] = i
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		f := Factorial(n - 1 - i)
		idx := r / f
		r %= f
		out[i] = avail[idx]
		avail = append(avail[:idx], avail[idx+1:]...)
	}
	return out
}

// SortPerm returns the stable sorting permutation of v: sorted[i] = v[p[i]],
// with sorted non-decreasing and ties broken by original position. The
// stability makes p a deterministic function of v, which is what lets the
// reordering LUT be precomputed: every occurrence of the same activation
// vector selects the same column.
func SortPerm(v []int) (sorted []int, p []int) {
	sorted = make([]int, len(v))
	p = make([]int, len(v))
	SortPermInto(v, sorted, p)
	return sorted, p
}

// SortPermInto is SortPerm with caller-provided destinations: sorted and p
// must each have length len(v). It allocates nothing, which is what lets
// per-group canonicalization run inside an allocation-free staging loop.
// The stable insertion sort produces the same unique stable permutation as
// any other stable sort (vectors here are p <= ~8 elements long, where
// insertion sort is also the fastest option).
func SortPermInto(v, sorted, p []int) {
	n := len(v)
	if len(sorted) != n || len(p) != n {
		panic(fmt.Sprintf("perm: SortPermInto: destination lengths %d/%d != %d",
			len(sorted), len(p), n))
	}
	for i := range p {
		p[i] = i
	}
	for i := 1; i < n; i++ {
		pi := p[i]
		vi := v[pi]
		j := i - 1
		for j >= 0 && v[p[j]] > vi {
			p[j+1] = p[j]
			j--
		}
		p[j+1] = pi
	}
	for i, idx := range p {
		sorted[i] = v[idx]
	}
}

// Apply permutes v by p: out[i] = v[p[i]]. It panics if lengths differ.
func Apply(p, v []int) []int {
	if len(p) != len(v) {
		panic(fmt.Sprintf("perm: Apply: length mismatch %d vs %d", len(p), len(v)))
	}
	out := make([]int, len(v))
	for i, idx := range p {
		out[i] = v[idx]
	}
	return out
}

// Inverse returns the inverse permutation q of p, i.e. q[p[i]] = i.
func Inverse(p []int) []int {
	q := make([]int, len(p))
	for i, v := range p {
		q[v] = i
	}
	return q
}

// IsSortedInts reports whether v is non-decreasing.
func IsSortedInts(v []int) bool {
	for i := 1; i < len(v); i++ {
		if v[i] < v[i-1] {
			return false
		}
	}
	return true
}

// MultisetCount returns the number of non-decreasing length-p sequences over
// the alphabet [0, a), i.e. C(a+p-1, p) — the canonical LUT column count of
// Eq. 1. The result saturates at math.MaxInt64.
func MultisetCount(a, p int) int64 {
	if a <= 0 || p < 0 {
		return 0
	}
	return Binomial(a+p-1, p)
}

// MultisetCountFloat is MultisetCount without overflow limits.
func MultisetCountFloat(a, p int) float64 {
	if a <= 0 || p < 0 {
		return 0
	}
	return BinomialFloat(a+p-1, p)
}

// MultisetRank maps a non-decreasing sequence v over [0, a) to its rank in
// [0, MultisetCount(a, len(v))). The bijection goes through the standard
// trick of adding i to v[i] (turning a multiset into a strictly increasing
// combination) and then ranking the combination in colexicographic order
// with the combinatorial number system: rank = sum_i C(u_i, i+1).
func MultisetRank(v []int, a int) (int64, error) {
	for i, x := range v {
		if x < 0 || x >= a {
			return 0, fmt.Errorf("perm: MultisetRank: element %d=%d outside alphabet [0,%d)", i, x, a)
		}
		if i > 0 && x < v[i-1] {
			return 0, fmt.Errorf("perm: MultisetRank: input %v not sorted", v)
		}
	}
	var r int64
	for i, x := range v {
		u := x + i // strictly increasing in [0, a+p-1)
		r += Binomial(u, i+1)
	}
	return r, nil
}

// MustMultisetRank is MultisetRank for inputs known to be valid.
func MustMultisetRank(v []int, a int) int64 {
	r, err := MultisetRank(v, a)
	if err != nil {
		panic(err)
	}
	return r
}

// MultisetUnrank is the inverse of MultisetRank: it returns the
// non-decreasing length-p sequence over [0, a) with the given rank.
// It panics if r is out of range.
func MultisetUnrank(r int64, a, p int) []int {
	total := MultisetCount(a, p)
	if r < 0 || r >= total {
		panic(fmt.Sprintf("perm: MultisetUnrank(%d, a=%d, p=%d): rank out of [0,%d)", r, a, p, total))
	}
	u := make([]int, p)
	// Greedily peel off the largest combinatorial digit first.
	for i := p; i >= 1; i-- {
		// Find the largest c with C(c, i) <= r.
		c := i - 1
		for Binomial(c+1, i) <= r {
			c++
		}
		u[i-1] = c
		r -= Binomial(c, i)
	}
	out := make([]int, p)
	for i := range u {
		out[i] = u[i] - i
	}
	return out
}
