package perm

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestFactorial(t *testing.T) {
	want := []int64{1, 1, 2, 6, 24, 120, 720, 5040, 40320, 362880, 3628800}
	for n, w := range want {
		if got := Factorial(n); got != w {
			t.Errorf("Factorial(%d) = %d, want %d", n, got, w)
		}
	}
	if got := Factorial(20); got != 2432902008176640000 {
		t.Errorf("Factorial(20) = %d", got)
	}
}

func TestFactorialPanics(t *testing.T) {
	for _, n := range []int{-1, 21, 100} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Factorial(%d) did not panic", n)
				}
			}()
			Factorial(n)
		}()
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct {
		n, k int
		want int64
	}{
		{0, 0, 1}, {5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {10, 3, 120},
		{15, 8, 6435},                 // canonical columns for ba=3, p=8
		{8, 4, 70},                    // harmless mid case
		{11, 4, 330},                  // ba=3, p=4 multiset count C(8+4-1,4)
		{19, 4, 3876},                 // ba=4, p=4
		{5, 6, 0},                     // k > n
		{-1, 0, 0},                    // negative n
		{3, -1, 0},                    // negative k
		{66, 33, 7219428434016265740}, // large exact value
	}
	for _, c := range cases {
		if got := Binomial(c.n, c.k); got != c.want {
			t.Errorf("Binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

func TestBinomialSaturates(t *testing.T) {
	if got := Binomial(200, 100); got != math.MaxInt64 {
		t.Errorf("Binomial(200,100) = %d, want saturation at MaxInt64", got)
	}
	// W1A16 at p=4: astronomically large, must saturate not wrap.
	if got := MultisetCount(1<<16, 4); got <= 0 {
		t.Errorf("MultisetCount(65536,4) = %d, want positive (saturated ok)", got)
	}
}

func TestBinomialFloat(t *testing.T) {
	for _, c := range []struct {
		n, k int
		want float64
	}{{10, 5, 252}, {15, 8, 6435}, {4, 2, 6}} {
		got := BinomialFloat(c.n, c.k)
		if math.Abs(got-c.want)/c.want > 1e-9 {
			t.Errorf("BinomialFloat(%d,%d) = %g, want %g", c.n, c.k, got, c.want)
		}
	}
	if BinomialFloat(3, 5) != 0 {
		t.Error("BinomialFloat(3,5) != 0")
	}
}

func TestRankUnrankRoundTrip(t *testing.T) {
	for n := 1; n <= 6; n++ {
		total := Factorial(n)
		for r := int64(0); r < total; r++ {
			p := Unrank(r, n)
			got := MustRank(p)
			if got != r {
				t.Fatalf("n=%d: Rank(Unrank(%d)) = %d", n, r, got)
			}
		}
	}
}

func TestRankLexOrder(t *testing.T) {
	// Identity permutation has rank 0; reversed has rank n!-1.
	for n := 1; n <= 7; n++ {
		id := make([]int, n)
		rev := make([]int, n)
		for i := 0; i < n; i++ {
			id[i] = i
			rev[i] = n - 1 - i
		}
		if r := MustRank(id); r != 0 {
			t.Errorf("rank(identity_%d) = %d, want 0", n, r)
		}
		if r := MustRank(rev); r != Factorial(n)-1 {
			t.Errorf("rank(reverse_%d) = %d, want %d", n, r, Factorial(n)-1)
		}
	}
}

func TestRankRejectsNonPermutations(t *testing.T) {
	bad := [][]int{{0, 0}, {1, 2}, {-1, 0}, {0, 2}}
	for _, p := range bad {
		if _, err := Rank(p); err == nil {
			t.Errorf("Rank(%v) accepted a non-permutation", p)
		}
	}
}

func TestRankTooLong(t *testing.T) {
	p := make([]int, MaxFactorialN+1)
	for i := range p {
		p[i] = i
	}
	if _, err := Rank(p); err == nil {
		t.Error("Rank accepted an over-long permutation")
	}
}

func TestSortPermStable(t *testing.T) {
	v := []int{3, 0, 2}
	sorted, p := SortPerm(v)
	if !reflect.DeepEqual(sorted, []int{0, 2, 3}) {
		t.Fatalf("sorted = %v", sorted)
	}
	if !reflect.DeepEqual(p, []int{1, 2, 0}) {
		t.Fatalf("perm = %v", p)
	}
	// Duplicates: stability means earlier index first.
	v = []int{5, 1, 5, 1}
	sorted, p = SortPerm(v)
	if !reflect.DeepEqual(sorted, []int{1, 1, 5, 5}) {
		t.Fatalf("sorted = %v", sorted)
	}
	if !reflect.DeepEqual(p, []int{1, 3, 0, 2}) {
		t.Fatalf("perm = %v (stability violated)", p)
	}
}

func TestSortPermProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 10 {
			return true
		}
		v := make([]int, len(raw))
		for i, b := range raw {
			v[i] = int(b % 8)
		}
		sorted, p := SortPerm(v)
		if !IsSortedInts(sorted) {
			return false
		}
		// sorted must equal Apply(p, v)
		return reflect.DeepEqual(sorted, Apply(p, v))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestApplyInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		p := rng.Perm(n)
		v := make([]int, n)
		for i := range v {
			v[i] = rng.Intn(100)
		}
		w := Apply(p, v)
		back := Apply(Inverse(p), w)
		if !reflect.DeepEqual(back, v) {
			t.Fatalf("Apply(Inverse(p), Apply(p, v)) != v: p=%v v=%v", p, v)
		}
	}
}

func TestApplyPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Apply did not panic on length mismatch")
		}
	}()
	Apply([]int{0, 1}, []int{5})
}

func TestMultisetRankUnrankExhaustive(t *testing.T) {
	for _, tc := range []struct{ a, p int }{{2, 3}, {4, 2}, {8, 3}, {3, 5}, {16, 2}, {2, 7}} {
		total := MultisetCount(tc.a, tc.p)
		seen := make(map[int64]bool, total)
		// Enumerate all non-decreasing sequences and check bijection.
		v := make([]int, tc.p)
		var walk func(pos, min int)
		walk = func(pos, min int) {
			if pos == tc.p {
				r := MustMultisetRank(v, tc.a)
				if r < 0 || r >= total {
					t.Fatalf("a=%d p=%d: rank %d of %v outside [0,%d)", tc.a, tc.p, r, v, total)
				}
				if seen[r] {
					t.Fatalf("a=%d p=%d: duplicate rank %d for %v", tc.a, tc.p, r, v)
				}
				seen[r] = true
				back := MultisetUnrank(r, tc.a, tc.p)
				if !reflect.DeepEqual(back, v) {
					t.Fatalf("a=%d p=%d: Unrank(Rank(%v)) = %v", tc.a, tc.p, v, back)
				}
				return
			}
			for x := min; x < tc.a; x++ {
				v[pos] = x
				walk(pos+1, x)
			}
		}
		walk(0, 0)
		if int64(len(seen)) != total {
			t.Fatalf("a=%d p=%d: covered %d ranks, want %d", tc.a, tc.p, len(seen), total)
		}
	}
}

func TestMultisetRankRejectsBadInput(t *testing.T) {
	if _, err := MultisetRank([]int{2, 1}, 4); err == nil {
		t.Error("accepted unsorted input")
	}
	if _, err := MultisetRank([]int{0, 4}, 4); err == nil {
		t.Error("accepted out-of-alphabet element")
	}
	if _, err := MultisetRank([]int{-1}, 4); err == nil {
		t.Error("accepted negative element")
	}
}

func TestMultisetCountMatchesEq1(t *testing.T) {
	// Paper Eq. 1 examples: ba=3 (a=8), p=8 -> C(15,8) = 6435.
	if got := MultisetCount(8, 8); got != 6435 {
		t.Errorf("MultisetCount(8,8) = %d, want 6435", got)
	}
	// ba=1 (a=2): reduction rate at p=4 is 2^4 / C(5,4) = 16/5 per... the
	// paper quotes total LUT size reduction 12.4x at p=4 for the full table;
	// here we only pin the column counts.
	if got := MultisetCount(2, 4); got != 5 {
		t.Errorf("MultisetCount(2,4) = %d, want 5", got)
	}
	if got := MultisetCount(2, 7); got != 8 {
		t.Errorf("MultisetCount(2,7) = %d, want 8", got)
	}
}

func TestMultisetRankProperty(t *testing.T) {
	// Rank must be strictly monotone in lexicographic order of sorted vectors
	// ... colex order actually; just verify bijectivity on random samples.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		a := 2 + rng.Intn(15)
		p := 1 + rng.Intn(6)
		v := make([]int, p)
		for i := range v {
			v[i] = rng.Intn(a)
		}
		sort.Ints(v)
		r := MustMultisetRank(v, a)
		back := MultisetUnrank(r, a, p)
		if !reflect.DeepEqual(back, v) {
			t.Fatalf("a=%d p=%d v=%v r=%d back=%v", a, p, v, r, back)
		}
	}
}

func TestUnrankPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Unrank did not panic on out-of-range rank")
		}
	}()
	Unrank(Factorial(3), 3)
}

func TestMultisetUnrankPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MultisetUnrank did not panic on out-of-range rank")
		}
	}()
	MultisetUnrank(MultisetCount(4, 2), 4, 2)
}

func TestIsSortedInts(t *testing.T) {
	if !IsSortedInts(nil) || !IsSortedInts([]int{1}) || !IsSortedInts([]int{1, 1, 2}) {
		t.Error("IsSortedInts false negative")
	}
	if IsSortedInts([]int{2, 1}) {
		t.Error("IsSortedInts false positive")
	}
}

func BenchmarkMultisetRank(b *testing.B) {
	v := []int{0, 1, 3, 3, 5, 7, 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MustMultisetRank(v, 8)
	}
}

func BenchmarkRank(b *testing.B) {
	p := []int{3, 1, 4, 0, 5, 2, 6}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MustRank(p)
	}
}

// TestSortPermIntoMatchesSortPerm cross-checks the allocation-free stable
// insertion sort against the allocating entry point on exhaustive small
// vectors and random larger ones, including heavy ties (where stability is
// the observable contract).
func TestSortPermIntoMatchesSortPerm(t *testing.T) {
	check := func(v []int) {
		t.Helper()
		wantSorted, wantP := SortPerm(v)
		sorted := make([]int, len(v))
		p := make([]int, len(v))
		SortPermInto(v, sorted, p)
		for i := range v {
			if sorted[i] != wantSorted[i] || p[i] != wantP[i] {
				t.Fatalf("SortPermInto(%v) = %v/%v, want %v/%v", v, sorted, p, wantSorted, wantP)
			}
		}
	}
	// Exhaustive over all length-4 vectors on a 3-letter alphabet: every tie
	// pattern appears.
	for x := 0; x < 81; x++ {
		v := []int{x % 3, (x / 3) % 3, (x / 9) % 3, (x / 27) % 3}
		check(v)
	}
	check([]int{})
	check([]int{7})
	check([]int{5, 5, 5, 5, 5, 5, 5, 5})
	check([]int{8, 7, 6, 5, 4, 3, 2, 1})
}
