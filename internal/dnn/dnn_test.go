package dnn

import (
	"math"
	"testing"

	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
)

func TestModelConfigs(t *testing.T) {
	b := BERTBase()
	if b.Hidden != 768 || b.FFN != 3072 || b.Layers != 12 || b.SeqLen != 128 {
		t.Errorf("BERT config %+v", b)
	}
	if b.Decoder {
		t.Error("BERT must not be a decoder")
	}
	if !OPT125M().Decoder {
		t.Error("OPT must be a decoder")
	}
	if ViTBase().SeqLen != 197 {
		t.Errorf("ViT seq = %d", ViTBase().SeqLen)
	}
}

func TestLayerGEMMShapes(t *testing.T) {
	shapes := BERTBase().LayerGEMMs()
	want := map[string][2]int{
		"qkv": {2304, 768}, "out": {768, 768}, "ffn1": {3072, 768}, "ffn2": {768, 3072},
	}
	if len(shapes) != 4 {
		t.Fatalf("%d shapes", len(shapes))
	}
	for _, sh := range shapes {
		w, ok := want[sh.Name]
		if !ok || sh.M != w[0] || sh.K != w[1] {
			t.Errorf("shape %s = (%d,%d), want %v", sh.Name, sh.M, sh.K, w)
		}
	}
}

// smallModel keeps unit-test simulation fast while exercising every path.
func smallModel() ModelConfig {
	return ModelConfig{Name: "tiny", Layers: 2, Hidden: 64, FFN: 256,
		Heads: 4, SeqLen: 16, Decoder: true}
}

func TestPrefillRuns(t *testing.T) {
	r := NewRunner(smallModel(), quant.W1A3, kernels.LoCaLUT)
	rep, err := r.Prefill(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tokens != 32 {
		t.Errorf("tokens = %d", rep.Tokens)
	}
	if rep.Total <= 0 || rep.GEMMPIM <= 0 || rep.HostOther <= 0 {
		t.Errorf("report %+v", rep)
	}
	sum := rep.GEMMPIM + rep.Transfer + rep.Quantize + rep.SortPack + rep.HostOther
	if diff := rep.Total - sum; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("total %g != category sum %g", rep.Total, sum)
	}
}

func TestDecodeRequiresDecoder(t *testing.T) {
	m := smallModel()
	m.Decoder = false
	r := NewRunner(m, quant.W1A3, kernels.LoCaLUT)
	if _, err := r.Decode(1, 4); err == nil {
		t.Error("decode on encoder model accepted")
	}
}

func TestDecodeScalesWithOutTokens(t *testing.T) {
	r := NewRunner(smallModel(), quant.W1A3, kernels.LoCaLUT)
	d4, err := r.Decode(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := r.Decode(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !(d8.Total > d4.Total*1.5) {
		t.Errorf("decode did not scale: 4 tokens %g, 8 tokens %g", d4.Total, d8.Total)
	}
}

// TestDecodeMatchesStepSum is the regression test for the closed-form
// decode price: it must equal the exact step-summed DecodeStep price,
// where step i attends prompt+i keys, to float tolerance — the old
// SeqLen + outTokens/2 context approximation fails this for any prompt
// that differs from the closed form's exact mean.
func TestDecodeMatchesStepSum(t *testing.T) {
	r := NewRunner(smallModel(), quant.W1A3, kernels.LoCaLUT)
	const batch, prompt = 2, 24
	for _, out := range []int{6, 7} { // even out: fractional mean context
		closed, err := r.DecodeFrom(batch, prompt, out)
		if err != nil {
			t.Fatal(err)
		}
		var total, gemmPIM, host float64
		for i := 0; i < out; i++ {
			step, err := r.DecodeStep(batch, prompt+i)
			if err != nil {
				t.Fatal(err)
			}
			total += step.Total
			gemmPIM += step.GEMMPIM
			host += step.HostOther
		}
		relClose := func(name string, got, want float64) {
			if d := math.Abs(got - want); d > 1e-9*math.Abs(want) {
				t.Errorf("out=%d: closed-form %s %g != step sum %g", out, name, got, want)
			}
		}
		relClose("Total", closed.Total, total)
		relClose("GEMMPIM", closed.GEMMPIM, gemmPIM)
		relClose("HostOther", closed.HostOther, host)
	}
}

// TestDecodeFromSeesPromptLength pins the bug the serving layer tripped
// over: decode cost must depend on the real prompt length, not only on
// the model's configured SeqLen.
func TestDecodeFromSeesPromptLength(t *testing.T) {
	r := NewRunner(smallModel(), quant.W1A3, kernels.LoCaLUT)
	short, err := r.DecodeFrom(2, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	long, err := r.DecodeFrom(2, 512, 4)
	if err != nil {
		t.Fatal(err)
	}
	if long.Total <= short.Total {
		t.Errorf("64x longer prompt did not raise decode cost: %g vs %g", long.Total, short.Total)
	}
	if long.GEMMPIM != short.GEMMPIM {
		t.Errorf("projections must not depend on prompt length: %g vs %g", long.GEMMPIM, short.GEMMPIM)
	}
}

func TestDecodeStepValidation(t *testing.T) {
	r := NewRunner(smallModel(), quant.W1A3, kernels.LoCaLUT)
	if _, err := r.DecodeStep(0, 16); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, err := r.DecodeStep(1, 0); err == nil {
		t.Error("ctx 0 accepted")
	}
	m := smallModel()
	m.Decoder = false
	enc := NewRunner(m, quant.W1A3, kernels.LoCaLUT)
	if _, err := enc.DecodeStep(1, 16); err == nil {
		t.Error("decode step on encoder model accepted")
	}
}

func TestInferCombinesPhases(t *testing.T) {
	r := NewRunner(smallModel(), quant.W2A2, kernels.OP)
	rep, err := r.Infer(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decode == nil {
		t.Fatal("decoder model without decode phase")
	}
	if diff := rep.Total - (rep.Prefill.Total + rep.Decode.Total); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("total %g != prefill %g + decode %g", rep.Total, rep.Prefill.Total, rep.Decode.Total)
	}
	if rep.Meter.Count(0) == 0 {
		t.Error("no aggregated instructions")
	}
}

func TestLoCaLUTBeatsNaiveEndToEnd(t *testing.T) {
	m := ModelConfig{Name: "mid", Layers: 2, Hidden: 128, FFN: 512, Heads: 4, SeqLen: 32}
	naive := NewRunner(m, quant.W1A3, kernels.Naive)
	fast := NewRunner(m, quant.W1A3, kernels.LoCaLUT)
	rn, err := naive.Prefill(4)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fast.Prefill(4)
	if err != nil {
		t.Fatal(err)
	}
	if rf.GEMMPIM >= rn.GEMMPIM {
		t.Errorf("LoCaLUT GEMM time %g >= naive %g", rf.GEMMPIM, rn.GEMMPIM)
	}
}

func TestRunnerValidation(t *testing.T) {
	r := NewRunner(smallModel(), quant.W1A3, kernels.LoCaLUT)
	if _, err := r.Prefill(0); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, err := r.Decode(0, 4); err == nil {
		t.Error("decode batch 0 accepted")
	}
	if _, err := r.Decode(1, 0); err == nil {
		t.Error("outTokens 0 accepted")
	}
}

func TestColumnSubsampling(t *testing.T) {
	// A capped runner must report (approximately) the same totals as an
	// uncapped one; the cap only changes simulation cost.
	m := ModelConfig{Name: "sub", Layers: 1, Hidden: 64, FFN: 128, Heads: 4, SeqLen: 64}
	full := NewRunner(m, quant.W1A3, kernels.LoCaLUT)
	full.MaxSimCols = 0
	full.Engine.Cfg.Ranks, full.Engine.Cfg.BanksPerRank = 1, 4
	capped := NewRunner(m, quant.W1A3, kernels.LoCaLUT)
	capped.MaxSimCols = 16
	capped.Engine.Cfg.Ranks, capped.Engine.Cfg.BanksPerRank = 1, 4

	rf, err := full.Prefill(4) // 256 tokens on a 4-DPU machine
	if err != nil {
		t.Fatal(err)
	}
	rc, err := capped.Prefill(4)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rc.Total / rf.Total
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("subsampled total %g vs full %g (ratio %.2f)", rc.Total, rf.Total, ratio)
	}
}
