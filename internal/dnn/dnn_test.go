package dnn

import (
	"testing"

	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/quant"
)

func TestModelConfigs(t *testing.T) {
	b := BERTBase()
	if b.Hidden != 768 || b.FFN != 3072 || b.Layers != 12 || b.SeqLen != 128 {
		t.Errorf("BERT config %+v", b)
	}
	if b.Decoder {
		t.Error("BERT must not be a decoder")
	}
	if !OPT125M().Decoder {
		t.Error("OPT must be a decoder")
	}
	if ViTBase().SeqLen != 197 {
		t.Errorf("ViT seq = %d", ViTBase().SeqLen)
	}
}

func TestLayerGEMMShapes(t *testing.T) {
	shapes := BERTBase().LayerGEMMs()
	want := map[string][2]int{
		"qkv": {2304, 768}, "out": {768, 768}, "ffn1": {3072, 768}, "ffn2": {768, 3072},
	}
	if len(shapes) != 4 {
		t.Fatalf("%d shapes", len(shapes))
	}
	for _, sh := range shapes {
		w, ok := want[sh.Name]
		if !ok || sh.M != w[0] || sh.K != w[1] {
			t.Errorf("shape %s = (%d,%d), want %v", sh.Name, sh.M, sh.K, w)
		}
	}
}

// smallModel keeps unit-test simulation fast while exercising every path.
func smallModel() ModelConfig {
	return ModelConfig{Name: "tiny", Layers: 2, Hidden: 64, FFN: 256,
		Heads: 4, SeqLen: 16, Decoder: true}
}

func TestPrefillRuns(t *testing.T) {
	r := NewRunner(smallModel(), quant.W1A3, kernels.LoCaLUT)
	rep, err := r.Prefill(2)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Tokens != 32 {
		t.Errorf("tokens = %d", rep.Tokens)
	}
	if rep.Total <= 0 || rep.GEMMPIM <= 0 || rep.HostOther <= 0 {
		t.Errorf("report %+v", rep)
	}
	sum := rep.GEMMPIM + rep.Transfer + rep.Quantize + rep.SortPack + rep.HostOther
	if diff := rep.Total - sum; diff > 1e-12 || diff < -1e-12 {
		t.Errorf("total %g != category sum %g", rep.Total, sum)
	}
}

func TestDecodeRequiresDecoder(t *testing.T) {
	m := smallModel()
	m.Decoder = false
	r := NewRunner(m, quant.W1A3, kernels.LoCaLUT)
	if _, err := r.Decode(1, 4); err == nil {
		t.Error("decode on encoder model accepted")
	}
}

func TestDecodeScalesWithOutTokens(t *testing.T) {
	r := NewRunner(smallModel(), quant.W1A3, kernels.LoCaLUT)
	d4, err := r.Decode(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	d8, err := r.Decode(2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !(d8.Total > d4.Total*1.5) {
		t.Errorf("decode did not scale: 4 tokens %g, 8 tokens %g", d4.Total, d8.Total)
	}
}

func TestInferCombinesPhases(t *testing.T) {
	r := NewRunner(smallModel(), quant.W2A2, kernels.OP)
	rep, err := r.Infer(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Decode == nil {
		t.Fatal("decoder model without decode phase")
	}
	if diff := rep.Total - (rep.Prefill.Total + rep.Decode.Total); diff > 1e-12 || diff < -1e-12 {
		t.Errorf("total %g != prefill %g + decode %g", rep.Total, rep.Prefill.Total, rep.Decode.Total)
	}
	if rep.Meter.Count(0) == 0 {
		t.Error("no aggregated instructions")
	}
}

func TestLoCaLUTBeatsNaiveEndToEnd(t *testing.T) {
	m := ModelConfig{Name: "mid", Layers: 2, Hidden: 128, FFN: 512, Heads: 4, SeqLen: 32}
	naive := NewRunner(m, quant.W1A3, kernels.Naive)
	fast := NewRunner(m, quant.W1A3, kernels.LoCaLUT)
	rn, err := naive.Prefill(4)
	if err != nil {
		t.Fatal(err)
	}
	rf, err := fast.Prefill(4)
	if err != nil {
		t.Fatal(err)
	}
	if rf.GEMMPIM >= rn.GEMMPIM {
		t.Errorf("LoCaLUT GEMM time %g >= naive %g", rf.GEMMPIM, rn.GEMMPIM)
	}
}

func TestRunnerValidation(t *testing.T) {
	r := NewRunner(smallModel(), quant.W1A3, kernels.LoCaLUT)
	if _, err := r.Prefill(0); err == nil {
		t.Error("batch 0 accepted")
	}
	if _, err := r.Decode(0, 4); err == nil {
		t.Error("decode batch 0 accepted")
	}
	if _, err := r.Decode(1, 0); err == nil {
		t.Error("outTokens 0 accepted")
	}
}

func TestColumnSubsampling(t *testing.T) {
	// A capped runner must report (approximately) the same totals as an
	// uncapped one; the cap only changes simulation cost.
	m := ModelConfig{Name: "sub", Layers: 1, Hidden: 64, FFN: 128, Heads: 4, SeqLen: 64}
	full := NewRunner(m, quant.W1A3, kernels.LoCaLUT)
	full.MaxSimCols = 0
	full.Engine.Cfg.Ranks, full.Engine.Cfg.BanksPerRank = 1, 4
	capped := NewRunner(m, quant.W1A3, kernels.LoCaLUT)
	capped.MaxSimCols = 16
	capped.Engine.Cfg.Ranks, capped.Engine.Cfg.BanksPerRank = 1, 4

	rf, err := full.Prefill(4) // 256 tokens on a 4-DPU machine
	if err != nil {
		t.Fatal(err)
	}
	rc, err := capped.Prefill(4)
	if err != nil {
		t.Fatal(err)
	}
	ratio := rc.Total / rf.Total
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("subsampled total %g vs full %g (ratio %.2f)", rc.Total, rf.Total, ratio)
	}
}
