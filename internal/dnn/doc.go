// Package dnn runs the paper's transformer workloads (§V-B, Fig. 8) on the
// simulated PIM system: BERT-base, OPT-125M and ViT-Base. The PIM banks
// execute every projection/FFN GEMM through the gemm.Engine while the host
// handles attention, softmax, normalization, GELU and (de)quantization —
// exactly the split of Fig. 8 — with prefill/decode phases and batching for
// the Fig. 19 scenarios.
//
// A Runner holds a reference to its engine; engines are safe for concurrent
// use, so independent runners (e.g. the parallel figure drivers in package
// experiments) may share one engine and its decision cache.
package dnn
