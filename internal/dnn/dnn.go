package dnn

import (
	"fmt"

	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/workload"
)

// ModelConfig describes a transformer's shape.
type ModelConfig struct {
	Name    string
	Layers  int
	Hidden  int
	FFN     int
	Heads   int
	SeqLen  int  // tokens per sequence (prompt length for decoders)
	Decoder bool // autoregressive generation supported
}

// BERTBase is the encoder-only language model (110M parameters, §VI-A).
func BERTBase() ModelConfig {
	return ModelConfig{Name: "BERT-base", Layers: 12, Hidden: 768, FFN: 3072,
		Heads: 12, SeqLen: 128}
}

// OPT125M is the decoder-only language model.
func OPT125M() ModelConfig {
	return ModelConfig{Name: "OPT-125M", Layers: 12, Hidden: 768, FFN: 3072,
		Heads: 12, SeqLen: 128, Decoder: true}
}

// ViTBase is the vision transformer (86M parameters, 196 patches + CLS).
func ViTBase() ModelConfig {
	return ModelConfig{Name: "ViT-Base", Layers: 12, Hidden: 768, FFN: 3072,
		Heads: 12, SeqLen: 197}
}

// GEMMShape is one projection executed on PIM: out = W(M x K) x acts(K x N).
type GEMMShape struct {
	Name string
	M, K int
}

// LayerGEMMs returns the per-layer PIM GEMMs of Fig. 8: fused QKV
// projection, attention output projection, and the two FFN projections.
func (m ModelConfig) LayerGEMMs() []GEMMShape {
	return []GEMMShape{
		{Name: "qkv", M: 3 * m.Hidden, K: m.Hidden},
		{Name: "out", M: m.Hidden, K: m.Hidden},
		{Name: "ffn1", M: m.FFN, K: m.Hidden},
		{Name: "ffn2", M: m.Hidden, K: m.FFN},
	}
}

// HostModel prices the host-resident fp32 operations (softmax, layernorm,
// GELU, attention score/context matmuls) of Fig. 8.
type HostModel struct {
	// FlopsPerSec is the effective multicore fp32 throughput of the host
	// (Xeon Gold 5215 class with AVX-512).
	FlopsPerSec float64
}

// DefaultHost returns the testbed host model.
func DefaultHost() HostModel { return HostModel{FlopsPerSec: 2e11} }

// attnFlops estimates per-layer attention flops on the host for `tokens`
// query positions attending over a context of ctx keys. ctx is a float so
// closed forms can price a phase at the exact (possibly fractional) mean
// context of its steps: every term is linear in ctx, so pricing at the
// mean equals the mean of per-step prices.
func (m ModelConfig) attnFlops(tokens int, ctx float64) float64 {
	dHead := m.Hidden / m.Heads
	qk := 2.0 * float64(tokens) * ctx * float64(dHead) * float64(m.Heads)
	pv := qk
	softmax := 5.0 * float64(tokens) * ctx * float64(m.Heads)
	return qk + pv + softmax
}

// hostElementwiseFlops estimates per-layer layernorm/GELU/residual flops.
func (m ModelConfig) hostElementwiseFlops(tokens int) float64 {
	ln := 2 * 8.0 * float64(tokens) * float64(m.Hidden)
	gelu := 8.0 * float64(tokens) * float64(m.FFN)
	resid := 4.0 * float64(tokens) * float64(m.Hidden)
	return ln + gelu + resid
}

// Runner executes a model configuration on the simulated system.
type Runner struct {
	Engine  *gemm.Engine
	Host    HostModel
	Model   ModelConfig
	Fmt     quant.Format
	Variant kernels.Variant
	// Seed makes the synthetic weights/activations reproducible.
	Seed int64
	// MaxSimCols caps the simulated activation columns per GEMM; wider
	// GEMMs are column-subsampled and scaled (all per-column costs are
	// linear in N). 0 means no cap.
	MaxSimCols int
}

// NewRunner builds a runner with testbed defaults.
func NewRunner(model ModelConfig, f quant.Format, v kernels.Variant) *Runner {
	return &Runner{
		Engine:     gemm.NewEngine(),
		Host:       DefaultHost(),
		Model:      model,
		Fmt:        f,
		Variant:    v,
		Seed:       1,
		MaxSimCols: 8192,
	}
}

// PhaseReport aggregates one inference phase.
type PhaseReport struct {
	// Phase is "prefill" or "decode".
	Phase  string
	Tokens int
	// Seconds by Fig. 16(a) category.
	GEMMPIM   float64
	Transfer  float64
	Quantize  float64
	SortPack  float64
	HostOther float64 // attention, softmax, LN, GELU (host fp32)
	Total     float64
	// Meter aggregates device events for the energy model; HostOps counts
	// host scalar operations (quant pipeline + fp32 ops).
	Meter   pim.Meter
	HostOps int64
}

// categories sums into the total.
func (p *PhaseReport) finalize() {
	p.Total = p.GEMMPIM + p.Transfer + p.Quantize + p.SortPack + p.HostOther
}

// runGEMM executes one layer GEMM at the given token count, with column
// subsampling for very wide activations.
func (r *Runner) runGEMM(sh GEMMShape, tokens int, seed int64) (*gemm.Report, float64, error) {
	n := tokens
	scale := 1.0
	// Subsampling is valid only while the bank grid stays saturated —
	// below NumDPUs columns, extra columns map to idle banks rather than
	// per-bank work, and time is no longer column-linear.
	floor := r.Engine.Cfg.NumDPUs()
	if cap := max(r.MaxSimCols, floor); r.MaxSimCols > 0 && n > cap {
		scale = float64(n) / float64(cap)
		n = cap
	}
	var pair *workload.GEMMPair
	if r.Engine.Exec.Mode == kernels.CyclesOnly {
		// No data flows through cycles-only kernels, so skip generating and
		// quantizing the synthetic operands — the dominant host cost when a
		// serving simulator prices thousands of forward passes.
		pair = workload.NewShapePair(sh.M, sh.K, n, r.Fmt)
	} else {
		pair = workload.NewGEMMPair(sh.M, sh.K, n, r.Fmt, seed)
	}
	rep, err := r.Engine.Run(pair, gemm.Options{Variant: r.Variant})
	if err != nil {
		return nil, 0, fmt.Errorf("dnn: %s %s: %w", r.Model.Name, sh.Name, err)
	}
	return rep, scale, nil
}

// runPhase executes all layer GEMMs once at the token count and scales by
// the layer count (layers share shapes; per-layer timings are identical).
// ctx may be fractional: it only feeds the host attention estimate, which
// is linear in it.
func (r *Runner) runPhase(phase string, tokens int, ctx float64) (*PhaseReport, error) {
	if tokens <= 0 {
		return nil, fmt.Errorf("dnn: phase %q with %d tokens", phase, tokens)
	}
	p := &PhaseReport{Phase: phase, Tokens: tokens}
	layers := float64(r.Model.Layers)
	for i, sh := range r.Model.LayerGEMMs() {
		rep, scale, err := r.runGEMM(sh, tokens, r.Seed+int64(i))
		if err != nil {
			return nil, err
		}
		p.GEMMPIM += rep.KernelSeconds * scale * layers
		p.Transfer += rep.Transfer * scale * layers
		p.Quantize += (rep.Host.Quantize + rep.Host.Dequant) * scale * layers
		p.SortPack += rep.Host.SortPack * scale * layers
		p.HostOps += int64(float64(rep.HostOps) * scale * layers)
		for c := range rep.Meter.Counts {
			p.Meter.Counts[c] += int64(float64(rep.Meter.Counts[c]) * scale * layers)
		}
	}
	hostFlops := (r.Model.attnFlops(tokens, ctx) + r.Model.hostElementwiseFlops(tokens)) * layers
	p.HostOther = hostFlops / r.Host.FlopsPerSec
	p.HostOps += int64(hostFlops)
	p.finalize()
	return p, nil
}

// ForwardTokens prices one forward pass over `tokens` activation columns
// whose attention spans a ctx-token context — the serving layer's entry
// point, where a batch packs requests of varying length so the token count
// is not a (batch x SeqLen) multiple. The report covers all transformer
// layers.
func (r *Runner) ForwardTokens(tokens, ctx int) (*PhaseReport, error) {
	return r.runPhase("forward", tokens, float64(ctx))
}

// Prefill runs the prompt phase for a batch of sequences.
func (r *Runner) Prefill(batch int) (*PhaseReport, error) {
	if batch <= 0 {
		return nil, fmt.Errorf("dnn: batch %d", batch)
	}
	tokens := batch * r.Model.SeqLen
	return r.runPhase("prefill", tokens, float64(r.Model.SeqLen))
}

// DecodeStep prices exactly one autoregressive decode step: batch
// single-token queries, each attending over a ctx-token context (prompt
// plus everything generated so far). This is the serving simulator's
// per-step entry point; summing DecodeStep over a generation's growing
// contexts is the exact decode price that Decode reproduces in closed
// form.
func (r *Runner) DecodeStep(batch, ctx int) (*PhaseReport, error) {
	if !r.Model.Decoder {
		return nil, fmt.Errorf("dnn: %s is not a decoder model", r.Model.Name)
	}
	if batch <= 0 || ctx <= 0 {
		return nil, fmt.Errorf("dnn: batch %d ctx %d", batch, ctx)
	}
	return r.runPhase("decode", batch, float64(ctx))
}

// Decode runs outTokens autoregressive steps for a batch (decoder models
// only) from the model's configured prompt length.
func (r *Runner) Decode(batch, outTokens int) (*PhaseReport, error) {
	return r.DecodeFrom(batch, r.Model.SeqLen, outTokens)
}

// DecodeFrom prices outTokens autoregressive steps for a batch whose
// prompts are prompt tokens long. Step i (0-based) attends prompt+i keys;
// every per-step cost is either ctx-independent (the projections see only
// batch columns) or linear in ctx (host attention), so one step priced at
// the exact mean context prompt + (outTokens-1)/2 equals the sum over
// steps — validated against the step-summed DecodeStep price in tests.
func (r *Runner) DecodeFrom(batch, prompt, outTokens int) (*PhaseReport, error) {
	if !r.Model.Decoder {
		return nil, fmt.Errorf("dnn: %s is not a decoder model", r.Model.Name)
	}
	if batch <= 0 || prompt <= 0 || outTokens <= 0 {
		return nil, fmt.Errorf("dnn: batch %d prompt %d outTokens %d", batch, prompt, outTokens)
	}
	ctx := float64(prompt) + float64(outTokens-1)/2
	step, err := r.runPhase("decode", batch, ctx)
	if err != nil {
		return nil, err
	}
	// Scale one step to outTokens steps.
	out := &PhaseReport{Phase: "decode", Tokens: batch * outTokens}
	f := float64(outTokens)
	out.GEMMPIM = step.GEMMPIM * f
	out.Transfer = step.Transfer * f
	out.Quantize = step.Quantize * f
	out.SortPack = step.SortPack * f
	out.HostOther = step.HostOther * f
	out.HostOps = int64(float64(step.HostOps) * f)
	for c := range step.Meter.Counts {
		out.Meter.Counts[c] = int64(float64(step.Meter.Counts[c]) * f)
	}
	out.finalize()
	return out, nil
}

// InferenceReport is a full forward execution (prefill + optional decode).
type InferenceReport struct {
	Model   string
	Format  string
	Variant kernels.Variant
	Prefill *PhaseReport
	Decode  *PhaseReport // nil for encoder-only models
	Total   float64
	Meter   pim.Meter
	HostOps int64
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Infer runs prefill (and decode for decoder models) end to end.
func (r *Runner) Infer(batch, outTokens int) (*InferenceReport, error) {
	pre, err := r.Prefill(batch)
	if err != nil {
		return nil, err
	}
	rep := &InferenceReport{
		Model: r.Model.Name, Format: r.Fmt.Name(), Variant: r.Variant,
		Prefill: pre, Total: pre.Total, Meter: pre.Meter, HostOps: pre.HostOps,
	}
	if r.Model.Decoder && outTokens > 0 {
		dec, err := r.Decode(batch, outTokens)
		if err != nil {
			return nil, err
		}
		rep.Decode = dec
		rep.Total += dec.Total
		for c := range dec.Meter.Counts {
			rep.Meter.Counts[c] += dec.Meter.Counts[c]
		}
		rep.HostOps += dec.HostOps
	}
	return rep, nil
}
