package costmodel

import (
	"sync"

	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
)

// The §IV-D selection runs once per GEMM shape at initialization (§V-A), but
// a serving workload replays the same handful of shapes millions of times:
// every transformer layer, every batch member and every bank tile of one
// layer share a (format, shape, budget) key. Cache memoizes the decision so
// batched execution pays for the packing-degree search once.
//
// A decision depends only on the model constants, the format, the shape and
// the two LUT byte budgets, all of which are part of the key, so a cache can
// be shared between engines with different machine configurations (and
// between the shards of a parallel run — all methods are safe for concurrent
// use).

// choiceKey identifies one Choose decision.
type choiceKey struct {
	model Model
	fmt   quant.Format
	m     int
	k     int
	n     int
	wram  int64
	mram  int64
}

// variantKey identifies one ChooseForVariant decision.
type variantKey struct {
	fmt  quant.Format
	kind SizeKind
	wram int64
}

// Cache memoizes cost-model decisions. The zero value is not ready; use
// NewCache. All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	choices  map[choiceKey]Choice
	variants map[variantKey]int
	hits     int64
	misses   int64
}

// NewCache returns an empty decision cache.
func NewCache() *Cache {
	return &Cache{
		choices:  make(map[choiceKey]Choice),
		variants: make(map[variantKey]int),
	}
}

// Choose is a memoized Choose. Errors are not cached: a failing
// configuration is cheap to re-detect and callers treat it as fatal anyway.
func (c *Cache) Choose(m Model, f quant.Format, M, K, N int, cfg *pim.Config) (Choice, error) {
	key := choiceKey{model: m, fmt: f, m: M, k: K, n: N,
		wram: cfg.WRAMLUTBudget(), mram: cfg.MRAMLUTBudget()}
	c.mu.Lock()
	if ch, ok := c.choices[key]; ok {
		c.hits++
		c.mu.Unlock()
		return ch, nil
	}
	c.misses++
	c.mu.Unlock()

	ch, err := Choose(m, f, M, K, N, cfg)
	if err != nil {
		return Choice{}, err
	}
	c.mu.Lock()
	c.choices[key] = ch
	c.mu.Unlock()
	return ch, nil
}

// ChooseForVariant is a memoized ChooseForVariant.
func (c *Cache) ChooseForVariant(f quant.Format, kind SizeKind, cfg *pim.Config) (int, error) {
	key := variantKey{fmt: f, kind: kind, wram: cfg.WRAMLUTBudget()}
	c.mu.Lock()
	if p, ok := c.variants[key]; ok {
		c.hits++
		c.mu.Unlock()
		return p, nil
	}
	c.misses++
	c.mu.Unlock()

	p, err := ChooseForVariant(f, kind, cfg)
	if err != nil {
		return 0, err
	}
	c.mu.Lock()
	c.variants[key] = p
	c.mu.Unlock()
	return p, nil
}

// Stats reports hit/miss counts (diagnostics and tests).
func (c *Cache) Stats() (hits, misses int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}
