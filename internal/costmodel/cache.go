package costmodel

import (
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/stripemap"
)

// The §IV-D selection runs once per GEMM shape at initialization (§V-A), but
// a serving workload replays the same handful of shapes millions of times:
// every transformer layer, every batch member and every bank tile of one
// layer share a (format, shape, budget) key. Cache memoizes the decision so
// batched execution pays for the packing-degree search once.
//
// A decision depends only on the model constants, the format, the shape and
// the two LUT byte budgets, all of which are part of the key, so a cache can
// be shared between engines with different machine configurations (and
// between the shards of a parallel run — all methods are safe for concurrent
// use). The maps are lock-striped (internal/stripemap): high-parallelism
// runs hit the cache on every worker's hot path, and striping keeps them off
// a single mutex cacheline. Striping cannot perturb results — each entry is
// a pure function of its key.

// choiceKey identifies one Choose decision.
type choiceKey struct {
	model Model
	fmt   quant.Format
	m     int
	k     int
	n     int
	wram  int64
	mram  int64
}

// variantKey identifies one ChooseForVariant decision.
type variantKey struct {
	fmt  quant.Format
	kind SizeKind
	wram int64
}

func hashChoiceKey(key choiceKey) uint64 {
	return uint64(key.m)*0x9E3779B185EBCA87 ^
		uint64(key.k)*0xC2B2AE3D27D4EB4F ^
		uint64(key.n)*0x165667B19E3779F9 ^
		uint64(key.fmt.Weight.Bits)<<13 ^ uint64(key.fmt.Act.Bits)<<5
}

func hashVariantKey(key variantKey) uint64 {
	return uint64(key.fmt.Weight.Bits)*31 ^ uint64(key.fmt.Act.Bits)*131 ^
		uint64(key.kind)<<7 ^ uint64(key.wram)
}

// Cache memoizes cost-model decisions. The zero value is not ready; use
// NewCache. All methods are safe for concurrent use.
type Cache struct {
	choices  *stripemap.Map[choiceKey, Choice]
	variants *stripemap.Map[variantKey, int]
}

// NewCache returns an empty decision cache.
func NewCache() *Cache {
	return &Cache{
		choices:  stripemap.New[choiceKey, Choice](hashChoiceKey),
		variants: stripemap.New[variantKey, int](hashVariantKey),
	}
}

// Choose is a memoized Choose. Errors are not cached: a failing
// configuration is cheap to re-detect and callers treat it as fatal anyway.
func (c *Cache) Choose(m Model, f quant.Format, M, K, N int, cfg *pim.Config) (Choice, error) {
	key := choiceKey{model: m, fmt: f, m: M, k: K, n: N,
		wram: cfg.WRAMLUTBudget(), mram: cfg.MRAMLUTBudget()}
	if ch, ok := c.choices.Lookup(key); ok {
		return ch, nil
	}
	ch, err := Choose(m, f, M, K, N, cfg)
	if err != nil {
		return Choice{}, err
	}
	c.choices.Store(key, ch)
	return ch, nil
}

// ChooseForVariant is a memoized ChooseForVariant.
func (c *Cache) ChooseForVariant(f quant.Format, kind SizeKind, cfg *pim.Config) (int, error) {
	key := variantKey{fmt: f, kind: kind, wram: cfg.WRAMLUTBudget()}
	if p, ok := c.variants.Lookup(key); ok {
		return p, nil
	}
	p, err := ChooseForVariant(f, kind, cfg)
	if err != nil {
		return 0, err
	}
	c.variants.Store(key, p)
	return p, nil
}

// Stats reports hit/miss counts (diagnostics and tests) summed over both
// decision kinds.
func (c *Cache) Stats() (hits, misses int64) {
	h1, m1 := c.choices.Stats()
	h2, m2 := c.variants.Stats()
	return h1 + h2, m1 + m2
}
