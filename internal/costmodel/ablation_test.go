package costmodel

import (
	"testing"

	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
)

// TestAblationByteAccurateSliceCost documents the DESIGN.md finding: the
// verbatim Eq. 2 (per-entry L_D, no k-refinement) picks p=6 for W2A2 at
// (3072,768,768), while the byte-accurate refined model picks p=5 — the
// value the paper reports its own model choosing. Removing either
// refinement must reproduce the verbatim behaviour, so this test pins both
// the refinement and the reason it exists.
func TestAblationByteAccurateSliceCost(t *testing.T) {
	m := Default()
	const M, K, N = 3072, 768, 768

	// Verbatim Eq. 2/3: per-entry L_D, flat L_local.
	bestP, bestT := 0, 0.0
	for p := 1; p <= 6; p++ {
		tt := m.StreamTime(2, p, M, K, N)
		if bestP == 0 || tt < bestT {
			bestP, bestT = p, tt
		}
	}
	if bestP != 6 {
		t.Errorf("verbatim Eq.2 picks p=%d, expected 6 (the documented deviation)", bestP)
	}

	// Refined model: byte-accurate slice term + k-aware L_local.
	cfg := pim.DefaultConfig()
	bestP = 0
	for p := 5; p <= 6; p++ {
		spec := lut.MustSpec(quant.W2A2, p)
		k := MaxSliceK(spec, &cfg)
		tt := m.StreamTimeBytes(spec, M, K, N, k)
		if bestP == 0 || tt < bestT {
			bestP, bestT = p, tt
		}
	}
	if bestP != 5 {
		t.Errorf("refined model picks p=%d, want 5 (paper: 'correctly determined five')", bestP)
	}
}

// TestAblationKRefinement: without the output-update amortization the
// refined model would lose the W2A2 p=5-over-p=6 preference at M=3072.
func TestAblationKRefinement(t *testing.T) {
	m := Default()
	m.OutUpdateInstr = 0 // ablate: no k-dependence
	cfg := pim.DefaultConfig()
	const M, K, N = 3072, 768, 768
	s5 := lut.MustSpec(quant.W2A2, 5)
	s6 := lut.MustSpec(quant.W2A2, 6)
	t5 := m.StreamTimeBytes(s5, M, K, N, MaxSliceK(s5, &cfg))
	t6 := m.StreamTimeBytes(s6, M, K, N, MaxSliceK(s6, &cfg))
	if !(t6 < t5) {
		t.Errorf("ablated model should prefer p=6 (t5=%g t6=%g): the k-refinement is load-bearing", t5, t6)
	}
}

// TestW1A3SliceKAblation: the slice batch chosen for W1A3 must be the
// maximum (its 512 B slice pairs are cheap), and shrinking WRAM must shrink
// k — the §VI-D mechanism.
func TestW1A3SliceKAblation(t *testing.T) {
	cfg := pim.DefaultConfig()
	spec := lut.MustSpec(quant.W1A3, 8)
	if k := MaxSliceK(spec, &cfg); k != 8 {
		t.Errorf("k = %d, want 8", k)
	}
	small := cfg
	small.WRAMBytes = 2048 // LUT budget ~1.1 KB -> k = 2
	if k := MaxSliceK(spec, &small); k != 2 {
		t.Errorf("k on tiny WRAM = %d, want 2", k)
	}
	tiny := cfg
	tiny.WRAMBytes = 256
	if k := MaxSliceK(spec, &tiny); k != 0 {
		t.Errorf("k on 256 B WRAM = %d, want 0 (nothing fits)", k)
	}
}
