// Package costmodel implements the first-order performance model of §IV-D:
// Eq. 2 (slice-streaming execution time), Eq. 4 (buffer-resident time), the
// optimal packing degree selection of Eq. 3, and the streaming-vs-buffer
// decision of Eq. 6. The host runs this model once per GEMM shape at
// initialization (§V-A) to pick the packing degree p*, the residence of the
// LUTs, and the slice batch k.
//
// Because a serving workload replays a handful of shapes across layers,
// batch members and bank shards, the package also provides Cache, a
// thread-safe memoization of the selection keyed by (model constants,
// format, shape, LUT byte budgets). The gemm engine consults it on every
// plan, so batched execution pays for each packing-degree search once.
package costmodel
