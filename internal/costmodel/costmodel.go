package costmodel

import (
	"fmt"
	"math"

	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
)

// Model holds the profiled constants of §VI-I plus the instruction split
// that refines L_local for the slice-streaming kernel's register-level
// output reuse (larger k amortizes the output update).
type Model struct {
	// LD is the time to stream one byte of a LUT slice from the DRAM bank
	// into the local buffer (seconds). 1.36e-9 s/B is ~735 MB/s, matching
	// measured UPMEM MRAM->WRAM DMA bandwidth; Eq. 2 as printed charges it
	// per slice entry, which coincides for the 1-byte-entry W1Ax tables
	// the paper leads with.
	LD float64
	// LLocal is the time for one reordering lookup + one canonical lookup
	// + accumulation ("12 instructions"), in seconds.
	LLocal float64
	// RCInstr, StreamBaseInstr and OutUpdateInstr mirror the kernel cost
	// table: the buffer-resident group costs RCInstr; the streaming group
	// costs StreamBaseInstr + OutUpdateInstr/k.
	RCInstr, StreamBaseInstr, OutUpdateInstr float64
}

// Default returns the UPMEM-profiled constants of the paper.
func Default() Model {
	return Model{
		LD: 1.36e-9, LLocal: 3.27e-8,
		RCInstr: 12, StreamBaseInstr: 10, OutUpdateInstr: 3,
	}
}

// StreamTime evaluates Eq. 2: the slice-streaming execution time of an
// M x K x N GEMM at packing degree p:
//
//	T = 2^(bw*p) * (K*N/p) * L_D  +  (M*K*N/p) * L_local.
func (m Model) StreamTime(bw, p, M, K, N int) float64 {
	groups := float64(K) * float64(N) / float64(p)
	sliceEntries := math.Pow(2, float64(bw*p))
	return sliceEntries*groups*m.LD + float64(M)*groups*m.LLocal
}

// StreamTimeBytes is the byte-accurate refinement of Eq. 2 used for
// decisions: the slice term is charged per byte of the canonical+reordering
// entry pair and L_local is scaled for the register-level output reuse the
// slice batch k provides.
func (m Model) StreamTimeBytes(spec lut.Spec, M, K, N, k int) float64 {
	groups := float64(K) * float64(N) / float64(spec.P)
	sliceBytes := float64(spec.SliceBytes())
	local := m.LLocal * (m.StreamBaseInstr + m.OutUpdateInstr/float64(k)) / m.RCInstr
	return sliceBytes*groups*m.LD + float64(M)*groups*local
}

// BufferTime evaluates Eq. 4: the buffer-resident time at packing degree
// pLocal (no slice loading term).
func (m Model) BufferTime(pLocal, M, K, N int) float64 {
	if pLocal < 1 {
		return math.Inf(1)
	}
	return float64(M) * float64(K) * float64(N) / float64(pLocal) * m.LLocal
}

// BreakEvenM evaluates Eq. 6: buffer residence beats streaming when
// M < 2^(bw*p*) * (L_D/L_local) * (p_local / (p* - p_local)).
func (m Model) BreakEvenM(bw, pStar, pLocal int) float64 {
	if pStar <= pLocal {
		return math.Inf(1) // streaming cannot win without a p advantage
	}
	return math.Pow(2, float64(bw*pStar)) * (m.LD / m.LLocal) *
		float64(pLocal) / float64(pStar-pLocal)
}

// SizeKind selects which LUT footprint a packing-degree search constrains.
type SizeKind int

const (
	// SizeOpPacked is the plain operation-packed LUT (OP baseline).
	SizeOpPacked SizeKind = iota
	// SizeCanonical is the canonical LUT alone (OP+LC: reordering is done
	// in software, so only the canonical table occupies the buffer).
	SizeCanonical
	// SizeCombined is canonical + reordering LUT (OP+LC+RC and LoCaLUT).
	SizeCombined
)

// specSize returns the footprint of the given kind.
func specSize(s lut.Spec, kind SizeKind) int64 {
	switch kind {
	case SizeOpPacked:
		return s.OpPackedBytes()
	case SizeCanonical:
		return s.CanonicalBytes()
	default:
		return s.CombinedBytes()
	}
}

// MaxP returns the largest packing degree whose LUT footprint (per kind)
// fits the byte budget and stays buildable, or 0 if even p=1 does not fit.
func MaxP(f quant.Format, budget int64, kind SizeKind) int {
	best := 0
	for p := 1; ; p++ {
		s, err := lut.NewSpec(f, p)
		if err != nil {
			break
		}
		size := specSize(s, kind)
		if size > budget || size > lut.MaxBuildBytes {
			// Footprints grow monotonically in p; stop at first overflow.
			break
		}
		best = p
	}
	return best
}

// Choice is the configuration the model selects for one GEMM shape.
type Choice struct {
	// P is the chosen packing degree.
	P int
	// Streaming reports whether LUT slice streaming is used; when false
	// the LUTs are buffer-resident at P = pLocal.
	Streaming bool
	// K is the slice batch (1 when not streaming).
	K int
	// PredictedSeconds is the model-predicted kernel time for the shape.
	PredictedSeconds float64
	// PLocal and PDRAM record the residence limits for diagnostics.
	PLocal, PDRAM int
}

// Choose runs the §IV-D selection for a LoCaLUT GEMM of shape M x K x N:
// it evaluates Eq. 2 for every p <= p_DRAM and Eq. 4 at p_local, picks the
// minimum, and selects the largest k in {8,4,2,1} whose slice pairs fit the
// WRAM LUT budget at the chosen p (larger k only improves output reuse).
func Choose(m Model, f quant.Format, M, K, N int, cfg *pim.Config) (Choice, error) {
	if M <= 0 || K <= 0 || N <= 0 {
		return Choice{}, fmt.Errorf("costmodel: invalid GEMM shape %dx%dx%d", M, K, N)
	}
	pLocal := MaxP(f, cfg.WRAMLUTBudget(), SizeCombined)
	pDRAM := MaxP(f, cfg.MRAMLUTBudget(), SizeCombined)
	if pDRAM == 0 {
		return Choice{}, fmt.Errorf("costmodel: no packing degree fits the MRAM budget for %s", f.Name())
	}

	best := Choice{PLocal: pLocal, PDRAM: pDRAM}
	best.PredictedSeconds = math.Inf(1)

	// Buffer-resident candidate (Eq. 4).
	if pLocal >= 1 {
		if t := m.BufferTime(pLocal, M, K, N); t < best.PredictedSeconds {
			best.P = pLocal
			best.Streaming = false
			best.K = 1
			best.PredictedSeconds = t
		}
	}
	// Streaming candidates, each with the largest k whose slice pairs fit
	// the WRAM LUT budget. Slice streaming exists to "extend the effective
	// packing degree beyond what buffer-sized LUTs can support" (§IV-C),
	// so only p > p_local engages it; within the buffer range the buffer
	// design is used directly.
	for p := pLocal + 1; p <= pDRAM; p++ {
		spec, err := lut.NewSpec(f, p)
		if err != nil {
			break
		}
		k := MaxSliceK(spec, cfg)
		if k < 1 {
			continue // even one slice pair does not fit WRAM
		}
		if t := m.StreamTimeBytes(spec, M, K, N, k); t < best.PredictedSeconds {
			best.P = p
			best.Streaming = true
			best.K = k
			best.PredictedSeconds = t
		}
	}
	if best.P == 0 {
		return Choice{}, fmt.Errorf("costmodel: no feasible configuration for %s at %dx%dx%d",
			f.Name(), M, K, N)
	}
	return best, nil
}

// MaxSliceK returns the largest slice batch in {8,4,2,1} whose slice pairs
// fit the WRAM LUT budget at the given spec, or 0 if none fit.
func MaxSliceK(spec lut.Spec, cfg *pim.Config) int {
	for _, k := range []int{8, 4, 2, 1} {
		if int64(k)*spec.SliceBytes() <= cfg.WRAMLUTBudget() {
			return k
		}
	}
	return 0
}

// ChooseForVariant picks the packing degree for the non-streaming design
// points of §VI-A (OP, OP+LC, OP+LC+RC): the largest p whose table of the
// variant's kind fits the WRAM budget.
func ChooseForVariant(f quant.Format, kind SizeKind, cfg *pim.Config) (int, error) {
	p := MaxP(f, cfg.WRAMLUTBudget(), kind)
	if p == 0 {
		return 0, fmt.Errorf("costmodel: no packing degree of kind %d fits WRAM for %s", kind, f.Name())
	}
	return p, nil
}
