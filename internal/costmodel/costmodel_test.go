package costmodel

import (
	"math"
	"testing"

	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
)

func TestDefaultConstants(t *testing.T) {
	m := Default()
	if m.LD != 1.36e-9 || m.LLocal != 3.27e-8 {
		t.Errorf("constants %g %g", m.LD, m.LLocal)
	}
}

func TestStreamTimeEq2(t *testing.T) {
	// Hand-evaluate Eq. 2 for W2A2 (bw=2), p=5, (3072,768,768):
	// 2^10 * (768*768/5) * 1.36e-9 + 3072*768*768/5 * 3.27e-8.
	m := Default()
	got := m.StreamTime(2, 5, 3072, 768, 768)
	slice := math.Pow(2, 10) * (768.0 * 768.0 / 5.0) * 1.36e-9
	local := 3072.0 * 768.0 * 768.0 / 5.0 * 3.27e-8
	want := slice + local
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("StreamTime = %g, want %g", got, want)
	}
	// The second (L_local) term must dominate at this shape, as Fig. 18
	// implies (~12 s total, slice loading ~0.16 s).
	if local < 10 || local > 13 {
		t.Errorf("L_local term = %g s, expected ~11.9 s", local)
	}
	if slice > 0.3 {
		t.Errorf("slice term = %g s, expected ~0.16 s", slice)
	}
}

func TestBufferTimeEq4(t *testing.T) {
	m := Default()
	got := m.BufferTime(4, 768, 768, 768)
	want := 768.0 * 768.0 * 768.0 / 4.0 * 3.27e-8
	if math.Abs(got-want)/want > 1e-12 {
		t.Errorf("BufferTime = %g, want %g", got, want)
	}
	if !math.IsInf(m.BufferTime(0, 1, 1, 1), 1) {
		t.Error("pLocal=0 should be infinite cost")
	}
}

func TestBreakEvenMGrowsWithBw(t *testing.T) {
	// §IV-D: the break-even M increases with (1) larger bw, (3) smaller
	// gap between p* and p_local.
	m := Default()
	lo := m.BreakEvenM(1, 8, 5)
	hi := m.BreakEvenM(2, 8, 5)
	if !(hi > lo) {
		t.Errorf("break-even M should grow with bw: bw1=%g bw2=%g", lo, hi)
	}
	// At fixed p*, a larger p_local (smaller gap) raises the break-even M.
	narrow := m.BreakEvenM(1, 8, 7)
	wide := m.BreakEvenM(1, 8, 5)
	if !(narrow > wide) {
		t.Errorf("break-even M should grow as p*-p_local shrinks: narrow=%g wide=%g", narrow, wide)
	}
	if !math.IsInf(m.BreakEvenM(1, 5, 5), 1) {
		t.Error("p* == p_local should never stream")
	}
}

func TestMaxPMatchesPaper(t *testing.T) {
	cfg := pim.DefaultConfig()
	// §V-A quotes for W1A3: p_DRAM = 8 / p_local = 5 with canonicalization,
	// 6 / 3 without.
	cases := []struct {
		f      quant.Format
		budget int64
		kind   SizeKind
		want   int
	}{
		{quant.W1A3, cfg.MRAMLUTBudget(), SizeCombined, 8},
		{quant.W1A3, cfg.WRAMLUTBudget(), SizeCombined, 5},
		{quant.W1A3, cfg.MRAMLUTBudget(), SizeOpPacked, 6},
		{quant.W1A3, cfg.WRAMLUTBudget(), SizeOpPacked, 3},
		// W4A4: canonical LUT at p=4 needs ~254 MB -> p_DRAM = 3 (Fig. 18a
		// sweeps p = 1..3); buffer holds p=2.
		{quant.W4A4, cfg.MRAMLUTBudget(), SizeCombined, 3},
		{quant.W4A4, cfg.WRAMLUTBudget(), SizeCombined, 2},
		// W2A2: Fig. 18(b) sweeps p = 4..6; p_DRAM must reach >= 6,
		// buffer holds 4.
		{quant.W2A2, cfg.WRAMLUTBudget(), SizeCombined, 4},
	}
	for _, c := range cases {
		if got := MaxP(c.f, c.budget, c.kind); got != c.want {
			t.Errorf("MaxP(%s, %d, kind %d) = %d, want %d",
				c.f.Name(), c.budget, c.kind, got, c.want)
		}
	}
	if got := MaxP(quant.W2A2, cfg.MRAMLUTBudget(), SizeCombined); got < 6 {
		t.Errorf("W2A2 p_DRAM = %d, want >= 6", got)
	}
}

func TestChoosePrefersStreamingForTallM(t *testing.T) {
	cfg := pim.DefaultConfig()
	m := Default()
	// W4A4 Fig. 18(a): p=3 (streaming) wins for (3072,768,768) but not for
	// (768,768,768), where buffer-resident p=2 is best.
	big, err := Choose(m, quant.W4A4, 3072, 768, 768, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !big.Streaming || big.P != 3 {
		t.Errorf("(3072,768,768) W4A4: got p=%d streaming=%v, want p=3 streaming", big.P, big.Streaming)
	}
	small, err := Choose(m, quant.W4A4, 768, 768, 768, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if small.Streaming {
		t.Errorf("(768,768,768) W4A4: expected buffer-resident, got streaming p=%d", small.P)
	}
	if small.P != 2 {
		t.Errorf("(768,768,768) W4A4: p = %d, want p_local = 2", small.P)
	}
}

func TestChooseW2A2MatchesFig18b(t *testing.T) {
	cfg := pim.DefaultConfig()
	m := Default()
	// Fig. 18(b): the model picks p=5 for both (768,768,768) and
	// (3072,768,768) under W2A2 (a slight misprediction for the smaller
	// matrix, which the paper reports).
	for _, M := range []int{768, 3072} {
		c, err := Choose(m, quant.W2A2, M, 768, 768, &cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !c.Streaming || c.P != 5 {
			t.Errorf("M=%d W2A2: got p=%d streaming=%v, want p=5 streaming", M, c.P, c.Streaming)
		}
	}
}

func TestChooseKFitsWRAM(t *testing.T) {
	cfg := pim.DefaultConfig()
	m := Default()
	c, err := Choose(m, quant.W1A3, 4096, 768, 768, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Streaming || c.P != 8 {
		t.Errorf("W1A3 tall: p=%d streaming=%v", c.P, c.Streaming)
	}
	// W1A3 p=8 slices are 512 B; k=8 easily fits 32 KB.
	if c.K != 8 {
		t.Errorf("k = %d, want 8", c.K)
	}
}

func TestChooseValidation(t *testing.T) {
	cfg := pim.DefaultConfig()
	if _, err := Choose(Default(), quant.W1A3, 0, 10, 10, &cfg); err == nil {
		t.Error("accepted M=0")
	}
}

func TestChooseForVariant(t *testing.T) {
	cfg := pim.DefaultConfig()
	p, err := ChooseForVariant(quant.W1A3, SizeOpPacked, &cfg)
	if err != nil || p != 3 {
		t.Errorf("OP p = %d err %v, want 3", p, err)
	}
	p, err = ChooseForVariant(quant.W1A3, SizeCanonical, &cfg)
	if err != nil || p != 5 {
		t.Errorf("LC p = %d err %v, want 5", p, err)
	}
}

func TestModelPredictionOrdering(t *testing.T) {
	// Larger p strictly reduces the L_local term; the model must therefore
	// prefer larger p until slice loading dominates. For W1A3 (slow LUT
	// growth) p* = p_DRAM = 8 for any sizeable M (§IV-D: "With small bw ...
	// a larger p* is favored, potentially up to p_DRAM").
	cfg := pim.DefaultConfig()
	c, err := Choose(Default(), quant.W1A3, 768, 768, 128, &cfg)
	if err != nil {
		t.Fatal(err)
	}
	if c.P != 8 || !c.Streaming {
		t.Errorf("W1A3 (768,768,128): p=%d streaming=%v, want p=8 streaming", c.P, c.Streaming)
	}
}
