package costmodel

import (
	"sync"
	"testing"

	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/quant"
)

func TestCacheMatchesChoose(t *testing.T) {
	cfg := pim.DefaultConfig()
	model := Default()
	cache := NewCache()
	for _, f := range quant.Formats {
		want, err := Choose(model, f, 768, 768, 128, &cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 3; i++ {
			got, err := cache.Choose(model, f, 768, 768, 128, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("%s: cached choice %+v != direct %+v", f.Name(), got, want)
			}
		}
	}
	hits, misses := cache.Stats()
	if misses != int64(len(quant.Formats)) || hits != 2*int64(len(quant.Formats)) {
		t.Fatalf("stats hits=%d misses=%d, want %d/%d", hits, misses,
			2*len(quant.Formats), len(quant.Formats))
	}
}

func TestCacheKeyedByBudget(t *testing.T) {
	model := Default()
	cache := NewCache()
	full := pim.DefaultConfig()
	small := pim.DefaultConfig()
	small.LUTBudgetFrac = 0.1

	a, err := cache.Choose(model, quant.W1A3, 3072, 768, 768, &full)
	if err != nil {
		t.Fatal(err)
	}
	b, err := cache.Choose(model, quant.W1A3, 3072, 768, 768, &small)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Choose(model, quant.W1A3, 3072, 768, 768, &small)
	if err != nil {
		t.Fatal(err)
	}
	if b != want {
		t.Fatalf("shrunk-budget choice %+v leaked from full-budget entry %+v (want %+v)", b, a, want)
	}
}

func TestCacheForVariant(t *testing.T) {
	cfg := pim.DefaultConfig()
	cache := NewCache()
	for _, kind := range []SizeKind{SizeOpPacked, SizeCanonical, SizeCombined} {
		want, err := ChooseForVariant(quant.W2A2, kind, &cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			got, err := cache.ChooseForVariant(quant.W2A2, kind, &cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("kind %d: cached p=%d, want %d", kind, got, want)
			}
		}
	}
}

func TestCacheConcurrent(t *testing.T) {
	cfg := pim.DefaultConfig()
	model := Default()
	cache := NewCache()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				f := quant.Formats[i%len(quant.Formats)]
				if _, err := cache.Choose(model, f, 768, 768, 128, &cfg); err != nil {
					t.Error(err)
					return
				}
				if _, err := cache.ChooseForVariant(f, SizeCombined, &cfg); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}
