package lut

import (
	"testing"

	"github.com/ais-snu/localut/internal/quant"
)

// TestCacheStats pins the table-cache accounting: a first build is a miss
// that grows the resident byte count, a repeat is a hit that does not, and
// all three table kinds are tracked.
func TestCacheStats(t *testing.T) {
	ResetCache()
	defer ResetCache()

	if h, m, b := CacheStats(); h != 0 || m != 0 || b != 0 {
		t.Fatalf("fresh cache reports %d hits, %d misses, %d bytes", h, m, b)
	}

	spec := MustSpec(quant.W1A3, 2)
	op, err := CachedOpPacked(spec)
	if err != nil {
		t.Fatal(err)
	}
	if h, m, b := CacheStats(); h != 0 || m != 1 || b != int64(len(op.Data)) {
		t.Fatalf("after one build: %d hits, %d misses, %d bytes (table is %d)", h, m, b, len(op.Data))
	}

	again, err := CachedOpPacked(spec)
	if err != nil {
		t.Fatal(err)
	}
	if again != op {
		t.Fatal("repeat lookup built a second table")
	}
	if h, m, b := CacheStats(); h != 1 || m != 1 || b != int64(len(op.Data)) {
		t.Fatalf("after one hit: %d hits, %d misses, %d bytes", h, m, b)
	}

	canon, err := CachedCanonical(spec)
	if err != nil {
		t.Fatal(err)
	}
	reorder, err := CachedReorder(spec)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(len(op.Data) + len(canon.Data) + len(reorder.Data))
	if h, m, b := CacheStats(); h != 1 || m != 3 || b != want {
		t.Fatalf("after all kinds: %d hits, %d misses, %d bytes (want %d)", h, m, b, want)
	}
}
