package lut

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ais-snu/localut/internal/fp"
)

// binaryW decodes 1-bit weight codes to {-1, +1}.
func binaryW(code uint32) float64 {
	if code&1 == 0 {
		return -1
	}
	return 1
}

func TestFloatSpecValidation(t *testing.T) {
	dec := func(c uint32) float64 { return float64(c) }
	if _, err := NewFloatSpec(1, 4, 0, dec, dec); err == nil {
		t.Error("accepted p=0")
	}
	if _, err := NewFloatSpec(1, 4, 3, nil, dec); err == nil {
		t.Error("accepted nil decoder")
	}
	if _, err := NewFloatSpec(0, 4, 3, dec, dec); err == nil {
		t.Error("accepted 0-bit weights")
	}
	if _, err := NewFloatSpec(4, 4, 9, dec, dec); err == nil {
		t.Error("accepted 36-bit packed index")
	}
}

func TestFloatCanonicalPipelineFP4(t *testing.T) {
	f4 := fp.FP4{}
	s, err := NewFloatSpec(1, 4, 3, binaryW, f4.Decode)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := BuildCanonicalF32(s)
	if err != nil {
		t.Fatal(err)
	}
	reorder, err := BuildReorderF32(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 1000; trial++ {
		w := uint32(rng.Int63n(s.Rows()))
		acts := make([]int, s.P)
		for i := range acts {
			acts[i] = rng.Intn(16)
		}
		col, sigma, err := s.CanonicalizeActs(acts)
		if err != nil {
			t.Fatal(err)
		}
		wCanon := reorder.Lookup(w, sigma)
		got := canon.Lookup(wCanon, col)

		// Direct float32 dot in the canonical (sorted) order, matching the
		// device accumulation order.
		sorted := append([]int(nil), acts...)
		for i := 0; i < len(sorted); i++ {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] < sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		var want float32
		wCodes := wCanon
		for i := 0; i < s.P; i++ {
			wc := (wCodes >> uint(i)) & 1
			want += float32(binaryW(wc)) * float32(f4.Decode(uint32(sorted[i])))
		}
		if got != want {
			t.Fatalf("w=%b acts=%v: lut=%g direct=%g", w, acts, got, want)
		}
	}
}

// TestFloatReorderingNumericalStability backs Fig. 21(b)'s claim: reordering
// the accumulation produces negligible error versus the unsorted order.
func TestFloatReorderingNumericalStability(t *testing.T) {
	f4 := fp.FP4{}
	s, err := NewFloatSpec(1, 4, 4, binaryW, f4.Decode)
	if err != nil {
		t.Fatal(err)
	}
	canon, err := BuildCanonicalF32(s)
	if err != nil {
		t.Fatal(err)
	}
	reorder, err := BuildReorderF32(s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	maxRel := 0.0
	for trial := 0; trial < 2000; trial++ {
		w := uint32(rng.Int63n(s.Rows()))
		acts := make([]int, s.P)
		for i := range acts {
			acts[i] = rng.Intn(16)
		}
		col, sigma, _ := s.CanonicalizeActs(acts)
		got := float64(canon.Lookup(reorder.Lookup(w, sigma), col))

		var unsorted float32
		for i := 0; i < s.P; i++ {
			wc := (w >> uint(i)) & 1
			unsorted += float32(binaryW(wc)) * float32(f4.Decode(uint32(acts[i])))
		}
		diff := math.Abs(got - float64(unsorted))
		denom := math.Max(math.Abs(float64(unsorted)), 1)
		if rel := diff / denom; rel > maxRel {
			maxRel = rel
		}
	}
	// FP4 values are all exactly representable in float32 with tiny sums,
	// so reordering must be bit-exact here.
	if maxRel != 0 {
		t.Errorf("max relative reordering deviation %g, want 0 for FP4", maxRel)
	}
}

func TestFloatSpecCapacity(t *testing.T) {
	f8 := fp.FP8{}
	s, err := NewFloatSpec(1, 8, 2, binaryW, f8.Decode)
	if err != nil {
		t.Fatal(err)
	}
	// rows = 4, cols = C(256+1, 2) = 32896, 4 B entries.
	if s.Rows() != 4 {
		t.Errorf("rows = %d", s.Rows())
	}
	wantCols := int64(257 * 256 / 2)
	if s.CanonCols() != wantCols {
		t.Errorf("cols = %d, want %d", s.CanonCols(), wantCols)
	}
	if s.CanonicalBytes() != 4*wantCols*4 {
		t.Errorf("bytes = %d", s.CanonicalBytes())
	}
	if s.CombinedBytes() <= s.CanonicalBytes() {
		t.Error("combined must include reorder")
	}
	if s.SliceBytes() != 4*(4+1) {
		t.Errorf("slice bytes = %d", s.SliceBytes())
	}
}

func TestFloatFP16DegeneratesToP1(t *testing.T) {
	// W1A16: at p=2 the canonical LUT exceeds any bank (C(65537,2) cols x 4B).
	f16 := fp.FP16{}
	s, err := NewFloatSpec(1, 16, 2, binaryW, f16.Decode)
	if err != nil {
		t.Fatal(err)
	}
	if s.CanonicalBytes() < (64 << 20) {
		t.Errorf("W1A16 p=2 canonical = %d bytes, expected to exceed a 64 MB bank", s.CanonicalBytes())
	}
	s1, err := NewFloatSpec(1, 16, 1, binaryW, f16.Decode)
	if err != nil {
		t.Fatal(err)
	}
	if s1.CanonicalBytes() > (1 << 20) {
		t.Errorf("W1A16 p=1 canonical = %d bytes, should be small", s1.CanonicalBytes())
	}
}

func TestReadF32RoundTrip(t *testing.T) {
	data := make([]byte, 8)
	for _, v := range []float32{0, -1.5, 3.25, float32(math.Inf(1))} {
		writeF32(data, 1, v)
		if got := ReadF32(data, 1); got != v {
			t.Errorf("wrote %g read %g", v, got)
		}
	}
}
