// Package lut implements LoCaLUT's lookup-table family: the operation-packed
// LUT (§III-A), the canonical LUT (§IV-A), the reordering LUT (§IV-B), and
// the capacity laws (Eq. 1, Fig. 6) that govern the capacity–computation
// tradeoff.
//
// All tables are stored in the exact byte layout the simulated PIM device
// would hold: little-endian entries of the minimal width that fits the
// worst-case partial dot product, with the canonical and reordering LUTs in
// column-major order so that a column ("slice") is a contiguous byte range —
// the unit LUT slice streaming DMAs from the DRAM bank into the local buffer.
package lut

import (
	"fmt"

	"github.com/ais-snu/localut/internal/perm"
	"github.com/ais-snu/localut/internal/quant"
)

// MaxBuildBytes caps in-memory LUT construction. Capacity *planning* handles
// arbitrarily large tables analytically; actually materializing one beyond
// this bound is always a configuration mistake (a 64 MB UPMEM bank cannot
// hold it either).
const MaxBuildBytes = 1 << 30

// Spec identifies a LUT family member: a quantization format plus a packing
// degree p (the number of MAC operations folded into one lookup).
type Spec struct {
	Fmt quant.Format
	P   int
}

// NewSpec validates the spec: p must be positive and the packed weight and
// activation indices must fit in 32 bits.
func NewSpec(f quant.Format, p int) (Spec, error) {
	if p < 1 {
		return Spec{}, fmt.Errorf("lut: packing degree %d < 1", p)
	}
	if p*f.Weight.Bits > 32 {
		return Spec{}, fmt.Errorf("lut: packed weight index %d bits exceeds 32", p*f.Weight.Bits)
	}
	if p*f.Act.Bits > 32 {
		return Spec{}, fmt.Errorf("lut: packed activation index %d bits exceeds 32", p*f.Act.Bits)
	}
	if p > perm.MaxFactorialN {
		return Spec{}, fmt.Errorf("lut: packing degree %d exceeds %d", p, perm.MaxFactorialN)
	}
	return Spec{Fmt: f, P: p}, nil
}

// MustSpec is NewSpec panicking on error.
func MustSpec(f quant.Format, p int) Spec {
	s, err := NewSpec(f, p)
	if err != nil {
		panic(err)
	}
	return s
}

func (s Spec) String() string { return fmt.Sprintf("%s/p%d", s.Fmt.Name(), s.P) }

// Rows returns the weight-index space size 2^(bw*p), shared by all tables.
func (s Spec) Rows() int64 { return int64(1) << uint(s.Fmt.Weight.Bits*s.P) }

// OpCols returns the activation-index space of the operation-packed LUT,
// 2^(ba*p).
func (s Spec) OpCols() int64 { return int64(1) << uint(s.Fmt.Act.Bits*s.P) }

// CanonCols returns the canonical LUT column count C(2^ba + p - 1, p)
// (Eq. 1), saturating at math.MaxInt64.
func (s Spec) CanonCols() int64 {
	return perm.MultisetCount(s.Fmt.Act.Levels(), s.P)
}

// ReorderCols returns the reordering LUT column count p!.
func (s Spec) ReorderCols() int64 { return perm.Factorial(s.P) }

// EntryBytes returns the minimal entry width (1, 2 or 4 bytes) that holds
// the worst-case p-term dot product. This dynamic sizing is what makes the
// paper's W1A3 capacity numbers work out (1-byte entries up to p=8).
func (s Spec) EntryBytes() int {
	m := s.Fmt.MaxDot(s.P)
	switch {
	case m <= 127:
		return 1
	case m <= 32767:
		return 2
	default:
		return 4
	}
}

// WeightRowBytes returns the byte width of a packed weight vector
// (bw*p bits), the entry width of the reordering LUT.
func (s Spec) WeightRowBytes() int {
	bits := s.Fmt.Weight.Bits * s.P
	return (bits + 7) / 8
}

// OpPackedBytes returns the operation-packed LUT size in bytes
// (bo * 2^((bw+ba)*p), §III-A), saturating on overflow.
func (s Spec) OpPackedBytes() int64 {
	return satMul3(s.Rows(), s.OpCols(), int64(s.EntryBytes()))
}

// CanonicalBytes returns the canonical LUT size in bytes.
func (s Spec) CanonicalBytes() int64 {
	return satMul3(s.Rows(), s.CanonCols(), int64(s.EntryBytes()))
}

// ReorderBytes returns the reordering LUT size in bytes.
func (s Spec) ReorderBytes() int64 {
	return satMul3(s.Rows(), s.ReorderCols(), int64(s.WeightRowBytes()))
}

// CombinedBytes returns canonical + reordering size — LoCaLUT's total LUT
// footprint.
func (s Spec) CombinedBytes() int64 {
	return satAdd(s.CanonicalBytes(), s.ReorderBytes())
}

// ReductionRate returns OpPackedBytes / CombinedBytes, the Fig. 6 red line.
func (s Spec) ReductionRate() float64 {
	return float64(s.OpPackedBytes()) / float64(s.CombinedBytes())
}

// SliceBytes returns the byte size of one streamed slice pair: one canonical
// column plus one reordering column (both 2^(bw*p) entries tall).
func (s Spec) SliceBytes() int64 {
	return s.Rows() * int64(s.EntryBytes()+s.WeightRowBytes())
}

func satMul3(a, b, c int64) int64 {
	return satMul(satMul(a, b), c)
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	const max = int64(^uint64(0) >> 1)
	if a > max/b {
		return max
	}
	return a * b
}

func satAdd(a, b int64) int64 {
	const max = int64(^uint64(0) >> 1)
	if a > max-b {
		return max
	}
	return a + b
}

// ReadEntry decodes the little-endian signed entry of the given width at
// index idx from data.
func ReadEntry(data []byte, idx, width int) int32 {
	off := idx * width
	switch width {
	case 1:
		return int32(int8(data[off]))
	case 2:
		return int32(int16(uint16(data[off]) | uint16(data[off+1])<<8))
	case 4:
		return int32(uint32(data[off]) | uint32(data[off+1])<<8 |
			uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
	}
	panic(fmt.Sprintf("lut: unsupported entry width %d", width))
}

// WriteEntry encodes v little-endian at index idx with the given width.
// Values outside the width's range indicate a sizing bug and panic.
func WriteEntry(data []byte, idx, width int, v int32) {
	off := idx * width
	switch width {
	case 1:
		if v < -128 || v > 127 {
			panic(fmt.Sprintf("lut: entry %d overflows 1 byte", v))
		}
		data[off] = byte(int8(v))
	case 2:
		if v < -32768 || v > 32767 {
			panic(fmt.Sprintf("lut: entry %d overflows 2 bytes", v))
		}
		data[off] = byte(v)
		data[off+1] = byte(v >> 8)
	case 4:
		data[off] = byte(v)
		data[off+1] = byte(v >> 8)
		data[off+2] = byte(v >> 16)
		data[off+3] = byte(v >> 24)
	default:
		panic(fmt.Sprintf("lut: unsupported entry width %d", width))
	}
}

// ReadUint decodes the little-endian unsigned entry (reordering LUT payload).
func ReadUint(data []byte, idx, width int) uint32 {
	off := idx * width
	switch width {
	case 1:
		return uint32(data[off])
	case 2:
		return uint32(data[off]) | uint32(data[off+1])<<8
	case 4:
		return uint32(data[off]) | uint32(data[off+1])<<8 |
			uint32(data[off+2])<<16 | uint32(data[off+3])<<24
	}
	panic(fmt.Sprintf("lut: unsupported entry width %d", width))
}

// WriteUint encodes an unsigned entry little-endian.
func WriteUint(data []byte, idx, width int, v uint32) {
	off := idx * width
	switch width {
	case 1:
		if v > 0xFF {
			panic(fmt.Sprintf("lut: uint entry %d overflows 1 byte", v))
		}
		data[off] = byte(v)
	case 2:
		if v > 0xFFFF {
			panic(fmt.Sprintf("lut: uint entry %d overflows 2 bytes", v))
		}
		data[off] = byte(v)
		data[off+1] = byte(v >> 8)
	case 4:
		data[off] = byte(v)
		data[off+1] = byte(v >> 8)
		data[off+2] = byte(v >> 16)
		data[off+3] = byte(v >> 24)
	default:
		panic(fmt.Sprintf("lut: unsupported entry width %d", width))
	}
}

// dotPacked computes the exact inner product of a packed weight vector and a
// slice of activation codes under the spec's codecs.
func (s Spec) dotPacked(wPacked uint32, actCodes []int) int32 {
	var acc int32
	wBits := s.Fmt.Weight.Bits
	wMask := uint32(1<<wBits) - 1
	for i := 0; i < s.P; i++ {
		wc := (wPacked >> (uint(i) * uint(wBits))) & wMask
		acc += s.Fmt.Weight.Decode(wc) * s.Fmt.Act.Decode(uint32(actCodes[i]))
	}
	return acc
}

// OpPacked is the full operation-packed LUT of §III-A: entry (w, a) holds
// the p-term dot product of the decoded weight vector w and activation
// vector a. Stored row-major (the whole table is resident wherever it
// lives, so layout only matters for lookup address arithmetic).
type OpPacked struct {
	Spec
	Data []byte
}

// BuildOpPacked materializes the operation-packed LUT.
func BuildOpPacked(s Spec) (*OpPacked, error) {
	size := s.OpPackedBytes()
	if size > MaxBuildBytes {
		return nil, fmt.Errorf("lut: operation-packed LUT %s is %d bytes, exceeds build cap %d",
			s, size, MaxBuildBytes)
	}
	rows, cols, w := int(s.Rows()), int(s.OpCols()), s.EntryBytes()
	t := &OpPacked{Spec: s, Data: make([]byte, size)}
	aBits := s.Fmt.Act.Bits
	aMask := 1<<aBits - 1
	actCodes := make([]int, s.P)
	for a := 0; a < cols; a++ {
		for i := 0; i < s.P; i++ {
			actCodes[i] = (a >> (uint(i) * uint(aBits))) & aMask
		}
		for r := 0; r < rows; r++ {
			WriteEntry(t.Data, r*cols+a, w, s.dotPacked(uint32(r), actCodes))
		}
	}
	return t, nil
}

// Lookup returns the packed dot product for packed indices (w, a).
func (t *OpPacked) Lookup(w, a uint32) int32 {
	return ReadEntry(t.Data, int(w)*int(t.OpCols())+int(a), t.EntryBytes())
}

// Canonical is the canonicalized LUT of §IV-A: only columns whose activation
// vector is sorted (non-decreasing in code order) are stored, indexed by
// multiset rank. Column-major: column c occupies bytes
// [c*Rows*EntryBytes, (c+1)*Rows*EntryBytes).
type Canonical struct {
	Spec
	Data []byte
}

// BuildCanonical materializes the canonical LUT.
func BuildCanonical(s Spec) (*Canonical, error) {
	size := s.CanonicalBytes()
	if size > MaxBuildBytes {
		return nil, fmt.Errorf("lut: canonical LUT %s is %d bytes, exceeds build cap %d",
			s, size, MaxBuildBytes)
	}
	rows, cols, w := int(s.Rows()), int(s.CanonCols()), s.EntryBytes()
	t := &Canonical{Spec: s, Data: make([]byte, size)}
	alphabet := s.Fmt.Act.Levels()
	for c := 0; c < cols; c++ {
		actCodes := perm.MultisetUnrank(int64(c), alphabet, s.P)
		base := c * rows
		for r := 0; r < rows; r++ {
			WriteEntry(t.Data, base+r, w, s.dotPacked(uint32(r), actCodes))
		}
	}
	return t, nil
}

// Lookup returns the entry for canonical weight row w and multiset column c.
func (t *Canonical) Lookup(w uint32, c int64) int32 {
	return ReadEntry(t.Data, int(c)*int(t.Rows())+int(w), t.EntryBytes())
}

// Column returns the contiguous byte slice of column c — the DMA unit of
// LUT slice streaming.
func (t *Canonical) Column(c int64) []byte {
	stride := int(t.Rows()) * t.EntryBytes()
	return t.Data[int(c)*stride : (int(c)+1)*stride]
}

// Reorder is the reordering LUT of §IV-B: entry (w, sigma) holds the packed
// weight vector w permuted by the length-p permutation with Lehmer rank
// sigma. Column-major like Canonical, so a permutation's column streams as
// one contiguous slice.
type Reorder struct {
	Spec
	Data []byte
}

// BuildReorder materializes the reordering LUT.
func BuildReorder(s Spec) (*Reorder, error) {
	size := s.ReorderBytes()
	if size > MaxBuildBytes {
		return nil, fmt.Errorf("lut: reordering LUT %s is %d bytes, exceeds build cap %d",
			s, size, MaxBuildBytes)
	}
	rows, cols, w := int(s.Rows()), int(s.ReorderCols()), s.WeightRowBytes()
	t := &Reorder{Spec: s, Data: make([]byte, size)}
	wBits := s.Fmt.Weight.Bits
	codes := make([]uint32, s.P)
	permuted := make([]uint32, s.P)
	for c := 0; c < cols; c++ {
		sigma := perm.Unrank(int64(c), s.P)
		base := c * rows
		for r := 0; r < rows; r++ {
			quant.UnpackInto(codes, uint32(r), wBits)
			for i, idx := range sigma {
				permuted[i] = codes[idx]
			}
			WriteUint(t.Data, base+r, w, quant.PackVector(permuted, wBits))
		}
	}
	return t, nil
}

// Lookup returns the reordered packed weight vector for row w and
// permutation rank sigma.
func (t *Reorder) Lookup(w uint32, sigma int64) uint32 {
	return ReadUint(t.Data, int(sigma)*int(t.Rows())+int(w), t.WeightRowBytes())
}

// Column returns the contiguous byte slice of permutation column sigma.
func (t *Reorder) Column(sigma int64) []byte {
	stride := int(t.Rows()) * t.WeightRowBytes()
	return t.Data[int(sigma)*stride : (int(sigma)+1)*stride]
}

// CanonicalizeActs sorts the activation codes of one p-vector into canonical
// (non-decreasing code) order and returns the multiset column rank together
// with the Lehmer rank of the stable sorting permutation — the host-side
// step 1 of Fig. 4(b)/Fig. 5(b).
func (s Spec) CanonicalizeActs(actCodes []int) (col int64, sigma int64, err error) {
	sorted := make([]int, len(actCodes))
	sp := make([]int, len(actCodes))
	return s.CanonicalizeActsScratch(actCodes, sorted, sp)
}

// CanonicalizeActsScratch is CanonicalizeActs with caller-provided scratch:
// sorted and sp must each have length p. On return sorted holds the
// canonical (non-decreasing) codes and sp the stable sorting permutation
// whose Lehmer rank is sigma. It allocates nothing, so the per-group
// staging loops of the packed-LUT kernels can call it once per
// (column, group) without touching the heap.
func (s Spec) CanonicalizeActsScratch(actCodes, sorted, sp []int) (col int64, sigma int64, err error) {
	if len(actCodes) != s.P {
		return 0, 0, fmt.Errorf("lut: CanonicalizeActs: got %d codes, want p=%d", len(actCodes), s.P)
	}
	perm.SortPermInto(actCodes, sorted, sp)
	col, err = perm.MultisetRank(sorted, s.Fmt.Act.Levels())
	if err != nil {
		return 0, 0, err
	}
	return col, perm.MustRank(sp), nil
}
