package lut

import (
	"fmt"
	"math"

	"github.com/ais-snu/localut/internal/perm"
	"github.com/ais-snu/localut/internal/quant"
)

// FloatSpec describes a floating-point LUT configuration (§VI-K): weights
// and activations are opaque symbol codes with arbitrary real decode
// functions, and LUT entries store float32 partial dot products. Since "the
// LUT entry count depends solely on input bitwidth rather than numerical
// format", all capacity laws reuse Spec's combinatorics through the embedded
// shape.
type FloatSpec struct {
	WeightBits int
	ActBits    int
	P          int
	DecodeW    func(code uint32) float64
	DecodeA    func(code uint32) float64
}

// NewFloatSpec validates the configuration.
func NewFloatSpec(bw, ba, p int, decW, decA func(uint32) float64) (FloatSpec, error) {
	if p < 1 || p > perm.MaxFactorialN {
		return FloatSpec{}, fmt.Errorf("lut: float packing degree %d out of range", p)
	}
	if bw < 1 || bw > 16 || ba < 1 || ba > 16 {
		return FloatSpec{}, fmt.Errorf("lut: float bit widths W%dA%d out of range", bw, ba)
	}
	if p*bw > 32 || p*ba > 32 {
		return FloatSpec{}, fmt.Errorf("lut: packed float index exceeds 32 bits")
	}
	if decW == nil || decA == nil {
		return FloatSpec{}, fmt.Errorf("lut: nil decode function")
	}
	return FloatSpec{WeightBits: bw, ActBits: ba, P: p, DecodeW: decW, DecodeA: decA}, nil
}

// Rows returns 2^(bw*p).
func (s FloatSpec) Rows() int64 { return int64(1) << uint(s.WeightBits*s.P) }

// CanonCols returns C(2^ba + p - 1, p).
func (s FloatSpec) CanonCols() int64 {
	return perm.MultisetCount(1<<uint(s.ActBits), s.P)
}

// ReorderCols returns p!.
func (s FloatSpec) ReorderCols() int64 { return perm.Factorial(s.P) }

// EntryBytes is fixed at 4 (float32) for float LUTs.
func (s FloatSpec) EntryBytes() int { return 4 }

// WeightRowBytes returns the byte width of a packed weight vector.
func (s FloatSpec) WeightRowBytes() int { return (s.WeightBits*s.P + 7) / 8 }

// CanonicalBytes returns the float canonical LUT size.
func (s FloatSpec) CanonicalBytes() int64 {
	return satMul3(s.Rows(), s.CanonCols(), int64(s.EntryBytes()))
}

// ReorderBytes returns the reordering LUT size (identical to the integer
// case: it stores weight codes, not values).
func (s FloatSpec) ReorderBytes() int64 {
	return satMul3(s.Rows(), s.ReorderCols(), int64(s.WeightRowBytes()))
}

// CombinedBytes returns the total LUT footprint.
func (s FloatSpec) CombinedBytes() int64 {
	return satAdd(s.CanonicalBytes(), s.ReorderBytes())
}

// SliceBytes returns one streamed slice pair's size.
func (s FloatSpec) SliceBytes() int64 {
	return s.Rows() * int64(s.EntryBytes()+s.WeightRowBytes())
}

// dot computes the float dot product of a packed weight row and activation
// codes, accumulating in float32 to mirror the device datapath.
func (s FloatSpec) dot(wPacked uint32, actCodes []int) float32 {
	var acc float32
	mask := uint32(1<<uint(s.WeightBits)) - 1
	for i := 0; i < s.P; i++ {
		wc := (wPacked >> (uint(i) * uint(s.WeightBits))) & mask
		acc += float32(s.DecodeW(wc)) * float32(s.DecodeA(uint32(actCodes[i])))
	}
	return acc
}

// CanonicalF32 is the float32-entry canonical LUT.
type CanonicalF32 struct {
	FloatSpec
	Data []byte // column-major float32 LE
}

// BuildCanonicalF32 materializes the float canonical LUT.
func BuildCanonicalF32(s FloatSpec) (*CanonicalF32, error) {
	size := s.CanonicalBytes()
	if size > MaxBuildBytes {
		return nil, fmt.Errorf("lut: float canonical LUT is %d bytes, exceeds build cap", size)
	}
	rows, cols := int(s.Rows()), int(s.CanonCols())
	t := &CanonicalF32{FloatSpec: s, Data: make([]byte, size)}
	alphabet := 1 << uint(s.ActBits)
	for c := 0; c < cols; c++ {
		actCodes := perm.MultisetUnrank(int64(c), alphabet, s.P)
		base := c * rows
		for r := 0; r < rows; r++ {
			writeF32(t.Data, base+r, s.dot(uint32(r), actCodes))
		}
	}
	return t, nil
}

// Lookup returns the float entry for canonical weight row w and column c.
func (t *CanonicalF32) Lookup(w uint32, c int64) float32 {
	return readF32(t.Data, int(c)*int(t.Rows())+int(w))
}

// Column returns the contiguous slice of column c.
func (t *CanonicalF32) Column(c int64) []byte {
	stride := int(t.Rows()) * 4
	return t.Data[int(c)*stride : (int(c)+1)*stride]
}

// BuildReorderF32 builds the reordering LUT for a float spec. The table is
// value-agnostic (it permutes codes), so it simply reuses the integer
// builder with a synthetic format of the right weight width.
func BuildReorderF32(s FloatSpec) (*Reorder, error) {
	f := quant.Format{
		Weight: quant.MustCodec(s.WeightBits, quant.Unsigned),
		Act:    quant.MustCodec(min16(s.ActBits), quant.Unsigned),
	}
	is, err := NewSpec(f, s.P)
	if err != nil {
		return nil, err
	}
	return BuildReorder(is)
}

func min16(b int) int {
	if b > 16 {
		return 16
	}
	return b
}

// CanonicalizeActs mirrors Spec.CanonicalizeActs for float symbol codes:
// codes are sorted numerically (any fixed total order preserves the
// invariance; code order keeps sorting branch-free on device).
func (s FloatSpec) CanonicalizeActs(actCodes []int) (col int64, sigma int64, err error) {
	if len(actCodes) != s.P {
		return 0, 0, fmt.Errorf("lut: CanonicalizeActs: got %d codes, want p=%d", len(actCodes), s.P)
	}
	sorted, sp := perm.SortPerm(actCodes)
	col, err = perm.MultisetRank(sorted, 1<<uint(s.ActBits))
	if err != nil {
		return 0, 0, err
	}
	return col, perm.MustRank(sp), nil
}

func writeF32(data []byte, idx int, v float32) {
	bits := math.Float32bits(v)
	off := idx * 4
	data[off] = byte(bits)
	data[off+1] = byte(bits >> 8)
	data[off+2] = byte(bits >> 16)
	data[off+3] = byte(bits >> 24)
}

func readF32(data []byte, idx int) float32 {
	off := idx * 4
	bits := uint32(data[off]) | uint32(data[off+1])<<8 |
		uint32(data[off+2])<<16 | uint32(data[off+3])<<24
	return math.Float32frombits(bits)
}

// ReadF32 exposes readF32 for kernel code operating on streamed slices.
func ReadF32(data []byte, idx int) float32 { return readF32(data, idx) }
