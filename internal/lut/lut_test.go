package lut

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ais-snu/localut/internal/perm"
	"github.com/ais-snu/localut/internal/quant"
)

func TestSpecValidation(t *testing.T) {
	if _, err := NewSpec(quant.W1A3, 0); err == nil {
		t.Error("accepted p=0")
	}
	if _, err := NewSpec(quant.W4A4, 9); err == nil {
		t.Error("accepted 36-bit packed index")
	}
	if _, err := NewSpec(quant.W1A3, 8); err != nil {
		t.Errorf("rejected valid W1A3 p=8: %v", err)
	}
}

func TestSpecShapes(t *testing.T) {
	s := MustSpec(quant.W1A3, 3)
	if s.Rows() != 8 {
		t.Errorf("Rows = %d", s.Rows())
	}
	if s.OpCols() != 512 {
		t.Errorf("OpCols = %d", s.OpCols())
	}
	if s.CanonCols() != perm.MultisetCount(8, 3) {
		t.Errorf("CanonCols = %d", s.CanonCols())
	}
	if s.ReorderCols() != 6 {
		t.Errorf("ReorderCols = %d", s.ReorderCols())
	}
}

func TestEntryBytesDynamicSizing(t *testing.T) {
	// W1A3: |dot| <= 4p, 1 byte up to p=31.
	if got := MustSpec(quant.W1A3, 8).EntryBytes(); got != 1 {
		t.Errorf("W1A3 p=8 entry bytes = %d, want 1", got)
	}
	// W4A4 (symmetric-clipped weights): |dot| <= 56p -> p=2 gives 112,
	// still 1 byte — which is what lets the p=2 canonical table (34.8 KB)
	// stay buffer-resident as Fig. 18(a) requires; p=3 gives 168 -> 2 bytes.
	if got := MustSpec(quant.W4A4, 2).EntryBytes(); got != 1 {
		t.Errorf("W4A4 p=2 entry bytes = %d, want 1", got)
	}
	if got := MustSpec(quant.W4A4, 3).EntryBytes(); got != 2 {
		t.Errorf("W4A4 p=3 entry bytes = %d, want 2", got)
	}
}

func TestPaperCapacityNumbers(t *testing.T) {
	// §IV-A quotes (with the documented ba typo corrected to W1A3): LUT
	// column reduction 12.4x at p=4 and 611.1x at p=7.
	s4 := MustSpec(quant.W1A3, 4)
	ratio4 := float64(s4.OpCols()) / float64(s4.CanonCols())
	if math.Abs(ratio4-12.412) > 0.01 {
		t.Errorf("p=4 column reduction = %.3f, want ~12.41", ratio4)
	}
	s7 := MustSpec(quant.W1A3, 7)
	ratio7 := float64(s7.OpCols()) / float64(s7.CanonCols())
	if math.Abs(ratio7-611.06) > 0.5 {
		t.Errorf("p=7 column reduction = %.2f, want ~611.1", ratio7)
	}
	// §IV-B / Fig. 6: total reduction (OP vs canonical+reordering) spans
	// 1.68x at p=2 to ~359x at p=8 for W1A3.
	r2 := MustSpec(quant.W1A3, 2).ReductionRate()
	if math.Abs(r2-1.684) > 0.01 {
		t.Errorf("p=2 total reduction = %.3f, want ~1.68", r2)
	}
	r8 := MustSpec(quant.W1A3, 8).ReductionRate()
	if math.Abs(r8-358.8) > 1.0 {
		t.Errorf("p=8 total reduction = %.1f, want ~358", r8)
	}
}

func TestUPMEMPackingDegrees(t *testing.T) {
	// §V-A: with half of a 64 MB bank for LUTs, p_DRAM = 8 for W1A3 with
	// canonicalization, 6 without; with half of the 64 KB WRAM, p_local = 5
	// with canonicalization, 3 without.
	bankBudget := int64(32 << 20)
	bufBudget := int64(32 << 10)

	maxP := func(budget int64, combined bool) int {
		best := 0
		for p := 1; p <= 10; p++ {
			s, err := NewSpec(quant.W1A3, p)
			if err != nil {
				break
			}
			var size int64
			if combined {
				size = s.CombinedBytes()
			} else {
				size = s.OpPackedBytes()
			}
			if size <= budget {
				best = p
			}
		}
		return best
	}
	if got := maxP(bankBudget, true); got != 8 {
		t.Errorf("p_DRAM with canonicalization = %d, want 8", got)
	}
	if got := maxP(bankBudget, false); got != 6 {
		t.Errorf("p_DRAM without canonicalization = %d, want 6", got)
	}
	if got := maxP(bufBudget, true); got != 5 {
		t.Errorf("p_local with canonicalization = %d, want 5", got)
	}
	if got := maxP(bufBudget, false); got != 3 {
		t.Errorf("p_local without canonicalization = %d, want 3", got)
	}
}

func TestOpPackedAgainstDirectDot(t *testing.T) {
	for _, f := range []quant.Format{quant.W1A3, quant.W2A2, quant.W4A4} {
		for p := 1; p <= 3; p++ {
			s := MustSpec(f, p)
			if s.OpPackedBytes() > 1<<22 {
				continue
			}
			tbl, err := BuildOpPacked(s)
			if err != nil {
				t.Fatal(err)
			}
			// Exhaustive over all (w, a).
			for w := int64(0); w < s.Rows(); w++ {
				for a := int64(0); a < s.OpCols(); a++ {
					want := directDot(s, uint32(w), uint32(a))
					if got := tbl.Lookup(uint32(w), uint32(a)); got != want {
						t.Fatalf("%s: Lookup(%d,%d) = %d, want %d", s, w, a, got, want)
					}
				}
			}
		}
	}
}

func directDot(s Spec, w, a uint32) int32 {
	var acc int32
	for i := 0; i < s.P; i++ {
		wc := (w >> (uint(i) * uint(s.Fmt.Weight.Bits))) & s.Fmt.Weight.Mask()
		ac := (a >> (uint(i) * uint(s.Fmt.Act.Bits))) & s.Fmt.Act.Mask()
		acc += s.Fmt.Weight.Decode(wc) * s.Fmt.Act.Decode(ac)
	}
	return acc
}

// TestCanonicalPipelineExact is the core correctness theorem of the paper:
// reordering the weights by the activation sort permutation and looking up
// the canonical LUT reproduces the exact packed dot product for every input.
func TestCanonicalPipelineExact(t *testing.T) {
	for _, tc := range []struct {
		f quant.Format
		p int
	}{
		{quant.W1A3, 3}, {quant.W1A3, 4}, {quant.W2A2, 3}, {quant.W4A4, 2}, {quant.W1A4, 3},
	} {
		s := MustSpec(tc.f, tc.p)
		canon, err := BuildCanonical(s)
		if err != nil {
			t.Fatal(err)
		}
		reorder, err := BuildReorder(s)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(99))
		aBits := tc.f.Act.Bits
		for trial := 0; trial < 2000; trial++ {
			w := uint32(rng.Int63n(s.Rows()))
			actCodes := make([]int, tc.p)
			for i := range actCodes {
				actCodes[i] = rng.Intn(1 << aBits)
			}
			col, sigma, err := s.CanonicalizeActs(actCodes)
			if err != nil {
				t.Fatal(err)
			}
			wCanon := reorder.Lookup(w, sigma)
			got := canon.Lookup(wCanon, col)
			want := s.dotPacked(w, actCodes)
			if got != want {
				t.Fatalf("%s: w=%b acts=%v: canonical pipeline = %d, direct = %d",
					s, w, actCodes, got, want)
			}
		}
	}
}

// TestPermutationInvariance verifies the redundancy the canonical LUT
// removes: jointly permuting weights and activations leaves the OP LUT
// entry unchanged.
func TestPermutationInvariance(t *testing.T) {
	s := MustSpec(quant.W1A3, 3)
	tbl, err := BuildOpPacked(s)
	if err != nil {
		t.Fatal(err)
	}
	f := func(wRaw uint16, aRaw uint32, permSeed uint8) bool {
		w := uint32(wRaw) % uint32(s.Rows())
		a := aRaw % uint32(s.OpCols())
		sigma := perm.Unrank(int64(permSeed)%perm.Factorial(s.P), s.P)
		wCodes := quant.UnpackVector(w, 1, s.P)
		aCodes := quant.UnpackVector(a, 3, s.P)
		wPerm := make([]uint32, s.P)
		aPerm := make([]uint32, s.P)
		for i, idx := range sigma {
			wPerm[i] = wCodes[idx]
			aPerm[i] = aCodes[idx]
		}
		return tbl.Lookup(w, a) ==
			tbl.Lookup(quant.PackVector(wPerm, 1), quant.PackVector(aPerm, 3))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestFig2Example(t *testing.T) {
	// Fig. 2: weights [0 0 1] (1-bit), activations [3 0 2] (3-bit),
	// result 0*3 + 0*0 + 1*2 = 2 under the paper's {0,1}-valued weights.
	// Our default W1 codec is {-1,+1}; use an Unsigned weight codec to
	// match the figure literally.
	f := quant.Format{
		Weight: quant.MustCodec(1, quant.Unsigned),
		Act:    quant.MustCodec(3, quant.Twos),
	}
	s := MustSpec(f, 3)
	tbl, err := BuildOpPacked(s)
	if err != nil {
		t.Fatal(err)
	}
	w := quant.PackVector([]uint32{0, 0, 1}, 1)
	a := quant.PackVector([]uint32{3, 0, 2}, 3)
	if got := tbl.Lookup(w, a); got != 2 {
		t.Errorf("Fig.2 example = %d, want 2", got)
	}

	// And the canonicalized path of Fig. 4(a): activations sort to [0 2 3],
	// weights reorder to [0 1 0], same result.
	canon, err := BuildCanonical(s)
	if err != nil {
		t.Fatal(err)
	}
	reorder, err := BuildReorder(s)
	if err != nil {
		t.Fatal(err)
	}
	col, sigma, err := s.CanonicalizeActs([]int{3, 0, 2})
	if err != nil {
		t.Fatal(err)
	}
	wCanon := reorder.Lookup(w, sigma)
	if wCanon != quant.PackVector([]uint32{0, 1, 0}, 1) {
		t.Errorf("reordered weights = %03b, want 010", wCanon)
	}
	if got := canon.Lookup(wCanon, col); got != 2 {
		t.Errorf("canonical lookup = %d, want 2", got)
	}
}

func TestColumnSlices(t *testing.T) {
	s := MustSpec(quant.W1A3, 3)
	canon, err := BuildCanonical(s)
	if err != nil {
		t.Fatal(err)
	}
	for c := int64(0); c < s.CanonCols(); c++ {
		col := canon.Column(c)
		if len(col) != int(s.Rows())*s.EntryBytes() {
			t.Fatalf("column %d has %d bytes", c, len(col))
		}
		for r := int64(0); r < s.Rows(); r++ {
			if ReadEntry(col, int(r), s.EntryBytes()) != canon.Lookup(uint32(r), c) {
				t.Fatalf("column slice mismatch at (%d,%d)", r, c)
			}
		}
	}
	reorder, err := BuildReorder(s)
	if err != nil {
		t.Fatal(err)
	}
	for sg := int64(0); sg < s.ReorderCols(); sg++ {
		col := reorder.Column(sg)
		for r := int64(0); r < s.Rows(); r++ {
			if ReadUint(col, int(r), s.WeightRowBytes()) != reorder.Lookup(uint32(r), sg) {
				t.Fatalf("reorder slice mismatch at (%d,%d)", r, sg)
			}
		}
	}
}

func TestBuildRejectsOversize(t *testing.T) {
	// W4A4 p=8 would need 2^64 entries: all builders must refuse.
	s := Spec{Fmt: quant.W4A4, P: 8}
	if _, err := BuildOpPacked(s); err == nil {
		t.Error("BuildOpPacked accepted an enormous spec")
	}
	if _, err := BuildCanonical(s); err == nil {
		t.Error("BuildCanonical accepted an enormous spec")
	}
	if _, err := BuildReorder(Spec{Fmt: quant.W1A3, P: 14}); err == nil {
		t.Error("BuildReorder accepted p=14 (14! columns)")
	}
}

func TestEntryReadWriteRoundTrip(t *testing.T) {
	data := make([]byte, 16)
	for _, tc := range []struct {
		width int
		vals  []int32
	}{
		{1, []int32{-128, -1, 0, 1, 127}},
		{2, []int32{-32768, -300, 0, 300, 32767}},
		{4, []int32{math.MinInt32, -70000, 0, 70000, math.MaxInt32}},
	} {
		for _, v := range tc.vals {
			WriteEntry(data, 1, tc.width, v)
			if got := ReadEntry(data, 1, tc.width); got != v {
				t.Errorf("width %d: wrote %d read %d", tc.width, v, got)
			}
		}
	}
	for _, tc := range []struct {
		width int
		vals  []uint32
	}{
		{1, []uint32{0, 200, 255}},
		{2, []uint32{0, 40000, 65535}},
		{4, []uint32{0, 1 << 30, math.MaxUint32}},
	} {
		for _, v := range tc.vals {
			WriteUint(data, 2, tc.width, v)
			if got := ReadUint(data, 2, tc.width); got != v {
				t.Errorf("uint width %d: wrote %d read %d", tc.width, v, got)
			}
		}
	}
}

func TestWriteEntryOverflowPanics(t *testing.T) {
	data := make([]byte, 8)
	for _, tc := range []struct {
		width int
		v     int32
	}{{1, 128}, {1, -129}, {2, 40000}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("WriteEntry(width=%d, v=%d) did not panic", tc.width, tc.v)
				}
			}()
			WriteEntry(data, 0, tc.width, tc.v)
		}()
	}
}

func TestCanonicalizeActsValidation(t *testing.T) {
	s := MustSpec(quant.W1A3, 3)
	if _, _, err := s.CanonicalizeActs([]int{1, 2}); err == nil {
		t.Error("accepted wrong length")
	}
	if _, _, err := s.CanonicalizeActs([]int{1, 2, 9}); err == nil {
		t.Error("accepted out-of-alphabet code")
	}
}

func TestSliceBytes(t *testing.T) {
	s := MustSpec(quant.W1A3, 8)
	// 256 rows x (1B entry + 1B packed weight) = 512 B per slice pair.
	if got := s.SliceBytes(); got != 512 {
		t.Errorf("SliceBytes = %d, want 512", got)
	}
}

func BenchmarkBuildCanonicalW1A3P5(b *testing.B) {
	s := MustSpec(quant.W1A3, 5)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := BuildCanonical(s); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCanonicalLookup(b *testing.B) {
	s := MustSpec(quant.W1A3, 5)
	canon, err := BuildCanonical(s)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		sink += canon.Lookup(uint32(i)&31, int64(i)%s.CanonCols())
	}
	_ = sink
}
