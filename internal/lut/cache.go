package lut

import "sync"

// Building a large canonical LUT (tens of MB) costs real time, and the
// experiment harness runs the same spec across many kernels, tiles and
// sweeps. Tables are immutable after construction, so a process-wide cache
// keyed by spec is safe; callers must treat returned tables as read-only.
var cache struct {
	mu       sync.Mutex
	op       map[Spec]*OpPacked
	canon    map[Spec]*Canonical
	reorder  map[Spec]*Reorder
	hits     int64
	misses   int64
	capBytes int64
}

// CachedOpPacked returns a shared operation-packed LUT for the spec.
func CachedOpPacked(s Spec) (*OpPacked, error) {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if cache.op == nil {
		cache.op = make(map[Spec]*OpPacked)
	}
	if t, ok := cache.op[s]; ok {
		cache.hits++
		return t, nil
	}
	cache.misses++
	t, err := BuildOpPacked(s)
	if err != nil {
		return nil, err
	}
	cache.op[s] = t
	cache.capBytes += int64(len(t.Data))
	return t, nil
}

// CachedCanonical returns a shared canonical LUT for the spec.
func CachedCanonical(s Spec) (*Canonical, error) {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if cache.canon == nil {
		cache.canon = make(map[Spec]*Canonical)
	}
	if t, ok := cache.canon[s]; ok {
		cache.hits++
		return t, nil
	}
	cache.misses++
	t, err := BuildCanonical(s)
	if err != nil {
		return nil, err
	}
	cache.canon[s] = t
	cache.capBytes += int64(len(t.Data))
	return t, nil
}

// CachedReorder returns a shared reordering LUT for the spec.
func CachedReorder(s Spec) (*Reorder, error) {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if cache.reorder == nil {
		cache.reorder = make(map[Spec]*Reorder)
	}
	if t, ok := cache.reorder[s]; ok {
		cache.hits++
		return t, nil
	}
	cache.misses++
	t, err := BuildReorder(s)
	if err != nil {
		return nil, err
	}
	cache.reorder[s] = t
	cache.capBytes += int64(len(t.Data))
	return t, nil
}

// CacheStats reports hit/miss counts and resident bytes (for tests and
// diagnostics).
func CacheStats() (hits, misses, bytes int64) {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	return cache.hits, cache.misses, cache.capBytes
}

// ResetCache drops all cached tables (tests).
func ResetCache() {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	cache.op = nil
	cache.canon = nil
	cache.reorder = nil
	cache.hits, cache.misses, cache.capBytes = 0, 0, 0
}
