package localut

import "testing"

// Table-driven error-path coverage for the public name parsers: every
// accepted spelling, every rejected near-miss, and the empty string.

func TestParseDesignTable(t *testing.T) {
	cases := []struct {
		in   string
		want Design
		ok   bool
	}{
		{"NaivePIM", DesignNaive, true},
		{"naivepim", DesignNaive, true},
		{"LTC", DesignLTC, true},
		{"ltc", DesignLTC, true},
		{"OP", DesignOP, true},
		{"OP+LC", DesignOPLC, true},
		{"op+lc", DesignOPLC, true},
		{"OP+LC+RC", DesignOPLCRC, true},
		{"LoCaLUT", DesignLoCaLUT, true},
		{"LOCALUT", DesignLoCaLUT, true},
		{"localut", DesignLoCaLUT, true},

		{"", 0, false},
		{" LoCaLUT", 0, false}, // no whitespace trimming
		{"LoCaLUT ", 0, false},
		{"OPLC", 0, false}, // the '+' spelling is canonical
		{"OP+LC+RC+SS", 0, false},
		{"Naive", 0, false},
		{"gpu", 0, false},
	}
	for _, c := range cases {
		got, err := ParseDesign(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseDesign(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseDesign(%q) accepted, want error", c.in)
		}
	}
}

func TestParseModelTable(t *testing.T) {
	cases := []struct {
		in   string
		want Model
		ok   bool
	}{
		{"BERT-base", BERTBase, true},
		{"bert-base", BERTBase, true},
		{"OPT-125M", OPT125M, true},
		{"opt-125m", OPT125M, true},
		{"ViT-Base", ViTBase, true},
		{"vit-base", ViTBase, true},

		{"", 0, false},
		{"bert", 0, false},
		{"bert_base", 0, false},
		{"opt125m", 0, false},
		{" bert-base", 0, false},
		{"gpt-5", 0, false},
	}
	for _, c := range cases {
		got, err := ParseModel(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseModel(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseModel(%q) accepted, want error", c.in)
		}
	}
}

func TestParseSchedulerPolicyTable(t *testing.T) {
	cases := []struct {
		in   string
		want SchedulerPolicy
		ok   bool
	}{
		{"fcfs", ScheduleFCFS, true},
		{"FCFS", ScheduleFCFS, true},
		{"packed", SchedulePacked, true},
		{"Packed", SchedulePacked, true},

		{"", 0, false},
		{"fifo", 0, false},
		{"lifo", 0, false},
		{"packed ", 0, false},
		{"pack", 0, false},
	}
	for _, c := range cases {
		got, err := ParseSchedulerPolicy(c.in)
		if c.ok && (err != nil || got != c.want) {
			t.Errorf("ParseSchedulerPolicy(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParseSchedulerPolicy(%q) accepted, want error", c.in)
		}
	}
}

// TestParseRoundTrips pins String <-> Parse consistency for every listed
// value of each enum, so new entries cannot drift apart.
func TestParseRoundTrips(t *testing.T) {
	for _, d := range Designs {
		if got, err := ParseDesign(d.String()); err != nil || got != d {
			t.Errorf("design %v round-trip: %v, %v", d, got, err)
		}
	}
	for _, m := range []Model{BERTBase, OPT125M, ViTBase} {
		if got, err := ParseModel(m.String()); err != nil || got != m {
			t.Errorf("model %v round-trip: %v, %v", m, got, err)
		}
	}
	for _, p := range []SchedulerPolicy{ScheduleFCFS, SchedulePacked} {
		if got, err := ParseSchedulerPolicy(p.String()); err != nil || got != p {
			t.Errorf("scheduler %v round-trip: %v, %v", p, got, err)
		}
	}
	for _, r := range []RouterPolicy{RouteRoundRobin, RouteLeastOutstanding, RouteWeightedFreeKV, RouteShapeAffinity} {
		if got, err := ParseRouterPolicy(r.String()); err != nil || got != r {
			t.Errorf("router %v round-trip: %v, %v", r, got, err)
		}
	}
	for _, a := range []AdmissionPolicy{AdmitAll, AdmitTokenBucket} {
		if got, err := ParseAdmissionPolicy(a.String()); err != nil || got != a {
			t.Errorf("admission %v round-trip: %v, %v", a, got, err)
		}
	}
}
