package localut

import (
	"encoding/json"
	"testing"
)

func clusterTestConfig() ClusterConfig {
	return ClusterConfig{
		Model: BERTBase, Format: W1A3, Design: DesignLoCaLUT,
		Instances:       2,
		RatePerSec:      100,
		DurationSeconds: 5,
	}
}

func TestSystemServeCluster(t *testing.T) {
	sys := NewSystem(WithSeed(1))
	rep, err := sys.ServeCluster(clusterTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Model != BERTBase.String() || rep.Format != "W1A3" {
		t.Errorf("report identity %s/%s", rep.Model, rep.Format)
	}
	if rep.Router != "round-robin" || rep.Admission != "admit-all" {
		t.Errorf("report policies %s/%s", rep.Router, rep.Admission)
	}
	if rep.Admitted == 0 || rep.Completed != rep.Admitted {
		t.Errorf("admitted %d, completed %d", rep.Admitted, rep.Completed)
	}
	if len(rep.Instances) != 2 || len(rep.Classes) != 1 {
		t.Fatalf("%d instances, %d classes", len(rep.Instances), len(rep.Classes))
	}
	for _, ir := range rep.Instances {
		if ir.Requests == 0 || ir.Design != "LoCaLUT" {
			t.Errorf("instance %d: %d requests, design %q", ir.ID, ir.Requests, ir.Design)
		}
	}
	if rep.EnergyPerRequestJ <= 0 || rep.DistinctForwardSims == 0 {
		t.Errorf("energy %g, sims %d", rep.EnergyPerRequestJ, rep.DistinctForwardSims)
	}
}

// TestServeClusterParallelismInvariant pins the public determinism bar:
// byte-identical ClusterReport JSON at every parallelism level, with the
// autoscaler scaling mid-run.
func TestServeClusterParallelismInvariant(t *testing.T) {
	run := func(par int) []byte {
		cfg := ClusterConfig{
			Model: OPT125M, Format: W1A3, Design: DesignLoCaLUT,
			Instances:       1,
			RatePerSec:      50,
			DurationSeconds: 8,
			OutTokens:       4,
			Autoscaler: ClusterAutoscaler{
				Enabled: true, MaxInstances: 3, IntervalSeconds: 1,
				SLOSeconds: 1, ScaleDownFactor: 0.1,
				WarmupSeconds: 0.5, DrainSeconds: 0.5,
			},
		}
		rep, err := NewSystem(WithSeed(7), WithParallelism(par)).ServeCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	base := run(1)
	for _, par := range []int{2, 8} {
		if got := run(par); string(got) != string(base) {
			t.Fatalf("parallelism %d changed the cluster report", par)
		}
	}
	// The scenario must actually scale, or the invariant is vacuous.
	var rep ClusterReport
	if err := json.Unmarshal(base, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.InstancesPeak <= 1 || len(rep.Timeline) == 0 {
		t.Fatalf("scenario never scaled (peak %d, %d events)", rep.InstancesPeak, len(rep.Timeline))
	}
}

func TestParseClusterPolicies(t *testing.T) {
	routers := map[string]RouterPolicy{
		"round-robin": RouteRoundRobin, "Least-Outstanding": RouteLeastOutstanding,
		"WEIGHTED-KV": RouteWeightedFreeKV, "shape-affinity": RouteShapeAffinity,
	}
	for name, want := range routers {
		got, err := ParseRouterPolicy(name)
		if err != nil || got != want {
			t.Errorf("ParseRouterPolicy(%q) = %v, %v", name, got, err)
		}
	}
	admissions := map[string]AdmissionPolicy{
		"admit-all": AdmitAll, "Token-Bucket": AdmitTokenBucket,
	}
	for name, want := range admissions {
		got, err := ParseAdmissionPolicy(name)
		if err != nil || got != want {
			t.Errorf("ParseAdmissionPolicy(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseRouterPolicy("bogus"); err == nil {
		t.Error("bogus router accepted")
	}
	if _, err := ParseAdmissionPolicy("bogus"); err == nil {
		t.Error("bogus admission accepted")
	}
	if RouteWeightedFreeKV.String() != "weighted-kv" || AdmitTokenBucket.String() != "token-bucket" {
		t.Error("policy String() names drifted from the parsers")
	}
}

func TestServeClusterClasses(t *testing.T) {
	cfg := clusterTestConfig()
	cfg.Admission = AdmitTokenBucket
	cfg.Classes = []ClusterClass{
		{Name: "hot", RatePerSec: 80, AdmitRatePerSec: 30, LatencyP99SLO: 100},
		{Name: "cool", RatePerSec: 20, LatencyP99SLO: 100},
	}
	rep, err := NewSystem(WithSeed(1)).ServeCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classes) != 2 {
		t.Fatalf("%d class reports", len(rep.Classes))
	}
	hot, cool := rep.Classes[0], rep.Classes[1]
	if hot.Name != "hot" || cool.Name != "cool" {
		t.Fatalf("class names %q, %q", hot.Name, cool.Name)
	}
	if hot.Rejected == 0 || cool.Rejected != 0 {
		t.Errorf("rejections hot=%d cool=%d", hot.Rejected, cool.Rejected)
	}
	if !hot.SLOMet || !cool.SLOMet {
		t.Errorf("generous SLOs unmet: hot=%v cool=%v", hot.SLOMet, cool.SLOMet)
	}
}
