// Command localut-bench regenerates every table and figure of the paper's
// evaluation section on the simulated PIM system and writes a markdown
// report (stdout by default).
//
// Usage:
//
//	localut-bench [-quick] [-fig fig09] [-o report.md]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"github.com/ais-snu/localut/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size workloads")
	fig := flag.String("fig", "", "run a single figure (e.g. fig09); empty runs all")
	out := flag.String("o", "", "write the markdown report to this file instead of stdout")
	flag.Parse()

	s := experiments.New()
	if *quick {
		s = experiments.NewQuick()
	}

	var results []*experiments.Result
	start := time.Now()
	if *fig == "" {
		var err error
		results, err = s.All()
		if err != nil {
			fatal(err)
		}
	} else {
		r, err := runOne(s, strings.ToLower(*fig))
		if err != nil {
			fatal(err)
		}
		results = []*experiments.Result{r}
	}
	doc := experiments.ReportMarkdown(results)
	doc += fmt.Sprintf("\n---\nGenerated in %.1fs (quick=%v)\n", time.Since(start).Seconds(), *quick)

	if *out == "" {
		fmt.Print(doc)
		return
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d figures, %.1fs)\n", *out, len(results), time.Since(start).Seconds())
}

func runOne(s *experiments.Suite, id string) (*experiments.Result, error) {
	drivers := map[string]func() (*experiments.Result, error){
		"fig03": s.Fig03, "fig06": s.Fig06, "fig09": s.Fig09, "fig10": s.Fig10,
		"fig11": s.Fig11, "fig12": s.Fig12, "fig13": s.Fig13, "fig14": s.Fig14,
		"fig15": s.Fig15, "fig16": s.Fig16, "fig17": s.Fig17, "fig18": s.Fig18,
		"fig19": s.Fig19, "fig20": s.Fig20, "fig21": s.Fig21,
	}
	fn, ok := drivers[id]
	if !ok {
		return nil, fmt.Errorf("unknown figure %q (fig03..fig21)", id)
	}
	return fn()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "localut-bench:", err)
	os.Exit(1)
}
