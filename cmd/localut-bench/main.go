// Command localut-bench regenerates every table and figure of the paper's
// evaluation section on the simulated PIM system and writes a markdown
// report (stdout by default). It can also run a standalone full-grid GEMM
// sweep: every bank tile of all six designs simulated and verified, sharded
// across host cores.
//
// Usage:
//
//	localut-bench [-quick] [-fig fig09] [-j N] [-o report.md]
//	localut-bench -sweep MxKxN [-fmt W1A3] [-j N] [-compare]
//
// -j sets the host worker-pool size (0 = one worker per CPU core, 1 =
// serial). Results are bit-identical at any -j; only wall-clock changes.
// -compare runs the sweep serially and in parallel, checks that the
// simulated cycle counts agree, and reports the host speedup.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/ais-snu/localut/internal/experiments"
	"github.com/ais-snu/localut/internal/quant"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size workloads")
	fig := flag.String("fig", "", "run a single figure (e.g. fig09); empty runs all")
	out := flag.String("o", "", "write the markdown report to this file instead of stdout")
	par := flag.Int("j", 0, "worker-pool size (0 = NumCPU, 1 = serial)")
	sweep := flag.String("sweep", "", "run a full-grid GEMM sweep of all designs on MxKxN (e.g. 768x768x128)")
	fmtName := flag.String("fmt", "W1A3", "quantization format for -sweep")
	compare := flag.Bool("compare", false, "with -sweep: run serial and parallel, verify identical cycles, report speedup")
	flag.Parse()

	if *sweep != "" {
		if err := runSweep(*sweep, *fmtName, *par, *compare); err != nil {
			fatal(err)
		}
		return
	}

	s := experiments.New()
	if *quick {
		s = experiments.NewQuick()
	}
	s.Parallelism = *par

	var results []*experiments.Result
	start := time.Now()
	if *fig == "" {
		var err error
		results, err = s.All()
		if err != nil {
			fatal(err)
		}
	} else {
		r, err := s.RunFigure(strings.ToLower(*fig))
		if err != nil {
			fatal(err)
		}
		results = []*experiments.Result{r}
	}
	doc := experiments.ReportMarkdown(results)
	doc += fmt.Sprintf("\n---\nGenerated in %.1fs (quick=%v, j=%d)\n", time.Since(start).Seconds(), *quick, *par)

	if *out == "" {
		fmt.Print(doc)
		return
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d figures, %.1fs)\n", *out, len(results), time.Since(start).Seconds())
}

// parseShape parses "768x768x128", rejecting partial matches.
func parseShape(s string) (m, k, n int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad -sweep shape %q (want MxKxN)", s)
	}
	dims := make([]int, 3)
	for i, p := range parts {
		if dims[i], err = strconv.Atoi(p); err != nil {
			return 0, 0, 0, fmt.Errorf("bad -sweep shape %q (want MxKxN): %v", s, err)
		}
		if dims[i] <= 0 {
			return 0, 0, 0, fmt.Errorf("bad -sweep shape %q: dimensions must be positive", s)
		}
	}
	return dims[0], dims[1], dims[2], nil
}

// runSweep executes the full-grid design sweep, optionally comparing serial
// and parallel execution.
func runSweep(shape, fmtName string, par int, compare bool) error {
	m, k, n, err := parseShape(shape)
	if err != nil {
		return err
	}
	f, err := quant.ParseFormat(fmtName)
	if err != nil {
		return err
	}
	if f.Weight.Bits > 8 || f.Act.Bits > 8 {
		return fmt.Errorf("format %s: the synthetic workload stores codes in uint8; use <= 8-bit codecs", f.Name())
	}

	if !compare {
		start := time.Now()
		rows, err := experiments.GEMMSweep(m, k, n, f, par)
		if err != nil {
			return err
		}
		printRows(shape, f.Name(), rows)
		fmt.Printf("\nhost wall-clock: %.2fs (j=%d)\n", time.Since(start).Seconds(), par)
		return nil
	}

	workers := par
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	fmt.Printf("full-grid sweep %s %s: serial vs %d workers\n\n", shape, f.Name(), workers)

	// Untimed warm-up: builds the process-wide LUT tables so neither timed
	// pass pays construction costs the other skips.
	if _, err := experiments.GEMMSweep(m, k, n, f, workers); err != nil {
		return err
	}

	t0 := time.Now()
	serial, err := experiments.GEMMSweep(m, k, n, f, 1)
	if err != nil {
		return err
	}
	serialWall := time.Since(t0).Seconds()

	t1 := time.Now()
	parallel, err := experiments.GEMMSweep(m, k, n, f, workers)
	if err != nil {
		return err
	}
	parallelWall := time.Since(t1).Seconds()

	printRows(shape, f.Name(), parallel)

	identical := true
	for i := range serial {
		if serial[i] != parallel[i] {
			identical = false
			fmt.Printf("\nMISMATCH at %s:\n  serial   %+v\n  parallel %+v\n",
				serial[i].Design, serial[i], parallel[i])
		}
	}
	fmt.Printf("\nserial:   %.2fs wall-clock (j=1)\n", serialWall)
	fmt.Printf("parallel: %.2fs wall-clock (j=%d)\n", parallelWall, workers)
	fmt.Printf("speedup:  %.2fx\n", serialWall/parallelWall)
	if identical {
		fmt.Println("simulated cycle counts: identical in both modes")
	} else {
		return fmt.Errorf("serial and parallel sweeps diverged")
	}
	return nil
}

// printRows renders the sweep as a markdown table.
func printRows(shape, format string, rows []experiments.SweepRow) {
	fmt.Printf("| design | p | k | streaming | banks | kernel cycles | simulated s | verified |\n")
	fmt.Printf("|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Printf("| %s | %d | %d | %v | %d | %d | %.6f | %v |\n",
			r.Design, r.P, r.SliceK, r.Streaming, r.Banks, r.KernelCycles, r.SimSeconds, r.Verified)
	}
	fmt.Printf("\n(%s, %s, every bank tile simulated and verified bit-exact)\n", shape, format)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "localut-bench:", err)
	os.Exit(1)
}
