// Command localut-bench regenerates every table and figure of the paper's
// evaluation section on the simulated PIM system and writes a markdown
// report (stdout by default). It can also run a standalone full-grid GEMM
// sweep: every bank tile of all six designs simulated and verified, sharded
// across host cores.
//
// Usage:
//
//	localut-bench [-quick] [-fig fig09] [-j N] [-cycles-only] [-v] [-o report.md]
//	localut-bench -sweep MxKxN [-fmt W1A3] [-j N] [-cycles-only] [-compare]
//	localut-bench -bench-json BENCH_kernels.json
//	localut-bench -engine-json BENCH_engine.json [-max-allocs-per-tile N]
//	localut-bench ... [-cpuprofile cpu.out] [-memprofile mem.out]
//
// -j sets the host worker-pool size (0 = one worker per CPU core, 1 =
// serial). Results are bit-identical at any -j; only wall-clock changes.
// -cycles-only switches to the analytic cost backend: kernels charge the
// identical cycle/event sequence without moving bytes, so figures and
// sweeps regenerate the same numbers much faster (outputs are not computed,
// so per-tile verification is skipped).
// -compare runs the sweep serially, in parallel, through the unpooled
// (NoArena) reference engine and in cycles-only mode, checks that the
// simulated results agree across all four, and reports the host speedups.
// -v prints LUT table-build cache statistics after the run.
// -bench-json runs the kernel micro-benchmark suite (OP, OP+LC, OP+LC+RC in
// both modes) and writes the timings as JSON to the given path.
// -engine-json benchmarks the full-grid functional engine (pooled vs
// unpooled wall-clock, steady-state allocations per bank tile) and writes
// the measurements as JSON; with -max-allocs-per-tile it exits nonzero when
// the steady state regresses past the ceiling (the CI allocation gate).
// -cpuprofile / -memprofile stream a pprof CPU profile and write a post-GC
// heap snapshot, so perf changes ship with evidence.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/ais-snu/localut/internal/experiments"
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/lut"
	"github.com/ais-snu/localut/internal/pim"
	"github.com/ais-snu/localut/internal/prof"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/workload"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced-size workloads")
	fig := flag.String("fig", "", "run a single figure (e.g. fig09); empty runs all")
	out := flag.String("o", "", "write the markdown report to this file instead of stdout")
	par := flag.Int("j", 0, "worker-pool size (0 = NumCPU, 1 = serial)")
	sweep := flag.String("sweep", "", "run a full-grid GEMM sweep of all designs on MxKxN (e.g. 768x768x128)")
	fmtName := flag.String("fmt", "W1A3", "quantization format for -sweep")
	compare := flag.Bool("compare", false, "with -sweep: run serial, parallel and cycles-only, verify identical cycles, report speedups")
	cyclesOnly := flag.Bool("cycles-only", false, "use the analytic cycles-only backend (identical cycles, no functional simulation)")
	verbose := flag.Bool("v", false, "print LUT cache statistics after the run")
	benchJSON := flag.String("bench-json", "", "run the kernel micro-benchmarks and write JSON to this path")
	engineJSON := flag.String("engine-json", "", "run the full-grid engine benchmark and write JSON to this path")
	maxAllocs := flag.Float64("max-allocs-per-tile", 0, "with -engine-json: fail if steady-state allocations per bank tile exceed this ceiling (0 = no check)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a post-GC pprof heap profile to this file at exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	profStop = stopProf
	defer stopProf()

	mode := kernels.Functional
	if *cyclesOnly {
		mode = kernels.CyclesOnly
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			fatal(err)
		}
		return
	}

	if *engineJSON != "" {
		if err := runEngineJSON(*engineJSON, *par, *maxAllocs); err != nil {
			fatal(err)
		}
		return
	}

	if *sweep != "" {
		if err := runSweep(*sweep, *fmtName, *par, mode, *compare); err != nil {
			fatal(err)
		}
		cacheStats(*verbose)
		return
	}

	s := experiments.New()
	if *quick {
		s = experiments.NewQuick()
	}
	s.Parallelism = *par
	s.Mode = mode

	var results []*experiments.Result
	start := time.Now()
	if *fig == "" {
		var err error
		results, err = s.All()
		if err != nil {
			fatal(err)
		}
	} else {
		r, err := s.RunFigure(strings.ToLower(*fig))
		if err != nil {
			fatal(err)
		}
		results = []*experiments.Result{r}
	}
	doc := experiments.ReportMarkdown(results)
	doc += fmt.Sprintf("\n---\nGenerated in %.1fs (quick=%v, j=%d, mode=%s)\n",
		time.Since(start).Seconds(), *quick, *par, mode)

	if *out == "" {
		fmt.Print(doc)
		cacheStats(*verbose)
		return
	}
	if err := os.WriteFile(*out, []byte(doc), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d figures, %.1fs)\n", *out, len(results), time.Since(start).Seconds())
	cacheStats(*verbose)
}

// cacheStats reports the process-wide LUT table cache so table-build cost is
// observable: every miss built a table, every hit shared one.
func cacheStats(verbose bool) {
	if !verbose {
		return
	}
	hits, misses, bytes := lut.CacheStats()
	fmt.Fprintf(os.Stderr, "lut cache: %d hits, %d misses, %.1f MiB resident\n",
		hits, misses, float64(bytes)/(1<<20))
}

// parseShape parses "768x768x128", rejecting partial matches.
func parseShape(s string) (m, k, n int, err error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return 0, 0, 0, fmt.Errorf("bad -sweep shape %q (want MxKxN)", s)
	}
	dims := make([]int, 3)
	for i, p := range parts {
		if dims[i], err = strconv.Atoi(p); err != nil {
			return 0, 0, 0, fmt.Errorf("bad -sweep shape %q (want MxKxN): %v", s, err)
		}
		if dims[i] <= 0 {
			return 0, 0, 0, fmt.Errorf("bad -sweep shape %q: dimensions must be positive", s)
		}
	}
	return dims[0], dims[1], dims[2], nil
}

// runSweep executes the full-grid design sweep, optionally comparing
// serial, parallel and cycles-only execution.
func runSweep(shape, fmtName string, par int, mode kernels.Mode, compare bool) error {
	m, k, n, err := parseShape(shape)
	if err != nil {
		return err
	}
	f, err := quant.ParseFormat(fmtName)
	if err != nil {
		return err
	}
	if f.Weight.Bits > 8 || f.Act.Bits > 8 {
		return fmt.Errorf("format %s: the synthetic workload stores codes in uint8; use <= 8-bit codecs", f.Name())
	}

	if !compare {
		start := time.Now()
		rows, err := experiments.GEMMSweep(m, k, n, f, par, mode)
		if err != nil {
			return err
		}
		printRows(shape, f.Name(), rows)
		fmt.Printf("\nhost wall-clock: %.2fs (j=%d, mode=%s)\n", time.Since(start).Seconds(), par, mode)
		return nil
	}

	workers := par
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	fmt.Printf("full-grid sweep %s %s: serial vs %d workers vs unpooled vs cycles-only\n\n", shape, f.Name(), workers)

	// Untimed warm-up: builds the process-wide LUT tables so no timed
	// functional pass pays construction costs the others skip.
	if _, err := experiments.GEMMSweep(m, k, n, f, workers, kernels.Functional); err != nil {
		return err
	}

	t0 := time.Now()
	serial, err := experiments.GEMMSweep(m, k, n, f, 1, kernels.Functional)
	if err != nil {
		return err
	}
	serialWall := time.Since(t0).Seconds()

	t1 := time.Now()
	parallel, err := experiments.GEMMSweep(m, k, n, f, workers, kernels.Functional)
	if err != nil {
		return err
	}
	parallelWall := time.Since(t1).Seconds()

	t2 := time.Now()
	unpooled, err := experiments.GEMMSweepExec(m, k, n, f,
		gemm.ExecOptions{Parallelism: workers, NoArena: true})
	if err != nil {
		return err
	}
	unpooledWall := time.Since(t2).Seconds()

	t3 := time.Now()
	analytic, err := experiments.GEMMSweep(m, k, n, f, workers, kernels.CyclesOnly)
	if err != nil {
		return err
	}
	analyticWall := time.Since(t3).Seconds()

	printRows(shape, f.Name(), parallel)

	identical := true
	for i := range serial {
		if serial[i] != parallel[i] {
			identical = false
			fmt.Printf("\nMISMATCH at %s (serial vs parallel):\n  serial   %+v\n  parallel %+v\n",
				serial[i].Design, serial[i], parallel[i])
		}
		if serial[i] != unpooled[i] {
			identical = false
			fmt.Printf("\nMISMATCH at %s (pooled vs unpooled):\n  pooled   %+v\n  unpooled %+v\n",
				serial[i].Design, serial[i], unpooled[i])
		}
		if !serial[i].SameCost(analytic[i]) {
			identical = false
			fmt.Printf("\nMISMATCH at %s (functional vs cycles-only):\n  functional  %+v\n  cycles-only %+v\n",
				serial[i].Design, serial[i], analytic[i])
		}
	}
	fmt.Printf("\nserial:      %.3fs wall-clock (j=1, functional, pooled)\n", serialWall)
	fmt.Printf("parallel:    %.3fs wall-clock (j=%d, functional, pooled)\n", parallelWall, workers)
	fmt.Printf("unpooled:    %.3fs wall-clock (j=%d, functional, NoArena reference)\n", unpooledWall, workers)
	fmt.Printf("cycles-only: %.3fs wall-clock (j=%d)\n", analyticWall, workers)
	fmt.Printf("parallel speedup:    %.2fx over serial\n", serialWall/parallelWall)
	fmt.Printf("pooled speedup:      %.2fx over the unpooled reference engine\n", unpooledWall/parallelWall)
	fmt.Printf("cycles-only speedup: %.2fx over functional parallel, %.2fx over serial\n",
		parallelWall/analyticWall, serialWall/analyticWall)
	if identical {
		fmt.Println("simulated results: identical across serial, parallel, unpooled and cycles-only")
	} else {
		return fmt.Errorf("sweep modes diverged")
	}
	return nil
}

// printRows renders the sweep as a markdown table.
func printRows(shape, format string, rows []experiments.SweepRow) {
	fmt.Printf("| design | p | k | streaming | banks | kernel cycles | simulated s | verified |\n")
	fmt.Printf("|---|---|---|---|---|---|---|---|\n")
	for _, r := range rows {
		fmt.Printf("| %s | %d | %d | %v | %d | %d | %.6f | %v |\n",
			r.Design, r.P, r.SliceK, r.Streaming, r.Banks, r.KernelCycles, r.SimSeconds, r.Verified)
	}
	fmt.Printf("\n(%s, %s, every bank tile accounted)\n", shape, format)
}

// benchEntry is one kernel micro-benchmark measurement.
type benchEntry struct {
	Kernel        string  `json:"kernel"`
	Mode          string  `json:"mode"`
	M             int     `json:"m"`
	K             int     `json:"k"`
	N             int     `json:"n"`
	Runs          int     `json:"runs"`
	HostSecPerRun float64 `json:"host_seconds_per_run"`
	SimCycles     int64   `json:"sim_cycles"`
	// SpeedupVsFunctional is set on cycles-only entries: functional
	// host-seconds / cycles-only host-seconds for the same kernel.
	SpeedupVsFunctional float64 `json:"speedup_vs_functional,omitempty"`
}

// runBenchJSON times each packed-LUT kernel in both execution modes on a
// fixed tile and writes the measurements as JSON — the start of the perf
// trajectory tracked across PRs.
func runBenchJSON(path string) error {
	const m, k, n, runs = 256, 256, 32, 3
	cfg := pim.DefaultConfig()
	costs := kernels.DefaultCosts()
	f := quant.W1A3
	pair := workload.NewGEMMPair(m, k, n, f, 1)

	kns := []struct {
		name string
		kn   kernels.Kernel
	}{
		{"OP", kernels.NewOPKernel(costs, lut.MustSpec(f, 2))},
		{"OP+LC", kernels.NewOPLCKernel(costs, lut.MustSpec(f, 4))},
		{"OP+LC+RC", kernels.NewOPLCRCKernel(costs, lut.MustSpec(f, 4))},
		{"LoCaLUT", kernels.NewStreamKernel(costs, lut.MustSpec(f, 6), 2)},
	}

	var entries []benchEntry
	for _, it := range kns {
		var funcSec float64
		for _, mode := range []kernels.Mode{kernels.Functional, kernels.CyclesOnly} {
			var tile *kernels.Tile
			var err error
			if mode == kernels.CyclesOnly {
				tile, err = kernels.NewShapeTile(m, k, n, f)
			} else {
				tile, err = kernels.NewTile(m, k, n, f, pair.W.Codes, pair.A.Codes)
			}
			if err != nil {
				return err
			}
			d := kernels.DPUForMode(&cfg, mode)
			// Warm-up builds shared LUT tables outside the timed runs.
			if _, err := it.kn.Run(d, tile); err != nil {
				return err
			}
			start := time.Now()
			var cycles int64
			for r := 0; r < runs; r++ {
				res, err := it.kn.Run(d, tile)
				if err != nil {
					return err
				}
				cycles = res.Cycles
			}
			perRun := time.Since(start).Seconds() / runs
			e := benchEntry{
				Kernel: it.name, Mode: mode.String(), M: m, K: k, N: n,
				Runs: runs, HostSecPerRun: perRun, SimCycles: cycles,
			}
			if mode == kernels.Functional {
				funcSec = perRun
			} else if perRun > 0 {
				e.SpeedupVsFunctional = funcSec / perRun
			}
			entries = append(entries, e)
		}
	}

	data, err := json.MarshalIndent(entries, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d entries)\n", path, len(entries))
	return nil
}

// engineBench is the BENCH_engine.json payload: one full-grid functional
// measurement of the pooled execution engine against the unpooled
// (NoArena) reference, plus the steady-state allocation rate of the
// per-bank-tile hot path.
type engineBench struct {
	Shape           string  `json:"shape"`
	Format          string  `json:"format"`
	Designs         int     `json:"designs"`
	TilesPerPass    int     `json:"tiles_per_pass"`
	Workers         int     `json:"workers"`
	PooledSeconds   float64 `json:"pooled_seconds"`
	UnpooledSeconds float64 `json:"unpooled_seconds"`
	PooledSpeedup   float64 `json:"pooled_speedup"`
	AllocsPerTile   float64 `json:"allocs_per_tile"`
	BytesPerTile    float64 `json:"bytes_per_tile"`
}

// runEngineJSON benchmarks the full-grid functional engine and writes the
// measurements as JSON — the engine-level perf trajectory tracked across
// PRs, and CI's allocation-regression gate (-max-allocs-per-tile).
func runEngineJSON(path string, par int, maxAllocsPerTile float64) error {
	const m, k, n = 256, 256, 64
	f := quant.W1A3
	workers := par
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	pair := workload.NewGEMMPair(m, k, n, f, 1)
	runAll := func(e *gemm.Engine) (tiles int, err error) {
		for _, v := range kernels.Variants {
			rep, err := e.Run(pair, gemm.Options{Variant: v})
			if err != nil {
				return 0, err
			}
			tiles += rep.BanksSimulated
		}
		return tiles, nil
	}

	// Pooled engine: one warm pass populates the LUT cache and arena pool,
	// the second pass is the timed steady state.
	pooled := gemm.NewEngine()
	pooled.Exec = gemm.ExecOptions{Parallelism: workers, FullGrid: true}
	tiles, err := runAll(pooled)
	if err != nil {
		return err
	}
	t0 := time.Now()
	if _, err := runAll(pooled); err != nil {
		return err
	}
	pooledWall := time.Since(t0).Seconds()

	// Steady-state allocation rate, measured serially (a worker pool would
	// charge its goroutine setup to the tiles).
	pooled.Exec.Parallelism = 1
	if _, err := runAll(pooled); err != nil { // settle the serial arena
		return err
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := runAll(pooled); err != nil {
		return err
	}
	runtime.ReadMemStats(&after)
	allocsPerTile := float64(after.Mallocs-before.Mallocs) / float64(tiles)
	bytesPerTile := float64(after.TotalAlloc-before.TotalAlloc) / float64(tiles)

	// Unpooled reference engine, same warm-then-time protocol.
	unpooled := gemm.NewEngine()
	unpooled.Exec = gemm.ExecOptions{Parallelism: workers, FullGrid: true, NoArena: true}
	if _, err := runAll(unpooled); err != nil {
		return err
	}
	t1 := time.Now()
	if _, err := runAll(unpooled); err != nil {
		return err
	}
	unpooledWall := time.Since(t1).Seconds()

	bench := engineBench{
		Shape: fmt.Sprintf("%dx%dx%d", m, k, n), Format: f.Name(),
		Designs: len(kernels.Variants), TilesPerPass: tiles, Workers: workers,
		PooledSeconds: pooledWall, UnpooledSeconds: unpooledWall,
		PooledSpeedup: unpooledWall / pooledWall,
		AllocsPerTile: allocsPerTile, BytesPerTile: bytesPerTile,
	}
	data, err := json.MarshalIndent(bench, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (pooled %.3fs, unpooled %.3fs, %.2f allocs/tile)\n",
		path, pooledWall, unpooledWall, allocsPerTile)

	if maxAllocsPerTile > 0 && allocsPerTile > maxAllocsPerTile {
		return fmt.Errorf("allocation regression: %.2f allocs per bank tile exceeds the %.2f ceiling",
			allocsPerTile, maxAllocsPerTile)
	}
	return nil
}

// profStop flushes any active pprof collectors before an error exit, so a
// failing profiled run still leaves usable profiles. Idempotent; the
// success path defers the same stop.
var profStop = func() {}

func fatal(err error) {
	profStop()
	fmt.Fprintln(os.Stderr, "localut-bench:", err)
	os.Exit(1)
}
